// Regenerates Fig 4: K-fold cross-validation — the dataset is partitioned
// into K equal folds, each fold is the test set once, and the mean of the
// K performance estimates is the final measure. The artifact shows
// per-fold scores for K in {2, 5, 10} and the K-times cost scaling the
// paper notes ("the total number of Pipelines for evaluation ... is now K
// times higher").
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/core/evaluator.h"
#include "src/data/synthetic.h"
#include "src/ml/random_forest.h"
#include "src/ml/scalers.h"
#include "src/util/stopwatch.h"

using namespace coda;

namespace {

Dataset workload() {
  RegressionConfig cfg;
  cfg.n_samples = 300;
  cfg.n_features = 8;
  return make_regression(cfg);
}

Pipeline reference_pipeline() {
  Pipeline p;
  p.add_transformer(std::make_unique<StandardScaler>());
  p.set_estimator(std::make_unique<RandomForestRegressor>());
  return p;
}

void print_fig4() {
  const Dataset data = workload();
  std::printf("=== Fig 4 (regenerated): K-fold cross-validation ===\n\n");

  std::vector<std::vector<std::string>> rows;
  for (const std::size_t k : {2u, 5u, 10u}) {
    const Pipeline p = reference_pipeline();
    Stopwatch timer;
    const auto result = cross_validate(p, data, KFold(k), Metric::kRmse);
    const double seconds = timer.elapsed_seconds();
    std::string folds;
    for (const double s : result.fold_scores) {
      if (!folds.empty()) folds += " ";
      folds += coda::bench::fmt(s, 3);
    }
    rows.push_back({coda::bench::fmt_int(k), folds,
                    coda::bench::fmt(result.mean_score, 4),
                    coda::bench::fmt(result.stddev, 4),
                    coda::bench::fmt(seconds, 3)});
  }
  coda::bench::print_table(
      {"K", "per-fold RMSE", "mean", "stddev", "seconds"}, rows,
      {3, -62, 8, 8, 8});
  std::printf("\n(evaluation cost grows ~K-fold: K models are trained, as "
              "the paper notes in Section IV-B)\n\n");

  // Partition sanity restated as counts.
  const auto splits = KFold(5).splits(data.n_samples());
  std::printf("partition check (K=5, n=%zu): fold sizes =", data.n_samples());
  for (const auto& s : splits) std::printf(" %zu", s.test.size());
  std::printf("\n\n");
}

void BM_KFoldSplitGeneration(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const KFold cv(k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cv.splits(10000));
  }
}
BENCHMARK(BM_KFoldSplitGeneration)->Arg(2)->Arg(5)->Arg(10);

void BM_CrossValidateK(benchmark::State& state) {
  const Dataset data = workload();
  const auto k = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const Pipeline p = reference_pipeline();
    benchmark::DoNotOptimize(
        cross_validate(p, data, KFold(k), Metric::kRmse));
  }
}
BENCHMARK(BM_CrossValidateK)->Arg(2)->Arg(5)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  coda::bench::strip_obs_flags(&argc, argv);
  print_fig4();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  coda::bench::dump_obs_if_requested();
  return 0;
}
