// Regenerates Fig 5: the training (fit & transform through internal nodes,
// fit at the last node) and prediction (transform + predict) operations on
// a sample pipeline. The artifact measures fit vs predict cost across
// pipeline depths; micro benchmarks isolate the per-stage costs.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/core/pipeline.h"
#include "src/data/synthetic.h"
#include "src/ml/feature_selection.h"
#include "src/ml/mlp.h"
#include "src/ml/pca.h"
#include "src/ml/scalers.h"
#include "src/util/stopwatch.h"

using namespace coda;

namespace {

Dataset workload() {
  RegressionConfig cfg;
  cfg.n_samples = 500;
  cfg.n_features = 12;
  cfg.n_informative = 6;
  return make_regression(cfg);
}

// Builds the Fig 5 sample pipeline (robustscaler -> select-k -> MLP), with
// `depth` controlling how many internal transform nodes precede the model.
Pipeline sample_pipeline(std::size_t depth) {
  Pipeline p;
  if (depth >= 1) p.add_transformer(std::make_unique<RobustScaler>());
  if (depth >= 2) {
    auto kbest = std::make_unique<SelectKBest>();
    kbest->set_param("k", std::int64_t{6});
    p.add_transformer(std::move(kbest));
  }
  if (depth >= 3) {
    auto pca = std::make_unique<PCA>();
    pca->set_param("n_components", std::int64_t{4});
    p.add_transformer(std::move(pca));
  }
  auto mlp = std::make_unique<MlpRegressor>();
  mlp->set_param("epochs", std::int64_t{30});
  p.set_estimator(std::move(mlp));
  return p;
}

void print_fig5() {
  const Dataset data = workload();
  std::printf("=== Fig 5 (regenerated): pipeline training vs prediction "
              "===\n");
  std::printf("(training: internal nodes run fit&transform, last node runs "
              "fit; prediction: transform only + predict)\n\n");

  std::vector<std::vector<std::string>> rows;
  for (const std::size_t depth : {0u, 1u, 2u, 3u}) {
    Pipeline p = sample_pipeline(depth);
    Stopwatch fit_timer;
    p.fit(data.X, data.y);
    const double fit_seconds = fit_timer.elapsed_seconds();
    Stopwatch predict_timer;
    const auto predictions = p.predict(data.X);
    const double predict_seconds = predict_timer.elapsed_seconds();
    rows.push_back({coda::bench::fmt_int(depth), p.spec().substr(0, 58),
                    coda::bench::fmt(fit_seconds * 1e3, 1),
                    coda::bench::fmt(predict_seconds * 1e3, 2),
                    coda::bench::fmt(fit_seconds / predict_seconds, 1)});
  }
  coda::bench::print_table(
      {"internal nodes", "pipeline", "fit ms", "predict ms", "ratio"}, rows,
      {14, -58, 9, 11, 7});
  std::printf("\n(the fit/predict asymmetry is the Fig 5 point: training "
              "does strictly more work at every node)\n\n");
}

void BM_PipelineFit(benchmark::State& state) {
  const Dataset data = workload();
  for (auto _ : state) {
    Pipeline p = sample_pipeline(static_cast<std::size_t>(state.range(0)));
    p.fit(data.X, data.y);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_PipelineFit)->Arg(0)->Arg(2)->Unit(benchmark::kMillisecond);

void BM_PipelinePredict(benchmark::State& state) {
  const Dataset data = workload();
  Pipeline p = sample_pipeline(static_cast<std::size_t>(state.range(0)));
  p.fit(data.X, data.y);
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.predict(data.X));
  }
}
BENCHMARK(BM_PipelinePredict)->Arg(0)->Arg(2)->Unit(benchmark::kMillisecond);

void BM_PipelineDeepCopy(benchmark::State& state) {
  const Dataset data = workload();
  Pipeline p = sample_pipeline(3);
  p.fit(data.X, data.y);
  for (auto _ : state) {
    Pipeline copy = p;  // per-fold copy cost inside cross_validate
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_PipelineDeepCopy);

}  // namespace

int main(int argc, char** argv) {
  coda::bench::strip_obs_flags(&argc, argv);
  print_fig5();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  coda::bench::dump_obs_if_requested();
  return 0;
}
