// Regenerates Fig 11: the full time-series prediction graph — Data Scaling
// x Data Preprocessing x Modelling with compatibility edges (cascaded ->
// temporal models, flat/IID -> standard DNNs, as-is -> statistical). The
// artifact evaluates every legal path with the sliding split and reports
// the ranked outcome plus the edge-pruning ablation (DESIGN.md choice 5).
// Neural epochs are reduced so the full search fits a bench run; the
// examples/industrial_forecast binary runs the full-budget version.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench/bench_util.h"
#include "src/data/synthetic.h"
#include "src/ts/forecast_graph.h"
#include "src/util/stopwatch.h"

using namespace coda;
using namespace coda::ts;

namespace {

TimeSeries workload() {
  IndustrialSeriesConfig cfg;
  cfg.n_variables = 2;
  cfg.length = 260;
  cfg.seasonal_amplitude = 2.0;
  cfg.noise_stddev = 0.2;
  return make_industrial_series(cfg);
}

void print_fig11() {
  const TimeSeries series = workload();
  ForecastSpec spec;
  spec.history = 24;
  const ForecastGraph graph =
      ForecastGraph::standard(spec, /*neural_epochs=*/12);

  std::printf("=== Fig 11 (regenerated): time-series prediction pipeline "
              "graph ===\n\n");
  std::printf("stages: %zu scalers x %zu preprocessors x %zu models\n",
              graph.n_scalers(), graph.n_windowers(), graph.n_models());
  std::printf("edge-pruning ablation: %zu legal paths vs %zu in the full "
              "cartesian product (%.0f%% pruned by compatibility edges)\n\n",
              graph.enumerate().size(), graph.count_full_cartesian(),
              100.0 * (1.0 - static_cast<double>(graph.enumerate().size()) /
                                 static_cast<double>(
                                     graph.count_full_cartesian())));

  EvaluatorConfig config;
  config.metric = Metric::kRmse;
  ForecastGraphEvaluator evaluator(config);
  const TimeSeriesSlidingSplit cv(/*k=*/2, /*train=*/150, /*val=*/40,
                                  /*buffer=*/5);
  Stopwatch timer;
  const auto report = evaluator.evaluate(graph, series, cv);
  const double seconds = timer.elapsed_seconds();

  std::vector<std::size_t> order(report.results.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return report.results[a].mean_score < report.results[b].mean_score;
  });
  std::vector<std::vector<std::string>> rows;
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    const auto& r = report.results[order[rank]];
    std::string spec_short = r.spec;
    for (std::size_t pos = spec_short.find('(');
         pos != std::string::npos; pos = spec_short.find('(')) {
      spec_short.erase(pos, spec_short.find(')', pos) - pos + 1);
    }
    rows.push_back({coda::bench::fmt_int(rank + 1), spec_short,
                    coda::bench::fmt(r.mean_score),
                    coda::bench::fmt(r.eval_seconds, 2)});
  }
  coda::bench::print_table({"#", "path", "RMSE", "eval s"}, rows,
                           {3, -54, 10, 8});

  // Where did the statistical floor land?
  std::size_t zero_rank = 0;
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    if (report.results[order[rank]].spec.find("zeromodel") !=
        std::string::npos) {
      zero_rank = rank + 1;
      break;
    }
  }
  std::printf("\nbest path: %s (RMSE %.4f)\n", report.best().spec.c_str(),
              report.best().mean_score);
  std::printf("Zero-model baseline rank: %zu of %zu\n", zero_rank,
              order.size());
  std::printf("full search wall time: %.1fs\n\n", seconds);
}

void BM_ForecastGraphEnumerate(benchmark::State& state) {
  ForecastSpec spec;
  const auto graph = ForecastGraph::standard(spec);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph.enumerate());
  }
}
BENCHMARK(BM_ForecastGraphEnumerate);

void BM_ForecastGraphInstantiate(benchmark::State& state) {
  ForecastSpec spec;
  const auto graph = ForecastGraph::standard(spec);
  const auto candidates = graph.enumerate();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        graph.instantiate(candidates[i++ % candidates.size()], 2));
  }
}
BENCHMARK(BM_ForecastGraphInstantiate);

}  // namespace

int main(int argc, char** argv) {
  coda::bench::strip_metrics_flag(&argc, argv);
  print_fig11();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  coda::bench::dump_metrics_if_requested();
  return 0;
}
