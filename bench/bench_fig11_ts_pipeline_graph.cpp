// Regenerates Fig 11: the full time-series prediction graph — Data Scaling
// x Data Preprocessing x Modelling with compatibility edges (cascaded ->
// temporal models, flat/IID -> standard DNNs, as-is -> statistical). The
// artifact evaluates every legal path with the sliding split and reports
// the ranked outcome plus the edge-pruning ablation (DESIGN.md choice 5).
// Neural epochs are reduced so the full search fits a bench run; the
// examples/industrial_forecast binary runs the full-budget version.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <memory>
#include <utility>

#include "bench/bench_util.h"
#include "src/data/synthetic.h"
#include "src/ml/scalers.h"
#include "src/obs/metrics.h"
#include "src/ts/forecast_graph.h"
#include "src/ts/forecasters.h"
#include "src/ts/windowing.h"
#include "src/util/stopwatch.h"

using namespace coda;
using namespace coda::ts;

namespace {

TimeSeries workload() {
  IndustrialSeriesConfig cfg;
  cfg.n_variables = 2;
  cfg.length = 260;
  cfg.seasonal_amplitude = 2.0;
  cfg.noise_stddev = 0.2;
  return make_industrial_series(cfg);
}

void print_fig11() {
  const TimeSeries series = workload();
  ForecastSpec spec;
  spec.history = 24;
  const ForecastGraph graph =
      ForecastGraph::standard(spec, /*neural_epochs=*/12);

  std::printf("=== Fig 11 (regenerated): time-series prediction pipeline "
              "graph ===\n\n");
  std::printf("stages: %zu scalers x %zu preprocessors x %zu models\n",
              graph.n_scalers(), graph.n_windowers(), graph.n_models());
  std::printf("edge-pruning ablation: %zu legal paths vs %zu in the full "
              "cartesian product (%.0f%% pruned by compatibility edges)\n\n",
              graph.enumerate().size(), graph.count_full_cartesian(),
              100.0 * (1.0 - static_cast<double>(graph.enumerate().size()) /
                                 static_cast<double>(
                                     graph.count_full_cartesian())));

  const TimeSeriesSlidingSplit cv(/*k=*/2, /*train=*/150, /*val=*/40,
                                  /*buffer=*/5);
  EvalOptions config;
  config.metric = Metric::kRmse;
  ForecastGraphEvaluator evaluator(config);
  const auto& hits = obs::counter("eval.prefix_cache.hit");
  const auto& misses = obs::counter("eval.prefix_cache.miss");
  const std::uint64_t hits0 = hits.value();
  const std::uint64_t misses0 = misses.value();
  Stopwatch timer;
  const auto report = evaluator.evaluate(graph, series, cv);
  const double exhaustive_seconds = timer.elapsed_seconds();
  std::printf("full search: eval.prefix_cache.hit=%llu miss=%llu (windowing "
              "computed once per fold x scaler x preprocessor, not per "
              "candidate)\n\n",
              static_cast<unsigned long long>(hits.value() - hits0),
              static_cast<unsigned long long>(misses.value() - misses0));

  // The production full search runs through the successive-halving
  // scheduler (DESIGN.md §16): all paths race on the first validation
  // window, the losing fraction is pruned, survivors finish full CV. The
  // neural fits dominate the wall time, so pruning them after one window
  // is where the reclaimed budget comes from; eta=6 keeps the fold budget
  // under 60% of exhaustive while the selected pipeline stays identical.
  EvalOptions halving_config = config;
  halving_config.search.strategy = SearchStrategy::kHalving;
  halving_config.search.eta = 6;
  Stopwatch halving_timer;
  const auto halving_report =
      ForecastGraphEvaluator(halving_config).evaluate(graph, series, cv);
  const double seconds = halving_timer.elapsed_seconds();
  const bool identical =
      halving_report.best().spec == report.best().spec &&
      halving_report.best().fold_scores == report.best().fold_scores;
  std::printf("halving search (eta=6): %.1fs wall vs %.1fs exhaustive "
              "(%.2fx), fold evals %zu/%zu, pruned %zu of %zu after the "
              "first window, best identical: %s\n\n",
              seconds, exhaustive_seconds, exhaustive_seconds / seconds,
              halving_report.fold_evaluations, report.fold_evaluations,
              halving_report.pruned_candidates,
              halving_report.results.size(), identical ? "yes" : "NO (bug!)");

  std::vector<std::size_t> order(report.results.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return report.results[a].mean_score < report.results[b].mean_score;
  });
  std::vector<std::vector<std::string>> rows;
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    const auto& r = report.results[order[rank]];
    std::string spec_short = r.spec;
    for (std::size_t pos = spec_short.find('(');
         pos != std::string::npos; pos = spec_short.find('(')) {
      spec_short.erase(pos, spec_short.find(')', pos) - pos + 1);
    }
    rows.push_back({coda::bench::fmt_int(rank + 1), spec_short,
                    coda::bench::fmt(r.mean_score),
                    coda::bench::fmt(r.eval_seconds, 2)});
  }
  coda::bench::print_table({"#", "path", "RMSE", "eval s"}, rows,
                           {3, -54, 10, 8});

  // Where did the statistical floor land?
  std::size_t zero_rank = 0;
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    if (report.results[order[rank]].spec.find("zeromodel") !=
        std::string::npos) {
      zero_rank = rank + 1;
      break;
    }
  }
  std::printf("\nbest path: %s (RMSE %.4f)\n", report.best().spec.c_str(),
              report.best().mean_score);
  std::printf("Zero-model baseline rank: %zu of %zu\n", zero_rank,
              order.size());
  std::printf("full search wall time: %.1fs (halving), %.1fs (exhaustive "
              "reference)\n\n", seconds, exhaustive_seconds);
  // fig11_full_search is the production full-search wall: the halving
  // race. Neural fits dominate it and are the noisiest work in the repo; a
  // wide per-entry band keeps the gate strict on quiet entries. The
  // identity and fold-count entries are exact — drift there is a scheduler
  // bug, not noise.
  coda::bench::record_entry("fig11_full_search", seconds,
                            static_cast<double>(order.size()) / seconds,
                            "paths/s", /*exact=*/false, /*tolerance=*/0.40);
  coda::bench::record_entry("fig11_exhaustive_search", exhaustive_seconds,
                            static_cast<double>(order.size()) /
                                exhaustive_seconds,
                            "paths/s", /*exact=*/false, /*tolerance=*/0.40);
  coda::bench::record_entry("fig11_halving_identical", 0.0,
                            identical ? 1.0 : 0.0, "bool", /*exact=*/true);
  coda::bench::record_entry("fig11_halving_fold_evals", 0.0,
                            static_cast<double>(
                                halving_report.fold_evaluations),
                            "folds", /*exact=*/true);
  coda::bench::record_entry("fig11_exhaustive_fold_evals", 0.0,
                            static_cast<double>(report.fold_evaluations),
                            "folds", /*exact=*/true);
  coda::bench::record_entry("fig11_paths", 0.0,
                            static_cast<double>(order.size()), "paths",
                            /*exact=*/true);
}

// Shared-prefix cache ablation: the same search run with the evaluation
// engine's prefix cache disabled vs enabled. The full Fig 11 search is
// dominated by neural model fits, so the cache's effect hides in the noise
// there; this subgraph is windowing-bound (statistical models over long
// cascaded windows), which is exactly the shape the cache accelerates.
// Scores and the selected pipeline are bit-identical both ways.
void print_prefix_cache_ablation() {
  IndustrialSeriesConfig cfg;
  cfg.n_variables = 3;
  cfg.length = 4000;
  cfg.seasonal_amplitude = 2.0;
  cfg.noise_stddev = 0.2;
  const TimeSeries series = make_industrial_series(cfg);

  ForecastSpec spec;
  spec.history = 64;
  ForecastGraph graph(spec);
  graph.add_scaler(std::make_unique<StandardScaler>());
  graph.add_scaler(std::make_unique<MinMaxScaler>());
  graph.add_scaler(std::make_unique<RobustScaler>());
  graph.add_scaler(std::make_unique<NoOp>());
  graph.add_windower(std::make_unique<CascadedWindows>(), "cascaded");
  graph.add_model(std::make_unique<ArModel>(), "cascaded");
  // Persistence baselines reading different lag columns: cheap models that
  // all share the (scaler, windower) fitted prefix.
  for (int lag = 0; lag < 8; ++lag) {
    auto zero = std::make_unique<ZeroModel>();
    zero->set_name("zero_lag" + std::to_string(lag));
    zero->set_param("value_col", std::int64_t{lag});
    graph.add_model(std::move(zero), "cascaded");
  }
  const TimeSeriesSlidingSplit cv(/*k=*/2, /*train=*/3000, /*val=*/450,
                                  /*buffer=*/10);

  const auto run = [&](std::size_t cache_bytes) {
    EvalOptions options;
    options.metric = Metric::kRmse;
    options.prefix_cache_bytes = cache_bytes;
    ForecastGraphEvaluator evaluator(options);
    Stopwatch timer;
    const auto report = evaluator.evaluate(graph, series, cv);
    return std::make_pair(timer.elapsed_seconds(), report.best().spec);
  };

  std::printf("=== shared-prefix cache ablation (windowing-bound subgraph: "
              "%zu candidates, %zu-step history) ===\n\n",
              graph.enumerate().size(), static_cast<std::size_t>(spec.history));
  const auto& hits = obs::counter("eval.prefix_cache.hit");
  const auto& misses = obs::counter("eval.prefix_cache.miss");
  const auto& requeued = obs::counter("eval.claim.requeued");
  const std::uint64_t hits0 = hits.value();
  const std::uint64_t misses0 = misses.value();
  const auto [cold_seconds, cold_best] = run(/*cache_bytes=*/0);
  const auto [warm_seconds, warm_best] = run(EvalOptions{}.prefix_cache_bytes);
  std::printf("  prefix cache off: %.3fs wall\n", cold_seconds);
  std::printf("  prefix cache on:  %.3fs wall (%.2fx speedup)\n",
              warm_seconds, cold_seconds / warm_seconds);
  std::printf("  eval.prefix_cache.hit=%llu miss=%llu  "
              "eval.claim.requeued=%llu\n",
              static_cast<unsigned long long>(hits.value() - hits0),
              static_cast<unsigned long long>(misses.value() - misses0),
              static_cast<unsigned long long>(requeued.value()));
  std::printf("  best pipeline identical: %s\n\n",
              cold_best == warm_best ? "yes" : "NO (bug!)");
}

// Fused-plan ablation (DESIGN.md section 14): the same windowing-bound
// search run with plan compilation off (interpreted executor: scale the
// whole series, build the monolithic window matrix, copy train/val row
// ranges out of it) vs on (compiled plan emits the train/val matrices
// straight from the raw series in one pass — no scaled-series or
// monolithic-window intermediates). The full Fig 11 search is dominated
// by model fits, so the lowering's effect hides in the noise there; this
// subgraph is prepare-bound (persistence baselines over wide cascaded
// windows), which is exactly the work the lowering removes. Scores and
// the selected pipeline are bit-identical both ways — the differential
// suite in tests/test_plan_compiler.cpp pins that for every path.
void print_fusion_ablation() {
  IndustrialSeriesConfig cfg;
  cfg.n_variables = 3;
  cfg.length = 4000;
  cfg.seasonal_amplitude = 2.0;
  cfg.noise_stddev = 0.2;
  const TimeSeries series = make_industrial_series(cfg);

  ForecastSpec spec;
  spec.history = 96;
  ForecastGraph graph(spec);
  graph.add_scaler(std::make_unique<StandardScaler>());
  graph.add_scaler(std::make_unique<MinMaxScaler>());
  graph.add_scaler(std::make_unique<RobustScaler>());
  graph.add_scaler(std::make_unique<NoOp>());
  graph.add_windower(std::make_unique<CascadedWindows>(), "cascaded");
  // Persistence baselines reading different lag columns: free fits, so the
  // wall time is the prepare stage the compiled plan fuses.
  for (int lag = 0; lag < 10; ++lag) {
    auto zero = std::make_unique<ZeroModel>();
    zero->set_name("zero_lag" + std::to_string(lag));
    zero->set_param("value_col", std::int64_t{lag});
    graph.add_model(std::move(zero), "cascaded");
  }
  const TimeSeriesSlidingSplit cv(/*k=*/2, /*train=*/3000, /*val=*/450,
                                  /*buffer=*/10);

  const auto run = [&](bool compile_plans) {
    EvalOptions options;
    options.metric = Metric::kRmse;
    options.compile_plans = compile_plans;
    ForecastGraphEvaluator evaluator(options);
    Stopwatch timer;
    auto report = evaluator.evaluate(graph, series, cv);
    return std::make_pair(timer.elapsed_seconds(), std::move(report));
  };

  std::printf("=== fused-plan ablation (prepare-bound subgraph: %zu "
              "candidates, %zu-step history) ===\n\n",
              graph.enumerate().size(),
              static_cast<std::size_t>(spec.history));
  const auto& compiled = obs::counter("eval.plan.compiled");
  const auto& fused_stages = obs::counter("eval.plan.fused_stages");
  const auto& fallback = obs::counter("eval.plan.fallback");
  const std::uint64_t compiled0 = compiled.value();
  const std::uint64_t fused0 = fused_stages.value();
  const std::uint64_t fallback0 = fallback.value();
  const auto [interp_seconds, interp_report] = run(/*compile_plans=*/false);
  const auto [fused_seconds, fused_report] = run(/*compile_plans=*/true);

  // Bitwise differential over every candidate, not just the winner: the
  // lowering must be invisible to scores.
  bool identical = interp_report.results.size() == fused_report.results.size();
  for (std::size_t i = 0; identical && i < interp_report.results.size(); ++i) {
    const auto& a = interp_report.results[i];
    const auto& b = fused_report.results[i];
    identical = a.spec == b.spec && a.fold_scores == b.fold_scores;
  }
  identical =
      identical && interp_report.best().spec == fused_report.best().spec;

  const double speedup = interp_seconds / fused_seconds;
  std::printf("  plans interpreted: %.3fs wall\n", interp_seconds);
  std::printf("  plans compiled:    %.3fs wall (%.2fx speedup)\n",
              fused_seconds, speedup);
  std::printf("  eval.plan.compiled=%llu fused_stages=%llu fallback=%llu\n",
              static_cast<unsigned long long>(compiled.value() - compiled0),
              static_cast<unsigned long long>(fused_stages.value() - fused0),
              static_cast<unsigned long long>(fallback.value() - fallback0));
  std::printf("  all %zu candidate scores bit-identical: %s\n\n",
              interp_report.results.size(), identical ? "yes" : "NO (bug!)");
  // Wide bands: single-digit-millisecond prepares on a shared box. The
  // identity entry is exact — any drift is a lowering bug, not noise.
  coda::bench::record_entry("fig11_fusion_interpreted", interp_seconds, 0.0,
                            "", /*exact=*/false, /*tolerance=*/0.60);
  coda::bench::record_entry("fig11_fusion_fused", fused_seconds, speedup,
                            "x", /*exact=*/false, /*tolerance=*/0.60);
  coda::bench::record_entry("fig11_fusion_identical", 0.0,
                            identical ? 1.0 : 0.0, "bool", /*exact=*/true);
}

void BM_ForecastGraphEnumerate(benchmark::State& state) {
  ForecastSpec spec;
  const auto graph = ForecastGraph::standard(spec);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph.enumerate());
  }
}
BENCHMARK(BM_ForecastGraphEnumerate);

void BM_ForecastGraphInstantiate(benchmark::State& state) {
  ForecastSpec spec;
  const auto graph = ForecastGraph::standard(spec);
  const auto candidates = graph.enumerate();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        graph.instantiate(candidates[i++ % candidates.size()], 2));
  }
}
BENCHMARK(BM_ForecastGraphInstantiate);

}  // namespace

int main(int argc, char** argv) {
  coda::bench::strip_obs_flags(&argc, argv);
  print_fig11();
  print_prefix_cache_ablation();
  print_fusion_ablation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  coda::bench::dump_obs_if_requested();
  return 0;
}
