// Section IV-E: the four solution templates on synthetic industrial
// workloads. The artifact reports each template's quality metric and
// runtime — the "repeatable analyses a non-expert can run" the paper
// motivates; benchmarks time the cheap templates end-to-end.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/data/synthetic.h"
#include "src/templates/anomaly.h"
#include "src/templates/cohort.h"
#include "src/templates/failure_prediction.h"
#include "src/templates/root_cause.h"
#include "src/util/random.h"
#include "src/util/stopwatch.h"

using namespace coda;
using namespace coda::templates;

namespace {

void print_artifact() {
  std::printf("=== Section IV-E (regenerated): solution templates ===\n\n");
  std::vector<std::vector<std::string>> rows;

  {
    FailureWorkloadConfig cfg;
    cfg.n_samples = 500;
    cfg.failure_rate = 0.08;
    cfg.degradation_signal = 4.0;
    const auto data = make_failure_workload(cfg);
    Stopwatch timer;
    FailurePredictionAnalysis fpa;
    const auto result = fpa.run(data);
    rows.push_back({"Failure Prediction (FPA)",
                    "F1=" + coda::bench::fmt(result.best_f1, 3) +
                        " AUC=" + coda::bench::fmt(result.best_auc, 3),
                    "top sensor: " + result.top_sensors[0].first,
                    coda::bench::fmt(timer.elapsed_seconds(), 2)});
  }
  {
    Rng rng(61);
    Dataset d;
    d.X = Matrix(400, 4);
    d.y.resize(400);
    d.feature_names = {"temperature", "pressure", "vibration", "humidity"};
    for (std::size_t i = 0; i < 400; ++i) {
      for (std::size_t j = 0; j < 4; ++j) d.X(i, j) = rng.normal();
      d.y[i] = 6.0 * d.X(i, 0) - 2.5 * d.X(i, 2) + rng.normal(0.0, 0.3);
    }
    Stopwatch timer;
    RootCauseAnalysis rca;
    const auto result = rca.run(d);
    rows.push_back({"Root Cause (RCA)",
                    "R2=" + coda::bench::fmt(result.model_r2, 3),
                    "top factor: " + result.factor_importance[0].first,
                    coda::bench::fmt(timer.elapsed_seconds(), 2)});
  }
  {
    Rng rng(62);
    Matrix readings(500, 4);
    for (double& v : readings.data()) v = rng.normal(20.0, 2.0);
    readings(120, 1) = 60.0;
    readings(300, 3) = -15.0;
    Stopwatch timer;
    AnomalyAnalysis detector;
    const auto result = detector.fit_score(readings);
    const bool found_both =
        std::find(result.anomalies.begin(), result.anomalies.end(), 120u) !=
            result.anomalies.end() &&
        std::find(result.anomalies.begin(), result.anomalies.end(), 300u) !=
            result.anomalies.end();
    rows.push_back({"Anomaly Analysis",
                    std::to_string(result.anomalies.size()) + " flagged",
                    found_both ? "both injected anomalies found"
                               : "MISSED injected anomaly",
                    coda::bench::fmt(timer.elapsed_seconds(), 2)});
  }
  {
    CohortWorkloadConfig cfg;
    cfg.n_assets = 120;
    cfg.n_cohorts = 3;
    const auto assets = make_cohort_workload(cfg);
    Stopwatch timer;
    CohortAnalysis ca;
    const auto result = ca.run(assets.X);
    rows.push_back({"Cohort Analysis (CA)",
                    "k=" + std::to_string(result.k) + " (auto)",
                    "inertia=" + coda::bench::fmt(result.inertia, 1),
                    coda::bench::fmt(timer.elapsed_seconds(), 2)});
  }

  coda::bench::print_table({"template", "quality", "finding", "seconds"},
                           rows, {-26, -20, -34, 8});
  std::printf("\n");
}

void BM_AnomalyTemplate(benchmark::State& state) {
  Rng rng(63);
  Matrix readings(500, 4);
  for (double& v : readings.data()) v = rng.normal(20.0, 2.0);
  for (auto _ : state) {
    AnomalyAnalysis detector;
    benchmark::DoNotOptimize(detector.fit_score(readings));
  }
}
BENCHMARK(BM_AnomalyTemplate);

void BM_CohortTemplate(benchmark::State& state) {
  CohortWorkloadConfig cfg;
  cfg.n_assets = 120;
  const auto assets = make_cohort_workload(cfg);
  for (auto _ : state) {
    CohortAnalysis::Config ca_cfg;
    ca_cfg.k = 3;
    CohortAnalysis ca(ca_cfg);
    benchmark::DoNotOptimize(ca.run(assets.X));
  }
}
BENCHMARK(BM_CohortTemplate)->Unit(benchmark::kMillisecond);

void BM_RootCauseTemplate(benchmark::State& state) {
  Rng rng(64);
  Dataset d;
  d.X = Matrix(300, 4);
  d.y.resize(300);
  for (std::size_t i = 0; i < 300; ++i) {
    for (std::size_t j = 0; j < 4; ++j) d.X(i, j) = rng.normal();
    d.y[i] = 3.0 * d.X(i, 0) + rng.normal(0.0, 0.2);
  }
  for (auto _ : state) {
    RootCauseAnalysis rca;
    benchmark::DoNotOptimize(rca.run(d));
  }
}
BENCHMARK(BM_RootCauseTemplate)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  coda::bench::strip_obs_flags(&argc, argv);
  print_artifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  coda::bench::dump_obs_if_requested();
  return 0;
}
