// Regenerates Fig 10: time series with no operation — the raw target
// passed to models that need no transformation (the Zero/persistence
// model). The artifact verifies the pass-through semantics (original
// units, untouched by any scaler) and the persistence baseline's score.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/core/metrics.h"
#include "src/data/synthetic.h"
#include "src/ml/scalers.h"
#include "src/ts/forecast_pipeline.h"
#include "src/ts/forecasters.h"

using namespace coda;
using namespace coda::ts;

namespace {

TimeSeries series() {
  IndustrialSeriesConfig cfg;
  cfg.n_variables = 3;
  cfg.length = 400;
  return make_industrial_series(cfg);
}

void print_fig10() {
  std::printf("=== Fig 10 (regenerated): time series with no operation "
              "===\n\n");
  const auto ts = series();
  ForecastSpec spec;

  // Pass-through check: even with an aggressive scaler in the pipeline,
  // the as-is feed carries original units so Zero predicts ground truth.
  const TsAsIs maker;
  Matrix scaled = ts.values();
  for (double& v : scaled.data()) v *= 1e-3;
  const auto wd = maker.build(scaled, ts.values(), spec);
  bool passthrough = true;
  for (std::size_t t = 0; t < wd.X.rows(); ++t) {
    if (wd.X(t, 0) != ts.values()(t, 0)) passthrough = false;
  }
  std::printf("pass-through of original units despite scaling: %s\n",
              passthrough ? "yes" : "NO (bug)");

  // The persistence baseline's score across sliding folds + horizons.
  std::vector<std::vector<std::string>> rows;
  for (const std::size_t horizon : {1u, 3u, 6u}) {
    ForecastSpec hspec;
    hspec.horizon = horizon;
    ForecastPipeline zero(std::make_unique<NoOp>(),
                          std::make_unique<TsAsIs>(),
                          std::make_unique<ZeroModel>(), hspec);
    const auto result = evaluate_forecast(
        zero, ts, TimeSeriesSlidingSplit(3, 220, 50, 5), Metric::kRmse);
    rows.push_back({coda::bench::fmt_int(horizon),
                    coda::bench::fmt(result.mean_score),
                    coda::bench::fmt(result.stddev)});
  }
  std::printf("\nZero-model (persistence) baseline by horizon:\n");
  coda::bench::print_table({"horizon", "RMSE", "+/-"}, rows, {7, 10, 8});
  std::printf("\n(the floor every learned path must beat; error grows with "
              "horizon as persistence decays)\n\n");
}

void BM_AsIsBuild(benchmark::State& state) {
  const auto ts = series();
  const TsAsIs maker;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        maker.build(ts.values(), ts.values(), ForecastSpec{}));
  }
}
BENCHMARK(BM_AsIsBuild);

void BM_ZeroModelEndToEnd(benchmark::State& state) {
  const auto ts = series();
  for (auto _ : state) {
    ForecastPipeline zero(std::make_unique<NoOp>(),
                          std::make_unique<TsAsIs>(),
                          std::make_unique<ZeroModel>(), ForecastSpec{});
    zero.fit_full(ts);
    benchmark::DoNotOptimize(zero.forecast_next(ts));
  }
}
BENCHMARK(BM_ZeroModelEndToEnd);

}  // namespace

int main(int argc, char** argv) {
  coda::bench::strip_obs_flags(&argc, argv);
  print_fig10();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  coda::bench::dump_obs_if_requested();
  return 0;
}
