// Regenerates Fig 12: the TimeSeriesSlidingSplit cross-validation — train
// and validation windows separated by a buffer, sliding forward across k
// iterations. The artifact prints the concrete window layout (the figure's
// content), machine-checks the no-leakage invariant, and compares a
// leakage-prone random K-fold against the sliding split on a drifting
// series (the reason the paper uses it).
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/core/evaluator.h"
#include "src/data/synthetic.h"
#include "src/ml/knn.h"
#include "src/ml/scalers.h"
#include "src/ts/forecast_pipeline.h"
#include "src/ts/forecasters.h"

using namespace coda;
using namespace coda::ts;

namespace {

void print_fig12() {
  std::printf("=== Fig 12 (regenerated): TimeSeriesSlidingSplit ===\n\n");
  const TimeSeriesSlidingSplit cv(/*k=*/4, /*train=*/60, /*val=*/20,
                                  /*buffer=*/10);
  const auto splits = cv.splits(200);
  std::vector<std::vector<std::string>> rows;
  std::size_t leaks = 0;
  for (std::size_t f = 0; f < splits.size(); ++f) {
    const auto& s = splits[f];
    for (const std::size_t tr : s.train) {
      if (tr >= s.test.front()) ++leaks;
    }
    rows.push_back(
        {coda::bench::fmt_int(f + 1),
         "[" + std::to_string(s.train.front()) + ", " +
             std::to_string(s.train.back() + 1) + ")",
         "[" + std::to_string(s.train.back() + 1) + ", " +
             std::to_string(s.test.front()) + ")",
         "[" + std::to_string(s.test.front()) + ", " +
             std::to_string(s.test.back() + 1) + ")"});
  }
  coda::bench::print_table(
      {"iteration", "train window", "buffer", "validation window"}, rows,
      {9, -14, -12, -18});
  std::printf("\nno-leakage check: %zu training indices at/after the "
              "validation start (must be 0)\n\n",
              leaks);

  // Why it matters: on a drifting series, random K-fold interleaves future
  // points into training and reports an optimistic error. The effect is
  // starkest for models that interpolate but cannot extrapolate (trees,
  // kNN): random folds let them interpolate between leaked future points;
  // the sliding split forces honest extrapolation to unseen levels.
  IndustrialSeriesConfig cfg;
  cfg.length = 400;
  cfg.n_variables = 1;
  cfg.trend_slope = 0.05;  // strong drift
  const auto series = make_industrial_series(cfg);
  ForecastSpec spec;
  spec.history = 24;
  const CascadedWindows maker;
  const auto wd = maker.build(series.values(), series.values(), spec);
  Dataset windows;
  windows.X = wd.X;
  windows.y = wd.y;

  Pipeline p;
  p.set_estimator(std::make_unique<KnnRegressor>());
  const double random_kfold =
      cross_validate(p, windows, KFold(5), Metric::kRmse).mean_score;
  const double sliding =
      cross_validate(p, windows,
                     TimeSeriesSlidingSplit(5, 200, 40, spec.history),
                     Metric::kRmse)
          .mean_score;
  std::printf("drifting series, kNN on 24-step windows:\n");
  std::printf("  random 5-fold RMSE:     %.4f (optimistic: future leaks "
              "into training)\n",
              random_kfold);
  std::printf("  sliding-split RMSE:     %.4f (honest forward error)\n",
              sliding);
  std::printf("  optimism factor:        %.2fx\n\n", sliding / random_kfold);
}

void BM_SlidingSplitGeneration(benchmark::State& state) {
  const TimeSeriesSlidingSplit cv(static_cast<std::size_t>(state.range(0)),
                                  500, 100, 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cv.splits(100000));
  }
}
BENCHMARK(BM_SlidingSplitGeneration)->Arg(3)->Arg(10)->Arg(50);

}  // namespace

int main(int argc, char** argv) {
  coda::bench::strip_obs_flags(&argc, argv);
  print_fig12();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  coda::bench::dump_obs_if_requested();
  return 0;
}
