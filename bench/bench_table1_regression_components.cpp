// Regenerates Table I ("Different steps in machine learning modeling") as a
// measured artifact: every component option of every modeling step is
// evaluated on the synthetic regression workload — each option swapped into
// a reference pipeline — with 5-fold CV scores under both RMSE and MAPE
// (the paper's model-score rows). Then google-benchmark times the
// individual components' fit+transform/fit+predict costs.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/core/evaluator.h"
#include "src/data/synthetic.h"
#include "src/ml/decision_tree.h"
#include "src/ml/feature_selection.h"
#include "src/ml/kernel_pca.h"
#include "src/ml/linear.h"
#include "src/ml/mlp.h"
#include "src/ml/pca.h"
#include "src/ml/random_forest.h"
#include "src/ml/scalers.h"

using namespace coda;

namespace {

Dataset workload() {
  RegressionConfig cfg;
  cfg.n_samples = 400;
  cfg.n_features = 12;
  cfg.n_informative = 6;
  return make_regression(cfg);
}

// Evaluates a pipeline of (selector option, scaler option, model option)
// with 5-fold CV under `metric`.
double evaluate(std::unique_ptr<Transformer> scaler,
                std::unique_ptr<Transformer> selector,
                std::unique_ptr<Estimator> model, const Dataset& data,
                Metric metric) {
  Pipeline p;
  p.add_transformer(std::move(scaler));
  p.add_transformer(std::move(selector));
  p.set_estimator(std::move(model));
  return cross_validate(p, data, KFold(5), metric).mean_score;
}

std::unique_ptr<Transformer> ref_scaler() {
  return std::make_unique<StandardScaler>();
}
std::unique_ptr<Transformer> ref_selector() {
  auto s = std::make_unique<SelectKBest>();
  s->set_param("k", std::int64_t{6});
  s->set_name("ref_select");
  return s;
}
std::unique_ptr<Estimator> ref_model() {
  return std::make_unique<RandomForestRegressor>();
}

void print_table1() {
  const Dataset data = workload();
  std::vector<std::vector<std::string>> rows;

  auto add_row = [&rows](const std::string& step, const std::string& option,
                         double rmse_score, double mape_score) {
    rows.push_back({step, option, coda::bench::fmt(rmse_score),
                    coda::bench::fmt(mape_score, 1)});
  };

  // --- Select Features row group (SelectKBest / variance / none) --------
  {
    auto kbest = std::make_unique<SelectKBest>();
    kbest->set_param("k", std::int64_t{6});
    add_row("Select Features", "SelectKBest(k=6)",
            evaluate(ref_scaler(), std::move(kbest), ref_model(), data,
                     Metric::kRmse),
            evaluate(ref_scaler(),
                     [] {
                       auto s = std::make_unique<SelectKBest>();
                       s->set_param("k", std::int64_t{6});
                       return s;
                     }(),
                     ref_model(), data, Metric::kMape));
  }
  {
    auto variance = std::make_unique<SelectKBest>();
    variance->set_param("k", std::int64_t{6});
    variance->set_param("score", std::string("variance"));
    variance->set_name("kbest_variance");
    auto variance2 = std::make_unique<SelectKBest>();
    variance2->set_param("k", std::int64_t{6});
    variance2->set_param("score", std::string("variance"));
    variance2->set_name("kbest_variance");
    add_row("Select Features", "KBest by variance",
            evaluate(ref_scaler(), std::move(variance), ref_model(), data,
                     Metric::kRmse),
            evaluate(ref_scaler(), std::move(variance2), ref_model(), data,
                     Metric::kMape));
  }
  add_row("Select Features", "NoOp (all features)",
          evaluate(ref_scaler(), std::make_unique<NoOp>(), ref_model(), data,
                   Metric::kRmse),
          evaluate(ref_scaler(), std::make_unique<NoOp>(), ref_model(), data,
                   Metric::kMape));

  // --- Feature Normalization row group ----------------------------------
  // Scored against a scale-sensitive reference model (MLP): tree ensembles
  // are invariant to monotone feature scaling, which would make every
  // scaler row identical — itself a finding, noted in EXPERIMENTS.md.
  auto scaler_row = [&](const std::string& label, auto make) {
    add_row("Feature Normalization", label,
            evaluate(make(), ref_selector(), std::make_unique<MlpRegressor>(),
                     data, Metric::kRmse),
            evaluate(make(), ref_selector(), std::make_unique<MlpRegressor>(),
                     data, Metric::kMape));
  };
  scaler_row("Min-Max Normalization",
             [] { return std::make_unique<MinMaxScaler>(); });
  scaler_row("Standard Scaler",
             [] { return std::make_unique<StandardScaler>(); });
  scaler_row("Robust Scaler",
             [] { return std::make_unique<RobustScaler>(); });
  scaler_row("No scaling",
             [] { return std::make_unique<NoOp>(); });

  // --- Feature Transformation row group ----------------------------------
  auto transform_row = [&](const std::string& label, auto make) {
    add_row("Feature Transformation", label,
            evaluate(ref_scaler(), make(), ref_model(), data, Metric::kRmse),
            evaluate(ref_scaler(), make(), ref_model(), data, Metric::kMape));
  };
  transform_row("PCA(4)", [] {
    auto pca = std::make_unique<PCA>();
    pca->set_param("n_components", std::int64_t{4});
    return pca;
  });
  transform_row("PCA(4, whitened)", [] {
    auto pca = std::make_unique<PCA>();
    pca->set_param("n_components", std::int64_t{4});
    pca->set_param("whiten", true);
    return pca;
  });
  transform_row("kernel-PCA (RBF, 4)", [] {
    auto kpca = std::make_unique<KernelPCA>();
    kpca->set_param("n_components", std::int64_t{4});
    return kpca;
  });

  // --- Model Training row group -------------------------------------------
  auto model_row = [&](const std::string& label, auto make) {
    add_row("Model Training", label,
            evaluate(ref_scaler(), ref_selector(), make(), data,
                     Metric::kRmse),
            evaluate(ref_scaler(), ref_selector(), make(), data,
                     Metric::kMape));
  };
  model_row("Random Forest",
            [] { return std::make_unique<RandomForestRegressor>(); });
  model_row("MLP (neural)", [] { return std::make_unique<MlpRegressor>(); });
  model_row("Linear Regression",
            [] { return std::make_unique<LinearRegression>(); });
  model_row("Decision Tree",
            [] { return std::make_unique<DecisionTreeRegressor>(); });

  // --- Model Evaluation row group (CV strategies on the reference) -------
  auto cv_row = [&](const std::string& label, const CrossValidator& cv) {
    Pipeline p;
    p.add_transformer(ref_scaler());
    p.add_transformer(ref_selector());
    p.set_estimator(ref_model());
    const auto rm = cross_validate(p, data, cv, Metric::kRmse).mean_score;
    const auto mp = cross_validate(p, data, cv, Metric::kMape).mean_score;
    add_row("Model Evaluation", label, rm, mp);
  };
  cv_row("k-fold CV (k=5)", KFold(5));
  cv_row("Monte-Carlo (10x)", MonteCarloCV(10, 0.75));

  std::printf("=== Table I (regenerated): per-component scores on the "
              "synthetic regression workload ===\n");
  std::printf("(reference pipeline: standardscaler -> selectkbest(6) -> "
              "randomforest; one step swapped per row)\n\n");
  coda::bench::print_table({"Step", "Component", "RMSE", "MAPE%"}, rows,
                           {-24, -24, 10, 8});
  std::printf("\n");
}

// --- micro benchmarks -----------------------------------------------------

void BM_StandardScalerFitTransform(benchmark::State& state) {
  const Dataset data = workload();
  for (auto _ : state) {
    StandardScaler scaler;
    benchmark::DoNotOptimize(scaler.fit_transform(data.X, data.y));
  }
}
BENCHMARK(BM_StandardScalerFitTransform);

void BM_Pca4FitTransform(benchmark::State& state) {
  const Dataset data = workload();
  for (auto _ : state) {
    PCA pca;
    pca.set_param("n_components", std::int64_t{4});
    benchmark::DoNotOptimize(pca.fit_transform(data.X, data.y));
  }
}
BENCHMARK(BM_Pca4FitTransform);

void BM_RandomForestFit(benchmark::State& state) {
  const Dataset data = workload();
  for (auto _ : state) {
    RandomForestRegressor forest;
    forest.fit(data.X, data.y);
    benchmark::DoNotOptimize(forest);
  }
}
BENCHMARK(BM_RandomForestFit);

void BM_LinearRegressionFit(benchmark::State& state) {
  const Dataset data = workload();
  for (auto _ : state) {
    LinearRegression model;
    model.fit(data.X, data.y);
    benchmark::DoNotOptimize(model);
  }
}
BENCHMARK(BM_LinearRegressionFit);

}  // namespace

int main(int argc, char** argv) {
  coda::bench::strip_obs_flags(&argc, argv);
  print_table1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  coda::bench::dump_obs_if_requested();
  return 0;
}
