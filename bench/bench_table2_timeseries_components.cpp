// Regenerates Table II ("Different steps in time series prediction
// pipeline") as a measured artifact: each stage option of the Fig 11
// pipeline — data scalers, data preprocessors, model families — scored with
// the TimeSeriesSlidingSplit under RMSE and MAPE on the synthetic
// industrial series. Micro benchmarks time the windowing preprocessors.
#include <benchmark/benchmark.h>

#include <memory>

#include "bench/bench_util.h"
#include "src/data/synthetic.h"
#include "src/ml/scalers.h"
#include "src/ts/forecast_pipeline.h"
#include "src/ts/forecasters.h"
#include "src/ts/nn_forecasters.h"

using namespace coda;
using namespace coda::ts;

namespace {

TimeSeries workload() {
  // A learnable industrial series: strong daily cycle, modest noise, no
  // regime shifts — the setting where the paper's learned models earn
  // their keep over persistence (persistence-dominant regimes are covered
  // by bench_fig11 and the Fig 10 horizon sweep).
  IndustrialSeriesConfig cfg;
  cfg.n_variables = 3;
  cfg.length = 320;
  cfg.seasonal_amplitude = 3.0;
  cfg.noise_stddev = 0.1;
  cfg.ar_coefficient = 0.2;
  cfg.regime_shifts = 0;
  return make_industrial_series(cfg);
}

ForecastSpec spec() {
  ForecastSpec s;
  s.history = 24;
  return s;
}

TimeSeriesSlidingSplit cv() {
  return TimeSeriesSlidingSplit(/*k=*/2, /*train=*/180, /*val=*/40,
                                /*buffer=*/5);
}

std::unique_ptr<Estimator> fast_model() {
  return std::make_unique<ArModel>();
}

std::unique_ptr<Estimator> neural(const std::string& family,
                                  const std::string& arch,
                                  std::size_t n_vars) {
  std::unique_ptr<NeuralForecaster> m;
  if (family == "lstm") m = std::make_unique<LstmForecaster>();
  else if (family == "cnn") m = std::make_unique<CnnForecaster>();
  else if (family == "wavenet") m = std::make_unique<WaveNetForecaster>();
  else if (family == "seriesnet") m = std::make_unique<SeriesNetForecaster>();
  else m = std::make_unique<DnnForecaster>();
  if (!arch.empty()) m->set_param("arch", arch);
  if (m->params().contains("n_vars")) {
    m->set_param("n_vars", static_cast<std::int64_t>(n_vars));
  }
  m->set_param("epochs", std::int64_t{25});
  return m;
}

void print_table2() {
  const TimeSeries series = workload();
  std::vector<std::vector<std::string>> rows;

  auto score_pipeline = [&](std::unique_ptr<Transformer> scaler,
                            std::unique_ptr<WindowMaker> windower,
                            std::unique_ptr<Estimator> model)
      -> std::pair<double, double> {
    ForecastPipeline rmse_p(scaler->clone_transformer(), windower->clone(),
                            model->clone_estimator(), spec());
    ForecastPipeline mape_p(std::move(scaler), std::move(windower),
                            std::move(model), spec());
    return {evaluate_forecast(rmse_p, series, cv(), Metric::kRmse).mean_score,
            evaluate_forecast(mape_p, series, cv(), Metric::kMape)
                .mean_score};
  };

  auto add = [&rows](const std::string& step, const std::string& option,
                     std::pair<double, double> s) {
    rows.push_back({step, option, coda::bench::fmt(s.first),
                    coda::bench::fmt(s.second, 1)});
  };

  // Data Scaling stage — scored against a scale-sensitive neural consumer
  // (linear AR is affine-equivariant, so every scaler would tie on it; the
  // same invariance shows up in Table I for tree models).
  auto scaler_consumer = [&] {
    return neural("cnn", "simple", series.n_variables());
  };
  add("Data Scaling", "Min-Max Scaling",
      score_pipeline(std::make_unique<MinMaxScaler>(),
                     std::make_unique<CascadedWindows>(), scaler_consumer()));
  add("Data Scaling", "Robust Scaling",
      score_pipeline(std::make_unique<RobustScaler>(),
                     std::make_unique<CascadedWindows>(), scaler_consumer()));
  add("Data Scaling", "No Scaling",
      score_pipeline(std::make_unique<NoOp>(),
                     std::make_unique<CascadedWindows>(), scaler_consumer()));
  add("Data Scaling", "Standard Scaler",
      score_pipeline(std::make_unique<StandardScaler>(),
                     std::make_unique<CascadedWindows>(), scaler_consumer()));

  // Data Preprocessing stage (reference scaler + matching consumer).
  add("Data Preprocessing", "Cascaded Windowing",
      score_pipeline(std::make_unique<StandardScaler>(),
                     std::make_unique<CascadedWindows>(),
                     neural("lstm", "simple", series.n_variables())));
  add("Data Preprocessing", "Flat Windowing",
      score_pipeline(std::make_unique<StandardScaler>(),
                     std::make_unique<FlatWindowing>(),
                     neural("dnn", "simple", series.n_variables())));
  add("Data Preprocessing", "TS-as-IID",
      score_pipeline(std::make_unique<StandardScaler>(),
                     std::make_unique<TsAsIid>(),
                     neural("dnn", "simple", series.n_variables())));
  add("Data Preprocessing", "TS-as-is",
      score_pipeline(std::make_unique<NoOp>(), std::make_unique<TsAsIs>(),
                     std::make_unique<ZeroModel>()));

  // Model Training stage (per family).
  add("Model Training", "Temporal DNN (LSTM)",
      score_pipeline(std::make_unique<StandardScaler>(),
                     std::make_unique<CascadedWindows>(),
                     neural("lstm", "simple", series.n_variables())));
  add("Model Training", "Temporal DNN (CNN)",
      score_pipeline(std::make_unique<StandardScaler>(),
                     std::make_unique<CascadedWindows>(),
                     neural("cnn", "simple", series.n_variables())));
  add("Model Training", "Temporal DNN (WaveNet)",
      score_pipeline(std::make_unique<StandardScaler>(),
                     std::make_unique<CascadedWindows>(),
                     neural("wavenet", "", series.n_variables())));
  add("Model Training", "Temporal DNN (SeriesNet)",
      score_pipeline(std::make_unique<StandardScaler>(),
                     std::make_unique<CascadedWindows>(),
                     neural("seriesnet", "", series.n_variables())));
  add("Model Training", "IID DNN",
      score_pipeline(std::make_unique<StandardScaler>(),
                     std::make_unique<FlatWindowing>(),
                     neural("dnn", "simple", series.n_variables())));
  add("Model Training", "Statistical (AR)",
      score_pipeline(std::make_unique<StandardScaler>(),
                     std::make_unique<CascadedWindows>(), fast_model()));
  add("Model Training", "Statistical (Zero)",
      score_pipeline(std::make_unique<NoOp>(), std::make_unique<TsAsIs>(),
                     std::make_unique<ZeroModel>()));

  std::printf("=== Table II (regenerated): time-series pipeline stage "
              "options, TimeSeriesSlidingSplit scoring ===\n\n");
  coda::bench::print_table(
      {"Step", "Component", "RMSE", "MAPE%"}, rows, {-20, -26, 10, 10});
  std::printf("\n(Model Evaluation row: TimeSeriesSlidingSplit %s; Model "
              "Score rows: the RMSE and MAPE columns above.)\n\n",
              cv().spec().c_str());
}

void BM_CascadedWindowBuild(benchmark::State& state) {
  const TimeSeries series = workload();
  CascadedWindows maker;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        maker.build(series.values(), series.values(), spec()));
  }
}
BENCHMARK(BM_CascadedWindowBuild);

void BM_ArModelEndToEnd(benchmark::State& state) {
  const TimeSeries series = workload();
  for (auto _ : state) {
    ForecastPipeline p(std::make_unique<StandardScaler>(),
                       std::make_unique<CascadedWindows>(),
                       std::make_unique<ArModel>(), spec());
    p.fit_full(series);
    benchmark::DoNotOptimize(p.forecast_next(series));
  }
}
BENCHMARK(BM_ArModelEndToEnd);

}  // namespace

int main(int argc, char** argv) {
  coda::bench::strip_obs_flags(&argc, argv);
  print_table2();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  coda::bench::dump_obs_if_requested();
  return 0;
}
