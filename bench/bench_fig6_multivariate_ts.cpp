// Regenerates Fig 6: multivariate time series data — the (L x v) sensor
// matrix the prediction task consumes. The artifact shows the generated
// workload's shape and structural properties (trend, seasonal
// autocorrelation, cross-coupling); benchmarks measure generator
// throughput across shapes.
#include <benchmark/benchmark.h>

#include <cmath>

#include "bench/bench_util.h"
#include "src/data/synthetic.h"

using namespace coda;

namespace {

double autocorrelation(const std::vector<double>& x, std::size_t lag) {
  double mean = 0.0;
  for (const double v : x) mean += v;
  mean /= static_cast<double>(x.size());
  double num = 0.0;
  double den = 0.0;
  for (std::size_t t = 0; t + lag < x.size(); ++t) {
    num += (x[t] - mean) * (x[t + lag] - mean);
  }
  for (const double v : x) den += (v - mean) * (v - mean);
  return den == 0.0 ? 0.0 : num / den;
}

void print_fig6() {
  std::printf("=== Fig 6 (regenerated): multivariate industrial time series "
              "===\n\n");
  std::vector<std::vector<std::string>> rows;
  for (const auto& [vars, length] :
       std::vector<std::pair<std::size_t, std::size_t>>{
           {1, 600}, {4, 600}, {4, 2400}, {8, 1200}}) {
    IndustrialSeriesConfig cfg;
    cfg.n_variables = vars;
    cfg.length = length;
    const auto series = make_industrial_series(cfg);
    const auto v0 = series.variable(0);
    const double seasonal_ac = autocorrelation(v0, cfg.seasonal_period);
    // Cross-correlation of var v>0 with var 0 at lag 1 (the coupling).
    double coupling = 0.0;
    if (vars > 1) {
      const auto v1 = series.variable(1);
      double m0 = 0.0;
      double m1 = 0.0;
      for (std::size_t t = 0; t < length; ++t) {
        m0 += v0[t];
        m1 += v1[t];
      }
      m0 /= static_cast<double>(length);
      m1 /= static_cast<double>(length);
      double num = 0.0;
      double d0 = 0.0;
      double d1 = 0.0;
      for (std::size_t t = 0; t + 1 < length; ++t) {
        num += (v0[t] - m0) * (v1[t + 1] - m1);
        d0 += (v0[t] - m0) * (v0[t] - m0);
        d1 += (v1[t + 1] - m1) * (v1[t + 1] - m1);
      }
      coupling = num / std::sqrt(d0 * d1);
    }
    rows.push_back({coda::bench::fmt_int(vars), coda::bench::fmt_int(length),
                    coda::bench::fmt(seasonal_ac, 3),
                    coda::bench::fmt(coupling, 3)});
  }
  coda::bench::print_table(
      {"variables v", "length L", "seasonal AC(lag=24)",
       "cross-coupling corr"},
      rows, {11, 9, 20, 20});
  std::printf("\n(positive seasonal autocorrelation and nonzero coupling "
              "confirm the generated data has the Fig 6 structure the "
              "temporal models exploit)\n\n");
}

void BM_GenerateSeries(benchmark::State& state) {
  IndustrialSeriesConfig cfg;
  cfg.n_variables = static_cast<std::size_t>(state.range(0));
  cfg.length = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_industrial_series(cfg));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) * state.range(1));
}
BENCHMARK(BM_GenerateSeries)
    ->Args({1, 600})
    ->Args({4, 600})
    ->Args({4, 4800})
    ->Args({16, 1200});

}  // namespace

int main(int argc, char** argv) {
  coda::bench::strip_obs_flags(&argc, argv);
  print_fig6();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  coda::bench::dump_obs_if_requested();
  return 0;
}
