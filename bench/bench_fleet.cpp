// Fleet-scale cooperative analytics over the sharded, replicated DARR
// tier (DESIGN.md §13): sweeps client count x shard count and reports
// redundancy-avoided, bytes-on-wire and claim-contention p99 at hundreds-
// to-thousand-client scale, plus the acceptance run — a 512-client
// cooperative Fig-11 forecast search over 4 shards at replication factor
// 2 under a seeded chaos fault model, which must elect the identical best
// pipeline as the single-repository topology with zero redundant
// evaluations.
//
// The sweep and acceptance sections run the fleet serially
// (max_parallel_clients = 1) with telemetry off, which makes every byte
// and counter deterministic: those entries are gated bit-for-bit
// ("exact") by scripts/bench_gate.py. The contention section runs
// genuinely concurrent waves and is gated as a timed entry.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/darr/cooperative.h"
#include "src/data/synthetic.h"
#include "src/ml/decision_tree.h"
#include "src/ml/knn.h"
#include "src/ml/linear.h"
#include "src/ml/scalers.h"
#include "src/ts/forecasters.h"

using namespace coda;

namespace {

Dataset tabular_workload() {
  RegressionConfig cfg;
  cfg.n_samples = 120;
  cfg.n_features = 5;
  cfg.n_informative = 4;
  return make_regression(cfg);
}

TEGraph tabular_graph() {
  TEGraph g;
  std::vector<std::unique_ptr<Transformer>> scalers;
  scalers.push_back(std::make_unique<StandardScaler>());
  scalers.push_back(std::make_unique<RobustScaler>());
  scalers.push_back(std::make_unique<NoOp>());
  g.add_feature_scalers(std::move(scalers));
  std::vector<std::unique_ptr<Estimator>> models;
  models.push_back(std::make_unique<LinearRegression>());
  models.push_back(std::make_unique<DecisionTreeRegressor>());
  models.push_back(std::make_unique<KnnRegressor>());
  g.add_regression_models(std::move(models));
  return g;  // 9 candidates
}

TimeSeries forecast_series() {
  IndustrialSeriesConfig cfg;
  cfg.n_variables = 2;
  cfg.length = 200;
  return make_industrial_series(cfg);
}

ts::ForecastGraph forecast_graph() {
  ts::ForecastSpec spec;
  spec.history = 8;
  ts::ForecastGraph g(spec);
  g.add_scaler(std::make_unique<StandardScaler>());
  g.add_scaler(std::make_unique<NoOp>());
  g.add_windower(std::make_unique<ts::TsAsIs>(), "stat");
  g.add_windower(std::make_unique<ts::CascadedWindows>(), "temporal");
  g.add_model(std::make_unique<ts::ZeroModel>(), "stat");
  g.add_model(std::make_unique<ts::ArModel>(), "temporal");
  return g;  // 4 candidates
}

// The chaos-grade transfer budget (mirrors tests/chaos_harness.h): deep
// enough that seeded drops never exhaust an operation's retries, so the
// fleet completes and the zero-redundancy invariant stays exact.
RetryPolicy fleet_retry(std::uint64_t seed) {
  RetryPolicy policy;
  policy.max_attempts = 12;
  policy.initial_backoff_seconds = 0.05;
  policy.multiplier = 2.0;
  policy.max_backoff_seconds = 1.0;
  policy.jitter_fraction = 0.1;
  policy.deadline_seconds = 20.0;
  policy.seed = seed;
  return policy;
}

void print_scale_sweep() {
  std::printf("=== fleet scale sweep: clients x shards (serial, "
              "deterministic) ===\n\n");
  const Dataset data = tabular_workload();
  const TEGraph graph = tabular_graph();

  std::vector<std::vector<std::string>> rows;
  for (const std::size_t n_clients : {64u, 256u}) {
    for (const std::size_t n_shards : {1u, 4u, 8u}) {
      obs::reset_all();
      darr::FleetOptions options;
      options.n_clients = n_clients;
      options.n_shards = n_shards;
      options.replication = n_shards >= 2 ? 2 : 1;
      options.max_parallel_clients = 1;  // serial: bytes are exact
      options.telemetry = false;
      const auto report = darr::run_cooperative_search(
          graph, data, KFold(3), Metric::kRmse, options);

      rows.push_back(
          {coda::bench::fmt_int(n_clients), coda::bench::fmt_int(n_shards),
           coda::bench::fmt_int(report.replication),
           coda::bench::fmt_int(report.redundancy_avoided),
           coda::bench::fmt_int(report.redundant_evaluations),
           coda::bench::fmt_int(report.bytes_on_wire),
           coda::bench::fmt_int(report.sync_stats.bytes_shipped),
           coda::bench::fmt(report.wall_seconds, 2)});

      const std::string tag = "fleet_c" + std::to_string(n_clients) + "_s" +
                              std::to_string(n_shards);
      // Redundancy-avoided and bytes-on-wire are pure functions of the
      // topology on a serial fault-free run: bit-for-bit gated.
      coda::bench::record_entry(
          tag + "_redundancy_avoided", 0.0,
          static_cast<double>(report.redundancy_avoided), "evals",
          /*exact=*/true);
      coda::bench::record_entry(tag + "_bytes_on_wire", 0.0,
                                static_cast<double>(report.bytes_on_wire),
                                "bytes", /*exact=*/true);
    }
  }
  coda::bench::print_table(
      {"clients", "shards", "rf", "redundancy avoided", "redundant",
       "bytes on wire", "sync bytes", "wall s"},
      rows, {7, 6, 4, 18, 9, 13, 10, 8});
  std::printf("\n(redundancy avoided grows linearly with the fleet while "
              "redundant evaluations stay 0; bytes-on-wire buys that with "
              "lookups, claims and replica syncs — all accounted by "
              "SimNet)\n\n");
}

void print_acceptance_run() {
  std::printf("=== acceptance: 512-client Fig-11 forecast search, 4 shards, "
              "rf=2, chaos fault model ===\n\n");
  const TimeSeries series = forecast_series();
  const ts::ForecastGraph graph = forecast_graph();
  const TimeSeriesSlidingSplit cv(2, 100, 30, 5);

  // Single-repository reference: the best pipeline the seed topology
  // elects on a fault-free run.
  obs::reset_all();
  darr::FleetOptions single;
  single.n_clients = 2;
  single.max_parallel_clients = 1;
  single.telemetry = false;
  const auto reference = darr::run_cooperative_forecast_search(
      graph, series, cv, Metric::kRmse, single);
  const std::string expected_best =
      reference.clients[0].report.best().spec;

  obs::reset_all();
  darr::FleetOptions options;
  options.n_clients = 512;
  options.n_shards = 4;
  options.replication = 2;
  options.max_parallel_clients = 1;
  options.telemetry = false;
  options.retry = fleet_retry(0xF1EE7);
  dist::SimNet::FaultConfig faults;
  faults.seed = 2024;
  faults.drop_probability = 0.05;
  faults.latency_spike_probability = 0.05;
  options.faults = faults;
  const auto report = darr::run_cooperative_forecast_search(
      graph, series, cv, Metric::kRmse, options);

  std::size_t best_matches = 0;
  for (const auto& client : report.clients) {
    if (client.report.best().spec == expected_best) ++best_matches;
  }
  std::printf("clients: %zu  shards: %zu  rf: %zu\n",
              report.clients.size(), report.n_shards, report.replication);
  std::printf("best pipeline: %s\n", expected_best.c_str());
  std::printf("clients electing it: %zu / %zu\n", best_matches,
              report.clients.size());
  std::printf("redundant evaluations: %zu  redundancy avoided: %zu\n",
              report.redundant_evaluations, report.redundancy_avoided);
  std::printf("bytes on wire: %zu  replica syncs: %zu (failed: %zu)\n",
              report.bytes_on_wire, report.sync_stats.replica_syncs,
              report.sync_stats.failed_syncs);
  std::printf("wall: %.2fs\n\n", report.wall_seconds);

  // The acceptance invariants, gated bit-for-bit: every client elected
  // the reference best pipeline, and the fleet computed each candidate
  // exactly once (zero redundant evaluations) despite the fault model.
  coda::bench::record_entry(
      "fleet512_best_pipeline_matches", 0.0,
      static_cast<double>(best_matches == report.clients.size() ? 1 : 0),
      "bool", /*exact=*/true);
  coda::bench::record_entry(
      "fleet512_redundant_evals", 0.0,
      static_cast<double>(report.redundant_evaluations), "evals",
      /*exact=*/true);
  coda::bench::record_entry(
      "fleet512_redundancy_avoided", 0.0,
      static_cast<double>(report.redundancy_avoided), "evals",
      /*exact=*/true);
  coda::bench::record_entry("fleet512_bytes_on_wire", 0.0,
                            static_cast<double>(report.bytes_on_wire),
                            "bytes", /*exact=*/true);
  // Wall-clock of the 512-session run: timed, with a generous band (the
  // serial fleet is CPU-bound but shares the host with the suite).
  coda::bench::record_entry("fleet512_wall", report.wall_seconds, 0.0, "",
                            /*exact=*/false, /*tolerance=*/10.0);
}

void print_contention_run() {
  std::printf("=== claim contention: 256 concurrent clients, 16-wide "
              "waves, 4 shards ===\n\n");
  const Dataset data = tabular_workload();
  const TEGraph graph = tabular_graph();

  obs::reset_all();
  darr::FleetOptions options;
  options.n_clients = 256;
  options.n_shards = 4;
  options.replication = 2;
  options.max_parallel_clients = 16;
  options.telemetry = false;
  const auto report = darr::run_cooperative_search(
      graph, data, KFold(3), Metric::kRmse, options);

  std::printf("redundant evaluations: %zu  redundancy avoided: %zu\n",
              report.redundant_evaluations, report.redundancy_avoided);
  std::printf("claims denied: %zu  claim-wait p99: %.4fs\n",
              report.repository_counters.claims_denied,
              report.claim_wait_p99_seconds);
  std::printf("wall: %.2fs\n\n", report.wall_seconds);

  // Contention price, gated as timed entries with wide bands: wall-clock
  // waits depend on host scheduling, and only order-of-magnitude
  // regressions (e.g. claim-wait turning into TTL-scale stalls) should
  // trip the gate.
  coda::bench::record_entry("fleet_contention_redundant", 0.0,
                            static_cast<double>(report.redundant_evaluations),
                            "evals", /*exact=*/true);
  coda::bench::record_entry("fleet_contention_claim_wait_p99",
                            report.claim_wait_p99_seconds, 0.0, "",
                            /*exact=*/false, /*tolerance=*/50.0);
  coda::bench::record_entry("fleet_contention_wall", report.wall_seconds,
                            0.0, "", /*exact=*/false, /*tolerance=*/10.0);
}

void BM_ShardedClaimPutFetch(benchmark::State& state) {
  dist::SimNet net;
  darr::DarrCluster::Config config;
  config.n_shards = 4;
  config.replication = 2;
  darr::DarrCluster cluster(&net, config);
  const auto self = net.add_node("c");
  darr::ShardedDarrService service(&cluster, self);
  darr::DarrClient client(&service, "c");
  CachedResult result;
  result.fold_scores = {0.1, 0.2, 0.3};
  result.explanation = "standardscaler -> linearregression";
  std::size_t i = 0;
  for (auto _ : state) {
    const std::string key = "k" + std::to_string(i++);
    benchmark::DoNotOptimize(client.claim(key));
    client.put(key, result);
    benchmark::DoNotOptimize(client.fetch(key));
  }
}
BENCHMARK(BM_ShardedClaimPutFetch);

}  // namespace

int main(int argc, char** argv) {
  coda::bench::strip_obs_flags(&argc, argv);
  obs::reset_all();
  print_scale_sweep();
  print_acceptance_run();
  print_contention_run();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  coda::bench::dump_obs_if_requested();
  return 0;
}
