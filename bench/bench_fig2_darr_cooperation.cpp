// Regenerates Fig 2: clients sharing analytics results through the DARR.
// The artifact sweeps the client count over one fixed Transformer-
// Estimator Graph search and reports per-client local work, cache reads,
// redundant evaluations, repository traffic and wall-clock speedup —
// the paper's claim that cooperation avoids redundant calculations.
// A claim-TTL ablation (DESIGN.md choice 3) shows duplicated work when a
// client "crashes" mid-claim.
#include <benchmark/benchmark.h>

#include <chrono>
#include <thread>

#include "bench/bench_util.h"
#include "src/darr/cooperative.h"
#include "src/data/synthetic.h"
#include "src/ml/decision_tree.h"
#include "src/ml/knn.h"
#include "src/ml/linear.h"
#include "src/ml/random_forest.h"
#include "src/ml/scalers.h"

using namespace coda;

namespace {

Dataset workload() {
  RegressionConfig cfg;
  cfg.n_samples = 300;
  cfg.n_features = 8;
  return make_regression(cfg);
}

TEGraph search_graph() {
  TEGraph g;
  std::vector<std::unique_ptr<Transformer>> scalers;
  scalers.push_back(std::make_unique<StandardScaler>());
  scalers.push_back(std::make_unique<RobustScaler>());
  scalers.push_back(std::make_unique<MinMaxScaler>());
  scalers.push_back(std::make_unique<NoOp>());
  g.add_feature_scalers(std::move(scalers));
  std::vector<std::unique_ptr<Estimator>> models;
  models.push_back(std::make_unique<LinearRegression>());
  models.push_back(std::make_unique<DecisionTreeRegressor>());
  models.push_back(std::make_unique<RandomForestRegressor>());
  models.push_back(std::make_unique<KnnRegressor>());
  g.add_regression_models(std::move(models));
  return g;  // 16 candidates
}

void print_fig2() {
  std::printf("=== Fig 2 (regenerated): cooperative analytics through the "
              "DARR ===\n\n");
  const Dataset data = workload();
  const TEGraph graph = search_graph();

  std::vector<std::vector<std::string>> rows;
  double solo_seconds = 0.0;
  darr::CooperativeReport last_report;
  for (const std::size_t n_clients : {1u, 2u, 4u, 8u}) {
    // Fresh metrics per sweep point: the per-node table below then reads
    // exactly one run, and the fleet-vs-global check covers it alone.
    obs::reset_all();
    auto report = darr::run_cooperative_search(
        graph, data, KFold(5), Metric::kRmse, n_clients);
    if (n_clients == 1) solo_seconds = report.wall_seconds;
    std::size_t max_local = 0;
    for (const auto& c : report.clients) {
      max_local = std::max(max_local, c.evaluated_locally);
    }
    rows.push_back(
        {coda::bench::fmt_int(n_clients),
         coda::bench::fmt_int(report.total_candidates),
         coda::bench::fmt_int(report.total_local_evaluations),
         coda::bench::fmt_int(report.redundant_evaluations),
         coda::bench::fmt_int(max_local),
         coda::bench::fmt_int(report.repository_counters.claims_denied),
         coda::bench::fmt(report.wall_seconds, 2),
         coda::bench::fmt(solo_seconds / report.wall_seconds, 2)});
    last_report = std::move(report);
  }
  coda::bench::print_table({"clients", "candidates", "total local evals",
                            "redundant", "max/client", "claims denied",
                            "wall s", "speedup"},
                           rows, {7, 10, 17, 9, 10, 13, 8, 8});
  std::printf("\n(redundant evaluations stay at 0 while per-client work "
              "shrinks: the DARR partitions the search; wall-clock speedup "
              "is bounded by the host's single core here — on real fleets "
              "each client is its own machine)\n\n");

  // Per-node fleet telemetry for the widest sweep (DESIGN.md §12): each
  // client shipped its MetricScope shard to the run's collector node over
  // SimNet; the table below reads the collector, not the clients.
  const auto& fleet = *last_report.telemetry;
  std::printf("=== per-node telemetry, %zu-client run (from the collector "
              "node) ===\n\n",
              last_report.clients.size());
  std::vector<std::vector<std::string>> node_rows;
  for (const auto& c : last_report.clients) {
    const obs::MetricsSnapshot snap = fleet.node_snapshot(c.name);
    const auto counter = [&snap](const char* name) -> std::uint64_t {
      auto it = snap.counters.find(name);
      return it == snap.counters.end() ? 0 : it->second;
    };
    double claim_wait_p99 = 0.0;
    if (auto it = snap.histograms.find("evaluator.claim.wait_seconds");
        it != snap.histograms.end() && it->second.count > 0) {
      claim_wait_p99 = it->second.quantile(0.99);
    }
    node_rows.push_back(
        {c.name, coda::bench::fmt_int(counter("evaluator.candidate.local")),
         coda::bench::fmt_int(counter("evaluator.candidate.cached")),
         coda::bench::fmt_int(counter("darr.client.lookups")),
         coda::bench::fmt_int(counter("darr.client.hits")),
         coda::bench::fmt(claim_wait_p99, 4)});
  }
  coda::bench::print_table({"node", "local evals", "redundancy avoided",
                            "darr lookups", "darr hits", "claim-wait p99 s"},
                           node_rows, {-9, 11, 18, 12, 9, 16});
  std::printf("\n(\"redundancy avoided\" = candidates served from a peer's "
              "stored result instead of recomputed; claim-wait p99 is the "
              "price of waiting on a peer's in-flight computation)\n\n");

  // Fleet-vs-global invariant: on this fault-free run the collector's
  // aggregate must reproduce the process-wide registry exactly.
  if (last_report.telemetry_divergence.empty()) {
    std::printf("collector fleet aggregate == global registry (bit-for-bit "
                "on every fleet-shipped family)\n\n");
  } else {
    std::printf("WARNING: collector fleet aggregate diverged from the "
                "global registry:\n%s\n\n",
                last_report.telemetry_divergence.c_str());
  }

  // Declarative SLOs over the collected run (read back via --metrics-json
  // and the coda-telemetry dashboard).
  auto& slos = obs::global_slos();
  slos.add("darr.repo.store count >= 16");
  slos.add("darr.client.hits value >= 1");
  slos.add("evaluator.claim.wait_seconds p99 < 30");
  slos.bind_fleet(&fleet);
  for (const auto& r : slos.evaluate()) {
    std::printf("slo: %-44s %s (observed %s)\n", r.spec.text.c_str(),
                !r.evaluable ? " n/a" : (r.pass ? "PASS" : "FAIL"),
                coda::bench::fmt(r.observed, 4).c_str());
  }
  // The collector dies with this scope; results() stay readable for the
  // --metrics-json export.
  slos.bind_fleet(nullptr);
  std::printf("\n");

  coda::bench::record_entry("fig2_candidates", 0.0,
                            static_cast<double>(last_report.total_candidates),
                            "candidates", /*exact=*/true);
  coda::bench::record_entry(
      "fig2_cooperative_8c", rows.empty() ? 0.0 : last_report.wall_seconds,
      0.0, "");

  // Claim-TTL ablation: a client that claims and never stores. Another
  // client must steal the claim after the TTL rather than deadlock.
  darr::DarrRepository::Config short_ttl;
  short_ttl.claim_ttl_ms = 30;
  darr::DarrRepository repo(short_ttl);
  dist::SimNet net;
  const auto repo_node = net.add_node("darr");
  const auto dead_node = net.add_node("dead");
  const auto live_node = net.add_node("live");
  darr::DarrClient dead(&repo, &net, dead_node, repo_node, "dead");
  darr::DarrClient live(&repo, &net, live_node, repo_node, "live");
  dead.claim("candidate_x");  // crashes here, never stores
  std::size_t retries = 0;
  while (!live.claim("candidate_x")) {
    ++retries;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  std::printf("claim-TTL ablation: live client acquired the dead client's "
              "claim after %zu retries (%zu expired claims recorded) — "
              "crash recovery costs one duplicated evaluation, never a "
              "deadlock\n\n",
              retries, repo.counters().claims_expired);
  coda::bench::record_entry(
      "fig2_claims_expired", 0.0,
      static_cast<double>(repo.counters().claims_expired), "claims",
      /*exact=*/true);
}

void BM_DarrLookupStore(benchmark::State& state) {
  darr::DarrRepository repo;
  dist::SimNet net;
  const auto repo_node = net.add_node("darr");
  const auto client_node = net.add_node("c");
  darr::DarrClient client(&repo, &net, client_node, repo_node, "c");
  CachedResult result;
  result.fold_scores = {0.1, 0.2, 0.3, 0.4, 0.5};
  result.explanation = "standardscaler -> randomforest";
  std::size_t i = 0;
  for (auto _ : state) {
    const std::string key = "k" + std::to_string(i++ % 64);
    client.put(key, result);
    benchmark::DoNotOptimize(client.fetch(key));
  }
}
BENCHMARK(BM_DarrLookupStore);

void BM_DarrClaim(benchmark::State& state) {
  darr::DarrRepository repo;
  dist::SimNet net;
  const auto repo_node = net.add_node("darr");
  const auto client_node = net.add_node("c");
  darr::DarrClient client(&repo, &net, client_node, repo_node, "c");
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.claim("k" + std::to_string(i++)));
  }
}
BENCHMARK(BM_DarrClaim);

}  // namespace

int main(int argc, char** argv) {
  coda::bench::strip_obs_flags(&argc, argv);
  // Start from zeroed metrics so the fleet-vs-global check and the
  // exported baseline see only this run's writes.
  obs::reset_all();
  print_fig2();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  coda::bench::dump_obs_if_requested();
  return 0;
}
