// Section III claim: clients obtain updates via pull or lease-based push,
// and push can ship the full value, a delta, or a notify-only message when
// "the client does not need the updated data immediately". The artifact
// runs one update/read workload under each propagation mode and reports
// bytes, messages and staleness — reproducing the expected shape:
// push-delta minimizes staleness*bytes; notify-only minimizes bytes when
// reads are rare; pull staleness depends on the polling interval.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/dist/client_cache.h"
#include "src/util/random.h"
#include "src/util/string_util.h"

using namespace coda;
using namespace coda::dist;

namespace {

Bytes make_object(std::size_t n, Rng& rng) {
  Bytes b(n);
  for (auto& v : b) v = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  return b;
}

struct Outcome {
  std::size_t bytes;
  std::size_t messages;
  double mean_staleness;   // versions behind, sampled after every update
  std::size_t reads_served_fresh;
};

// Runs `n_updates` updates of ~update_bytes each against one client that
// reads the object every `read_every` updates. mode "pull" polls on read;
// other modes hold a push lease of the given kind.
Outcome run_mode(const std::string& mode, std::size_t n_updates,
                 std::size_t read_every) {
  Rng rng(11);
  SimNet net;
  const auto store_node = net.add_node("store");
  const auto client_node = net.add_node("client");
  HomeDataStore store(&net, store_node);
  ClientCache client(&net, client_node, &store);
  store.set_push_handler(
      [&client](NodeId, const PushMessage& msg) { client.on_push(msg); });

  Bytes value = make_object(65536, rng);
  store.put("o", value);
  client.get("o");
  net.reset_stats();  // measure propagation only, not the initial sync

  if (mode == "push-full") {
    client.subscribe("o", 1e9, PushMode::kFullValue);
  } else if (mode == "push-delta") {
    client.subscribe("o", 1e9, PushMode::kDelta);
  } else if (mode == "push-notify") {
    client.subscribe("o", 1e9, PushMode::kNotifyOnly);
  }

  Outcome out{0, 0, 0.0, 0};
  double staleness_sum = 0.0;
  for (std::size_t u = 1; u <= n_updates; ++u) {
    // ~1% of the object changes per update, as one contiguous region —
    // the common shape of real updates (an appended batch, a rewritten
    // record block). Scattered single-byte noise is the delta codec's
    // pathological case and is covered in bench_delta_encoding.
    const std::size_t region = rng.index(value.size() - 650);
    for (std::size_t i = 0; i < 650; ++i) {
      value[region + i] =
          static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    store.put("o", value);
    staleness_sum += static_cast<double>(client.staleness("o"));
    if (u % read_every == 0) {
      if (mode == "pull" || mode == "push-notify") {
        client.get("o");  // poll / notified fetch
      }
      if (client.staleness("o") == 0) ++out.reads_served_fresh;
    }
  }
  const auto total = net.total();
  out.bytes = total.bytes;
  out.messages = total.messages;
  out.mean_staleness = staleness_sum / static_cast<double>(n_updates);
  return out;
}

void print_artifact() {
  std::printf("=== Section III (regenerated): pull vs push (leases) update "
              "propagation ===\n");
  std::printf("(64 KiB object, 60 updates of ~1%% each; client reads every "
              "5th update)\n\n");
  std::vector<std::vector<std::string>> rows;
  for (const std::string mode :
       {"pull", "push-full", "push-delta", "push-notify"}) {
    const Outcome o = run_mode(mode, 60, 5);
    rows.push_back({mode, format_bytes(o.bytes),
                    coda::bench::fmt_int(o.messages),
                    coda::bench::fmt(o.mean_staleness, 2),
                    coda::bench::fmt_int(o.reads_served_fresh) + "/12"});
  }
  coda::bench::print_table({"mode", "bytes", "messages",
                            "mean staleness (versions)", "fresh reads"},
                           rows, {-11, 10, 8, 26, 11});
  std::printf("\nexpected shape: push-full freshest but heaviest; "
              "push-delta ~same freshness at a fraction of the bytes; "
              "notify-only cheapest on the wire with staleness bounded by "
              "the read cadence; pull trades staleness for poll rate.\n\n");

  // Lease-expiry behaviour: updates stop flowing when the lease lapses and
  // resume after renewal (Section III's lease semantics).
  Rng rng(3);
  SimNet net;
  const auto store_node = net.add_node("store");
  const auto client_node = net.add_node("client");
  HomeDataStore store(&net, store_node);
  ClientCache client(&net, client_node, &store);
  store.set_push_handler(
      [&client](NodeId, const PushMessage& msg) { client.on_push(msg); });
  Bytes value = make_object(1024, rng);
  store.put("lease_demo", value);
  client.subscribe("lease_demo", /*duration=*/10.0, PushMode::kFullValue);
  value[0] ^= 1;
  store.put("lease_demo", value);
  const auto v_before = client.version("lease_demo");
  net.advance(11.0);  // lease expires
  value[1] ^= 1;
  store.put("lease_demo", value);
  const auto v_lapsed = client.version("lease_demo");
  client.renew("lease_demo", 10.0);
  // renew() only extends a live lease in spirit; here re-subscribe:
  client.subscribe("lease_demo", 10.0, PushMode::kFullValue);
  value[2] ^= 1;
  store.put("lease_demo", value);
  std::printf("lease lifecycle: version after push %llu -> after expiry "
              "%llu (stalled) -> after renewal %llu (flowing again)\n\n",
              static_cast<unsigned long long>(v_before),
              static_cast<unsigned long long>(v_lapsed),
              static_cast<unsigned long long>(client.version("lease_demo")));
}

void BM_PushDeltaUpdate(benchmark::State& state) {
  Rng rng(5);
  SimNet net;
  const auto store_node = net.add_node("store");
  const auto client_node = net.add_node("client");
  HomeDataStore store(&net, store_node);
  ClientCache client(&net, client_node, &store);
  store.set_push_handler(
      [&client](NodeId, const PushMessage& msg) { client.on_push(msg); });
  Bytes value = make_object(65536, rng);
  store.put("o", value);
  client.get("o");
  client.subscribe("o", 1e9, PushMode::kDelta);
  for (auto _ : state) {
    value[rng.index(value.size())] ^= 0x1;
    store.put("o", value);
  }
}
BENCHMARK(BM_PushDeltaUpdate)->Unit(benchmark::kMillisecond);

void BM_PullRoundTrip(benchmark::State& state) {
  Rng rng(6);
  SimNet net;
  const auto store_node = net.add_node("store");
  const auto client_node = net.add_node("client");
  HomeDataStore store(&net, store_node);
  ClientCache client(&net, client_node, &store);
  Bytes value = make_object(65536, rng);
  store.put("o", value);
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.get("o"));
  }
}
BENCHMARK(BM_PullRoundTrip);

}  // namespace

int main(int argc, char** argv) {
  coda::bench::strip_obs_flags(&argc, argv);
  print_artifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  coda::bench::dump_obs_if_requested();
  return 0;
}
