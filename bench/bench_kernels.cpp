// Kernel-layer baseline (DESIGN.md §11): blocked/register-tiled GEMM vs the
// naive triple loops it replaced. The artifact table reports GFLOP/s and
// speedup per shape — the committed BENCH_kernels.json pins these numbers
// so later changes to src/core/kernels.cpp have a diffable anchor. The
// naive reference is inlined from kernels.h into this TU, so it is measured
// exactly as the pre-kernel code was compiled (the library's default -O2,
// not the kernel layer's -O3).
#include <benchmark/benchmark.h>

#include <vector>

#include "bench/bench_util.h"
#include "src/core/kernels.h"
#include "src/util/random.h"
#include "src/util/stopwatch.h"

using namespace coda;

namespace {

struct Shape {
  std::size_t m, n, k;
};

std::vector<double> random_buffer(std::size_t size, Rng& rng) {
  std::vector<double> out(size);
  for (double& v : out) v = rng.uniform(-1.0, 1.0);
  return out;
}

// Times `fn` by repeating it until ~0.3s of wall clock has elapsed and
// returns seconds per call.
template <typename Fn>
double time_call(Fn&& fn) {
  Stopwatch total;
  std::size_t iters = 0;
  do {
    fn();
    ++iters;
  } while (total.elapsed_seconds() < 0.3);
  return total.elapsed_seconds() / static_cast<double>(iters);
}

void print_gemm_table() {
  std::printf("=== kernel layer: blocked GEMM vs naive reference ===\n\n");
  Rng rng(42);
  std::vector<std::vector<std::string>> rows;
  for (const Shape& s : std::vector<Shape>{{64, 64, 64},
                                           {128, 128, 128},
                                           {256, 256, 256},
                                           {96, 80, 512},
                                           {512, 33, 129}}) {
    const auto a = random_buffer(s.m * s.k, rng);
    const auto b = random_buffer(s.k * s.n, rng);
    std::vector<double> c(s.m * s.n, 0.0);
    const double flops = 2.0 * static_cast<double>(s.m) *
                         static_cast<double>(s.n) * static_cast<double>(s.k);

    const double naive_s = time_call([&] {
      kernels::reference::gemm_nn(s.m, s.n, s.k, a.data(), s.k, b.data(),
                                  s.n, c.data(), s.n);
    });
    const double kernel_s = time_call([&] {
      kernels::gemm_nn(s.m, s.n, s.k, a.data(), s.k, b.data(), s.n, c.data(),
                       s.n);
    });
    const double naive_gfs = flops / naive_s / 1e9;
    const double kernel_gfs = flops / kernel_s / 1e9;
    const std::string label = std::to_string(s.m) + "x" + std::to_string(s.n) +
                              "x" + std::to_string(s.k);
    rows.push_back({label, bench::fmt(naive_gfs, 2), bench::fmt(kernel_gfs, 2),
                    bench::fmt(naive_s / kernel_s, 2) + "x"});
    bench::record_entry("gemm_nn_naive_" + label, naive_s, naive_gfs, "GF/s");
    bench::record_entry("gemm_nn_kernel_" + label, kernel_s, kernel_gfs,
                        "GF/s");
  }
  bench::print_table({"shape", "naive GF/s", "kernel GF/s", "speedup"}, rows,
                     {-12, 12, 12, 9});
  std::printf("\n(naive = the exact pre-kernel scalar loops, compiled at "
              "this binary's default optimization level)\n\n");
}

void BM_GemmNN(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  const auto a = random_buffer(n * n, rng);
  const auto b = random_buffer(n * n, rng);
  std::vector<double> c(n * n, 0.0);
  for (auto _ : state) {
    kernels::gemm_nn(n, n, n, a.data(), n, b.data(), n, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_GemmNN)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmTN(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  const auto a = random_buffer(n * n, rng);
  const auto b = random_buffer(n * n, rng);
  std::vector<double> c(n * n, 0.0);
  for (auto _ : state) {
    kernels::gemm_tn(n, n, n, a.data(), n, b.data(), n, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_GemmTN)->Arg(128);

void BM_GemmNT(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  const auto a = random_buffer(n * n, rng);
  const auto b = random_buffer(n * n, rng);
  std::vector<double> c(n * n, 0.0);
  for (auto _ : state) {
    kernels::gemm_nt(n, n, n, a.data(), n, b.data(), n, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_GemmNT)->Arg(128);

void BM_FusedEpilogue(benchmark::State& state) {
  // Dense-layer shape: GEMM + bias + ReLU in one write-back.
  const std::size_t m = 64, n = 128, k = 128;
  Rng rng(4);
  const auto a = random_buffer(m * k, rng);
  const auto b = random_buffer(k * n, rng);
  const auto bias = random_buffer(n, rng);
  std::vector<double> c(m * n, 0.0);
  const kernels::Epilogue ep{bias.data(), kernels::Activation::kRelu};
  for (auto _ : state) {
    std::fill(c.begin(), c.end(), 0.0);
    kernels::gemm_nn(m, n, k, a.data(), k, b.data(), n, c.data(), n, ep);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_FusedEpilogue);

}  // namespace

int main(int argc, char** argv) {
  coda::bench::strip_obs_flags(&argc, argv);
  print_gemm_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  coda::bench::dump_obs_if_requested();
  return 0;
}
