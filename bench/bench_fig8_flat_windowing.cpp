// Regenerates Fig 8: flat time-series windowing — the (p x v) cascaded
// windows flattened to (1 x pv) rows for the standard (IID) DNNs. The
// artifact checks the figure's defining property (same values as cascaded
// windows, temporal history kept, ordering semantics dropped for the
// consumer) and the shape arithmetic L-p windows of shape 1 x pv.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/data/synthetic.h"
#include "src/ts/windowing.h"

using namespace coda;
using namespace coda::ts;

namespace {

TimeSeries series(std::size_t vars, std::size_t length) {
  IndustrialSeriesConfig cfg;
  cfg.n_variables = vars;
  cfg.length = length;
  return make_industrial_series(cfg);
}

void print_fig8() {
  std::printf("=== Fig 8 (regenerated): flat time-series windowing ===\n\n");
  const FlatWindowing flat;
  const CascadedWindows cascaded;
  std::vector<std::vector<std::string>> rows;
  for (const auto& [v, p] :
       std::vector<std::pair<std::size_t, std::size_t>>{
           {2, 8}, {4, 24}, {6, 16}}) {
    const auto ts = series(v, 400);
    ForecastSpec spec;
    spec.history = p;
    const auto wf = flat.build(ts.values(), ts.values(), spec);
    const auto wc = cascaded.build(ts.values(), ts.values(), spec);
    rows.push_back(
        {coda::bench::fmt_int(v), coda::bench::fmt_int(p),
         "1x" + std::to_string(wf.X.cols()),
         wf.X == wc.X ? "identical" : "DIFFERENT (bug)",
         wf.y == wc.y ? "identical" : "DIFFERENT (bug)"});
  }
  coda::bench::print_table(
      {"v", "p", "flat shape", "values vs cascaded", "targets vs cascaded"},
      rows, {4, 4, -10, -20, -20});
  std::printf("\n(flattening preserves window contents exactly — what "
              "changes is the consumer: IID DNNs treat the pv columns as "
              "unordered features)\n\n");
}

void BM_FlatBuild(benchmark::State& state) {
  const auto ts = series(4, 2000);
  ForecastSpec spec;
  spec.history = static_cast<std::size_t>(state.range(0));
  const FlatWindowing maker;
  for (auto _ : state) {
    benchmark::DoNotOptimize(maker.build(ts.values(), ts.values(), spec));
  }
}
BENCHMARK(BM_FlatBuild)->Arg(12)->Arg(48);

}  // namespace

int main(int argc, char** argv) {
  coda::bench::strip_obs_flags(&argc, argv);
  print_fig8();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  coda::bench::dump_obs_if_requested();
  return 0;
}
