// Regenerates Fig 9: time series as transactional (IID) data — each
// timestamp becomes an independent sample carrying only the v current
// values; no history, no ordering. The artifact confirms the shape and the
// information loss relative to windowed feeds (an AR fit on IID rows
// cannot see lags).
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/core/metrics.h"
#include "src/data/synthetic.h"
#include "src/ts/forecasters.h"
#include "src/ts/windowing.h"

using namespace coda;
using namespace coda::ts;

namespace {

TimeSeries series(std::size_t vars, std::size_t length) {
  IndustrialSeriesConfig cfg;
  cfg.n_variables = vars;
  cfg.length = length;
  return make_industrial_series(cfg);
}

void print_fig9() {
  std::printf("=== Fig 9 (regenerated): time series as transactional (IID) "
              "data ===\n\n");
  const TsAsIid maker;
  std::vector<std::vector<std::string>> rows;
  for (const auto& [v, L] : std::vector<std::pair<std::size_t, std::size_t>>{
           {1, 300}, {4, 600}, {8, 600}}) {
    const auto ts = series(v, L);
    ForecastSpec spec;
    const auto wd = maker.build(ts.values(), ts.values(), spec);
    rows.push_back({coda::bench::fmt_int(L), coda::bench::fmt_int(v),
                    std::to_string(wd.X.rows()) + " x " +
                        std::to_string(wd.X.cols()),
                    "t -> y(t+1)"});
  }
  coda::bench::print_table({"L", "v", "IID matrix", "supervision"}, rows,
                           {6, 4, -14, -12});

  // Information-loss demonstration: a linear model on IID rows vs on
  // cascaded windows of the same series.
  const auto ts = series(2, 500);
  ForecastSpec spec;
  spec.history = 24;
  const auto iid = TsAsIid().build(ts.values(), ts.values(), ForecastSpec{});
  const auto windows =
      CascadedWindows().build(ts.values(), ts.values(), spec);
  ArModel on_iid;
  on_iid.fit(iid.X, iid.y);
  ArModel on_windows;
  on_windows.fit(windows.X, windows.y);
  std::printf("\ninformation loss: linear fit RMSE on IID rows %.4f vs on "
              "24-step windows %.4f\n",
              rmse(iid.y, on_iid.predict(iid.X)),
              rmse(windows.y, on_windows.predict(windows.X)));
  std::printf("(IID rows keep only the current values — exactly the Fig 9 "
              "semantics)\n\n");
}

void BM_IidBuild(benchmark::State& state) {
  const auto ts = series(static_cast<std::size_t>(state.range(0)), 2000);
  const TsAsIid maker;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        maker.build(ts.values(), ts.values(), ForecastSpec{}));
  }
}
BENCHMARK(BM_IidBuild)->Arg(1)->Arg(8);

}  // namespace

int main(int argc, char** argv) {
  coda::bench::strip_obs_flags(&argc, argv);
  print_fig9();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  coda::bench::dump_obs_if_requested();
  return 0;
}
