// Section III claim: "Delta encoding can significantly reduce the overhead
// for updating objects." The artifact sweeps object sizes and update
// fractions and reports delta bytes vs full-object bytes (the savings and
// the crossover to full-send on heavy rewrites), a block-size ablation
// (DESIGN.md choice 1), and a precomputed-vs-on-demand delta ablation
// (choice 2). Micro benchmarks give codec throughput.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/dist/delta.h"
#include "src/dist/home_store.h"
#include "src/util/random.h"
#include "src/util/stopwatch.h"
#include "src/util/string_util.h"

using namespace coda;
using namespace coda::dist;

namespace {

Bytes random_bytes(std::size_t n, Rng& rng) {
  Bytes b(n);
  for (auto& v : b) v = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  return b;
}

Bytes mutate(Bytes base, double fraction, Rng& rng, bool localized) {
  const auto changes =
      static_cast<std::size_t>(static_cast<double>(base.size()) * fraction);
  if (localized && changes > 0 && changes < base.size()) {
    // One contiguous rewritten region — the common real update shape
    // (appended batch, rewritten record block).
    const std::size_t start = rng.index(base.size() - changes);
    for (std::size_t i = 0; i < changes; ++i) {
      base[start + i] = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
  } else {
    // Scattered single-byte noise — the codec's worst case: every dirty
    // byte poisons its whole block.
    for (std::size_t i = 0; i < changes; ++i) {
      base[rng.index(base.size())] =
          static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
  }
  return base;
}

void print_delta_artifact() {
  std::printf("=== Section III (regenerated): delta encoding savings ===\n\n");
  Rng rng(7);
  std::vector<std::vector<std::string>> rows;
  for (const bool localized : {true, false}) {
    for (const std::size_t size : {65536u, 1048576u}) {
      for (const double fraction : {0.01, 0.05, 0.2, 0.5}) {
        const Bytes base = random_bytes(size, rng);
        const Bytes target = mutate(base, fraction, rng, localized);
        const Delta d = compute_delta(base, target);
        const double ratio = static_cast<double>(d.encoded_size()) /
                             static_cast<double>(target.size());
        rows.push_back({localized ? "contiguous region" : "scattered bytes",
                        format_bytes(size),
                        coda::bench::fmt(fraction * 100.0, 0) + "%",
                        format_bytes(d.encoded_size()),
                        coda::bench::fmt(ratio * 100.0, 1) + "%",
                        ratio < 0.8 ? "delta wins" : "full-send"});
      }
    }
  }
  coda::bench::print_table({"update pattern", "object", "changed",
                            "delta size", "of full size", "store decision"},
                           rows, {-17, -10, 8, 12, 13, -12});
  std::printf("\n(localized updates delta down to ~the changed fraction; "
              "scattered byte noise poisons whole blocks and crosses over "
              "to full-send early — the home store's min_delta_ratio check "
              "handles both)\n");

  // Block-size ablation.
  std::printf("\nblock-size ablation (64 KiB object, 5%% changed):\n");
  {
    const Bytes base = random_bytes(65536, rng);
    const Bytes target = mutate(base, 0.05, rng, true);
    std::vector<std::vector<std::string>> ablation;
    for (const std::size_t block : {16u, 32u, 64u, 128u, 256u, 512u}) {
      DeltaConfig cfg;
      cfg.block_size = block;
      Stopwatch timer;
      const Delta d = compute_delta(base, target, cfg);
      ablation.push_back({coda::bench::fmt_int(block),
                          format_bytes(d.encoded_size()),
                          coda::bench::fmt(timer.elapsed_ms(), 2)});
    }
    coda::bench::print_table({"block B", "delta size", "encode ms"},
                             ablation, {8, 12, 10});
    std::printf("(small blocks find more matches but cost more ops; large "
                "blocks under-match scattered changes)\n");
  }

  // Precomputed-vs-on-demand ablation: the home store precomputes deltas
  // at put() time; a fetch then costs a map lookup, vs encoding on demand.
  std::printf("\nprecomputed-deltas ablation (Section III home store):\n");
  {
    SimNet net;
    const auto store_node = net.add_node("store");
    const auto client_node = net.add_node("client");
    HomeDataStore store(&net, store_node);
    Bytes value = random_bytes(262144, rng);
    store.put("o", value);
    Bytes base = value;
    value = mutate(std::move(value), 0.02, rng, true);
    store.put("o", value);

    Stopwatch precomputed_timer;
    for (int i = 0; i < 50; ++i) store.fetch("o", client_node, 1);
    const double precomputed_ms = precomputed_timer.elapsed_ms() / 50.0;

    Stopwatch on_demand_timer;
    for (int i = 0; i < 50; ++i) {
      benchmark::DoNotOptimize(compute_delta(base, value));
    }
    const double on_demand_ms = on_demand_timer.elapsed_ms() / 50.0;
    std::printf("  fetch with precomputed delta: %.3f ms; encoding on "
                "demand would add %.3f ms per request (%.0fx)\n\n",
                precomputed_ms, on_demand_ms,
                on_demand_ms / std::max(precomputed_ms, 1e-9));
  }
}

void BM_DeltaEncode(benchmark::State& state) {
  Rng rng(1);
  const auto size = static_cast<std::size_t>(state.range(0));
  const Bytes base = random_bytes(size, rng);
  const Bytes target = mutate(base, 0.05, rng, true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compute_delta(base, target));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_DeltaEncode)->Arg(4096)->Arg(65536)->Arg(1048576);

void BM_DeltaApply(benchmark::State& state) {
  Rng rng(2);
  const auto size = static_cast<std::size_t>(state.range(0));
  const Bytes base = random_bytes(size, rng);
  const Bytes target = mutate(base, 0.05, rng, true);
  const Delta d = compute_delta(base, target);
  for (auto _ : state) {
    benchmark::DoNotOptimize(apply_delta(base, d));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_DeltaApply)->Arg(65536)->Arg(1048576);

void BM_DeltaSerialize(benchmark::State& state) {
  Rng rng(3);
  const Bytes base = random_bytes(65536, rng);
  const Bytes target = mutate(base, 0.05, rng, true);
  const Delta d = compute_delta(base, target);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Delta::deserialize(d.serialize()));
  }
}
BENCHMARK(BM_DeltaSerialize);

}  // namespace

int main(int argc, char** argv) {
  coda::bench::strip_obs_flags(&argc, argv);
  print_delta_artifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  coda::bench::dump_obs_if_requested();
  return 0;
}
