// Regenerates Fig 7: cascaded windows — the series becomes L-p overlapping
// history windows of shape (p x v), order preserved, feeding the temporal
// models. The artifact verifies shape arithmetic across (p, v) and shows a
// worked example; benchmarks measure window-build throughput.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/data/synthetic.h"
#include "src/ts/windowing.h"

using namespace coda;
using namespace coda::ts;

namespace {

TimeSeries series(std::size_t vars, std::size_t length) {
  IndustrialSeriesConfig cfg;
  cfg.n_variables = vars;
  cfg.length = length;
  return make_industrial_series(cfg);
}

void print_fig7() {
  std::printf("=== Fig 7 (regenerated): time series cascaded windows ===\n\n");
  std::vector<std::vector<std::string>> rows;
  const CascadedWindows maker;
  for (const auto& [v, L, p] :
       std::vector<std::tuple<std::size_t, std::size_t, std::size_t>>{
           {1, 200, 12}, {4, 600, 24}, {4, 600, 48}, {8, 1000, 24}}) {
    const auto ts = series(v, L);
    ForecastSpec spec;
    spec.history = p;
    const auto wd = maker.build(ts.values(), ts.values(), spec);
    rows.push_back({coda::bench::fmt_int(L), coda::bench::fmt_int(v),
                    coda::bench::fmt_int(p), coda::bench::fmt_int(wd.X.rows()),
                    std::to_string(p) + "x" + std::to_string(v) + " (flat " +
                        std::to_string(wd.X.cols()) + ")"});
  }
  coda::bench::print_table(
      {"L", "v", "history p", "windows (L-p-h+1)", "window shape"}, rows,
      {6, 4, 9, 18, -20});

  // Worked example: the figure's sliding-by-one property.
  const auto ts = series(2, 20);
  ForecastSpec spec;
  spec.history = 3;
  const auto wd = maker.build(ts.values(), ts.values(), spec);
  std::printf("\nsliding property: window i and window i+1 share p-1 "
              "timesteps —\n");
  std::printf("  window0 cols [2..5] == window1 cols [0..3]: %s\n\n",
              std::equal(wd.X.data().begin() + 2, wd.X.data().begin() + 6,
                         wd.X.data().begin() + static_cast<std::ptrdiff_t>(
                                                   wd.X.cols()))
                  ? "yes"
                  : "NO (bug)");
}

void BM_CascadedBuild(benchmark::State& state) {
  const auto ts = series(static_cast<std::size_t>(state.range(0)), 2000);
  ForecastSpec spec;
  spec.history = static_cast<std::size_t>(state.range(1));
  const CascadedWindows maker;
  for (auto _ : state) {
    benchmark::DoNotOptimize(maker.build(ts.values(), ts.values(), spec));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(2000 - spec.history) * state.range(0) *
      state.range(1));
}
BENCHMARK(BM_CascadedBuild)
    ->Args({1, 12})
    ->Args({4, 24})
    ->Args({4, 96})
    ->Args({16, 24});

}  // namespace

int main(int argc, char** argv) {
  coda::bench::strip_obs_flags(&argc, argv);
  print_fig7();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  coda::bench::dump_obs_if_requested();
  return 0;
}
