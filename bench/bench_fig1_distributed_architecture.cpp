// Regenerates Fig 1: the distributed data analytics architecture — client
// nodes, cloud analytics servers, AI web services and data sources on a
// WAN. The artifact places the same analytics computation at each node
// role and reports the end-to-end cost (simulated network time + measured
// compute time) and bytes moved, reproducing the section's trade-offs:
// local compute avoids the WAN but may be slower hardware; cloud compute
// pays to ship the data; web services pay per-request latency.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/core/evaluator.h"
#include "src/data/synthetic.h"
#include "src/dist/sim_net.h"
#include "src/ml/random_forest.h"
#include "src/ml/scalers.h"
#include "src/util/stopwatch.h"
#include "src/util/string_util.h"

using namespace coda;
using namespace coda::dist;

namespace {

Dataset workload() {
  RegressionConfig cfg;
  cfg.n_samples = 400;
  cfg.n_features = 10;
  return make_regression(cfg);
}

std::size_t dataset_bytes(const Dataset& d) {
  return d.X.size() * sizeof(double) + d.y.size() * sizeof(double);
}

// One cross-validated model evaluation — the unit of analytics work.
double run_analytics(const Dataset& data) {
  Pipeline p;
  p.add_transformer(std::make_unique<StandardScaler>());
  p.set_estimator(std::make_unique<RandomForestRegressor>());
  Stopwatch timer;
  cross_validate(p, data, KFold(5), Metric::kRmse);
  return timer.elapsed_seconds();
}

void print_fig1() {
  std::printf("=== Fig 1 (regenerated): placements in the distributed "
              "architecture ===\n\n");
  const Dataset data = workload();
  const std::size_t data_size = dataset_bytes(data);

  // Node roles of Fig 1. The client's hardware is slower than a cloud VM
  // (factor 4 — edge boxes vs scaled server), web services add per-call
  // API latency; the data source holds the data next to the client site.
  SimNet net;  // 20ms latency, 1MB/s WAN by default
  const NodeId data_source = net.add_node("data_source");
  const NodeId client = net.add_node("client");
  const NodeId cloud = net.add_node("cloud_analytics");
  const NodeId web_service = net.add_node("ai_web_service");

  const double compute_seconds = run_analytics(data);
  constexpr double kClientSlowdown = 4.0;
  constexpr double kWebServiceCalls = 36.0;  // one HTTP call per pipeline

  std::vector<std::vector<std::string>> rows;
  {
    // Placement A: compute at the client (data is local: LAN-ish hop).
    const double lan =
        net.transfer(data_source, client, data_size).seconds / 20.0;
    const double total = lan + compute_seconds * kClientSlowdown;
    rows.push_back({"client node", coda::bench::fmt(lan, 3),
                    coda::bench::fmt(compute_seconds * kClientSlowdown, 2),
                    coda::bench::fmt(total, 2),
                    "works offline; slower hardware"});
  }
  {
    // Placement B: ship the data to the cloud analytics servers.
    const double wan = net.transfer(data_source, cloud, data_size).seconds;
    const double total = wan + compute_seconds;
    rows.push_back({"cloud analytics", coda::bench::fmt(wan, 3),
                    coda::bench::fmt(compute_seconds, 2),
                    coda::bench::fmt(total, 2),
                    "fast VMs; pays data shipping"});
  }
  {
    // Placement C: AI web service — per-request API round-trips on top of
    // shipping the data.
    double wan = net.transfer(data_source, web_service, data_size).seconds;
    for (int call = 0; call < static_cast<int>(kWebServiceCalls); ++call) {
      wan += net.transfer(client, web_service, 512).seconds;
      wan += net.transfer(web_service, client, 2048).seconds;
    }
    const double total = wan + compute_seconds;
    rows.push_back({"AI web service", coda::bench::fmt(wan, 3),
                    coda::bench::fmt(compute_seconds, 2),
                    coda::bench::fmt(total, 2),
                    "managed models; per-call latency"});
  }
  coda::bench::print_table({"placement", "network s (sim)",
                            "compute s (measured)", "total s", "trade-off"},
                           rows, {-16, 15, 20, 9, -32});
  std::printf("\ntotal simulated traffic: %s over %zu messages\n",
              format_bytes(net.total().bytes).c_str(), net.total().messages);
  std::printf("(dataset is %s; the architecture exists precisely because "
              "these placements dominate in different regimes)\n\n",
              format_bytes(data_size).c_str());
}

void BM_SimNetTransfer(benchmark::State& state) {
  SimNet net;
  const NodeId a = net.add_node("a");
  const NodeId b = net.add_node("b");
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.transfer(a, b, 1024));
  }
}
BENCHMARK(BM_SimNetTransfer);

void BM_AnalyticsUnit(benchmark::State& state) {
  const Dataset data = workload();
  for (auto _ : state) {
    Pipeline p;
    p.add_transformer(std::make_unique<StandardScaler>());
    p.set_estimator(std::make_unique<RandomForestRegressor>());
    benchmark::DoNotOptimize(
        cross_validate(p, data, KFold(3), Metric::kRmse));
  }
}
BENCHMARK(BM_AnalyticsUnit)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  coda::bench::strip_obs_flags(&argc, argv);
  print_fig1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  coda::bench::dump_obs_if_requested();
  return 0;
}
