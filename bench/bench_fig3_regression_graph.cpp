// Regenerates Fig 3: the regression Transformer-Estimator Graph with
// 4 scalers x 3 selectors x 3 models = 36 pipelines. Prints the evaluated
// path table (best first), the DOT graph, and an ablation of parallel vs
// serial path evaluation (DESIGN.md design-choice 4). Micro benchmarks
// cover path enumeration and candidate instantiation.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench/bench_util.h"
#include "src/core/evaluator.h"
#include "src/data/synthetic.h"
#include "src/ml/decision_tree.h"
#include "src/ml/feature_selection.h"
#include "src/ml/knn.h"
#include "src/ml/pca.h"
#include "src/ml/random_forest.h"
#include "src/ml/scalers.h"
#include "src/util/stopwatch.h"

using namespace coda;

namespace {

Dataset workload() {
  RegressionConfig cfg;
  cfg.n_samples = 400;
  cfg.n_features = 12;
  cfg.n_informative = 6;
  return make_regression(cfg);
}

TEGraph fig3_graph() {
  TEGraph g;
  std::vector<std::unique_ptr<Transformer>> scalers;
  scalers.push_back(std::make_unique<MinMaxScaler>());
  scalers.push_back(std::make_unique<StandardScaler>());
  scalers.push_back(std::make_unique<RobustScaler>());
  scalers.push_back(std::make_unique<NoOp>());
  g.add_feature_scalers(std::move(scalers));

  std::vector<std::unique_ptr<Transformer>> selectors;
  auto pca = std::make_unique<PCA>();
  pca->set_param("n_components", std::int64_t{4});
  selectors.push_back(std::move(pca));
  auto kbest = std::make_unique<SelectKBest>();
  kbest->set_param("k", std::int64_t{6});
  selectors.push_back(std::move(kbest));
  auto noop = std::make_unique<NoOp>();
  noop->set_name("noop_select");
  selectors.push_back(std::move(noop));
  g.add_feature_selectors(std::move(selectors));

  std::vector<std::unique_ptr<Estimator>> models;
  models.push_back(std::make_unique<DecisionTreeRegressor>());
  models.push_back(std::make_unique<KnnRegressor>());
  models.push_back(std::make_unique<RandomForestRegressor>());
  g.add_regression_models(std::move(models));
  return g;
}

void print_fig3() {
  const Dataset data = workload();
  const TEGraph graph = fig3_graph();
  std::printf("=== Fig 3 (regenerated): regression TE-Graph, %zu pipelines "
              "===\n\n",
              graph.count_paths());

  EvalOptions config;
  config.metric = Metric::kRmse;
  config.threads = 1;
  Stopwatch serial_timer;
  const auto report = GraphEvaluator(config).evaluate(graph, data, KFold(5));
  const double serial_seconds = serial_timer.elapsed_seconds();

  // Ranked path table.
  std::vector<std::size_t> order(report.results.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return report.results[a].mean_score < report.results[b].mean_score;
  });
  std::vector<std::vector<std::string>> rows;
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    const auto& r = report.results[order[rank]];
    // Shorten specs for the table: strip parameter lists.
    std::string spec = r.spec;
    for (std::size_t pos = spec.find('(');
         pos != std::string::npos; pos = spec.find('(')) {
      spec.erase(pos, spec.find(')', pos) - pos + 1);
    }
    rows.push_back({coda::bench::fmt_int(rank + 1), spec,
                    coda::bench::fmt(r.mean_score),
                    coda::bench::fmt(r.stddev)});
  }
  coda::bench::print_table({"#", "pipeline", "RMSE", "+/-"}, rows,
                           {3, -56, 10, 8});

  // Parallel-vs-serial ablation.
  EvalOptions parallel = config;
  parallel.threads = 4;
  Stopwatch parallel_timer;
  GraphEvaluator(parallel).evaluate(graph, data, KFold(5));
  const double parallel_seconds = parallel_timer.elapsed_seconds();
  std::printf("\nablation — path evaluation: serial %.2fs vs thread-pool(4) "
              "%.2fs (speedup %.2fx; 1 on a single-core host)\n\n",
              serial_seconds, parallel_seconds,
              serial_seconds / parallel_seconds);
}

void BM_EnumeratePaths(benchmark::State& state) {
  const TEGraph graph = fig3_graph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph.enumerate_paths());
  }
}
BENCHMARK(BM_EnumeratePaths);

void BM_EnumerateCandidates(benchmark::State& state) {
  const TEGraph graph = fig3_graph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph.enumerate_candidates());
  }
}
BENCHMARK(BM_EnumerateCandidates);

void BM_InstantiatePipeline(benchmark::State& state) {
  const TEGraph graph = fig3_graph();
  const auto candidates = graph.enumerate_candidates();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        graph.instantiate(candidates[i++ % candidates.size()]));
  }
}
BENCHMARK(BM_InstantiatePipeline);

void BM_GraphToDot(benchmark::State& state) {
  const TEGraph graph = fig3_graph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph.to_dot());
  }
}
BENCHMARK(BM_GraphToDot);

}  // namespace

int main(int argc, char** argv) {
  coda::bench::strip_obs_flags(&argc, argv);
  print_fig3();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  coda::bench::dump_obs_if_requested();
  return 0;
}
