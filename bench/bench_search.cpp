// Successive-halving search scheduler artifact (DESIGN.md §16): races the
// golden-seed graphs — the Fig-3 tabular shape and the four §IV-E solution
// templates over fleet-scale synthetic workloads — exhaustive vs halving,
// and pins three things per workload in BENCH_search.json:
//
//   search_<name>_identical      (exact)  halving picked the same pipeline
//   search_<name>_halving_folds  (exact)  the rung plan's fold budget
//   search_<name>_exhaustive_folds (exact) candidates x folds reference
//
// plus tolerance-gated wall times for both strategies. The identity and
// fold-count pins make the acceptance bar diffable: the halving search
// must return the identical best pipeline at <= 60% of the exhaustive
// fold-evaluation budget on every one of these workloads.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/evaluator.h"
#include "src/core/search_scheduler.h"
#include "src/data/synthetic.h"
#include "src/ml/decision_tree.h"
#include "src/ml/knn.h"
#include "src/ml/linear.h"
#include "src/ml/scalers.h"
#include "src/templates/anomaly.h"
#include "src/templates/cohort.h"
#include "src/templates/failure_prediction.h"
#include "src/templates/root_cause.h"
#include "src/util/stopwatch.h"

using namespace coda;

namespace {

// The Fig-3 tabular shape at fleet scale: 9 candidates over a larger
// regression workload than the chaos suite uses. eta=3 — with only 9
// candidates the default halving cut (9 -> 5 -> 3) keeps 63% of the fold
// budget; the sharper cut (9 -> 3 -> 1) lands at 48% and the golden
// seed's winner still leads every rung.
TEGraph fig3_graph() {
  TEGraph g;
  std::vector<std::unique_ptr<Transformer>> scalers;
  scalers.push_back(std::make_unique<StandardScaler>());
  scalers.push_back(std::make_unique<RobustScaler>());
  scalers.push_back(std::make_unique<NoOp>());
  g.add_feature_scalers(std::move(scalers));
  std::vector<std::unique_ptr<Estimator>> models;
  models.push_back(std::make_unique<LinearRegression>());
  models.push_back(std::make_unique<DecisionTreeRegressor>());
  models.push_back(std::make_unique<KnnRegressor>());
  g.add_regression_models(std::move(models));
  return g;
}

struct RaceCase {
  std::string name;
  TEGraph graph;
  Dataset data;
  Metric metric;
  std::size_t eta;
};

std::vector<RaceCase> race_cases() {
  std::vector<RaceCase> cases;
  {
    RegressionConfig cfg;
    cfg.n_samples = 600;  // default 12-feature shape, fleet-scale samples
    cases.push_back({"fig3_tabular", fig3_graph(), make_regression(cfg),
                     Metric::kRmse, 3});
  }
  {
    FailureWorkloadConfig cfg;
    cfg.n_samples = 1200;
    cases.push_back({"failure_prediction",
                     templates::FailurePredictionAnalysis::search_graph(),
                     make_failure_workload(cfg), Metric::kF1, 2});
  }
  {
    RegressionConfig cfg;
    cfg.n_samples = 800;
    cases.push_back({"root_cause", templates::RootCauseAnalysis::search_graph(),
                     make_regression(cfg), Metric::kRmse, 2});
  }
  {
    AnomalyWorkloadConfig cfg;
    cfg.n_samples = 1200;
    cases.push_back({"anomaly", templates::AnomalyAnalysis::search_graph(),
                     make_anomaly_workload(cfg), Metric::kF1, 2});
  }
  {
    CohortWorkloadConfig cfg;
    cfg.n_assets = 240;
    cases.push_back({"cohort", templates::CohortAnalysis::search_graph(),
                     templates::CohortAnalysis::membership_dataset(
                         make_cohort_workload(cfg), 0),
                     Metric::kAccuracy, 2});
  }
  return cases;
}

void print_search_races() {
  std::printf("=== successive-halving search scheduler (DESIGN.md §16): "
              "golden-seed graphs, exhaustive vs halving ===\n\n");
  std::vector<std::vector<std::string>> rows;
  for (const RaceCase& c : race_cases()) {
    EvalOptions options;
    options.metric = c.metric;
    Stopwatch exhaustive_timer;
    const EvaluationReport ref =
        GraphEvaluator(options).evaluate(c.graph, c.data, KFold(3));
    const double exhaustive_seconds = exhaustive_timer.elapsed_seconds();

    EvalOptions halving = options;
    halving.search.strategy = SearchStrategy::kHalving;
    halving.search.eta = c.eta;
    Stopwatch halving_timer;
    const EvaluationReport report =
        GraphEvaluator(halving).evaluate(c.graph, c.data, KFold(3));
    const double halving_seconds = halving_timer.elapsed_seconds();

    const bool identical = report.best().spec == ref.best().spec &&
                           report.best().fold_scores == ref.best().fold_scores;
    const double budget = static_cast<double>(report.fold_evaluations) /
                          static_cast<double>(ref.fold_evaluations);
    rows.push_back(
        {c.name, coda::bench::fmt_int(ref.results.size()),
         coda::bench::fmt_int(c.eta),
         coda::bench::fmt_int(report.fold_evaluations) + "/" +
             coda::bench::fmt_int(ref.fold_evaluations),
         coda::bench::fmt(100.0 * budget, 1) + "%",
         coda::bench::fmt(exhaustive_seconds / halving_seconds, 2) + "x",
         identical ? "yes" : "NO (bug!)"});

    coda::bench::record_entry("search_" + c.name + "_identical", 0.0,
                              identical ? 1.0 : 0.0, "bool", /*exact=*/true);
    coda::bench::record_entry("search_" + c.name + "_halving_folds", 0.0,
                              static_cast<double>(report.fold_evaluations),
                              "folds", /*exact=*/true);
    coda::bench::record_entry("search_" + c.name + "_exhaustive_folds", 0.0,
                              static_cast<double>(ref.fold_evaluations),
                              "folds", /*exact=*/true);
    // Wall times: model fits on a shared box — wide bands, like the other
    // graph-search benches.
    coda::bench::record_entry("search_" + c.name + "_exhaustive",
                              exhaustive_seconds, 0.0, "",
                              /*exact=*/false, /*tolerance=*/0.60);
    coda::bench::record_entry("search_" + c.name + "_halving",
                              halving_seconds,
                              exhaustive_seconds / halving_seconds, "x",
                              /*exact=*/false, /*tolerance=*/0.60);
  }
  coda::bench::print_table(
      {"workload", "cands", "eta", "folds", "budget", "speedup", "identical"},
      rows, {-20, 5, 3, 9, 7, 7, -10});
  std::printf("\n");
}

// Microbench: the rung-plan construction and tournament permutation are on
// the per-search critical path (built once per client per search).
void BM_HalvingPlanBuild(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        HalvingPlan::build(static_cast<std::size_t>(state.range(0)), 10, 2));
  }
}
BENCHMARK(BM_HalvingPlanBuild)->Arg(48)->Arg(1024);

void BM_TournamentRanks(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tournament_ranks(static_cast<std::size_t>(state.range(0)), 42));
  }
}
BENCHMARK(BM_TournamentRanks)->Arg(48)->Arg(1024);

}  // namespace

int main(int argc, char** argv) {
  coda::bench::strip_obs_flags(&argc, argv);
  print_search_races();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  coda::bench::dump_obs_if_requested();
  return 0;
}
