// Shared helpers for the bench harness: fixed-width artifact tables that
// regenerate the paper's tables/figures as measured artifacts, printed
// before the google-benchmark micro benchmarks run.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "src/obs/obs.h"

namespace coda::bench {

/// Prints a fixed-width table: header row, rule, data rows. Column widths
/// come from the widths vector (positive = right-aligned numeric-ish,
/// negative = left-aligned text).
inline void print_table(const std::vector<std::string>& header,
                        const std::vector<std::vector<std::string>>& rows,
                        const std::vector<int>& widths) {
  auto print_row = [&widths](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      const int w = i < widths.size() ? widths[i] : -20;
      std::printf("%*s  ", w, row[i].c_str());
    }
    std::printf("\n");
  };
  print_row(header);
  std::size_t total = 0;
  for (const int w : widths) total += static_cast<std::size_t>(w < 0 ? -w : w) + 2;
  std::string rule(total, '-');
  std::printf("%s\n", rule.c_str());
  for (const auto& row : rows) print_row(row);
}

/// printf-style float formatting into std::string.
inline std::string fmt(double value, int precision = 4) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

inline std::string fmt_int(std::size_t value) { return std::to_string(value); }

inline bool& metrics_dump_requested() {
  static bool requested = false;
  return requested;
}

inline std::string& metrics_dump_path() {
  static std::string path;
  return path;
}

inline bool& trace_dump_requested() {
  static bool requested = false;
  return requested;
}

inline std::string& trace_dump_path() {
  static std::string path;
  return path;
}

namespace detail {

inline void write_or_print(const std::string& payload,
                           const std::string& path, const char* what) {
  if (path.empty()) {
    std::printf("%s\n", payload.c_str());
    return;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot write %s to '%s'\n", what,
                 path.c_str());
    return;
  }
  std::fprintf(f, "%s\n", payload.c_str());
  std::fclose(f);
}

}  // namespace detail

/// Consumes `--metrics-json[=path]` and `--trace-json[=path]` from argv
/// before google-benchmark's own flag parsing (which rejects unknown
/// flags). With no path, the respective JSON goes to stdout after the
/// benchmarks run: --metrics-json emits the metrics snapshot,
/// --trace-json the Chrome trace-event export of the span ring.
inline void strip_obs_flags(int* argc, char** argv) {
  int kept = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--metrics-json") {
      metrics_dump_requested() = true;
    } else if (arg.rfind("--metrics-json=", 0) == 0) {
      metrics_dump_requested() = true;
      metrics_dump_path() = arg.substr(std::string("--metrics-json=").size());
    } else if (arg == "--trace-json") {
      trace_dump_requested() = true;
    } else if (arg.rfind("--trace-json=", 0) == 0) {
      trace_dump_requested() = true;
      trace_dump_path() = arg.substr(std::string("--trace-json=").size());
    } else {
      argv[kept++] = argv[i];
    }
  }
  *argc = kept;
}

/// Emits whatever `--metrics-json` / `--trace-json` requested.
inline void dump_obs_if_requested() {
  if (metrics_dump_requested()) {
    detail::write_or_print(coda::obs::snapshot_json(), metrics_dump_path(),
                           "metrics");
  }
  if (trace_dump_requested()) {
    detail::write_or_print(coda::obs::export_chrome_trace(),
                           trace_dump_path(), "trace");
  }
}

}  // namespace coda::bench
