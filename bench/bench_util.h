// Shared helpers for the bench harness: fixed-width artifact tables that
// regenerate the paper's tables/figures as measured artifacts, printed
// before the google-benchmark micro benchmarks run.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "src/obs/obs.h"

namespace coda::bench {

/// Prints a fixed-width table: header row, rule, data rows. Column widths
/// come from the widths vector (positive = right-aligned numeric-ish,
/// negative = left-aligned text).
inline void print_table(const std::vector<std::string>& header,
                        const std::vector<std::vector<std::string>>& rows,
                        const std::vector<int>& widths) {
  auto print_row = [&widths](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      const int w = i < widths.size() ? widths[i] : -20;
      std::printf("%*s  ", w, row[i].c_str());
    }
    std::printf("\n");
  };
  print_row(header);
  std::size_t total = 0;
  for (const int w : widths) total += static_cast<std::size_t>(w < 0 ? -w : w) + 2;
  std::string rule(total, '-');
  std::printf("%s\n", rule.c_str());
  for (const auto& row : rows) print_row(row);
}

/// printf-style float formatting into std::string.
inline std::string fmt(double value, int precision = 4) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

inline std::string fmt_int(std::size_t value) { return std::to_string(value); }

inline bool& metrics_dump_requested() {
  static bool requested = false;
  return requested;
}

inline std::string& metrics_dump_path() {
  static std::string path;
  return path;
}

/// Consumes `--metrics-json[=path]` from argv before google-benchmark's own
/// flag parsing (which rejects unknown flags). With no path, the JSON
/// snapshot goes to stdout after the benchmarks run.
inline void strip_metrics_flag(int* argc, char** argv) {
  int kept = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--metrics-json") {
      metrics_dump_requested() = true;
    } else if (arg.rfind("--metrics-json=", 0) == 0) {
      metrics_dump_requested() = true;
      metrics_dump_path() = arg.substr(std::string("--metrics-json=").size());
    } else {
      argv[kept++] = argv[i];
    }
  }
  *argc = kept;
}

/// Emits the process metrics snapshot if `--metrics-json` was passed.
inline void dump_metrics_if_requested() {
  if (!metrics_dump_requested()) return;
  const std::string json = coda::obs::snapshot_json();
  const std::string& path = metrics_dump_path();
  if (path.empty()) {
    std::printf("%s\n", json.c_str());
    return;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot write metrics to '%s'\n", path.c_str());
    return;
  }
  std::fprintf(f, "%s\n", json.c_str());
  std::fclose(f);
}

}  // namespace coda::bench
