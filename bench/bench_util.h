// Shared helpers for the bench harness: fixed-width artifact tables that
// regenerate the paper's tables/figures as measured artifacts, printed
// before the google-benchmark micro benchmarks run.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace coda::bench {

/// Prints a fixed-width table: header row, rule, data rows. Column widths
/// come from the widths vector (positive = right-aligned numeric-ish,
/// negative = left-aligned text).
inline void print_table(const std::vector<std::string>& header,
                        const std::vector<std::vector<std::string>>& rows,
                        const std::vector<int>& widths) {
  auto print_row = [&widths](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      const int w = i < widths.size() ? widths[i] : -20;
      std::printf("%*s  ", w, row[i].c_str());
    }
    std::printf("\n");
  };
  print_row(header);
  std::size_t total = 0;
  for (const int w : widths) total += static_cast<std::size_t>(w < 0 ? -w : w) + 2;
  std::string rule(total, '-');
  std::printf("%s\n", rule.c_str());
  for (const auto& row : rows) print_row(row);
}

/// printf-style float formatting into std::string.
inline std::string fmt(double value, int precision = 4) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

inline std::string fmt_int(std::size_t value) { return std::to_string(value); }

}  // namespace coda::bench
