// Shared helpers for the bench harness: fixed-width artifact tables that
// regenerate the paper's tables/figures as measured artifacts, printed
// before the google-benchmark micro benchmarks run.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "src/obs/obs.h"
#include "src/util/stopwatch.h"

namespace coda::bench {

/// Prints a fixed-width table: header row, rule, data rows. Column widths
/// come from the widths vector (positive = right-aligned numeric-ish,
/// negative = left-aligned text).
inline void print_table(const std::vector<std::string>& header,
                        const std::vector<std::vector<std::string>>& rows,
                        const std::vector<int>& widths) {
  auto print_row = [&widths](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      const int w = i < widths.size() ? widths[i] : -20;
      std::printf("%*s  ", w, row[i].c_str());
    }
    std::printf("\n");
  };
  print_row(header);
  std::size_t total = 0;
  for (const int w : widths) total += static_cast<std::size_t>(w < 0 ? -w : w) + 2;
  std::string rule(total, '-');
  std::printf("%s\n", rule.c_str());
  for (const auto& row : rows) print_row(row);
}

/// printf-style float formatting into std::string.
inline std::string fmt(double value, int precision = 4) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

inline std::string fmt_int(std::size_t value) { return std::to_string(value); }

inline bool& metrics_dump_requested() {
  static bool requested = false;
  return requested;
}

inline std::string& metrics_dump_path() {
  static std::string path;
  return path;
}

inline bool& trace_dump_requested() {
  static bool requested = false;
  return requested;
}

inline std::string& trace_dump_path() {
  static std::string path;
  return path;
}

inline bool& profile_dump_requested() {
  static bool requested = false;
  return requested;
}

inline std::string& profile_dump_path() {
  static std::string path;
  return path;
}

// --------------------------------------------------------------------------
// --bench-json: every bench binary can persist a machine-readable baseline
// (BENCH_<name>.json next to the cwd by default) holding its whole-run wall
// time, any named results recorded via record_entry(), and the final
// metrics snapshot. Committing the file gives perf changes a diffable
// anchor.
// --------------------------------------------------------------------------

/// One named measurement in the baseline file.
struct BenchEntry {
  std::string name;
  double wall_seconds;
  double throughput;  // 0 when not meaningful
  std::string unit;   // unit of `throughput`, e.g. "GF/s", "rows/s"
  /// True for deterministic quantities (candidate counts, exact result
  /// counters): scripts/bench_gate.py compares them exactly instead of
  /// within the timing tolerance, so a correctness regression can't hide
  /// inside the perf noise band.
  bool exact = false;
  /// Per-entry regression band overriding the gate's --tolerance flag
  /// (negative = use the flag). Widen it for entries whose runtime is
  /// dominated by noisy work (e.g. multi-second neural fits) so the gate
  /// stays strict on the quiet entries.
  double tolerance = -1.0;
};

inline bool& bench_dump_requested() {
  static bool requested = false;
  return requested;
}

inline std::string& bench_dump_path() {
  static std::string path;
  return path;
}

inline std::string& bench_name() {
  static std::string name = "bench";
  return name;
}

inline std::vector<BenchEntry>& bench_entries() {
  static std::vector<BenchEntry> entries;
  return entries;
}

inline Stopwatch& bench_run_timer() {
  static Stopwatch timer;
  return timer;
}

/// Records a named result for the --bench-json baseline. Pass throughput 0
/// (and any unit) when only the wall time is meaningful; pass exact=true
/// when `throughput` is a deterministic count the regression gate should
/// compare exactly.
inline void record_entry(const std::string& name, double wall_seconds,
                         double throughput = 0.0,
                         const std::string& unit = "", bool exact = false,
                         double tolerance = -1.0) {
  bench_entries().push_back(
      BenchEntry{name, wall_seconds, throughput, unit, exact, tolerance});
}

namespace detail {

inline void write_or_print(const std::string& payload,
                           const std::string& path, const char* what) {
  if (path.empty()) {
    std::printf("%s\n", payload.c_str());
    return;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot write %s to '%s'\n", what,
                 path.c_str());
    return;
  }
  std::fprintf(f, "%s\n", payload.c_str());
  std::fclose(f);
}

}  // namespace detail

/// Consumes `--metrics-json[=path]`, `--trace-json[=path]`,
/// `--profile-folded[=path]` and `--bench-json[=path]` from argv before
/// google-benchmark's own flag parsing (which rejects unknown flags). With
/// no path, --metrics-json, --trace-json and --profile-folded go to stdout
/// after the benchmarks run; --bench-json defaults to BENCH_<name>.json
/// where <name> is the binary's basename minus any "bench_" prefix. Also
/// starts the whole-run wall clock used in the baseline file.
inline void strip_obs_flags(int* argc, char** argv) {
  // Derive the bench name from argv[0]: ".../bench_kernels" -> "kernels".
  std::string prog = argv[0] != nullptr ? argv[0] : "bench";
  const std::size_t slash = prog.find_last_of('/');
  if (slash != std::string::npos) prog = prog.substr(slash + 1);
  if (prog.rfind("bench_", 0) == 0) prog = prog.substr(6);
  bench_name() = prog.empty() ? "bench" : prog;
  bench_run_timer().reset();

  int kept = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--metrics-json") {
      metrics_dump_requested() = true;
    } else if (arg.rfind("--metrics-json=", 0) == 0) {
      metrics_dump_requested() = true;
      metrics_dump_path() = arg.substr(std::string("--metrics-json=").size());
    } else if (arg == "--trace-json") {
      trace_dump_requested() = true;
    } else if (arg.rfind("--trace-json=", 0) == 0) {
      trace_dump_requested() = true;
      trace_dump_path() = arg.substr(std::string("--trace-json=").size());
    } else if (arg == "--profile-folded") {
      profile_dump_requested() = true;
    } else if (arg.rfind("--profile-folded=", 0) == 0) {
      profile_dump_requested() = true;
      profile_dump_path() =
          arg.substr(std::string("--profile-folded=").size());
    } else if (arg == "--bench-json") {
      bench_dump_requested() = true;
    } else if (arg.rfind("--bench-json=", 0) == 0) {
      bench_dump_requested() = true;
      bench_dump_path() = arg.substr(std::string("--bench-json=").size());
    } else {
      argv[kept++] = argv[i];
    }
  }
  *argc = kept;
}

namespace detail {

inline std::string json_number(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

inline std::string bench_baseline_json() {
  std::string out = "{\n  \"bench\": \"" + bench_name() + "\",\n";
  out += "  \"wall_seconds\": " +
         json_number(bench_run_timer().elapsed_seconds()) + ",\n";
  out += "  \"entries\": [";
  const auto& entries = bench_entries();
  for (std::size_t i = 0; i < entries.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    const BenchEntry& e = entries[i];
    out += "    {\"name\": \"" + e.name +
           "\", \"wall_seconds\": " + json_number(e.wall_seconds) +
           ", \"throughput\": " + json_number(e.throughput) +
           ", \"unit\": \"" + e.unit +
           "\", \"exact\": " + (e.exact ? "true" : "false");
    if (e.tolerance >= 0.0) {
      out += ", \"tolerance\": " + json_number(e.tolerance);
    }
    out += "}";
  }
  out += entries.empty() ? "],\n" : "\n  ],\n";
  out += "  \"metrics\": " + coda::obs::snapshot_json() + "\n}";
  return out;
}

}  // namespace detail

/// Emits whatever `--metrics-json` / `--trace-json` / `--profile-folded` /
/// `--bench-json` requested.
inline void dump_obs_if_requested() {
  if (metrics_dump_requested()) {
    detail::write_or_print(coda::obs::snapshot_json(), metrics_dump_path(),
                           "metrics");
  }
  if (trace_dump_requested()) {
    detail::write_or_print(coda::obs::export_chrome_trace(),
                           trace_dump_path(), "trace");
  }
  if (profile_dump_requested()) {
    // Folded-stack text (flamegraph.pl / speedscope input): one line per
    // unique call path, "node;r1;r2 self_ns".
    detail::write_or_print(coda::obs::prof::folded(), profile_dump_path(),
                           "folded profile");
  }
  if (bench_dump_requested()) {
    std::string path = bench_dump_path();
    if (path.empty()) path = "BENCH_" + bench_name() + ".json";
    detail::write_or_print(detail::bench_baseline_json(), path, "baseline");
  }
}

}  // namespace coda::bench
