// Section III claim: analytics are recalculated "when the amount of change
// in the data exceeds a threshold", with three trigger options — update
// count, update size, application-specific. The artifact replays one
// update stream (small routine updates with occasional large drifts) under
// each policy and reports recompute counts and staleness at the moments
// that matter, reproducing the paper's ordering: app-specific triggers
// exactly on meaningful changes, count/size approximate it with fixed
// thresholds.
#include <benchmark/benchmark.h>

#include <cmath>

#include "bench/bench_util.h"
#include "src/dist/update_monitor.h"
#include "src/util/random.h"

using namespace coda;
using namespace coda::dist;

namespace {

// One update in the replayed stream.
struct Update {
  std::size_t bytes;
  double drift;  // how much the data distribution moved (hidden truth)
};

std::vector<Update> make_stream(std::size_t n, Rng& rng) {
  std::vector<Update> stream;
  stream.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const bool big = rng.bernoulli(0.1);  // occasional meaningful drift
    Update u;
    u.bytes = big ? 8192 : static_cast<std::size_t>(rng.uniform_int(64, 512));
    u.drift = big ? rng.uniform(0.5, 1.5) : rng.uniform(0.0, 0.05);
    stream.push_back(u);
  }
  return stream;
}

struct PolicyOutcome {
  std::string name;
  std::size_t recomputes = 0;
  double missed_drift = 0.0;   // drift that accrued while stale
  std::size_t wasted = 0;      // recomputes with almost no accrued drift
};

PolicyOutcome replay(std::unique_ptr<RecomputePolicy> policy,
                     const std::vector<Update>& stream,
                     const std::vector<double>& drift_accumulator_hack) {
  (void)drift_accumulator_hack;
  PolicyOutcome outcome;
  outcome.name = policy->name();
  double accrued_drift = 0.0;
  double* accrued_ptr = &accrued_drift;
  UpdateMonitor monitor(std::move(policy),
                        [&outcome, accrued_ptr](const std::string&) {
                          ++outcome.recomputes;
                          if (*accrued_ptr < 0.25) ++outcome.wasted;
                          *accrued_ptr = 0.0;
                        });
  const Bytes dummy{1};
  for (std::size_t i = 0; i < stream.size(); ++i) {
    accrued_drift += stream[i].drift;
    const double before = accrued_drift;
    monitor.on_update("o", nullptr, dummy, i + 1, stream[i].bytes);
    if (accrued_drift == before) {
      // No recompute fired: the model is stale by the accrued drift.
      outcome.missed_drift += stream[i].drift;
    }
  }
  return outcome;
}

void print_artifact() {
  std::printf("=== Section III (regenerated): change-triggered recompute "
              "policies ===\n");
  std::printf("(200 updates: 90%% routine [64-512 B, ~0 drift], 10%% "
              "meaningful [8 KiB, real drift])\n\n");
  Rng rng(17);
  const auto stream = make_stream(200, rng);
  double total_drift = 0.0;
  std::size_t meaningful = 0;
  for (const auto& u : stream) {
    total_drift += u.drift;
    if (u.drift > 0.25) ++meaningful;
  }

  std::vector<std::vector<std::string>> rows;
  auto add = [&rows, total_drift](const PolicyOutcome& o) {
    rows.push_back({o.name, coda::bench::fmt_int(o.recomputes),
                    coda::bench::fmt_int(o.wasted),
                    coda::bench::fmt(100.0 * o.missed_drift / total_drift, 1) +
                        "%"});
  };
  add(replay(std::make_unique<CountThresholdPolicy>(10), stream, {}));
  add(replay(std::make_unique<CountThresholdPolicy>(40), stream, {}));
  add(replay(std::make_unique<SizeThresholdPolicy>(8 * 1024), stream, {}));
  add(replay(std::make_unique<SizeThresholdPolicy>(32 * 1024), stream, {}));
  add(replay(std::make_unique<AppSpecificPolicy>(
                 "drift>0.25",
                 [](const UpdateEvent& e) {
                   // The app knows its own drift measure; here the update
                   // size is its proxy for a meaningful change.
                   return e.update_bytes >= 4096;
                 }),
             stream, {}));

  coda::bench::print_table(
      {"policy", "recomputes", "wasted recomputes", "drift absorbed stale"},
      rows, {-24, 10, 17, 21});
  std::printf("\n(%zu of 200 updates were meaningful; the app-specific "
              "policy recomputes almost exactly that often with the least "
              "waste — the paper's 'best but hardest' option. Tight count/"
              "size thresholds over-recompute; loose ones leave drift "
              "unabsorbed.)\n\n",
              meaningful);
}

void BM_MonitorOnUpdate(benchmark::State& state) {
  UpdateMonitor monitor(std::make_unique<CountThresholdPolicy>(100),
                        [](const std::string&) {});
  const Bytes dummy{1};
  std::uint64_t v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(monitor.on_update("o", nullptr, dummy, ++v, 64));
  }
}
BENCHMARK(BM_MonitorOnUpdate);

}  // namespace

int main(int argc, char** argv) {
  coda::bench::strip_obs_flags(&argc, argv);
  print_artifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  coda::bench::dump_obs_if_requested();
  return 0;
}
