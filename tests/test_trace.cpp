// Causal-tracing acceptance suite (ctest -R trace): a cooperative Fig-2
// search must yield one connected span tree per requesting client — client
// compute, darr client ops, repository work, and every network transfer
// (including retries across a healed partition) all reachable from that
// client's "evaluator.evaluate" root span — and the Chrome trace-event
// export of such a run must be valid JSON with one process per simulated
// node.
#include <gtest/gtest.h>

#include <cctype>
#include <cstddef>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/darr/cooperative.h"
#include "src/data/synthetic.h"
#include "src/dist/retry.h"
#include "src/ml/decision_tree.h"
#include "src/ml/knn.h"
#include "src/ml/linear.h"
#include "src/ml/scalers.h"
#include "src/obs/obs.h"

namespace coda {
namespace {

// ---------------------------------------------------------------------------
// Fig-2 workload: the 9-candidate tabular graph from the cooperative tests.

Dataset dataset() {
  RegressionConfig cfg;
  cfg.n_samples = 120;
  cfg.n_features = 4;
  cfg.n_informative = 3;
  return make_regression(cfg);
}

TEGraph graph() {
  TEGraph g;
  std::vector<std::unique_ptr<Transformer>> scalers;
  scalers.push_back(std::make_unique<StandardScaler>());
  scalers.push_back(std::make_unique<RobustScaler>());
  scalers.push_back(std::make_unique<NoOp>());
  g.add_feature_scalers(std::move(scalers));
  std::vector<std::unique_ptr<Estimator>> models;
  models.push_back(std::make_unique<LinearRegression>());
  models.push_back(std::make_unique<DecisionTreeRegressor>());
  models.push_back(std::make_unique<KnnRegressor>());
  g.add_regression_models(std::move(models));
  return g;  // 9 candidates
}

// Spans of one trace, indexed by span id.
using SpanIndex = std::map<std::uint64_t, obs::SpanRecord>;

std::map<std::uint64_t, SpanIndex> spans_by_trace(
    const std::vector<obs::SpanRecord>& spans) {
  std::map<std::uint64_t, SpanIndex> traces;
  for (const auto& s : spans) traces[s.trace_id].emplace(s.id, s);
  return traces;
}

// Walks a span's parent chain inside its trace; returns the root span id
// reached, or 0 if a parent id is missing from the trace.
std::uint64_t chain_root(const SpanIndex& trace, const obs::SpanRecord& s) {
  const obs::SpanRecord* cur = &s;
  // Bounded walk: a well-formed tree terminates in < size() hops.
  for (std::size_t hops = 0; hops <= trace.size(); ++hops) {
    if (cur->parent_id == 0) return cur->id;
    const auto it = trace.find(cur->parent_id);
    if (it == trace.end()) return 0;
    cur = &it->second;
  }
  return 0;  // cycle — also a failure
}

TEST(Trace, CooperativeSearchYieldsOneConnectedTreePerTrace) {
  obs::reset_all();
  const auto report =
      darr::run_cooperative_search(graph(), dataset(), KFold(3),
                                   Metric::kRmse, 2);
  ASSERT_EQ(report.clients.size(), 2u);

  auto& tracer = obs::Tracer::instance();
  ASSERT_EQ(tracer.dropped(), 0u) << "ring too small for this run";
  const auto spans = tracer.snapshot();
  ASSERT_FALSE(spans.empty());
  const auto traces = spans_by_trace(spans);

  // One trace per client root; no span rides an unrelated trace.
  std::size_t evaluate_roots = 0;
  for (const auto& [trace_id, trace] : traces) {
    SCOPED_TRACE("trace " + std::to_string(trace_id));
    // Exactly one root, and it is the client's evaluation span.
    std::uint64_t root_id = 0;
    for (const auto& [id, s] : trace) {
      if (s.parent_id != 0) continue;
      EXPECT_EQ(root_id, 0u) << "second root: " << s.name;
      root_id = id;
      EXPECT_EQ(s.name, "evaluator.evaluate");
    }
    ASSERT_NE(root_id, 0u);
    ++evaluate_roots;
    // Every span — compute, darr op, repository, network — reaches it.
    for (const auto& [id, s] : trace) {
      EXPECT_EQ(chain_root(trace, s), root_id)
          << "orphaned span: " << s.name;
    }
  }
  EXPECT_EQ(evaluate_roots, 2u);

  // The tree spans both clock domains and both sides of the fabric:
  // logical-clock network transfers and repository work attributed to the
  // repository node.
  bool saw_network = false;
  bool saw_repo = false;
  std::set<std::string> nodes;
  for (const auto& s : spans) {
    nodes.insert(s.node);
    if (s.clock == obs::ClockDomain::kLogical &&
        s.name.rfind("net.", 0) == 0) {
      saw_network = true;
    }
    if (s.name.rfind("darr.repo.", 0) == 0) {
      EXPECT_EQ(s.node, "darr");
      saw_repo = true;
    }
  }
  EXPECT_TRUE(saw_network);
  EXPECT_TRUE(saw_repo);
  EXPECT_TRUE(nodes.count("client0"));
  EXPECT_TRUE(nodes.count("client1"));

  // Each trace got a steady/logical alignment anchor from its first
  // network transfer.
  const auto anchors = tracer.anchors();
  for (const auto& [trace_id, trace] : traces) {
    EXPECT_TRUE(anchors.count(trace_id))
        << "trace " << trace_id << " has no clock anchor";
  }
}

TEST(Trace, RetrySpansAcrossHealedPartitionStayParented) {
  obs::reset_all();
  dist::SimNet net;
  const dist::NodeId client = net.add_node("client0");
  const dist::NodeId repo = net.add_node("darr");
  // Partition active from the first attempt; retry backoff walks the
  // logical clock past 0.2 and the operation heals mid-retry.
  net.partition(client, repo, 0.0, 0.2);
  net.partition(repo, client, 0.0, 0.2);

  RetryPolicy policy;
  policy.max_attempts = 6;
  policy.initial_backoff_seconds = 0.05;
  policy.multiplier = 2.0;
  policy.jitter_fraction = 0.0;  // deterministic attempt count

  std::uint64_t root_id = 0;
  std::uint64_t root_trace = 0;
  {
    const obs::NodeScope node_scope("client0");
    obs::ScopedSpan root("test.pull");
    root_id = root.id();
    root_trace = root.trace_id();
    const auto result =
        dist::transfer_with_retry(net, client, repo, 64, policy, "pull");
    EXPECT_TRUE(result.ok());
  }

  const auto spans = obs::Tracer::instance().snapshot();
  std::vector<obs::SpanRecord> attempts;
  for (const auto& s : spans) {
    if (s.name == "net.pull") attempts.push_back(s);
  }
  // Backoffs 0.05 + 0.10 + 0.20 cross the partition window at the fourth
  // attempt: three partitioned failures, then the success.
  ASSERT_EQ(attempts.size(), 4u);
  for (const auto& s : attempts) {
    EXPECT_EQ(s.trace_id, root_trace);
    EXPECT_EQ(s.parent_id, root_id) << "attempt not parented under root";
    EXPECT_EQ(s.clock, obs::ClockDomain::kLogical);
    EXPECT_EQ(s.node, "darr");  // attributed to the receiving node
  }
  auto failure_tag = [](const obs::SpanRecord& s) -> std::string {
    for (const auto& [key, value] : s.tags) {
      if (key == "failure") return value;
    }
    return "";
  };
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(failure_tag(attempts[i]), "partitioned");
  }
  EXPECT_EQ(failure_tag(attempts[3]), "");
  // Logical starts are monotone: each retry happens after the backoff.
  for (std::size_t i = 1; i < attempts.size(); ++i) {
    EXPECT_GT(attempts[i].start_seconds, attempts[i - 1].start_seconds);
  }
}

// --- minimal JSON syntax checker (objects/arrays/strings/numbers) ---------

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      default: return number_or_literal();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;  // skip escaped char
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number_or_literal() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isalnum(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.')) {
      ++pos_;
    }
    return pos_ > start;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

std::size_t count_occurrences(const std::string& text,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(Trace, ChromeExportIsValidJsonWithProcessesAndEvents) {
  obs::reset_all();
  darr::run_cooperative_search(graph(), dataset(), KFold(3), Metric::kRmse,
                               2);

  const std::string json = obs::export_chrome_trace();
  EXPECT_TRUE(JsonChecker(json).valid()) << json.substr(0, 512);

  // One process per simulated node: darr + client0 + client1.
  EXPECT_GE(count_occurrences(json, "\"process_name\""), 3u);
  // Complete events on both tracks, plus trailing counter samples.
  EXPECT_GT(count_occurrences(json, "\"ph\":\"X\""), 0u);
  EXPECT_GT(count_occurrences(json, "\"cat\":\"network\""), 0u);
  EXPECT_GT(count_occurrences(json, "\"cat\":\"compute\""), 0u);
  EXPECT_GT(count_occurrences(json, "\"ph\":\"C\""), 0u);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"otherData\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped\":0"), std::string::npos);
}

TEST(Trace, CandidateCostsAttributeFoldsAndCacheTraffic) {
  obs::reset_all();
  const auto report =
      darr::run_cooperative_search(graph(), dataset(), KFold(3),
                                   Metric::kRmse, 2);

  const auto costs = obs::CandidateCosts::instance().snapshot();
  ASSERT_EQ(costs.size(), 9u);  // one row per candidate path
  std::size_t folds = 0;
  std::size_t cached = 0;
  for (const auto& [path, cost] : costs) {
    SCOPED_TRACE(path);
    // Each candidate was either evaluated (3 folds) or served from the
    // repository — and with two clients both happen at least once.
    EXPECT_TRUE(cost.folds == 3 || cost.cached > 0);
    if (cost.folds > 0) {
      EXPECT_GT(cost.fold_seconds, 0.0);
    }
    folds += cost.folds;
    cached += cost.cached;
  }
  EXPECT_EQ(folds, 9u * 3u);  // zero-redundancy: every fold computed once
  std::size_t served = 0;
  for (const auto& client : report.clients) {
    served += client.served_from_cache;
  }
  EXPECT_EQ(cached, served);
}

}  // namespace
}  // namespace coda
