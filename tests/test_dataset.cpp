// Tests for Dataset, TimeSeries and fingerprinting.
#include <gtest/gtest.h>

#include "src/data/dataset.h"
#include "src/data/fingerprint.h"
#include "src/data/time_series.h"

namespace coda {
namespace {

Dataset small_dataset() {
  Dataset d;
  d.X = Matrix{{1, 2}, {3, 4}, {5, 6}, {7, 8}};
  d.y = {10, 20, 30, 40};
  d.feature_names = {"a", "b"};
  d.name = "small";
  return d;
}

TEST(Dataset, SelectKeepsAlignment) {
  const auto d = small_dataset();
  const auto s = d.select({3, 1});
  EXPECT_EQ(s.n_samples(), 2u);
  EXPECT_DOUBLE_EQ(s.X(0, 0), 7.0);
  EXPECT_DOUBLE_EQ(s.y[0], 40.0);
  EXPECT_DOUBLE_EQ(s.y[1], 20.0);
  EXPECT_EQ(s.feature_names, d.feature_names);
}

TEST(Dataset, SelectOutOfRangeThrows) {
  const auto d = small_dataset();
  EXPECT_THROW(d.select({4}), InvalidArgument);
}

TEST(Dataset, ValidateCatchesMismatch) {
  auto d = small_dataset();
  d.y.pop_back();
  EXPECT_THROW(d.validate(), InvalidArgument);
}

TEST(Dataset, TrainTestSplitPartitions) {
  const auto d = small_dataset();
  const auto [train, test] = train_test_split(d, 0.5, 7);
  EXPECT_EQ(train.n_samples() + test.n_samples(), d.n_samples());
  EXPECT_EQ(train.n_samples(), 2u);
  // Deterministic for a fixed seed.
  const auto [train2, test2] = train_test_split(d, 0.5, 7);
  EXPECT_EQ(train.y, train2.y);
}

TEST(Dataset, TrainTestSplitBadFraction) {
  const auto d = small_dataset();
  EXPECT_THROW(train_test_split(d, 0.0, 1), InvalidArgument);
  EXPECT_THROW(train_test_split(d, 1.0, 1), InvalidArgument);
}

TEST(TimeSeries, BasicAccessors) {
  TimeSeries ts(Matrix{{1, 2}, {3, 4}, {5, 6}}, {"s0", "s1"});
  EXPECT_EQ(ts.length(), 3u);
  EXPECT_EQ(ts.n_variables(), 2u);
  EXPECT_DOUBLE_EQ(ts.at(2, 1), 6.0);
  EXPECT_EQ(ts.variable(0), (std::vector<double>{1, 3, 5}));
}

TEST(TimeSeries, NameCountValidated) {
  EXPECT_THROW(TimeSeries(Matrix{{1, 2}}, {"only_one"}), InvalidArgument);
}

TEST(TimeSeries, Slice) {
  TimeSeries ts(Matrix{{1, 2}, {3, 4}, {5, 6}, {7, 8}}, {"a", "b"});
  const auto s = ts.slice(1, 3);
  EXPECT_EQ(s.length(), 2u);
  EXPECT_DOUBLE_EQ(s.at(0, 0), 3.0);
  EXPECT_EQ(s.variable_names(), ts.variable_names());
  EXPECT_THROW(ts.slice(3, 5), InvalidArgument);
}

TEST(Fingerprint, SameContentSameHash) {
  const auto a = small_dataset();
  const auto b = small_dataset();
  EXPECT_EQ(fingerprint(a), fingerprint(b));
}

TEST(Fingerprint, ValueChangeChangesHash) {
  const auto a = small_dataset();
  auto b = small_dataset();
  b.X(0, 0) += 1e-9;
  EXPECT_NE(fingerprint(a), fingerprint(b));
}

TEST(Fingerprint, LabelChangeChangesHash) {
  const auto a = small_dataset();
  auto b = small_dataset();
  b.y[2] = 31;
  EXPECT_NE(fingerprint(a), fingerprint(b));
}

TEST(Fingerprint, ShapeMatters) {
  Matrix flat(1, 4, {1, 2, 3, 4});
  Matrix square(2, 2, {1, 2, 3, 4});
  EXPECT_NE(fingerprint(flat), fingerprint(square));
}

TEST(Fingerprint, HexIsStable) {
  const auto d = small_dataset();
  EXPECT_EQ(fingerprint_hex(d), fingerprint_hex(d));
  EXPECT_EQ(fingerprint_hex(d).size(), 16u);
}

}  // namespace
}  // namespace coda
