// Tests for the RecordStore surface (DESIGN.md §13): the hash ring, the
// sharded cluster's routing/replication/failover, RecordStore
// substitutability (repository, single-node service, sharded service, and
// a test fake all behind one interface), and the DarrClient behaviours
// that ride on it — claim tracking across lost responses and
// abandon_all()'s heal-and-release retry passes.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/darr/client.h"
#include "src/darr/record_store.h"
#include "src/darr/repository.h"
#include "src/darr/sharded.h"
#include "src/dist/retry.h"
#include "src/dist/sim_net.h"

namespace coda::darr {
namespace {

DarrRecord sample_record(const std::string& key) {
  DarrRecord r;
  r.key = key;
  r.mean_score = 0.25;
  r.stddev = 0.05;
  r.fold_scores = {0.2, 0.3};
  r.explanation = "standardscaler -> linearregression";
  r.producer = "client0";
  return r;
}

CachedResult sample_result() {
  CachedResult r;
  r.mean_score = 0.25;
  r.stddev = 0.05;
  r.fold_scores = {0.2, 0.3};
  r.explanation = "standardscaler -> linearregression";
  return r;
}

// ---------------------------------------------------------------------------
// HashRing

TEST(HashRing, OwnersAreDeterministicAndDistinct) {
  const HashRing a(5, 3, 32);
  const HashRing b(5, 3, 32);
  for (int i = 0; i < 200; ++i) {
    const std::string key = "fp|candidate" + std::to_string(i) + "|cv|rmse";
    const auto owners = a.owners(key);
    ASSERT_EQ(owners.size(), 3u);
    EXPECT_EQ(owners, b.owners(key)) << key;  // pure function of the key
    std::set<std::size_t> distinct(owners.begin(), owners.end());
    EXPECT_EQ(distinct.size(), owners.size()) << key;
    for (const std::size_t shard : owners) EXPECT_LT(shard, 5u);
  }
}

TEST(HashRing, ReplicationClampedToShardCount) {
  const HashRing ring(2, 5, 16);
  EXPECT_EQ(ring.replication(), 2u);
  EXPECT_EQ(ring.owners("k").size(), 2u);
}

TEST(HashRing, SpreadsKeysAcrossShards) {
  const HashRing ring(4, 1, 64);
  std::map<std::size_t, std::size_t> load;
  const std::size_t n_keys = 1000;
  for (std::size_t i = 0; i < n_keys; ++i) {
    load[ring.owners("key" + std::to_string(i)).front()]++;
  }
  // Every shard serves a non-trivial slice: no empty shard, none holding
  // more than half the keyspace (ideal is 250 each).
  ASSERT_EQ(load.size(), 4u);
  for (const auto& [shard, count] : load) {
    EXPECT_GT(count, n_keys / 10) << "shard" << shard;
    EXPECT_LT(count, n_keys / 2) << "shard" << shard;
  }
}

// ---------------------------------------------------------------------------
// RecordStore substitutability: the same protocol sequence behaves
// identically against every implementation.

// Minimal in-memory fake: what a unit test of evaluator cooperation would
// inject instead of a networked topology.
class FakeRecordStore final : public RecordStore {
 public:
  std::optional<DarrRecord> fetch(const std::string& key,
                                  Wire& wire) override {
    wire.bytes_sent += key_request_size(key);
    const auto it = records_.find(key);
    if (it == records_.end()) return std::nullopt;
    wire.bytes_received += it->second.wire_size();
    return it->second;
  }
  bool claim(const std::string& key, const std::string& client,
             Wire& wire) override {
    if (records_.count(key) || claims_.count(key)) return false;
    claims_[key] = client;
    wire.applied = true;
    return true;
  }
  void put(DarrRecord record, Wire& wire) override {
    wire.applied = true;
    claims_.erase(record.key);
    records_[record.key] = std::move(record);
  }
  void release(const std::string& key, const std::string& client,
               Wire& wire) override {
    wire.applied = true;
    const auto it = claims_.find(key);
    if (it != claims_.end() && it->second == client) claims_.erase(it);
  }
  std::size_t n_records() const override { return records_.size(); }

 private:
  std::map<std::string, DarrRecord> records_;
  std::map<std::string, std::string> claims_;
};

void exercise_protocol(RecordStore& store) {
  Wire wire;
  EXPECT_FALSE(store.fetch("k", wire).has_value());
  EXPECT_TRUE(store.claim("k", "client0", wire));
  EXPECT_FALSE(store.claim("k", "client1", wire));  // live claim defends
  store.put(sample_record("k"), wire);
  const auto hit = store.fetch("k", wire);
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(hit->mean_score, 0.25);
  EXPECT_FALSE(store.claim("k", "client1", wire));  // record defends
  EXPECT_EQ(store.n_records(), 1u);
  // fetch_many default: one slot per key, order preserved.
  const auto many = store.fetch_many({"k", "missing"}, wire);
  ASSERT_EQ(many.size(), 2u);
  EXPECT_TRUE(many[0].has_value());
  EXPECT_FALSE(many[1].has_value());
  // release without a held claim is a no-op; with one, it frees the key.
  EXPECT_TRUE(store.claim("k2", "client0", wire));
  store.release("k2", "client0", wire);
  EXPECT_TRUE(store.claim("k2", "client1", wire));
}

TEST(RecordStore, RepositoryImplementsTheContract) {
  DarrRepository repo;
  exercise_protocol(repo);
}

TEST(RecordStore, FakeImplementsTheContract) {
  FakeRecordStore fake;
  exercise_protocol(fake);
}

TEST(RecordStore, SingleNodeServiceImplementsTheContract) {
  DarrRepository repo;
  dist::SimNet net;
  const auto repo_node = net.add_node("darr");
  const auto self = net.add_node("client");
  SingleNodeDarrService service(&repo, &net, self, repo_node, RetryPolicy{});
  exercise_protocol(service);
}

TEST(RecordStore, ShardedServiceImplementsTheContract) {
  dist::SimNet net;
  DarrCluster::Config config;
  config.n_shards = 4;
  config.replication = 2;
  DarrCluster cluster(&net, config);
  const auto self = net.add_node("client");
  ShardedDarrService service(&cluster, self, RetryPolicy{});
  exercise_protocol(service);
}

TEST(RecordStore, DarrClientWorksOverAnyStore) {
  FakeRecordStore fake;
  DarrClient client(&fake, "client0");
  EXPECT_FALSE(client.fetch("k").has_value());
  EXPECT_TRUE(client.claim("k"));
  client.put("k", sample_result());
  ASSERT_TRUE(client.fetch("k").has_value());
  EXPECT_TRUE(client.held_claims().empty());
  const auto stats = client.stats();
  EXPECT_EQ(stats.lookups, 2u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.claims_won, 1u);
  EXPECT_EQ(stats.stores, 1u);
}

// ---------------------------------------------------------------------------
// Sharded routing and replication

TEST(ShardedDarr, ReplicatesRecordsAndLeasesToEveryOwner) {
  dist::SimNet net;
  DarrCluster::Config config;
  config.n_shards = 4;
  config.replication = 2;
  DarrCluster cluster(&net, config);
  const auto self = net.add_node("client");
  ShardedDarrService service(&cluster, self, RetryPolicy{});

  Wire wire;
  ASSERT_TRUE(service.claim("k", "client0", wire));
  const auto owners = cluster.owners("k");
  ASSERT_EQ(owners.size(), 2u);
  // The lease lives on both owners (claim replication): a second client
  // is denied regardless of which owner serves it.
  for (const std::size_t shard : owners) {
    EXPECT_FALSE(cluster.shard(shard).try_claim("k", "client1"))
        << "shard" << shard;
  }
  service.put(sample_record("k"), wire);
  for (const std::size_t shard : owners) {
    EXPECT_TRUE(cluster.shard(shard).lookup("k").has_value())
        << "shard" << shard;
  }
  // Non-owners never see the key.
  for (std::size_t shard = 0; shard < cluster.n_shards(); ++shard) {
    if (std::find(owners.begin(), owners.end(), shard) == owners.end()) {
      EXPECT_FALSE(cluster.shard(shard).lookup("k").has_value())
          << "shard" << shard;
    }
  }
  EXPECT_EQ(cluster.size(), 1u);  // replicas counted once
  const auto sync = cluster.sync_stats();
  EXPECT_EQ(sync.failed_syncs, 0u);
  EXPECT_EQ(sync.replica_syncs, 2u);  // one lease sync + one record sync
  EXPECT_GT(sync.bytes_shipped, 0u);
}

TEST(ShardedDarr, GroupedSweepCostsOneRoundTripPerShard) {
  dist::SimNet net;
  DarrCluster::Config config;
  config.n_shards = 4;
  config.replication = 1;
  DarrCluster cluster(&net, config);
  const auto self = net.add_node("client");
  ShardedDarrService service(&cluster, self, RetryPolicy{});

  std::vector<std::string> keys;
  std::set<std::size_t> serving;
  for (int i = 0; i < 32; ++i) {
    keys.push_back("key" + std::to_string(i));
    serving.insert(cluster.owners(keys.back()).front());
  }
  Wire wire;
  const auto out = service.fetch_many(keys, wire);
  EXPECT_EQ(out.size(), keys.size());
  // One request+response message pair per shard that serves keys — not
  // one per key.
  std::size_t messages = 0;
  for (std::size_t s = 0; s < cluster.n_shards(); ++s) {
    messages += net.link(self, cluster.node(s)).messages;
    messages += net.link(cluster.node(s), self).messages;
  }
  EXPECT_EQ(messages, 2 * serving.size());
}

TEST(ShardedDarr, CrashedPrimaryFailsOverToReplica) {
  dist::SimNet net;
  DarrCluster::Config config;
  config.n_shards = 4;
  config.replication = 2;
  DarrCluster cluster(&net, config);
  const auto self = net.add_node("client");
  ShardedDarrService service(&cluster, self, RetryPolicy{});

  const auto owners = cluster.owners("k");
  net.crash_node(cluster.node(owners[0]), net.now(), 1e9);

  Wire wire;
  ASSERT_TRUE(service.claim("k", "client0", wire));
  // Served by the surviving replica, which now defends the lease; the
  // sync back to the crashed primary is counted as failed, not hung.
  EXPECT_FALSE(cluster.shard(owners[1]).try_claim("k", "probe"));
  Wire peer_wire;
  EXPECT_FALSE(service.claim("k", "peer", peer_wire));
  service.put(sample_record("k"), wire);
  EXPECT_TRUE(cluster.shard(owners[1]).lookup("k").has_value());
  EXPECT_FALSE(cluster.shard(owners[0]).lookup("k").has_value());
  EXPECT_TRUE(service.fetch("k", wire).has_value());
  EXPECT_GE(cluster.sync_stats().failed_syncs, 2u);  // lease + record
}

TEST(ShardedDarr, AllOwnersDownThrowsNetworkError) {
  dist::SimNet net;
  DarrCluster::Config config;
  config.n_shards = 2;
  config.replication = 2;
  DarrCluster cluster(&net, config);
  const auto self = net.add_node("client");
  RetryPolicy tiny;
  tiny.max_attempts = 1;
  ShardedDarrService service(&cluster, self, tiny);

  net.crash_node(cluster.node(0), net.now(), 1e9);
  net.crash_node(cluster.node(1), net.now(), 1e9);
  Wire wire;
  EXPECT_THROW(service.claim("k", "client0", wire), NetworkError);
  EXPECT_THROW((void)service.fetch("k", wire), NetworkError);
  EXPECT_THROW(service.fetch_many({"a", "b"}, wire), NetworkError);
}

// ---------------------------------------------------------------------------
// abandon_all: release retried once the partition heals

TEST(DarrClient, AbandonAllReleasesClaimsOnceThePartitionHeals) {
  DarrRepository repo;
  dist::SimNet net;
  const auto repo_node = net.add_node("darr");
  const auto self = net.add_node("client");
  RetryPolicy retry;
  retry.max_attempts = 4;
  retry.initial_backoff_seconds = 0.2;
  retry.multiplier = 2.0;
  retry.max_backoff_seconds = 1.0;
  retry.jitter_fraction = 0.0;
  retry.deadline_seconds = 8.0;
  DarrClient client(&repo, &net, self, repo_node, "client0", retry);

  ASSERT_TRUE(client.claim("k1"));
  ASSERT_TRUE(client.claim("k2"));

  // Partition the repository for a window longer than one release's inner
  // backoff budget (0.2 + 0.4 + 0.8 = 1.4 simulated seconds) but short
  // enough that the accumulated backoff of the failing releases walks the
  // logical clock past its end — the fix under test: abandon_all()'s
  // outer passes re-try keys whose release exhausted its budget, and the
  // partition has healed by the time they run.
  net.partition(self, repo_node, net.now(), 2.5);
  net.partition(repo_node, self, net.now(), 2.5);

  client.abandon_all();

  EXPECT_TRUE(client.held_claims().empty());
  // Both keys are free again: a peer can claim them immediately instead
  // of waiting out the TTL.
  EXPECT_TRUE(repo.try_claim("k1", "peer"));
  EXPECT_TRUE(repo.try_claim("k2", "peer"));
}

TEST(DarrClient, AbandonAllKeepsUnreachableClaimsTracked) {
  DarrRepository repo;
  dist::SimNet net;
  const auto repo_node = net.add_node("darr");
  const auto self = net.add_node("client");
  RetryPolicy tiny;
  tiny.max_attempts = 2;
  tiny.initial_backoff_seconds = 0.01;
  tiny.deadline_seconds = 1.0;
  DarrClient client(&repo, &net, self, repo_node, "client0", tiny);

  ASSERT_TRUE(client.claim("k"));
  net.partition(self, repo_node, net.now(), 1e9);  // never heals
  client.abandon_all();
  // Still tracked for a later call; the repository-side lease will
  // expire via TTL for peers either way.
  EXPECT_EQ(client.held_claims(), std::vector<std::string>{"k"});
}

}  // namespace
}  // namespace coda::darr
