// Fleet-scale cooperative searches (ctest label `fleet`): hundreds to a
// thousand clients sharing one sharded, replicated DARR tier through the
// RecordStore surface. These runs assert the headline scaling invariants:
// zero redundant evaluations at thousand-client scale, redundancy-avoided
// growing linearly with fleet size, replicated stores landing on every
// owner, and the sharded tier electing the same best pipeline as the
// single-repository topology.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/darr/cooperative.h"
#include "src/data/synthetic.h"
#include "src/ml/decision_tree.h"
#include "src/ml/knn.h"
#include "src/ml/linear.h"
#include "src/ml/scalers.h"
#include "src/obs/obs.h"

namespace coda {
namespace {

Dataset tabular_dataset() {
  RegressionConfig cfg;
  cfg.n_samples = 120;
  cfg.n_features = 5;
  cfg.n_informative = 4;
  return make_regression(cfg);
}

TEGraph tabular_graph() {
  TEGraph g;
  std::vector<std::unique_ptr<Transformer>> scalers;
  scalers.push_back(std::make_unique<StandardScaler>());
  scalers.push_back(std::make_unique<RobustScaler>());
  scalers.push_back(std::make_unique<NoOp>());
  g.add_feature_scalers(std::move(scalers));
  std::vector<std::unique_ptr<Estimator>> models;
  models.push_back(std::make_unique<LinearRegression>());
  models.push_back(std::make_unique<DecisionTreeRegressor>());
  models.push_back(std::make_unique<KnnRegressor>());
  g.add_regression_models(std::move(models));
  return g;  // 9 candidates
}

class FleetTest : public ::testing::Test {
 protected:
  void SetUp() override { obs::reset_all(); }
};

TEST_F(FleetTest, ThousandClientFleetCooperatesWithZeroRedundancy) {
  const Dataset data = tabular_dataset();
  const TEGraph graph = tabular_graph();

  darr::FleetOptions options;
  options.n_clients = 1024;
  options.n_shards = 4;
  options.replication = 2;
  options.max_parallel_clients = 16;  // bounded waves, not 1024 threads
  options.telemetry = false;
  const auto report =
      darr::run_cooperative_search(graph, data, KFold(3), Metric::kRmse,
                                   options);

  ASSERT_EQ(report.clients.size(), 1024u);
  EXPECT_EQ(report.total_candidates, 9u);
  // The whole fleet computed each candidate exactly once...
  EXPECT_EQ(report.total_local_evaluations, 9u);
  EXPECT_EQ(report.redundant_evaluations, 0u);
  // ...and everyone else read it from the DARR: (1024 clients x 9
  // candidates) - 9 computations.
  EXPECT_EQ(report.redundancy_avoided, 1024u * 9u - 9u);
  for (const auto& client : report.clients) {
    EXPECT_EQ(client.evaluated_locally + client.served_from_cache, 9u)
        << client.name;
    EXPECT_EQ(client.report.best().spec, report.clients[0].report.best().spec)
        << client.name;
  }
  // Replication factor 2, fault-free fabric: every record landed on both
  // of its owners, and no replica sync was lost.
  EXPECT_EQ(report.n_shards, 4u);
  EXPECT_EQ(report.replication, 2u);
  EXPECT_EQ(report.repository_counters.stores, 9u * 2u);
  EXPECT_EQ(report.sync_stats.failed_syncs, 0u);
  EXPECT_GT(report.sync_stats.bytes_shipped, 0u);
  EXPECT_GT(report.bytes_on_wire, 0u);
}

TEST_F(FleetTest, ShardedFleetElectsSameBestAsSingleRepository) {
  const Dataset data = tabular_dataset();
  const TEGraph graph = tabular_graph();

  darr::FleetOptions single;
  single.n_clients = 4;
  single.telemetry = false;
  const auto baseline = darr::run_cooperative_search(
      graph, data, KFold(3), Metric::kRmse, single);

  obs::reset_all();
  darr::FleetOptions sharded;
  sharded.n_clients = 8;
  sharded.n_shards = 4;
  sharded.replication = 2;
  sharded.telemetry = false;
  const auto fleet = darr::run_cooperative_search(
      graph, data, KFold(3), Metric::kRmse, sharded);

  ASSERT_FALSE(baseline.clients.empty());
  ASSERT_FALSE(fleet.clients.empty());
  const auto& expected = baseline.clients[0].report.best();
  for (const auto& client : fleet.clients) {
    EXPECT_EQ(client.report.best().spec, expected.spec) << client.name;
    EXPECT_DOUBLE_EQ(client.report.best().mean_score, expected.mean_score)
        << client.name;
  }
  EXPECT_EQ(fleet.redundant_evaluations, 0u);
}

TEST_F(FleetTest, SerialFleetIsByteDeterministic) {
  const Dataset data = tabular_dataset();
  const TEGraph graph = tabular_graph();

  darr::FleetOptions options;
  options.n_clients = 64;
  options.n_shards = 4;
  options.replication = 2;
  options.max_parallel_clients = 1;  // serial: the exact-bench-entry mode
  options.telemetry = false;

  const auto first = darr::run_cooperative_search(graph, data, KFold(3),
                                                  Metric::kRmse, options);
  obs::reset_all();
  const auto second = darr::run_cooperative_search(graph, data, KFold(3),
                                                   Metric::kRmse, options);

  EXPECT_EQ(first.bytes_on_wire, second.bytes_on_wire);
  EXPECT_EQ(first.redundancy_avoided, second.redundancy_avoided);
  EXPECT_EQ(first.sync_stats.bytes_shipped, second.sync_stats.bytes_shipped);
  EXPECT_EQ(first.redundancy_avoided, 64u * 9u - 9u);
}

TEST_F(FleetTest, FleetTelemetryAggregatesAcrossShardsAndClients) {
  const Dataset data = tabular_dataset();
  const TEGraph graph = tabular_graph();

  darr::FleetOptions options;
  options.n_clients = 8;
  options.n_shards = 4;
  options.replication = 2;
  const auto report = darr::run_cooperative_search(graph, data, KFold(3),
                                                   Metric::kRmse, options);

  ASSERT_NE(report.telemetry, nullptr);
  // Fault-free fabric: the fleet-wide aggregate the collector assembled
  // from per-node reports reproduces the process-wide registry exactly.
  EXPECT_EQ(report.telemetry_divergence, "")
      << report.telemetry_divergence;
}

}  // namespace
}  // namespace coda
