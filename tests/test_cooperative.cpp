// Tests for cooperative multi-client graph search (Fig 2): complete results
// everywhere, near-zero redundant work, identical scores to a solo run.
#include <gtest/gtest.h>

#include "src/darr/cooperative.h"
#include "src/data/synthetic.h"
#include "src/ml/decision_tree.h"
#include "src/ml/random_forest.h"
#include "src/ml/knn.h"
#include "src/ml/linear.h"
#include "src/ml/scalers.h"

namespace coda::darr {
namespace {

Dataset dataset() {
  RegressionConfig cfg;
  cfg.n_samples = 150;
  cfg.n_features = 5;
  cfg.n_informative = 4;
  return make_regression(cfg);
}

TEGraph graph() {
  TEGraph g;
  std::vector<std::unique_ptr<Transformer>> scalers;
  scalers.push_back(std::make_unique<StandardScaler>());
  scalers.push_back(std::make_unique<RobustScaler>());
  scalers.push_back(std::make_unique<NoOp>());
  g.add_feature_scalers(std::move(scalers));
  std::vector<std::unique_ptr<Estimator>> models;
  models.push_back(std::make_unique<LinearRegression>());
  models.push_back(std::make_unique<DecisionTreeRegressor>());
  models.push_back(std::make_unique<KnnRegressor>());
  g.add_regression_models(std::move(models));
  return g;  // 9 candidates
}

TEST(Cooperative, AllClientsSeeCompleteResults) {
  const auto d = dataset();
  const auto g = graph();
  const auto report =
      run_cooperative_search(g, d, KFold(4), Metric::kRmse, 3);
  EXPECT_EQ(report.total_candidates, 9u);
  ASSERT_EQ(report.clients.size(), 3u);
  for (const auto& client : report.clients) {
    EXPECT_EQ(client.report.results.size(), 9u);
    for (const auto& r : client.report.results) {
      EXPECT_FALSE(r.failed);
    }
    EXPECT_EQ(client.evaluated_locally + client.served_from_cache, 9u);
  }
}

TEST(Cooperative, NoRedundantEvaluations) {
  const auto d = dataset();
  const auto g = graph();
  const auto report =
      run_cooperative_search(g, d, KFold(4), Metric::kRmse, 4);
  // Claims partition the space: total local work == candidate count.
  EXPECT_EQ(report.total_local_evaluations, report.total_candidates);
  EXPECT_EQ(report.redundant_evaluations, 0u);
  // Cooperation denied at least some claims (clients overlapped in time or
  // found stored results).
  const auto& counters = report.repository_counters;
  EXPECT_EQ(counters.stores, report.total_candidates);
}

TEST(Cooperative, AgreesWithSoloRunOnBestPipeline) {
  const auto d = dataset();
  const auto g = graph();
  const auto solo = run_cooperative_search(g, d, KFold(4), Metric::kRmse, 1);
  const auto crowd = run_cooperative_search(g, d, KFold(4), Metric::kRmse, 4);
  EXPECT_EQ(solo.clients[0].report.best().spec,
            crowd.clients[0].report.best().spec);
  EXPECT_DOUBLE_EQ(solo.clients[0].report.best().mean_score,
                   crowd.clients[0].report.best().mean_score);
  // Every client agrees on the winner.
  for (const auto& client : crowd.clients) {
    EXPECT_EQ(client.report.best().spec, solo.clients[0].report.best().spec);
  }
}

TEST(Cooperative, WorkIsActuallyDistributed) {
  // Evaluations must take long enough that thread-start skew cannot let one
  // client race through the entire graph alone, so use a heavier model.
  RegressionConfig data_cfg;
  data_cfg.n_samples = 400;
  data_cfg.n_features = 8;
  const auto d = make_regression(data_cfg);

  TEGraph g;
  std::vector<std::unique_ptr<Transformer>> scalers;
  scalers.push_back(std::make_unique<StandardScaler>());
  scalers.push_back(std::make_unique<RobustScaler>());
  scalers.push_back(std::make_unique<MinMaxScaler>());
  scalers.push_back(std::make_unique<NoOp>());
  g.add_feature_scalers(std::move(scalers));
  std::vector<std::unique_ptr<Estimator>> models;
  models.push_back(std::make_unique<RandomForestRegressor>());
  models.push_back(std::make_unique<DecisionTreeRegressor>());
  models.push_back(std::make_unique<KnnRegressor>());
  g.add_regression_models(std::move(models));  // 12 candidates

  const auto report =
      run_cooperative_search(g, d, KFold(4), Metric::kRmse, 3);
  std::size_t max_local = 0;
  for (const auto& client : report.clients) {
    max_local = std::max(max_local, client.evaluated_locally);
  }
  EXPECT_LT(max_local, 12u);
  EXPECT_EQ(report.redundant_evaluations, 0u);
}

TEST(Cooperative, SingleClientDegeneratesToPlainSearch) {
  const auto d = dataset();
  const auto g = graph();
  const auto report =
      run_cooperative_search(g, d, KFold(3), Metric::kRmse, 1);
  EXPECT_EQ(report.clients[0].evaluated_locally, 9u);
  EXPECT_EQ(report.clients[0].served_from_cache, 0u);
  EXPECT_EQ(report.redundant_evaluations, 0u);
}

TEST(Cooperative, RejectsZeroClients) {
  const auto d = dataset();
  const auto g = graph();
  EXPECT_THROW(run_cooperative_search(g, d, KFold(3), Metric::kRmse, 0),
               InvalidArgument);
}

}  // namespace
}  // namespace coda::darr
