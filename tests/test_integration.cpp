// Cross-module integration tests: dirty-data pipelines end-to-end, DARR
// concurrency stress, cooperative result sharing with prefix discovery,
// and cache reuse across separate evaluator instances.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/core/evaluator.h"
#include "src/darr/client.h"
#include "src/data/fingerprint.h"
#include "src/data/synthetic.h"
#include "src/ml/imputers.h"
#include "src/ml/linear.h"
#include "src/ml/outliers.h"
#include "src/ml/random_forest.h"
#include "src/ml/scalers.h"
#include "src/util/hash.h"

namespace coda {
namespace {

TEST(Integration, DirtyDataPipelineEndToEnd) {
  // The Section II story: real data has missing cells and gross outliers;
  // a pipeline that cleans first must beat one that does not.
  RegressionConfig cfg;
  cfg.n_samples = 300;
  cfg.n_features = 8;
  cfg.n_informative = 5;
  cfg.nonlinear = false;
  cfg.noise_stddev = 0.3;
  auto dirty = make_regression(cfg);
  inject_missing(dirty, 0.05, 31);
  inject_outliers(dirty, 0.05, 50.0, 32);

  Pipeline cleaning;
  cleaning.add_transformer(std::make_unique<SimpleImputer>());
  cleaning.add_transformer(std::make_unique<ZScoreClipper>());
  cleaning.add_transformer(std::make_unique<StandardScaler>());
  cleaning.set_estimator(std::make_unique<LinearRegression>());
  const auto cleaned_score =
      cross_validate(cleaning, dirty, KFold(5), Metric::kRmse).mean_score;

  Pipeline naive;
  naive.add_transformer(std::make_unique<SimpleImputer>());  // must impute
  naive.set_estimator(std::make_unique<LinearRegression>());
  const auto naive_score =
      cross_validate(naive, dirty, KFold(5), Metric::kRmse).mean_score;

  EXPECT_LT(cleaned_score, naive_score);
}

TEST(Integration, DarrRepositoryConcurrencyStress) {
  // 8 threads hammer one repository over a shared key space; every key
  // must end up stored exactly once per producer win, with counters
  // internally consistent and no crashes/torn records.
  darr::DarrRepository repo;
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kKeys = 200;
  std::atomic<std::size_t> computed{0};

  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&repo, &computed, t] {
      const std::string me = "client" + std::to_string(t);
      for (std::size_t k = 0; k < kKeys; ++k) {
        const std::string key = "key" + std::to_string(k);
        if (repo.lookup(key)) continue;
        if (!repo.try_claim(key, me)) continue;
        darr::DarrRecord record;
        record.key = key;
        record.mean_score = static_cast<double>(k);
        record.producer = me;
        record.explanation = "spec" + std::to_string(k);
        repo.store(std::move(record));
        ++computed;
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(repo.size(), kKeys);
  // Claims made storing exclusive: stores == keys and each key's record is
  // intact.
  EXPECT_EQ(repo.counters().stores, computed.load());
  EXPECT_EQ(computed.load(), kKeys);
  for (std::size_t k = 0; k < kKeys; ++k) {
    const auto record = repo.lookup("key" + std::to_string(k));
    ASSERT_TRUE(record.has_value());
    EXPECT_DOUBLE_EQ(record->mean_score, static_cast<double>(k));
    EXPECT_EQ(record->explanation, "spec" + std::to_string(k));
  }
}

TEST(Integration, DarrPrefixDiscoveryAcrossClients) {
  // "Users can determine from the DARR which calculations have been run
  // for a certain data set": records are keyed by the dataset fingerprint
  // prefix, so a second client can list everything computed for its data.
  RegressionConfig cfg;
  cfg.n_samples = 120;
  cfg.n_features = 4;
  cfg.n_informative = 4;
  const auto data = make_regression(cfg);

  darr::DarrRepository repo;
  dist::SimNet net;
  const auto repo_node = net.add_node("darr");
  const auto alice_node = net.add_node("alice");
  const auto bob_node = net.add_node("bob");
  darr::DarrClient alice(&repo, &net, alice_node, repo_node, "alice");
  darr::DarrClient bob(&repo, &net, bob_node, repo_node, "bob");

  TEGraph g;
  std::vector<std::unique_ptr<Estimator>> models;
  models.push_back(std::make_unique<LinearRegression>());
  models.push_back(std::make_unique<RandomForestRegressor>());
  g.add_regression_models(std::move(models));

  EvalOptions config;
  config.cache = &alice;
  GraphEvaluator evaluator(config);
  evaluator.evaluate(g, data, KFold(3));

  // Bob discovers what has been computed for this exact dataset.
  const std::string prefix = hash_to_hex(fingerprint(data)) + "|";
  const auto keys = repo.keys_with_prefix(prefix);
  EXPECT_EQ(keys.size(), 2u);
  for (const auto& key : keys) {
    const auto record = repo.lookup(key);
    ASSERT_TRUE(record.has_value());
    EXPECT_EQ(record->producer, "alice");
    EXPECT_FALSE(record->explanation.empty());  // how it was achieved
    // Bob reads the shared result directly.
    EXPECT_TRUE(bob.fetch(key).has_value());
  }
  // A different dataset shares nothing.
  auto other = data;
  other.X(0, 0) += 1.0;
  EXPECT_TRUE(
      repo.keys_with_prefix(hash_to_hex(fingerprint(other)) + "|").empty());
}

TEST(Integration, CacheReuseAcrossEvaluatorInstances) {
  RegressionConfig cfg;
  cfg.n_samples = 100;
  cfg.n_features = 4;
  cfg.n_informative = 4;
  const auto data = make_regression(cfg);
  TEGraph g;
  std::vector<std::unique_ptr<Transformer>> scalers;
  scalers.push_back(std::make_unique<StandardScaler>());
  scalers.push_back(std::make_unique<NoOp>());
  g.add_feature_scalers(std::move(scalers));
  std::vector<std::unique_ptr<Estimator>> models;
  models.push_back(std::make_unique<LinearRegression>());
  g.add_regression_models(std::move(models));

  LocalResultCache cache;
  EvalOptions config;
  config.cache = &cache;
  const auto first = GraphEvaluator(config).evaluate(g, data, KFold(4));
  // A different evaluator instance (e.g. a later session) reuses the
  // shared results wholesale.
  const auto second = GraphEvaluator(config).evaluate(g, data, KFold(4));
  EXPECT_EQ(second.evaluated_locally, 0u);
  EXPECT_EQ(second.served_from_cache, first.results.size());
  // But a different metric is a different calculation: recomputed.
  EvalOptions mae_config = config;
  mae_config.metric = Metric::kMae;
  const auto third = GraphEvaluator(mae_config).evaluate(g, data, KFold(4));
  EXPECT_EQ(third.evaluated_locally, first.results.size());
}

}  // namespace
}  // namespace coda
