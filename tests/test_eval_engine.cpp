// Tests for the unified evaluation engine: prefix-cache LRU/byte-budget
// semantics, memoization transparency (identical scores with the cache on
// or off), non-blocking claim continuations on the timer wheel, batched
// cache sweeps, and the TimerWheel itself.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "src/core/eval_engine.h"
#include "src/core/evaluator.h"
#include "src/core/plan_compiler.h"
#include "src/darr/client.h"
#include "src/darr/repository.h"
#include "src/data/synthetic.h"
#include "src/ml/linear.h"
#include "src/ml/pca.h"
#include "src/ml/scalers.h"
#include "src/obs/obs.h"
#include "src/ts/forecast_graph.h"
#include "src/ts/forecasters.h"
#include "src/util/timer_wheel.h"

namespace coda {
namespace {

// ---------------------------------------------------------------------------
// PrefixCache

std::shared_ptr<const void> boxed_int(int v) {
  return std::make_shared<int>(v);
}

TEST(PrefixCache, LruEvictionUnderByteBudget) {
  PrefixCache cache(100);
  cache.insert("a", boxed_int(1), 40);
  cache.insert("b", boxed_int(2), 40);
  EXPECT_EQ(cache.entries(), 2u);
  // Touch "a" so "b" is the LRU entry.
  EXPECT_NE(cache.lookup("a"), nullptr);
  cache.insert("c", boxed_int(3), 40);  // needs room: evicts "b"
  EXPECT_EQ(cache.lookup("b"), nullptr);
  EXPECT_NE(cache.lookup("a"), nullptr);
  EXPECT_NE(cache.lookup("c"), nullptr);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_LE(cache.bytes(), cache.budget());
}

TEST(PrefixCache, OversizedEntryIsDroppedNotCached) {
  PrefixCache cache(64);
  cache.insert("big", boxed_int(1), 65);
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.lookup("big"), nullptr);
  // The rest of the cache is untouched by the oversized insert.
  cache.insert("small", boxed_int(2), 10);
  EXPECT_NE(cache.lookup("small"), nullptr);
  EXPECT_LE(cache.bytes(), cache.budget());
}

TEST(PrefixCache, ZeroBudgetDisables) {
  PrefixCache cache(0);
  EXPECT_FALSE(cache.enabled());
  cache.insert("k", boxed_int(1), 1);
  EXPECT_EQ(cache.lookup("k"), nullptr);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);  // disabled caches do not count misses
}

TEST(PrefixCache, CountsHitsAndMisses) {
  PrefixCache cache(1024);
  EXPECT_EQ(cache.lookup("k"), nullptr);
  cache.insert("k", boxed_int(7), 8);
  auto hit = cache.get<int>("k");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, 7);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
}

// ---------------------------------------------------------------------------
// TimerWheel

TEST(TimerWheel, FiresInDeadlineOrder) {
  TimerWheel wheel;
  std::mutex m;
  std::vector<int> order;
  std::condition_variable cv;
  auto push = [&](int v) {
    std::lock_guard<std::mutex> lock(m);
    order.push_back(v);
    cv.notify_all();
  };
  wheel.schedule(std::chrono::milliseconds(30), [&] { push(3); });
  wheel.schedule(std::chrono::milliseconds(10), [&] { push(1); });
  wheel.schedule(std::chrono::milliseconds(20), [&] { push(2); });
  std::unique_lock<std::mutex> lock(m);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5),
                          [&] { return order.size() == 3u; }));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(wheel.pending(), 0u);
}

// ---------------------------------------------------------------------------
// Engine-level behaviour via custom candidates

EvalEngine::Candidate counting_candidate(const std::string& spec,
                                         const std::string& prefix_key,
                                         std::atomic<int>& prefix_computes) {
  EvalEngine::Candidate c;
  c.spec = spec;
  c.score_fold = [prefix_key, &prefix_computes](std::size_t fold,
                                                PrefixCache& prefixes) {
    const std::string key = "f" + std::to_string(fold) + "|" + prefix_key;
    auto shared = prefixes.get<int>(key);
    if (shared == nullptr) {
      prefix_computes.fetch_add(1);
      auto computed = std::make_shared<int>(static_cast<int>(fold));
      prefixes.insert(key, computed, 64);
      shared = computed;
    }
    return static_cast<double>(*shared);
  };
  return c;
}

TEST(EvalEngine, SharedPrefixComputedOncePerFold) {
  std::atomic<int> prefix_computes{0};
  std::vector<EvalEngine::Candidate> candidates;
  candidates.push_back(counting_candidate("a", "shared", prefix_computes));
  candidates.push_back(counting_candidate("b", "shared", prefix_computes));
  candidates.push_back(counting_candidate("c", "shared", prefix_computes));
  EvalOptions options;
  options.threads = 1;  // deterministic interleaving
  EvalEngine engine(options);
  const auto report = engine.run(std::move(candidates), 4);
  EXPECT_EQ(report.evaluated_locally, 3u);
  // One compute per fold, shared by all three candidates.
  EXPECT_EQ(prefix_computes.load(), 4);
}

TEST(EvalEngine, DisabledPrefixCacheRecomputesEverywhere) {
  std::atomic<int> prefix_computes{0};
  std::vector<EvalEngine::Candidate> candidates;
  candidates.push_back(counting_candidate("a", "shared", prefix_computes));
  candidates.push_back(counting_candidate("b", "shared", prefix_computes));
  EvalOptions options;
  options.threads = 1;
  options.prefix_cache_bytes = 0;
  EvalEngine engine(options);
  engine.run(std::move(candidates), 3);
  EXPECT_EQ(prefix_computes.load(), 6);  // 2 candidates x 3 folds
}

TEST(EvalEngine, FailingCandidateDoesNotPoisonPrefixes) {
  // The failing candidate throws BEFORE inserting its prefix entry (the
  // engine contract: insert only after a fully successful fit). Siblings
  // sharing the key must compute it themselves and succeed.
  std::atomic<int> prefix_computes{0};
  std::vector<EvalEngine::Candidate> candidates;
  EvalEngine::Candidate bad;
  bad.spec = "bad";
  bad.score_fold = [](std::size_t, PrefixCache& prefixes) -> double {
    if (prefixes.get<int>("f0|shared") == nullptr) {
      throw InvalidArgument("mid-fit failure");
    }
    return 0.0;
  };
  candidates.push_back(std::move(bad));
  candidates.push_back(counting_candidate("good", "shared", prefix_computes));
  EvalOptions options;
  options.threads = 1;
  EvalEngine engine(options);
  const auto report = engine.run(std::move(candidates), 1);
  EXPECT_TRUE(report.results[0].failed);
  EXPECT_EQ(report.results[0].failure_message, "mid-fit failure");
  EXPECT_FALSE(report.results[1].failed);
  EXPECT_EQ(prefix_computes.load(), 1);
  EXPECT_EQ(report.best().spec, "good");
}

double plain_score(std::size_t fold) { return 1.0 + static_cast<double>(fold); }

EvalEngine::Candidate keyed_candidate(const std::string& spec,
                                      const std::string& key) {
  EvalEngine::Candidate c;
  c.spec = spec;
  c.key = key;
  c.score_fold = [](std::size_t fold, PrefixCache&) {
    return plain_score(fold);
  };
  return c;
}

TEST(EvalEngine, ClaimBlockedCandidateIsRequeuedThenServed) {
  // "peer" holds the claim for key K; it stores the result ~40ms in. The
  // engine must keep scoring the other candidates, requeue the blocked one
  // on the wheel, and serve it from the cache without computing locally.
  LocalResultCache cache;
  ASSERT_TRUE(cache.claim("K"));  // we act as the peer
  std::thread peer([&cache] {
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    CachedResult r;
    r.mean_score = 42.0;
    r.stddev = 0.0;
    r.fold_scores = {42.0, 42.0};
    cache.put("K", r);
  });
  const std::uint64_t requeues_before =
      obs::counter("eval.claim.requeued").value();
  EvalOptions options;
  options.threads = 2;
  options.cache = &cache;
  options.claim_poll_ms = 5;
  options.claim_wait_ms = 2000;
  EvalEngine engine(options);
  std::vector<EvalEngine::Candidate> candidates;
  candidates.push_back(keyed_candidate("blocked", "K"));
  candidates.push_back(keyed_candidate("free1", "F1"));
  candidates.push_back(keyed_candidate("free2", "F2"));
  const auto report = engine.run(std::move(candidates), 2);
  peer.join();
  EXPECT_TRUE(report.results[0].from_cache);
  EXPECT_DOUBLE_EQ(report.results[0].mean_score, 42.0);
  EXPECT_GT(report.results[0].claim_wait_seconds, 0.0);
  EXPECT_EQ(report.served_from_cache, 1u);
  EXPECT_EQ(report.evaluated_locally, 2u);
  EXPECT_GT(obs::counter("eval.claim.requeued").value(), requeues_before);
}

TEST(EvalEngine, ExpiredClaimDeadlineFallsBackToLocalCompute) {
  // The peer never stores and never releases: after claim_wait_ms with no
  // other work left, the engine computes locally so the search completes.
  LocalResultCache cache;
  ASSERT_TRUE(cache.claim("K"));
  EvalOptions options;
  options.threads = 1;
  options.cache = &cache;
  options.claim_poll_ms = 5;
  options.claim_wait_ms = 50;
  EvalEngine engine(options);
  std::vector<EvalEngine::Candidate> candidates;
  candidates.push_back(keyed_candidate("blocked", "K"));
  const auto report = engine.run(std::move(candidates), 2);
  EXPECT_FALSE(report.results[0].from_cache);
  EXPECT_FALSE(report.results[0].failed);
  EXPECT_DOUBLE_EQ(report.results[0].mean_score, 1.5);
  EXPECT_GE(report.results[0].claim_wait_seconds, 0.045);
}

// ---------------------------------------------------------------------------
// Memoization transparency: identical results with the cache on and off

TEGraph grid_graph() {
  TEGraph g;
  std::vector<std::unique_ptr<Transformer>> scalers;
  scalers.push_back(std::make_unique<StandardScaler>());
  scalers.push_back(std::make_unique<NoOp>());
  g.add_feature_scalers(std::move(scalers));
  std::vector<StageOption> selectors;
  ParamGrid pca_grid;
  pca_grid.add("n_components",
               {ParamValue{std::int64_t{2}}, ParamValue{std::int64_t{3}}});
  selectors.push_back(make_option(std::make_unique<PCA>(), pca_grid));
  g.add_stage("select", std::move(selectors));
  std::vector<std::unique_ptr<Estimator>> models;
  models.push_back(std::make_unique<LinearRegression>());
  g.add_regression_models(std::move(models));
  return g;
}

TEST(EvalEngine, TabularScoresBitIdenticalWithPrefixCacheOnOrOff) {
  RegressionConfig cfg;
  cfg.n_samples = 120;
  cfg.n_features = 4;
  cfg.n_informative = 3;
  const auto d = make_regression(cfg);
  const auto g = grid_graph();
  EvalOptions off;
  off.prefix_cache_bytes = 0;
  EvalOptions on;  // default 64 MiB budget
  const auto a = GraphEvaluator(off).evaluate(g, d, KFold(4));
  const auto b = GraphEvaluator(on).evaluate(g, d, KFold(4));
  ASSERT_EQ(a.results.size(), b.results.size());
  EXPECT_EQ(a.best_index, b.best_index);
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_EQ(a.results[i].spec, b.results[i].spec);
    ASSERT_EQ(a.results[i].fold_scores.size(), b.results[i].fold_scores.size());
    for (std::size_t f = 0; f < a.results[i].fold_scores.size(); ++f) {
      // Exact equality on purpose: memoized prefixes must reproduce the
      // uncached computation bit for bit.
      EXPECT_EQ(a.results[i].fold_scores[f], b.results[i].fold_scores[f]);
    }
    EXPECT_EQ(a.results[i].mean_score, b.results[i].mean_score);
  }
}

TEST(EvalEngine, ForecastScoresBitIdenticalWithPrefixCacheOnOrOff) {
  IndustrialSeriesConfig cfg;
  cfg.length = 260;
  cfg.n_variables = 2;
  const auto series = make_industrial_series(cfg);
  ts::ForecastSpec spec;
  spec.history = 12;
  ts::ForecastGraph g(spec);
  g.add_scaler(std::make_unique<StandardScaler>());
  g.add_scaler(std::make_unique<NoOp>());
  g.add_windower(std::make_unique<ts::CascadedWindows>(), "cascaded");
  g.add_windower(std::make_unique<ts::TsAsIs>(), "asis");
  g.add_model(std::make_unique<ts::ArModel>(), "cascaded");
  g.add_model(std::make_unique<ts::ZeroModel>(), "asis");
  const TimeSeriesSlidingSplit cv(2, 150, 40, 5);
  EvalOptions off;
  off.prefix_cache_bytes = 0;
  EvalOptions on;
  const auto a = ts::ForecastGraphEvaluator(off).evaluate(g, series, cv);
  const auto b = ts::ForecastGraphEvaluator(on).evaluate(g, series, cv);
  ASSERT_EQ(a.results.size(), b.results.size());
  EXPECT_EQ(a.best().spec, b.best().spec);
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    ASSERT_EQ(a.results[i].fold_scores.size(), b.results[i].fold_scores.size());
    for (std::size_t f = 0; f < a.results[i].fold_scores.size(); ++f) {
      EXPECT_EQ(a.results[i].fold_scores[f], b.results[i].fold_scores[f]);
    }
  }
}

TEST(EvalEngine, TinyBudgetStillProducesIdenticalScores) {
  RegressionConfig cfg;
  cfg.n_samples = 80;
  cfg.n_features = 4;
  cfg.n_informative = 3;
  const auto d = make_regression(cfg);
  const auto g = grid_graph();
  EvalOptions off;
  off.prefix_cache_bytes = 0;
  EvalOptions tiny;
  tiny.prefix_cache_bytes = 4096;  // forces constant eviction churn
  const auto a = GraphEvaluator(off).evaluate(g, d, KFold(3));
  const auto b = GraphEvaluator(tiny).evaluate(g, d, KFold(3));
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_EQ(a.results[i].mean_score, b.results[i].mean_score);
  }
}

// ---------------------------------------------------------------------------
// Compiled-plan memoization (DESIGN.md §14): plans live in the same
// PrefixCache as fitted prefixes, keyed by the chain's canonical specs.

TEST(PlanCache, CompiledPlanReusedAcrossFoldsAndSiblings) {
  IndustrialSeriesConfig cfg;
  cfg.length = 260;
  cfg.n_variables = 2;
  const auto series = make_industrial_series(cfg);
  ts::ForecastSpec spec;
  spec.history = 12;
  ts::ForecastGraph g(spec);
  g.add_scaler(std::make_unique<StandardScaler>());
  g.add_scaler(std::make_unique<NoOp>());
  g.add_windower(std::make_unique<ts::CascadedWindows>(), "cascaded");
  g.add_model(std::make_unique<ts::ArModel>(), "cascaded");
  g.add_model(std::make_unique<ts::ZeroModel>(), "cascaded");

  EvalOptions options;
  options.compile_plans = true;
  options.threads = 1;  // deterministic compile counts (no racing misses)
  const auto& compiled = obs::counter("eval.plan.compiled");
  const std::uint64_t compiled0 = compiled.value();
  const auto report = ts::ForecastGraphEvaluator(options).evaluate(
      g, series, TimeSeriesSlidingSplit(3, 140, 30, 5));
  ASSERT_EQ(report.results.size(), 4u);
  // 2 scalers x 1 windower = 2 unique prefixes: one compilation each, not
  // one per fold (3 folds) or per model (2 siblings).
  EXPECT_EQ(compiled.value() - compiled0, 2u);
}

TEST(PlanCache, ParamChangeCompilesADistinctPlan) {
  RegressionConfig cfg;
  cfg.n_samples = 90;
  cfg.n_features = 5;
  cfg.n_informative = 4;
  const auto d = make_regression(cfg);

  // The same PCA node with two n_components settings: the plan key embeds
  // the canonical spec (name + params), so each setting compiles its own
  // plan — a parameter change can never reuse a stale plan.
  TEGraph g;
  std::vector<StageOption> scalers;
  scalers.push_back(make_option(std::make_unique<MinMaxScaler>()));
  g.add_stage("scale", std::move(scalers));
  std::vector<StageOption> selectors;
  ParamGrid pca_grid;
  pca_grid.add("n_components",
               {ParamValue{std::int64_t{2}}, ParamValue{std::int64_t{3}}});
  selectors.push_back(make_option(std::make_unique<PCA>(), pca_grid));
  g.add_stage("select", std::move(selectors));
  std::vector<std::unique_ptr<Estimator>> models;
  models.push_back(std::make_unique<LinearRegression>());
  g.add_regression_models(std::move(models));

  EvalOptions options;
  options.compile_plans = true;
  options.threads = 1;
  const auto& compiled = obs::counter("eval.plan.compiled");
  const std::uint64_t compiled0 = compiled.value();
  const auto report = GraphEvaluator(options).evaluate(g, d, KFold(3));
  ASSERT_EQ(report.results.size(), 2u);
  EXPECT_EQ(compiled.value() - compiled0, 2u);
}

TEST(PlanCache, LruEvictionRecompilesWithoutChangingScores) {
  RegressionConfig cfg;
  cfg.n_samples = 80;
  cfg.n_features = 4;
  cfg.n_informative = 3;
  const auto d = make_regression(cfg);
  const auto g = grid_graph();

  EvalOptions interpreted;
  interpreted.compile_plans = false;
  EvalOptions tiny;
  tiny.compile_plans = true;
  tiny.prefix_cache_bytes = 2048;  // plans + prefixes churn constantly
  tiny.threads = 1;
  const auto& evicted = obs::counter("eval.prefix_cache.evicted");
  const std::uint64_t evicted0 = evicted.value();
  const auto a = GraphEvaluator(interpreted).evaluate(g, d, KFold(3));
  const auto b = GraphEvaluator(tiny).evaluate(g, d, KFold(3));
  EXPECT_GT(evicted.value(), evicted0);  // the budget really did evict
  ASSERT_EQ(a.results.size(), b.results.size());
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_EQ(a.results[i].spec, b.results[i].spec);
    for (std::size_t f = 0; f < a.results[i].fold_scores.size(); ++f) {
      EXPECT_EQ(a.results[i].fold_scores[f], b.results[i].fold_scores[f]);
    }
  }
  EXPECT_EQ(a.best().spec, b.best().spec);
}

TEST(PlanCache, PlanEntriesAccountBytesInPrefixCache) {
  Pipeline p;
  p.add_transformer(std::make_unique<StandardScaler>());
  p.set_estimator(std::make_unique<LinearRegression>());
  const auto plan = compile_tabular_plan(p);
  PrefixCache cache(1 << 20);
  cache.insert("plan|tab|standardscaler", plan, plan->bytes());
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.bytes(), plan->bytes());
  EXPECT_EQ(cache.get<CompiledTabularPlan>("plan|tab|standardscaler"), plan);
}

// ---------------------------------------------------------------------------
// Batched lookups

TEST(ResultCache, FetchManyDefaultLoopsOverFetch) {
  LocalResultCache cache;
  CachedResult r;
  r.mean_score = 5.0;
  cache.put("a", r);
  cache.put("c", r);
  const auto out = cache.fetch_many({"a", "b", "c"});
  ASSERT_EQ(out.size(), 3u);
  EXPECT_TRUE(out[0].has_value());
  EXPECT_FALSE(out[1].has_value());
  EXPECT_TRUE(out[2].has_value());
  EXPECT_DOUBLE_EQ(out[2]->mean_score, 5.0);
}

TEST(DarrClient, FetchManyUsesOneRoundTrip) {
  darr::DarrRepository repo;
  dist::SimNet net;
  const auto repo_node = net.add_node("darr");
  const auto client_node = net.add_node("c0");
  darr::DarrClient client(&repo, &net, client_node, repo_node, "c0");
  CachedResult r;
  r.mean_score = 2.0;
  r.fold_scores = {2.0};
  client.put("k1", r);
  const auto sent_before = net.link(client_node, repo_node).messages;
  const auto recv_before = net.link(repo_node, client_node).messages;
  const auto out = client.fetch_many({"k1", "k2", "k3"});
  ASSERT_EQ(out.size(), 3u);
  EXPECT_TRUE(out[0].has_value());
  EXPECT_FALSE(out[1].has_value());
  EXPECT_FALSE(out[2].has_value());
  // One message pair for the whole batch, not one per key.
  EXPECT_EQ(net.link(client_node, repo_node).messages, sent_before + 1);
  EXPECT_EQ(net.link(repo_node, client_node).messages, recv_before + 1);
  // Stats still count per key, like three singles would.
  EXPECT_EQ(client.stats().lookups, 3u);
  EXPECT_EQ(client.stats().hits, 1u);
}

// ---------------------------------------------------------------------------
// Metric families

TEST(EvalEngine, RegistersMetricFamiliesOnConstruction) {
  EvalEngine engine(EvalOptions{});
  const auto counters = obs::MetricsRegistry::instance().counter_values();
  auto has = [&counters](const std::string& name) {
    for (const auto& [n, v] : counters) {
      if (n == name) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("eval.prefix_cache.hit"));
  EXPECT_TRUE(has("eval.prefix_cache.miss"));
  EXPECT_TRUE(has("eval.prefix_cache.evicted"));
  EXPECT_TRUE(has("eval.claim.requeued"));
  EXPECT_TRUE(has("darr.lookup.hit"));
  EXPECT_TRUE(has("darr.lookup.miss"));
}

}  // namespace
}  // namespace coda
