// Tests for ParamMap, the node__param convention, and ParamGrid.
#include <gtest/gtest.h>

#include "src/core/param.h"

namespace coda {
namespace {

TEST(ParamMap, SetGetTyped) {
  ParamMap p;
  p.set("k", std::int64_t{5});
  p.set("alpha", 0.5);
  p.set("verbose", true);
  p.set("mode", std::string("fast"));
  EXPECT_EQ(p.get_int("k"), 5);
  EXPECT_DOUBLE_EQ(p.get_double("alpha"), 0.5);
  EXPECT_TRUE(p.get_bool("verbose"));
  EXPECT_EQ(p.get_string("mode"), "fast");
}

TEST(ParamMap, IntCoercesToDouble) {
  ParamMap p;
  p.set("x", std::int64_t{3});
  EXPECT_DOUBLE_EQ(p.get_double("x"), 3.0);
}

TEST(ParamMap, TypeMismatchThrows) {
  ParamMap p;
  p.set("x", 0.5);
  EXPECT_THROW(p.get_int("x"), InvalidArgument);
  EXPECT_THROW(p.get_bool("x"), InvalidArgument);
  EXPECT_THROW(p.get_string("x"), InvalidArgument);
}

TEST(ParamMap, MissingKeyThrows) {
  ParamMap p;
  EXPECT_THROW(p.get("nope"), NotFound);
  EXPECT_FALSE(p.try_get("nope").has_value());
}

TEST(ParamMap, MergeOtherWins) {
  ParamMap a{{"x", std::int64_t{1}}, {"y", std::int64_t{2}}};
  ParamMap b{{"y", std::int64_t{9}}};
  a.merge(b);
  EXPECT_EQ(a.get_int("x"), 1);
  EXPECT_EQ(a.get_int("y"), 9);
}

TEST(ParamMap, ToStringSortedCanonical) {
  ParamMap p;
  p.set("zeta", std::int64_t{1});
  p.set("alpha", true);
  EXPECT_EQ(p.to_string(), "alpha=true,zeta=1");
}

TEST(SplitNodeParam, HappyPath) {
  const auto split = split_node_param("pca__n_components");
  ASSERT_TRUE(split.has_value());
  EXPECT_EQ(split->first, "pca");
  EXPECT_EQ(split->second, "n_components");
}

TEST(SplitNodeParam, NoSeparator) {
  EXPECT_FALSE(split_node_param("plain").has_value());
}

TEST(SplitNodeParam, DegenerateForms) {
  EXPECT_FALSE(split_node_param("__x").has_value());
  EXPECT_FALSE(split_node_param("x__").has_value());
}

TEST(SplitNodeParam, FirstSeparatorWins) {
  const auto split = split_node_param("node__param__extra");
  ASSERT_TRUE(split.has_value());
  EXPECT_EQ(split->first, "node");
  EXPECT_EQ(split->second, "param__extra");
}

TEST(ParamGrid, EmptyGridYieldsOneEmptyAssignment) {
  ParamGrid grid;
  EXPECT_EQ(grid.n_assignments(), 1u);
  const auto assignments = grid.expand();
  ASSERT_EQ(assignments.size(), 1u);
  EXPECT_TRUE(assignments[0].empty());
}

TEST(ParamGrid, CartesianProduct) {
  ParamGrid grid;
  grid.add("k", {std::int64_t{1}, std::int64_t{2}, std::int64_t{3}})
      .add("mode", {std::string("a"), std::string("b")});
  EXPECT_EQ(grid.n_assignments(), 6u);
  const auto assignments = grid.expand();
  ASSERT_EQ(assignments.size(), 6u);
  std::set<std::string> unique;
  for (const auto& a : assignments) unique.insert(a.to_string());
  EXPECT_EQ(unique.size(), 6u);
}

TEST(ParamGrid, EmptyAxisRejected) {
  ParamGrid grid;
  EXPECT_THROW(grid.add("k", {}), InvalidArgument);
}

TEST(ParamValueToString, AllTypes) {
  EXPECT_EQ(param_value_to_string(std::int64_t{7}), "7");
  EXPECT_EQ(param_value_to_string(false), "false");
  EXPECT_EQ(param_value_to_string(std::string("x")), "x");
  EXPECT_EQ(param_value_to_string(2.5), "2.5");
}

}  // namespace
}  // namespace coda
