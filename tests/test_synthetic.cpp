// Tests for the synthetic workload generators (the documented substitution
// for the paper's proprietary industrial data).
#include <gtest/gtest.h>

#include <cmath>

#include "src/data/synthetic.h"

namespace coda {
namespace {

TEST(MakeRegression, ShapeAndNames) {
  RegressionConfig cfg;
  cfg.n_samples = 50;
  cfg.n_features = 7;
  const auto d = make_regression(cfg);
  EXPECT_EQ(d.n_samples(), 50u);
  EXPECT_EQ(d.n_features(), 7u);
  EXPECT_EQ(d.feature_names.size(), 7u);
  d.validate();
}

TEST(MakeRegression, DeterministicPerSeed) {
  RegressionConfig cfg;
  const auto a = make_regression(cfg);
  const auto b = make_regression(cfg);
  EXPECT_EQ(a.X, b.X);
  EXPECT_EQ(a.y, b.y);
  cfg.seed += 1;
  const auto c = make_regression(cfg);
  EXPECT_FALSE(a.X == c.X);
}

TEST(MakeRegression, InformativeFeaturesCorrelate) {
  RegressionConfig cfg;
  cfg.n_samples = 800;
  cfg.n_features = 8;
  cfg.n_informative = 3;
  cfg.noise_stddev = 0.1;
  cfg.nonlinear = false;
  const auto d = make_regression(cfg);
  // Informative features (0..2) should correlate with y far more than the
  // pure-noise features (3..7).
  auto corr = [&](std::size_t j) {
    double mx = 0.0, my = 0.0;
    for (std::size_t i = 0; i < d.n_samples(); ++i) {
      mx += d.X(i, j);
      my += d.y[i];
    }
    mx /= static_cast<double>(d.n_samples());
    my /= static_cast<double>(d.n_samples());
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < d.n_samples(); ++i) {
      sxy += (d.X(i, j) - mx) * (d.y[i] - my);
      sxx += (d.X(i, j) - mx) * (d.X(i, j) - mx);
      syy += (d.y[i] - my) * (d.y[i] - my);
    }
    return std::abs(sxy) / std::sqrt(sxx * syy);
  };
  double max_noise_corr = 0.0;
  for (std::size_t j = 3; j < 8; ++j) {
    max_noise_corr = std::max(max_noise_corr, corr(j));
  }
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_GT(corr(j), max_noise_corr)
        << "informative feature " << j << " should beat all noise features";
  }
}

TEST(MakeRegression, RejectsBadConfig) {
  RegressionConfig cfg;
  cfg.n_informative = cfg.n_features + 1;
  EXPECT_THROW(make_regression(cfg), InvalidArgument);
}

TEST(MakeClassification, BinaryImbalance) {
  ClassificationConfig cfg;
  cfg.n_samples = 1000;
  cfg.positive_fraction = 0.1;
  const auto d = make_classification(cfg);
  std::size_t positives = 0;
  for (const double label : d.y) {
    ASSERT_TRUE(label == 0.0 || label == 1.0);
    if (label == 1.0) ++positives;
  }
  EXPECT_GT(positives, 50u);
  EXPECT_LT(positives, 200u);
}

TEST(MakeClassification, MultiClassLabels) {
  ClassificationConfig cfg;
  cfg.n_classes = 4;
  cfg.n_samples = 200;
  const auto d = make_classification(cfg);
  for (const double label : d.y) {
    EXPECT_GE(label, 0.0);
    EXPECT_LT(label, 4.0);
  }
}

TEST(MakeIndustrialSeries, ShapeAndDeterminism) {
  IndustrialSeriesConfig cfg;
  cfg.n_variables = 3;
  cfg.length = 200;
  const auto a = make_industrial_series(cfg);
  EXPECT_EQ(a.length(), 200u);
  EXPECT_EQ(a.n_variables(), 3u);
  const auto b = make_industrial_series(cfg);
  EXPECT_EQ(a.values(), b.values());
}

TEST(MakeIndustrialSeries, TrendRaisesLevel) {
  IndustrialSeriesConfig cfg;
  cfg.length = 500;
  cfg.trend_slope = 0.05;
  cfg.seasonal_amplitude = 0.0;
  cfg.regime_shifts = 0;
  cfg.noise_stddev = 0.05;
  const auto ts = make_industrial_series(cfg);
  const auto v0 = ts.variable(0);
  double early = 0.0, late = 0.0;
  for (std::size_t t = 0; t < 100; ++t) early += v0[t];
  for (std::size_t t = 400; t < 500; ++t) late += v0[t];
  EXPECT_GT(late / 100.0, early / 100.0 + 5.0);
}

TEST(MakeIndustrialSeries, SeasonalAutocorrelation) {
  IndustrialSeriesConfig cfg;
  cfg.length = 600;
  cfg.seasonal_period = 24;
  cfg.seasonal_amplitude = 3.0;
  cfg.trend_slope = 0.0;
  cfg.ar_coefficient = 0.0;
  cfg.noise_stddev = 0.1;
  cfg.regime_shifts = 0;
  const auto ts = make_industrial_series(cfg);
  const auto x = ts.variable(0);
  // Autocorrelation at the seasonal lag should be strongly positive.
  double mean = 0.0;
  for (const double v : x) mean += v;
  mean /= static_cast<double>(x.size());
  double num = 0.0, den = 0.0;
  for (std::size_t t = 0; t + 24 < x.size(); ++t) {
    num += (x[t] - mean) * (x[t + 24] - mean);
  }
  for (const double v : x) den += (v - mean) * (v - mean);
  EXPECT_GT(num / den, 0.5);
}

TEST(MakeFailureWorkload, RareFailuresAndSignal) {
  FailureWorkloadConfig cfg;
  cfg.n_samples = 2000;
  cfg.failure_rate = 0.05;
  const auto d = make_failure_workload(cfg);
  std::size_t failures = 0;
  double failing_s0 = 0.0, normal_s0 = 0.0;
  for (std::size_t i = 0; i < d.n_samples(); ++i) {
    if (d.y[i] == 1.0) {
      ++failures;
      failing_s0 += d.X(i, 0);
    } else {
      normal_s0 += d.X(i, 0);
    }
  }
  ASSERT_GT(failures, 40u);
  EXPECT_LT(failures, 250u);
  // Sensor 0 drifts upward before failures (degradation signal).
  EXPECT_GT(failing_s0 / static_cast<double>(failures),
            normal_s0 / static_cast<double>(d.n_samples() - failures) + 1.0);
}

TEST(MakeCohortWorkload, BalancedCohorts) {
  CohortWorkloadConfig cfg;
  cfg.n_assets = 90;
  cfg.n_cohorts = 3;
  const auto d = make_cohort_workload(cfg);
  std::vector<std::size_t> counts(3, 0);
  for (const double c : d.y) ++counts[static_cast<std::size_t>(c)];
  EXPECT_EQ(counts[0], 30u);
  EXPECT_EQ(counts[1], 30u);
  EXPECT_EQ(counts[2], 30u);
}

TEST(InjectMissing, BlanksApproximatelyFraction) {
  RegressionConfig cfg;
  cfg.n_samples = 100;
  cfg.n_features = 10;
  auto d = make_regression(cfg);
  const std::size_t blanked = inject_missing(d, 0.2, 3);
  EXPECT_GT(blanked, 120u);
  EXPECT_LT(blanked, 280u);
  std::size_t nan_count = 0;
  for (const double v : d.X.data()) {
    if (std::isnan(v)) ++nan_count;
  }
  EXPECT_EQ(nan_count, blanked);
}

TEST(InjectOutliers, AffectsReportedRows) {
  RegressionConfig cfg;
  auto d = make_regression(cfg);
  const auto before = d.X;
  const auto rows = inject_outliers(d, 0.1, 100.0, 5);
  EXPECT_FALSE(rows.empty());
  for (const std::size_t r : rows) {
    bool changed = false;
    for (std::size_t c = 0; c < d.X.cols(); ++c) {
      if (d.X(r, c) != before(r, c)) changed = true;
    }
    EXPECT_TRUE(changed);
  }
}

}  // namespace
}  // namespace coda
