// Tests for the scoring metrics, including parameterized identity/worst-case
// properties across all metrics.
#include <gtest/gtest.h>

#include <cmath>

#include "src/core/metrics.h"
#include "src/util/error.h"
#include "src/util/random.h"

namespace coda {
namespace {

TEST(Metrics, MseRmseMae) {
  const std::vector<double> t{1, 2, 3};
  const std::vector<double> p{2, 2, 5};
  EXPECT_DOUBLE_EQ(mse(t, p), (1.0 + 0.0 + 4.0) / 3.0);
  EXPECT_DOUBLE_EQ(rmse(t, p), std::sqrt(5.0 / 3.0));
  EXPECT_DOUBLE_EQ(mae(t, p), (1.0 + 0.0 + 2.0) / 3.0);
}

TEST(Metrics, MapeSkipsZeroTruth) {
  const std::vector<double> t{0, 10};
  const std::vector<double> p{5, 11};
  EXPECT_DOUBLE_EQ(mape(t, p), 10.0);  // only the second point counts
  EXPECT_THROW(mape({0, 0}, {1, 2}), InvalidArgument);
}

TEST(Metrics, R2PerfectAndMean) {
  const std::vector<double> t{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(r2(t, t), 1.0);
  const std::vector<double> mean_pred(4, 2.5);
  EXPECT_DOUBLE_EQ(r2(t, mean_pred), 0.0);
}

TEST(Metrics, LogErrors) {
  const std::vector<double> t{0, 1};
  const std::vector<double> p{0, 1};
  EXPECT_DOUBLE_EQ(msle(t, p), 0.0);
  EXPECT_DOUBLE_EQ(rmsle(t, p), 0.0);
  EXPECT_THROW(msle({-2}, {0}), InvalidArgument);
}

TEST(Metrics, Medians) {
  const std::vector<double> t{0, 0, 0, 0};
  const std::vector<double> p{1, 2, 3, 100};
  EXPECT_DOUBLE_EQ(median_absolute_error(t, p), 2.5);
}

TEST(Metrics, ClassificationConfusionBased) {
  // truth:  1 1 0 0 ; scores: .9 .2 .8 .1 -> TP=1 FN=1 FP=1 TN=1
  const std::vector<double> t{1, 1, 0, 0};
  const std::vector<double> s{0.9, 0.2, 0.8, 0.1};
  EXPECT_DOUBLE_EQ(accuracy(t, s), 0.5);
  EXPECT_DOUBLE_EQ(precision(t, s), 0.5);
  EXPECT_DOUBLE_EQ(recall(t, s), 0.5);
  EXPECT_DOUBLE_EQ(f1_score(t, s), 0.5);
}

TEST(Metrics, PrecisionZeroWhenNoPositivePredictions) {
  const std::vector<double> t{1, 0};
  const std::vector<double> s{0.1, 0.2};
  EXPECT_DOUBLE_EQ(precision(t, s), 0.0);
  EXPECT_DOUBLE_EQ(recall(t, s), 0.0);
  EXPECT_DOUBLE_EQ(f1_score(t, s), 0.0);
}

TEST(Metrics, AucPerfectSeparation) {
  const std::vector<double> t{0, 0, 1, 1};
  const std::vector<double> s{0.1, 0.2, 0.8, 0.9};
  EXPECT_DOUBLE_EQ(auc(t, s), 1.0);
}

TEST(Metrics, AucReversedIsZero) {
  const std::vector<double> t{1, 1, 0, 0};
  const std::vector<double> s{0.1, 0.2, 0.8, 0.9};
  EXPECT_DOUBLE_EQ(auc(t, s), 0.0);
}

TEST(Metrics, AucHandlesTies) {
  // All scores equal: AUC must be exactly 0.5 with midrank handling.
  const std::vector<double> t{1, 0, 1, 0};
  const std::vector<double> s{0.5, 0.5, 0.5, 0.5};
  EXPECT_DOUBLE_EQ(auc(t, s), 0.5);
}

TEST(Metrics, AucNeedsBothClasses) {
  EXPECT_THROW(auc({1, 1}, {0.5, 0.6}), InvalidArgument);
}

TEST(Metrics, NamesRoundTrip) {
  for (const Metric m :
       {Metric::kMse, Metric::kRmse, Metric::kMae, Metric::kMape, Metric::kR2,
        Metric::kMsle, Metric::kRmsle, Metric::kMedianAe, Metric::kMedianAle,
        Metric::kAccuracy, Metric::kPrecision, Metric::kRecall, Metric::kF1,
        Metric::kAuc}) {
    EXPECT_EQ(metric_from_name(metric_name(m)), m);
  }
  EXPECT_THROW(metric_from_name("nope"), NotFound);
}

TEST(Metrics, HigherIsBetterTable) {
  EXPECT_FALSE(higher_is_better(Metric::kRmse));
  EXPECT_FALSE(higher_is_better(Metric::kMape));
  EXPECT_TRUE(higher_is_better(Metric::kR2));
  EXPECT_TRUE(higher_is_better(Metric::kF1));
  EXPECT_TRUE(higher_is_better(Metric::kAuc));
}

TEST(Metrics, EmptyOrMismatchedInputsThrow) {
  EXPECT_THROW(mse({}, {}), InvalidArgument);
  EXPECT_THROW(mse({1}, {1, 2}), InvalidArgument);
}

// Property sweep: on positive data, perfect predictions score perfectly for
// every regression metric (0 for errors, 1 for R²).
class PerfectPredictionProperty : public ::testing::TestWithParam<Metric> {};

TEST_P(PerfectPredictionProperty, PerfectScores) {
  Rng rng(11);
  std::vector<double> t(50);
  for (double& v : t) v = rng.uniform(0.5, 10.0);  // positive (log metrics)
  const double s = score(GetParam(), t, t);
  if (GetParam() == Metric::kR2) {
    EXPECT_DOUBLE_EQ(s, 1.0);
  } else {
    EXPECT_NEAR(s, 0.0, 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllRegressionMetrics, PerfectPredictionProperty,
    ::testing::Values(Metric::kMse, Metric::kRmse, Metric::kMae, Metric::kMape,
                      Metric::kR2, Metric::kMsle, Metric::kRmsle,
                      Metric::kMedianAe, Metric::kMedianAle));

// Property sweep: regression error metrics are monotone in the error scale.
class ErrorScaleProperty : public ::testing::TestWithParam<Metric> {};

TEST_P(ErrorScaleProperty, LargerNoiseLargerError) {
  Rng rng(7);
  std::vector<double> t(100), small(100), large(100);
  for (std::size_t i = 0; i < t.size(); ++i) {
    t[i] = rng.uniform(1.0, 5.0);
    const double noise = rng.normal();
    small[i] = t[i] + 0.01 * noise;
    large[i] = t[i] + 0.5 * noise;
  }
  EXPECT_LT(score(GetParam(), t, small), score(GetParam(), t, large));
}

INSTANTIATE_TEST_SUITE_P(
    ErrorMetrics, ErrorScaleProperty,
    ::testing::Values(Metric::kMse, Metric::kRmse, Metric::kMae, Metric::kMape,
                      Metric::kMsle, Metric::kRmsle, Metric::kMedianAe));

}  // namespace
}  // namespace coda
