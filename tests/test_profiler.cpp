// Tests for the always-on region profiler (DESIGN.md §15) and the
// executor instrumentation that feeds it: call/path accounting across
// threads, the pool.* / timerwheel.* metric families under a concurrent
// submit storm (run under -DCODA_SANITIZE=thread via `ctest -L tsan`),
// folded-export determinism, fleet hot-path reproducibility, and the
// reset contract.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/darr/cooperative.h"
#include "src/data/synthetic.h"
#include "src/ml/decision_tree.h"
#include "src/ml/linear.h"
#include "src/ml/scalers.h"
#include "src/obs/obs.h"
#include "src/util/thread_pool.h"
#include "src/util/timer_wheel.h"

namespace coda {
namespace {

// A fixed workload of nested scopes: 3 outer calls, 2 inner calls each,
// plus one call of a sibling region. Deterministic by construction.
void fixed_workload() {
  for (int outer = 0; outer < 3; ++outer) {
    PROF_SCOPE("test.prof.outer");
    for (int inner = 0; inner < 2; ++inner) {
      PROF_SCOPE("test.prof.inner");
    }
  }
  PROF_SCOPE("test.prof.sibling");
}

std::vector<std::pair<std::string, std::uint64_t>> region_calls() {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  for (const auto& region : obs::prof::region_table()) {
    out.emplace_back(region.name, region.calls);
  }
  return out;
}

TEST(Profiler, NestedScopesAccumulatePathsAndSelfTime) {
  obs::prof::reset();
  fixed_workload();

  bool saw_outer = false, saw_inner = false, saw_sibling = false;
  for (const auto& path : obs::prof::merged_paths()) {
    if (path.path == std::vector<std::string>{"test.prof.outer"}) {
      saw_outer = true;
      EXPECT_EQ(path.calls, 3u);
      EXPECT_GE(path.total_ns, path.self_ns);
    } else if (path.path ==
               std::vector<std::string>{"test.prof.outer",
                                        "test.prof.inner"}) {
      saw_inner = true;
      EXPECT_EQ(path.calls, 6u);
    } else if (path.path == std::vector<std::string>{"test.prof.sibling"}) {
      saw_sibling = true;
      EXPECT_EQ(path.calls, 1u);
    }
  }
  EXPECT_TRUE(saw_outer);
  EXPECT_TRUE(saw_inner);
  EXPECT_TRUE(saw_sibling);

  // The folded export carries the same stacks, semicolon-joined.
  const std::string folded = obs::prof::folded();
  EXPECT_NE(folded.find("test.prof.outer;test.prof.inner "),
            std::string::npos);
  EXPECT_NE(folded.find("test.prof.sibling "), std::string::npos);
}

TEST(Profiler, FoldedExportIsDeterministicForAFixedWorkload) {
  obs::prof::reset();
  fixed_workload();
  const auto first = region_calls();

  obs::prof::reset();
  fixed_workload();
  const auto second = region_calls();

  // Region set, ordering, and call counts reproduce exactly; only the
  // recorded times vary run to run (DESIGN.md §15 determinism rules).
  EXPECT_EQ(first, second);
  EXPECT_FALSE(first.empty());
}

// The tsan storm: many threads hammer one pool while the profiler records
// inside every task. Counts must balance exactly — the instrumentation
// sits under the queue lock (submit side) or on the single popping worker
// (drain side), so no increment can be lost or doubled.
TEST(Profiler, ConcurrentSubmitStormCountsEveryTask) {
  constexpr std::size_t kSubmitters = 4;
  constexpr std::size_t kTasksPerSubmitter = 64;
  constexpr std::size_t kTasks = kSubmitters * kTasksPerSubmitter;

  const std::uint64_t tasks_before = obs::counter("pool.tasks").value();
  const std::uint64_t wait_before =
      obs::histogram("pool.queue_wait_seconds").count();
  const std::uint64_t run_before =
      obs::histogram("pool.task_seconds").count();
  const double depth_before = obs::gauge("pool.queue_depth").value();
  obs::prof::reset();

  {
    ThreadPool pool(3);
    std::vector<std::thread> submitters;
    std::vector<std::future<void>> futures(kTasks);
    std::mutex futures_mutex;
    submitters.reserve(kSubmitters);
    for (std::size_t s = 0; s < kSubmitters; ++s) {
      submitters.emplace_back([&, s] {
        for (std::size_t i = 0; i < kTasksPerSubmitter; ++i) {
          auto f = pool.submit([] {
            PROF_SCOPE("test.prof.storm.task");
            volatile std::uint64_t sink = 0;
            for (int spin = 0; spin < 500; ++spin) {
              sink = sink + static_cast<std::uint64_t>(spin);
            }
          });
          std::lock_guard<std::mutex> lock(futures_mutex);
          futures[s * kTasksPerSubmitter + i] = std::move(f);
        }
      });
    }
    for (auto& t : submitters) t.join();
    for (auto& f : futures) f.get();

    const double live = pool.utilization();
    EXPECT_GE(live, 0.0);
    EXPECT_LE(live, 1.0);
  }  // pool drains, joins, and finalizes pool.utilization

  EXPECT_EQ(obs::counter("pool.tasks").value() - tasks_before, kTasks);
  EXPECT_EQ(obs::histogram("pool.queue_wait_seconds").count() - wait_before,
            kTasks);
  EXPECT_EQ(obs::histogram("pool.task_seconds").count() - run_before,
            kTasks);
  EXPECT_DOUBLE_EQ(obs::gauge("pool.queue_depth").value(), depth_before);

  const double final_util = obs::gauge("pool.utilization").value();
  EXPECT_GE(final_util, 0.0);
  EXPECT_LE(final_util, 1.0);

  // Every task's scope landed in the merge, across all worker threads.
  std::uint64_t storm_calls = 0;
  for (const auto& region : obs::prof::region_table()) {
    if (region.name == "test.prof.storm.task") storm_calls = region.calls;
  }
  EXPECT_EQ(storm_calls, kTasks);
}

TEST(Profiler, TimerWheelRecordsFireLagForDelayedFires) {
  constexpr std::size_t kEntries = 3;
  const std::uint64_t scheduled_before =
      obs::counter("timerwheel.scheduled").value();
  const std::uint64_t fired_before =
      obs::counter("timerwheel.fired").value();
  const std::uint64_t lag_before =
      obs::histogram("timerwheel.fire_lag_seconds").count();
  const double outstanding_before =
      obs::gauge("timerwheel.outstanding").value();

  {
    TimerWheel wheel;
    std::promise<void> all_fired;
    std::atomic<std::size_t> remaining{kEntries};
    for (std::size_t i = 0; i < kEntries; ++i) {
      wheel.schedule(std::chrono::milliseconds(1 + i), [&] {
        if (remaining.fetch_sub(1) == 1) all_fired.set_value();
      });
    }
    all_fired.get_future().wait();
  }

  EXPECT_EQ(obs::counter("timerwheel.scheduled").value() - scheduled_before,
            kEntries);
  EXPECT_EQ(obs::counter("timerwheel.fired").value() - fired_before,
            kEntries);
  // One lag sample per fire; fire time >= deadline, so every sample is
  // non-negative (the histogram rejects negatives loudly if not).
  EXPECT_EQ(
      obs::histogram("timerwheel.fire_lag_seconds").count() - lag_before,
      kEntries);
  EXPECT_DOUBLE_EQ(obs::gauge("timerwheel.outstanding").value(),
                   outstanding_before);
}

TEST(Profiler, PublishNodeWritesEqualShardAndGlobalIncrements) {
  obs::reset_all();
  {
    const obs::NodeScope node("profnode");
    fixed_workload();
  }
  obs::prof::publish_node("profnode");

  const std::uint64_t global_calls =
      obs::counter("prof.test.prof.outer.calls").value();
  const std::uint64_t shard_calls = obs::MetricScope::for_node("profnode")
                                        .counter("prof.test.prof.outer.calls")
                                        .value();
  EXPECT_EQ(global_calls, 3u);
  EXPECT_EQ(shard_calls, global_calls);

  // Publishing again with no new work is a no-op (delta-based).
  obs::prof::publish_node("profnode");
  EXPECT_EQ(obs::counter("prof.test.prof.outer.calls").value(), 3u);
}

// Serial fleet (max_parallel_clients = 1, no faults): the hot-path table
// reconstructed at the collector must reproduce back-to-back — same
// regions, same order, same call counts.
TEST(Profiler, SerialFleetHotPathTableReproduces) {
  const auto run_fleet = [] {
    obs::reset_all();
    TEGraph g;
    std::vector<std::unique_ptr<Transformer>> scalers;
    scalers.push_back(std::make_unique<StandardScaler>());
    scalers.push_back(std::make_unique<NoOp>());
    g.add_feature_scalers(std::move(scalers));
    std::vector<std::unique_ptr<Estimator>> models;
    models.push_back(std::make_unique<LinearRegression>());
    models.push_back(std::make_unique<DecisionTreeRegressor>());
    g.add_regression_models(std::move(models));

    RegressionConfig cfg;
    cfg.n_samples = 120;
    cfg.n_features = 4;
    cfg.n_informative = 4;
    const Dataset data = make_regression(cfg);

    darr::FleetOptions options;
    options.n_clients = 3;
    options.max_parallel_clients = 1;  // fully deterministic ordering
    const auto report = darr::run_cooperative_search(
        g, data, KFold(3), Metric::kRmse, options);
    EXPECT_TRUE(report.telemetry_divergence.empty())
        << report.telemetry_divergence;

    std::vector<std::pair<std::string, std::uint64_t>> table;
    for (const auto& row : report.telemetry->hot_paths(32)) {
      table.emplace_back(row.region, row.calls);
    }
    return table;
  };

  const auto first = run_fleet();
  const auto second = run_fleet();
  EXPECT_EQ(first, second);

  ASSERT_FALSE(first.empty());
  bool saw_candidate = false;
  for (const auto& [region, calls] : first) {
    if (region == "eval.candidate") saw_candidate = true;
  }
  EXPECT_TRUE(saw_candidate);
}

TEST(Profiler, ResetLeavesProfilerEmpty) {
  fixed_workload();
  EXPECT_FALSE(obs::prof::empty());
  obs::prof::reset();
  EXPECT_TRUE(obs::prof::empty());
  EXPECT_TRUE(obs::prof::merged_paths().empty());
  EXPECT_EQ(obs::prof::folded(), "");

  // And the regions keep working after the rewind.
  fixed_workload();
  EXPECT_FALSE(obs::prof::empty());
}

}  // namespace
}  // namespace coda
