// Tests for the distributed extensions: geographic replication with
// failover (Section III high-availability claim) and the AI-web-service
// node (Fig 1).
#include <gtest/gtest.h>

#include "src/core/metrics.h"
#include "src/core/pipeline.h"
#include "src/data/synthetic.h"
#include "src/dist/replication.h"
#include "src/dist/remote_service.h"
#include "src/ml/linear.h"
#include "src/util/random.h"

namespace coda::dist {
namespace {

Bytes pattern(std::size_t n, std::uint8_t seed) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = static_cast<std::uint8_t>((i * 31 + seed) & 0xFF);
  }
  return b;
}

struct ReplicationFixture : ::testing::Test {
  SimNet net;
  NodeId us = net.add_node("us_east");
  NodeId eu = net.add_node("eu_west");
  NodeId ap = net.add_node("ap_south");
  NodeId client = net.add_node("client");
  ReplicatedStore group{&net, {us, eu, ap}};
};

TEST_F(ReplicationFixture, PutReplicatesToAllSites) {
  group.put("o", pattern(1024, 1));
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(group.site(i).version("o"), 1u);
    EXPECT_EQ(group.site(i).value("o"), pattern(1024, 1));
  }
  // Replication shipped bytes from the primary to both replicas.
  EXPECT_GE(group.sync_stats().bytes_shipped, 2 * 1024u);
}

TEST_F(ReplicationFixture, SmallUpdatesReplicateByDelta) {
  Bytes value = pattern(32768, 1);
  group.put("o", value);
  const auto before = group.sync_stats();
  value[100] ^= 0xFF;
  group.put("o", value);
  const auto after = group.sync_stats();
  EXPECT_EQ(after.delta_syncs - before.delta_syncs, 2u);
  // Each delta sync far smaller than the full value.
  EXPECT_LT(after.bytes_shipped - before.bytes_shipped, 32768u / 2);
}

TEST_F(ReplicationFixture, FailoverServesFromReplica) {
  group.put("o", pattern(2048, 1));
  EXPECT_EQ(group.serving_site(), 0u);
  group.fail_site(0);  // primary site disaster
  EXPECT_EQ(group.serving_site(), 1u);
  const auto result = group.fetch("o", client, 0);
  EXPECT_EQ(result.full_value, pattern(2048, 1));

  group.fail_site(1);
  EXPECT_EQ(group.serving_site(), 2u);
  group.fail_site(2);
  EXPECT_THROW(group.fetch("o", client, 0), NotFound);
}

TEST_F(ReplicationFixture, FailedSiteMissesUpdatesThenResyncs) {
  group.put("o", pattern(1024, 1));
  group.fail_site(2);
  group.put("o", pattern(1024, 2));
  group.put("o", pattern(1024, 3));
  EXPECT_EQ(group.site(2).version("o"), 1u);  // stale while down
  group.recover_site(2);
  group.resync(2);
  EXPECT_EQ(group.site(2).version("o"), group.site(0).version("o"));
  EXPECT_EQ(group.site(2).value("o"), pattern(1024, 3));
}

TEST_F(ReplicationFixture, ClientsKeepReadingAcrossFailover) {
  // The §III availability claim end-to-end: a reader sees every version
  // even though the primary dies mid-stream.
  Bytes value = pattern(4096, 1);
  group.put("o", value);
  auto r1 = group.fetch("o", client, 0);
  EXPECT_EQ(r1.version, 1u);
  group.fail_site(0);
  value[0] ^= 1;
  group.put("o", value);  // primary store object still updated via group
  auto r2 = group.fetch("o", client, r1.version);
  EXPECT_EQ(r2.version, 2u);
}

TEST(ReplicatedStore, NeedsAtLeastTwoSites) {
  SimNet net;
  const NodeId only = net.add_node("only");
  EXPECT_THROW(ReplicatedStore(&net, {only}), InvalidArgument);
}

// --- AI web service (Fig 1) -------------------------------------------------

TEST(RemoteModelService, FitPredictOverTheWire) {
  SimNet net;
  const NodeId service_node = net.add_node("watson");
  const NodeId client_node = net.add_node("client");
  RemoteModelService service(&net, service_node,
                             std::make_unique<LinearRegression>());

  RegressionConfig cfg;
  cfg.n_samples = 100;
  cfg.n_features = 3;
  cfg.n_informative = 3;
  cfg.nonlinear = false;
  cfg.noise_stddev = 0.01;
  const auto d = make_regression(cfg);

  service.fit(client_node, d.X, d.y);
  const auto predictions = service.predict(client_node, d.X);
  EXPECT_LT(rmse(d.y, predictions), 0.1);

  // Every call crossed the simulated network with the data's weight.
  const auto stats = service.stats();
  EXPECT_EQ(stats.fit_calls, 1u);
  EXPECT_EQ(stats.predict_calls, 1u);
  EXPECT_GT(stats.bytes_in, d.X.size() * sizeof(double));
  EXPECT_GT(stats.bytes_out, d.y.size() * sizeof(double));
  EXPECT_GT(net.link(client_node, service_node).bytes,
            d.X.size() * sizeof(double));
}

TEST(RemoteEstimator, ParticipatesInAGraphTerminalStage) {
  SimNet net;
  const NodeId service_node = net.add_node("watson");
  const NodeId client_node = net.add_node("client");
  RemoteModelService service(&net, service_node,
                             std::make_unique<LinearRegression>());

  RegressionConfig cfg;
  cfg.n_samples = 80;
  cfg.n_features = 3;
  cfg.nonlinear = false;
  cfg.n_informative = 3;
  const auto d = make_regression(cfg);

  Pipeline p;
  p.set_estimator(
      std::make_unique<RemoteEstimator>(&service, client_node));
  p.fit(d.X, d.y);
  const auto predictions = p.predict(d.X);
  EXPECT_LT(rmse(d.y, predictions), 1.0);
  EXPECT_GE(service.stats().fit_calls, 1u);
}

TEST(RemoteEstimator, CloneMustRefitBeforePredicting) {
  SimNet net;
  const NodeId service_node = net.add_node("svc");
  const NodeId client_node = net.add_node("client");
  RemoteModelService service(&net, service_node,
                             std::make_unique<LinearRegression>());
  RemoteEstimator remote(&service, client_node);
  const auto clone = remote.clone_estimator();
  EXPECT_THROW(clone->predict(Matrix(1, 1)), StateError);
}

}  // namespace
}  // namespace coda::dist
