// Tests for the client replica cache: pull with version negotiation,
// push application in all three modes, staleness accounting, and the
// delta-base-mismatch fallback (failure injection for missed pushes).
#include <gtest/gtest.h>

#include "src/dist/client_cache.h"

namespace coda::dist {
namespace {

Bytes pattern(std::size_t n, std::uint8_t seed) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = static_cast<std::uint8_t>((i * 17 + seed) & 0xFF);
  }
  return b;
}

struct CacheFixture : ::testing::Test {
  SimNet net;
  NodeId store_node = net.add_node("store");
  NodeId client_node = net.add_node("client");
  HomeDataStore store{&net, store_node};
  ClientCache cache{&net, client_node, &store};

  void wire_push() {
    store.set_push_handler(
        [this](NodeId target, const PushMessage& msg) {
          ASSERT_EQ(target, client_node);
          cache.on_push(msg);
        });
  }
};

TEST_F(CacheFixture, FirstGetFetchesFullValue) {
  store.put("o1", pattern(1024, 1));
  EXPECT_EQ(cache.get("o1"), pattern(1024, 1));
  EXPECT_EQ(cache.version("o1"), 1u);
  EXPECT_EQ(cache.stats().full_responses, 1u);
}

TEST_F(CacheFixture, SecondGetAfterSmallUpdateUsesDelta) {
  Bytes v1 = pattern(8192, 1);
  store.put("o1", v1);
  cache.get("o1");
  Bytes v2 = v1;
  v2[100] ^= 0xFF;
  store.put("o1", v2);
  EXPECT_EQ(cache.get("o1"), v2);
  EXPECT_EQ(cache.stats().delta_responses, 1u);
  EXPECT_GT(cache.stats().bytes_saved_by_delta, 0u);
}

TEST_F(CacheFixture, GetWhenUpToDateIsNotModified) {
  store.put("o1", pattern(512, 1));
  cache.get("o1");
  cache.get("o1");
  EXPECT_EQ(cache.stats().not_modified_responses, 1u);
}

TEST_F(CacheFixture, StalenessTracksVersionGap) {
  store.put("o1", pattern(64, 1));
  cache.get("o1");
  EXPECT_EQ(cache.staleness("o1"), 0u);
  store.put("o1", pattern(64, 2));
  store.put("o1", pattern(64, 3));
  EXPECT_EQ(cache.staleness("o1"), 2u);
  cache.get("o1");
  EXPECT_EQ(cache.staleness("o1"), 0u);
}

TEST_F(CacheFixture, CachedAccessorThrowsWhenAbsent) {
  EXPECT_THROW(cache.cached("nope"), NotFound);
  EXPECT_FALSE(cache.has("nope"));
}

TEST_F(CacheFixture, PushFullKeepsReplicaFresh) {
  wire_push();
  cache.subscribe("o1", 100.0, PushMode::kFullValue);
  store.put("o1", pattern(256, 1));
  EXPECT_TRUE(cache.has("o1"));
  EXPECT_EQ(cache.cached("o1"), pattern(256, 1));
  EXPECT_EQ(cache.staleness("o1"), 0u);
  EXPECT_EQ(cache.stats().pushes_full, 1u);
}

TEST_F(CacheFixture, PushDeltaAppliesIncrementally) {
  wire_push();
  cache.subscribe("o1", 100.0, PushMode::kDelta);
  Bytes v1 = pattern(4096, 1);
  store.put("o1", v1);  // arrives as full (no base yet)
  Bytes v2 = v1;
  v2[7] ^= 0x55;
  store.put("o1", v2);  // arrives as delta
  EXPECT_EQ(cache.cached("o1"), v2);
  EXPECT_EQ(cache.stats().pushes_delta, 1u);
}

TEST_F(CacheFixture, DeltaBaseMismatchFallsBackToPull) {
  wire_push();
  Bytes v1 = pattern(4096, 1);
  store.put("o1", v1);
  // Client subscribes *after* v1 exists and never pulled it, then the
  // store's second push is a delta against a version the client lacks.
  cache.subscribe("o1", 100.0, PushMode::kDelta);
  Bytes v2 = v1;
  v2[0] ^= 1;
  store.put("o1", v2);  // first push: full (no pushed base) -> ok
  Bytes v3 = v2;
  v3[1] ^= 1;
  // Sabotage: wipe the client's entry version by constructing a mismatch —
  // simulate a missed push by delivering a delta with a wrong base.
  PushMessage forged;
  forged.key = "o1";
  forged.version = 99;
  forged.mode = PushMode::kDelta;
  forged.delta = compute_delta(v1, v3);
  forged.delta.base_version = 42;  // not what the client holds
  cache.on_push(forged);
  EXPECT_EQ(cache.stats().delta_fallback_fetches, 1u);
  // The fallback pull recovered the store's current value.
  EXPECT_EQ(cache.cached("o1"), store.value("o1"));
}

TEST_F(CacheFixture, NotifyOnlyDefersFetchUntilNeeded) {
  wire_push();
  store.put("o1", pattern(2048, 1));
  cache.get("o1");
  cache.subscribe("o1", 100.0, PushMode::kNotifyOnly);
  const auto bytes_before = cache.stats().bytes_received;
  store.put("o1", pattern(2048, 2));
  // Notification received, data not yet transferred.
  EXPECT_EQ(cache.notified_version("o1"), 2u);
  EXPECT_EQ(cache.version("o1"), 1u);
  EXPECT_LT(cache.stats().bytes_received - bytes_before, 100u);
  // Client decides it needs the data now.
  EXPECT_EQ(cache.get("o1"), pattern(2048, 2));
  EXPECT_EQ(cache.version("o1"), 2u);
}

TEST_F(CacheFixture, LeaseExpiryStopsUpdates) {
  wire_push();
  cache.subscribe("o1", 1.0, PushMode::kFullValue);
  store.put("o1", pattern(64, 1));
  EXPECT_EQ(cache.version("o1"), 1u);
  net.advance(5.0);  // lease expires
  store.put("o1", pattern(64, 2));
  EXPECT_EQ(cache.version("o1"), 1u);  // no longer updated
  EXPECT_EQ(cache.staleness("o1"), 1u);
  // Renewal requires an active lease; re-subscribe instead.
  cache.subscribe("o1", 10.0, PushMode::kFullValue);
  store.put("o1", pattern(64, 3));
  EXPECT_EQ(cache.version("o1"), 3u);
}

TEST_F(CacheFixture, ReplayedDeltaPushIsDroppedNotDoubleApplied) {
  // A push lease expires while its message is "in flight": the client
  // pulls, then the retransmitted push for the version it already holds
  // arrives. Applying that delta again would corrupt the replica (or
  // throw); the stale guard must drop it instead.
  wire_push();
  cache.subscribe("o1", 100.0, PushMode::kDelta);
  Bytes v1 = pattern(4096, 1);
  store.put("o1", v1);  // full push (no base yet)
  Bytes v2 = v1;
  v2[7] ^= 0x55;
  store.put("o1", v2);  // delta push applied, client at version 2
  ASSERT_EQ(cache.version("o1"), 2u);

  PushMessage retransmit;
  retransmit.key = "o1";
  retransmit.version = 2;  // at the held version: a replay
  retransmit.mode = PushMode::kDelta;
  retransmit.delta = compute_delta(v1, v2);
  cache.on_push(retransmit);

  EXPECT_EQ(cache.stats().stale_pushes, 1u);
  EXPECT_EQ(cache.version("o1"), 2u);
  EXPECT_EQ(cache.cached("o1"), v2);  // untouched, not double-applied
}

TEST_F(CacheFixture, DelayedPushCannotRollTheReplicaBack) {
  // Lease expiry racing the logical clock: the client's lease lapses
  // mid-advance, it falls back to pull (now at the newest version), and
  // only then does a delayed old push arrive. The old value must lose.
  wire_push();
  cache.subscribe("o1", 1.0, PushMode::kFullValue);
  store.put("o1", pattern(64, 1));  // pushed, version 1
  net.advance(5.0);                 // lease expires mid-run
  store.put("o1", pattern(64, 2));  // not pushed (no live lease)
  EXPECT_EQ(cache.get("o1"), pattern(64, 2));  // pull fallback
  ASSERT_EQ(cache.version("o1"), 2u);

  PushMessage delayed;
  delayed.key = "o1";
  delayed.version = 1;  // older than what the pull installed
  delayed.mode = PushMode::kFullValue;
  delayed.full_value = pattern(64, 1);
  cache.on_push(delayed);

  EXPECT_EQ(cache.stats().stale_pushes, 1u);
  EXPECT_EQ(cache.version("o1"), 2u);
  EXPECT_EQ(cache.cached("o1"), pattern(64, 2));

  // A genuinely new push still applies after the dropped replay.
  cache.subscribe("o1", 10.0, PushMode::kFullValue);
  store.put("o1", pattern(64, 3));
  EXPECT_EQ(cache.version("o1"), 3u);
  EXPECT_EQ(cache.cached("o1"), pattern(64, 3));
}

TEST_F(CacheFixture, StaleNotificationsNeverLowerTheRatchet) {
  wire_push();
  store.put("o1", pattern(64, 1));
  cache.get("o1");
  cache.subscribe("o1", 100.0, PushMode::kNotifyOnly);
  store.put("o1", pattern(64, 2));
  store.put("o1", pattern(64, 3));
  EXPECT_EQ(cache.notified_version("o1"), 3u);

  PushMessage delayed;
  delayed.key = "o1";
  delayed.version = 2;  // notification arriving out of order
  delayed.mode = PushMode::kNotifyOnly;
  cache.on_push(delayed);
  EXPECT_EQ(cache.notified_version("o1"), 3u);  // ratchet holds
  // Notify-only replays are harmless, so they are not counted stale.
  EXPECT_EQ(cache.stats().stale_pushes, 0u);
}

TEST(ClientCache, ClientAndStoreMustDiffer) {
  SimNet net;
  const NodeId s = net.add_node("s");
  HomeDataStore store(&net, s);
  EXPECT_THROW(ClientCache(&net, s, &store), InvalidArgument);
}

}  // namespace
}  // namespace coda::dist
