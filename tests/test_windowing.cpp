// Tests for the time-series windowing preprocessors (Figs 7-10), including
// a parameterized sweep over (history, horizon, variables).
#include <gtest/gtest.h>

#include "src/ts/windowing.h"
#include "src/util/error.h"

namespace coda::ts {
namespace {

// A tiny deterministic series: value(t, v) = 10*t + v.
Matrix ramp_series(std::size_t length, std::size_t vars) {
  Matrix m(length, vars);
  for (std::size_t t = 0; t < length; ++t) {
    for (std::size_t v = 0; v < vars; ++v) {
      m(t, v) = 10.0 * static_cast<double>(t) + static_cast<double>(v);
    }
  }
  return m;
}

TEST(CascadedWindows, ValuesAndAlignment) {
  const Matrix series = ramp_series(6, 2);
  ForecastSpec spec;
  spec.history = 3;
  spec.horizon = 1;
  spec.target_var = 1;
  CascadedWindows maker;
  const auto wd = maker.build(series, series, spec);
  // N = 6 - 3 - 1 + 1 = 3 windows of width 3*2.
  ASSERT_EQ(wd.X.rows(), 3u);
  ASSERT_EQ(wd.X.cols(), 6u);
  // Window 0: times 0..2, time-major flattening [t0v0,t0v1,t1v0,...].
  EXPECT_DOUBLE_EQ(wd.X(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(wd.X(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(wd.X(0, 2), 10.0);
  EXPECT_DOUBLE_EQ(wd.X(0, 5), 21.0);
  // Target: time 3, variable 1 -> 31.
  EXPECT_DOUBLE_EQ(wd.y[0], 31.0);
  EXPECT_EQ(wd.target_times[0], 3u);
  EXPECT_EQ(wd.span_starts[0], 0u);
  // Last window targets the final timestamp.
  EXPECT_EQ(wd.target_times.back(), 5u);
}

TEST(CascadedWindows, HorizonShiftsTarget) {
  const Matrix series = ramp_series(8, 1);
  ForecastSpec spec;
  spec.history = 2;
  spec.horizon = 3;
  CascadedWindows maker;
  const auto wd = maker.build(series, series, spec);
  // N = 8 - 2 - 3 + 1 = 4; window 0 covers t 0..1, target t=4.
  ASSERT_EQ(wd.y.size(), 4u);
  EXPECT_DOUBLE_EQ(wd.y[0], 40.0);
  EXPECT_EQ(wd.target_times[0], 4u);
}

TEST(FlatWindowing, SameValuesAsCascaded) {
  // Fig 8: flattening preserves the window contents; only the consumer's
  // interpretation changes.
  const Matrix series = ramp_series(10, 3);
  ForecastSpec spec;
  spec.history = 4;
  CascadedWindows cascaded;
  FlatWindowing flat;
  EXPECT_EQ(flat.build(series, series, spec).X,
            cascaded.build(series, series, spec).X);
  EXPECT_EQ(flat.build(series, series, spec).y,
            cascaded.build(series, series, spec).y);
}

TEST(TsAsIid, CurrentValuesOnly) {
  const Matrix series = ramp_series(5, 2);
  ForecastSpec spec;
  spec.horizon = 1;
  spec.target_var = 0;
  TsAsIid maker;
  const auto wd = maker.build(series, series, spec);
  ASSERT_EQ(wd.X.rows(), 4u);
  ASSERT_EQ(wd.X.cols(), 2u);
  EXPECT_DOUBLE_EQ(wd.X(2, 0), 20.0);
  EXPECT_DOUBLE_EQ(wd.y[2], 30.0);  // t=3, var 0
  EXPECT_EQ(wd.span_starts[2], 2u);
}

TEST(TsAsIs, SingleColumnOfTargetVariable) {
  const Matrix series = ramp_series(5, 3);
  ForecastSpec spec;
  spec.horizon = 1;
  spec.target_var = 2;
  TsAsIs maker;
  const auto wd = maker.build(series, series, spec);
  ASSERT_EQ(wd.X.cols(), 1u);
  EXPECT_DOUBLE_EQ(wd.X(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(wd.y[0], 12.0);
}

TEST(TsAsIs, IgnoresScaledFeaturesForPersistence) {
  // The as-is feed must read the *target source*, not the scaled features,
  // so the Zero model predicts in original units.
  const Matrix original = ramp_series(4, 1);
  Matrix scaled = original;
  for (double& v : scaled.data()) v *= 0.001;
  ForecastSpec spec;
  TsAsIs maker;
  const auto wd = maker.build(scaled, original, spec);
  EXPECT_DOUBLE_EQ(wd.X(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(wd.X(1, 0), 10.0);  // original units
}

TEST(WindowMakers, FeatureWidthContracts) {
  ForecastSpec spec;
  spec.history = 5;
  EXPECT_EQ(CascadedWindows().feature_width(3, spec), 15u);
  EXPECT_EQ(FlatWindowing().feature_width(3, spec), 15u);
  EXPECT_EQ(TsAsIid().feature_width(3, spec), 3u);
  EXPECT_EQ(TsAsIs().feature_width(3, spec), 1u);
}

TEST(WindowMakers, Validation) {
  const Matrix series = ramp_series(5, 2);
  ForecastSpec spec;
  spec.history = 10;  // longer than the series
  CascadedWindows maker;
  EXPECT_THROW(maker.build(series, series, spec), InvalidArgument);

  ForecastSpec bad_var;
  bad_var.target_var = 5;
  EXPECT_THROW(TsAsIid().build(series, series, bad_var), InvalidArgument);

  const Matrix other = ramp_series(5, 3);
  EXPECT_THROW(TsAsIid().build(series, other, ForecastSpec{}),
               InvalidArgument);
}

// Parameterized shape sweep across (length, vars, history, horizon).
struct WindowCase {
  std::size_t length, vars, history, horizon;
};

class WindowShapeSweep : public ::testing::TestWithParam<WindowCase> {};

TEST_P(WindowShapeSweep, CascadedShapesAndTimes) {
  const auto c = GetParam();
  const Matrix series = ramp_series(c.length, c.vars);
  ForecastSpec spec;
  spec.history = c.history;
  spec.horizon = c.horizon;
  CascadedWindows maker;
  const auto wd = maker.build(series, series, spec);
  const std::size_t expected_n = c.length - c.history - c.horizon + 1;
  EXPECT_EQ(wd.X.rows(), expected_n);
  EXPECT_EQ(wd.X.cols(), c.history * c.vars);
  EXPECT_EQ(wd.y.size(), expected_n);
  for (std::size_t i = 0; i < expected_n; ++i) {
    EXPECT_EQ(wd.target_times[i], i + c.history + c.horizon - 1);
    EXPECT_EQ(wd.span_starts[i], i);
    // Targets always come strictly after the history span (no leakage).
    EXPECT_GE(wd.target_times[i], wd.span_starts[i] + c.history);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WindowShapeSweep,
    ::testing::Values(WindowCase{10, 1, 3, 1}, WindowCase{10, 4, 3, 1},
                      WindowCase{50, 2, 24, 1}, WindowCase{20, 3, 5, 4},
                      WindowCase{6, 2, 4, 2}));

}  // namespace
}  // namespace coda::ts
