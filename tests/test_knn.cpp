// Tests for the kNN models.
#include <gtest/gtest.h>

#include "src/core/metrics.h"
#include "src/ml/knn.h"
#include "src/util/random.h"

namespace coda {
namespace {

TEST(KNearest, FindsClosestInOrder) {
  Matrix train{{0}, {10}, {1}, {5}};
  const auto nn = k_nearest(train, {0.4}, 2);
  ASSERT_EQ(nn.size(), 2u);
  EXPECT_EQ(nn[0], 0u);
  EXPECT_EQ(nn[1], 2u);
}

TEST(KNearest, KClampedToTrainSize) {
  Matrix train{{0}, {1}};
  EXPECT_EQ(k_nearest(train, {0.0}, 10).size(), 2u);
}

TEST(KNearest, DimensionMismatchThrows) {
  Matrix train(3, 2);
  EXPECT_THROW(k_nearest(train, {1.0}, 1), InvalidArgument);
}

TEST(KnnRegressor, InterpolatesLocally) {
  // y = x: nearest neighbours give a close estimate.
  Matrix X(50, 1);
  std::vector<double> y(50);
  for (std::size_t i = 0; i < 50; ++i) {
    X(i, 0) = static_cast<double>(i);
    y[i] = static_cast<double>(i);
  }
  KnnRegressor model;
  model.set_param("k", std::int64_t{3});
  model.fit(X, y);
  Matrix query{{10.2}};
  EXPECT_NEAR(model.predict(query)[0], 10.0, 1.1);
}

TEST(KnnRegressor, KOneMemorizesTraining) {
  Matrix X{{0}, {5}, {9}};
  std::vector<double> y{1, 2, 3};
  KnnRegressor model;
  model.set_param("k", std::int64_t{1});
  model.fit(X, y);
  EXPECT_EQ(model.predict(X), y);
}

TEST(KnnClassifier, ScoresAreClassFractions) {
  Matrix X{{0}, {0.1}, {0.2}, {10}, {10.1}, {10.2}};
  std::vector<double> y{0, 0, 0, 1, 1, 1};
  KnnClassifier model;
  model.set_param("k", std::int64_t{3});
  model.fit(X, y);
  const auto scores = model.predict(Matrix{{0.05}, {10.05}});
  EXPECT_DOUBLE_EQ(scores[0], 0.0);
  EXPECT_DOUBLE_EQ(scores[1], 1.0);
}

TEST(KnnClassifier, SeparatesBlobs) {
  Rng rng(12);
  Matrix X(200, 2);
  std::vector<double> y(200);
  for (std::size_t i = 0; i < 200; ++i) {
    const bool positive = i % 2 == 0;
    y[i] = positive ? 1.0 : 0.0;
    X(i, 0) = rng.normal(positive ? 3.0 : -3.0, 1.0);
    X(i, 1) = rng.normal(positive ? 3.0 : -3.0, 1.0);
  }
  KnnClassifier model;
  model.fit(X, y);
  EXPECT_GT(accuracy(y, model.predict(X)), 0.95);
}

TEST(Knn, PredictBeforeFitThrows) {
  KnnRegressor r;
  EXPECT_THROW(r.predict(Matrix(1, 1)), StateError);
  KnnClassifier c;
  EXPECT_THROW(c.predict(Matrix(1, 1)), StateError);
}

}  // namespace
}  // namespace coda
