// Property-style invariants across modules: graph combinatorics, metric
// algebra, delta-codec behaviour on adversarially structured data, retry
// backoff schedules, delta decode robustness, and scaler idempotence.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "src/core/evaluator.h"
#include "src/core/metrics.h"
#include "src/core/te_graph.h"
#include "src/data/synthetic.h"
#include "src/dist/delta.h"
#include "src/ml/linear.h"
#include "src/ml/pca.h"
#include "src/ml/scalers.h"
#include "src/obs/obs.h"
#include "src/util/error.h"
#include "src/util/random.h"
#include "src/util/retry.h"

namespace coda {
namespace {

// --- TE-Graph combinatorics -------------------------------------------------

class GraphShapeProperty
    : public ::testing::TestWithParam<std::vector<std::size_t>> {};

TEST_P(GraphShapeProperty, PathCountIsProductOfStageSizes) {
  const auto shape = GetParam();
  TEGraph g;
  std::size_t expected = 1;
  std::size_t node_id = 0;
  for (std::size_t s = 0; s < shape.size(); ++s) {
    std::vector<StageOption> options;
    const bool terminal = s + 1 == shape.size();
    for (std::size_t o = 0; o < shape[s]; ++o) {
      if (terminal) {
        auto model = std::make_unique<LinearRegression>();
        model->set_name("m" + std::to_string(node_id++));
        options.push_back(make_option(std::move(model)));
      } else {
        auto t = std::make_unique<NoOp>();
        t->set_name("t" + std::to_string(node_id++));
        options.push_back(make_option(std::move(t)));
      }
    }
    g.add_stage("stage" + std::to_string(s), std::move(options));
    expected *= shape[s];
  }
  EXPECT_EQ(g.count_paths(), expected);
  EXPECT_EQ(g.enumerate_candidates().size(), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GraphShapeProperty,
    ::testing::Values(std::vector<std::size_t>{1},
                      std::vector<std::size_t>{3},
                      std::vector<std::size_t>{2, 2},
                      std::vector<std::size_t>{4, 3, 3},   // Fig 3
                      std::vector<std::size_t>{2, 3, 4, 2},
                      std::vector<std::size_t>{1, 1, 1, 1, 5}));

// --- Metric algebra -----------------------------------------------------------

TEST(MetricProperties, RmseAndMaeScaleEquivariant) {
  Rng rng(91);
  std::vector<double> t(60), p(60), t2(60), p2(60);
  for (std::size_t i = 0; i < 60; ++i) {
    t[i] = rng.normal();
    p[i] = rng.normal();
    t2[i] = 3.5 * t[i];
    p2[i] = 3.5 * p[i];
  }
  EXPECT_NEAR(rmse(t2, p2), 3.5 * rmse(t, p), 1e-9);
  EXPECT_NEAR(mae(t2, p2), 3.5 * mae(t, p), 1e-9);
}

TEST(MetricProperties, ErrorsTranslationInvariant) {
  Rng rng(92);
  std::vector<double> t(60), p(60), t2(60), p2(60);
  for (std::size_t i = 0; i < 60; ++i) {
    t[i] = rng.normal();
    p[i] = rng.normal();
    t2[i] = t[i] + 100.0;
    p2[i] = p[i] + 100.0;
  }
  EXPECT_NEAR(rmse(t2, p2), rmse(t, p), 1e-9);
  EXPECT_NEAR(mae(t2, p2), mae(t, p), 1e-9);
  EXPECT_NEAR(median_absolute_error(t2, p2), median_absolute_error(t, p),
              1e-9);
}

TEST(MetricProperties, R2InvariantUnderAffineTargetMaps) {
  // R² compares against the mean predictor, so jointly rescaling/shifting
  // truth and prediction leaves it unchanged.
  Rng rng(93);
  std::vector<double> t(80), p(80), t2(80), p2(80);
  for (std::size_t i = 0; i < 80; ++i) {
    t[i] = rng.normal();
    p[i] = t[i] + rng.normal(0.0, 0.3);
    t2[i] = -2.0 * t[i] + 7.0;
    p2[i] = -2.0 * p[i] + 7.0;
  }
  EXPECT_NEAR(r2(t2, p2), r2(t, p), 1e-9);
}

TEST(MetricProperties, AucInvariantUnderMonotoneScoreMaps) {
  Rng rng(94);
  std::vector<double> t(100), s(100), s2(100);
  for (std::size_t i = 0; i < 100; ++i) {
    t[i] = rng.bernoulli(0.4) ? 1.0 : 0.0;
    s[i] = rng.uniform();
    s2[i] = std::tanh(3.0 * s[i]);  // strictly increasing map
  }
  EXPECT_NEAR(auc(t, s2), auc(t, s), 1e-12);
}

TEST(MetricProperties, MseIsSquaredRmse) {
  Rng rng(95);
  std::vector<double> t(40), p(40);
  for (std::size_t i = 0; i < 40; ++i) {
    t[i] = rng.normal();
    p[i] = rng.normal();
  }
  EXPECT_NEAR(mse(t, p), rmse(t, p) * rmse(t, p), 1e-12);
}

// --- Delta codec on structured (adversarial) content ------------------------

using dist::apply_delta;
using dist::compute_delta;

TEST(DeltaProperties, AllZerosCompressesToNearNothing) {
  const Bytes base(8192, 0);
  Bytes target(8192, 0);
  target[4000] = 1;
  const auto d = compute_delta(base, target);
  EXPECT_EQ(apply_delta(base, d), target);
  EXPECT_LT(d.encoded_size(), 512u);
}

TEST(DeltaProperties, PeriodicContentRoundTrips) {
  // Highly repetitive content gives the block index many collisions; the
  // codec must still reconstruct exactly.
  Bytes base(4096);
  for (std::size_t i = 0; i < base.size(); ++i) {
    base[i] = static_cast<std::uint8_t>(i % 7);
  }
  Bytes target = base;
  target.erase(target.begin() + 1000, target.begin() + 1100);  // deletion
  const auto d = compute_delta(base, target);
  EXPECT_EQ(apply_delta(base, d), target);
}

TEST(DeltaProperties, ReversedContentFallsBackGracefully) {
  Rng rng(96);
  Bytes base(4096);
  for (auto& b : base) {
    b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  Bytes target(base.rbegin(), base.rend());
  const auto d = compute_delta(base, target);
  EXPECT_EQ(apply_delta(base, d), target);  // correctness over compression
}

TEST(DeltaProperties, ConcatenationOfBaseWithItself) {
  Rng rng(97);
  Bytes base(2048);
  for (auto& b : base) {
    b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  Bytes target = base;
  target.insert(target.end(), base.begin(), base.end());
  const auto d = compute_delta(base, target);
  EXPECT_EQ(apply_delta(base, d), target);
  // Doubling should cost ~two COPY ops, not literals.
  EXPECT_LT(d.encoded_size(), base.size() / 2);
}

// --- Retry backoff schedules (fault tier, DESIGN.md §9) ----------------------

// Seeded generator for the sweeps: failures must reproduce from the fixed
// seeds, never from run-to-run randomness.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

RetryPolicy policy_for_seed(std::uint64_t seed) {
  RetryPolicy p;
  p.seed = seed;
  p.max_attempts = 2 + mix64(seed) % 12;
  p.initial_backoff_seconds = 0.01 + 0.01 * (mix64(seed ^ 1) % 10);
  p.multiplier = 1.5 + 0.25 * (mix64(seed ^ 2) % 6);
  p.max_backoff_seconds = p.initial_backoff_seconds * 20.0;
  p.jitter_fraction = 0.1;  // within the monotonicity bound (multiplier-1)
  p.deadline_seconds = 5.0;
  return p;
}

TEST(RetryPolicyProperties, BackoffIsMonotoneAndCapped) {
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    const RetryPolicy p = policy_for_seed(seed);
    ASSERT_NO_THROW(p.validate()) << "seed " << seed;
    double previous = 0.0;
    for (std::size_t k = 0; k + 1 < p.max_attempts; ++k) {
      const double wait = p.backoff_seconds(k);
      EXPECT_GE(wait, previous) << "seed " << seed << " retry " << k;
      EXPECT_GE(wait, p.initial_backoff_seconds)
          << "seed " << seed << " retry " << k;
      EXPECT_LE(wait, p.max_backoff_seconds)
          << "seed " << seed << " retry " << k;
      previous = wait;
    }
  }
}

TEST(RetryPolicyProperties, ScheduleRespectsAttemptAndDeadlineBudgets) {
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    RetryPolicy p = policy_for_seed(seed);
    // Vary the deadline too, so some seeds are attempt-bound and others
    // deadline-bound.
    p.deadline_seconds =
        0.01 + 0.05 * static_cast<double>(mix64(seed ^ 3) % 40);
    BackoffSchedule schedule(p);
    double total = 0.0;
    std::size_t retries = 0;
    while (auto wait = schedule.next()) {
      total += *wait;
      ++retries;
      ASSERT_LT(retries, 1000u) << "runaway schedule, seed " << seed;
    }
    EXPECT_LE(retries + 1, p.max_attempts) << "seed " << seed;
    EXPECT_LE(total, p.deadline_seconds) << "seed " << seed;
    EXPECT_EQ(schedule.retries(), retries);
    EXPECT_DOUBLE_EQ(schedule.waited_seconds(), total);
  }
}

TEST(RetryPolicyProperties, IdenticalSeedsYieldIdenticalSequences) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const RetryPolicy p = policy_for_seed(seed);
    BackoffSchedule a(p);
    BackoffSchedule b(p);
    while (true) {
      const auto wa = a.next();
      const auto wb = b.next();
      ASSERT_EQ(wa.has_value(), wb.has_value()) << "seed " << seed;
      if (!wa) break;
      EXPECT_DOUBLE_EQ(*wa, *wb) << "seed " << seed;
    }
  }
  // And a different seed must perturb the jittered waits.
  RetryPolicy p;
  p.seed = 1;
  const double first = p.backoff_seconds(0);
  p.seed = 2;
  EXPECT_NE(first, p.backoff_seconds(0));
}

TEST(RetryPolicyProperties, ValidateRejectsOutOfRangeFields) {
  const RetryPolicy good;
  ASSERT_NO_THROW(good.validate());
  auto reject = [&](auto mutate) {
    RetryPolicy p;
    mutate(p);
    EXPECT_THROW(p.validate(), InvalidArgument);
  };
  reject([](RetryPolicy& p) { p.max_attempts = 0; });
  reject([](RetryPolicy& p) { p.initial_backoff_seconds = -0.1; });
  reject([](RetryPolicy& p) { p.multiplier = 0.5; });
  reject([](RetryPolicy& p) { p.max_backoff_seconds = 0.0; });
  reject([](RetryPolicy& p) { p.jitter_fraction = -0.1; });
  // Jitter beyond multiplier - 1 would break monotonicity.
  reject([](RetryPolicy& p) {
    p.multiplier = 1.5;
    p.jitter_fraction = 0.75;
  });
  reject([](RetryPolicy& p) { p.deadline_seconds = 0.0; });
}

// --- Delta decode/apply under hostile payloads -------------------------------

Bytes seeded_bytes(std::uint64_t seed, std::size_t n) {
  Bytes out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::uint8_t>(mix64(seed + i));
  }
  return out;
}

TEST(DeltaProperties, RoundTripsAcrossSeededEdits) {
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    const Bytes base = seeded_bytes(seed, 256 + mix64(seed) % 512);
    Bytes target = base;
    // Mutate, insert and truncate to exercise COPY + ADD mixes.
    target[target.size() / 2] ^= 0xFF;
    target.insert(target.begin() + static_cast<std::ptrdiff_t>(
                                       mix64(seed ^ 9) % target.size()),
                  {1, 2, 3});
    target.resize(target.size() - mix64(seed ^ 7) % 32);
    const dist::Delta delta = compute_delta(base, target);
    EXPECT_EQ(apply_delta(base, delta), target) << "seed " << seed;
    const dist::Delta decoded = dist::Delta::deserialize(delta.serialize());
    EXPECT_EQ(apply_delta(base, decoded), target) << "seed " << seed;
  }
}

TEST(DeltaProperties, TruncatedPayloadsNeverDecodeSilently) {
  const Bytes base = seeded_bytes(21, 512);
  Bytes target = base;
  target[10] ^= 0x55;
  target.push_back(7);
  const Bytes wire = compute_delta(base, target).serialize();

  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    const Bytes truncated(wire.begin(),
                          wire.begin() + static_cast<std::ptrdiff_t>(cut));
    try {
      const dist::Delta d = dist::Delta::deserialize(truncated);
      // If a prefix happens to parse, applying it must still either
      // reconstruct exactly target_size bytes or throw — never crash.
      try {
        const Bytes out = apply_delta(base, d);
        EXPECT_EQ(out.size(), d.target_size) << "cut " << cut;
      } catch (const DecodeError&) {
      }
    } catch (const DecodeError&) {
      // The expected outcome for nearly every cut.
    }
  }
}

TEST(DeltaProperties, CorruptedPayloadsNeverDecodeSilently) {
  const Bytes base = seeded_bytes(22, 512);
  Bytes target = base;
  target[100] ^= 0x7;
  const Bytes wire = compute_delta(base, target).serialize();

  for (std::uint64_t seed = 0; seed < 400; ++seed) {
    Bytes corrupted = wire;
    const std::size_t flips = 1 + mix64(seed) % 4;
    for (std::size_t f = 0; f < flips; ++f) {
      const std::size_t at = mix64(seed ^ (f + 1)) % corrupted.size();
      corrupted[at] ^= static_cast<std::uint8_t>(mix64(seed ^ (f + 77)));
    }
    try {
      const dist::Delta d = dist::Delta::deserialize(corrupted);
      const Bytes out = apply_delta(base, d);
      // A flip that survives decode+apply must still honour the size
      // contract; values may differ (deltas are not authenticated).
      EXPECT_EQ(out.size(), d.target_size) << "seed " << seed;
    } catch (const DecodeError&) {
      // Loud failure: the desired behaviour.
    }
  }
}

TEST(DeltaProperties, CopyBeyondBaseIsRejected) {
  const Bytes base = seeded_bytes(3, 16);
  dist::Delta hostile;
  hostile.target_size = 8;
  dist::DeltaOp op;
  op.kind = dist::DeltaOp::Kind::kCopy;
  op.offset = 4;
  op.length = 100;  // runs past the base
  hostile.ops.push_back(op);
  EXPECT_THROW(apply_delta(base, hostile), DecodeError);

  // Offset arithmetic must not wrap: offset + length overflows uint64.
  hostile.ops[0].offset = ~std::uint64_t{0} - 2;
  hostile.ops[0].length = 8;
  EXPECT_THROW(apply_delta(base, hostile), DecodeError);
}

TEST(DeltaProperties, HugeDeclaredSizesDoNotPreallocate) {
  // A hostile header declaring a huge target_size or op count must not
  // trigger an unbounded up-front allocation.
  const Bytes base = seeded_bytes(4, 16);
  dist::Delta hostile;
  hostile.target_size = ~std::uint64_t{0};
  dist::DeltaOp op;
  op.kind = dist::DeltaOp::Kind::kAdd;
  op.literal = {1, 2, 3};
  hostile.ops.push_back(op);
  // Reconstruction yields 3 bytes; the declared-size lie is a DecodeError,
  // not an allocation attempt.
  EXPECT_THROW(apply_delta(base, hostile), DecodeError);

  // A payload that is all ones decodes a huge op count against an almost
  // empty remainder — rejected before ops.reserve().
  const Bytes bogus(4 * sizeof(std::uint64_t), 0xFF);
  EXPECT_THROW(dist::Delta::deserialize(bogus), DecodeError);
}

// --- Randomized TE-Graphs: fused == interpreted (DESIGN.md §14) --------------

/// Deliberately has no fused lowering: the plan compiler recognizes
/// components by type, so even though centering is affine, this custom
/// transformer must fall back to interpreted execution.
class CenteringTransformer final : public Transformer {
 public:
  CenteringTransformer() : Transformer("centering") {}

  void fit(const Matrix& X, const std::vector<double>&) override {
    means_ = X.col_means();
  }

  Matrix transform(const Matrix& X) const override {
    Matrix out = X;
    for (std::size_t r = 0; r < out.rows(); ++r) {
      for (std::size_t c = 0; c < out.cols(); ++c) {
        out(r, c) -= means_[c];
      }
    }
    return out;
  }

  std::unique_ptr<Component> clone() const override {
    return std::make_unique<CenteringTransformer>(*this);
  }

 private:
  std::vector<double> means_;
};

/// One seeded option: kinds 0-3 lower to fused affines, 4-5 are fallback.
std::unique_ptr<Transformer> seeded_transformer(std::uint64_t r,
                                                bool* fusable) {
  const std::uint64_t kind = r % 6;
  *fusable = kind < 4;
  std::unique_ptr<Transformer> t;
  switch (kind) {
    case 0: t = std::make_unique<StandardScaler>(); break;
    case 1: t = std::make_unique<MinMaxScaler>(); break;
    case 2: t = std::make_unique<RobustScaler>(); break;
    case 3: t = std::make_unique<NoOp>(); break;
    case 4: {
      auto pca = std::make_unique<PCA>();
      pca->set_param("n_components", std::int64_t{2});
      t = std::move(pca);
      break;
    }
    default: t = std::make_unique<CenteringTransformer>(); break;
  }
  return t;
}

/// Seeded random graph: 1-3 transformer stages x 1-3 options each, 1-2
/// estimators. Also reports, per transformer stage x option, whether that
/// option lowers (to predict the eval.plan.* counts exactly).
TEGraph seeded_graph(std::uint64_t seed,
                     std::vector<std::vector<bool>>* stage_fusable) {
  TEGraph g;
  stage_fusable->clear();
  const std::size_t depth = 1 + mix64(seed) % 3;
  std::size_t node_id = 0;
  for (std::size_t s = 0; s < depth; ++s) {
    const std::size_t width = 1 + mix64(seed ^ (s + 11)) % 3;
    std::vector<StageOption> options;
    std::vector<bool> fusable_row;
    for (std::size_t o = 0; o < width; ++o) {
      bool fusable = false;
      auto t = seeded_transformer(mix64(seed ^ (s * 17 + o + 31)), &fusable);
      t->set_name("t" + std::to_string(node_id++) + "_" + t->name());
      fusable_row.push_back(fusable);
      options.push_back(make_option(std::move(t)));
    }
    stage_fusable->push_back(std::move(fusable_row));
    g.add_stage("stage" + std::to_string(s), std::move(options));
  }
  std::vector<StageOption> models;
  const std::size_t n_models = 1 + mix64(seed ^ 97) % 2;
  for (std::size_t m = 0; m < n_models; ++m) {
    auto model = std::make_unique<LinearRegression>();
    model->set_name("m" + std::to_string(m));
    models.push_back(make_option(std::move(model)));
  }
  g.add_stage("model", std::move(models));
  return g;
}

TEST(RandomGraphProperties, FusedEqualsInterpretedAcrossSeeds) {
  RegressionConfig cfg;
  cfg.n_samples = 90;
  cfg.n_features = 5;
  cfg.n_informative = 4;
  cfg.noise_stddev = 0.1;
  const Dataset data = make_regression(cfg);

  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    std::vector<std::vector<bool>> fusable;
    const TEGraph g = seeded_graph(seed, &fusable);

    const auto run = [&](bool compile_plans) {
      EvalOptions options;
      options.metric = Metric::kRmse;
      options.compile_plans = compile_plans;
      GraphEvaluator evaluator(options);
      return evaluator.evaluate(g, data, KFold(3));
    };
    const auto interpreted = run(false);
    const auto fused = run(true);
    ASSERT_EQ(interpreted.results.size(), fused.results.size());
    for (std::size_t i = 0; i < interpreted.results.size(); ++i) {
      const auto& a = interpreted.results[i];
      const auto& b = fused.results[i];
      SCOPED_TRACE(a.spec);
      EXPECT_EQ(a.spec, b.spec);
      EXPECT_EQ(a.failed, b.failed);
      ASSERT_EQ(a.fold_scores.size(), b.fold_scores.size());
      for (std::size_t f = 0; f < a.fold_scores.size(); ++f) {
        EXPECT_EQ(a.fold_scores[f], b.fold_scores[f]) << "fold " << f;
      }
    }
    EXPECT_EQ(interpreted.best().spec, fused.best().spec);
  }
}

TEST(RandomGraphProperties, FallbackStagesCountedExactly) {
  RegressionConfig cfg;
  cfg.n_samples = 70;
  cfg.n_features = 5;
  cfg.n_informative = 4;
  const Dataset data = make_regression(cfg);

  const auto& compiled = obs::counter("eval.plan.compiled");
  const auto& fused_stages = obs::counter("eval.plan.fused_stages");
  const auto& fallback = obs::counter("eval.plan.fallback");

  for (std::uint64_t seed = 100; seed < 108; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    std::vector<std::vector<bool>> fusable;
    const TEGraph g = seeded_graph(seed, &fusable);

    // One plan per distinct transformer chain (estimators are not part of
    // the plan); stages are fully connected, so the chains are the
    // cartesian product of the transformer stages.
    std::uint64_t expect_plans = 1;
    for (const auto& row : fusable) expect_plans *= row.size();
    std::uint64_t expect_fused = 0, expect_fallback = 0;
    for (std::size_t s = 0; s < fusable.size(); ++s) {
      // Each option of stage s appears in (product of the other stages'
      // widths) chains.
      std::uint64_t siblings = 1;
      for (std::size_t o = 0; o < fusable.size(); ++o) {
        if (o != s) siblings *= fusable[o].size();
      }
      for (const bool f : fusable[s]) {
        (f ? expect_fused : expect_fallback) += siblings;
      }
    }

    EvalOptions options;
    options.metric = Metric::kRmse;
    options.compile_plans = true;
    options.threads = 1;  // deterministic compile counts (no racing misses)
    const std::uint64_t compiled0 = compiled.value();
    const std::uint64_t fused0 = fused_stages.value();
    const std::uint64_t fallback0 = fallback.value();
    GraphEvaluator evaluator(options);
    const auto report = evaluator.evaluate(g, data, KFold(3));
    for (const auto& r : report.results) {
      EXPECT_FALSE(r.failed) << r.spec << ": " << r.failure_message;
    }
    EXPECT_EQ(compiled.value() - compiled0, expect_plans);
    EXPECT_EQ(fused_stages.value() - fused0, expect_fused);
    EXPECT_EQ(fallback.value() - fallback0, expect_fallback);
  }
}

// --- Scaler idempotence -------------------------------------------------------

TEST(ScalerProperties, StandardScalingIsIdempotent) {
  Rng rng(98);
  Matrix X(100, 3);
  for (double& v : X.data()) v = rng.normal(5.0, 3.0);
  StandardScaler first;
  const Matrix once = first.fit_transform(X, {});
  StandardScaler second;
  const Matrix twice = second.fit_transform(once, {});
  for (std::size_t i = 0; i < once.size(); ++i) {
    EXPECT_NEAR(twice.data()[i], once.data()[i], 1e-9);
  }
}

TEST(ScalerProperties, MinMaxIsIdempotent) {
  Rng rng(99);
  Matrix X(100, 2);
  for (double& v : X.data()) v = rng.uniform(-10.0, 50.0);
  MinMaxScaler first;
  const Matrix once = first.fit_transform(X, {});
  MinMaxScaler second;
  const Matrix twice = second.fit_transform(once, {});
  for (std::size_t i = 0; i < once.size(); ++i) {
    EXPECT_NEAR(twice.data()[i], once.data()[i], 1e-12);
  }
}

}  // namespace
}  // namespace coda
