// Property-style invariants across modules: graph combinatorics, metric
// algebra, delta-codec behaviour on adversarially structured data, and
// scaler idempotence.
#include <gtest/gtest.h>

#include <cmath>

#include "src/core/metrics.h"
#include "src/core/te_graph.h"
#include "src/dist/delta.h"
#include "src/ml/linear.h"
#include "src/ml/scalers.h"
#include "src/util/random.h"

namespace coda {
namespace {

// --- TE-Graph combinatorics -------------------------------------------------

class GraphShapeProperty
    : public ::testing::TestWithParam<std::vector<std::size_t>> {};

TEST_P(GraphShapeProperty, PathCountIsProductOfStageSizes) {
  const auto shape = GetParam();
  TEGraph g;
  std::size_t expected = 1;
  std::size_t node_id = 0;
  for (std::size_t s = 0; s < shape.size(); ++s) {
    std::vector<StageOption> options;
    const bool terminal = s + 1 == shape.size();
    for (std::size_t o = 0; o < shape[s]; ++o) {
      if (terminal) {
        auto model = std::make_unique<LinearRegression>();
        model->set_name("m" + std::to_string(node_id++));
        options.push_back(make_option(std::move(model)));
      } else {
        auto t = std::make_unique<NoOp>();
        t->set_name("t" + std::to_string(node_id++));
        options.push_back(make_option(std::move(t)));
      }
    }
    g.add_stage("stage" + std::to_string(s), std::move(options));
    expected *= shape[s];
  }
  EXPECT_EQ(g.count_paths(), expected);
  EXPECT_EQ(g.enumerate_candidates().size(), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GraphShapeProperty,
    ::testing::Values(std::vector<std::size_t>{1},
                      std::vector<std::size_t>{3},
                      std::vector<std::size_t>{2, 2},
                      std::vector<std::size_t>{4, 3, 3},   // Fig 3
                      std::vector<std::size_t>{2, 3, 4, 2},
                      std::vector<std::size_t>{1, 1, 1, 1, 5}));

// --- Metric algebra -----------------------------------------------------------

TEST(MetricProperties, RmseAndMaeScaleEquivariant) {
  Rng rng(91);
  std::vector<double> t(60), p(60), t2(60), p2(60);
  for (std::size_t i = 0; i < 60; ++i) {
    t[i] = rng.normal();
    p[i] = rng.normal();
    t2[i] = 3.5 * t[i];
    p2[i] = 3.5 * p[i];
  }
  EXPECT_NEAR(rmse(t2, p2), 3.5 * rmse(t, p), 1e-9);
  EXPECT_NEAR(mae(t2, p2), 3.5 * mae(t, p), 1e-9);
}

TEST(MetricProperties, ErrorsTranslationInvariant) {
  Rng rng(92);
  std::vector<double> t(60), p(60), t2(60), p2(60);
  for (std::size_t i = 0; i < 60; ++i) {
    t[i] = rng.normal();
    p[i] = rng.normal();
    t2[i] = t[i] + 100.0;
    p2[i] = p[i] + 100.0;
  }
  EXPECT_NEAR(rmse(t2, p2), rmse(t, p), 1e-9);
  EXPECT_NEAR(mae(t2, p2), mae(t, p), 1e-9);
  EXPECT_NEAR(median_absolute_error(t2, p2), median_absolute_error(t, p),
              1e-9);
}

TEST(MetricProperties, R2InvariantUnderAffineTargetMaps) {
  // R² compares against the mean predictor, so jointly rescaling/shifting
  // truth and prediction leaves it unchanged.
  Rng rng(93);
  std::vector<double> t(80), p(80), t2(80), p2(80);
  for (std::size_t i = 0; i < 80; ++i) {
    t[i] = rng.normal();
    p[i] = t[i] + rng.normal(0.0, 0.3);
    t2[i] = -2.0 * t[i] + 7.0;
    p2[i] = -2.0 * p[i] + 7.0;
  }
  EXPECT_NEAR(r2(t2, p2), r2(t, p), 1e-9);
}

TEST(MetricProperties, AucInvariantUnderMonotoneScoreMaps) {
  Rng rng(94);
  std::vector<double> t(100), s(100), s2(100);
  for (std::size_t i = 0; i < 100; ++i) {
    t[i] = rng.bernoulli(0.4) ? 1.0 : 0.0;
    s[i] = rng.uniform();
    s2[i] = std::tanh(3.0 * s[i]);  // strictly increasing map
  }
  EXPECT_NEAR(auc(t, s2), auc(t, s), 1e-12);
}

TEST(MetricProperties, MseIsSquaredRmse) {
  Rng rng(95);
  std::vector<double> t(40), p(40);
  for (std::size_t i = 0; i < 40; ++i) {
    t[i] = rng.normal();
    p[i] = rng.normal();
  }
  EXPECT_NEAR(mse(t, p), rmse(t, p) * rmse(t, p), 1e-12);
}

// --- Delta codec on structured (adversarial) content ------------------------

using dist::apply_delta;
using dist::compute_delta;

TEST(DeltaProperties, AllZerosCompressesToNearNothing) {
  const Bytes base(8192, 0);
  Bytes target(8192, 0);
  target[4000] = 1;
  const auto d = compute_delta(base, target);
  EXPECT_EQ(apply_delta(base, d), target);
  EXPECT_LT(d.encoded_size(), 512u);
}

TEST(DeltaProperties, PeriodicContentRoundTrips) {
  // Highly repetitive content gives the block index many collisions; the
  // codec must still reconstruct exactly.
  Bytes base(4096);
  for (std::size_t i = 0; i < base.size(); ++i) {
    base[i] = static_cast<std::uint8_t>(i % 7);
  }
  Bytes target = base;
  target.erase(target.begin() + 1000, target.begin() + 1100);  // deletion
  const auto d = compute_delta(base, target);
  EXPECT_EQ(apply_delta(base, d), target);
}

TEST(DeltaProperties, ReversedContentFallsBackGracefully) {
  Rng rng(96);
  Bytes base(4096);
  for (auto& b : base) {
    b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  Bytes target(base.rbegin(), base.rend());
  const auto d = compute_delta(base, target);
  EXPECT_EQ(apply_delta(base, d), target);  // correctness over compression
}

TEST(DeltaProperties, ConcatenationOfBaseWithItself) {
  Rng rng(97);
  Bytes base(2048);
  for (auto& b : base) {
    b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  Bytes target = base;
  target.insert(target.end(), base.begin(), base.end());
  const auto d = compute_delta(base, target);
  EXPECT_EQ(apply_delta(base, d), target);
  // Doubling should cost ~two COPY ops, not literals.
  EXPECT_LT(d.encoded_size(), base.size() / 2);
}

// --- Scaler idempotence -------------------------------------------------------

TEST(ScalerProperties, StandardScalingIsIdempotent) {
  Rng rng(98);
  Matrix X(100, 3);
  for (double& v : X.data()) v = rng.normal(5.0, 3.0);
  StandardScaler first;
  const Matrix once = first.fit_transform(X, {});
  StandardScaler second;
  const Matrix twice = second.fit_transform(once, {});
  for (std::size_t i = 0; i < once.size(); ++i) {
    EXPECT_NEAR(twice.data()[i], once.data()[i], 1e-9);
  }
}

TEST(ScalerProperties, MinMaxIsIdempotent) {
  Rng rng(99);
  Matrix X(100, 2);
  for (double& v : X.data()) v = rng.uniform(-10.0, 50.0);
  MinMaxScaler first;
  const Matrix once = first.fit_transform(X, {});
  MinMaxScaler second;
  const Matrix twice = second.fit_transform(once, {});
  for (std::size_t i = 0; i < once.size(); ++i) {
    EXPECT_NEAR(twice.data()[i], once.data()[i], 1e-12);
  }
}

}  // namespace
}  // namespace coda
