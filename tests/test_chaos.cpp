// Deterministic chaos suite (ctest label `chaos`): cooperative Fig-3 and
// Fig-11 graph searches driven through seeded fault schedules. Each test
// wraps its assertions in SCOPED_TRACE(schedule.describe()), so a failure
// under `ctest -L chaos` prints the exact fault schedule to replay.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <future>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/core/kernels.h"
#include "src/data/synthetic.h"
#include "src/dist/client_cache.h"
#include "src/dist/home_store.h"
#include "src/dist/remote_service.h"
#include "src/dist/replication.h"
#include "src/dist/retry.h"
#include "src/dist/telemetry.h"
#include "src/ml/decision_tree.h"
#include "src/ml/knn.h"
#include "src/ml/linear.h"
#include "src/ml/scalers.h"
#include "src/obs/obs.h"
#include "src/templates/anomaly.h"
#include "src/templates/cohort.h"
#include "src/templates/failure_prediction.h"
#include "src/templates/root_cause.h"
#include "src/ts/forecasters.h"
#include "src/util/thread_pool.h"
#include "src/util/timer_wheel.h"
#include "tests/chaos_harness.h"

namespace coda {
namespace {

using chaos::ChaosRun;
using chaos::ChaosSchedule;

// Dumps the fault schedule plus the flight-recorder tail (every injected
// fault, retry give-up, degradation and lease expiry leading up to the
// failure) when the enclosing test fails, so a chaos failure can be
// reconstructed from the log without re-running the schedule.
class FlightRecorderOnFailure {
 public:
  explicit FlightRecorderOnFailure(ChaosSchedule schedule)
      : schedule_(std::move(schedule)) {}
  ~FlightRecorderOnFailure() {
    if (::testing::Test::HasFailure()) {
      std::fprintf(stderr, "%s",
                   chaos::flight_recorder_report(schedule_).c_str());
    }
  }

 private:
  ChaosSchedule schedule_;
};

// ---------------------------------------------------------------------------
// Fig-3 workload: the 9-candidate tabular graph from the cooperative tests.

Dataset tabular_dataset() {
  RegressionConfig cfg;
  cfg.n_samples = 150;
  cfg.n_features = 5;
  cfg.n_informative = 4;
  return make_regression(cfg);
}

TEGraph tabular_graph() {
  TEGraph g;
  std::vector<std::unique_ptr<Transformer>> scalers;
  scalers.push_back(std::make_unique<StandardScaler>());
  scalers.push_back(std::make_unique<RobustScaler>());
  scalers.push_back(std::make_unique<NoOp>());
  g.add_feature_scalers(std::move(scalers));
  std::vector<std::unique_ptr<Estimator>> models;
  models.push_back(std::make_unique<LinearRegression>());
  models.push_back(std::make_unique<DecisionTreeRegressor>());
  models.push_back(std::make_unique<KnnRegressor>());
  g.add_regression_models(std::move(models));
  return g;  // 9 candidates
}

ChaosRun run_tabular(const Dataset& data, std::size_t n_clients,
                     const ChaosSchedule& schedule) {
  return chaos::run_chaos_search(tabular_graph(), data, KFold(3),
                                 Metric::kRmse, n_clients, schedule);
}

// ---------------------------------------------------------------------------
// Fig-11 workload: a small forecast graph over the cheap statistical
// models (2 scalers x {TS-as-is -> Zero, CascadedWindows -> AR} = 4 paths).

TimeSeries forecast_series() {
  IndustrialSeriesConfig cfg;
  cfg.n_variables = 2;
  cfg.length = 200;
  return make_industrial_series(cfg);
}

ts::ForecastGraph forecast_graph() {
  ts::ForecastSpec spec;
  spec.history = 8;
  ts::ForecastGraph g(spec);
  g.add_scaler(std::make_unique<StandardScaler>());
  g.add_scaler(std::make_unique<NoOp>());
  g.add_windower(std::make_unique<ts::TsAsIs>(), "stat");
  g.add_windower(std::make_unique<ts::CascadedWindows>(), "temporal");
  g.add_model(std::make_unique<ts::ZeroModel>(), "stat");
  g.add_model(std::make_unique<ts::ArModel>(), "temporal");
  return g;  // 4 candidates
}

ChaosRun run_forecast(const TimeSeries& series, std::size_t n_clients,
                      const ChaosSchedule& schedule) {
  return chaos::run_chaos_forecast_search(
      forecast_graph(), series, TimeSeriesSlidingSplit(2, 100, 30, 5),
      Metric::kRmse, n_clients, schedule);
}

// Per-candidate scores keyed by spec, for comparing a chaos run against
// the fault-free baseline (candidate completion order varies per client).
std::map<std::string, double> scores_by_spec(const EvaluationReport& r) {
  std::map<std::string, double> out;
  for (const auto& c : r.results) out[c.spec] = c.mean_score;
  return out;
}

// Invariant (a): the run completed everywhere and agrees bit-for-bit with
// the fault-free baseline — same candidates, same scores, same winner.
void expect_matches_baseline(const ChaosRun& run,
                             const EvaluationReport& baseline) {
  const auto expected = scores_by_spec(baseline);
  for (const auto& report : run.reports) {
    ASSERT_EQ(report.results.size(), baseline.results.size());
    for (const auto& c : report.results) {
      EXPECT_FALSE(c.failed) << c.spec << ": " << c.failure_message;
      const auto it = expected.find(c.spec);
      ASSERT_NE(it, expected.end()) << "unknown candidate " << c.spec;
      EXPECT_DOUBLE_EQ(c.mean_score, it->second) << c.spec;
    }
    EXPECT_EQ(report.best().spec, baseline.best().spec);
    EXPECT_DOUBLE_EQ(report.best().mean_score, baseline.best().mean_score);
  }
}

// Invariant (b) for transient schedules: claims still partition the
// candidate space exactly — no client recomputed another's work.
void expect_zero_redundancy(const ChaosRun& run) {
  EXPECT_EQ(run.total_local_evaluations, run.total_candidates);
  EXPECT_EQ(run.redundant_evaluations, 0u);
  EXPECT_EQ(run.repository_counters.stores, run.total_candidates);
  EXPECT_EQ(run.repository_counters.claims_expired, 0u);
  for (const auto& report : run.reports) {
    EXPECT_EQ(report.evaluated_locally + report.served_from_cache,
              run.total_candidates);
  }
}

// The seeded schedules of the acceptance sweep: heavy drops, spikes, a
// transient repo partition, and a transient client crash — each within
// what the chaos retry budget (~8.5s of logical backoff) can absorb.
std::vector<ChaosSchedule> transient_schedules() {
  std::vector<ChaosSchedule> schedules;
  for (std::uint64_t seed : {101, 202, 303}) {
    ChaosSchedule s;
    s.seed = seed;
    s.drop_probability = 0.3;
    s.latency_spike_probability = 0.2;
    schedules.push_back(s);
  }
  {
    ChaosSchedule s;
    s.seed = 404;
    s.drop_probability = 0.1;
    s.partitioned_client = 1;
    s.partition_start = 0.0;
    s.partition_end = 1.0;
    schedules.push_back(s);
  }
  {
    ChaosSchedule s;
    s.seed = 505;
    s.drop_probability = 0.1;
    s.crashed_client = 2;
    s.crash_start = 0.0;
    s.crash_end = 1.2;
    schedules.push_back(s);
  }
  return schedules;
}

TEST(Chaos, Fig3SearchSurvivesSeededSchedules) {
  const Dataset data = tabular_dataset();
  const ChaosRun baseline = run_tabular(data, 3, ChaosSchedule{});
  ASSERT_EQ(baseline.fault_stats.dropped, 0u);
  expect_zero_redundancy(baseline);

  for (const auto& schedule : transient_schedules()) {
    SCOPED_TRACE(schedule.describe());
    const FlightRecorderOnFailure flight(schedule);
    const ChaosRun run = run_tabular(data, 3, schedule);
    if (schedule.drop_probability > 0.0) {
      EXPECT_GT(run.fault_stats.dropped, 0u);  // faults actually fired
    }
    expect_matches_baseline(run, baseline.reports[0]);
    expect_zero_redundancy(run);
  }
}

TEST(Chaos, Fig11ForecastSearchSurvivesSeededSchedules) {
  const TimeSeries series = forecast_series();
  const ChaosRun baseline = run_forecast(series, 3, ChaosSchedule{});
  ASSERT_EQ(baseline.total_candidates, 4u);
  expect_zero_redundancy(baseline);

  for (const auto& schedule : transient_schedules()) {
    SCOPED_TRACE(schedule.describe());
    const FlightRecorderOnFailure flight(schedule);
    const ChaosRun run = run_forecast(series, 3, schedule);
    expect_matches_baseline(run, baseline.reports[0]);
    expect_zero_redundancy(run);
  }
}

// ---------------------------------------------------------------------------
// Sharded repository tier (DESIGN.md §13): shard crashes and lease
// migration under the chaos fault model.

// Invariant (b) shaped for a sharded tier: claims still partition the
// candidate space, but stores land once per *owner* (replication), so the
// single-node stores == candidates identity does not apply.
void expect_zero_redundancy_sharded(const ChaosRun& run) {
  EXPECT_EQ(run.total_local_evaluations, run.total_candidates);
  EXPECT_EQ(run.redundant_evaluations, 0u);
  for (const auto& report : run.reports) {
    EXPECT_EQ(report.evaluated_locally + report.served_from_cache,
              run.total_candidates);
  }
}

TEST(Chaos, ShardCrashMidClaimMigratesLeaseToReplica) {
  // Two shards at replication factor 2: every key is owned by both, so
  // the surviving shard serves every key after the crash and every
  // replica sync toward the dead one fails (counted, never hung).
  ChaosSchedule schedule;
  schedule.n_shards = 2;
  schedule.replication = 2;
  SCOPED_TRACE(schedule.describe());
  const FlightRecorderOnFailure flight(schedule);
  chaos::ChaosFabric fabric(2, schedule);
  ASSERT_NE(fabric.cluster, nullptr);
  auto& holder = *fabric.clients[0];
  auto& peer = *fabric.clients[1];

  // The claim lands on the serving owner and replicates to the other.
  ASSERT_TRUE(holder.claim("k"));
  ASSERT_EQ(fabric.cluster->sync_stats().failed_syncs, 0u);

  // Crash the serving owner mid-claim: ownership migrates — the replica
  // already holds the lease and defends it in place.
  const auto owners = fabric.cluster->owners("k");
  fabric.net.crash_node(fabric.cluster->node(owners[0]), fabric.net.now(),
                        1e9);
  EXPECT_FALSE(peer.claim("k"));

  // The holder finishes its computation against the surviving owner...
  CachedResult result;
  result.mean_score = 0.5;
  result.explanation = "spec";
  holder.put("k", result);
  EXPECT_TRUE(holder.held_claims().empty());
  // ...and the peer reads the result from the replica that took over.
  const auto hit = peer.fetch("k");
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(hit->mean_score, 0.5);
  // The record sync toward the crashed owner was counted as failed.
  EXPECT_GE(fabric.cluster->sync_stats().failed_syncs, 1u);
}

TEST(Chaos, ShardedFig11SearchSurvivesAShardCrash) {
  const TimeSeries series = forecast_series();
  const ChaosRun baseline = run_forecast(series, 3, ChaosSchedule{});

  // Fault-free sharded run first: same best pipeline as the single-node
  // topology, zero redundancy, every record on both owners.
  {
    ChaosSchedule schedule;
    schedule.seed = 606;
    schedule.n_shards = 2;
    schedule.replication = 2;
    SCOPED_TRACE(schedule.describe());
    const FlightRecorderOnFailure flight(schedule);
    const ChaosRun run = run_forecast(series, 3, schedule);
    expect_matches_baseline(run, baseline.reports[0]);
    expect_zero_redundancy_sharded(run);
    EXPECT_EQ(run.sync_stats.failed_syncs, 0u);
    EXPECT_EQ(run.repository_counters.stores, 2 * run.total_candidates);
  }

  // Now crash shard 0 for the whole run: the surviving shard serves the
  // entire keyspace, the best pipeline is unchanged, cooperation stays
  // exact, and the lost replica syncs are accounted.
  {
    ChaosSchedule schedule;
    schedule.seed = 707;
    schedule.drop_probability = 0.1;
    schedule.n_shards = 2;
    schedule.replication = 2;
    schedule.crashed_shard = 0;
    schedule.shard_crash_start = 0.0;
    schedule.shard_crash_end = 1e9;
    SCOPED_TRACE(schedule.describe());
    const FlightRecorderOnFailure flight(schedule);
    const ChaosRun run = run_forecast(series, 3, schedule);
    expect_matches_baseline(run, baseline.reports[0]);
    expect_zero_redundancy_sharded(run);
    EXPECT_GT(run.sync_stats.failed_syncs, 0u);
    // Every store landed exactly once — on the surviving owner.
    EXPECT_EQ(run.repository_counters.stores, run.total_candidates);
  }
}

TEST(Chaos, ShardedGoldenMetricKeysStayPinned) {
  // A sharded run must keep exporting the pinned fault-metric names that
  // tests/golden/metrics_keys.txt contracts (the golden-file test below
  // checks membership; this one proves the sharded path exercises them).
  ChaosSchedule schedule;
  schedule.n_shards = 2;
  schedule.replication = 2;
  schedule.crashed_shard = 1;
  schedule.shard_crash_start = 0.0;
  schedule.shard_crash_end = 1e9;
  SCOPED_TRACE(schedule.describe());
  chaos::ChaosFabric fabric(1, schedule);
  ASSERT_TRUE(fabric.clients[0]->claim("pinned"));
  fabric.clients[0]->abandon_all();  // -> darr.client.claims_abandoned

  std::set<std::string> registered;
  for (const auto& [name, value] :
       obs::MetricsRegistry::instance().counter_values()) {
    (void)value;
    registered.insert(name);
  }
  EXPECT_TRUE(registered.count("replication.failed_syncs"));
  EXPECT_TRUE(registered.count("darr.client.claims_abandoned"));
}

TEST(Chaos, AbandonAllCountsEachFreedClaimExactlyOnce) {
  // Exactly-once accounting for darr.client.claims_abandoned: a release
  // whose response leg dies past the retry budget has still freed the
  // claim store-side (wire.applied) and must count once; a release that
  // only succeeds on a later abandon_all pass must not count again. The
  // invariant ties the counter to ground truth: freed = held before -
  // held after.
  const auto& abandoned = obs::counter("darr.client.claims_abandoned");
  for (std::uint64_t seed = 0; seed < 48; ++seed) {
    ChaosSchedule schedule;
    schedule.seed = 1300 + seed;
    schedule.drop_probability = 0.8;
    SCOPED_TRACE(schedule.describe());
    chaos::ChaosFabric fabric(1, schedule);
    auto& client = *fabric.clients[0];
    for (int k = 0; k < 6; ++k) {
      try {
        client.claim("exactly_once_" + std::to_string(seed) + "_" +
                     std::to_string(k));
      } catch (const NetworkError&) {
        // Lost claim responses are tracked via wire.applied; either way
        // held_claims() below is the ground truth.
      }
    }
    const std::size_t held_before = client.held_claims().size();
    const std::uint64_t count_before = abandoned.value();
    client.abandon_all();
    const std::size_t held_after = client.held_claims().size();
    EXPECT_EQ(abandoned.value() - count_before, held_before - held_after);
  }
}

TEST(Chaos, SameScheduleReplaysIdenticalFaultDecisions) {
  // The per-link fault stream is a pure function of (seed, link, message
  // index): replaying one client's message sequence against two fabrics
  // built from the same schedule yields identical outcomes.
  ChaosSchedule schedule;
  schedule.seed = 909;
  schedule.drop_probability = 0.3;
  SCOPED_TRACE(schedule.describe());
  auto outcomes = [&](chaos::ChaosFabric& fabric) {
    std::vector<bool> out;
    for (int i = 0; i < 100; ++i) {
      out.push_back(
          fabric.net.transfer(fabric.client_nodes[0], fabric.repo_node, 64)
              .ok());
    }
    return out;
  };
  chaos::ChaosFabric first(2, schedule);
  chaos::ChaosFabric second(2, schedule);
  EXPECT_EQ(outcomes(first), outcomes(second));
}

TEST(Chaos, PermanentPartitionDegradesToLocalEvaluation) {
  // Client 0 can never reach the repository: after one give-up it must
  // switch to pure local evaluation (sticky degradation), still finish
  // with correct results, and leave the other clients cooperating.
  ChaosSchedule schedule;
  schedule.seed = 606;
  schedule.partitioned_client = 0;
  schedule.partition_start = 0.0;
  schedule.partition_end = 1e9;  // never heals
  SCOPED_TRACE(schedule.describe());
  const FlightRecorderOnFailure flight(schedule);

  const auto degraded_before = obs::counter("eval.darr_degraded").value();
  const auto gave_up_before = obs::counter("retry.gave_up").value();

  const Dataset data = tabular_dataset();
  const ChaosRun baseline = run_tabular(data, 1, ChaosSchedule{});
  const ChaosRun run = run_tabular(data, 3, schedule);

  EXPECT_GT(obs::counter("retry.gave_up").value(), gave_up_before);
  EXPECT_GT(obs::counter("eval.darr_degraded").value(), degraded_before);

  // Everyone still produced the full, correct report.
  expect_matches_baseline(run, baseline.reports[0]);

  // The degraded client computed everything itself; the connected pair
  // split the space cooperatively. Work is duplicated exactly once.
  EXPECT_EQ(run.reports[0].evaluated_locally, run.total_candidates);
  EXPECT_EQ(run.reports[0].served_from_cache, 0u);
  EXPECT_EQ(run.redundant_evaluations, run.total_candidates);
  EXPECT_EQ(run.repository_counters.stores, run.total_candidates);
  EXPECT_GT(run.fault_stats.partitioned, 0u);
}

TEST(Chaos, FlightRecorderReportCapturesScheduleAndDegradation) {
  // The failure report a chaos test prints must be reconstructable: the
  // replayable schedule line followed by the recorded fault, give-up and
  // degradation events, attributed to the node that hit them.
  obs::EventLog::instance().clear();
  ChaosSchedule schedule;
  schedule.seed = 808;
  schedule.partitioned_client = 0;
  schedule.partition_start = 0.0;
  schedule.partition_end = 1e9;  // never heals: client0 must degrade
  run_tabular(tabular_dataset(), 2, schedule);

  const std::string report = chaos::flight_recorder_report(schedule, 256);
  EXPECT_NE(report.find("fault schedule: ChaosSchedule{seed=808"),
            std::string::npos);
  EXPECT_NE(report.find("flight recorder:"), std::string::npos);
  EXPECT_NE(report.find("net.fault.partitioned"), std::string::npos);
  EXPECT_NE(report.find("retry.gave_up"), std::string::npos);
  EXPECT_NE(report.find("eval.darr_degraded"), std::string::npos);
  EXPECT_NE(report.find("node=client0"), std::string::npos);
}

TEST(Chaos, CrashedClientsClaimsAreReclaimableByPeers) {
  chaos::ChaosFabric fabric(2, ChaosSchedule{});
  auto& crashed = *fabric.clients[0];
  auto& peer = *fabric.clients[1];

  ASSERT_TRUE(crashed.claim("fig3/candidate"));
  ASSERT_EQ(crashed.held_claims(),
            std::vector<std::string>{"fig3/candidate"});
  // While the claim is live, the peer is told to work on something else.
  EXPECT_FALSE(peer.claim("fig3/candidate"));

  // Crash-restart: the restarted client releases every orphaned claim
  // instead of pinning the candidate until the repository TTL fires.
  crashed.abandon_all();
  EXPECT_TRUE(crashed.held_claims().empty());
  EXPECT_TRUE(peer.claim("fig3/candidate"));
  EXPECT_EQ(fabric.repository.counters().claims_expired, 0u);
}

TEST(Chaos, AbandonAllSurvivesAnUnreachableRepository) {
  chaos::ChaosFabric fabric(2, ChaosSchedule{});
  auto& client = *fabric.clients[0];
  ASSERT_TRUE(client.claim("k"));

  // Node down forever: the release RPC exhausts its budget. The claim
  // must stay tracked so a later abandon_all() (post-restart) retries it.
  fabric.net.crash_node(fabric.client_nodes[0], fabric.net.now(), 1e9);
  client.abandon_all();
  EXPECT_EQ(client.held_claims(), std::vector<std::string>{"k"});

  fabric.net.restart_node(fabric.client_nodes[0]);
  client.abandon_all();
  EXPECT_TRUE(client.held_claims().empty());
  EXPECT_TRUE(fabric.clients[1]->claim("k"));
}

TEST(Chaos, RemoteServiceStatsAreRaceFree) {
  // Satellite: concurrent fit/predict through RemoteEstimators must not
  // race on the service's call accounting (run under the tsan label).
  dist::SimNet net;
  const dist::NodeId svc_node = net.add_node("svc");
  dist::RemoteModelService service(&net, svc_node,
                                   std::make_unique<LinearRegression>());
  RegressionConfig cfg;
  cfg.n_samples = 60;
  cfg.n_features = 3;
  cfg.n_informative = 3;
  const Dataset data = make_regression(cfg);

  constexpr int kCallers = 4;
  std::vector<std::thread> threads;
  for (int i = 0; i < kCallers; ++i) {
    threads.emplace_back([&, i] {
      const dist::NodeId me =
          net.add_node("caller" + std::to_string(i));
      dist::RemoteEstimator estimator(&service, me);
      estimator.fit(data.X, data.y);
      const auto predictions = estimator.predict(data.X);
      EXPECT_EQ(predictions.size(), data.X.rows());
    });
  }
  for (auto& t : threads) t.join();

  const auto stats = service.stats();
  EXPECT_EQ(stats.fit_calls, static_cast<std::size_t>(kCallers));
  EXPECT_EQ(stats.predict_calls, static_cast<std::size_t>(kCallers));
  EXPECT_GT(stats.bytes_in, 0u);
  EXPECT_GT(stats.bytes_out, 0u);
}

// SLO checks evaluate on a chaos run (DESIGN.md §12): after a lossy
// cooperative search, declarative thresholds over the fault/retry and
// evaluator families are checkable against the registry the run wrote.
TEST(Chaos, SloChecksEvaluateOnAChaosRun) {
  obs::reset_all();
  const Dataset data = tabular_dataset();
  ChaosSchedule schedule;
  schedule.seed = 21;
  schedule.drop_probability = 0.3;
  SCOPED_TRACE(schedule.describe());
  const FlightRecorderOnFailure recorder(schedule);
  const ChaosRun run = run_tabular(data, 2, schedule);
  EXPECT_GT(run.fault_stats.dropped, 0u);

  auto& slos = obs::global_slos();
  slos.add("net.fault.dropped value >= 1");     // faults were injected
  slos.add("retry.attempts value >= 1");        // and absorbed by retries
  slos.add("retry.gave_up value <= 0");         // without exhausting budgets
  slos.add("evaluator.candidate.seconds p99 < 60");
  const auto results = slos.evaluate();
  slos.clear();

  std::size_t evaluable = 0;
  for (const auto& r : results) {
    if (r.evaluable) {
      ++evaluable;
      EXPECT_TRUE(r.pass) << r.spec.text << " observed " << r.observed;
    }
  }
  EXPECT_GE(evaluable, 3u);
  EXPECT_GE(obs::counter("slo.evaluations").value(), evaluable);
}

// ---------------------------------------------------------------------------
// Golden-file satellite: the fault/retry metric names are a contract.

// Deterministically fires each event-registered fault metric so its name
// appears in the registry regardless of which tests ran before.
void exercise_fault_metrics() {
  RetryPolicy tiny;
  tiny.max_attempts = 2;
  tiny.initial_backoff_seconds = 0.01;
  tiny.deadline_seconds = 1.0;

  {  // retry.gave_up + eval.darr_degraded + net.fault.partitioned
    ChaosSchedule schedule;
    schedule.seed = 7;
    schedule.partitioned_client = 0;
    schedule.partition_start = 0.0;
    schedule.partition_end = 1e9;
    run_tabular(tabular_dataset(), 1, schedule);
  }
  {  // net.fault.dropped + retry.attempts
    dist::SimNet net;
    const auto a = net.add_node("a");
    const auto b = net.add_node("b");
    dist::SimNet::FaultConfig faults;
    faults.drop_probability = 0.5;
    net.set_faults(faults);
    for (int i = 0; i < 32; ++i) {
      try {
        dist::transfer_with_retry(net, a, b, 8, tiny, "golden");
      } catch (const NetworkError&) {
      }
    }
  }
  {  // darr.client.claims_abandoned
    chaos::ChaosFabric fabric(1, ChaosSchedule{});
    ASSERT_TRUE(fabric.clients[0]->claim("golden"));
    fabric.clients[0]->abandon_all();
  }
  {  // homestore.push.lost: store -> subscriber link is dead forever
    dist::SimNet net;
    const auto store_node = net.add_node("store");
    const auto client_node = net.add_node("client");
    dist::HomeDataStore::Config cfg;
    cfg.retry = tiny;
    dist::HomeDataStore store(&net, store_node, cfg);
    store.set_push_handler([](dist::NodeId, const dist::PushMessage&) {});
    store.subscribe("k", client_node, 1e9, dist::PushMode::kFullValue);
    net.partition(store_node, client_node, net.now(), 1e9);
    store.put("k", Bytes{1, 2, 3});
  }
  {  // clientcache.push.stale: replay of an already-applied version
    dist::SimNet net;
    const auto store_node = net.add_node("store");
    const auto client_node = net.add_node("client");
    dist::HomeDataStore store(&net, store_node);
    dist::ClientCache cache(&net, client_node, &store);
    store.put("k", Bytes{1});
    cache.get("k");
    dist::PushMessage stale;
    stale.key = "k";
    stale.version = cache.version("k");  // at the held version: a replay
    stale.mode = dist::PushMode::kFullValue;
    stale.full_value = Bytes{9};
    cache.on_push(stale);
  }
  {  // replication.failed_syncs: primary -> replica link is dead
    dist::SimNet net;
    const auto primary = net.add_node("primary");
    const auto replica = net.add_node("replica");
    dist::ReplicatedStore::Config cfg;
    cfg.store.retry = tiny;
    dist::ReplicatedStore group(&net, {primary, replica}, cfg);
    net.partition(primary, replica, net.now(), 1e9);
    group.put("k", Bytes{1, 2, 3});
  }
  {  // telemetry.reports.sent/failed + telemetry.bytes.sent +
     // telemetry.reports.ingested: one reporter flush over a clean link
    dist::SimNet net;
    const auto src = net.add_node("golden-src");
    const auto sink_node = net.add_node("telemetry");
    auto& shard = obs::MetricScope::for_node("golden-src");
    shard.counter("golden.telemetry").inc();
    obs::TelemetryCollector collector;
    dist::TelemetryReporter reporter(&net, src, sink_node, &collector,
                                     &shard.registry(), "golden-src", tiny);
    reporter.flush();
  }
  {  // slo.evaluations + slo.violations: any evaluation registers them
    auto& slos = obs::global_slos();
    slos.add("retry.attempts value >= 0");
    slos.evaluate();
    slos.clear();
  }
  {  // kernel.gemm.calls + kernel.gemm.flops: any matmul registers them
    Matrix a(2, 3);
    Matrix b(3, 2);
    a.fill(1.0);
    b.fill(1.0);
    (void)kernels::matmul(a, b);
  }
  {  // eval.search.rungs + eval.search.pruned +
     // eval.search.fold_evals_saved: one tiny halving race (9 candidates,
     // eta=2 seals two pruning rungs before the final full-CV rung)
    SearchOptions halving;
    halving.strategy = SearchStrategy::kHalving;
    chaos::run_chaos_search(tabular_graph(), tabular_dataset(), KFold(3),
                            Metric::kRmse, 1, ChaosSchedule{}, halving);
  }
  {  // pool.tasks / timerwheel.scheduled+fired / prof.scopes: executor and
     // profiler instrumentation (ISSUE 9)
    ThreadPool pool(1);
    pool.submit([] { PROF_SCOPE("golden.prof.region"); }).get();
    TimerWheel wheel;
    std::promise<void> fired;
    wheel.schedule(std::chrono::milliseconds(1),
                   [&fired] { fired.set_value(); });
    fired.get_future().wait();
  }
}

TEST(Chaos, FaultMetricNamesMatchGoldenFile) {
  exercise_fault_metrics();

  const std::string path =
      std::string(CODA_GOLDEN_DIR) + "/metrics_keys.txt";
  std::ifstream golden(path);
  ASSERT_TRUE(golden.is_open()) << "missing golden file: " << path;
  std::set<std::string> expected;
  std::string line;
  while (std::getline(golden, line)) {
    if (!line.empty() && line[0] != '#') expected.insert(line);
  }
  ASSERT_FALSE(expected.empty());

  std::set<std::string> registered;
  for (const auto& [name, value] :
       obs::MetricsRegistry::instance().counter_values()) {
    (void)value;
    registered.insert(name);
  }

  // Every contracted name must exist...
  for (const auto& name : expected) {
    EXPECT_TRUE(registered.count(name))
        << "golden metric not registered: " << name;
  }
  // ...and the fixed fault/retry/executor families must not grow or get
  // renamed without the golden file (and README) being updated.
  // Instance-scoped (`#`) and per-op (`eval.darr_degraded.<op>`) names
  // are excluded: their membership depends on how many instances/ops a
  // run touches. The per-region `prof.<region>.*` counters are likewise
  // NOT a strict family — region names are defined at PROF_SCOPE call
  // sites and grow with instrumentation; only the fixed `prof.scopes`
  // counter is contracted.
  const std::vector<std::string> families = {"net.fault.", "retry.",
                                             "pool.", "timerwheel."};
  for (const auto& name : registered) {
    if (name.find('#') != std::string::npos) continue;
    for (const auto& family : families) {
      if (name.rfind(family, 0) == 0) {
        EXPECT_TRUE(expected.count(name))
            << "metric missing from golden file: " << name;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Successive-halving chaos (DESIGN.md §16): the rung scheduler racing the
// golden-seed graphs across a cooperative fleet. Identity invariant: the
// halving fleet selects the exact best pipeline the exhaustive fault-free
// run selects. Redundancy invariant: the fleet computes exactly the rung
// plan's fold total — every (candidate, rung) unit runs on one client.

SearchOptions halving_search(std::size_t eta = 2, std::uint64_t seed = 0) {
  SearchOptions search;
  search.strategy = SearchStrategy::kHalving;
  search.eta = eta;
  search.seed = seed;
  return search;
}

// The fold-level zero-redundancy invariant. Candidate-level
// `redundant_evaluations` does not apply to halving: one candidate's rungs
// may legitimately split across clients.
void expect_zero_fold_redundancy(const ChaosRun& run) {
  ASSERT_GT(run.fold_evaluations_planned, 0u);
  EXPECT_EQ(run.total_fold_evaluations, run.fold_evaluations_planned);
}

// Identity against the exhaustive baseline: every client of the halving
// fleet reports the same winner with its bit-identical full-CV score.
void expect_same_best(const ChaosRun& run, const EvaluationReport& baseline) {
  for (const auto& report : run.reports) {
    ASSERT_FALSE(report.results.empty());
    EXPECT_EQ(report.best().spec, baseline.best().spec);
    EXPECT_DOUBLE_EQ(report.best().mean_score, baseline.best().mean_score);
    EXPECT_EQ(report.best().fold_scores, baseline.best().fold_scores);
  }
}

TEST(Chaos, HalvingFig3MatchesExhaustiveWithZeroFoldRedundancy) {
  const Dataset data = tabular_dataset();
  const ChaosRun exhaustive = run_tabular(data, 1, ChaosSchedule{});
  const EvaluationReport& baseline = exhaustive.reports[0];

  const ChaosRun fleet = chaos::run_chaos_search(
      tabular_graph(), data, KFold(3), Metric::kRmse, 3, ChaosSchedule{},
      halving_search());
  expect_same_best(fleet, baseline);
  expect_zero_fold_redundancy(fleet);
  // The race genuinely saves folds over candidates × folds.
  EXPECT_LT(fleet.fold_evaluations_planned, fleet.total_candidates * 3);

  for (const auto& schedule : transient_schedules()) {
    SCOPED_TRACE(schedule.describe());
    const FlightRecorderOnFailure flight(schedule);
    const ChaosRun run = chaos::run_chaos_search(
        tabular_graph(), data, KFold(3), Metric::kRmse, 3, schedule,
        halving_search());
    expect_same_best(run, baseline);
    expect_zero_fold_redundancy(run);
  }
}

TEST(Chaos, HalvingFig11MatchesExhaustiveWithZeroFoldRedundancy) {
  const TimeSeries series = forecast_series();
  const ChaosRun exhaustive = run_forecast(series, 1, ChaosSchedule{});
  const EvaluationReport& baseline = exhaustive.reports[0];
  const TimeSeriesSlidingSplit cv(2, 100, 30, 5);

  const ChaosRun fleet = chaos::run_chaos_forecast_search(
      forecast_graph(), series, cv, Metric::kRmse, 3, ChaosSchedule{},
      halving_search());
  expect_same_best(fleet, baseline);
  expect_zero_fold_redundancy(fleet);

  for (const auto& schedule : transient_schedules()) {
    SCOPED_TRACE(schedule.describe());
    const FlightRecorderOnFailure flight(schedule);
    const ChaosRun run = chaos::run_chaos_forecast_search(
        forecast_graph(), series, cv, Metric::kRmse, 3, schedule,
        halving_search());
    expect_same_best(run, baseline);
    expect_zero_fold_redundancy(run);
  }
}

TEST(Chaos, HalvingTemplateSearchesMatchExhaustiveAcrossTheFleet) {
  // The four §IV-E template search spaces over their golden-seed
  // workloads. Baseline = plain exhaustive evaluation (no fabric); the
  // halving fleet must select the identical pipeline while computing
  // exactly the rung plan's fold total.
  struct Case {
    const char* name;
    TEGraph (*graph)();
    Dataset data;
    Metric metric;
  };
  // The failure workload runs at fleet scale (2× the default sample
  // count): with only ~48 rare-failure rows the per-fold F1 of the mid
  // field is noisy enough that fold-0 ranking can cut the eventual
  // winner; at 1200 samples the golden seed's fold scores are stable and
  // the identity invariant holds.
  FailureWorkloadConfig failure_cfg;
  failure_cfg.n_samples = 1200;
  std::vector<Case> cases;
  cases.push_back({"failure_prediction",
                   &templates::FailurePredictionAnalysis::search_graph,
                   make_failure_workload(failure_cfg), Metric::kF1});
  cases.push_back({"root_cause", &templates::RootCauseAnalysis::search_graph,
                   make_regression({}), Metric::kRmse});
  cases.push_back({"anomaly", &templates::AnomalyAnalysis::search_graph,
                   make_anomaly_workload({}), Metric::kF1});
  cases.push_back({"cohort", &templates::CohortAnalysis::search_graph,
                   templates::CohortAnalysis::membership_dataset(
                       make_cohort_workload({}), 0),
                   Metric::kAccuracy});

  for (const auto& c : cases) {
    SCOPED_TRACE(c.name);
    EvalOptions options;
    options.metric = c.metric;
    options.threads = 1;
    const EvaluationReport baseline =
        GraphEvaluator(options).evaluate(c.graph(), c.data, KFold(3));

    const ChaosRun fleet = chaos::run_chaos_search(
        c.graph(), c.data, KFold(3), c.metric, 2, ChaosSchedule{},
        halving_search());
    expect_same_best(fleet, baseline);
    expect_zero_fold_redundancy(fleet);
    EXPECT_LT(fleet.fold_evaluations_planned, fleet.total_candidates * 3);
  }
}

TEST(Chaos, HalvingTemplateSearchSurvivesATransientSchedule) {
  // One heavier probe: the failure-prediction template under a seeded
  // drop/spike schedule — faults fire, and both invariants still hold.
  FailureWorkloadConfig failure_cfg;
  failure_cfg.n_samples = 1200;  // identity-stable scale (see above)
  const Dataset data = make_failure_workload(failure_cfg);
  EvalOptions options;
  options.metric = Metric::kF1;
  options.threads = 1;
  const EvaluationReport baseline = GraphEvaluator(options).evaluate(
      templates::FailurePredictionAnalysis::search_graph(), data, KFold(3));

  ChaosSchedule schedule;
  schedule.seed = 606;
  schedule.drop_probability = 0.3;
  schedule.latency_spike_probability = 0.2;
  SCOPED_TRACE(schedule.describe());
  const FlightRecorderOnFailure flight(schedule);
  const ChaosRun run = chaos::run_chaos_search(
      templates::FailurePredictionAnalysis::search_graph(), data, KFold(3),
      Metric::kF1, 3, schedule, halving_search());
  EXPECT_GT(run.fault_stats.dropped, 0u);
  expect_same_best(run, baseline);
  expect_zero_fold_redundancy(run);
}

}  // namespace
}  // namespace coda
