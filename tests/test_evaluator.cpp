// Tests for cross-validated graph evaluation: best-path selection, failure
// isolation, parallelism, and cache/claim cooperation semantics.
#include <gtest/gtest.h>

#include "src/core/evaluator.h"
#include "src/data/synthetic.h"
#include "src/ml/decision_tree.h"
#include "src/ml/linear.h"
#include "src/ml/pca.h"
#include "src/ml/scalers.h"
#include "src/obs/obs.h"

namespace coda {
namespace {

Dataset linear_dataset() {
  RegressionConfig cfg;
  cfg.n_samples = 120;
  cfg.n_features = 4;
  cfg.n_informative = 4;
  cfg.nonlinear = false;
  cfg.noise_stddev = 0.05;
  return make_regression(cfg);
}

TEGraph small_graph() {
  TEGraph g;
  std::vector<std::unique_ptr<Transformer>> scalers;
  scalers.push_back(std::make_unique<StandardScaler>());
  scalers.push_back(std::make_unique<NoOp>());
  g.add_feature_scalers(std::move(scalers));
  std::vector<std::unique_ptr<Estimator>> models;
  models.push_back(std::make_unique<LinearRegression>());
  models.push_back(std::make_unique<DecisionTreeRegressor>());
  g.add_regression_models(std::move(models));
  return g;
}

TEST(CrossValidate, ProducesFoldScores) {
  const auto d = linear_dataset();
  Pipeline p;
  p.set_estimator(std::make_unique<LinearRegression>());
  const auto result = cross_validate(p, d, KFold(5), Metric::kRmse);
  EXPECT_EQ(result.fold_scores.size(), 5u);
  EXPECT_LT(result.mean_score, 0.2);  // near-noiseless linear data
  EXPECT_GE(result.stddev, 0.0);
  EXPECT_EQ(result.explanation, "linearregression");
}

TEST(GraphEvaluator, LinearModelWinsOnLinearData) {
  const auto d = linear_dataset();
  const auto g = small_graph();
  GraphEvaluator evaluator{EvalOptions{}};
  const auto report = evaluator.evaluate(g, d, KFold(5));
  EXPECT_EQ(report.results.size(), 4u);
  EXPECT_NE(report.best().spec.find("linearregression"), std::string::npos);
  EXPECT_EQ(report.evaluated_locally, 4u);
  EXPECT_EQ(report.served_from_cache, 0u);
}

TEST(GraphEvaluator, HigherIsBetterMetricsMaximize) {
  ClassificationConfig cfg;
  cfg.n_samples = 150;
  const auto d = make_classification(cfg);
  TEGraph g;
  std::vector<std::unique_ptr<Estimator>> models;
  models.push_back(std::make_unique<LogisticRegression>());
  g.add_classification_models(std::move(models));
  EvalOptions config;
  config.metric = Metric::kAuc;
  GraphEvaluator evaluator(config);
  const auto report = evaluator.evaluate(g, d, KFold(4));
  EXPECT_GT(report.best().mean_score, 0.8);
}

TEST(GraphEvaluator, FailedCandidateIsolatedNotFatal) {
  const auto d = linear_dataset();  // 4 features
  TEGraph g;
  std::vector<StageOption> selectors;
  auto bad_pca = std::make_unique<PCA>();
  bad_pca->set_param("n_components", std::int64_t{99});  // will throw in fit
  selectors.push_back(make_option(std::move(bad_pca)));
  selectors.push_back(make_option(std::make_unique<NoOp>()));
  g.add_stage("select", std::move(selectors));
  std::vector<std::unique_ptr<Estimator>> models;
  models.push_back(std::make_unique<LinearRegression>());
  g.add_regression_models(std::move(models));

  GraphEvaluator evaluator{EvalOptions{}};
  const auto report = evaluator.evaluate(g, d, KFold(3));
  ASSERT_EQ(report.results.size(), 2u);
  std::size_t failed = 0;
  for (const auto& r : report.results) {
    if (r.failed) {
      ++failed;
      EXPECT_FALSE(r.failure_message.empty());
    }
  }
  EXPECT_EQ(failed, 1u);
  EXPECT_FALSE(report.best().failed);
}

TEST(GraphEvaluator, AllCandidatesFailedThrows) {
  const auto d = linear_dataset();
  TEGraph g;
  std::vector<StageOption> selectors;
  auto bad_pca = std::make_unique<PCA>();
  bad_pca->set_param("n_components", std::int64_t{99});
  selectors.push_back(make_option(std::move(bad_pca)));
  g.add_stage("select", std::move(selectors));
  std::vector<std::unique_ptr<Estimator>> models;
  models.push_back(std::make_unique<LinearRegression>());
  g.add_regression_models(std::move(models));
  GraphEvaluator evaluator{EvalOptions{}};
  EXPECT_THROW(evaluator.evaluate(g, d, KFold(3)), StateError);
}

TEST(GraphEvaluator, SerialAndParallelAgree) {
  const auto d = linear_dataset();
  const auto g = small_graph();
  EvalOptions serial;
  serial.threads = 1;
  EvalOptions parallel;
  parallel.threads = 4;
  const auto a = GraphEvaluator(serial).evaluate(g, d, KFold(5));
  const auto b = GraphEvaluator(parallel).evaluate(g, d, KFold(5));
  ASSERT_EQ(a.results.size(), b.results.size());
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_EQ(a.results[i].spec, b.results[i].spec);
    EXPECT_DOUBLE_EQ(a.results[i].mean_score, b.results[i].mean_score);
  }
  EXPECT_EQ(a.best().spec, b.best().spec);
}

TEST(GraphEvaluator, CacheServesSecondRun) {
  const auto d = linear_dataset();
  const auto g = small_graph();
  LocalResultCache cache;
  EvalOptions config;
  config.cache = &cache;
  GraphEvaluator evaluator(config);
  const std::uint64_t hits_before = obs::counter("darr.lookup.hit").value();
  const auto first = evaluator.evaluate(g, d, KFold(5));
  EXPECT_EQ(first.evaluated_locally, 4u);
  const auto second = evaluator.evaluate(g, d, KFold(5));
  EXPECT_EQ(second.served_from_cache, 4u);
  EXPECT_EQ(second.evaluated_locally, 0u);
  EXPECT_EQ(second.best().spec, first.best().spec);
  EXPECT_DOUBLE_EQ(second.best().mean_score, first.best().mean_score);
  // The cached re-run must show up in the registry as cooperative hits.
  EXPECT_GT(obs::counter("darr.lookup.hit").value(), hits_before);
  // Cache-served candidates report near-zero eval time (satellite fix:
  // eval_seconds no longer includes the full first-run wall time).
  for (const auto& r : second.results) {
    EXPECT_TRUE(r.from_cache);
    EXPECT_LT(r.eval_seconds, 0.5);
    EXPECT_GE(r.claim_wait_seconds, 0.0);
  }
}

TEST(GraphEvaluator, CacheKeySensitivity) {
  const auto d = linear_dataset();
  const KFold cv5(5);
  const KFold cv3(3);
  const std::string base =
      GraphEvaluator::cache_key(d, "spec", cv5, Metric::kRmse);
  EXPECT_NE(base, GraphEvaluator::cache_key(d, "spec2", cv5, Metric::kRmse));
  EXPECT_NE(base, GraphEvaluator::cache_key(d, "spec", cv3, Metric::kRmse));
  EXPECT_NE(base, GraphEvaluator::cache_key(d, "spec", cv5, Metric::kMae));
  auto d2 = d;
  d2.X(0, 0) += 1.0;
  EXPECT_NE(base, GraphEvaluator::cache_key(d2, "spec", cv5, Metric::kRmse));
  EXPECT_EQ(base, GraphEvaluator::cache_key(d, "spec", cv5, Metric::kRmse));
}

TEST(GraphEvaluator, TrainBestReturnsFittedPipeline) {
  const auto d = linear_dataset();
  const auto g = small_graph();
  GraphEvaluator evaluator{EvalOptions{}};
  Pipeline best = evaluator.train_best(g, d, KFold(5));
  EXPECT_TRUE(best.is_fitted());
  const auto pred = best.predict(d.X);
  EXPECT_LT(rmse(d.y, pred), 0.2);
}

TEST(LocalResultCache, ClaimSemantics) {
  LocalResultCache cache;
  EXPECT_TRUE(cache.claim("k"));
  EXPECT_FALSE(cache.claim("k"));  // already claimed
  cache.release("k");
  EXPECT_TRUE(cache.claim("k"));   // claim released
  CachedResult r;
  r.mean_score = 1.0;
  cache.put("k", r);
  EXPECT_TRUE(cache.claim("k"));   // stored: claim says "go look it up"
  ASSERT_TRUE(cache.fetch("k").has_value());
  EXPECT_DOUBLE_EQ(cache.fetch("k")->mean_score, 1.0);
}

TEST(EvaluationReport, BestOnEmptyThrows) {
  EvaluationReport report;
  EXPECT_THROW(report.best(), StateError);
}

}  // namespace
}  // namespace coda
