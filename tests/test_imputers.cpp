// Tests for missing-data imputation (Section II/III).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "src/data/synthetic.h"
#include "src/ml/imputers.h"

namespace coda {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

TEST(CountMissing, CountsNaNs) {
  Matrix X{{1, kNaN}, {kNaN, 4}};
  EXPECT_EQ(count_missing(X), 2u);
  EXPECT_EQ(count_missing(Matrix(3, 3)), 0u);
}

TEST(SimpleImputer, MeanStrategy) {
  Matrix X{{1, 10}, {3, kNaN}, {kNaN, 30}};
  SimpleImputer imputer;
  imputer.fit(X, {});
  const auto out = imputer.transform(X);
  EXPECT_DOUBLE_EQ(out(2, 0), 2.0);   // mean of {1,3}
  EXPECT_DOUBLE_EQ(out(1, 1), 20.0);  // mean of {10,30}
  EXPECT_EQ(count_missing(out), 0u);
}

TEST(SimpleImputer, MedianStrategy) {
  Matrix X{{1}, {2}, {100}, {kNaN}};
  SimpleImputer imputer;
  imputer.set_param("strategy", std::string("median"));
  imputer.fit(X, {});
  EXPECT_DOUBLE_EQ(imputer.transform(X)(3, 0), 2.0);
}

TEST(SimpleImputer, ModeStrategy) {
  Matrix X{{5}, {5}, {7}, {kNaN}};
  SimpleImputer imputer;
  imputer.set_param("strategy", std::string("mode"));
  imputer.fit(X, {});
  EXPECT_DOUBLE_EQ(imputer.transform(X)(3, 0), 5.0);
}

TEST(SimpleImputer, UnknownStrategyThrows) {
  SimpleImputer imputer;
  imputer.set_param("strategy", std::string("magic"));
  EXPECT_THROW(imputer.fit(Matrix(2, 1), {}), InvalidArgument);
}

TEST(SimpleImputer, FullyMissingColumnThrows) {
  Matrix X{{kNaN}, {kNaN}};
  SimpleImputer imputer;
  EXPECT_THROW(imputer.fit(X, {}), InvalidArgument);
}

TEST(SimpleImputer, TransformOnNewDataUsesTrainStats) {
  Matrix train{{2}, {4}};
  SimpleImputer imputer;
  imputer.fit(train, {});
  Matrix test{{kNaN}};
  EXPECT_DOUBLE_EQ(imputer.transform(test)(0, 0), 3.0);
}

TEST(KnnImputer, UsesNearestNeighbours) {
  // Two clusters; the missing value should come from its own cluster.
  Matrix X{
      {0.0, 0.0, 1.0},   {0.1, 0.0, 1.1},  {0.0, 0.1, 0.9},
      {10.0, 10.0, 50.0}, {10.1, 9.9, 51.0}, {9.9, 10.1, 49.0},
  };
  Matrix query{{0.05, 0.05, kNaN}};
  KnnImputer imputer;
  imputer.set_param("k", std::int64_t{3});
  imputer.fit(X, {});
  const auto out = imputer.transform(query);
  EXPECT_NEAR(out(0, 2), 1.0, 0.2);  // near-cluster values, not ~50
}

TEST(KnnImputer, FallsBackToColumnMeanWhenNoNeighbour) {
  Matrix train{{1.0, kNaN}, {3.0, kNaN}, {5.0, 7.0}};
  KnnImputer imputer;
  imputer.fit(train, {});
  // Row whose only observed column can't reach any row with col1... every
  // train row with col1 observed is row 2 -> value 7. But also test a row
  // fully missing: falls back to the column mean.
  Matrix all_missing{{kNaN, kNaN}};
  const auto out = imputer.transform(all_missing);
  EXPECT_DOUBLE_EQ(out(0, 0), 3.0);  // mean of {1,3,5}
  EXPECT_DOUBLE_EQ(out(0, 1), 7.0);  // mean of {7}
}

TEST(KnnImputer, EndToEndReducesErrorVsLeavingMissing) {
  RegressionConfig cfg;
  cfg.n_samples = 150;
  cfg.n_features = 5;
  cfg.n_informative = 3;
  auto d = make_regression(cfg);
  const Matrix original = d.X;
  inject_missing(d, 0.1, 77);
  KnnImputer imputer;
  imputer.fit(d.X, {});
  const auto imputed = imputer.transform(d.X);
  EXPECT_EQ(count_missing(imputed), 0u);
  // Imputed values should be finite and in a sane range.
  for (const double v : imputed.data()) EXPECT_TRUE(std::isfinite(v));
}

}  // namespace
}  // namespace coda
