// Fleet telemetry tests (DESIGN.md §12): time-series rings, snapshot
// deltas and their loss-safe wire protocol, per-node MetricScope isolation
// under concurrency, the TelemetryCollector's aggregates, the SLO
// evaluator, and the end-to-end invariant that a cooperative run's
// collected fleet telemetry reproduces the process-wide registry.
#include <gtest/gtest.h>

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/darr/cooperative.h"
#include "src/data/synthetic.h"
#include "src/dist/telemetry.h"
#include "src/ml/knn.h"
#include "src/ml/linear.h"
#include "src/ml/scalers.h"
#include "src/obs/obs.h"
#include "src/util/thread_pool.h"

namespace coda {
namespace {

// ---------------------------------------------------------------------------
// TimeSeries

TEST(TimeSeries, RingKeepsNewestAndCountsDrops) {
  obs::TimeSeries series(4);
  for (int i = 0; i < 10; ++i) {
    series.sample(static_cast<double>(i), static_cast<double>(i * i));
  }
  EXPECT_EQ(series.size(), 4u);
  EXPECT_EQ(series.total_samples(), 10u);
  EXPECT_EQ(series.dropped(), 6u);
  const auto points = series.points();
  ASSERT_EQ(points.size(), 4u);
  // Oldest first: samples 6..9 survive.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(points[i].t, static_cast<double>(6 + i));
    EXPECT_DOUBLE_EQ(points[i].value, static_cast<double>((6 + i) * (6 + i)));
  }
  EXPECT_DOUBLE_EQ(series.latest().value, 81.0);
}

TEST(TimeSeries, RatePerSecondFromEndpoints) {
  obs::TimeSeries series(8);
  EXPECT_DOUBLE_EQ(series.rate_per_second(), 0.0);
  series.sample(10.0, 100.0);
  EXPECT_DOUBLE_EQ(series.rate_per_second(), 0.0);  // one point: no rate
  series.sample(20.0, 400.0);
  EXPECT_DOUBLE_EQ(series.rate_per_second(), 30.0);
  series.sample(20.0, 500.0);  // same timestamp allowed
  EXPECT_DOUBLE_EQ(series.rate_per_second(), 40.0);
}

// ---------------------------------------------------------------------------
// Histogram::merge

TEST(HistogramMerge, MergeMatchesSingleHistogramFedBothStreams) {
  obs::Histogram a({0.1, 1.0, 10.0});
  obs::Histogram b({0.1, 1.0, 10.0});
  obs::Histogram both({0.1, 1.0, 10.0});
  for (double v : {0.05, 0.5, 0.7, 5.0}) {
    a.observe(v);
    both.observe(v);
  }
  for (double v : {0.2, 2.0, 20.0, 50.0}) {
    b.observe(v);
    both.observe(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), both.count());
  EXPECT_DOUBLE_EQ(a.sum(), both.sum());
  for (std::size_t i = 0; i < a.n_buckets(); ++i) {
    EXPECT_EQ(a.bucket_count(i), both.bucket_count(i)) << "bucket " << i;
  }
  // Quantiles are a pure function of the buckets, so they now agree too.
  for (double q : {0.5, 0.95, 0.99}) {
    EXPECT_DOUBLE_EQ(a.quantile(q), both.quantile(q)) << "q=" << q;
  }
}

TEST(HistogramMerge, MismatchedBoundsThrow) {
  obs::Histogram a({1.0, 2.0});
  obs::Histogram b({1.0, 3.0});
  EXPECT_THROW(a.merge(b), InvalidArgument);
}

// ---------------------------------------------------------------------------
// MetricsSnapshot wire format

obs::MetricsSnapshot sample_snapshot() {
  obs::MetricsSnapshot snap;
  snap.counters["c.one"] = 7;
  snap.counters["c.two"] = 123456789;
  snap.gauges["g.load"] = 0.75;
  obs::HistogramSnapshot h;
  h.bounds = {1.0, 10.0};
  h.buckets = {3, 2, 1};
  h.count = 6;
  h.sum = 42.5;
  snap.histograms["h.lat"] = h;
  return snap;
}

TEST(MetricsSnapshot, SerializeRoundTrips) {
  const obs::MetricsSnapshot snap = sample_snapshot();
  const Bytes wire = snap.serialize();
  EXPECT_EQ(wire.size(), snap.encoded_size());
  const obs::MetricsSnapshot back = obs::MetricsSnapshot::deserialize(wire);
  EXPECT_EQ(back.counters, snap.counters);
  EXPECT_EQ(back.gauges, snap.gauges);
  ASSERT_EQ(back.histograms.size(), 1u);
  const auto& h = back.histograms.at("h.lat");
  EXPECT_EQ(h.bounds, snap.histograms.at("h.lat").bounds);
  EXPECT_EQ(h.buckets, snap.histograms.at("h.lat").buckets);
  EXPECT_EQ(h.count, 6u);
  EXPECT_DOUBLE_EQ(h.sum, 42.5);
}

TEST(MetricsSnapshot, TruncatedBufferThrowsDecodeError) {
  Bytes wire = sample_snapshot().serialize();
  for (std::size_t cut : {wire.size() - 1, wire.size() / 2, std::size_t{3}}) {
    Bytes truncated(wire.begin(), wire.begin() + static_cast<long>(cut));
    EXPECT_THROW(obs::MetricsSnapshot::deserialize(truncated), DecodeError)
        << "cut at " << cut;
  }
}

TEST(MetricsSnapshot, DeltaShipsOnlyChangesAndApplyReconstructs) {
  obs::MetricsSnapshot base = sample_snapshot();
  obs::MetricsSnapshot current = sample_snapshot();
  current.counters["c.one"] = 10;        // +3
  current.counters["c.new"] = 5;         // new counter
  current.gauges["g.load"] = 0.5;        // changed
  current.histograms["h.lat"].buckets = {4, 2, 1};
  current.histograms["h.lat"].count = 7;
  current.histograms["h.lat"].sum = 43.0;

  const obs::MetricsSnapshot delta = obs::snapshot_delta(base, current);
  EXPECT_EQ(delta.counters.at("c.one"), 3u);  // increment, not absolute
  EXPECT_EQ(delta.counters.at("c.new"), 5u);
  EXPECT_EQ(delta.counters.count("c.two"), 0u);  // unchanged: omitted
  EXPECT_DOUBLE_EQ(delta.gauges.at("g.load"), 0.5);

  obs::MetricsSnapshot rebuilt = base;
  obs::apply_snapshot_delta(rebuilt, delta);
  EXPECT_EQ(rebuilt.counters, current.counters);
  EXPECT_EQ(rebuilt.gauges, current.gauges);
  EXPECT_EQ(rebuilt.histograms.at("h.lat").buckets,
            current.histograms.at("h.lat").buckets);
  EXPECT_DOUBLE_EQ(rebuilt.histograms.at("h.lat").sum, 43.0);
}

TEST(MetricsSnapshot, CounterGoingBackwardsReshipsAbsoluteValue) {
  obs::MetricsSnapshot base;
  base.counters["c"] = 100;
  obs::MetricsSnapshot current;
  current.counters["c"] = 4;  // registry was reset between snapshots
  const obs::MetricsSnapshot delta = obs::snapshot_delta(base, current);
  EXPECT_EQ(delta.counters.at("c"), 4u);
}

TEST(MetricsSnapshot, NoChangeMeansEmptyDelta) {
  const obs::MetricsSnapshot snap = sample_snapshot();
  EXPECT_TRUE(obs::snapshot_delta(snap, snap).empty());
}

// ---------------------------------------------------------------------------
// MetricScope isolation

TEST(MetricScope, ShardsIsolatePerNodeUnderThreadPool) {
  obs::reset_all();
  constexpr std::size_t kNodes = 4;
  constexpr std::uint64_t kPerNode = 20000;
  ThreadPool pool(kNodes);
  std::vector<std::future<void>> done;
  for (std::size_t n = 0; n < kNodes; ++n) {
    done.push_back(pool.submit([n] {
      const std::string node = "scope-node" + std::to_string(n);
      const obs::NodeScope scope(node);
      for (std::uint64_t i = 0; i < kPerNode; ++i) {
        obs::count_scoped("test.scope.iso", 1);
      }
    }));
  }
  for (auto& f : done) f.get();

  // Every shard holds exactly its own node's writes...
  for (std::size_t n = 0; n < kNodes; ++n) {
    const std::string node = "scope-node" + std::to_string(n);
    obs::MetricScope* scope = obs::MetricScope::find(node);
    ASSERT_NE(scope, nullptr) << node;
    EXPECT_EQ(scope->counter("test.scope.iso").value(), kPerNode) << node;
  }
  // ...and the process-wide registry the exact sum.
  EXPECT_EQ(obs::counter("test.scope.iso").value(), kNodes * kPerNode);
}

TEST(MetricScope, NodeScopeRestoresPreviousShardOnExit) {
  EXPECT_EQ(obs::MetricScope::current(), nullptr);
  {
    obs::NodeScope outer("scope-outer");
    ASSERT_NE(obs::MetricScope::current(), nullptr);
    EXPECT_EQ(obs::MetricScope::current()->node(), "scope-outer");
    {
      obs::NodeScope inner("scope-inner");
      EXPECT_EQ(obs::MetricScope::current()->node(), "scope-inner");
    }
    EXPECT_EQ(obs::MetricScope::current()->node(), "scope-outer");
  }
  EXPECT_EQ(obs::MetricScope::current(), nullptr);
}

TEST(MetricScope, ResetAllZeroesShardValuesButKeepsRegistrations) {
  auto& shard = obs::MetricScope::for_node("scope-reset");
  shard.counter("test.scope.reset").inc(9);
  obs::Counter* before = &shard.counter("test.scope.reset");
  obs::reset_all();
  EXPECT_EQ(before->value(), 0u);
  EXPECT_EQ(&obs::MetricScope::for_node("scope-reset")
                 .counter("test.scope.reset"),
            before);
}

// ---------------------------------------------------------------------------
// TelemetryCollector

TEST(TelemetryCollector, FleetAggregatesAndTopK) {
  obs::TelemetryCollector collector;
  collector.track("work.done");

  obs::MetricsSnapshot a;
  a.counters["work.done"] = 10;
  obs::MetricsSnapshot b;
  b.counters["work.done"] = 30;
  collector.ingest("alpha", 1.0, a);
  collector.ingest("beta", 1.0, b);

  EXPECT_EQ(collector.nodes(), (std::vector<std::string>{"alpha", "beta"}));
  EXPECT_EQ(collector.reports_ingested(), 2u);
  EXPECT_EQ(collector.fleet().counters.at("work.done"), 40u);
  EXPECT_EQ(collector.node_snapshot("alpha").counters.at("work.done"), 10u);

  const auto top = collector.top_k("work.done", 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].first, "beta");
  EXPECT_DOUBLE_EQ(top[0].second, 30.0);
  EXPECT_EQ(top[1].first, "alpha");
}

TEST(TelemetryCollector, TracksSeriesPerNodeAndFleetWide) {
  obs::TelemetryCollector collector;
  collector.track("work.done");
  obs::MetricsSnapshot d;
  d.counters["work.done"] = 10;
  collector.ingest("alpha", 1.0, d);
  collector.ingest("alpha", 2.0, d);  // +10 again at t=2

  const auto node_series = collector.series("alpha", "work.done");
  ASSERT_TRUE(node_series.has_value());
  ASSERT_EQ(node_series->size(), 2u);
  EXPECT_DOUBLE_EQ(node_series->latest().value, 20.0);
  EXPECT_DOUBLE_EQ(collector.rate("alpha", "work.done"), 10.0);

  const auto fleet_series = collector.series("", "work.done");
  ASSERT_TRUE(fleet_series.has_value());
  EXPECT_DOUBLE_EQ(fleet_series->latest().value, 20.0);

  EXPECT_FALSE(collector.series("alpha", "untracked").has_value());
  EXPECT_FALSE(collector.series("nobody", "work.done").has_value());
}

TEST(TelemetryCollector, DescribeDivergenceFlagsMismatch) {
  obs::TelemetryCollector collector;
  obs::MetricsSnapshot d;
  d.counters["work.done"] = 10;
  collector.ingest("alpha", 1.0, d);

  obs::MetricsSnapshot expected;
  expected.counters["work.done"] = 10;
  expected.counters["unscoped.extra"] = 99;  // extra keys are fine
  EXPECT_EQ(collector.describe_divergence(expected), "");

  expected.counters["work.done"] = 11;
  const std::string diff = collector.describe_divergence(expected);
  EXPECT_NE(diff.find("work.done"), std::string::npos);
}

// ---------------------------------------------------------------------------
// TelemetryReporter over SimNet with fault injection

TEST(TelemetryReporter, DeltaSurvivesDropsAndRetransmits) {
  obs::reset_all();
  dist::SimNet net;
  const dist::NodeId source_node = net.add_node("reporter-src");
  const dist::NodeId sink_node = net.add_node("telemetry");

  auto& shard = obs::MetricScope::for_node("reporter-src");
  obs::TelemetryCollector collector;
  RetryPolicy tiny;
  tiny.max_attempts = 2;
  tiny.initial_backoff_seconds = 0.001;
  tiny.deadline_seconds = 0.01;
  dist::TelemetryReporter reporter(&net, source_node, sink_node, &collector,
                                   &shard.registry(), "reporter-src", tiny);

  shard.counter("work.done").inc(5);
  ASSERT_TRUE(reporter.flush());
  EXPECT_EQ(collector.node_snapshot("reporter-src").counters.at("work.done"),
            5u);

  // The link partitions: the report fails, the acked base stays put.
  net.partition(source_node, sink_node, net.now(), 1e9);
  shard.counter("work.done").inc(3);
  EXPECT_FALSE(reporter.flush());
  EXPECT_EQ(reporter.reports_failed(), 1u);
  EXPECT_EQ(collector.node_snapshot("reporter-src").counters.at("work.done"),
            5u);

  // More work during the outage, then the link heals: one flush catches
  // the collector up exactly (lost increments merged with newer ones).
  shard.counter("work.done").inc(2);
  net.heal_partitions();
  EXPECT_TRUE(reporter.flush());
  EXPECT_EQ(collector.node_snapshot("reporter-src").counters.at("work.done"),
            10u);

  // Nothing new: flush is a cheap no-op that sends no message.
  const std::uint64_t sent_before = reporter.reports_sent();
  EXPECT_TRUE(reporter.flush());
  EXPECT_EQ(reporter.reports_sent(), sent_before);
}

TEST(TelemetryReporter, ReconstructsHistogramsExactly) {
  obs::reset_all();
  dist::SimNet net;
  const dist::NodeId source_node = net.add_node("hist-src");
  const dist::NodeId sink_node = net.add_node("telemetry");
  auto& shard = obs::MetricScope::for_node("hist-src");
  obs::TelemetryCollector collector;
  dist::TelemetryReporter reporter(&net, source_node, sink_node, &collector,
                                   &shard.registry(), "hist-src");

  auto& h = shard.histogram("lat.seconds", {0.01, 0.1, 1.0});
  h.observe(0.005);
  h.observe(0.05);
  ASSERT_TRUE(reporter.flush());
  h.observe(0.5);
  h.observe(5.0);
  ASSERT_TRUE(reporter.flush());

  const auto snap = collector.node_snapshot("hist-src");
  const auto& got = snap.histograms.at("lat.seconds");
  EXPECT_EQ(got.count, h.count());
  EXPECT_DOUBLE_EQ(got.sum, h.sum());
  for (std::size_t i = 0; i < h.n_buckets(); ++i) {
    EXPECT_EQ(got.buckets[i], h.bucket_count(i)) << "bucket " << i;
  }
  EXPECT_DOUBLE_EQ(got.quantile(0.5), h.quantile(0.5));
}

// ---------------------------------------------------------------------------
// SLO evaluator

TEST(Slo, ParsesTheOneLineSyntax) {
  const obs::SloSpec spec = obs::parse_slo("eval.claim.wait p99 < 0.5");
  EXPECT_EQ(spec.metric, "eval.claim.wait");
  EXPECT_EQ(spec.stat, obs::SloSpec::Stat::kP99);
  EXPECT_EQ(spec.cmp, obs::SloSpec::Cmp::kLt);
  EXPECT_DOUBLE_EQ(spec.threshold, 0.5);

  EXPECT_THROW(obs::parse_slo(""), InvalidArgument);
  EXPECT_THROW(obs::parse_slo("too few"), InvalidArgument);
  EXPECT_THROW(obs::parse_slo("m p99 < 0.5 extra"), InvalidArgument);
  EXPECT_THROW(obs::parse_slo("m p98 < 0.5"), InvalidArgument);
  EXPECT_THROW(obs::parse_slo("m p99 != 0.5"), InvalidArgument);
  EXPECT_THROW(obs::parse_slo("m p99 < nope"), InvalidArgument);
}

TEST(Slo, EvaluatesAgainstRegistryAndCountsViolations) {
  obs::reset_all();
  obs::counter("test.slo.requests").inc(10);
  auto& slos = obs::global_slos();
  slos.add("test.slo.requests value >= 1");   // pass
  slos.add("test.slo.requests value < 5");    // fail: 10 >= 5
  slos.add("test.slo.absent value >= 1");     // not evaluable

  const auto results = slos.evaluate();
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].evaluable);
  EXPECT_TRUE(results[0].pass);
  EXPECT_TRUE(results[1].evaluable);
  EXPECT_FALSE(results[1].pass);
  EXPECT_FALSE(results[2].evaluable);

  EXPECT_EQ(obs::counter("slo.evaluations").value(), 2u);
  EXPECT_EQ(obs::counter("slo.violations").value(), 1u);
  EXPECT_DOUBLE_EQ(obs::gauge("slo.checks.pass").value(), 1.0);
  EXPECT_DOUBLE_EQ(obs::gauge("slo.checks.fail").value(), 1.0);

  // results() returns the stored outcome; snapshot_json renders it.
  EXPECT_EQ(slos.results().size(), 3u);
  const std::string json = obs::snapshot_json();
  EXPECT_NE(json.find("\"slo\":["), std::string::npos);
  EXPECT_NE(json.find("test.slo.requests value < 5"), std::string::npos);
}

TEST(Slo, PrefersBoundFleetOverRegistry) {
  obs::reset_all();
  obs::counter("test.slo.fleetpref").inc(100);  // registry says 100
  obs::TelemetryCollector collector;
  obs::MetricsSnapshot d;
  d.counters["test.slo.fleetpref"] = 3;  // the fleet reported 3
  collector.ingest("alpha", 1.0, d);

  auto& slos = obs::global_slos();
  slos.add("test.slo.fleetpref value <= 5");
  slos.bind_fleet(&collector);
  const auto results = slos.evaluate();
  slos.bind_fleet(nullptr);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].pass);
  EXPECT_DOUBLE_EQ(results[0].observed, 3.0);
}

TEST(Slo, RateStatMeasuresChangeAcrossEvaluations) {
  obs::reset_all();
  auto& c = obs::counter("test.slo.rate");
  auto& slos = obs::global_slos();
  slos.add("test.slo.rate rate < 100");
  c.inc(10);
  slos.evaluate(0.0);
  c.inc(50);  // +50 over 1 simulated second = rate 50
  const auto results = slos.evaluate(1.0);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].evaluable);
  EXPECT_DOUBLE_EQ(results[0].observed, 50.0);
  EXPECT_TRUE(results[0].pass);
}

TEST(Slo, DashboardRendersFleetAndChecks) {
  obs::reset_all();
  obs::TelemetryCollector collector;
  collector.track("work.done");
  obs::MetricsSnapshot d;
  d.counters["work.done"] = 10;
  collector.ingest("alpha", 1.0, d);
  auto& slos = obs::global_slos();
  slos.add("work.done value >= 1");
  slos.bind_fleet(&collector);  // the check reads collected telemetry

  const std::string dash = obs::telemetry_dashboard(&collector);
  slos.bind_fleet(nullptr);
  EXPECT_NE(dash.find("coda telemetry"), std::string::npos);
  EXPECT_NE(dash.find("alpha"), std::string::npos);
  EXPECT_NE(dash.find("work.done"), std::string::npos);
  EXPECT_NE(dash.find("== slo =="), std::string::npos);
  EXPECT_NE(dash.find("PASS"), std::string::npos);
  obs::global_slos().clear();
}

// ---------------------------------------------------------------------------
// End-to-end: cooperative runs

Dataset mini_dataset() {
  RegressionConfig cfg;
  cfg.n_samples = 80;
  cfg.n_features = 4;
  cfg.n_informative = 3;
  return make_regression(cfg);
}

TEGraph mini_graph() {
  TEGraph g;
  std::vector<std::unique_ptr<Transformer>> scalers;
  scalers.push_back(std::make_unique<StandardScaler>());
  scalers.push_back(std::make_unique<NoOp>());
  g.add_feature_scalers(std::move(scalers));
  std::vector<std::unique_ptr<Estimator>> models;
  models.push_back(std::make_unique<LinearRegression>());
  models.push_back(std::make_unique<KnnRegressor>());
  g.add_regression_models(std::move(models));
  return g;  // 4 candidates
}

TEST(FleetTelemetry, CooperativeRunFleetMatchesGlobalRegistry) {
  obs::reset_all();
  const auto report = darr::run_cooperative_search(
      mini_graph(), mini_dataset(), KFold(3), Metric::kRmse, 2);
  ASSERT_NE(report.telemetry, nullptr);
  // Fault-free run: the collector's aggregate must reproduce the global
  // registry bit-for-bit on every fleet-shipped family.
  EXPECT_EQ(report.telemetry_divergence, "");
  // Every client reported, plus the repository.
  const auto nodes = report.telemetry->nodes();
  EXPECT_EQ(nodes.size(), 3u);
  EXPECT_NE(obs::counter("telemetry.reports.sent").value(), 0u);
  EXPECT_EQ(obs::counter("telemetry.reports.ingested").value(),
            report.telemetry->reports_ingested());
}

// Integer-valued metric state of the process: global counters plus every
// shard's counters. Timing histograms are excluded by construction —
// their values are wall-clock dependent even for identical runs — and so
// are the published prof.<region>.self_ns counters, which carry
// nanosecond wall time by design (the profiler's determinism contract
// covers the region set and call counts, never the times; the
// prof.<region>.calls counters stay in the comparison).
std::map<std::string, std::uint64_t> integer_metric_state() {
  const auto wall_clock_valued = [](const std::string& name) {
    static const std::string kSuffix = ".self_ns";
    return name.size() > kSuffix.size() &&
           name.compare(name.size() - kSuffix.size(), kSuffix.size(),
                        kSuffix) == 0;
  };
  std::map<std::string, std::uint64_t> state;
  for (const auto& [name, value] :
       obs::MetricsRegistry::instance().counter_values()) {
    if (!wall_clock_valued(name)) state["global/" + name] = value;
  }
  for (const auto& node : obs::MetricScope::nodes()) {
    const auto* scope = obs::MetricScope::find(node);
    for (const auto& [name, value] : scope->registry().counter_values()) {
      if (!wall_clock_valued(name)) state[node + "/" + name] = value;
    }
  }
  return state;
}

TEST(FleetTelemetry, BackToBackRunsProduceIdenticalMetricsOutput) {
  const TEGraph graph = mini_graph();
  const Dataset data = mini_dataset();

  obs::reset_all();
  (void)darr::run_cooperative_search(graph, data, KFold(3), Metric::kRmse, 1);
  const auto first = integer_metric_state();

  obs::reset_all();
  (void)darr::run_cooperative_search(graph, data, KFold(3), Metric::kRmse, 1);
  const auto second = integer_metric_state();

  // Identical keys AND identical values: instance ids were rewound by
  // reset_all(), so the second run re-registered the same names, and a
  // single-client run has no scheduling nondeterminism in its counters.
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace coda
