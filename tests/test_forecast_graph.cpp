// Tests for the Fig 11 forecast graph: compatibility-edge wiring, path
// enumeration vs the full cartesian product, instantiation (n_vars), and
// end-to-end evaluation.
#include <gtest/gtest.h>

#include <cmath>

#include "src/data/synthetic.h"
#include "src/ml/scalers.h"
#include "src/ts/forecast_graph.h"
#include "src/ts/forecasters.h"

namespace coda::ts {
namespace {

TimeSeries small_series() {
  IndustrialSeriesConfig cfg;
  cfg.length = 140;
  cfg.n_variables = 2;
  return make_industrial_series(cfg);
}

TEST(ForecastGraph, StandardShape) {
  ForecastSpec spec;
  const auto g = ForecastGraph::standard(spec);
  EXPECT_EQ(g.n_scalers(), 4u);
  EXPECT_EQ(g.n_windowers(), 4u);
  EXPECT_EQ(g.n_models(), 12u);
}

TEST(ForecastGraph, CompatibilityEdgesPrune) {
  ForecastSpec spec;
  const auto g = ForecastGraph::standard(spec);
  const auto candidates = g.enumerate();
  // cascaded feeds 7 models, flat 2, iid 2, asis 1 -> 12 pairs x 4 scalers.
  EXPECT_EQ(candidates.size(), 48u);
  EXPECT_EQ(g.count_full_cartesian(), 4u * 4u * 12u);
  EXPECT_LT(candidates.size(), g.count_full_cartesian());
}

TEST(ForecastGraph, NoIllegalPairEnumerated) {
  ForecastSpec spec;
  const auto g = ForecastGraph::standard(spec);
  for (const auto& c : g.enumerate()) {
    // instantiate() revalidates the pair; it must never throw here.
    EXPECT_NO_THROW(g.instantiate(c, 2));
  }
}

TEST(ForecastGraph, InstantiateSetsNVarsOnTemporalModels) {
  ForecastSpec spec;
  spec.history = 6;
  const auto g = ForecastGraph::standard(spec);
  for (const auto& c : g.enumerate()) {
    const auto p = g.instantiate(c, 3);
    if (p.model().params().contains("n_vars")) {
      EXPECT_EQ(p.model().params().get_int("n_vars"), 3);
    }
  }
}

TEST(ForecastGraph, IncompatiblePairRejected) {
  ForecastSpec spec;
  const auto g = ForecastGraph::standard(spec);
  ForecastGraph::Candidate bad{0, 3 /*asis*/, 0 /*lstm_simple*/};
  EXPECT_THROW(g.instantiate(bad, 2), InvalidArgument);
}

TEST(ForecastGraph, DuplicateModelNameRejected) {
  ForecastSpec spec;
  ForecastGraph g(spec);
  g.add_model(std::make_unique<ZeroModel>(), "asis");
  EXPECT_THROW(g.add_model(std::make_unique<ZeroModel>(), "asis"),
               InvalidArgument);
}

TEST(ForecastGraph, DotRendersStagesAndEdges) {
  ForecastSpec spec;
  const auto g = ForecastGraph::standard(spec);
  const auto dot = g.to_dot();
  EXPECT_NE(dot.find("Data Scaling"), std::string::npos);
  EXPECT_NE(dot.find("Data Preprocessing"), std::string::npos);
  EXPECT_NE(dot.find("Modelling"), std::string::npos);
  EXPECT_NE(dot.find("\"cascadedwindows\" -> \"lstm_simple\""),
            std::string::npos);
  EXPECT_NE(dot.find("\"ts_as_is\" -> \"zeromodel\""), std::string::npos);
  // Illegal edge must not be drawn.
  EXPECT_EQ(dot.find("\"ts_as_is\" -> \"lstm_simple\""), std::string::npos);
}

TEST(ForecastGraphEvaluator, SmallGraphEndToEnd) {
  // A reduced graph (statistical models only) keeps this fast while still
  // covering the evaluator path; the full standard graph runs in the bench.
  // Strong seasonality + weak noise makes the AR-vs-persistence ordering
  // deterministic.
  IndustrialSeriesConfig cfg;
  cfg.length = 300;
  cfg.n_variables = 2;
  cfg.seasonal_amplitude = 3.0;
  cfg.noise_stddev = 0.1;
  cfg.ar_coefficient = 0.2;
  cfg.regime_shifts = 0;
  const auto series = make_industrial_series(cfg);
  ForecastSpec spec;
  spec.history = 24;
  ForecastGraph g(spec);
  g.add_scaler(std::make_unique<StandardScaler>());
  g.add_scaler(std::make_unique<NoOp>());
  g.add_windower(std::make_unique<CascadedWindows>(), "cascaded");
  g.add_windower(std::make_unique<TsAsIs>(), "asis");
  g.add_model(std::make_unique<ArModel>(), "cascaded");
  g.add_model(std::make_unique<ZeroModel>(), "asis");

  EvalOptions config;
  config.metric = Metric::kRmse;
  ForecastGraphEvaluator evaluator(config);
  TimeSeriesSlidingSplit cv(2, 180, 40, 5);
  const auto report = evaluator.evaluate(g, series, cv);
  EXPECT_EQ(report.results.size(), 4u);
  for (const auto& r : report.results) {
    EXPECT_FALSE(r.failed) << r.spec << ": " << r.failure_message;
    EXPECT_EQ(r.fold_scores.size(), 2u);
  }
  // The AR model on cascaded windows should beat persistence on this
  // autocorrelated series.
  EXPECT_NE(report.best().spec.find("armodel"), std::string::npos);
}

TEST(ForecastGraphEvaluator, CacheSecondRunFree) {
  const auto series = small_series();
  ForecastSpec spec;
  spec.history = 8;
  ForecastGraph g(spec);
  g.add_scaler(std::make_unique<NoOp>());
  g.add_windower(std::make_unique<TsAsIs>(), "asis");
  g.add_model(std::make_unique<ZeroModel>(), "asis");

  LocalResultCache cache;
  EvalOptions config;
  config.cache = &cache;
  ForecastGraphEvaluator evaluator(config);
  TimeSeriesSlidingSplit cv(2, 60, 20, 0);
  const auto first = evaluator.evaluate(g, series, cv);
  EXPECT_EQ(first.evaluated_locally, 1u);
  const auto second = evaluator.evaluate(g, series, cv);
  EXPECT_EQ(second.served_from_cache, 1u);
  EXPECT_DOUBLE_EQ(second.best().mean_score, first.best().mean_score);
}

TEST(ForecastGraphEvaluator, TrainBestForecasts) {
  const auto series = small_series();
  ForecastSpec spec;
  spec.history = 12;
  ForecastGraph g(spec);
  g.add_scaler(std::make_unique<StandardScaler>());
  g.add_windower(std::make_unique<CascadedWindows>(), "cascaded");
  g.add_model(std::make_unique<ArModel>(), "cascaded");

  ForecastGraphEvaluator evaluator{EvalOptions{}};
  TimeSeriesSlidingSplit cv(2, 80, 20, 5);
  auto best = evaluator.train_best(g, series, cv);
  EXPECT_TRUE(std::isfinite(best.forecast_next(series)));
}

}  // namespace
}  // namespace coda::ts
