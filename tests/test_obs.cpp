// Tests for the observability layer: registry semantics (idempotent
// registration, exact concurrent counting), histogram bucket boundaries,
// span nesting/ring-buffer behaviour, and the JSON exporter's syntax.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/obs.h"

namespace coda::obs {
namespace {

TEST(Counter, ConcurrentIncrementsSumExactly) {
  auto& c = counter("test.obs.concurrent");
  c.reset();
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 50000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      auto& same = counter("test.obs.concurrent");
      for (std::uint64_t i = 0; i < kPerThread; ++i) same.inc();
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(Counter, RegistrationIsIdempotent) {
  auto& a = counter("test.obs.same");
  auto& b = counter("test.obs.same");
  EXPECT_EQ(&a, &b);
  a.reset();
  a.inc(3);
  b.inc(2);
  EXPECT_EQ(a.value(), 5u);
}

TEST(Gauge, SetAddAndConcurrentAdd) {
  auto& g = gauge("test.obs.gauge");
  g.set(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.add(0.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);

  g.reset();
  constexpr std::size_t kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&g] {
      for (int i = 0; i < kPerThread; ++i) g.add(1.0);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_DOUBLE_EQ(g.value(), static_cast<double>(kThreads * kPerThread));
}

TEST(Histogram, BucketBoundariesAreInclusiveUpper) {
  Histogram h({1.0, 2.0, 4.0});
  ASSERT_EQ(h.n_buckets(), 4u);  // 3 finite + overflow

  h.observe(0.5);  // <= 1        -> bucket 0
  h.observe(1.0);  // == bound[0] -> bucket 0 (inclusive upper)
  h.observe(1.5);  // <= 2        -> bucket 1
  h.observe(2.0);  // == bound[1] -> bucket 1
  h.observe(3.0);  // <= 4        -> bucket 2
  h.observe(4.0);  // == bound[2] -> bucket 2
  h.observe(9.0);  // > 4         -> overflow

  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 2u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  EXPECT_EQ(h.count(), 7u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 2.0 + 3.0 + 4.0 + 9.0);
}

TEST(Histogram, EmptyQuantileIsZero) {
  // Contract pin (referenced from Histogram::quantile): an empty histogram
  // answers 0.0 for every q — never NaN, whose comparisons silently
  // evaluate false and would flip an SLO like "p99 < 0.1" to a failure
  // before the first observation.
  Histogram h({1.0, 2.0, 4.0});
  ASSERT_EQ(h.count(), 0u);
  for (const double q : {0.0, 0.5, 0.99, 1.0}) {
    const double value = h.quantile(q);
    EXPECT_EQ(value, value) << "NaN at q=" << q;  // NaN != NaN
    EXPECT_DOUBLE_EQ(value, 0.0) << "q=" << q;
  }
}

TEST(Histogram, QuantileInterpolatesLinearlyWithinBuckets) {
  Histogram h({1.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);  // empty histogram

  h.observe(0.5);  // bucket [0, 1]
  h.observe(1.5);  // bucket (1, 2]
  h.observe(1.7);  // bucket (1, 2]
  h.observe(3.0);  // bucket (2, 4]

  // rank = q * 4, walked through cumulative counts {1, 3, 4}:
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);    // rank 0: bucket-0 lower bound
  EXPECT_DOUBLE_EQ(h.quantile(0.25), 1.0);   // rank 1: bucket-0 upper bound
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 1.5);    // rank 2: halfway into (1, 2]
  EXPECT_DOUBLE_EQ(h.quantile(0.75), 2.0);   // rank 3: bucket-1 upper bound
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 4.0);    // rank 4: last finite bound

  // Out-of-range q clamps; overflow observations clamp to the last bound.
  EXPECT_DOUBLE_EQ(h.quantile(-1.0), h.quantile(0.0));
  EXPECT_DOUBLE_EQ(h.quantile(2.0), h.quantile(1.0));
  h.observe(100.0);  // +inf bucket
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 4.0);
}

TEST(Histogram, QuantileTracksExactQuantilesWithinBucketWidth) {
  // Property: against any sample set, the interpolated quantile is within
  // one bucket width of the exact order statistic. Deterministic LCG
  // samples over [0, 8) with unit-width buckets.
  Histogram h({1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0});
  std::vector<double> samples;
  std::uint64_t state = 42;
  for (int i = 0; i < 1000; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const double x = 8.0 * static_cast<double>(state >> 11) /
                     static_cast<double>(1ULL << 53);
    samples.push_back(x);
    h.observe(x);
  }
  std::sort(samples.begin(), samples.end());
  for (const double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99}) {
    const auto rank = static_cast<std::size_t>(q * samples.size());
    const double exact =
        samples[rank < samples.size() ? rank : samples.size() - 1];
    EXPECT_NEAR(h.quantile(q), exact, 1.0) << "q=" << q;
  }
}

TEST(Histogram, RejectsBadBounds) {
  EXPECT_ANY_THROW(Histogram({}));
  EXPECT_ANY_THROW(Histogram({1.0, 1.0}));
  EXPECT_ANY_THROW(Histogram({2.0, 1.0}));
}

TEST(Histogram, ExponentialBoundsFactory) {
  const auto bounds = Histogram::exponential_bounds(1.0, 2.0, 4);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(bounds[0], 1.0);
  EXPECT_DOUBLE_EQ(bounds[1], 2.0);
  EXPECT_DOUBLE_EQ(bounds[2], 4.0);
  EXPECT_DOUBLE_EQ(bounds[3], 8.0);
}

TEST(Histogram, RegistryBoundsOnlyApplyAtCreation) {
  auto& h = histogram("test.obs.hist", {1.0, 10.0});
  auto& again = histogram("test.obs.hist", {99.0});  // ignored: exists
  EXPECT_EQ(&h, &again);
  ASSERT_EQ(h.bounds().size(), 2u);
  EXPECT_DOUBLE_EQ(h.bounds()[1], 10.0);
}

TEST(Tracer, ScopedSpansNestParentChild) {
  Tracer tracer(16);
  EXPECT_EQ(Tracer::current_span(), 0u);
  std::uint64_t outer_id = 0;
  std::uint64_t inner_id = 0;
  {
    ScopedSpan outer("outer", tracer);
    outer_id = outer.id();
    EXPECT_EQ(Tracer::current_span(), outer_id);
    {
      ScopedSpan inner("inner", tracer);
      inner_id = inner.id();
      EXPECT_EQ(Tracer::current_span(), inner_id);
    }
    EXPECT_EQ(Tracer::current_span(), outer_id);
  }
  EXPECT_EQ(Tracer::current_span(), 0u);

  const auto spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // Inner finishes first, so it is recorded first.
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[0].id, inner_id);
  EXPECT_EQ(spans[0].parent_id, outer_id);
  EXPECT_EQ(spans[1].name, "outer");
  EXPECT_EQ(spans[1].parent_id, 0u);
  EXPECT_GE(spans[1].duration_seconds, spans[0].duration_seconds);
  EXPECT_LE(spans[1].start_seconds, spans[0].start_seconds);
}

TEST(Tracer, RingBufferOverwritesOldestAndCountsDrops) {
  Tracer tracer(4);
  for (int i = 0; i < 10; ++i) {
    ScopedSpan span("s" + std::to_string(i), tracer);
  }
  EXPECT_EQ(tracer.recorded(), 10u);
  EXPECT_EQ(tracer.dropped(), 6u);
  const auto spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 4u);
  // Oldest-first: the four most recent spans, in recording order.
  EXPECT_EQ(spans[0].name, "s6");
  EXPECT_EQ(spans[3].name, "s9");
}

TEST(EventLog, RingOverwritesOldestAndCountsDrops) {
  EventLog log(4);
  for (int i = 0; i < 10; ++i) {
    Event e;
    e.name = "e" + std::to_string(i);
    log.log(std::move(e));
  }
  EXPECT_EQ(log.recorded(), 10u);
  EXPECT_EQ(log.dropped(), 6u);
  const auto events = log.snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].name, "e6");  // oldest retained first
  EXPECT_EQ(events[3].name, "e9");
}

TEST(EventLog, FreeFunctionStampsAmbientTraceSpanAndNode) {
  EventLog::instance().clear();
  {
    const NodeScope node_scope("client7");
    ScopedSpan span("test.obs.event.span");
    event(Severity::kWarn, "test.obs.event",
          {{"key", "value"}, {"n", "3"}});
    const auto events = EventLog::instance().snapshot();
    ASSERT_EQ(events.size(), 1u);
    const Event& e = events[0];
    EXPECT_EQ(e.severity, Severity::kWarn);
    EXPECT_EQ(e.trace_id, span.trace_id());
    EXPECT_EQ(e.span_id, span.id());
    EXPECT_EQ(e.node, "client7");
    EXPECT_GE(e.seconds, 0.0);
    ASSERT_EQ(e.fields.size(), 2u);
    EXPECT_EQ(e.fields[0].first, "key");
    EXPECT_EQ(e.fields[0].second, "value");
  }
  const std::string tail = EventLog::instance().dump_tail();
  EXPECT_NE(tail.find("flight recorder:"), std::string::npos);
  EXPECT_NE(tail.find("[warn]"), std::string::npos);
  EXPECT_NE(tail.find("test.obs.event"), std::string::npos);
  EXPECT_NE(tail.find("node=client7"), std::string::npos);
  EXPECT_NE(tail.find("key=value"), std::string::npos);
}

TEST(EventLog, DumpTailKeepsNewestEvents) {
  EventLog log(8);
  for (int i = 0; i < 8; ++i) {
    Event e;
    e.name = "tail" + std::to_string(i);
    log.log(std::move(e));
  }
  const std::string tail = log.dump_tail(2);
  EXPECT_EQ(tail.find("tail5"), std::string::npos);
  EXPECT_NE(tail.find("tail6"), std::string::npos);
  EXPECT_NE(tail.find("tail7"), std::string::npos);
}

// --- minimal JSON syntax checker (objects/arrays/strings/numbers) ---------

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      default: return number_or_literal();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;  // skip escaped char
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number_or_literal() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isalnum(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.')) {
      ++pos_;
    }
    return pos_ > start;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

TEST(Export, SnapshotJsonIsWellFormedAndContainsMetrics) {
  counter("test.obs.json.counter").inc(7);
  gauge("test.obs.json.gauge").set(-2.5);
  histogram("test.obs.json.hist", {1.0, 2.0}).observe(1.5);
  { ScopedSpan span("test.obs.json.span"); }

  const std::string json = snapshot_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"test.obs.json.counter\""), std::string::npos);
  EXPECT_NE(json.find("\"test.obs.json.gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"test.obs.json.hist\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"spans\""), std::string::npos);
}

TEST(Export, TextDumpMentionsRegisteredNames) {
  counter("test.obs.dump.counter").inc();
  const std::string text = dump();
  EXPECT_NE(text.find("test.obs.dump.counter"), std::string::npos);
}

TEST(Export, SnapshotJsonIncludesCandidateCostsAndEventStats) {
  {
    CandidateScope scope("scaler/model");
    prefix_event(true);
    prefix_event(false);
  }
  CandidateCosts::instance().record_fold("scaler/model", 0.25);
  event(Severity::kInfo, "test.obs.export.event");

  const std::string json = snapshot_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"candidates\""), std::string::npos);
  EXPECT_NE(json.find("\"scaler/model\""), std::string::npos);
  EXPECT_NE(json.find("\"prefix_hits\""), std::string::npos);
  EXPECT_NE(json.find("\"events\""), std::string::npos);
}

TEST(Export, TraceRingStatsAreExportedAsMetrics) {
  { ScopedSpan span("test.obs.ringstats"); }
  EXPECT_GT(counter("obs.trace.recorded").value(), 0u);
  const std::string json = snapshot_json();
  EXPECT_NE(json.find("\"obs.trace.recorded\""), std::string::npos);
  EXPECT_NE(json.find("\"obs.trace.dropped\""), std::string::npos);
}

TEST(Obs, ResetAllClearsTracerEventsCostsAndIdSources) {
  { ScopedSpan span("test.obs.resetall.span"); }
  event(Severity::kInfo, "test.obs.resetall.event");
  CandidateCosts::instance().record_fold("p", 0.1);
  ASSERT_FALSE(Tracer::instance().snapshot().empty());
  ASSERT_FALSE(EventLog::instance().snapshot().empty());
  ASSERT_FALSE(CandidateCosts::instance().snapshot().empty());

  reset_all();

  EXPECT_TRUE(Tracer::instance().snapshot().empty());
  EXPECT_EQ(Tracer::instance().recorded(), 0u);
  EXPECT_TRUE(Tracer::instance().anchors().empty());
  EXPECT_TRUE(EventLog::instance().snapshot().empty());
  EXPECT_TRUE(CandidateCosts::instance().snapshot().empty());
  // Span/trace id sources restart, so seeded replays get identical ids.
  ScopedSpan fresh("test.obs.resetall.fresh");
  EXPECT_EQ(fresh.id(), 1u);
  EXPECT_EQ(fresh.trace_id(), 1u);
}

TEST(Registry, ResetZeroesButKeepsReferencesValid) {
  auto& c = counter("test.obs.reset");
  c.inc(41);
  MetricsRegistry::instance().reset();
  EXPECT_EQ(c.value(), 0u);
  c.inc();  // reference still valid after reset
  EXPECT_EQ(c.value(), 1u);
  EXPECT_EQ(&c, &counter("test.obs.reset"));
}

}  // namespace
}  // namespace coda::obs
