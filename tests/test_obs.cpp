// Tests for the observability layer: registry semantics (idempotent
// registration, exact concurrent counting), histogram bucket boundaries,
// span nesting/ring-buffer behaviour, and the JSON exporter's syntax.
#include <gtest/gtest.h>

#include <cctype>
#include <cstddef>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/obs.h"

namespace coda::obs {
namespace {

TEST(Counter, ConcurrentIncrementsSumExactly) {
  auto& c = counter("test.obs.concurrent");
  c.reset();
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 50000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      auto& same = counter("test.obs.concurrent");
      for (std::uint64_t i = 0; i < kPerThread; ++i) same.inc();
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(Counter, RegistrationIsIdempotent) {
  auto& a = counter("test.obs.same");
  auto& b = counter("test.obs.same");
  EXPECT_EQ(&a, &b);
  a.reset();
  a.inc(3);
  b.inc(2);
  EXPECT_EQ(a.value(), 5u);
}

TEST(Gauge, SetAddAndConcurrentAdd) {
  auto& g = gauge("test.obs.gauge");
  g.set(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.add(0.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);

  g.reset();
  constexpr std::size_t kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&g] {
      for (int i = 0; i < kPerThread; ++i) g.add(1.0);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_DOUBLE_EQ(g.value(), static_cast<double>(kThreads * kPerThread));
}

TEST(Histogram, BucketBoundariesAreInclusiveUpper) {
  Histogram h({1.0, 2.0, 4.0});
  ASSERT_EQ(h.n_buckets(), 4u);  // 3 finite + overflow

  h.observe(0.5);  // <= 1        -> bucket 0
  h.observe(1.0);  // == bound[0] -> bucket 0 (inclusive upper)
  h.observe(1.5);  // <= 2        -> bucket 1
  h.observe(2.0);  // == bound[1] -> bucket 1
  h.observe(3.0);  // <= 4        -> bucket 2
  h.observe(4.0);  // == bound[2] -> bucket 2
  h.observe(9.0);  // > 4         -> overflow

  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 2u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  EXPECT_EQ(h.count(), 7u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 2.0 + 3.0 + 4.0 + 9.0);
}

TEST(Histogram, RejectsBadBounds) {
  EXPECT_ANY_THROW(Histogram({}));
  EXPECT_ANY_THROW(Histogram({1.0, 1.0}));
  EXPECT_ANY_THROW(Histogram({2.0, 1.0}));
}

TEST(Histogram, ExponentialBoundsFactory) {
  const auto bounds = Histogram::exponential_bounds(1.0, 2.0, 4);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(bounds[0], 1.0);
  EXPECT_DOUBLE_EQ(bounds[1], 2.0);
  EXPECT_DOUBLE_EQ(bounds[2], 4.0);
  EXPECT_DOUBLE_EQ(bounds[3], 8.0);
}

TEST(Histogram, RegistryBoundsOnlyApplyAtCreation) {
  auto& h = histogram("test.obs.hist", {1.0, 10.0});
  auto& again = histogram("test.obs.hist", {99.0});  // ignored: exists
  EXPECT_EQ(&h, &again);
  ASSERT_EQ(h.bounds().size(), 2u);
  EXPECT_DOUBLE_EQ(h.bounds()[1], 10.0);
}

TEST(Tracer, ScopedSpansNestParentChild) {
  Tracer tracer(16);
  EXPECT_EQ(Tracer::current_span(), 0u);
  std::uint64_t outer_id = 0;
  std::uint64_t inner_id = 0;
  {
    ScopedSpan outer("outer", tracer);
    outer_id = outer.id();
    EXPECT_EQ(Tracer::current_span(), outer_id);
    {
      ScopedSpan inner("inner", tracer);
      inner_id = inner.id();
      EXPECT_EQ(Tracer::current_span(), inner_id);
    }
    EXPECT_EQ(Tracer::current_span(), outer_id);
  }
  EXPECT_EQ(Tracer::current_span(), 0u);

  const auto spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // Inner finishes first, so it is recorded first.
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[0].id, inner_id);
  EXPECT_EQ(spans[0].parent_id, outer_id);
  EXPECT_EQ(spans[1].name, "outer");
  EXPECT_EQ(spans[1].parent_id, 0u);
  EXPECT_GE(spans[1].duration_seconds, spans[0].duration_seconds);
  EXPECT_LE(spans[1].start_seconds, spans[0].start_seconds);
}

TEST(Tracer, RingBufferOverwritesOldestAndCountsDrops) {
  Tracer tracer(4);
  for (int i = 0; i < 10; ++i) {
    ScopedSpan span("s" + std::to_string(i), tracer);
  }
  EXPECT_EQ(tracer.recorded(), 10u);
  EXPECT_EQ(tracer.dropped(), 6u);
  const auto spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 4u);
  // Oldest-first: the four most recent spans, in recording order.
  EXPECT_EQ(spans[0].name, "s6");
  EXPECT_EQ(spans[3].name, "s9");
}

// --- minimal JSON syntax checker (objects/arrays/strings/numbers) ---------

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      default: return number_or_literal();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;  // skip escaped char
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number_or_literal() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isalnum(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.')) {
      ++pos_;
    }
    return pos_ > start;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

TEST(Export, SnapshotJsonIsWellFormedAndContainsMetrics) {
  counter("test.obs.json.counter").inc(7);
  gauge("test.obs.json.gauge").set(-2.5);
  histogram("test.obs.json.hist", {1.0, 2.0}).observe(1.5);
  { ScopedSpan span("test.obs.json.span"); }

  const std::string json = snapshot_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"test.obs.json.counter\""), std::string::npos);
  EXPECT_NE(json.find("\"test.obs.json.gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"test.obs.json.hist\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"spans\""), std::string::npos);
}

TEST(Export, TextDumpMentionsRegisteredNames) {
  counter("test.obs.dump.counter").inc();
  const std::string text = dump();
  EXPECT_NE(text.find("test.obs.dump.counter"), std::string::npos);
}

TEST(Registry, ResetZeroesButKeepsReferencesValid) {
  auto& c = counter("test.obs.reset");
  c.inc(41);
  MetricsRegistry::instance().reset();
  EXPECT_EQ(c.value(), 0u);
  c.inc();  // reference still valid after reset
  EXPECT_EQ(c.value(), 1u);
  EXPECT_EQ(&c, &counter("test.obs.reset"));
}

}  // namespace
}  // namespace coda::obs
