// Tests for the MLP estimators.
#include <gtest/gtest.h>

#include <cmath>

#include "src/core/metrics.h"
#include "src/data/synthetic.h"
#include "src/ml/linear.h"
#include "src/ml/mlp.h"
#include "src/util/random.h"

namespace coda {
namespace {

TEST(MlpRegressor, FitsNonlinearFunctionBetterThanLinear) {
  Rng rng(41);
  Matrix X(200, 1);
  std::vector<double> y(200);
  for (std::size_t i = 0; i < 200; ++i) {
    X(i, 0) = rng.uniform(-2.0, 2.0);
    y[i] = X(i, 0) * X(i, 0);  // parabola
  }
  MlpRegressor mlp;
  mlp.set_param("epochs", std::int64_t{150});
  mlp.set_param("dropout", 0.0);
  mlp.fit(X, y);
  LinearRegression linear;
  linear.fit(X, y);
  EXPECT_LT(rmse(y, mlp.predict(X)), 0.5 * rmse(y, linear.predict(X)));
}

TEST(MlpRegressor, TargetScalingHandlesLargeTargets) {
  Rng rng(42);
  Matrix X(100, 1);
  std::vector<double> y(100);
  for (std::size_t i = 0; i < 100; ++i) {
    X(i, 0) = rng.uniform(-1.0, 1.0);
    y[i] = 1e5 * X(i, 0) + 5e5;  // huge scale
  }
  MlpRegressor mlp;
  mlp.set_param("epochs", std::int64_t{200});
  mlp.set_param("dropout", 0.0);
  mlp.fit(X, y);
  EXPECT_GT(r2(y, mlp.predict(X)), 0.95);
}

TEST(MlpRegressor, DeterministicPerSeed) {
  RegressionConfig cfg;
  cfg.n_samples = 60;
  cfg.n_features = 3;
  cfg.n_informative = 3;
  const auto d = make_regression(cfg);
  MlpRegressor a, b;
  a.set_param("epochs", std::int64_t{10});
  b.set_param("epochs", std::int64_t{10});
  a.fit(d.X, d.y);
  b.fit(d.X, d.y);
  EXPECT_EQ(a.predict(d.X), b.predict(d.X));
}

TEST(MlpRegressor, PredictBeforeFitThrows) {
  MlpRegressor mlp;
  EXPECT_THROW(mlp.predict(Matrix(1, 1)), StateError);
}

TEST(MlpRegressor, ArchitectureValidation) {
  MlpRegressor mlp;
  mlp.set_param("hidden", std::int64_t{0});
  Matrix X{{1}, {2}};
  EXPECT_THROW(mlp.fit(X, {1.0, 2.0}), InvalidArgument);
}

TEST(MlpClassifier, SeparatesBlobs) {
  ClassificationConfig cfg;
  cfg.n_samples = 200;
  cfg.class_separation = 3.0;
  const auto d = make_classification(cfg);
  MlpClassifier mlp;
  mlp.set_param("epochs", std::int64_t{100});
  mlp.fit(d.X, d.y);
  const auto scores = mlp.predict(d.X);
  for (const double s : scores) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
  EXPECT_GT(accuracy(d.y, scores), 0.9);
}

TEST(MlpClassifier, RejectsNonBinaryLabels) {
  MlpClassifier mlp;
  Matrix X{{1}, {2}};
  EXPECT_THROW(mlp.fit(X, {0.0, 2.0}), InvalidArgument);
}

}  // namespace
}  // namespace coda
