// Tests for k-means clustering.
#include <gtest/gtest.h>

#include <set>

#include "src/data/synthetic.h"
#include "src/ml/kmeans.h"

namespace coda {
namespace {

Matrix blobs(std::size_t per_blob, double separation) {
  CohortWorkloadConfig cfg;
  cfg.n_assets = per_blob * 3;
  cfg.n_cohorts = 3;
  cfg.cohort_separation = separation;
  return make_cohort_workload(cfg).X;
}

TEST(KMeans, RecoversWellSeparatedBlobs) {
  CohortWorkloadConfig cfg;
  cfg.n_assets = 90;
  cfg.n_cohorts = 3;
  cfg.cohort_separation = 8.0;
  const auto d = make_cohort_workload(cfg);

  KMeans::Config km_cfg;
  km_cfg.k = 3;
  KMeans km(km_cfg);
  const auto assignment = km.fit(d.X);

  // Clustering must agree with the true cohorts up to label permutation:
  // every true cohort maps to exactly one cluster.
  std::map<std::size_t, std::set<std::size_t>> cohort_to_clusters;
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    cohort_to_clusters[static_cast<std::size_t>(d.y[i])].insert(
        assignment[i]);
  }
  std::set<std::size_t> used;
  for (const auto& [cohort, clusters] : cohort_to_clusters) {
    EXPECT_EQ(clusters.size(), 1u) << "cohort " << cohort << " split";
    used.insert(*clusters.begin());
  }
  EXPECT_EQ(used.size(), 3u);
}

TEST(KMeans, InertiaDecreasesWithK) {
  const auto X = blobs(30, 4.0);
  double prev = -1.0;
  for (std::size_t k = 1; k <= 4; ++k) {
    KMeans::Config cfg;
    cfg.k = k;
    KMeans km(cfg);
    km.fit(X);
    if (prev >= 0.0) {
      EXPECT_LE(km.inertia(), prev + 1e-9);
    }
    prev = km.inertia();
  }
}

TEST(KMeans, AssignMatchesFitLabels) {
  const auto X = blobs(20, 6.0);
  KMeans::Config cfg;
  cfg.k = 3;
  KMeans km(cfg);
  const auto fit_labels = km.fit(X);
  EXPECT_EQ(km.assign(X), fit_labels);
}

TEST(KMeans, DeterministicPerSeed) {
  const auto X = blobs(20, 4.0);
  KMeans::Config cfg;
  cfg.k = 3;
  KMeans a(cfg), b(cfg);
  EXPECT_EQ(a.fit(X), b.fit(X));
}

TEST(KMeans, KOneCentroidIsMean) {
  Matrix X{{0, 0}, {2, 4}};
  KMeans::Config cfg;
  cfg.k = 1;
  KMeans km(cfg);
  km.fit(X);
  EXPECT_DOUBLE_EQ(km.centroids()(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(km.centroids()(0, 1), 2.0);
}

TEST(KMeans, Validation) {
  KMeans::Config cfg;
  cfg.k = 5;
  KMeans km(cfg);
  EXPECT_THROW(km.fit(Matrix(3, 2)), InvalidArgument);
  EXPECT_THROW(km.assign(Matrix(1, 1)), StateError);
}

TEST(KMeans, ConvergesEarlyOnEasyData) {
  const auto X = blobs(30, 10.0);
  KMeans::Config cfg;
  cfg.k = 3;
  cfg.max_iterations = 100;
  KMeans km(cfg);
  km.fit(X);
  EXPECT_LT(km.iterations_run(), 100u);
}

}  // namespace
}  // namespace coda
