// Tests for CART trees, random forests and gradient boosting.
#include <gtest/gtest.h>

#include <numeric>

#include "src/core/metrics.h"
#include "src/data/synthetic.h"
#include "src/ml/decision_tree.h"
#include "src/ml/gradient_boosting.h"
#include "src/ml/random_forest.h"
#include "src/util/random.h"

namespace coda {
namespace {

// A step function a linear model cannot fit but a depth-1 tree can.
std::pair<Matrix, std::vector<double>> step_data() {
  Matrix X(100, 1);
  std::vector<double> y(100);
  for (std::size_t i = 0; i < 100; ++i) {
    X(i, 0) = static_cast<double>(i);
    y[i] = i < 50 ? 1.0 : 5.0;
  }
  return {X, y};
}

// XOR-style interaction: needs depth >= 2.
std::pair<Matrix, std::vector<double>> xor_data() {
  Rng rng(31);
  Matrix X(400, 2);
  std::vector<double> y(400);
  for (std::size_t i = 0; i < 400; ++i) {
    X(i, 0) = rng.uniform(-1.0, 1.0);
    X(i, 1) = rng.uniform(-1.0, 1.0);
    y[i] = (X(i, 0) > 0.0) == (X(i, 1) > 0.0) ? 1.0 : 0.0;
  }
  return {X, y};
}

TEST(DecisionTree, FitsStepFunctionExactly) {
  const auto [X, y] = step_data();
  DecisionTreeRegressor tree;
  tree.fit(X, y);
  EXPECT_NEAR(rmse(y, tree.predict(X)), 0.0, 1e-12);
}

TEST(DecisionTree, DepthLimitRespected) {
  const auto [X, y] = xor_data();
  DecisionTreeRegressor tree;
  tree.set_param("max_depth", std::int64_t{3});
  tree.fit(X, y);
  EXPECT_LE(tree.tree().depth(), 4u);  // root at depth 1
}

TEST(DecisionTree, SolvesXorWithDepthTwo) {
  const auto [X, y] = xor_data();
  DecisionTreeClassifier tree;
  tree.set_param("max_depth", std::int64_t{3});
  tree.fit(X, y);
  EXPECT_GT(accuracy(y, tree.predict(X)), 0.95);
}

TEST(DecisionTree, PureNodeStopsSplitting) {
  Matrix X{{1}, {2}, {3}};
  std::vector<double> y{4, 4, 4};
  DecisionTreeRegressor tree;
  tree.fit(X, y);
  EXPECT_EQ(tree.tree().n_nodes(), 1u);
  EXPECT_DOUBLE_EQ(tree.predict(Matrix{{99}})[0], 4.0);
}

TEST(DecisionTree, MinSamplesLeafRespected) {
  const auto [X, y] = step_data();
  DecisionTreeRegressor tree;
  tree.set_param("min_samples_leaf", std::int64_t{30});
  tree.fit(X, y);
  // With min leaf 30, the 50/50 split is the only legal one: depth 2.
  EXPECT_LE(tree.tree().depth(), 2u);
}

TEST(DecisionTree, ClassifierRejectsNonBinaryLabels) {
  DecisionTreeClassifier tree;
  Matrix X{{1}, {2}};
  EXPECT_THROW(tree.fit(X, {0.0, 2.0}), InvalidArgument);
}

TEST(DecisionTree, ParamValidation) {
  DecisionTreeRegressor tree;
  tree.set_param("max_depth", std::int64_t{0});
  Matrix X{{1}, {2}};
  EXPECT_THROW(tree.fit(X, {1.0, 2.0}), InvalidArgument);
}

TEST(CartTree, FeatureImportancesConcentrateOnSplitFeature) {
  const auto [X0, y] = step_data();
  Matrix X(100, 3);
  Rng rng(8);
  for (std::size_t i = 0; i < 100; ++i) {
    X(i, 0) = rng.normal();          // noise
    X(i, 1) = X0(i, 0);              // the real signal
    X(i, 2) = rng.normal();          // noise
  }
  DecisionTreeRegressor tree;
  tree.fit(X, y);
  std::vector<double> imp(3, 0.0);
  tree.tree().add_feature_importances(imp);
  EXPECT_GT(imp[1], imp[0]);
  EXPECT_GT(imp[1], imp[2]);
}

TEST(RandomForest, BeatsSingleTreeOnNoisyData) {
  RegressionConfig cfg;
  cfg.n_samples = 300;
  cfg.noise_stddev = 1.5;
  const auto d = make_regression(cfg);
  const auto [train, test] = train_test_split(d, 0.7, 3);

  DecisionTreeRegressor tree;
  tree.set_param("max_depth", std::int64_t{10});
  tree.fit(train.X, train.y);

  RandomForestRegressor forest;
  forest.set_param("n_trees", std::int64_t{40});
  forest.fit(train.X, train.y);

  EXPECT_LT(rmse(test.y, forest.predict(test.X)),
            rmse(test.y, tree.predict(test.X)));
}

TEST(RandomForest, DeterministicPerSeed) {
  const auto [X, y] = xor_data();
  RandomForestRegressor a, b;
  a.fit(X, y);
  b.fit(X, y);
  EXPECT_EQ(a.predict(X), b.predict(X));
}

TEST(RandomForest, ImportancesNormalized) {
  const auto [X, y] = xor_data();
  RandomForestRegressor forest;
  forest.fit(X, y);
  const auto imp = forest.feature_importances();
  const double total = std::accumulate(imp.begin(), imp.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(RandomForestClassifier, ScoresInUnitInterval) {
  const auto [X, y] = xor_data();
  RandomForestClassifier forest;
  forest.fit(X, y);
  for (const double s : forest.predict(X)) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
  EXPECT_GT(accuracy(y, forest.predict(X)), 0.9);
}

TEST(RandomForest, MaxFeaturesValidated) {
  RandomForestRegressor forest;
  forest.set_param("max_features", std::int64_t{99});
  Matrix X{{1, 2}, {3, 4}};
  EXPECT_THROW(forest.fit(X, {1.0, 2.0}), InvalidArgument);
}

TEST(GradientBoosting, DrivesTrainingErrorDown) {
  RegressionConfig cfg;
  cfg.n_samples = 200;
  cfg.noise_stddev = 0.2;
  const auto d = make_regression(cfg);

  GradientBoostingRegressor few;
  few.set_param("n_stages", std::int64_t{5});
  few.fit(d.X, d.y);
  GradientBoostingRegressor many;
  many.set_param("n_stages", std::int64_t{150});
  many.fit(d.X, d.y);

  EXPECT_LT(rmse(d.y, many.predict(d.X)), rmse(d.y, few.predict(d.X)));
}

TEST(GradientBoosting, ZeroStagePredictionIsMean) {
  Matrix X{{1}, {2}, {3}};
  std::vector<double> y{1, 2, 9};
  GradientBoostingRegressor gbm;
  gbm.set_param("n_stages", std::int64_t{1});
  gbm.set_param("learning_rate", 1e-9);  // effectively only the base
  gbm.fit(X, y);
  EXPECT_NEAR(gbm.predict(Matrix{{2}})[0], 4.0, 1e-3);
}

TEST(GradientBoosting, SubsampleWorks) {
  const auto [X, y] = xor_data();
  GradientBoostingRegressor gbm;
  gbm.set_param("subsample", 0.5);
  gbm.set_param("n_stages", std::int64_t{60});
  gbm.fit(X, y);
  EXPECT_LT(rmse(y, gbm.predict(X)), 0.45);
}

TEST(GradientBoosting, ParamValidation) {
  GradientBoostingRegressor gbm;
  gbm.set_param("subsample", 1.5);
  Matrix X{{1}, {2}};
  EXPECT_THROW(gbm.fit(X, {1.0, 2.0}), InvalidArgument);
}

}  // namespace
}  // namespace coda
