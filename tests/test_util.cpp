// Tests for the util layer: hashing, strings, CSV, serialization, RNG,
// thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "src/util/csv.h"
#include "src/util/hash.h"
#include "src/util/random.h"
#include "src/util/serialization.h"
#include "src/util/string_util.h"
#include "src/util/thread_pool.h"

namespace coda {
namespace {

TEST(Hash, KnownFnv1aValues) {
  // FNV-1a reference: hash of empty input is the offset basis.
  EXPECT_EQ(fnv1a(""), Fnv1a::kOffset);
  // "a" = 0x61: (offset ^ 0x61) * prime.
  EXPECT_EQ(fnv1a("a"), (Fnv1a::kOffset ^ 0x61ULL) * Fnv1a::kPrime);
}

TEST(Hash, StableAcrossCalls) {
  EXPECT_EQ(fnv1a("cooperative"), fnv1a("cooperative"));
  EXPECT_NE(fnv1a("cooperative"), fnv1a("cooperativf"));
}

TEST(Hash, IncrementalMatchesOneShot) {
  Fnv1a h;
  h.update("foo").update("bar");
  EXPECT_EQ(h.digest(), fnv1a("foobar"));
}

TEST(Hash, HexRendering) {
  EXPECT_EQ(hash_to_hex(0), "0000000000000000");
  EXPECT_EQ(hash_to_hex(0xdeadbeefULL), "00000000deadbeef");
}

TEST(StringUtil, Split) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split(",x,", ','), (std::vector<std::string>{"", "x", ""}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
}

TEST(StringUtil, Join) {
  EXPECT_EQ(join({"a", "b"}, "->"), "a->b");
  EXPECT_EQ(join({}, ","), "");
}

TEST(StringUtil, Trim) {
  EXPECT_EQ(trim("  x y \t\n"), "x y");
  EXPECT_EQ(trim("   "), "");
}

TEST(StringUtil, StartsWith) {
  EXPECT_TRUE(starts_with("pipeline", "pipe"));
  EXPECT_FALSE(starts_with("pipe", "pipeline"));
}

TEST(StringUtil, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(1536), "1.5 KiB");
}

TEST(Csv, RoundTrip) {
  CsvTable table;
  table.header = {"name", "value"};
  table.rows = {{"plain", "1"}, {"with,comma", "2"}, {"with\"quote", "3"}};
  const auto parsed = parse_csv(to_csv(table), /*has_header=*/true);
  EXPECT_EQ(parsed.header, table.header);
  EXPECT_EQ(parsed.rows, table.rows);
}

TEST(Csv, ParsesQuotedFields) {
  const auto t = parse_csv("a,\"b,c\",\"d\"\"e\"\n", false);
  ASSERT_EQ(t.rows.size(), 1u);
  EXPECT_EQ(t.rows[0], (std::vector<std::string>{"a", "b,c", "d\"e"}));
}

TEST(Csv, SkipsBlankLines) {
  const auto t = parse_csv("a,b\n\nc,d\n", false);
  EXPECT_EQ(t.rows.size(), 2u);
}

TEST(Serialization, RoundTripAllTypes) {
  ByteWriter w;
  w.write_u8(7);
  w.write_u32(123456);
  w.write_u64(1ULL << 40);
  w.write_i64(-42);
  w.write_double(3.25);
  w.write_bool(true);
  w.write_string("hello");
  w.write_bytes({1, 2, 3});
  w.write_doubles({0.5, -0.5});

  ByteReader r(w.buffer());
  EXPECT_EQ(r.read_u8(), 7);
  EXPECT_EQ(r.read_u32(), 123456u);
  EXPECT_EQ(r.read_u64(), 1ULL << 40);
  EXPECT_EQ(r.read_i64(), -42);
  EXPECT_DOUBLE_EQ(r.read_double(), 3.25);
  EXPECT_TRUE(r.read_bool());
  EXPECT_EQ(r.read_string(), "hello");
  EXPECT_EQ(r.read_bytes(), (Bytes{1, 2, 3}));
  EXPECT_EQ(r.read_doubles(), (std::vector<double>{0.5, -0.5}));
  EXPECT_TRUE(r.exhausted());
}

TEST(Serialization, TruncatedBufferThrows) {
  ByteWriter w;
  w.write_string("hello");
  Bytes truncated = w.buffer();
  truncated.resize(truncated.size() - 2);
  ByteReader r(truncated);
  EXPECT_THROW(r.read_string(), DecodeError);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(99);
  Rng b(99);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(5);
  const auto p = rng.permutation(100);
  std::set<std::size_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(Rng, UniformIntRange) {
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
  }
}

TEST(Rng, SplitIsIndependent) {
  Rng parent(42);
  Rng child = parent.split();
  // The child should not replay the parent's stream.
  Rng parent2(42);
  parent2.split();
  EXPECT_DOUBLE_EQ(parent.uniform(), parent2.uniform());
  (void)child;
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ReturnsValues) {
  ThreadPool pool(2);
  auto f = pool.submit([](int a, int b) { return a + b; }, 20, 22);
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(1);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

}  // namespace
}  // namespace coda
