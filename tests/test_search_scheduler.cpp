// Successive-halving search scheduler (DESIGN.md §16, ctest label
// `search`): seeded property suite for the rung math plus engine-level
// behaviour — halving/exhaustive identity, partial-eval accounting for
// pruned candidates, seeded tie-breaking, and cooperative rung-segment
// reuse through a ResultCache.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <numeric>
#include <set>
#include <string>
#include <vector>

#include "src/core/eval_engine.h"
#include "src/core/evaluator.h"
#include "src/core/search_scheduler.h"
#include "src/data/synthetic.h"
#include "src/ml/decision_tree.h"
#include "src/ml/knn.h"
#include "src/ml/linear.h"
#include "src/ml/scalers.h"
#include "src/obs/costs.h"
#include "src/obs/metrics.h"
#include "src/obs/obs.h"

namespace coda {
namespace {

// ---------------------------------------------------------------------------
// halving_survivors

TEST(HalvingSurvivors, CeilOfEntrantsOverEta) {
  EXPECT_EQ(halving_survivors(1, 2), 1u);
  EXPECT_EQ(halving_survivors(2, 2), 1u);
  EXPECT_EQ(halving_survivors(3, 2), 2u);
  EXPECT_EQ(halving_survivors(4, 2), 2u);
  EXPECT_EQ(halving_survivors(5, 2), 3u);
  EXPECT_EQ(halving_survivors(9, 3), 3u);
  EXPECT_EQ(halving_survivors(10, 3), 4u);
  EXPECT_EQ(halving_survivors(48, 4), 12u);
  EXPECT_EQ(halving_survivors(2, 7), 1u);  // never below 1
}

// ---------------------------------------------------------------------------
// tournament_ranks

TEST(TournamentRanks, SeedZeroIsIdentity) {
  const auto ranks = tournament_ranks(7, 0);
  for (std::size_t i = 0; i < ranks.size(); ++i) EXPECT_EQ(ranks[i], i);
}

TEST(TournamentRanks, SeededShuffleIsAValidPermutation) {
  for (std::uint64_t seed : {1u, 42u, 9001u}) {
    const auto ranks = tournament_ranks(16, seed);
    ASSERT_EQ(ranks.size(), 16u);
    std::set<std::size_t> seen(ranks.begin(), ranks.end());
    EXPECT_EQ(seen.size(), 16u) << "seed " << seed << " is not a permutation";
    EXPECT_EQ(*seen.rbegin(), 15u);
  }
}

TEST(TournamentRanks, SameSeedSamePermutation) {
  EXPECT_EQ(tournament_ranks(32, 77), tournament_ranks(32, 77));
  EXPECT_NE(tournament_ranks(32, 77), tournament_ranks(32, 78));
}

// ---------------------------------------------------------------------------
// HalvingPlan properties: seeded sweep over field shapes

void expect_plan_invariants(const HalvingPlan& plan, std::size_t n,
                            std::size_t folds, std::size_t eta) {
  SCOPED_TRACE("n=" + std::to_string(n) + " folds=" + std::to_string(folds) +
               " eta=" + std::to_string(eta));
  ASSERT_FALSE(plan.rungs.empty());
  // Rung 0 races the whole field starting at fold 0.
  EXPECT_EQ(plan.rungs.front().fold_begin, 0u);
  EXPECT_EQ(plan.rungs.front().entrants, n);
  // Fold ranges are contiguous and cover [0, folds) exactly.
  for (std::size_t r = 0; r + 1 < plan.rungs.size(); ++r) {
    EXPECT_EQ(plan.rungs[r].fold_end, plan.rungs[r + 1].fold_begin);
    // Every non-final rung adds exactly one fold.
    EXPECT_EQ(plan.rungs[r].folds(), 1u);
    // Promotion shrinks the field by the halving rule.
    EXPECT_EQ(plan.rungs[r + 1].entrants,
              halving_survivors(plan.rungs[r].entrants, eta));
  }
  EXPECT_EQ(plan.rungs.back().fold_end, folds);
  EXPECT_GE(plan.rungs.back().folds(), 1u);
  // total_fold_evals is the plain sum, and never worse than exhaustive.
  std::size_t sum = 0;
  for (const auto& rung : plan.rungs) sum += rung.entrants * rung.folds();
  EXPECT_EQ(plan.total_fold_evals(), sum);
  EXPECT_EQ(plan.exhaustive_fold_evals(), n * folds);
  EXPECT_LE(plan.total_fold_evals(), plan.exhaustive_fold_evals());
  if (n > 1 && folds > 1) {
    // Any real race saves work: at least one candidate skips >= 1 fold.
    EXPECT_LT(plan.total_fold_evals(), plan.exhaustive_fold_evals());
  }
}

TEST(HalvingPlan, PropertySweepAcrossFieldShapes) {
  for (std::size_t n : {1u, 2u, 3u, 5u, 9u, 17u, 24u, 36u, 48u, 100u}) {
    for (std::size_t folds : {1u, 2u, 3u, 5u, 10u}) {
      for (std::size_t eta : {2u, 3u, 4u, 7u}) {
        expect_plan_invariants(HalvingPlan::build(n, folds, eta), n, folds,
                               eta);
      }
    }
  }
}

TEST(HalvingPlan, SingleCandidateDegeneratesToOneFullRung) {
  const auto plan = HalvingPlan::build(1, 5, 2);
  ASSERT_EQ(plan.rungs.size(), 1u);
  EXPECT_EQ(plan.rungs[0].entrants, 1u);
  EXPECT_EQ(plan.rungs[0].fold_begin, 0u);
  EXPECT_EQ(plan.rungs[0].fold_end, 5u);
  EXPECT_EQ(plan.total_fold_evals(), 5u);
}

TEST(HalvingPlan, SingleFoldDegeneratesToOneRung) {
  const auto plan = HalvingPlan::build(9, 1, 2);
  ASSERT_EQ(plan.rungs.size(), 1u);
  EXPECT_EQ(plan.rungs[0].entrants, 9u);
  EXPECT_EQ(plan.total_fold_evals(), 9u);
}

TEST(HalvingPlan, KnownScheduleNineCandidatesThreeFolds) {
  // 9 on fold 0 -> 5 on fold 1 -> final rung: 3 on fold 2.
  const auto plan = HalvingPlan::build(9, 3, 2);
  ASSERT_EQ(plan.rungs.size(), 3u);
  EXPECT_EQ(plan.rungs[0].entrants, 9u);
  EXPECT_EQ(plan.rungs[1].entrants, 5u);
  EXPECT_EQ(plan.rungs[2].entrants, 3u);
  EXPECT_EQ(plan.total_fold_evals(), 9u + 5u + 3u);
  EXPECT_EQ(plan.exhaustive_fold_evals(), 27u);
}

TEST(HalvingPlan, AggressiveEtaReachesOneSurvivorEarly) {
  // eta larger than the field: a single rung-0 cut leaves one candidate,
  // which then runs all remaining folds in the final rung.
  const auto plan = HalvingPlan::build(5, 4, 8);
  ASSERT_EQ(plan.rungs.size(), 2u);
  EXPECT_EQ(plan.rungs[0].entrants, 5u);
  EXPECT_EQ(plan.rungs[0].folds(), 1u);
  EXPECT_EQ(plan.rungs[1].entrants, 1u);
  EXPECT_EQ(plan.rungs[1].fold_begin, 1u);
  EXPECT_EQ(plan.rungs[1].fold_end, 4u);
  EXPECT_EQ(plan.total_fold_evals(), 5u + 3u);
}

// ---------------------------------------------------------------------------
// rung_key

TEST(RungKey, QualifiesBaseKeyWithEtaSeedAndRung) {
  SearchOptions search;
  search.eta = 3;
  search.seed = 42;
  EXPECT_EQ(rung_key("base", search, 2), "base|shr|e3|s42|r2");
  EXPECT_EQ(rung_key("", search, 2), "");  // non-cooperative candidate
}

// ---------------------------------------------------------------------------
// Engine-level behaviour via synthetic candidates

// A candidate whose score is `base + fold/1000`: the field ranks by `base`
// on every fold, so under kRmse (lower is better) the smallest base wins
// and halving must agree with exhaustive.
EvalEngine::Candidate ranked_candidate(const std::string& spec, double base,
                                       const std::string& key = "") {
  EvalEngine::Candidate c;
  c.spec = spec;
  c.key = key;
  c.score_fold = [base](std::size_t fold, PrefixCache&) {
    return base + static_cast<double>(fold) / 1000.0;
  };
  return c;
}

std::vector<EvalEngine::Candidate> ranked_field(std::size_t n,
                                                bool keyed = false) {
  std::vector<EvalEngine::Candidate> candidates;
  for (std::size_t i = 0; i < n; ++i) {
    const std::string spec = "cand" + std::to_string(i);
    candidates.push_back(ranked_candidate(
        spec, static_cast<double>(n - i), keyed ? "key|" + spec : ""));
  }
  return candidates;  // candN-1 has the lowest score: the kRmse winner
}

EvaluationReport run_engine(std::vector<EvalEngine::Candidate> candidates,
                            std::size_t folds, const EvalOptions& options) {
  EvalEngine engine(options);
  return engine.run(std::move(candidates), folds);
}

TEST(SearchScheduler, HalvingMatchesExhaustiveOnOrderedField) {
  const std::size_t n = 9, folds = 3;
  EvalOptions exhaustive;
  exhaustive.threads = 4;
  const auto ref = run_engine(ranked_field(n), folds, exhaustive);

  EvalOptions halving = exhaustive;
  halving.search.strategy = SearchStrategy::kHalving;
  const auto report = run_engine(ranked_field(n), folds, halving);

  EXPECT_EQ(report.best().spec, ref.best().spec);
  EXPECT_DOUBLE_EQ(report.best().mean_score, ref.best().mean_score);
  ASSERT_EQ(report.best().fold_scores.size(), folds);

  const auto plan = HalvingPlan::build(n, folds, 2);
  EXPECT_EQ(report.rungs, plan.rungs.size());
  EXPECT_EQ(report.fold_evaluations, plan.total_fold_evals());
  EXPECT_EQ(report.fold_evaluations_planned, plan.total_fold_evals());
  EXPECT_LT(report.fold_evaluations, ref.fold_evaluations);
  EXPECT_EQ(ref.fold_evaluations, n * folds);
  EXPECT_EQ(ref.fold_evaluations_planned, n * folds);
  EXPECT_EQ(ref.rungs, 0u);  // exhaustive reports no rungs

  // Pruned rows: count matches the plan's cuts, survivors are unpruned.
  std::size_t pruned = 0;
  for (const auto& c : report.results) {
    if (c.pruned_at_rung >= 0) ++pruned;
  }
  EXPECT_EQ(pruned, n - plan.rungs.back().entrants);
  EXPECT_EQ(report.pruned_candidates, pruned);
  for (const auto& c : ref.results) EXPECT_EQ(c.pruned_at_rung, -1);
}

TEST(SearchScheduler, PrunedCandidatesReportPartialFoldsOnly) {
  const std::size_t n = 8, folds = 4;
  EvalOptions options;
  options.threads = 2;
  options.search.strategy = SearchStrategy::kHalving;
  const auto report = run_engine(ranked_field(n), folds, options);
  const auto plan = HalvingPlan::build(n, folds, 2);
  for (const auto& c : report.results) {
    if (c.pruned_at_rung < 0) {
      EXPECT_EQ(c.fold_scores.size(), folds) << c.spec;
      continue;
    }
    // A candidate pruned at rung r ran exactly folds [0, rungs[r].fold_end):
    // partial evaluation, never a zero/NaN row.
    const auto r = static_cast<std::size_t>(c.pruned_at_rung);
    ASSERT_LT(r, plan.rungs.size());
    EXPECT_EQ(c.fold_scores.size(), plan.rungs[r].fold_end) << c.spec;
    double mean = 0.0;
    for (const double s : c.fold_scores) mean += s;
    mean /= static_cast<double>(c.fold_scores.size());
    EXPECT_DOUBLE_EQ(c.mean_score, mean) << c.spec;
  }
}

TEST(SearchScheduler, SingleCandidateSkipsTheRace) {
  EvalOptions options;
  options.threads = 2;
  options.search.strategy = SearchStrategy::kHalving;
  std::vector<EvalEngine::Candidate> one;
  one.push_back(ranked_candidate("only", 1.0));
  const auto report = run_engine(std::move(one), 5, options);
  EXPECT_EQ(report.rungs, 1u);
  EXPECT_EQ(report.pruned_candidates, 0u);
  EXPECT_EQ(report.fold_evaluations, 5u);
  EXPECT_EQ(report.best().spec, "only");
  EXPECT_EQ(report.best().fold_scores.size(), 5u);
  EXPECT_EQ(report.best().pruned_at_rung, -1);
}

TEST(SearchScheduler, EtaLargerThanFieldKeepsOneSurvivor) {
  EvalOptions options;
  options.threads = 2;
  options.search.strategy = SearchStrategy::kHalving;
  options.search.eta = 8;
  const auto report = run_engine(ranked_field(5), 4, options);
  EXPECT_EQ(report.rungs, 2u);
  EXPECT_EQ(report.pruned_candidates, 4u);
  EXPECT_EQ(report.fold_evaluations, 5u + 3u);
  EXPECT_EQ(report.best().spec, "cand4");  // lowest base survives the cut
  EXPECT_EQ(report.best().fold_scores.size(), 4u);
}

TEST(SearchScheduler, FailedCandidateRanksLastAndIsPruned) {
  EvalOptions options;
  options.threads = 2;
  options.search.strategy = SearchStrategy::kHalving;
  std::vector<EvalEngine::Candidate> candidates;
  EvalEngine::Candidate bad;
  bad.spec = "bad";
  bad.score_fold = [](std::size_t, PrefixCache&) -> double {
    throw InvalidArgument("boom");
  };
  candidates.push_back(std::move(bad));
  candidates.push_back(ranked_candidate("good0", 3.0));
  candidates.push_back(ranked_candidate("good1", 2.0));
  candidates.push_back(ranked_candidate("good2", 1.0));
  const auto report = run_engine(std::move(candidates), 3, options);
  const auto& failed = report.results[0];
  EXPECT_TRUE(failed.failed);
  EXPECT_EQ(failed.failure_message, "boom");
  // Failures sort behind every scored candidate, so rung 0 cuts them first.
  EXPECT_EQ(failed.pruned_at_rung, 0);
  EXPECT_EQ(report.best().spec, "good2");
  EXPECT_FALSE(report.best().failed);
  EXPECT_EQ(report.best().fold_scores.size(), 3u);
}

TEST(SearchScheduler, PruneDecisionsAreScheduleIndependent) {
  // All candidates tie on every fold, so ranking is decided purely by the
  // seeded tournament permutation. Identical decisions must come out of a
  // serial run and a heavily threaded run (the prune-seal rule).
  auto tied_field = [] {
    std::vector<EvalEngine::Candidate> candidates;
    for (std::size_t i = 0; i < 12; ++i) {
      candidates.push_back(
          ranked_candidate("tied" + std::to_string(i), 5.0));
    }
    return candidates;
  };
  EvalOptions serial;
  serial.threads = 1;
  serial.search.strategy = SearchStrategy::kHalving;
  serial.search.seed = 1234;
  EvalOptions threaded = serial;
  threaded.threads = 8;
  const auto a = run_engine(tied_field(), 3, serial);
  const auto b = run_engine(tied_field(), 3, threaded);
  ASSERT_EQ(a.results.size(), b.results.size());
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_EQ(a.results[i].pruned_at_rung, b.results[i].pruned_at_rung)
        << a.results[i].spec;
    EXPECT_EQ(a.results[i].fold_scores, b.results[i].fold_scores)
        << a.results[i].spec;
  }
  EXPECT_EQ(a.best().spec, b.best().spec);
  EXPECT_EQ(a.pruned_candidates, b.pruned_candidates);
}

TEST(SearchScheduler, SeedZeroBreaksTiesByEnumerationOrder) {
  // 4 tied candidates, 2 folds, eta 2: rung 0 keeps ceil(4/2) = 2, and with
  // seed 0 the tie-break is plain enumeration order — the first two survive.
  std::vector<EvalEngine::Candidate> candidates;
  for (std::size_t i = 0; i < 4; ++i) {
    candidates.push_back(ranked_candidate("tied" + std::to_string(i), 5.0));
  }
  EvalOptions options;
  options.threads = 4;
  options.search.strategy = SearchStrategy::kHalving;
  const auto report = run_engine(std::move(candidates), 2, options);
  EXPECT_EQ(report.results[0].pruned_at_rung, -1);
  EXPECT_EQ(report.results[1].pruned_at_rung, -1);
  EXPECT_EQ(report.results[2].pruned_at_rung, 0);
  EXPECT_EQ(report.results[3].pruned_at_rung, 0);
  EXPECT_EQ(report.best().spec, "tied0");  // order-stable, like exhaustive
}

TEST(SearchScheduler, RungSegmentsServeARepeatSearchFromCache) {
  // First halving run publishes every (candidate, rung) segment plus full
  // results for final-rung survivors. A second run over the same keyed
  // field must compute nothing: survivors sweep their base keys, pruned
  // candidates adopt their rung segments.
  LocalResultCache cache;
  EvalOptions options;
  options.threads = 2;
  options.cache = &cache;
  options.search.strategy = SearchStrategy::kHalving;
  const std::size_t n = 9, folds = 3;
  const auto first = run_engine(ranked_field(n, /*keyed=*/true), folds,
                                options);
  const auto plan = HalvingPlan::build(n, folds, 2);
  EXPECT_EQ(first.fold_evaluations, plan.total_fold_evals());

  const auto second = run_engine(ranked_field(n, /*keyed=*/true), folds,
                                 options);
  EXPECT_EQ(second.fold_evaluations, 0u);
  EXPECT_EQ(second.served_from_cache, n);
  EXPECT_EQ(second.evaluated_locally, 0u);
  EXPECT_EQ(second.best().spec, first.best().spec);
  ASSERT_EQ(second.results.size(), first.results.size());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(second.results[i].from_cache) << second.results[i].spec;
    EXPECT_EQ(second.results[i].fold_scores, first.results[i].fold_scores);
    EXPECT_EQ(second.results[i].pruned_at_rung,
              first.results[i].pruned_at_rung);
  }
}

TEST(SearchScheduler, FinalRungSurvivorsPublishPlainBaseKeys) {
  // A later *exhaustive* run can reuse the halving winners' full-CV
  // results: survivors republish under their plain base keys.
  LocalResultCache cache;
  EvalOptions halving;
  halving.threads = 2;
  halving.cache = &cache;
  halving.search.strategy = SearchStrategy::kHalving;
  const auto first = run_engine(ranked_field(6, /*keyed=*/true), 3, halving);
  const auto plan = HalvingPlan::build(6, 3, 2);
  const std::size_t survivors = plan.rungs.back().entrants;

  EvalOptions exhaustive;
  exhaustive.threads = 2;
  exhaustive.cache = &cache;
  const auto second = run_engine(ranked_field(6, /*keyed=*/true), 3,
                                 exhaustive);
  EXPECT_EQ(second.served_from_cache, survivors);
  EXPECT_EQ(second.evaluated_locally, 6u - survivors);
  EXPECT_EQ(second.best().spec, first.best().spec);
  EXPECT_DOUBLE_EQ(second.best().mean_score, first.best().mean_score);
}

TEST(SearchScheduler, SearchMetricsAndPrunedCostsAreRecorded) {
  obs::MetricsRegistry::instance().reset();
  obs::CandidateCosts::instance().reset();
  EvalOptions options;
  options.threads = 2;
  options.search.strategy = SearchStrategy::kHalving;
  const std::size_t n = 9, folds = 3;
  const auto report = run_engine(ranked_field(n), folds, options);
  const auto plan = HalvingPlan::build(n, folds, 2);

  const auto& reg = obs::MetricsRegistry::instance();
  EXPECT_EQ(reg.find_counter("eval.search.rungs").value_or(0),
            plan.rungs.size());
  EXPECT_EQ(reg.find_counter("eval.search.pruned").value_or(0),
            report.pruned_candidates);
  EXPECT_EQ(reg.find_counter("eval.search.fold_evals_saved").value_or(0),
            plan.exhaustive_fold_evals() - plan.total_fold_evals());

  // CandidateCosts mirrors the report: pruned rows carry the rung and the
  // folds they actually ran (the --metrics-json `pruned_at_rung` column).
  const auto costs = obs::CandidateCosts::instance().snapshot();
  for (const auto& c : report.results) {
    const auto it = costs.find(c.spec);
    ASSERT_NE(it, costs.end()) << c.spec;
    EXPECT_EQ(it->second.pruned_at_rung, c.pruned_at_rung) << c.spec;
    EXPECT_EQ(it->second.folds, c.fold_scores.size()) << c.spec;
  }
}

// ---------------------------------------------------------------------------
// GraphEvaluator-level identity on a real (Fig-3-shaped) workload

TEST(SearchScheduler, GraphSearchHalvingSelectsTheExhaustiveBest) {
  RegressionConfig cfg;
  cfg.n_samples = 150;
  cfg.n_features = 5;
  cfg.n_informative = 4;
  const Dataset data = make_regression(cfg);

  TEGraph graph;
  std::vector<std::unique_ptr<Transformer>> scalers;
  scalers.push_back(std::make_unique<StandardScaler>());
  scalers.push_back(std::make_unique<RobustScaler>());
  scalers.push_back(std::make_unique<NoOp>());
  graph.add_feature_scalers(std::move(scalers));
  std::vector<std::unique_ptr<Estimator>> models;
  models.push_back(std::make_unique<LinearRegression>());
  models.push_back(std::make_unique<DecisionTreeRegressor>());
  models.push_back(std::make_unique<KnnRegressor>());
  graph.add_regression_models(std::move(models));

  EvalOptions exhaustive;
  exhaustive.threads = 4;
  const auto ref =
      GraphEvaluator(exhaustive).evaluate(graph, data, KFold(3));

  EvalOptions halving = exhaustive;
  halving.search.strategy = SearchStrategy::kHalving;
  const auto report =
      GraphEvaluator(halving).evaluate(graph, data, KFold(3));

  EXPECT_EQ(report.best().spec, ref.best().spec);
  EXPECT_DOUBLE_EQ(report.best().mean_score, ref.best().mean_score);
  EXPECT_EQ(report.best().fold_scores, ref.best().fold_scores);
  EXPECT_LT(report.fold_evaluations, ref.fold_evaluations);
}

}  // namespace
}  // namespace coda
