// Differential suite for fused plan compilation (DESIGN.md section 14):
// every seeded root→leaf path runs through both the fused (compiled-plan)
// and the interpreted executor, and the results must be BIT-identical —
// same design matrices, same predictions, same fold losses, same selected
// best pipeline. Any drift, however small, is a lowering bug: the fused
// path must replicate the interpreted arithmetic operation for operation.
//
// Labelled tsan;perf: the full-graph differential doubles a Fig 11-shaped
// search, and the engine's plan/prefix memoization runs concurrently under
// the evaluation thread pool.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/core/evaluator.h"
#include "src/core/plan_compiler.h"
#include "src/data/synthetic.h"
#include "src/ml/decision_tree.h"
#include "src/ml/linear.h"
#include "src/ml/pca.h"
#include "src/ml/scalers.h"
#include "src/obs/obs.h"
#include "src/ts/forecast_graph.h"
#include "src/ts/forecast_plan.h"
#include "src/ts/forecasters.h"

namespace coda {
namespace {

using ts::CascadedWindows;
using ts::CompiledForecastPlan;
using ts::FlatWindowing;
using ts::ForecastGraph;
using ts::ForecastGraphEvaluator;
using ts::ForecastPipeline;
using ts::ForecastSpec;
using ts::PreparedFold;
using ts::TsAsIid;
using ts::TsAsIs;
using ts::WindowedData;

TimeSeries differential_series() {
  IndustrialSeriesConfig cfg;
  cfg.length = 170;
  cfg.n_variables = 2;
  cfg.seasonal_amplitude = 2.0;
  cfg.noise_stddev = 0.2;
  return make_industrial_series(cfg);
}

/// Runs one evaluation of `graph` with plan compilation on or off.
EvaluationReport run_search(const ForecastGraph& graph,
                            const TimeSeries& series,
                            const TimeSeriesSlidingSplit& cv,
                            bool compile_plans) {
  EvalOptions options;
  options.metric = Metric::kRmse;
  options.compile_plans = compile_plans;
  ForecastGraphEvaluator evaluator(options);
  return evaluator.evaluate(graph, series, cv);
}

/// Asserts two reports are bit-identical: candidate order, every fold
/// loss (operator== on doubles — no tolerance), and the winning path.
void expect_reports_identical(const EvaluationReport& interpreted,
                              const EvaluationReport& fused) {
  ASSERT_EQ(interpreted.results.size(), fused.results.size());
  for (std::size_t i = 0; i < interpreted.results.size(); ++i) {
    const auto& a = interpreted.results[i];
    const auto& b = fused.results[i];
    SCOPED_TRACE(a.spec);
    EXPECT_EQ(a.spec, b.spec);
    EXPECT_EQ(a.failed, b.failed);
    ASSERT_EQ(a.fold_scores.size(), b.fold_scores.size());
    for (std::size_t f = 0; f < a.fold_scores.size(); ++f) {
      EXPECT_EQ(a.fold_scores[f], b.fold_scores[f]) << "fold " << f;
    }
  }
  EXPECT_EQ(interpreted.best().spec, fused.best().spec);
  EXPECT_EQ(interpreted.best().mean_score, fused.best().mean_score);
}

// The tentpole acceptance test: EVERY legal path of the standard Fig 11
// graph (48 root→leaf paths: 4 scalers x 4 windowers x 12 models behind
// compatibility edges) scored interpreted and fused, with bit-identical
// losses and an identical winner.
TEST(PlanCompilerDifferential, StandardGraphEveryPathBitIdentical) {
  const TimeSeries series = differential_series();
  ForecastSpec spec;
  spec.history = 24;
  const ForecastGraph graph =
      ForecastGraph::standard(spec, /*neural_epochs=*/2);
  const TimeSeriesSlidingSplit cv(/*k=*/2, /*train=*/100, /*val=*/25,
                                  /*buffer=*/4);

  const auto interpreted = run_search(graph, series, cv, false);
  const auto fused = run_search(graph, series, cv, true);
  ASSERT_EQ(interpreted.results.size(), graph.enumerate().size());
  for (const auto& r : interpreted.results) {
    EXPECT_FALSE(r.failed) << r.spec << ": " << r.failure_message;
  }
  expect_reports_identical(interpreted, fused);
}

// Matrix-level differential, one rung below the search: for every
// (scaler, windower) prefix, CompiledForecastPlan::prepare must emit
// exactly the rows the interpreted path's prepare_windows +
// fit_prepared row selection + predict_range_prepared gather would —
// same values, same row order, bit for bit.
TEST(PlanCompilerDifferential, PreparedFoldMatchesInterpretedGather) {
  const TimeSeries series = differential_series();
  ForecastSpec spec;
  spec.history = 12;
  const std::size_t a = 4, b = 110;    // training timestamps [a, b)
  const std::size_t c = 116, d = 150;  // validation targets  [c, d)

  const auto scalers = [] {
    std::vector<std::unique_ptr<Transformer>> s;
    s.push_back(std::make_unique<StandardScaler>());
    s.push_back(std::make_unique<MinMaxScaler>());
    s.push_back(std::make_unique<RobustScaler>());
    s.push_back(std::make_unique<NoOp>());
    return s;
  };
  const auto windowers = [] {
    std::vector<std::unique_ptr<ts::WindowMaker>> w;
    w.push_back(std::make_unique<CascadedWindows>());
    w.push_back(std::make_unique<FlatWindowing>());
    w.push_back(std::make_unique<TsAsIid>());
    w.push_back(std::make_unique<TsAsIs>());
    return w;
  };

  auto sc = scalers();
  for (std::size_t si = 0; si < sc.size(); ++si) {
    auto wd = windowers();
    for (std::size_t wi = 0; wi < wd.size(); ++wi) {
      ForecastPipeline pipeline(
          std::unique_ptr<Transformer>(
              static_cast<Transformer*>(sc[si]->clone().release())),
          wd[wi]->clone(), std::make_unique<ts::ZeroModel>(), spec);
      SCOPED_TRACE(pipeline.scaler().spec() + " | " +
                   pipeline.windower().name());

      // Interpreted reference: the full windowed matrix plus the row
      // selections score_forecast_fold's interpreted arm performs.
      const WindowedData windows = pipeline.prepare_windows(series, a, b);
      std::vector<std::size_t> train_rows, val_rows;
      for (std::size_t i = 0; i < windows.y.size(); ++i) {
        if (windows.span_starts[i] >= a && windows.target_times[i] < b) {
          train_rows.push_back(i);
        }
        if (windows.target_times[i] >= c && windows.target_times[i] < d) {
          val_rows.push_back(i);
        }
      }

      const auto plan = CompiledForecastPlan::compile(pipeline);
      const PreparedFold fold = plan->prepare(series, a, b, c, d);

      ASSERT_EQ(fold.X_train.rows(), train_rows.size());
      ASSERT_EQ(fold.X_val.rows(), val_rows.size());
      ASSERT_EQ(fold.X_train.cols(), windows.X.cols());
      for (std::size_t r = 0; r < train_rows.size(); ++r) {
        EXPECT_EQ(fold.y_train[r], windows.y[train_rows[r]]);
        for (std::size_t col = 0; col < windows.X.cols(); ++col) {
          EXPECT_EQ(fold.X_train(r, col), windows.X(train_rows[r], col))
              << "train row " << r << " col " << col;
        }
      }
      for (std::size_t r = 0; r < val_rows.size(); ++r) {
        // Validation ground truth is in original units: the raw target.
        EXPECT_EQ(fold.y_val[r],
                  series.values()(windows.target_times[val_rows[r]], 0));
        for (std::size_t col = 0; col < windows.X.cols(); ++col) {
          EXPECT_EQ(fold.X_val(r, col), windows.X(val_rows[r], col))
              << "val row " << r << " col " << col;
        }
      }
    }
  }
}

// Prediction-level differential: a model trained on the fused fold must
// predict bit-identically to one trained through the interpreted flow.
TEST(PlanCompilerDifferential, PredictionsBitIdentical) {
  const TimeSeries series = differential_series();
  ForecastSpec spec;
  spec.history = 16;
  const std::size_t a = 0, b = 110, c = 114, d = 150;

  ForecastPipeline interpreted(std::make_unique<StandardScaler>(),
                               std::make_unique<CascadedWindows>(),
                               std::make_unique<ts::ArModel>(), spec);
  ForecastPipeline fused = interpreted;

  const WindowedData windows = interpreted.prepare_windows(series, a, b);
  interpreted.fit_prepared(series, a, b, windows);
  const auto [pred, truth] =
      interpreted.predict_range_prepared(windows, c, d);

  const auto plan = CompiledForecastPlan::compile(fused);
  const PreparedFold fold = plan->prepare(series, a, b, c, d);
  fused.model().fit(fold.X_train, fold.y_train);
  const auto fused_pred = fused.model().predict(fold.X_val);

  ASSERT_EQ(pred.size(), fused_pred.size());
  for (std::size_t i = 0; i < pred.size(); ++i) {
    EXPECT_EQ(pred[i], fused_pred[i]) << "prediction " << i;
    EXPECT_EQ(truth[i], fold.y_val[i]) << "truth " << i;
  }
}

// Tabular differential: a TE-Graph whose chains mix fusable scalers with
// an unfusable stage (PCA has no affine lowering) — fused execution must
// segment around the fallback and still score bit-identically.
TEST(PlanCompilerDifferential, TabularGraphWithFallbackBitIdentical) {
  RegressionConfig cfg;
  cfg.n_samples = 140;
  cfg.n_features = 5;
  cfg.n_informative = 4;
  cfg.noise_stddev = 0.1;
  const Dataset data = make_regression(cfg);

  TEGraph graph;
  std::vector<std::unique_ptr<Transformer>> scalers;
  scalers.push_back(std::make_unique<StandardScaler>());
  scalers.push_back(std::make_unique<RobustScaler>());
  scalers.push_back(std::make_unique<NoOp>());
  graph.add_feature_scalers(std::move(scalers));
  std::vector<StageOption> reducers;
  auto pca = std::make_unique<PCA>();
  pca->set_param("n_components", std::int64_t{3});
  reducers.push_back(make_option(std::move(pca)));
  reducers.push_back(make_option(std::make_unique<MinMaxScaler>()));
  graph.add_stage("reduce", std::move(reducers));
  std::vector<std::unique_ptr<Estimator>> models;
  models.push_back(std::make_unique<LinearRegression>());
  models.push_back(std::make_unique<DecisionTreeRegressor>());
  graph.add_regression_models(std::move(models));

  const auto run = [&](bool compile_plans) {
    EvalOptions options;
    options.metric = Metric::kRmse;
    options.compile_plans = compile_plans;
    GraphEvaluator evaluator(options);
    return evaluator.evaluate(graph, data, KFold(4));
  };
  const auto interpreted = run(false);
  const auto fused = run(true);
  for (const auto& r : interpreted.results) {
    EXPECT_FALSE(r.failed) << r.spec << ": " << r.failure_message;
  }
  expect_reports_identical(interpreted, fused);
}

// The eval.plan.* metric family: a compilation containing an unfusable
// stage counts it as fallback, fusable stages as fused, and exactly one
// compilation tick.
TEST(PlanCompilerMetrics, CompileCountsFusedAndFallbackStages) {
  const auto& compiled = obs::counter("eval.plan.compiled");
  const auto& fused = obs::counter("eval.plan.fused_stages");
  const auto& fallback = obs::counter("eval.plan.fallback");

  Pipeline mixed;
  mixed.add_transformer(std::make_unique<StandardScaler>());
  auto pca = std::make_unique<PCA>();
  pca->set_param("n_components", std::int64_t{2});
  mixed.add_transformer(std::move(pca));
  mixed.add_transformer(std::make_unique<MinMaxScaler>());
  mixed.set_estimator(std::make_unique<LinearRegression>());

  const std::uint64_t compiled0 = compiled.value();
  const std::uint64_t fused0 = fused.value();
  const std::uint64_t fallback0 = fallback.value();
  const auto plan = compile_tabular_plan(mixed);
  EXPECT_EQ(compiled.value() - compiled0, 1u);
  EXPECT_EQ(fused.value() - fused0, 2u);
  EXPECT_EQ(fallback.value() - fallback0, 1u);
  ASSERT_EQ(plan->stages.size(), 3u);
  EXPECT_TRUE(plan->stages[0].fused);
  EXPECT_FALSE(plan->stages[1].fused);
  EXPECT_TRUE(plan->stages[2].fused);
}

// Forecast lowering boundary conditions (forecast_plan.h): both stages
// fuse for lowerable scaler + windower; the as-is feed trivially fuses
// the scaler (its transform is dead code there).
TEST(PlanCompilerMetrics, ForecastLoweringBoundaries) {
  ForecastSpec spec;
  spec.history = 8;

  ForecastPipeline full(std::make_unique<MinMaxScaler>(),
                        std::make_unique<CascadedWindows>(),
                        std::make_unique<ts::ZeroModel>(), spec);
  auto plan = CompiledForecastPlan::compile(full);
  EXPECT_TRUE(plan->scaler_fused());
  EXPECT_EQ(plan->lowering(), ts::WindowLowering::kHistory);

  ForecastPipeline asis(std::make_unique<RobustScaler>(),
                        std::make_unique<TsAsIs>(),
                        std::make_unique<ts::ZeroModel>(), spec);
  plan = CompiledForecastPlan::compile(asis);
  EXPECT_TRUE(plan->scaler_fused());
  EXPECT_EQ(plan->lowering(), ts::WindowLowering::kAsIs);
}

// The virtual fit must reproduce the interpreted fit's statistics exactly:
// fitting scaler B on A's materialized output vs computing B's affine on
// the virtual chain view yields the same shift/div bit for bit.
TEST(PlanCompilerVirtualFit, MatchesMaterializedFit) {
  RegressionConfig cfg;
  cfg.n_samples = 90;
  cfg.n_features = 4;
  cfg.n_informative = 3;
  const Dataset data = make_regression(cfg);

  StandardScaler first;
  first.fit(data.X, data.y);
  const Matrix stage1 = first.transform(data.X);

  FusedChain chain;
  chain.stages.push_back(lower_scaler(first));

  const std::vector<std::unique_ptr<Transformer>> seconds = [] {
    std::vector<std::unique_ptr<Transformer>> v;
    v.push_back(std::make_unique<StandardScaler>());
    v.push_back(std::make_unique<MinMaxScaler>());
    v.push_back(std::make_unique<RobustScaler>());
    return v;
  }();
  for (const auto& proto : seconds) {
    SCOPED_TRACE(proto->name());
    auto fitted = proto->clone();
    static_cast<Transformer&>(*fitted).fit(stage1, data.y);
    const FusedAffine direct =
        lower_scaler(static_cast<const Transformer&>(*fitted));
    const FusedAffine virt =
        fit_affine_virtual(*proto, data.X, chain);
    ASSERT_EQ(direct.shift.size(), virt.shift.size());
    for (std::size_t c = 0; c < direct.shift.size(); ++c) {
      EXPECT_EQ(direct.shift[c], virt.shift[c]) << "shift col " << c;
      EXPECT_EQ(direct.div[c], virt.div[c]) << "div col " << c;
    }
  }
}

}  // namespace
}  // namespace coda
