// Numerical-equivalence suite for the shared compute kernels (DESIGN.md
// §11). The blocked/tiled GEMMs must match the naive reference loops they
// replaced — bit-for-bit in the NN/TN orientations (ascending-k guarantee),
// and to tight tolerance in NT, whose 4-way dot chains reassociate. The
// golden loss-curve tests at the bottom pin the entire training hot path:
// the curves were captured from the pre-kernel implementation at fixed
// seeds, and the kernel-backed layers reproduce them exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

#include "src/core/kernels.h"
#include "src/data/matrix.h"
#include "src/nn/activations.h"
#include "src/nn/conv1d.h"
#include "src/nn/dense.h"
#include "src/nn/loss.h"
#include "src/nn/lstm.h"
#include "src/nn/optimizer.h"
#include "src/nn/sequential.h"
#include "src/nn/trainer.h"
#include "src/obs/metrics.h"
#include "src/util/random.h"

namespace coda {
namespace {

struct Shape {
  std::size_t m, n, k;
};

// Ragged shapes chosen to exercise every edge of the blocking: single
// rows/cols, sub-tile sizes, non-multiples of the 8x12 register tile, and
// k/n large enough to cross the 384-deep k panels and 240-wide column
// panels (so the accumulator-carry path between panels is covered).
const std::vector<Shape> kShapes = {
    {1, 1, 1},   {1, 7, 3},    {5, 1, 9},     {8, 12, 4},
    {7, 13, 17}, {13, 29, 31}, {64, 64, 64},  {61, 67, 129},
    {3, 5, 500}, {9, 260, 40}, {130, 250, 70}};

std::vector<double> random_buffer(std::size_t size, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(size);
  for (double& x : v) x = rng.uniform(-1.0, 1.0);
  return v;
}

double max_abs_diff(const std::vector<double>& a,
                    const std::vector<double>& b) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

TEST(Kernels, GemmNnBitIdenticalToReference) {
  for (const auto& s : kShapes) {
    const auto a = random_buffer(s.m * s.k, 11 + s.m);
    const auto b = random_buffer(s.k * s.n, 23 + s.n);
    // Nonzero initial C: the kernels accumulate, they do not overwrite.
    auto c_ref = random_buffer(s.m * s.n, 37 + s.k);
    auto c_ker = c_ref;
    kernels::reference::gemm_nn(s.m, s.n, s.k, a.data(), s.k, b.data(), s.n,
                                c_ref.data(), s.n);
    kernels::gemm_nn(s.m, s.n, s.k, a.data(), s.k, b.data(), s.n,
                     c_ker.data(), s.n);
    EXPECT_EQ(max_abs_diff(c_ref, c_ker), 0.0)
        << "shape " << s.m << "x" << s.n << "x" << s.k;
  }
}

TEST(Kernels, GemmTnBitIdenticalToReference) {
  for (const auto& s : kShapes) {
    const auto a = random_buffer(s.k * s.m, 41 + s.m);  // stored k x m
    const auto b = random_buffer(s.k * s.n, 43 + s.n);
    auto c_ref = random_buffer(s.m * s.n, 47 + s.k);
    auto c_ker = c_ref;
    kernels::reference::gemm_tn(s.m, s.n, s.k, a.data(), s.m, b.data(), s.n,
                                c_ref.data(), s.n);
    kernels::gemm_tn(s.m, s.n, s.k, a.data(), s.m, b.data(), s.n,
                     c_ker.data(), s.n);
    EXPECT_EQ(max_abs_diff(c_ref, c_ker), 0.0)
        << "shape " << s.m << "x" << s.n << "x" << s.k;
  }
}

TEST(Kernels, GemmNtMatchesReferenceWithinTolerance) {
  // NT accumulates each dot product in 4 independent chains, so results can
  // differ from the strictly sequential reference by reassociation only —
  // bounded far below 1e-12 at these magnitudes.
  for (const auto& s : kShapes) {
    const auto a = random_buffer(s.m * s.k, 53 + s.m);
    const auto b = random_buffer(s.n * s.k, 59 + s.n);  // stored n x k
    auto c_ref = random_buffer(s.m * s.n, 61 + s.k);
    auto c_ker = c_ref;
    kernels::reference::gemm_nt(s.m, s.n, s.k, a.data(), s.k, b.data(), s.k,
                                c_ref.data(), s.n);
    kernels::gemm_nt(s.m, s.n, s.k, a.data(), s.k, b.data(), s.k,
                     c_ker.data(), s.n);
    EXPECT_LT(max_abs_diff(c_ref, c_ker), 1e-12)
        << "shape " << s.m << "x" << s.n << "x" << s.k;
  }
}

TEST(Kernels, GemmHandlesStridedLeadingDimensions) {
  // Operate on an interior submatrix of larger row-major buffers — the
  // layout the Lstm uses for per-timestep slices of a flattened batch.
  const std::size_t m = 9, n = 14, k = 21;
  const std::size_t lda = k + 5, ldb = n + 3, ldc = n + 7;
  const auto a = random_buffer(m * lda, 71);
  const auto b = random_buffer(k * ldb, 73);
  auto c_ref = random_buffer(m * ldc, 79);
  auto c_ker = c_ref;
  kernels::reference::gemm_nn(m, n, k, a.data() + 2, lda, b.data() + 1, ldb,
                              c_ref.data() + 3, ldc);
  kernels::gemm_nn(m, n, k, a.data() + 2, lda, b.data() + 1, ldb,
                   c_ker.data() + 3, ldc);
  EXPECT_EQ(max_abs_diff(c_ref, c_ker), 0.0);
  // Bytes outside the m x n window (including the gap columns) untouched —
  // both paths wrote the same buffer, so any stray write would differ from
  // the reference copy only if the kernel strayed.
}

TEST(Kernels, FusedEpilogueMatchesSeparatePasses) {
  const std::size_t m = 17, n = 19, k = 23;
  const auto a = random_buffer(m * k, 83);
  const auto b = random_buffer(k * n, 89);
  const auto bias = random_buffer(n, 97);
  for (const auto act :
       {kernels::Activation::kNone, kernels::Activation::kRelu,
        kernels::Activation::kSigmoid, kernels::Activation::kTanh}) {
    std::vector<double> c_ref(m * n, 0.0);
    kernels::reference::gemm_nn(m, n, k, a.data(), k, b.data(), n,
                                c_ref.data(), n);
    for (std::size_t r = 0; r < m; ++r) {
      for (std::size_t j = 0; j < n; ++j) {
        c_ref[r * n + j] =
            kernels::activate(c_ref[r * n + j] + bias[j], act);
      }
    }
    std::vector<double> c_ker(m * n, 0.0);
    kernels::gemm_nn(m, n, k, a.data(), k, b.data(), n, c_ker.data(), n,
                     kernels::Epilogue{bias.data(), act});
    EXPECT_EQ(max_abs_diff(c_ref, c_ker), 0.0)
        << "activation " << static_cast<int>(act);
  }
}

TEST(Kernels, RowPartitionInvariance) {
  // The thread-pool split partitions output rows; computing the two halves
  // as separate GEMM calls must be bit-identical to one full call.
  const std::size_t m = 45, n = 37, k = 141;
  const auto a = random_buffer(m * k, 101);
  const auto b = random_buffer(k * n, 103);
  std::vector<double> c_full(m * n, 0.0);
  std::vector<double> c_split(m * n, 0.0);
  kernels::gemm_nn(m, n, k, a.data(), k, b.data(), n, c_full.data(), n);
  const std::size_t half = m / 2;
  kernels::gemm_nn(half, n, k, a.data(), k, b.data(), n, c_split.data(), n);
  kernels::gemm_nn(m - half, n, k, a.data() + half * k, k, b.data(), n,
                   c_split.data() + half * n, n);
  EXPECT_EQ(max_abs_diff(c_full, c_split), 0.0);
}

TEST(Kernels, VectorPrimitives) {
  const std::size_t n = 103;
  const auto x = random_buffer(n, 107);
  auto y = random_buffer(n, 109);
  auto y_ref = y;
  kernels::axpy(n, 0.75, x.data(), y.data());
  for (std::size_t i = 0; i < n; ++i) y_ref[i] += 0.75 * x[i];
  EXPECT_EQ(max_abs_diff(y, y_ref), 0.0);

  kernels::scale(n, -1.25, y.data());
  for (double& v : y_ref) v *= -1.25;
  EXPECT_EQ(max_abs_diff(y, y_ref), 0.0);

  double d_ref = 0.0;
  for (std::size_t i = 0; i < n; ++i) d_ref += x[i] * y[i];
  EXPECT_DOUBLE_EQ(kernels::dot(n, x.data(), y.data()), d_ref);

  const std::size_t m = 11, cols = 13;
  const auto a = random_buffer(m * cols, 113);
  std::vector<double> sums(cols, 0.5);
  auto sums_ref = sums;
  kernels::col_sums_add(m, cols, a.data(), cols, sums.data());
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t j = 0; j < cols; ++j) sums_ref[j] += a[r * cols + j];
  }
  EXPECT_EQ(max_abs_diff(sums, sums_ref), 0.0);
}

TEST(Kernels, ConcurrentGemmsAreIndependent) {
  // Each worker owns its buffers; the kernels share only thread_local pack
  // scratch and the metrics counters. Run under `ctest -L tsan` to prove
  // the sharing is race-free.
  constexpr int kWorkers = 4;
  const std::size_t m = 48, n = 48, k = 48;
  std::vector<std::vector<double>> results(kWorkers);
  std::vector<std::thread> threads;
  for (int w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&, w] {
      const auto a = random_buffer(m * k, 127 + w);
      const auto b = random_buffer(k * n, 131 + w);
      std::vector<double> c(m * n, 0.0);
      for (int rep = 0; rep < 3; ++rep) {
        std::fill(c.begin(), c.end(), 0.0);
        kernels::gemm_nn(m, n, k, a.data(), k, b.data(), n, c.data(), n);
      }
      results[w] = std::move(c);
    });
  }
  for (auto& t : threads) t.join();
  for (int w = 0; w < kWorkers; ++w) {
    const auto a = random_buffer(m * k, 127 + w);
    const auto b = random_buffer(k * n, 131 + w);
    std::vector<double> expected(m * n, 0.0);
    kernels::reference::gemm_nn(m, n, k, a.data(), k, b.data(), n,
                                expected.data(), n);
    EXPECT_EQ(max_abs_diff(results[w], expected), 0.0) << "worker " << w;
  }
}

TEST(Kernels, GemmCountersAdvance) {
  auto& calls = obs::counter("kernel.gemm.calls");
  auto& flops = obs::counter("kernel.gemm.flops");
  const auto calls_before = calls.value();
  const auto flops_before = flops.value();
  Matrix a(8, 16);
  Matrix b(16, 4);
  a.fill(0.5);
  b.fill(0.25);
  Matrix c = kernels::matmul(a, b);
  EXPECT_EQ(calls.value(), calls_before + 1);
  EXPECT_EQ(flops.value(), flops_before + 2ull * 8 * 16 * 4);
  EXPECT_NEAR(c(0, 0), 16 * 0.5 * 0.25, 1e-12);
}

TEST(Kernels, DenseFusedActivationMatchesSeparateLayer) {
  // A Dense with fused ReLU must be indistinguishable — forward and
  // gradients — from Dense followed by a standalone ReLU layer.
  const Matrix X = [&] {
    Rng rng(139);
    Matrix m(20, 10);
    for (double& v : m.data()) v = rng.uniform(-1.0, 1.0);
    return m;
  }();
  nn::Dense fused(10, 7, 991, kernels::Activation::kRelu);
  nn::Dense plain(10, 7, 991);
  nn::ReLU relu;

  const Matrix out_fused = fused.forward(X, true);
  const Matrix out_plain = relu.forward(plain.forward(X, true), true);
  ASSERT_EQ(out_fused.rows(), out_plain.rows());
  EXPECT_EQ(max_abs_diff(out_fused.data(), out_plain.data()), 0.0);

  Matrix g(20, 7);
  Rng rng(149);
  for (double& v : g.data()) v = rng.uniform(-1.0, 1.0);
  const Matrix dx_fused = fused.backward(g);
  const Matrix dx_plain = plain.backward(relu.backward(g));
  EXPECT_EQ(max_abs_diff(dx_fused.data(), dx_plain.data()), 0.0);
  EXPECT_EQ(max_abs_diff(fused.parameters()[0]->grad.data(),
                         plain.parameters()[0]->grad.data()),
            0.0);
  EXPECT_EQ(max_abs_diff(fused.parameters()[1]->grad.data(),
                         plain.parameters()[1]->grad.data()),
            0.0);
}

// ---------------------------------------------------------------------------
// Golden loss curves: captured from the pre-kernel scalar implementation at
// fixed seeds (epochs=5, batch=16, shuffle_seed=7, Adam 1e-3, MSE). The
// kernel-backed layers reproduce the forward passes bit-for-bit, so the
// trajectories must match to float-printing precision. A drift here means
// the rewrite changed training numerics, not just speed.
// ---------------------------------------------------------------------------

Matrix golden_inputs(std::size_t rows, std::size_t cols,
                     std::uint64_t seed) {
  Rng rng(seed);
  Matrix X(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) X(r, c) = rng.uniform(-1.0, 1.0);
  }
  return X;
}

Matrix golden_targets(const Matrix& X) {
  Matrix y(X.rows(), 1);
  for (std::size_t r = 0; r < X.rows(); ++r) {
    double s = 0.0;
    for (std::size_t c = 0; c < X.cols(); ++c) {
      s += (c % 2 == 0 ? 1.0 : -0.5) * X(r, c);
    }
    y(r, 0) = s + 0.1 * X(r, 0) * X(r, 1);
  }
  return y;
}

nn::TrainConfig golden_config() {
  nn::TrainConfig cfg;
  cfg.epochs = 5;
  cfg.batch_size = 16;
  cfg.shuffle_seed = 7;
  return cfg;
}

void expect_curve(const std::vector<double>& got,
                  const std::vector<double>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i], want[i], 1e-9 * std::abs(want[i]))
        << "epoch " << i;
  }
}

TEST(GoldenCurves, MlpTrainingTrajectoryUnchanged) {
  const std::vector<double> kMlpCurve = {
      2.1588932135995602, 2.1164740181241992, 2.0780803628048683,
      2.0416285617351924, 1.9954383476071815};
  const Matrix X = golden_inputs(48, 12, 11);
  const Matrix y = golden_targets(X);
  nn::Sequential net;
  net.emplace<nn::Dense>(12, 16, 101);
  net.emplace<nn::ReLU>();
  net.emplace<nn::Dense>(16, 8, 102);
  net.emplace<nn::ReLU>();
  net.emplace<nn::Dense>(8, 1, 103);
  nn::MseLoss loss;
  nn::Adam opt(1e-3);
  expect_curve(nn::train(net, X, y, loss, opt, golden_config()), kMlpCurve);
}

TEST(GoldenCurves, MlpFusedActivationSameTrajectory) {
  // Same net built with fused Dense+ReLU: the curve must not move.
  const std::vector<double> kMlpCurve = {
      2.1588932135995602, 2.1164740181241992, 2.0780803628048683,
      2.0416285617351924, 1.9954383476071815};
  const Matrix X = golden_inputs(48, 12, 11);
  const Matrix y = golden_targets(X);
  nn::Sequential net;
  net.emplace<nn::Dense>(12, 16, 101, kernels::Activation::kRelu);
  net.emplace<nn::Dense>(16, 8, 102, kernels::Activation::kRelu);
  net.emplace<nn::Dense>(8, 1, 103);
  nn::MseLoss loss;
  nn::Adam opt(1e-3);
  expect_curve(nn::train(net, X, y, loss, opt, golden_config()), kMlpCurve);
}

TEST(GoldenCurves, LstmTrainingTrajectoryUnchanged) {
  const std::vector<double> kLstmCurve = {
      3.1077053433626851, 3.0607513860691675, 3.0343934417377016,
      3.1205801196977521, 3.039978021742773};
  const Matrix X = golden_inputs(40, 16, 21);
  const Matrix y = golden_targets(X);
  nn::Sequential net;
  net.emplace<nn::Lstm>(2, 6, false, 201);
  net.emplace<nn::Dense>(6, 1, 202);
  nn::MseLoss loss;
  nn::Adam opt(1e-3);
  expect_curve(nn::train(net, X, y, loss, opt, golden_config()),
               kLstmCurve);
}

TEST(GoldenCurves, CnnTrainingTrajectoryUnchanged) {
  const std::vector<double> kCnnCurve = {
      6.0761647602117455, 6.4745732692710449, 6.4938155530214194,
      6.6255002295169403, 6.143166803338417};
  const Matrix X = golden_inputs(40, 24, 31);
  const Matrix y = golden_targets(X);
  nn::Sequential net;
  net.emplace<nn::Conv1D>(2, 4, 3, 1, true, 301);
  net.emplace<nn::ReLU>();
  net.emplace<nn::MaxPool1D>(4, 2);
  net.emplace<nn::Dense>(6 * 4, 8, 302);
  net.emplace<nn::ReLU>();
  net.emplace<nn::Dense>(8, 1, 303);
  nn::MseLoss loss;
  nn::Adam opt(1e-3);
  expect_curve(nn::train(net, X, y, loss, opt, golden_config()), kCnnCurve);
}

}  // namespace
}  // namespace coda
