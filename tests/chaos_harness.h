// Deterministic chaos harness (DESIGN.md §9): runs cooperative graph
// searches — the Fig-3 tabular graph and the Fig-11 forecast graph — over a
// SimNet carrying a seeded fault schedule (message drops, latency spikes, a
// directed partition window, a client-crash window), and reports enough to
// assert the two chaos invariants:
//
//   (a) whenever every candidate's evaluation completes, the selected best
//       pipeline is identical to the fault-free run's, and
//   (b) cooperative non-overlap holds: local evaluations across clients
//       never exceed the candidate count (claims partition the space), and
//       abandoned/crashed claims are reclaimable by peers.
//
// Every stochastic decision derives from ChaosSchedule::seed through
// SimNet's per-link fault streams, so a failing schedule reproduces from
// the one-line describe() string a test prints on assertion failure.
#pragma once

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/core/evaluator.h"
#include "src/darr/client.h"
#include "src/darr/repository.h"
#include "src/darr/sharded.h"
#include "src/dist/sim_net.h"
#include "src/obs/event_log.h"
#include "src/obs/trace.h"
#include "src/ts/forecast_graph.h"
#include "src/util/retry.h"

namespace coda::chaos {

/// One seeded fault schedule. Defaults are a fault-free fabric; tests
/// switch on the pieces a scenario needs. Windows are half-open intervals
/// on the SimNet logical clock, which only advances through retry backoff
/// — so a window starting at 0 is active from the first failed transfer
/// and heals once accumulated backoff walks the clock past its end.
struct ChaosSchedule {
  std::uint64_t seed = 1;
  double drop_probability = 0.0;
  double latency_spike_probability = 0.0;
  /// Directed partition between one client and the repository node
  /// (both directions), active while the clock is in the window.
  int partitioned_client = -1;  ///< client index; -1 = no partition
  double partition_start = 0.0;
  double partition_end = 0.0;
  /// Crash window for one client node (every transfer touching it fails).
  int crashed_client = -1;  ///< client index; -1 = no crash
  double crash_start = 0.0;
  double crash_end = 0.0;
  /// Repository tier shape: 0 = the single "darr" node; >= 1 shards the
  /// repository by consistent hashing with `replication` copies per record
  /// (DESIGN.md §13).
  std::size_t n_shards = 0;
  std::size_t replication = 1;
  /// Crash window for one shard node: claims/stores whose serving owner
  /// falls inside the window fail over to the next replica on the ring.
  int crashed_shard = -1;  ///< shard index; -1 = no shard crash
  double shard_crash_start = 0.0;
  double shard_crash_end = 0.0;

  /// One-line reproduction string, printed by tests when an invariant
  /// fails so the schedule can be replayed verbatim.
  std::string describe() const {
    std::ostringstream out;
    out << "ChaosSchedule{seed=" << seed << ", drop=" << drop_probability
        << ", spike=" << latency_spike_probability;
    if (partitioned_client >= 0) {
      out << ", partition(client" << partitioned_client << ", ["
          << partition_start << ", " << partition_end << "))";
    }
    if (crashed_client >= 0) {
      out << ", crash(client" << crashed_client << ", [" << crash_start
          << ", " << crash_end << "))";
    }
    if (n_shards > 0) {
      out << ", shards(" << n_shards << ", rf=" << replication << ")";
    }
    if (crashed_shard >= 0) {
      out << ", crash(shard" << crashed_shard << ", [" << shard_crash_start
          << ", " << shard_crash_end << "))";
    }
    out << "}";
    return out.str();
  }
};

/// Retry tuning for chaos runs: a deep attempt budget so that at drop
/// probabilities <= 0.3 the chance of any single operation exhausting it
/// is ~0.3^12 ≈ 5e-7 — transient faults are absorbed and the cooperative
/// zero-redundancy invariant stays assertable. The backoff sum (~8.5
/// simulated seconds) also bounds the transient windows a schedule may
/// use if the run must heal through them.
inline RetryPolicy chaos_retry_policy(std::uint64_t seed) {
  RetryPolicy policy;
  policy.max_attempts = 12;
  policy.initial_backoff_seconds = 0.05;
  policy.multiplier = 2.0;
  policy.max_backoff_seconds = 1.0;
  policy.jitter_fraction = 0.1;
  policy.deadline_seconds = 20.0;
  policy.seed = seed;
  return policy;
}

/// The shared fabric of one chaos run: a repository tier — the single
/// "darr" node, or a sharded, replicated DarrCluster — plus `n_clients`
/// client nodes, with `schedule` applied to the SimNet.
struct ChaosFabric {
  darr::DarrRepository repository;  ///< single-node tier (n_shards == 0)
  dist::SimNet net;
  dist::NodeId repo_node = 0;
  std::unique_ptr<darr::DarrCluster> cluster;  ///< sharded tier, else null
  std::vector<dist::NodeId> client_nodes;
  std::vector<std::unique_ptr<darr::RecordStore>> services;
  std::vector<std::unique_ptr<darr::DarrClient>> clients;

  ChaosFabric(std::size_t n_clients, const ChaosSchedule& schedule) {
    dist::SimNet::FaultConfig faults;
    faults.seed = schedule.seed;
    faults.drop_probability = schedule.drop_probability;
    faults.latency_spike_probability = schedule.latency_spike_probability;
    if (schedule.n_shards == 0) {
      repo_node = net.add_node("darr");
    } else {
      darr::DarrCluster::Config config;
      config.n_shards = schedule.n_shards;
      config.replication = schedule.replication;
      config.sync_retry = chaos_retry_policy(schedule.seed ^ 0x5eed);
      cluster = std::make_unique<darr::DarrCluster>(&net, config);
    }
    net.set_faults(faults);
    for (std::size_t i = 0; i < n_clients; ++i) {
      const std::string name = "client" + std::to_string(i);
      const dist::NodeId node = net.add_node(name);
      client_nodes.push_back(node);
      const RetryPolicy retry = chaos_retry_policy(schedule.seed ^ (i + 1));
      if (cluster) {
        services.push_back(std::make_unique<darr::ShardedDarrService>(
            cluster.get(), node, retry));
        clients.push_back(std::make_unique<darr::DarrClient>(
            services.back().get(), name, retry));
      } else {
        clients.push_back(std::make_unique<darr::DarrClient>(
            &repository, &net, node, repo_node, name, retry));
      }
    }
    if (schedule.partitioned_client >= 0) {
      const dist::NodeId node =
          client_nodes.at(static_cast<std::size_t>(
              schedule.partitioned_client));
      for (const dist::NodeId repo : repository_nodes()) {
        net.partition(node, repo, schedule.partition_start,
                      schedule.partition_end);
        net.partition(repo, node, schedule.partition_start,
                      schedule.partition_end);
      }
    }
    if (schedule.crashed_client >= 0) {
      net.crash_node(client_nodes.at(static_cast<std::size_t>(
                         schedule.crashed_client)),
                     schedule.crash_start, schedule.crash_end);
    }
    if (schedule.crashed_shard >= 0) {
      require(cluster != nullptr,
              "ChaosSchedule: crashed_shard needs n_shards > 0");
      net.crash_node(
          cluster->node(static_cast<std::size_t>(schedule.crashed_shard)),
          schedule.shard_crash_start, schedule.shard_crash_end);
    }
  }

  /// Every node of the repository tier (one, or each shard).
  std::vector<dist::NodeId> repository_nodes() const {
    if (!cluster) return {repo_node};
    std::vector<dist::NodeId> nodes;
    for (std::size_t s = 0; s < cluster->n_shards(); ++s) {
      nodes.push_back(cluster->node(s));
    }
    return nodes;
  }

  /// Repository counters, summed across shards in sharded mode.
  darr::DarrRepository::Counters counters() const {
    return cluster ? cluster->counters() : repository.counters();
  }
};

/// What a chaos run yields, shaped for invariant assertions.
struct ChaosRun {
  std::vector<EvaluationReport> reports;  ///< one per client
  std::size_t total_candidates = 0;
  std::size_t total_local_evaluations = 0;
  std::size_t redundant_evaluations = 0;
  /// Fold evaluations computed locally, summed across the fleet. Under a
  /// halving search with no faults this equals the rung plan's
  /// total_fold_evals() exactly — the fold-level zero-redundancy invariant
  /// (each (candidate, rung) unit is computed by exactly one claim
  /// winner; candidate-level `redundant_evaluations` does not apply when a
  /// candidate's rungs may legitimately split across clients).
  std::size_t total_fold_evaluations = 0;
  /// The per-client plan total (identical on every client).
  std::size_t fold_evaluations_planned = 0;
  darr::DarrRepository::Counters repository_counters;
  darr::DarrCluster::SyncStats sync_stats;  ///< zeros in single-node mode
  dist::SimNet::FaultStats fault_stats;
};

namespace detail {

/// Drives one evaluator callable per client concurrently (each client has
/// its own DarrClient, mirroring darr::run_cooperative_search) and folds
/// the per-client reports into a ChaosRun.
template <typename EvaluateFn>
ChaosRun run_clients(ChaosFabric& fabric, std::size_t n_candidates,
                     EvaluateFn evaluate) {
  const std::size_t n_clients = fabric.clients.size();
  ChaosRun run;
  run.total_candidates = n_candidates;
  run.reports.resize(n_clients);

  std::vector<std::thread> threads;
  threads.reserve(n_clients);
  for (std::size_t i = 0; i < n_clients; ++i) {
    threads.emplace_back([&, i] {
      const obs::NodeScope node_scope(fabric.clients[i]->client_name());
      run.reports[i] = evaluate(*fabric.clients[i]);
    });
  }
  for (auto& t : threads) t.join();

  for (const auto& report : run.reports) {
    run.total_local_evaluations += report.evaluated_locally;
    run.total_fold_evaluations += report.fold_evaluations;
    run.fold_evaluations_planned = report.fold_evaluations_planned;
  }
  run.redundant_evaluations =
      run.total_local_evaluations > run.total_candidates
          ? run.total_local_evaluations - run.total_candidates
          : 0;
  run.repository_counters = fabric.counters();
  if (fabric.cluster) run.sync_stats = fabric.cluster->sync_stats();
  run.fault_stats = fabric.net.fault_stats();
  return run;
}

}  // namespace detail

/// Failure report for chaos assertions: the reproducible fault schedule
/// followed by the flight-recorder tail — every injected fault, retry
/// give-up, degradation and claim expiry leading up to the failure.
inline std::string flight_recorder_report(const ChaosSchedule& schedule,
                                          std::size_t tail = 64) {
  std::ostringstream out;
  out << "fault schedule: " << schedule.describe() << "\n"
      << obs::EventLog::instance().dump_tail(tail);
  return out.str();
}

/// Cooperative Fig-3-style tabular graph search under `schedule`.
/// `search` selects the racing strategy (default exhaustive; pass a
/// kHalving SearchOptions to race the same graph through the rung
/// scheduler — every client must use the same eta/seed or their rung keys
/// will not cooperate).
inline ChaosRun run_chaos_search(const TEGraph& graph, const Dataset& data,
                                 const CrossValidator& cv, Metric metric,
                                 std::size_t n_clients,
                                 const ChaosSchedule& schedule,
                                 const SearchOptions& search = {}) {
  ChaosFabric fabric(n_clients, schedule);
  return detail::run_clients(
      fabric, graph.enumerate_candidates().size(),
      [&](darr::DarrClient& client) {
        EvalOptions options;
        options.metric = metric;
        options.threads = 1;  // serial per client: attributable division
        options.cache = &client;
        options.search = search;
        return GraphEvaluator(options).evaluate(graph, data, *cv.clone());
      });
}

/// Cooperative Fig-11-style forecast graph search under `schedule`.
inline ChaosRun run_chaos_forecast_search(const ts::ForecastGraph& graph,
                                          const TimeSeries& series,
                                          const TimeSeriesSlidingSplit& cv,
                                          Metric metric,
                                          std::size_t n_clients,
                                          const ChaosSchedule& schedule,
                                          const SearchOptions& search = {}) {
  ChaosFabric fabric(n_clients, schedule);
  return detail::run_clients(
      fabric, graph.enumerate().size(), [&](darr::DarrClient& client) {
        EvalOptions options;
        options.metric = metric;
        options.threads = 1;
        options.cache = &client;
        options.search = search;
        return ts::ForecastGraphEvaluator(options).evaluate(graph, series,
                                                            cv);
      });
}

}  // namespace coda::chaos
