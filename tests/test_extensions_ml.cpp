// Tests for the extension components: LDA, kernel PCA, the iterative
// (MICE-style) imputer, Gaussian Naive Bayes, and nested cross-validation.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "src/core/nested_cv.h"
#include "src/data/synthetic.h"
#include "src/ml/decision_tree.h"
#include "src/ml/imputers.h"
#include "src/ml/iterative_imputer.h"
#include "src/ml/kernel_pca.h"
#include "src/ml/lda.h"
#include "src/ml/linear.h"
#include "src/ml/naive_bayes.h"
#include "src/ml/random_forest.h"
#include "src/ml/scalers.h"
#include "src/util/random.h"

namespace coda {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

// --- Cholesky helpers ----------------------------------------------------

TEST(Cholesky, FactorizesKnownMatrix) {
  Matrix a{{4, 2}, {2, 3}};
  const Matrix l = cholesky(a);
  EXPECT_DOUBLE_EQ(l(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(l(1, 0), 1.0);
  EXPECT_NEAR(l(1, 1), std::sqrt(2.0), 1e-12);
  // Reconstruct.
  const Matrix rebuilt = l.multiply(l.transposed());
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      EXPECT_NEAR(rebuilt(i, j), a(i, j), 1e-12);
    }
  }
}

TEST(Cholesky, RejectsIndefiniteMatrix) {
  Matrix a{{1, 2}, {2, 1}};  // eigenvalues 3 and -1
  EXPECT_THROW(cholesky(a), InvalidArgument);
}

TEST(Cholesky, SubstitutionSolves) {
  Matrix a{{4, 2}, {2, 3}};
  const Matrix l = cholesky(a);
  // Solve A x = b via L y = b, L^T x = y.
  const std::vector<double> b{10, 8};
  const auto y = forward_substitute(l, b);
  const auto x = back_substitute_transposed(l, y);
  EXPECT_NEAR(4 * x[0] + 2 * x[1], 10.0, 1e-12);
  EXPECT_NEAR(2 * x[0] + 3 * x[1], 8.0, 1e-12);
}

// --- LDA -------------------------------------------------------------------

TEST(Lda, SeparatesClassesBetterThanPca) {
  // Two classes separated along one direction, with a much higher-variance
  // irrelevant direction: PCA picks the noise, LDA picks the separation.
  Rng rng(71);
  Matrix X(300, 2);
  std::vector<double> y(300);
  for (std::size_t i = 0; i < 300; ++i) {
    const bool positive = i % 2 == 0;
    y[i] = positive ? 1.0 : 0.0;
    X(i, 0) = rng.normal(positive ? 1.5 : -1.5, 0.5);  // separating axis
    X(i, 1) = rng.normal(0.0, 10.0);                   // loud noise axis
  }
  LinearDiscriminantAnalysis lda;
  lda.fit(X, y);
  const Matrix projected = lda.transform(X);
  ASSERT_EQ(projected.cols(), 1u);
  // Class means in the projected space must be well separated relative to
  // the within-class spread.
  double m0 = 0, m1 = 0, n0 = 0, n1 = 0;
  for (std::size_t i = 0; i < 300; ++i) {
    (y[i] == 1.0 ? m1 : m0) += projected(i, 0);
    (y[i] == 1.0 ? n1 : n0) += 1.0;
  }
  m0 /= n0;
  m1 /= n1;
  double spread = 0.0;
  for (std::size_t i = 0; i < 300; ++i) {
    const double m = y[i] == 1.0 ? m1 : m0;
    spread += (projected(i, 0) - m) * (projected(i, 0) - m);
  }
  spread = std::sqrt(spread / 300.0);
  EXPECT_GT(std::abs(m1 - m0), 3.0 * spread);

  // The discriminant direction is essentially the separating axis.
  const auto& w = lda.components();
  EXPECT_GT(std::abs(w(0, 0)), 5.0 * std::abs(w(1, 0)));
}

TEST(Lda, Validation) {
  LinearDiscriminantAnalysis lda;
  Matrix X{{1, 2}, {3, 4}};
  EXPECT_THROW(lda.fit(X, {1.0, 1.0}), InvalidArgument);  // one class
  EXPECT_THROW(lda.transform(X), StateError);
}

TEST(Lda, WorksInPipelineAsTransformer) {
  ClassificationConfig cfg;
  cfg.n_samples = 200;
  cfg.n_features = 6;
  const auto d = make_classification(cfg);
  Pipeline p;
  p.add_transformer(std::make_unique<LinearDiscriminantAnalysis>());
  p.set_estimator(std::make_unique<GaussianNaiveBayes>());
  p.fit(d.X, d.y);
  EXPECT_GT(accuracy(d.y, p.predict(d.X)), 0.85);
}

// --- Kernel PCA -------------------------------------------------------------

TEST(KernelPca, UnfoldsConcentricCircles) {
  // Two concentric circles are not linearly separable in 2-D; in RBF
  // kernel space the first components separate them by radius.
  Rng rng(72);
  Matrix X(200, 2);
  std::vector<double> radius(200);
  for (std::size_t i = 0; i < 200; ++i) {
    const double r = i % 2 == 0 ? 1.0 : 3.0;
    const double angle = rng.uniform(0.0, 2.0 * 3.14159265);
    radius[i] = r;
    X(i, 0) = r * std::cos(angle) + rng.normal(0.0, 0.05);
    X(i, 1) = r * std::sin(angle) + rng.normal(0.0, 0.05);
  }
  KernelPCA kpca;
  kpca.set_param("n_components", std::int64_t{2});
  kpca.set_param("gamma", 0.5);
  kpca.fit(X, {});
  const Matrix projected = kpca.transform(X);
  // A simple threshold on the first kernel component should separate the
  // rings almost perfectly.
  double inner_mean = 0, outer_mean = 0;
  for (std::size_t i = 0; i < 200; ++i) {
    (radius[i] < 2.0 ? inner_mean : outer_mean) += projected(i, 0);
  }
  inner_mean /= 100.0;
  outer_mean /= 100.0;
  const double midpoint = (inner_mean + outer_mean) / 2.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < 200; ++i) {
    const bool predicted_inner =
        (projected(i, 0) > midpoint) == (inner_mean > midpoint);
    if (predicted_inner == (radius[i] < 2.0)) ++correct;
  }
  EXPECT_GT(correct, 190u);
}

TEST(KernelPca, EigenvaluesDescendAndShapeHolds) {
  RegressionConfig cfg;
  cfg.n_samples = 60;
  cfg.n_features = 4;
  cfg.n_informative = 4;
  const auto d = make_regression(cfg);
  KernelPCA kpca;
  kpca.set_param("n_components", std::int64_t{3});
  kpca.fit(d.X, {});
  const auto projected = kpca.transform(d.X);
  EXPECT_EQ(projected.rows(), 60u);
  EXPECT_EQ(projected.cols(), 3u);
  const auto& ev = kpca.eigenvalues();
  for (std::size_t i = 1; i < ev.size(); ++i) {
    EXPECT_GE(ev[i - 1], ev[i]);
  }
}

TEST(KernelPca, Validation) {
  KernelPCA kpca;
  EXPECT_THROW(kpca.transform(Matrix(2, 2)), StateError);
  kpca.set_param("n_components", std::int64_t{10});
  EXPECT_THROW(kpca.fit(Matrix(3, 2), {}), InvalidArgument);
}

// --- Iterative imputer -------------------------------------------------------

TEST(IterativeImputer, BeatsMeanImputationOnCorrelatedColumns) {
  // Column 2 = 2*col0 - col1: chained regression can reconstruct missing
  // entries almost exactly, mean imputation cannot.
  Rng rng(73);
  Matrix complete(300, 3);
  for (std::size_t i = 0; i < 300; ++i) {
    complete(i, 0) = rng.normal();
    complete(i, 1) = rng.normal();
    complete(i, 2) = 2.0 * complete(i, 0) - complete(i, 1);
  }
  Matrix holey = complete;
  std::vector<std::pair<std::size_t, std::size_t>> holes;
  for (std::size_t i = 0; i < 300; i += 7) {
    holey(i, 2) = kNaN;
    holes.emplace_back(i, 2);
  }

  IterativeImputer mice;
  mice.fit(holey, {});
  const Matrix mice_filled = mice.transform(holey);
  SimpleImputer mean;
  mean.fit(holey, {});
  const Matrix mean_filled = mean.transform(holey);

  double mice_err = 0.0, mean_err = 0.0;
  for (const auto& [r, c] : holes) {
    mice_err += std::abs(mice_filled(r, c) - complete(r, c));
    mean_err += std::abs(mean_filled(r, c) - complete(r, c));
  }
  EXPECT_LT(mice_err, 0.1 * mean_err);
}

TEST(IterativeImputer, HandlesNewDataWithMissing) {
  Rng rng(74);
  Matrix train(100, 2);
  for (std::size_t i = 0; i < 100; ++i) {
    train(i, 0) = rng.normal();
    train(i, 1) = 3.0 * train(i, 0);
  }
  IterativeImputer mice;
  mice.fit(train, {});
  Matrix probe{{2.0, kNaN}};
  const Matrix filled = mice.transform(probe);
  EXPECT_NEAR(filled(0, 1), 6.0, 0.2);
  EXPECT_EQ(count_missing(filled), 0u);
}

TEST(IterativeImputer, FullyMissingColumnThrows) {
  Matrix X{{kNaN, 1.0}, {kNaN, 2.0}};
  IterativeImputer mice;
  EXPECT_THROW(mice.fit(X, {}), InvalidArgument);
}

// --- Gaussian Naive Bayes -----------------------------------------------------

TEST(GaussianNb, SeparatesGaussianBlobs) {
  ClassificationConfig cfg;
  cfg.n_samples = 400;
  cfg.class_separation = 2.5;
  const auto d = make_classification(cfg);
  GaussianNaiveBayes nb;
  nb.fit(d.X, d.y);
  const auto scores = nb.predict(d.X);
  for (const double s : scores) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
  EXPECT_GT(accuracy(d.y, scores), 0.9);
  EXPECT_GT(auc(d.y, scores), 0.95);
}

TEST(GaussianNb, PriorReflectsImbalance) {
  // With identical likelihoods, predictions follow the class prior.
  Rng rng(75);
  Matrix X(200, 1);
  std::vector<double> y(200);
  for (std::size_t i = 0; i < 200; ++i) {
    X(i, 0) = rng.normal();       // same distribution for both classes
    y[i] = i < 180 ? 1.0 : 0.0;   // 90% positive
  }
  GaussianNaiveBayes nb;
  nb.fit(X, y);
  const auto scores = nb.predict(X);
  double mean_score = 0.0;
  for (const double s : scores) mean_score += s;
  EXPECT_GT(mean_score / 200.0, 0.75);
}

TEST(GaussianNb, Validation) {
  GaussianNaiveBayes nb;
  Matrix X{{1}, {2}};
  EXPECT_THROW(nb.fit(X, {1.0, 1.0}), InvalidArgument);   // one class
  EXPECT_THROW(nb.fit(X, {0.0, 2.0}), InvalidArgument);   // non-binary
  EXPECT_THROW(nb.predict(X), StateError);
}

// --- Nested cross-validation ----------------------------------------------------

TEST(NestedCv, ProducesPerFoldWinnersAndHonestScores) {
  RegressionConfig cfg;
  cfg.n_samples = 160;
  cfg.n_features = 5;
  cfg.n_informative = 4;
  const auto d = make_regression(cfg);

  TEGraph g;
  std::vector<std::unique_ptr<Transformer>> scalers;
  scalers.push_back(std::make_unique<StandardScaler>());
  scalers.push_back(std::make_unique<NoOp>());
  g.add_feature_scalers(std::move(scalers));
  std::vector<std::unique_ptr<Estimator>> models;
  models.push_back(std::make_unique<LinearRegression>());
  models.push_back(std::make_unique<DecisionTreeRegressor>());
  g.add_regression_models(std::move(models));

  EvalOptions config;
  config.metric = Metric::kRmse;
  config.threads = 1;
  const auto result =
      nested_cross_validate(g, d, KFold(4, true, 5), KFold(3, true, 9),
                            config);
  EXPECT_EQ(result.outer_scores.size(), 4u);
  EXPECT_EQ(result.selected_specs.size(), 4u);
  EXPECT_GT(result.mean_score, 0.0);
  EXPECT_GE(result.stddev, 0.0);
  for (const auto& spec : result.selected_specs) {
    EXPECT_FALSE(spec.empty());
  }
  // The outer (honest) estimate should not be dramatically better than the
  // inner selection score — selection bias goes the other way.
  EXPECT_GT(result.mean_score, 0.5 * result.mean_inner_score);
}

}  // namespace
}  // namespace coda
