// Tests for the neural-network substrate. The backbone is a finite-
// difference gradient check applied to every layer type — the strongest
// correctness evidence for hand-written backprop (Dense, activations,
// Conv1D with dilation, MaxPool1D, LSTM with BPTT, SliceLastTimestep).
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "src/nn/activations.h"
#include "src/nn/conv1d.h"
#include "src/nn/dense.h"
#include "src/nn/dropout.h"
#include "src/nn/loss.h"
#include "src/nn/lstm.h"
#include "src/nn/optimizer.h"
#include "src/nn/sequential.h"
#include "src/nn/slice.h"
#include "src/nn/trainer.h"
#include "src/util/random.h"

namespace coda::nn {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (double& v : m.data()) v = rng.normal();
  return m;
}

// Scalar objective: sum of squares of the layer output for input X.
double objective(Layer& layer, const Matrix& X) {
  const Matrix out = layer.forward(X, /*training=*/false);
  double s = 0.0;
  for (const double v : out.data()) s += v * v;
  return s;
}

// Analytic gradients via backward(2*out), compared against central finite
// differences for both the input and every parameter tensor.
void check_gradients(Layer& layer, const Matrix& X, double tolerance = 1e-5) {
  // Analytic pass.
  for (ParamTensor* p : layer.parameters()) p->zero_grad();
  const Matrix out = layer.forward(X, false);
  Matrix grad_out = out;
  for (double& v : grad_out.data()) v *= 2.0;
  const Matrix grad_input = layer.backward(grad_out);

  const double eps = 1e-5;

  // Input gradient.
  for (std::size_t i = 0; i < X.size(); ++i) {
    Matrix xp = X;
    Matrix xm = X;
    xp.data()[i] += eps;
    xm.data()[i] -= eps;
    const double numeric =
        (objective(layer, xp) - objective(layer, xm)) / (2.0 * eps);
    EXPECT_NEAR(grad_input.data()[i], numeric,
                tolerance * std::max(1.0, std::abs(numeric)))
        << "input grad mismatch at flat index " << i;
  }

  // Parameter gradients.
  std::size_t tensor_index = 0;
  for (ParamTensor* p : layer.parameters()) {
    for (std::size_t i = 0; i < p->value.size(); ++i) {
      const double saved = p->value.data()[i];
      p->value.data()[i] = saved + eps;
      const double up = objective(layer, X);
      p->value.data()[i] = saved - eps;
      const double down = objective(layer, X);
      p->value.data()[i] = saved;
      const double numeric = (up - down) / (2.0 * eps);
      EXPECT_NEAR(p->grad.data()[i], numeric,
                  tolerance * std::max(1.0, std::abs(numeric)))
          << "param tensor " << tensor_index << " grad mismatch at " << i;
    }
    ++tensor_index;
  }
}

TEST(GradCheck, Dense) {
  Rng rng(1);
  Dense layer(4, 3, 7);
  check_gradients(layer, random_matrix(5, 4, rng));
}

TEST(GradCheck, ReLU) {
  Rng rng(2);
  ReLU layer;
  // Nudge inputs away from the kink at 0.
  Matrix X = random_matrix(4, 6, rng);
  for (double& v : X.data()) {
    if (std::abs(v) < 0.05) v = 0.1;
  }
  check_gradients(layer, X);
}

TEST(GradCheck, TanhLayer) {
  Rng rng(3);
  Tanh layer;
  check_gradients(layer, random_matrix(4, 5, rng));
}

TEST(GradCheck, SigmoidLayer) {
  Rng rng(4);
  Sigmoid layer;
  check_gradients(layer, random_matrix(4, 5, rng));
}

TEST(GradCheck, Conv1DCausal) {
  Rng rng(5);
  Conv1D layer(/*in=*/2, /*out=*/3, /*kernel=*/3, /*dilation=*/1,
               /*causal=*/true, 11);
  check_gradients(layer, random_matrix(3, 8 * 2, rng));
}

TEST(GradCheck, Conv1DDilated) {
  Rng rng(6);
  Conv1D layer(2, 2, 2, /*dilation=*/2, /*causal=*/true, 13);
  check_gradients(layer, random_matrix(2, 6 * 2, rng));
}

TEST(GradCheck, Conv1DValid) {
  Rng rng(7);
  Conv1D layer(1, 2, 3, 1, /*causal=*/false, 17);
  check_gradients(layer, random_matrix(2, 7, rng));
}

TEST(GradCheck, MaxPool1D) {
  Rng rng(8);
  MaxPool1D layer(/*channels=*/2, /*pool=*/2);
  check_gradients(layer, random_matrix(3, 8 * 2, rng));
}

TEST(GradCheck, SliceLastTimestep) {
  Rng rng(9);
  SliceLastTimestep layer(3);
  check_gradients(layer, random_matrix(2, 4 * 3, rng));
}

TEST(GradCheck, LstmLastHidden) {
  Rng rng(10);
  Lstm layer(/*input=*/2, /*hidden=*/3, /*return_sequences=*/false, 19);
  check_gradients(layer, random_matrix(2, 4 * 2, rng), 1e-4);
}

TEST(GradCheck, LstmReturnSequences) {
  Rng rng(11);
  Lstm layer(2, 2, /*return_sequences=*/true, 23);
  check_gradients(layer, random_matrix(2, 3 * 2, rng), 1e-4);
}

TEST(Conv1D, CausalityHolds) {
  // Changing the last timestep must not affect earlier outputs.
  Conv1D layer(1, 1, 3, 1, /*causal=*/true, 3);
  Rng rng(12);
  Matrix a = random_matrix(1, 8, rng);
  Matrix b = a;
  b(0, 7) += 5.0;
  const Matrix out_a = layer.forward(a, false);
  const Matrix out_b = layer.forward(b, false);
  for (std::size_t t = 0; t < 7; ++t) {
    EXPECT_DOUBLE_EQ(out_a(0, t), out_b(0, t)) << "leaked future at t=" << t;
  }
  EXPECT_NE(out_a(0, 7), out_b(0, 7));
}

TEST(Conv1D, OutputLengths) {
  Conv1D causal(1, 1, 3, 2, true);
  EXPECT_EQ(causal.output_length(10), 10u);
  Conv1D valid(1, 1, 3, 2, false);
  EXPECT_EQ(valid.output_length(10), 6u);  // 10 - (3-1)*2
}

TEST(MaxPool1D, PicksMaxPerWindow) {
  MaxPool1D pool(1, 2);
  Matrix X(1, 6, {1, 5, 2, 2, 9, 0});
  const Matrix out = pool.forward(X, false);
  EXPECT_EQ(out.cols(), 3u);
  EXPECT_DOUBLE_EQ(out(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(out(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(out(0, 2), 9.0);
}

TEST(Dropout, IdentityAtInference) {
  Dropout layer(0.5, 3);
  Rng rng(13);
  const Matrix X = random_matrix(3, 4, rng);
  EXPECT_EQ(layer.forward(X, /*training=*/false), X);
}

TEST(Dropout, DropsAndRescalesDuringTraining) {
  Dropout layer(0.5, 3);
  Matrix X(1, 1000, 1.0);
  const Matrix out = layer.forward(X, /*training=*/true);
  std::size_t zeros = 0;
  double sum = 0.0;
  for (const double v : out.data()) {
    if (v == 0.0) {
      ++zeros;
    } else {
      EXPECT_DOUBLE_EQ(v, 2.0);  // 1/(1-0.5)
      sum += v;
    }
  }
  EXPECT_GT(zeros, 400u);
  EXPECT_LT(zeros, 600u);
  EXPECT_NEAR(sum / 1000.0, 1.0, 0.15);  // expectation preserved
}

TEST(Dropout, BackwardUsesSameMask) {
  Dropout layer(0.5, 3);
  Matrix X(1, 100, 1.0);
  const Matrix out = layer.forward(X, true);
  Matrix grad(1, 100, 1.0);
  const Matrix gin = layer.backward(grad);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(gin(0, i), out(0, i));  // same kept positions & scale
  }
}

TEST(Loss, MseValueAndGradient) {
  MseLoss loss;
  Matrix pred(1, 2, {1.0, 3.0});
  Matrix target(1, 2, {0.0, 0.0});
  EXPECT_DOUBLE_EQ(loss.value(pred, target), (1.0 + 9.0) / 2.0);
  const Matrix g = loss.gradient(pred, target);
  EXPECT_DOUBLE_EQ(g(0, 0), 1.0);   // 2*(1-0)/2
  EXPECT_DOUBLE_EQ(g(0, 1), 3.0);
}

TEST(Loss, BceValue) {
  BceLoss loss;
  Matrix pred(1, 2, {0.9, 0.1});
  Matrix target(1, 2, {1.0, 0.0});
  EXPECT_NEAR(loss.value(pred, target), -std::log(0.9), 1e-12);
}

TEST(Loss, BceClampsExtremes) {
  BceLoss loss;
  Matrix pred(1, 1, {0.0});
  Matrix target(1, 1, {1.0});
  EXPECT_TRUE(std::isfinite(loss.value(pred, target)));
  EXPECT_TRUE(std::isfinite(loss.gradient(pred, target)(0, 0)));
}

TEST(Optimizer, SgdStepsDownhill) {
  // Minimize f(w) = w^2 by hand-feeding gradients.
  ParamTensor w(1, 1);
  w.value(0, 0) = 4.0;
  Sgd sgd(0.1);
  for (int i = 0; i < 100; ++i) {
    w.grad(0, 0) = 2.0 * w.value(0, 0);
    sgd.step({&w});
  }
  EXPECT_NEAR(w.value(0, 0), 0.0, 1e-6);
}

TEST(Optimizer, AdamConvergesOnQuadratic) {
  ParamTensor w(1, 1);
  w.value(0, 0) = 4.0;
  Adam adam(0.2);
  for (int i = 0; i < 200; ++i) {
    w.grad(0, 0) = 2.0 * (w.value(0, 0) - 1.5);
    adam.step({&w});
  }
  EXPECT_NEAR(w.value(0, 0), 1.5, 1e-3);
}

TEST(Sequential, TrainsLinearRegressionToLowLoss) {
  // y = 2x - 1 with a single Dense layer.
  Rng rng(21);
  Matrix X(64, 1);
  std::vector<double> y(64);
  for (std::size_t i = 0; i < 64; ++i) {
    X(i, 0) = rng.uniform(-1.0, 1.0);
    y[i] = 2.0 * X(i, 0) - 1.0;
  }
  Sequential net;
  net.emplace<Dense>(1, 1, 5);
  MseLoss loss;
  Adam opt(0.05);
  TrainConfig cfg;
  cfg.epochs = 200;
  cfg.batch_size = 16;
  const auto history = train(net, X, column_matrix(y), loss, opt, cfg);
  EXPECT_LT(history.back(), 1e-4);
  EXPECT_LT(history.back(), history.front());
}

TEST(Sequential, NonlinearFitBeatsLinear) {
  // y = sin(3x): a ReLU MLP must clearly beat the best linear fit.
  Rng rng(22);
  Matrix X(128, 1);
  std::vector<double> y(128);
  for (std::size_t i = 0; i < 128; ++i) {
    X(i, 0) = rng.uniform(-1.5, 1.5);
    y[i] = std::sin(3.0 * X(i, 0));
  }
  Sequential net;
  net.emplace<Dense>(1, 24, 7);
  net.emplace<ReLU>();
  net.emplace<Dense>(24, 24, 9);
  net.emplace<ReLU>();
  net.emplace<Dense>(24, 1, 11);
  MseLoss loss;
  Adam opt(0.01);
  TrainConfig cfg;
  cfg.epochs = 300;
  cfg.batch_size = 32;
  const auto history = train(net, X, column_matrix(y), loss, opt, cfg);
  EXPECT_LT(history.back(), 0.02);  // linear best is ~0.2+
}

TEST(Sequential, CopyIsDeep) {
  Sequential net;
  net.emplace<Dense>(2, 2, 3);
  Sequential copy = net;
  // Mutating the copy's weights must not affect the original.
  copy.parameters()[0]->value(0, 0) += 100.0;
  EXPECT_NE(copy.parameters()[0]->value(0, 0),
            net.parameters()[0]->value(0, 0));
}

TEST(Sequential, ParameterCount) {
  Sequential net;
  net.emplace<Dense>(3, 4, 1);  // 12 + 4
  net.emplace<ReLU>();
  net.emplace<Dense>(4, 1, 2);  // 4 + 1
  EXPECT_EQ(net.parameter_count(), 21u);
}

TEST(Lstm, ShapeContracts) {
  Lstm last(3, 5, false);
  Rng rng(31);
  const Matrix X = random_matrix(4, 6 * 3, rng);
  EXPECT_EQ(last.forward(X, false).cols(), 5u);
  Lstm seq(3, 5, true);
  EXPECT_EQ(seq.forward(X, false).cols(), 6u * 5u);
}

TEST(Lstm, RejectsMisalignedInput) {
  Lstm layer(3, 2);
  EXPECT_THROW(layer.forward(Matrix(1, 7), false), InvalidArgument);
}

}  // namespace
}  // namespace coda::nn
