// Tests for the change-triggered recomputation policies (Section III).
#include <gtest/gtest.h>

#include "src/dist/update_monitor.h"
#include "src/util/error.h"

namespace coda::dist {
namespace {

Bytes blob(std::size_t n) { return Bytes(n, 0x42); }

TEST(CountThresholdPolicy, FiresEveryNUpdates) {
  std::vector<std::string> recomputed;
  UpdateMonitor monitor(std::make_unique<CountThresholdPolicy>(3),
                        [&](const std::string& key) {
                          recomputed.push_back(key);
                        });
  for (int i = 1; i <= 7; ++i) {
    monitor.on_update("o1", nullptr, blob(10), static_cast<std::uint64_t>(i),
                      10);
  }
  EXPECT_EQ(recomputed.size(), 2u);  // after updates 3 and 6
  EXPECT_EQ(monitor.pending_updates("o1"), 1u);
  EXPECT_EQ(monitor.total_updates(), 7u);
  EXPECT_EQ(monitor.total_recomputes(), 2u);
}

TEST(SizeThresholdPolicy, FiresOnAccumulatedBytes) {
  std::size_t recomputes = 0;
  UpdateMonitor monitor(std::make_unique<SizeThresholdPolicy>(100),
                        [&](const std::string&) { ++recomputes; });
  monitor.on_update("o1", nullptr, blob(40), 1, 40);
  EXPECT_EQ(recomputes, 0u);
  monitor.on_update("o1", nullptr, blob(40), 2, 40);
  EXPECT_EQ(recomputes, 0u);
  EXPECT_EQ(monitor.pending_bytes("o1"), 80u);
  monitor.on_update("o1", nullptr, blob(40), 3, 40);  // 120 >= 100
  EXPECT_EQ(recomputes, 1u);
  EXPECT_EQ(monitor.pending_bytes("o1"), 0u);
}

TEST(AppSpecificPolicy, ArbitraryPredicate) {
  // Application rule: recompute when the new value's first byte changes
  // from the old value's (a stand-in for a drift detector).
  std::size_t recomputes = 0;
  auto policy = std::make_unique<AppSpecificPolicy>(
      "first_byte_drift", [](const UpdateEvent& e) {
        return e.old_value != nullptr && !e.old_value->empty() &&
               !e.new_value->empty() &&
               (*e.old_value)[0] != (*e.new_value)[0];
      });
  UpdateMonitor monitor(std::move(policy),
                        [&](const std::string&) { ++recomputes; });
  Bytes a{1, 2, 3};
  Bytes b{1, 9, 9};
  Bytes c{7, 9, 9};
  monitor.on_update("o1", nullptr, a, 1, 3);
  monitor.on_update("o1", &a, b, 2, 3);  // first byte unchanged
  EXPECT_EQ(recomputes, 0u);
  monitor.on_update("o1", &b, c, 3, 3);  // first byte changed
  EXPECT_EQ(recomputes, 1u);
}

TEST(UpdateMonitor, KeysTrackedIndependently) {
  std::vector<std::string> recomputed;
  UpdateMonitor monitor(std::make_unique<CountThresholdPolicy>(2),
                        [&](const std::string& key) {
                          recomputed.push_back(key);
                        });
  monitor.on_update("a", nullptr, blob(1), 1, 1);
  monitor.on_update("b", nullptr, blob(1), 1, 1);
  EXPECT_TRUE(recomputed.empty());
  monitor.on_update("a", nullptr, blob(1), 2, 1);
  ASSERT_EQ(recomputed.size(), 1u);
  EXPECT_EQ(recomputed[0], "a");
  EXPECT_EQ(monitor.pending_updates("b"), 1u);
}

TEST(UpdateMonitor, OnUpdateReturnsTriggerFlag) {
  UpdateMonitor monitor(std::make_unique<CountThresholdPolicy>(2),
                        [](const std::string&) {});
  EXPECT_FALSE(monitor.on_update("o", nullptr, blob(1), 1, 1));
  EXPECT_TRUE(monitor.on_update("o", nullptr, blob(1), 2, 1));
}

TEST(UpdateMonitor, ReplayedVersionsDoNotInflateAccumulation) {
  // A push retransmitted after its lease expired (or racing a pull that
  // already advanced the replica) reaches the monitor with a version at
  // or below the last one seen. It must not count towards the threshold,
  // or replays would trigger spurious recomputations.
  std::size_t recomputes = 0;
  UpdateMonitor monitor(std::make_unique<CountThresholdPolicy>(3),
                        [&](const std::string&) { ++recomputes; });
  EXPECT_FALSE(monitor.on_update("o", nullptr, blob(8), 1, 8));
  EXPECT_FALSE(monitor.on_update("o", nullptr, blob(8), 2, 8));
  // Replays of both versions: dropped without touching the counters.
  EXPECT_FALSE(monitor.on_update("o", nullptr, blob(8), 2, 8));
  EXPECT_FALSE(monitor.on_update("o", nullptr, blob(8), 1, 8));
  EXPECT_EQ(monitor.replays_dropped(), 2u);
  EXPECT_EQ(monitor.pending_updates("o"), 2u);
  EXPECT_EQ(monitor.pending_bytes("o"), 16u);
  EXPECT_EQ(monitor.total_updates(), 2u);
  EXPECT_EQ(recomputes, 0u);
  // The genuinely new version is the one that fires the policy.
  EXPECT_TRUE(monitor.on_update("o", nullptr, blob(8), 3, 8));
  EXPECT_EQ(recomputes, 1u);
  // The version high-water mark survives the recompute reset: replaying
  // v3 after the recompute is still a replay.
  EXPECT_FALSE(monitor.on_update("o", nullptr, blob(8), 3, 8));
  EXPECT_EQ(monitor.replays_dropped(), 3u);
  EXPECT_EQ(monitor.pending_updates("o"), 0u);
}

TEST(UpdateMonitor, ReplayGuardIsPerKey) {
  UpdateMonitor monitor(std::make_unique<CountThresholdPolicy>(100),
                        [](const std::string&) {});
  monitor.on_update("a", nullptr, blob(1), 5, 1);
  // Version 5 was seen on "a" only; "b" starts its own sequence.
  EXPECT_FALSE(monitor.on_update("b", nullptr, blob(1), 5, 1));
  EXPECT_EQ(monitor.replays_dropped(), 0u);
  EXPECT_EQ(monitor.pending_updates("b"), 1u);
}

TEST(UpdateMonitor, VersionZeroBypassesTheReplayGuard) {
  // Legacy callers that do not track versions pass 0 for every update;
  // the guard must not eat their stream.
  std::size_t recomputes = 0;
  UpdateMonitor monitor(std::make_unique<CountThresholdPolicy>(2),
                        [&](const std::string&) { ++recomputes; });
  EXPECT_FALSE(monitor.on_update("o", nullptr, blob(1), 0, 1));
  EXPECT_TRUE(monitor.on_update("o", nullptr, blob(1), 0, 1));
  EXPECT_EQ(recomputes, 1u);
  EXPECT_EQ(monitor.replays_dropped(), 0u);
}

TEST(Policies, Names) {
  EXPECT_EQ(CountThresholdPolicy(5).name(), "count(threshold=5)");
  EXPECT_EQ(SizeThresholdPolicy(1024).name(), "size(threshold=1024B)");
  EXPECT_EQ(AppSpecificPolicy("drift", [](const UpdateEvent&) {
              return false;
            }).name(),
            "app(drift)");
}

TEST(Policies, Validation) {
  EXPECT_THROW(CountThresholdPolicy(0), InvalidArgument);
  EXPECT_THROW(SizeThresholdPolicy(0), InvalidArgument);
  EXPECT_THROW(AppSpecificPolicy("x", nullptr), InvalidArgument);
  EXPECT_THROW(UpdateMonitor(nullptr, [](const std::string&) {}),
               InvalidArgument);
}

}  // namespace
}  // namespace coda::dist
