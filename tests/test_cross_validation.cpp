// Tests for the cross-validation strategies (Fig 4 K-fold, hold-out,
// Monte-Carlo, and the Fig 12 TimeSeriesSlidingSplit), including
// parameterized partition/leakage properties.
#include <gtest/gtest.h>

#include <set>

#include "src/core/cross_validation.h"
#include "src/util/error.h"

namespace coda {
namespace {

// --- K-fold properties over a sweep of (k, n) --------------------------

class KFoldProperty
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(KFoldProperty, PartitionWithoutReplacement) {
  const auto [k, n] = GetParam();
  KFold cv(k, /*shuffle=*/true, /*seed=*/123);
  const auto splits = cv.splits(n);
  ASSERT_EQ(splits.size(), k);

  // Every sample appears in exactly one test fold; folds are near-equal.
  std::vector<std::size_t> test_count(n, 0);
  for (const auto& split : splits) {
    EXPECT_GE(split.test.size(), n / k);
    EXPECT_LE(split.test.size(), n / k + 1);
    EXPECT_EQ(split.train.size() + split.test.size(), n);
    std::set<std::size_t> train(split.train.begin(), split.train.end());
    for (const std::size_t i : split.test) {
      ++test_count[i];
      EXPECT_EQ(train.count(i), 0u) << "index in both train and test";
    }
  }
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(test_count[i], 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KFoldProperty,
    ::testing::Values(std::make_pair(2u, 10u), std::make_pair(3u, 10u),
                      std::make_pair(5u, 25u), std::make_pair(5u, 27u),
                      std::make_pair(10u, 100u), std::make_pair(7u, 7u)));

TEST(KFold, DeterministicPerSeed) {
  KFold a(5, true, 9);
  KFold b(5, true, 9);
  const auto sa = a.splits(40);
  const auto sb = b.splits(40);
  for (std::size_t f = 0; f < 5; ++f) {
    EXPECT_EQ(sa[f].test, sb[f].test);
  }
}

TEST(KFold, UnshuffledIsContiguousAssignment) {
  KFold cv(2, /*shuffle=*/false);
  const auto splits = cv.splits(4);
  EXPECT_EQ(splits[0].test, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(splits[1].test, (std::vector<std::size_t>{2, 3}));
}

TEST(KFold, Validation) {
  EXPECT_THROW(KFold(1), InvalidArgument);
  KFold cv(5);
  EXPECT_THROW(cv.splits(4), InvalidArgument);
}

TEST(KFold, SpecIsStable) {
  EXPECT_EQ(KFold(5, true, 42).spec(), "kfold(k=5,shuffle=true,seed=42)");
}

// --- Hold-out -----------------------------------------------------------

TEST(HoldOut, SingleSplitWithFraction) {
  HoldOut cv(0.8, 3);
  const auto splits = cv.splits(50);
  ASSERT_EQ(splits.size(), 1u);
  EXPECT_EQ(splits[0].train.size(), 40u);
  EXPECT_EQ(splits[0].test.size(), 10u);
}

TEST(HoldOut, BadFractionThrows) {
  EXPECT_THROW(HoldOut(0.0), InvalidArgument);
  EXPECT_THROW(HoldOut(1.0), InvalidArgument);
}

// --- Monte-Carlo --------------------------------------------------------

TEST(MonteCarloCV, ProducesIndependentSplits) {
  MonteCarloCV cv(10, 0.7, 5);
  const auto splits = cv.splits(30);
  ASSERT_EQ(splits.size(), 10u);
  // At least two different splits (vanishingly unlikely otherwise).
  bool any_different = false;
  for (std::size_t i = 1; i < splits.size(); ++i) {
    if (splits[i].test != splits[0].test) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

// --- TimeSeriesSlidingSplit (Fig 12) -------------------------------------

struct SlidingCase {
  std::size_t k, train, val, buffer, n;
};

class SlidingSplitProperty : public ::testing::TestWithParam<SlidingCase> {};

TEST_P(SlidingSplitProperty, NoLeakageAndOrdering) {
  const auto c = GetParam();
  TimeSeriesSlidingSplit cv(c.k, c.train, c.val, c.buffer);
  const auto splits = cv.splits(c.n);
  ASSERT_EQ(splits.size(), c.k);
  std::size_t prev_start = 0;
  for (std::size_t f = 0; f < splits.size(); ++f) {
    const auto& s = splits[f];
    ASSERT_EQ(s.train.size(), c.train);
    ASSERT_EQ(s.test.size(), c.val);
    // Train indices are contiguous and strictly precede validation, with
    // at least `buffer` timestamps in between.
    for (std::size_t i = 1; i < s.train.size(); ++i) {
      EXPECT_EQ(s.train[i], s.train[i - 1] + 1);
    }
    for (std::size_t i = 1; i < s.test.size(); ++i) {
      EXPECT_EQ(s.test[i], s.test[i - 1] + 1);
    }
    EXPECT_EQ(s.test.front(), s.train.back() + 1 + c.buffer);
    EXPECT_LT(s.test.back(), c.n);
    // Windows slide monotonically forward.
    EXPECT_GE(s.train.front(), prev_start);
    prev_start = s.train.front();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SlidingSplitProperty,
    ::testing::Values(SlidingCase{1, 50, 10, 0, 100},
                      SlidingCase{3, 50, 10, 0, 100},
                      SlidingCase{5, 40, 10, 5, 120},
                      SlidingCase{4, 30, 5, 10, 60},
                      SlidingCase{2, 10, 10, 2, 22}));

TEST(TimeSeriesSlidingSplit, SingleWindowSitsAtSeriesEnd) {
  TimeSeriesSlidingSplit cv(1, 50, 10, 0);
  const auto splits = cv.splits(100);
  EXPECT_EQ(splits[0].test.back(), 99u);
}

TEST(TimeSeriesSlidingSplit, TooShortSeriesThrows) {
  TimeSeriesSlidingSplit cv(3, 50, 10, 5);
  EXPECT_THROW(cv.splits(64), InvalidArgument);
  EXPECT_NO_THROW(cv.splits(65));
}

TEST(TimeSeriesSlidingSplit, Validation) {
  EXPECT_THROW(TimeSeriesSlidingSplit(0, 10, 5), InvalidArgument);
  EXPECT_THROW(TimeSeriesSlidingSplit(1, 0, 5), InvalidArgument);
  EXPECT_THROW(TimeSeriesSlidingSplit(1, 10, 0), InvalidArgument);
}

TEST(CrossValidator, CloneIsEquivalent) {
  KFold cv(4, true, 17);
  const auto clone = cv.clone();
  EXPECT_EQ(clone->spec(), cv.spec());
  const auto a = cv.splits(20);
  const auto b = clone->splits(20);
  for (std::size_t f = 0; f < a.size(); ++f) EXPECT_EQ(a[f].test, b[f].test);
}

}  // namespace
}  // namespace coda
