// Tests for the forecast pipeline: scaler-fit-on-train-only, window/fold
// assignment, predict_range alignment, next-step forecasting, sliding-split
// evaluation.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "src/data/synthetic.h"
#include "src/ml/scalers.h"
#include "src/ts/forecast_pipeline.h"
#include "src/ts/forecasters.h"

namespace coda::ts {
namespace {

TimeSeries ramp(std::size_t length) {
  Matrix m(length, 1);
  for (std::size_t t = 0; t < length; ++t) {
    m(t, 0) = static_cast<double>(t);
  }
  return TimeSeries(std::move(m), {"x"});
}

ForecastPipeline ar_pipeline(std::size_t history = 4) {
  ForecastSpec spec;
  spec.history = history;
  return ForecastPipeline(std::make_unique<StandardScaler>(),
                          std::make_unique<CascadedWindows>(),
                          std::make_unique<ArModel>(), spec);
}

TEST(ForecastPipeline, SpecString) {
  const auto p = ar_pipeline();
  EXPECT_EQ(p.spec_string(),
            "standardscaler -> cascadedwindows -> armodel(ridge=1e-06)");
}

TEST(ForecastPipeline, FitThenPredictRangeAligned) {
  const auto series = ramp(60);
  auto p = ar_pipeline();
  p.fit(series, 0, 50);
  const auto [pred, truth] = p.predict_range(series, 50, 60);
  ASSERT_EQ(pred.size(), 10u);
  ASSERT_EQ(truth.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(truth[i], static_cast<double>(50 + i));
    EXPECT_NEAR(pred[i], truth[i], 0.5);  // a ramp is linear in its lags
  }
}

TEST(ForecastPipeline, PredictBeforeFitThrows) {
  const auto series = ramp(30);
  const auto p = ar_pipeline();
  EXPECT_THROW(p.predict_range(series, 20, 30), StateError);
  EXPECT_THROW(p.forecast_next(series), StateError);
}

TEST(ForecastPipeline, TrainingRangeValidated) {
  const auto series = ramp(30);
  auto p = ar_pipeline();
  EXPECT_THROW(p.fit(series, 10, 10), InvalidArgument);
  EXPECT_THROW(p.fit(series, 0, 31), InvalidArgument);
  // Range shorter than one window.
  EXPECT_THROW(p.fit(series, 0, 3), InvalidArgument);
}

TEST(ForecastPipeline, ForecastNextExtrapolatesRamp) {
  const auto series = ramp(60);
  auto p = ar_pipeline();
  p.fit_full(series);
  EXPECT_NEAR(p.forecast_next(series), 60.0, 1.0);
}

TEST(ForecastPipeline, ZeroModelForecastNextIsLastValue) {
  const auto series = ramp(20);
  ForecastSpec spec;
  ForecastPipeline p(std::make_unique<NoOp>(), std::make_unique<TsAsIs>(),
                     std::make_unique<ZeroModel>(), spec);
  p.fit_full(series);
  EXPECT_DOUBLE_EQ(p.forecast_next(series), 19.0);
}

TEST(ForecastPipeline, ScalerFitOnlyOnTrainRange) {
  // A series with a huge late-regime level: if the scaler saw the whole
  // series, training-range features would be squashed; verify the scaler's
  // parameters reflect the training range only (no look-ahead leakage).
  Matrix m(100, 1);
  for (std::size_t t = 0; t < 100; ++t) {
    m(t, 0) = t < 80 ? static_cast<double>(t % 7) : 1e6;
  }
  TimeSeries series(std::move(m), {"x"});
  ForecastSpec spec;
  spec.history = 4;
  ForecastPipeline p(std::make_unique<MinMaxScaler>(),
                     std::make_unique<CascadedWindows>(),
                     std::make_unique<ArModel>(), spec);
  p.fit(series, 0, 80);
  // If the scaler had seen the 1e6 regime, train values would map to ~0
  // and the AR fit on a %7 sawtooth would be garbage; predicting inside
  // the train range sanity-checks the scaling.
  const auto [pred, truth] = p.predict_range(series, 40, 60);
  EXPECT_LT(rmse(truth, pred), 3.0);
}

TEST(EvaluateForecast, SlidingSplitScoresZeroModel) {
  IndustrialSeriesConfig cfg;
  cfg.length = 300;
  cfg.n_variables = 1;
  const auto series = make_industrial_series(cfg);
  ForecastSpec spec;
  ForecastPipeline p(std::make_unique<NoOp>(), std::make_unique<TsAsIs>(),
                     std::make_unique<ZeroModel>(), spec);
  TimeSeriesSlidingSplit cv(3, 150, 30, 5);
  const auto result = evaluate_forecast(p, series, cv, Metric::kRmse);
  EXPECT_EQ(result.fold_scores.size(), 3u);
  EXPECT_GT(result.mean_score, 0.0);
  EXPECT_EQ(result.explanation, p.spec_string());
}

TEST(EvaluateForecast, LearnedModelBeatsZeroOnStructuredSeries) {
  // §IV-C: the Zero model is the baseline; AR must beat it on a smooth
  // seasonal series.
  IndustrialSeriesConfig cfg;
  cfg.length = 400;
  cfg.n_variables = 1;
  cfg.noise_stddev = 0.1;
  cfg.seasonal_amplitude = 2.0;
  const auto series = make_industrial_series(cfg);
  TimeSeriesSlidingSplit cv(3, 200, 40, 5);

  ForecastSpec spec;
  spec.history = 24;
  ForecastPipeline ar(std::make_unique<StandardScaler>(),
                      std::make_unique<CascadedWindows>(),
                      std::make_unique<ArModel>(), spec);
  ForecastPipeline zero(std::make_unique<NoOp>(), std::make_unique<TsAsIs>(),
                        std::make_unique<ZeroModel>(), spec);
  const auto ar_result = evaluate_forecast(ar, series, cv, Metric::kRmse);
  const auto zero_result = evaluate_forecast(zero, series, cv, Metric::kRmse);
  EXPECT_LT(ar_result.mean_score, zero_result.mean_score);
}

TEST(ForecastPipeline, CopyIsIndependent) {
  const auto series = ramp(40);
  auto p = ar_pipeline();
  p.fit_full(series);
  ForecastPipeline copy = p;
  const double before = p.forecast_next(series);
  // Refitting the copy on different data must not disturb the original.
  const auto other = ramp(30);
  copy.fit_full(other);
  EXPECT_DOUBLE_EQ(p.forecast_next(series), before);
}

}  // namespace
}  // namespace coda::ts
