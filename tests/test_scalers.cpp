// Tests for the data scalers (Table I / II stage options).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "src/data/synthetic.h"
#include "src/ml/scalers.h"

namespace coda {
namespace {

Matrix sample_data() {
  RegressionConfig cfg;
  cfg.n_samples = 200;
  cfg.n_features = 4;
  cfg.n_informative = 3;
  return make_regression(cfg).X;
}

TEST(Quantile, InterpolatesLinearly) {
  std::vector<double> v{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 1.75);
  EXPECT_THROW(quantile({}, 0.5), InvalidArgument);
  EXPECT_THROW(quantile({1.0}, 1.5), InvalidArgument);
}

TEST(StandardScaler, ZeroMeanUnitVariance) {
  StandardScaler scaler;
  const auto X = sample_data();
  scaler.fit(X, {});
  const auto scaled = scaler.transform(X);
  const auto means = scaled.col_means();
  const auto sds = scaled.col_stddevs();
  for (std::size_t c = 0; c < scaled.cols(); ++c) {
    EXPECT_NEAR(means[c], 0.0, 1e-9);
    EXPECT_NEAR(sds[c], 1.0, 1e-9);
  }
}

TEST(StandardScaler, ConstantColumnSafe) {
  Matrix X(5, 1, 3.0);
  StandardScaler scaler;
  scaler.fit(X, {});
  const auto scaled = scaler.transform(X);
  for (std::size_t r = 0; r < 5; ++r) EXPECT_DOUBLE_EQ(scaled(r, 0), 0.0);
}

TEST(StandardScaler, TransformBeforeFitThrows) {
  StandardScaler scaler;
  EXPECT_THROW(scaler.transform(Matrix(1, 1)), StateError);
}

TEST(StandardScaler, AppliesTrainStatsToNewData) {
  StandardScaler scaler;
  Matrix train{{0}, {10}};
  scaler.fit(train, {});
  Matrix test{{5}};
  // mean 5, sd 5 -> (5-5)/5 = 0
  EXPECT_DOUBLE_EQ(scaler.transform(test)(0, 0), 0.0);
}

TEST(MinMaxScaler, MapsTrainingRangeToUnit) {
  MinMaxScaler scaler;
  const auto X = sample_data();
  scaler.fit(X, {});
  const auto scaled = scaler.transform(X);
  for (std::size_t c = 0; c < scaled.cols(); ++c) {
    double lo = scaled(0, c), hi = scaled(0, c);
    for (std::size_t r = 0; r < scaled.rows(); ++r) {
      lo = std::min(lo, scaled(r, c));
      hi = std::max(hi, scaled(r, c));
    }
    EXPECT_NEAR(lo, 0.0, 1e-12);
    EXPECT_NEAR(hi, 1.0, 1e-12);
  }
}

TEST(MinMaxScaler, OutOfRangeTestDataExtendsBeyondUnit) {
  MinMaxScaler scaler;
  Matrix train{{0}, {10}};
  scaler.fit(train, {});
  Matrix test{{20}};
  EXPECT_DOUBLE_EQ(scaler.transform(test)(0, 0), 2.0);
}

TEST(RobustScaler, CentersOnMedianScalesByIqr) {
  RobustScaler scaler;
  Matrix X{{1}, {2}, {3}, {4}, {5}};
  scaler.fit(X, {});
  const auto scaled = scaler.transform(X);
  EXPECT_DOUBLE_EQ(scaled(2, 0), 0.0);          // median -> 0
  EXPECT_DOUBLE_EQ(scaled(4, 0), 1.0);          // (5-3)/(4-2)
}

TEST(RobustScaler, RobustToGrossOutlier) {
  // One huge outlier must barely move the robust scale, unlike the
  // standard deviation.
  Matrix clean(101, 1);
  for (std::size_t i = 0; i <= 100; ++i) {
    clean(i, 0) = static_cast<double>(i);
  }
  Matrix dirty = clean;
  dirty(100, 0) = 1e6;

  RobustScaler a, b;
  a.fit(clean, {});
  b.fit(dirty, {});
  Matrix probe{{50.0}};
  EXPECT_NEAR(a.transform(probe)(0, 0), b.transform(probe)(0, 0), 0.05);
}

TEST(Scalers, CloneCarriesFittedState) {
  StandardScaler scaler;
  const auto X = sample_data();
  scaler.fit(X, {});
  const auto clone = scaler.clone_transformer();
  EXPECT_EQ(clone->transform(X), scaler.transform(X));
}

TEST(Scalers, ColumnCountMismatchThrows) {
  StandardScaler scaler;
  scaler.fit(Matrix(3, 2), {});
  EXPECT_THROW(scaler.transform(Matrix(3, 3)), InvalidArgument);
}

}  // namespace
}  // namespace coda
