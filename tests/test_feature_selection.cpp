// Tests for SelectKBest and VarianceThreshold.
#include <gtest/gtest.h>

#include "src/data/synthetic.h"
#include "src/ml/feature_selection.h"
#include "src/util/random.h"

namespace coda {
namespace {

TEST(SelectKBest, PicksInformativeFeatures) {
  // y depends only on features 1 and 3.
  Rng rng(3);
  Matrix X(300, 5);
  std::vector<double> y(300);
  for (std::size_t i = 0; i < 300; ++i) {
    for (std::size_t j = 0; j < 5; ++j) X(i, j) = rng.normal();
    y[i] = 4.0 * X(i, 1) - 3.0 * X(i, 3) + rng.normal(0.0, 0.1);
  }
  SelectKBest selector;
  selector.set_param("k", std::int64_t{2});
  selector.fit(X, y);
  const auto selected = selector.selected();
  ASSERT_EQ(selected.size(), 2u);
  EXPECT_TRUE((selected[0] == 1 && selected[1] == 3) ||
              (selected[0] == 3 && selected[1] == 1));
  const auto out = selector.transform(X);
  EXPECT_EQ(out.cols(), 2u);
}

TEST(SelectKBest, KBoundsValidated) {
  SelectKBest selector;
  selector.set_param("k", std::int64_t{10});
  Matrix X(5, 3);
  EXPECT_THROW(selector.fit(X, std::vector<double>(5, 0.0)),
               InvalidArgument);
}

TEST(SelectKBest, VarianceModeIsUnsupervised) {
  SelectKBest selector;
  selector.set_param("k", std::int64_t{1});
  selector.set_param("score", std::string("variance"));
  Matrix X{{1, 100}, {2, 200}, {3, 300}};
  selector.fit(X, {});  // no y needed
  EXPECT_EQ(selector.selected()[0], 1u);
}

TEST(SelectKBest, UnknownScoreThrows) {
  SelectKBest selector;
  selector.set_param("score", std::string("bogus"));
  Matrix X(3, 2);
  EXPECT_THROW(selector.fit(X, std::vector<double>(3, 0.0)),
               InvalidArgument);
}

TEST(SelectKBest, TransformChecksColumnCount) {
  SelectKBest selector;
  selector.set_param("k", std::int64_t{1});
  Matrix X{{1, 2}, {3, 4}};
  selector.fit(X, {1.0, 2.0});
  EXPECT_THROW(selector.transform(Matrix(2, 3)), InvalidArgument);
}

TEST(VarianceThreshold, DropsConstantColumns) {
  Matrix X{{1, 7, 2}, {2, 7, 4}, {3, 7, 6}};
  VarianceThreshold vt;
  vt.fit(X, {});
  EXPECT_EQ(vt.kept(), (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(vt.transform(X).cols(), 2u);
}

TEST(VarianceThreshold, AllConstantThrows) {
  Matrix X(4, 2, 5.0);
  VarianceThreshold vt;
  EXPECT_THROW(vt.fit(X, {}), InvalidArgument);
}

TEST(VarianceThreshold, CustomThreshold) {
  Matrix X{{0.0, 0.0}, {0.1, 10.0}};  // variances: 0.0025, 25
  VarianceThreshold vt;
  vt.set_param("threshold", 1.0);
  vt.fit(X, {});
  EXPECT_EQ(vt.kept(), (std::vector<std::size_t>{1}));
}

}  // namespace
}  // namespace coda
