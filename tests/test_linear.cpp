// Tests for the linear models and the linear-algebra helpers.
#include <gtest/gtest.h>

#include <cmath>

#include "src/core/metrics.h"
#include "src/ml/linalg.h"
#include "src/ml/linear.h"
#include "src/util/random.h"

namespace coda {
namespace {

TEST(SolveLinearSystem, KnownSolution) {
  // 2x + y = 5 ; x - y = 1  -> x=2, y=1
  Matrix a{{2, 1}, {1, -1}};
  const auto x = solve_linear_system(a, {5, 1});
  EXPECT_NEAR(x[0], 2.0, 1e-12);
  EXPECT_NEAR(x[1], 1.0, 1e-12);
}

TEST(SolveLinearSystem, PivotingHandlesZeroDiagonal) {
  Matrix a{{0, 1}, {1, 0}};
  const auto x = solve_linear_system(a, {3, 7});
  EXPECT_NEAR(x[0], 7.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(SolveLinearSystem, SingularThrows) {
  Matrix a{{1, 2}, {2, 4}};
  EXPECT_THROW(solve_linear_system(a, {1, 2}), InvalidArgument);
}

TEST(LeastSquares, RecoversWeights) {
  Rng rng(2);
  Matrix X(200, 3);
  std::vector<double> y(200);
  for (std::size_t i = 0; i < 200; ++i) {
    for (std::size_t j = 0; j < 3; ++j) X(i, j) = rng.normal();
    y[i] = 2.0 * X(i, 0) - 1.0 * X(i, 1) + 0.5 * X(i, 2);
  }
  const auto w = least_squares(X, y);
  EXPECT_NEAR(w[0], 2.0, 1e-9);
  EXPECT_NEAR(w[1], -1.0, 1e-9);
  EXPECT_NEAR(w[2], 0.5, 1e-9);
}

TEST(LeastSquares, CollinearColumnsHandledViaRidgeFallback) {
  // Column 1 duplicates column 0: X'X is singular; the fallback must still
  // produce a usable fit rather than throwing.
  Matrix X(50, 2);
  std::vector<double> y(50);
  for (std::size_t i = 0; i < 50; ++i) {
    X(i, 0) = static_cast<double>(i);
    X(i, 1) = static_cast<double>(i);
    y[i] = 3.0 * static_cast<double>(i);
  }
  const auto w = least_squares(X, y);
  EXPECT_NEAR(w[0] + w[1], 3.0, 1e-3);
}

TEST(LinearRegression, ExactOnNoiselessData) {
  Rng rng(5);
  Matrix X(100, 2);
  std::vector<double> y(100);
  for (std::size_t i = 0; i < 100; ++i) {
    X(i, 0) = rng.normal();
    X(i, 1) = rng.normal();
    y[i] = 3.0 * X(i, 0) - 2.0 * X(i, 1) + 7.0;
  }
  LinearRegression model;
  model.fit(X, y);
  EXPECT_NEAR(model.coefficients()[0], 3.0, 1e-9);
  EXPECT_NEAR(model.coefficients()[1], -2.0, 1e-9);
  EXPECT_NEAR(model.coefficients()[2], 7.0, 1e-9);  // intercept
  const auto pred = model.predict(X);
  EXPECT_NEAR(rmse(y, pred), 0.0, 1e-9);
}

TEST(LinearRegression, PredictBeforeFitThrows) {
  LinearRegression model;
  EXPECT_THROW(model.predict(Matrix(2, 2)), StateError);
}

TEST(Ridge, ShrinksCoefficients) {
  Rng rng(6);
  Matrix X(60, 1);
  std::vector<double> y(60);
  for (std::size_t i = 0; i < 60; ++i) {
    X(i, 0) = rng.normal();
    y[i] = 5.0 * X(i, 0);
  }
  Ridge weak;
  weak.set_param("alpha", 0.001);
  weak.fit(X, y);
  Ridge strong;
  strong.set_param("alpha", 1000.0);
  strong.fit(X, y);
  EXPECT_GT(std::abs(weak.coefficients()[0]),
            std::abs(strong.coefficients()[0]) + 1.0);
}

TEST(Ridge, NegativeAlphaRejected) {
  Ridge model;
  model.set_param("alpha", -1.0);
  EXPECT_THROW(model.fit(Matrix(2, 1), {0, 1}), InvalidArgument);
}

TEST(LogisticRegression, SeparatesLinearlySeparableData) {
  Rng rng(7);
  Matrix X(200, 2);
  std::vector<double> y(200);
  for (std::size_t i = 0; i < 200; ++i) {
    X(i, 0) = rng.normal();
    X(i, 1) = rng.normal();
    y[i] = (X(i, 0) + X(i, 1) > 0.0) ? 1.0 : 0.0;
  }
  LogisticRegression model;
  model.fit(X, y);
  const auto scores = model.predict(X);
  EXPECT_GT(accuracy(y, scores), 0.95);
  EXPECT_GT(auc(y, scores), 0.99);
  for (const double s : scores) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(LogisticRegression, HyperparameterValidation) {
  LogisticRegression model;
  model.set_param("learning_rate", -0.1);
  EXPECT_THROW(model.fit(Matrix(2, 1), {0, 1}), InvalidArgument);
}

}  // namespace
}  // namespace coda
