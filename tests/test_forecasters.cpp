// Tests for the time-series estimators: statistical (Zero, AR) and neural
// (DNN/LSTM/CNN/WaveNet/SeriesNet), incl. a parameterized smoke sweep that
// trains every neural family on a short sine series.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>

#include "src/core/metrics.h"
#include "src/ts/forecasters.h"
#include "src/ts/nn_forecasters.h"
#include "src/ts/windowing.h"
#include "src/util/random.h"

namespace coda::ts {
namespace {

Matrix sine_series(std::size_t length, double noise = 0.02,
                   std::uint64_t seed = 3) {
  Rng rng(seed);
  Matrix m(length, 1);
  for (std::size_t t = 0; t < length; ++t) {
    m(t, 0) = std::sin(2.0 * 3.14159265 * static_cast<double>(t) / 12.0) +
              rng.normal(0.0, noise);
  }
  return m;
}

TEST(ZeroModel, PredictsPreviousGroundTruth) {
  const Matrix series = sine_series(40, 0.0);
  ForecastSpec spec;
  TsAsIs maker;
  const auto wd = maker.build(series, series, spec);
  ZeroModel model;
  model.fit(wd.X, wd.y);
  const auto pred = model.predict(wd.X);
  for (std::size_t i = 0; i < pred.size(); ++i) {
    EXPECT_DOUBLE_EQ(pred[i], wd.X(i, 0));  // the previous value verbatim
  }
}

TEST(ZeroModel, ValueColValidated) {
  ZeroModel model;
  model.set_param("value_col", std::int64_t{5});
  Matrix X(3, 1);
  EXPECT_THROW(model.fit(X, {1, 2, 3}), InvalidArgument);
}

TEST(ArModel, RecoversAr2Coefficients) {
  // x_t = 0.6 x_{t-1} - 0.3 x_{t-2} + eps.
  Rng rng(5);
  std::vector<double> x{0.1, -0.2};
  for (std::size_t t = 2; t < 500; ++t) {
    x.push_back(0.6 * x[t - 1] - 0.3 * x[t - 2] + rng.normal(0.0, 0.05));
  }
  Matrix series(x.size(), 1, x);
  ForecastSpec spec;
  spec.history = 2;
  CascadedWindows maker;
  const auto wd = maker.build(series, series, spec);
  ArModel model;
  model.fit(wd.X, wd.y);
  // Window layout is time-major: col 0 = lag 2, col 1 = lag 1.
  EXPECT_NEAR(model.coefficients()[0], -0.3, 0.05);
  EXPECT_NEAR(model.coefficients()[1], 0.6, 0.05);
}

TEST(ArModel, BeatsZeroOnAutocorrelatedSeries) {
  const Matrix series = sine_series(200);
  ForecastSpec spec;
  spec.history = 12;
  CascadedWindows cascaded;
  const auto wd = cascaded.build(series, series, spec);
  ArModel ar;
  ar.fit(wd.X, wd.y);
  const double ar_rmse = rmse(wd.y, ar.predict(wd.X));

  TsAsIs asis;
  const auto wz = asis.build(series, series, spec);
  ZeroModel zero;
  zero.fit(wz.X, wz.y);
  const double zero_rmse = rmse(wz.y, zero.predict(wz.X));
  EXPECT_LT(ar_rmse, 0.5 * zero_rmse);
}

// Smoke sweep: every neural family trains on a short sine and produces
// finite predictions substantially better than predicting the mean.
struct NeuralCase {
  std::string label;
  std::function<std::unique_ptr<NeuralForecaster>()> make;
};

class NeuralForecasterSweep : public ::testing::TestWithParam<NeuralCase> {};

TEST_P(NeuralForecasterSweep, LearnsSineBetterThanMean) {
  const Matrix series = sine_series(160);
  ForecastSpec spec;
  spec.history = 12;
  CascadedWindows maker;
  const auto wd = maker.build(series, series, spec);

  auto model = GetParam().make();
  if (model->params().contains("n_vars")) {
    model->set_param("n_vars", std::int64_t{1});
  }
  model->set_param("epochs", std::int64_t{60});
  model->fit(wd.X, wd.y);
  const auto pred = model->predict(wd.X);
  for (const double p : pred) EXPECT_TRUE(std::isfinite(p));

  // Mean predictor RMSE ~ the signal stddev (~0.71 for a sine).
  std::vector<double> mean_pred(wd.y.size(), 0.0);
  double mean = 0.0;
  for (const double v : wd.y) mean += v;
  mean /= static_cast<double>(wd.y.size());
  std::fill(mean_pred.begin(), mean_pred.end(), mean);
  EXPECT_LT(rmse(wd.y, pred), 0.7 * rmse(wd.y, mean_pred))
      << GetParam().label << " failed to learn the sine";
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, NeuralForecasterSweep,
    ::testing::Values(
        NeuralCase{"dnn_simple",
                   [] {
                     auto m = std::make_unique<DnnForecaster>();
                     m->set_param("arch", std::string("simple"));
                     return m;
                   }},
        NeuralCase{"dnn_deep",
                   [] {
                     auto m = std::make_unique<DnnForecaster>();
                     m->set_param("arch", std::string("deep"));
                     return m;
                   }},
        NeuralCase{"lstm_simple",
                   [] {
                     auto m = std::make_unique<LstmForecaster>();
                     m->set_param("arch", std::string("simple"));
                     return m;
                   }},
        NeuralCase{"cnn_simple",
                   [] {
                     auto m = std::make_unique<CnnForecaster>();
                     m->set_param("arch", std::string("simple"));
                     return m;
                   }},
        NeuralCase{"cnn_deep",
                   [] {
                     auto m = std::make_unique<CnnForecaster>();
                     m->set_param("arch", std::string("deep"));
                     return m;
                   }},
        NeuralCase{"wavenet",
                   [] { return std::make_unique<WaveNetForecaster>(); }},
        NeuralCase{"seriesnet",
                   [] { return std::make_unique<SeriesNetForecaster>(); }}),
    [](const ::testing::TestParamInfo<NeuralCase>& info) {
      return info.param.label;
    });

TEST(NeuralForecaster, NVarsMisalignmentThrows) {
  LstmForecaster model;
  model.set_param("n_vars", std::int64_t{3});
  Matrix X(4, 10);  // 10 % 3 != 0
  EXPECT_THROW(model.fit(X, std::vector<double>(4, 0.0)), InvalidArgument);
}

TEST(NeuralForecaster, UnknownArchThrows) {
  DnnForecaster model;
  model.set_param("arch", std::string("huge"));
  Matrix X(4, 2);
  EXPECT_THROW(model.fit(X, std::vector<double>(4, 0.0)), InvalidArgument);
}

TEST(NeuralForecaster, PredictBeforeFitThrows) {
  DnnForecaster model;
  EXPECT_THROW(model.predict(Matrix(1, 2)), StateError);
}

TEST(NeuralForecaster, DeterministicPerSeed) {
  const Matrix series = sine_series(80);
  ForecastSpec spec;
  spec.history = 8;
  CascadedWindows maker;
  const auto wd = maker.build(series, series, spec);
  DnnForecaster a, b;
  a.set_param("epochs", std::int64_t{10});
  b.set_param("epochs", std::int64_t{10});
  a.fit(wd.X, wd.y);
  b.fit(wd.X, wd.y);
  EXPECT_EQ(a.predict(wd.X), b.predict(wd.X));
}

TEST(LstmForecaster, DeepArchitectureRuns) {
  const Matrix series = sine_series(60);
  ForecastSpec spec;
  spec.history = 6;
  CascadedWindows maker;
  const auto wd = maker.build(series, series, spec);
  LstmForecaster model;
  model.set_param("arch", std::string("deep"));
  model.set_param("epochs", std::int64_t{5});
  model.set_param("hidden", std::int64_t{4});
  model.fit(wd.X, wd.y);
  for (const double p : model.predict(wd.X)) EXPECT_TRUE(std::isfinite(p));
}

}  // namespace
}  // namespace coda::ts
