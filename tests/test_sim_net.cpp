// Tests for the simulated network fabric.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/dist/sim_net.h"

namespace coda::dist {
namespace {

TEST(SimNet, NodeRegistration) {
  SimNet net;
  const NodeId a = net.add_node("a");
  const NodeId b = net.add_node("b");
  EXPECT_EQ(net.n_nodes(), 2u);
  EXPECT_EQ(net.node_name(a), "a");
  EXPECT_EQ(net.node_name(b), "b");
  EXPECT_THROW(net.add_node("a"), InvalidArgument);
  EXPECT_THROW(net.add_node(""), InvalidArgument);
}

TEST(SimNet, TransferAccountsBytesAndMessages) {
  SimNet net;
  const NodeId a = net.add_node("a");
  const NodeId b = net.add_node("b");
  net.transfer(a, b, 1000);
  net.transfer(a, b, 500);
  net.transfer(b, a, 100);
  EXPECT_EQ(net.link(a, b).messages, 2u);
  EXPECT_EQ(net.link(a, b).bytes, 1500u);
  EXPECT_EQ(net.link(b, a).bytes, 100u);
  const auto total = net.total();
  EXPECT_EQ(total.messages, 3u);
  EXPECT_EQ(total.bytes, 1600u);
}

TEST(SimNet, TransferTimeModel) {
  SimNet::Config cfg;
  cfg.latency_seconds = 0.01;
  cfg.bandwidth_bytes_per_sec = 1000.0;
  SimNet net(cfg);
  const NodeId a = net.add_node("a");
  const NodeId b = net.add_node("b");
  const auto result = net.transfer(a, b, 500);
  EXPECT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result.seconds, 0.01 + 0.5);
}

TEST(SimNet, SelfTransferRejected) {
  SimNet net;
  const NodeId a = net.add_node("a");
  EXPECT_THROW(net.transfer(a, a, 1), InvalidArgument);
}

TEST(SimNet, UnknownNodeRejected) {
  SimNet net;
  const NodeId a = net.add_node("a");
  EXPECT_THROW(net.transfer(a, 99, 1), InvalidArgument);
  EXPECT_THROW(net.link(99, a), InvalidArgument);
}

TEST(SimNet, ClockAdvances) {
  SimNet net;
  EXPECT_DOUBLE_EQ(net.now(), 0.0);
  net.advance(1.5);
  net.advance(0.5);
  EXPECT_DOUBLE_EQ(net.now(), 2.0);
  EXPECT_THROW(net.advance(-1.0), InvalidArgument);
}

TEST(SimNet, ResetStatsKeepsClock) {
  SimNet net;
  const NodeId a = net.add_node("a");
  const NodeId b = net.add_node("b");
  net.transfer(a, b, 100);
  net.advance(3.0);
  net.reset_stats();
  EXPECT_EQ(net.total().bytes, 0u);
  EXPECT_DOUBLE_EQ(net.now(), 3.0);
}

TEST(SimNet, BadConfigRejected) {
  SimNet::Config cfg;
  cfg.bandwidth_bytes_per_sec = 0.0;
  EXPECT_THROW(SimNet{cfg}, InvalidArgument);
}

TEST(SimNetFaults, DropsAreDeterministicPerSeed) {
  auto run = [](std::uint64_t seed) {
    SimNet net;
    const NodeId a = net.add_node("a");
    const NodeId b = net.add_node("b");
    SimNet::FaultConfig faults;
    faults.seed = seed;
    faults.drop_probability = 0.3;
    net.set_faults(faults);
    std::vector<bool> outcomes;
    for (int i = 0; i < 200; ++i) {
      outcomes.push_back(net.transfer(a, b, 100).ok());
    }
    return outcomes;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST(SimNetFaults, DropRateTracksProbability) {
  SimNet net;
  const NodeId a = net.add_node("a");
  const NodeId b = net.add_node("b");
  SimNet::FaultConfig faults;
  faults.drop_probability = 0.25;
  net.set_faults(faults);
  std::size_t dropped = 0;
  for (int i = 0; i < 2000; ++i) {
    const auto r = net.transfer(a, b, 100);
    if (!r.ok()) {
      EXPECT_EQ(r.failure, TransferResult::Failure::kDropped);
      // A drop burns the one-way latency but lands no payload bytes.
      EXPECT_GT(r.seconds, 0.0);
      ++dropped;
    }
  }
  EXPECT_EQ(net.fault_stats().dropped, dropped);
  EXPECT_NEAR(static_cast<double>(dropped) / 2000.0, 0.25, 0.05);
  EXPECT_EQ(net.link(a, b).messages, 2000u);
  EXPECT_EQ(net.link(a, b).bytes, (2000u - dropped) * 100u);
}

TEST(SimNetFaults, PartitionWindowIsDirectedAndHeals) {
  SimNet net;
  const NodeId a = net.add_node("a");
  const NodeId b = net.add_node("b");
  net.partition(a, b, 1.0, 2.0);
  EXPECT_TRUE(net.transfer(a, b, 10).ok());  // before the window
  net.advance(1.5);
  const auto blocked = net.transfer(a, b, 10);
  EXPECT_EQ(blocked.failure, TransferResult::Failure::kPartitioned);
  EXPECT_DOUBLE_EQ(blocked.seconds, 0.0);
  EXPECT_TRUE(net.transfer(b, a, 10).ok());  // reverse direction unaffected
  net.advance(1.0);
  EXPECT_TRUE(net.transfer(a, b, 10).ok());  // window over
  net.partition(a, b, 0.0, 100.0);
  EXPECT_FALSE(net.transfer(a, b, 10).ok());
  net.heal_partitions();
  EXPECT_TRUE(net.transfer(a, b, 10).ok());
  EXPECT_EQ(net.fault_stats().partitioned, 2u);
}

TEST(SimNetFaults, CrashedNodeFailsBothDirections) {
  SimNet net;
  const NodeId a = net.add_node("a");
  const NodeId b = net.add_node("b");
  const NodeId c = net.add_node("c");
  net.crash_node(b, 0.0, 5.0);
  EXPECT_FALSE(net.node_up(b));
  EXPECT_EQ(net.transfer(a, b, 10).failure,
            TransferResult::Failure::kNodeDown);
  EXPECT_EQ(net.transfer(b, a, 10).failure,
            TransferResult::Failure::kNodeDown);
  EXPECT_TRUE(net.transfer(a, c, 10).ok());  // bystanders unaffected
  net.restart_node(b);
  EXPECT_TRUE(net.node_up(b));
  EXPECT_TRUE(net.transfer(a, b, 10).ok());
  EXPECT_EQ(net.fault_stats().node_down, 2u);
}

TEST(SimNetFaults, LatencySpikeAndBandwidthCollapseStretchTransfers) {
  SimNet::Config cfg;
  cfg.latency_seconds = 0.01;
  cfg.bandwidth_bytes_per_sec = 1000.0;
  SimNet net(cfg);
  const NodeId a = net.add_node("a");
  const NodeId b = net.add_node("b");
  SimNet::FaultConfig faults;
  faults.latency_spike_probability = 1.0;
  faults.latency_spike_seconds = 0.5;
  faults.bandwidth_collapse_probability = 1.0;
  faults.bandwidth_collapse_factor = 0.1;
  net.set_faults(faults);
  const auto r = net.transfer(a, b, 100);
  ASSERT_TRUE(r.ok());
  // latency + spike + bytes at collapsed bandwidth.
  EXPECT_DOUBLE_EQ(r.seconds, 0.01 + 0.5 + 100.0 / 100.0);
  EXPECT_EQ(net.fault_stats().latency_spikes, 1u);
}

TEST(SimNetFaults, BadFaultConfigRejected) {
  SimNet net;
  SimNet::FaultConfig faults;
  faults.drop_probability = 1.0;  // would retry forever
  EXPECT_THROW(net.set_faults(faults), InvalidArgument);
  faults = SimNet::FaultConfig{};
  faults.bandwidth_collapse_factor = 0.0;
  EXPECT_THROW(net.set_faults(faults), InvalidArgument);
  const NodeId a = net.add_node("a");
  const NodeId b = net.add_node("b");
  EXPECT_THROW(net.partition(a, b, 2.0, 1.0), InvalidArgument);
  EXPECT_THROW(net.crash_node(a, 1.0, 1.0), InvalidArgument);
}

TEST(SimNetFaults, ResetStatsClearsFaultCounters) {
  SimNet net;
  const NodeId a = net.add_node("a");
  const NodeId b = net.add_node("b");
  net.crash_node(b, 0.0, 1.0);
  net.transfer(a, b, 10);
  EXPECT_EQ(net.fault_stats().node_down, 1u);
  net.reset_stats();
  EXPECT_EQ(net.fault_stats().node_down, 0u);
}

}  // namespace
}  // namespace coda::dist
