// Tests for the simulated network fabric.
#include <gtest/gtest.h>

#include "src/dist/sim_net.h"

namespace coda::dist {
namespace {

TEST(SimNet, NodeRegistration) {
  SimNet net;
  const NodeId a = net.add_node("a");
  const NodeId b = net.add_node("b");
  EXPECT_EQ(net.n_nodes(), 2u);
  EXPECT_EQ(net.node_name(a), "a");
  EXPECT_EQ(net.node_name(b), "b");
  EXPECT_THROW(net.add_node("a"), InvalidArgument);
  EXPECT_THROW(net.add_node(""), InvalidArgument);
}

TEST(SimNet, TransferAccountsBytesAndMessages) {
  SimNet net;
  const NodeId a = net.add_node("a");
  const NodeId b = net.add_node("b");
  net.transfer(a, b, 1000);
  net.transfer(a, b, 500);
  net.transfer(b, a, 100);
  EXPECT_EQ(net.link(a, b).messages, 2u);
  EXPECT_EQ(net.link(a, b).bytes, 1500u);
  EXPECT_EQ(net.link(b, a).bytes, 100u);
  const auto total = net.total();
  EXPECT_EQ(total.messages, 3u);
  EXPECT_EQ(total.bytes, 1600u);
}

TEST(SimNet, TransferTimeModel) {
  SimNet::Config cfg;
  cfg.latency_seconds = 0.01;
  cfg.bandwidth_bytes_per_sec = 1000.0;
  SimNet net(cfg);
  const NodeId a = net.add_node("a");
  const NodeId b = net.add_node("b");
  EXPECT_DOUBLE_EQ(net.transfer(a, b, 500), 0.01 + 0.5);
}

TEST(SimNet, SelfTransferRejected) {
  SimNet net;
  const NodeId a = net.add_node("a");
  EXPECT_THROW(net.transfer(a, a, 1), InvalidArgument);
}

TEST(SimNet, UnknownNodeRejected) {
  SimNet net;
  const NodeId a = net.add_node("a");
  EXPECT_THROW(net.transfer(a, 99, 1), InvalidArgument);
  EXPECT_THROW(net.link(99, a), InvalidArgument);
}

TEST(SimNet, ClockAdvances) {
  SimNet net;
  EXPECT_DOUBLE_EQ(net.now(), 0.0);
  net.advance(1.5);
  net.advance(0.5);
  EXPECT_DOUBLE_EQ(net.now(), 2.0);
  EXPECT_THROW(net.advance(-1.0), InvalidArgument);
}

TEST(SimNet, ResetStatsKeepsClock) {
  SimNet net;
  const NodeId a = net.add_node("a");
  const NodeId b = net.add_node("b");
  net.transfer(a, b, 100);
  net.advance(3.0);
  net.reset_stats();
  EXPECT_EQ(net.total().bytes, 0u);
  EXPECT_DOUBLE_EQ(net.now(), 3.0);
}

TEST(SimNet, BadConfigRejected) {
  SimNet::Config cfg;
  cfg.bandwidth_bytes_per_sec = 0.0;
  EXPECT_THROW(SimNet{cfg}, InvalidArgument);
}

}  // namespace
}  // namespace coda::dist
