// Tests for covariance computation, the Jacobi eigen solver and PCA.
#include <gtest/gtest.h>

#include <cmath>

#include "src/ml/pca.h"
#include "src/util/random.h"

namespace coda {
namespace {

TEST(Covariance, MatchesHandComputation) {
  Matrix X{{1, 2}, {3, 6}};
  const auto cov = covariance_matrix(X);
  // means (2,4); deviations (-1,-2),(1,2) -> var0=1, var1=4, cov=2.
  EXPECT_DOUBLE_EQ(cov(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(cov(1, 1), 4.0);
  EXPECT_DOUBLE_EQ(cov(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(cov(1, 0), 2.0);
}

TEST(SymmetricEigen, DiagonalMatrix) {
  Matrix m{{3, 0}, {0, 1}};
  std::vector<double> values;
  Matrix vectors;
  symmetric_eigen(m, values, vectors);
  EXPECT_NEAR(values[0], 3.0, 1e-10);
  EXPECT_NEAR(values[1], 1.0, 1e-10);
}

TEST(SymmetricEigen, KnownEigenpairs) {
  // [[2,1],[1,2]] -> eigenvalues 3 and 1.
  Matrix m{{2, 1}, {1, 2}};
  std::vector<double> values;
  Matrix vectors;
  symmetric_eigen(m, values, vectors);
  EXPECT_NEAR(values[0], 3.0, 1e-10);
  EXPECT_NEAR(values[1], 1.0, 1e-10);
  // Eigenvector of 3 is (1,1)/sqrt(2) up to sign.
  EXPECT_NEAR(std::abs(vectors(0, 0)), std::abs(vectors(1, 0)), 1e-10);
}

TEST(SymmetricEigen, ReconstructsMatrix) {
  // A = V diag(L) V^T must reproduce the input.
  Rng rng(4);
  const std::size_t d = 5;
  Matrix a(d, d);
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = i; j < d; ++j) {
      a(i, j) = rng.normal();
      a(j, i) = a(i, j);
    }
  }
  std::vector<double> values;
  Matrix v;
  symmetric_eigen(a, values, v);
  Matrix lambda(d, d);
  for (std::size_t i = 0; i < d; ++i) lambda(i, i) = values[i];
  const Matrix rebuilt = v.multiply(lambda).multiply(v.transposed());
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      EXPECT_NEAR(rebuilt(i, j), a(i, j), 1e-8);
    }
  }
}

TEST(PCA, FirstComponentCapturesDominantDirection) {
  // Data stretched along (1,1): the top component must align with it.
  Rng rng(8);
  Matrix X(400, 2);
  for (std::size_t i = 0; i < 400; ++i) {
    const double main_axis = rng.normal(0.0, 5.0);
    const double off_axis = rng.normal(0.0, 0.3);
    X(i, 0) = main_axis + off_axis;
    X(i, 1) = main_axis - off_axis;
  }
  PCA pca;
  pca.set_param("n_components", std::int64_t{2});
  pca.fit(X, {});
  EXPECT_GT(pca.explained_variance()[0],
            10.0 * pca.explained_variance()[1]);
  // Alignment with (1,1) up to sampling noise in the off-axis direction.
  const auto& comps = pca.components();
  EXPECT_NEAR(std::abs(comps(0, 0)), std::abs(comps(1, 0)), 0.02);
}

TEST(PCA, ProjectionShape) {
  Rng rng(9);
  Matrix X(50, 6);
  for (double& v : X.data()) v = rng.normal();
  PCA pca;
  pca.set_param("n_components", std::int64_t{3});
  pca.fit(X, {});
  const auto projected = pca.transform(X);
  EXPECT_EQ(projected.rows(), 50u);
  EXPECT_EQ(projected.cols(), 3u);
}

TEST(PCA, WhitenedComponentsHaveUnitVariance) {
  Rng rng(10);
  Matrix X(500, 3);
  for (std::size_t i = 0; i < 500; ++i) {
    X(i, 0) = rng.normal(0.0, 10.0);
    X(i, 1) = rng.normal(0.0, 2.0);
    X(i, 2) = rng.normal(0.0, 0.5);
  }
  PCA pca;
  pca.set_param("n_components", std::int64_t{3});
  pca.set_param("whiten", true);
  pca.fit(X, {});
  const auto projected = pca.transform(X);
  const auto sds = projected.col_stddevs();
  for (std::size_t c = 0; c < 3; ++c) EXPECT_NEAR(sds[c], 1.0, 0.05);
}

TEST(PCA, ComponentBoundsValidated) {
  PCA pca;
  pca.set_param("n_components", std::int64_t{5});
  Matrix X(10, 3);
  EXPECT_THROW(pca.fit(X, {}), InvalidArgument);
}

TEST(PCA, TransformBeforeFitThrows) {
  PCA pca;
  EXPECT_THROW(pca.transform(Matrix(2, 2)), StateError);
}

}  // namespace
}  // namespace coda
