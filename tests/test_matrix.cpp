#include "src/data/matrix.h"

#include <gtest/gtest.h>

#include "src/util/error.h"

namespace coda {
namespace {

TEST(Matrix, DefaultIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_TRUE(m.empty());
}

TEST(Matrix, FillConstructor) {
  Matrix m(3, 4, 2.5);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 4; ++c) EXPECT_DOUBLE_EQ(m(r, c), 2.5);
  }
}

TEST(Matrix, InitializerList) {
  Matrix m{{1, 2}, {3, 4}, {5, 6}};
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(2, 1), 6.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1, 2}, {3}}), InvalidArgument);
}

TEST(Matrix, BufferConstructorChecksSize) {
  EXPECT_THROW(Matrix(2, 2, std::vector<double>{1, 2, 3}), InvalidArgument);
  Matrix m(2, 2, {1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(Matrix, AtBoundsChecked) {
  Matrix m(2, 2);
  EXPECT_THROW(m.at(2, 0), InvalidArgument);
  EXPECT_THROW(m.at(0, 2), InvalidArgument);
  m.at(1, 1) = 7.0;
  EXPECT_DOUBLE_EQ(m.at(1, 1), 7.0);
}

TEST(Matrix, RowAndCol) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(m.row(1), (std::vector<double>{4, 5, 6}));
  EXPECT_EQ(m.col(2), (std::vector<double>{3, 6}));
}

TEST(Matrix, SetRow) {
  Matrix m(2, 3);
  m.set_row(0, {7, 8, 9});
  EXPECT_DOUBLE_EQ(m(0, 2), 9.0);
  EXPECT_THROW(m.set_row(0, {1, 2}), InvalidArgument);
}

TEST(Matrix, SelectRows) {
  Matrix m{{1, 2}, {3, 4}, {5, 6}};
  Matrix s = m.select_rows({2, 0});
  EXPECT_EQ(s.rows(), 2u);
  EXPECT_DOUBLE_EQ(s(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(s(1, 1), 2.0);
}

TEST(Matrix, SelectColsAndDuplicates) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  Matrix s = m.select_cols({1, 1});
  EXPECT_EQ(s.cols(), 2u);
  EXPECT_DOUBLE_EQ(s(1, 0), 5.0);
  EXPECT_DOUBLE_EQ(s(1, 1), 5.0);
}

TEST(Matrix, Transpose) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(Matrix, Multiply) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5, 6}, {7, 8}};
  Matrix c = a.multiply(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MultiplyShapeMismatchThrows) {
  Matrix a(2, 3);
  Matrix b(2, 3);
  EXPECT_THROW(a.multiply(b), InvalidArgument);
}

TEST(Matrix, ColMeansAndStddevs) {
  Matrix m{{1, 10}, {3, 10}};
  const auto means = m.col_means();
  EXPECT_DOUBLE_EQ(means[0], 2.0);
  EXPECT_DOUBLE_EQ(means[1], 10.0);
  const auto sds = m.col_stddevs();
  EXPECT_DOUBLE_EQ(sds[0], 1.0);
  EXPECT_DOUBLE_EQ(sds[1], 0.0);
}

TEST(Matrix, Equality) {
  Matrix a{{1, 2}};
  Matrix b{{1, 2}};
  Matrix c{{1, 3}};
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

TEST(Matrix, Describe) {
  EXPECT_EQ(Matrix(3, 7).describe(), "Matrix(3x7)");
}

}  // namespace
}  // namespace coda
