// Tests for the home data store (Section III): version numbering, retained
// deltas d(o, k-i, k), version-negotiated fetch, and the lease lifecycle
// (subscribe / renew / cancel / expire) with all three push modes.
#include <gtest/gtest.h>

#include "src/dist/home_store.h"
#include "src/util/random.h"

namespace coda::dist {
namespace {

Bytes pattern(std::size_t n, std::uint8_t seed) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = static_cast<std::uint8_t>((i * 31 + seed) & 0xFF);
  }
  return b;
}

struct StoreFixture : ::testing::Test {
  SimNet net;
  NodeId store_node = net.add_node("store");
  NodeId client_node = net.add_node("client");
  HomeDataStore store{&net, store_node};
};

TEST_F(StoreFixture, VersionsIncreaseMonotonically) {
  EXPECT_EQ(store.version("o1"), 0u);
  store.put("o1", pattern(100, 1));
  EXPECT_EQ(store.version("o1"), 1u);
  store.put("o1", pattern(100, 2));
  EXPECT_EQ(store.version("o1"), 2u);
  EXPECT_EQ(store.value("o1"), pattern(100, 2));
}

TEST_F(StoreFixture, MissingObjectThrows) {
  EXPECT_THROW(store.value("nope"), NotFound);
  EXPECT_THROW(store.fetch("nope", client_node, 0), NotFound);
}

TEST_F(StoreFixture, RetainedDeltasCoverRecentHistory) {
  for (std::uint8_t v = 1; v <= 6; ++v) {
    store.put("o1", pattern(2048, v));
  }
  // With max_history = 4 (default), versions 2..5 are retained as bases.
  EXPECT_EQ(store.retained_delta_bases("o1"),
            (std::vector<std::uint64_t>{2, 3, 4, 5}));
}

TEST_F(StoreFixture, FetchReturnsDeltaForRetainedVersion) {
  Bytes v1 = pattern(8192, 1);
  store.put("o1", v1);
  Bytes v2 = v1;
  v2[10] = 0xFF;  // tiny change
  store.put("o1", v2);

  const auto result = store.fetch("o1", client_node, 1);
  EXPECT_TRUE(result.is_delta);
  EXPECT_EQ(result.version, 2u);
  EXPECT_EQ(apply_delta(v1, result.delta), v2);
  EXPECT_LT(result.response_bytes, v2.size() / 4);
}

TEST_F(StoreFixture, FetchFullWhenVersionUnknown) {
  store.put("o1", pattern(4096, 1));
  store.put("o1", pattern(4096, 2));
  const auto result = store.fetch("o1", client_node, 0);  // no base held
  EXPECT_FALSE(result.is_delta);
  EXPECT_EQ(result.full_value, pattern(4096, 2));
}

TEST_F(StoreFixture, FetchFullWhenDeltaNotWorthwhile) {
  // A complete rewrite with unrelated random content: no blocks shared.
  Rng rng(9);
  Bytes v1(4096), v2(4096);
  for (auto& b : v1) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  for (auto& b : v2) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  store.put("o1", v1);
  store.put("o1", v2);
  const auto result = store.fetch("o1", client_node, 1);
  EXPECT_FALSE(result.is_delta);
}

TEST_F(StoreFixture, FetchUpToDateIsTiny) {
  store.put("o1", pattern(4096, 1));
  const auto result = store.fetch("o1", client_node, 1);
  EXPECT_FALSE(result.is_delta);
  EXPECT_TRUE(result.full_value.empty());
  EXPECT_LE(result.response_bytes, 16u);
}

TEST_F(StoreFixture, FetchAccountsTraffic) {
  store.put("o1", pattern(1024, 1));
  const auto before = net.total().bytes;
  store.fetch("o1", client_node, 0);
  EXPECT_GT(net.total().bytes, before + 1024);  // request + full response
}

TEST_F(StoreFixture, LeaseLifecycle) {
  store.put("o1", pattern(128, 1));
  EXPECT_FALSE(store.has_lease("o1", client_node));
  store.subscribe("o1", client_node, 10.0, PushMode::kFullValue);
  EXPECT_TRUE(store.has_lease("o1", client_node));
  EXPECT_EQ(store.active_leases("o1"), 1u);

  // Expiry is driven by the simulated clock.
  net.advance(11.0);
  EXPECT_FALSE(store.has_lease("o1", client_node));
  EXPECT_EQ(store.active_leases("o1"), 0u);
}

TEST_F(StoreFixture, RenewExtendsLease) {
  store.put("o1", pattern(128, 1));
  store.subscribe("o1", client_node, 5.0, PushMode::kFullValue);
  net.advance(4.0);
  store.renew("o1", client_node, 5.0);
  net.advance(4.0);  // past the original expiry, within the renewal
  EXPECT_TRUE(store.has_lease("o1", client_node));
  // A registered node without a lease cannot renew.
  const NodeId other = net.add_node("other");
  EXPECT_THROW(store.renew("o1", other, 1.0), NotFound);
}

TEST_F(StoreFixture, CancelRemovesLease) {
  store.put("o1", pattern(128, 1));
  store.subscribe("o1", client_node, 100.0, PushMode::kDelta);
  store.cancel("o1", client_node);
  EXPECT_FALSE(store.has_lease("o1", client_node));
}

TEST_F(StoreFixture, PushFullValueDeliversUpdates) {
  std::vector<PushMessage> received;
  store.set_push_handler(
      [&](NodeId client, const PushMessage& msg) {
        EXPECT_EQ(client, client_node);
        received.push_back(msg);
      });
  store.subscribe("o1", client_node, 100.0, PushMode::kFullValue);
  store.put("o1", pattern(256, 1));
  store.put("o1", pattern(256, 2));
  ASSERT_EQ(received.size(), 2u);
  EXPECT_EQ(received[1].version, 2u);
  EXPECT_EQ(received[1].full_value, pattern(256, 2));
}

TEST_F(StoreFixture, PushDeltaAfterFirstFull) {
  std::vector<PushMessage> received;
  store.set_push_handler(
      [&](NodeId, const PushMessage& msg) { received.push_back(msg); });
  store.subscribe("o1", client_node, 100.0, PushMode::kDelta);
  Bytes v1 = pattern(4096, 1);
  store.put("o1", v1);
  Bytes v2 = v1;
  v2[5] ^= 0xAA;
  store.put("o1", v2);
  ASSERT_EQ(received.size(), 2u);
  // First push has no subscriber base: full value.
  EXPECT_EQ(received[0].mode, PushMode::kFullValue);
  // Second push is a delta against the pushed version 1.
  EXPECT_EQ(received[1].mode, PushMode::kDelta);
  EXPECT_EQ(apply_delta(v1, received[1].delta), v2);
  EXPECT_LT(received[1].wire_bytes, v2.size() / 4);
}

TEST_F(StoreFixture, PushNotifyOnlyCarriesHint) {
  std::vector<PushMessage> received;
  store.set_push_handler(
      [&](NodeId, const PushMessage& msg) { received.push_back(msg); });
  store.subscribe("o1", client_node, 100.0, PushMode::kNotifyOnly);
  store.put("o1", pattern(4096, 1));
  Bytes v2 = pattern(4096, 1);
  v2[0] ^= 1;
  store.put("o1", v2);
  ASSERT_EQ(received.size(), 2u);
  EXPECT_EQ(received[1].mode, PushMode::kNotifyOnly);
  EXPECT_GT(received[1].change_size_hint, 0u);
  EXPECT_LT(received[1].wire_bytes, 100u);  // tiny on the wire
  EXPECT_TRUE(received[1].full_value.empty());
}

TEST_F(StoreFixture, ExpiredLeaseReceivesNoPush) {
  std::size_t pushes = 0;
  store.set_push_handler([&](NodeId, const PushMessage&) { ++pushes; });
  store.subscribe("o1", client_node, 1.0, PushMode::kFullValue);
  net.advance(2.0);
  store.put("o1", pattern(64, 1));
  EXPECT_EQ(pushes, 0u);
}

TEST(HomeDataStore, ConfigValidation) {
  SimNet net;
  const NodeId n = net.add_node("s");
  HomeDataStore::Config cfg;
  cfg.max_history = 0;
  EXPECT_THROW(HomeDataStore(&net, n, cfg), InvalidArgument);
  HomeDataStore::Config cfg2;
  cfg2.min_delta_ratio = 0.0;
  EXPECT_THROW(HomeDataStore(&net, n, cfg2), InvalidArgument);
}

TEST(HomeDataStore, PushModeNames) {
  EXPECT_EQ(push_mode_name(PushMode::kFullValue), "full");
  EXPECT_EQ(push_mode_name(PushMode::kDelta), "delta");
  EXPECT_EQ(push_mode_name(PushMode::kNotifyOnly), "notify");
}

}  // namespace
}  // namespace coda::dist
