// Tests for the Data Analytics Results Repository (Fig 2): record
// serialization, claim lifecycle incl. TTL expiry (failure injection for a
// crashed claimant), prefix listing, and the network-accounted client.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "src/darr/client.h"
#include "src/darr/repository.h"

namespace coda::darr {
namespace {

DarrRecord sample_record(const std::string& key) {
  DarrRecord r;
  r.key = key;
  r.mean_score = 0.25;
  r.stddev = 0.05;
  r.fold_scores = {0.2, 0.3};
  r.explanation = "standardscaler -> linearregression";
  r.producer = "client0";
  return r;
}

TEST(DarrRecord, SerializeRoundTrip) {
  const auto r = sample_record("fp|spec|cv|rmse");
  const auto decoded = DarrRecord::deserialize(r.serialize());
  EXPECT_EQ(decoded, r);
}

TEST(DarrRecord, WireSizeMatchesSerialized) {
  const auto r = sample_record("k");
  EXPECT_EQ(r.wire_size(), r.serialize().size());
}

TEST(DarrRecord, CorruptBufferRejected) {
  auto bytes = sample_record("k").serialize();
  bytes.resize(bytes.size() - 3);
  EXPECT_THROW(DarrRecord::deserialize(bytes), DecodeError);
  bytes = sample_record("k").serialize();
  bytes.push_back(0);  // trailing garbage
  EXPECT_THROW(DarrRecord::deserialize(bytes), DecodeError);
}

TEST(DarrRepository, LookupStoreFlow) {
  DarrRepository repo;
  EXPECT_FALSE(repo.lookup("k").has_value());
  repo.store(sample_record("k"), 1.5);
  const auto hit = repo.lookup("k");
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(hit->mean_score, 0.25);
  EXPECT_DOUBLE_EQ(hit->stored_at, 1.5);
  EXPECT_EQ(repo.size(), 1u);
  const auto counters = repo.counters();
  EXPECT_EQ(counters.lookups, 2u);
  EXPECT_EQ(counters.hits, 1u);
  EXPECT_EQ(counters.stores, 1u);
}

TEST(DarrRepository, ClaimBlocksOthersUntilStore) {
  DarrRepository repo;
  EXPECT_TRUE(repo.try_claim("k", "alice"));
  EXPECT_FALSE(repo.try_claim("k", "bob"));
  EXPECT_TRUE(repo.try_claim("k", "alice"));  // idempotent re-claim
  repo.store(sample_record("k"));
  // Once stored, claims are denied — the result exists, go look it up.
  EXPECT_FALSE(repo.try_claim("k", "bob"));
  EXPECT_FALSE(repo.try_claim("k", "alice"));
}

TEST(DarrRepository, AbandonReleasesClaim) {
  DarrRepository repo;
  EXPECT_TRUE(repo.try_claim("k", "alice"));
  repo.abandon("k", "alice");
  EXPECT_TRUE(repo.try_claim("k", "bob"));
  // Abandoning someone else's claim is a no-op.
  repo.abandon("k", "mallory");
  EXPECT_FALSE(repo.try_claim("k", "carol"));
}

TEST(DarrRepository, ExpiredClaimIsStolen) {
  // Failure injection: the claimant "crashes" and its claim times out.
  DarrRepository::Config cfg;
  cfg.claim_ttl_ms = 20;
  DarrRepository repo(cfg);
  EXPECT_TRUE(repo.try_claim("k", "dead_client"));
  EXPECT_FALSE(repo.try_claim("k", "bob"));
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  EXPECT_TRUE(repo.try_claim("k", "bob"));  // stolen after TTL
  EXPECT_GE(repo.counters().claims_expired, 1u);
}

TEST(DarrRepository, PrefixListing) {
  DarrRepository repo;
  repo.store(sample_record("fpA|spec1"));
  repo.store(sample_record("fpA|spec2"));
  repo.store(sample_record("fpB|spec1"));
  const auto keys = repo.keys_with_prefix("fpA|");
  EXPECT_EQ(keys.size(), 2u);
  EXPECT_EQ(repo.keys_with_prefix("fpC").size(), 0u);
}

TEST(DarrRepository, RecordsByProducer) {
  DarrRepository repo;
  auto r1 = sample_record("k1");
  r1.producer = "alice";
  auto r2 = sample_record("k2");
  r2.producer = "bob";
  auto r3 = sample_record("k3");
  r3.producer = "alice";
  repo.store(r1);
  repo.store(r2);
  repo.store(r3);
  EXPECT_EQ(repo.records_by("alice"), 2u);
  EXPECT_EQ(repo.records_by("bob"), 1u);
  EXPECT_EQ(repo.records_by("carol"), 0u);
}

TEST(DarrRepository, EmptyKeyRejected) {
  DarrRepository repo;
  DarrRecord r;
  EXPECT_THROW(repo.store(r), InvalidArgument);
}

struct ClientFixture : ::testing::Test {
  DarrRepository repo;
  dist::SimNet net;
  dist::NodeId repo_node = net.add_node("darr");
  dist::NodeId client_node = net.add_node("c0");
  DarrClient client{&repo, &net, client_node, repo_node, "c0"};
};

TEST_F(ClientFixture, ImplementsResultCacheContract) {
  EXPECT_FALSE(client.fetch("k").has_value());
  EXPECT_TRUE(client.claim("k"));
  CachedResult result;
  result.mean_score = 0.5;
  result.fold_scores = {0.4, 0.6};
  result.explanation = "spec";
  client.put("k", result);
  const auto hit = client.fetch("k");
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(hit->mean_score, 0.5);
  EXPECT_EQ(hit->fold_scores, result.fold_scores);
  EXPECT_EQ(hit->explanation, "spec");
}

TEST_F(ClientFixture, TracksStatsAndTraffic) {
  client.fetch("k");
  client.claim("k");
  CachedResult r;
  r.explanation = "spec";
  client.put("k", r);
  client.fetch("k");
  const auto stats = client.stats();
  EXPECT_EQ(stats.lookups, 2u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.claims_won, 1u);
  EXPECT_EQ(stats.stores, 1u);
  EXPECT_GT(stats.bytes_sent, 0u);
  EXPECT_GT(stats.bytes_received, 0u);
  // Every interaction crossed the simulated network.
  EXPECT_EQ(net.link(client_node, repo_node).messages, 4u);
  EXPECT_EQ(net.link(repo_node, client_node).messages, 4u);
}

TEST_F(ClientFixture, RecordCarriesProducerName) {
  CachedResult r;
  r.explanation = "spec";
  client.put("k", r);
  EXPECT_EQ(repo.records_by("c0"), 1u);
}

TEST(DarrClient, ConstructionValidated) {
  DarrRepository repo;
  dist::SimNet net;
  const auto n = net.add_node("x");
  EXPECT_THROW(DarrClient(&repo, &net, n, n, "c"), InvalidArgument);
}

}  // namespace
}  // namespace coda::darr
