// Tests for the delta codec (Section III): exact reconstruction across a
// parameterized sweep of sizes/block sizes/change patterns, bandwidth
// savings for small changes, and corrupt-delta rejection.
#include <gtest/gtest.h>

#include "src/dist/delta.h"
#include "src/util/random.h"

namespace coda::dist {
namespace {

Bytes random_bytes(std::size_t n, Rng& rng) {
  Bytes b(n);
  for (auto& v : b) v = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  return b;
}

// Mutates `fraction` of the bytes in place at random positions.
Bytes mutate(Bytes base, double fraction, Rng& rng) {
  const auto n_changes =
      static_cast<std::size_t>(static_cast<double>(base.size()) * fraction);
  for (std::size_t i = 0; i < n_changes; ++i) {
    base[rng.index(base.size())] =
        static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  return base;
}

TEST(Delta, IdenticalInputsProduceTinyDelta) {
  Rng rng(1);
  const Bytes base = random_bytes(4096, rng);
  const Delta d = compute_delta(base, base);
  EXPECT_EQ(apply_delta(base, d), base);
  EXPECT_LT(d.encoded_size(), 128u);  // one merged COPY op
}

TEST(Delta, SmallChangeSavesBandwidth) {
  Rng rng(2);
  const Bytes base = random_bytes(64 * 1024, rng);
  const Bytes target = mutate(base, 0.01, rng);
  const Delta d = compute_delta(base, target);
  EXPECT_EQ(apply_delta(base, d), target);
  // The paper's claim: the delta is considerably smaller than the object.
  EXPECT_LT(d.encoded_size(), target.size() / 2);
}

TEST(Delta, CompleteRewriteFallsBackToLiterals) {
  Rng rng(3);
  const Bytes base = random_bytes(8192, rng);
  const Bytes target = random_bytes(8192, rng);
  const Delta d = compute_delta(base, target);
  EXPECT_EQ(apply_delta(base, d), target);
  // No sharing: the delta cannot be much smaller than the target.
  EXPECT_GT(d.encoded_size(), target.size() / 2);
}

TEST(Delta, InsertionShiftsHandled) {
  Rng rng(4);
  const Bytes base = random_bytes(4096, rng);
  Bytes target = base;
  // Insert 10 bytes near the front: everything after shifts, which defeats
  // naive block-aligned diffing but not a rolling-hash matcher.
  Bytes insert = random_bytes(10, rng);
  target.insert(target.begin() + 100, insert.begin(), insert.end());
  const Delta d = compute_delta(base, target);
  EXPECT_EQ(apply_delta(base, d), target);
  EXPECT_LT(d.encoded_size(), target.size() / 4);
}

TEST(Delta, TruncationAndGrowth) {
  Rng rng(5);
  const Bytes base = random_bytes(2048, rng);
  Bytes shorter(base.begin(), base.begin() + 1000);
  EXPECT_EQ(apply_delta(base, compute_delta(base, shorter)), shorter);
  Bytes longer = base;
  const Bytes extra = random_bytes(500, rng);
  longer.insert(longer.end(), extra.begin(), extra.end());
  EXPECT_EQ(apply_delta(base, compute_delta(base, longer)), longer);
}

TEST(Delta, EmptyEdgeCases) {
  const Bytes empty;
  const Bytes data{1, 2, 3};
  EXPECT_EQ(apply_delta(empty, compute_delta(empty, data)), data);
  EXPECT_EQ(apply_delta(data, compute_delta(data, empty)), empty);
  EXPECT_EQ(apply_delta(empty, compute_delta(empty, empty)), empty);
}

TEST(Delta, SerializeRoundTrip) {
  Rng rng(6);
  const Bytes base = random_bytes(4096, rng);
  const Bytes target = mutate(base, 0.05, rng);
  const Delta d = compute_delta(base, target);
  const Delta decoded = Delta::deserialize(d.serialize());
  EXPECT_EQ(apply_delta(base, decoded), target);
  EXPECT_EQ(decoded.target_size, d.target_size);
}

TEST(Delta, CorruptCopyRangeThrows) {
  Delta d;
  d.target_size = 10;
  DeltaOp op;
  op.kind = DeltaOp::Kind::kCopy;
  op.offset = 100;
  op.length = 10;
  d.ops.push_back(op);
  const Bytes base(50, 0);
  EXPECT_THROW(apply_delta(base, d), DecodeError);
}

TEST(Delta, SizeMismatchThrows) {
  Delta d;
  d.target_size = 99;  // ops only produce 3 bytes
  DeltaOp op;
  op.kind = DeltaOp::Kind::kAdd;
  op.literal = {1, 2, 3};
  d.ops.push_back(op);
  EXPECT_THROW(apply_delta({}, d), DecodeError);
}

TEST(Delta, UnknownOpKindRejected) {
  ByteWriter w;
  w.write_u64(1);
  w.write_u64(2);
  w.write_u64(0);
  w.write_u64(1);  // one op
  w.write_u8(7);   // invalid kind
  EXPECT_THROW(Delta::deserialize(w.buffer()), DecodeError);
}

TEST(Delta, BlockSizeValidated) {
  DeltaConfig cfg;
  cfg.block_size = 2;
  EXPECT_THROW(compute_delta({}, {}, cfg), InvalidArgument);
}

// Property sweep: exact reconstruction for every combination of object
// size, block size, and change fraction.
struct DeltaCase {
  std::size_t object_size;
  std::size_t block_size;
  double change_fraction;
};

class DeltaRoundTrip : public ::testing::TestWithParam<DeltaCase> {};

TEST_P(DeltaRoundTrip, Exact) {
  const auto c = GetParam();
  Rng rng(c.object_size * 31 + c.block_size);
  const Bytes base = random_bytes(c.object_size, rng);
  const Bytes target = mutate(base, c.change_fraction, rng);
  DeltaConfig cfg;
  cfg.block_size = c.block_size;
  const Delta d = compute_delta(base, target, cfg);
  EXPECT_EQ(apply_delta(base, d), target);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DeltaRoundTrip,
    ::testing::Values(DeltaCase{100, 16, 0.0}, DeltaCase{100, 16, 0.5},
                      DeltaCase{1024, 32, 0.01}, DeltaCase{1024, 64, 0.1},
                      DeltaCase{4096, 64, 0.02}, DeltaCase{4096, 128, 0.3},
                      DeltaCase{65536, 64, 0.005}, DeltaCase{65536, 256, 0.05},
                      DeltaCase{63, 64, 0.1},   // smaller than one block
                      DeltaCase{64, 64, 0.1},   // exactly one block
                      DeltaCase{65, 64, 0.1})); // one block + tail

}  // namespace
}  // namespace coda::dist
