// Tests for the Transformer-Estimator Graph: Fig 3's 36-pipeline example,
// path enumeration, edge restrictions, parameter grids, instantiation.
#include <gtest/gtest.h>

#include "src/core/te_graph.h"
#include "src/ml/decision_tree.h"
#include "src/ml/feature_selection.h"
#include "src/ml/linear.h"
#include "src/ml/pca.h"
#include "src/ml/random_forest.h"
#include "src/ml/scalers.h"

namespace coda {
namespace {

// The Fig 3 graph: 4 scalers x 3 selectors x 3 models = 36 pipelines.
TEGraph fig3_graph() {
  TEGraph g;
  std::vector<std::unique_ptr<Transformer>> scalers;
  scalers.push_back(std::make_unique<MinMaxScaler>());
  scalers.push_back(std::make_unique<StandardScaler>());
  scalers.push_back(std::make_unique<RobustScaler>());
  scalers.push_back(std::make_unique<NoOp>());
  g.add_feature_scalers(std::move(scalers));

  std::vector<std::unique_ptr<Transformer>> selectors;
  selectors.push_back(std::make_unique<PCA>());
  selectors.push_back(std::make_unique<SelectKBest>());
  auto noop = std::make_unique<NoOp>();
  noop->set_name("noop_select");
  selectors.push_back(std::move(noop));
  g.add_feature_selectors(std::move(selectors));

  std::vector<std::unique_ptr<Estimator>> models;
  models.push_back(std::make_unique<DecisionTreeRegressor>());
  models.push_back(std::make_unique<LinearRegression>());
  models.push_back(std::make_unique<RandomForestRegressor>());
  g.add_regression_models(std::move(models));
  return g;
}

TEST(TEGraph, Fig3Has36Pipelines) {
  const auto g = fig3_graph();
  EXPECT_EQ(g.n_stages(), 3u);
  EXPECT_EQ(g.count_paths(), 36u);
  EXPECT_EQ(g.enumerate_candidates().size(), 36u);
}

TEST(TEGraph, PathsAreDistinct) {
  const auto g = fig3_graph();
  const auto paths = g.enumerate_paths();
  std::set<std::vector<std::size_t>> unique(paths.begin(), paths.end());
  EXPECT_EQ(unique.size(), paths.size());
}

TEST(TEGraph, StageAccessors) {
  const auto g = fig3_graph();
  EXPECT_EQ(g.stage_name(0), "feature_scaling");
  EXPECT_EQ(g.stage_name(1), "feature_selection");
  EXPECT_EQ(g.stage_name(2), "regression_model");
  EXPECT_EQ(g.n_options(0), 4u);
  EXPECT_EQ(g.n_options(1), 3u);
  EXPECT_EQ(g.n_options(2), 3u);
}

TEST(TEGraph, FindOption) {
  const auto g = fig3_graph();
  const auto [stage, option] = g.find_option("pca");
  EXPECT_EQ(stage, 1u);
  EXPECT_EQ(option, 0u);
  EXPECT_THROW(g.find_option("nothere"), NotFound);
}

TEST(TEGraph, DuplicateNodeNamesRejected) {
  TEGraph g;
  std::vector<StageOption> options;
  options.push_back(make_option(std::make_unique<StandardScaler>()));
  options.push_back(make_option(std::make_unique<StandardScaler>()));
  EXPECT_THROW(g.add_stage("s", std::move(options)), InvalidArgument);
}

TEST(TEGraph, EdgeRestrictionPrunesPaths) {
  auto g = fig3_graph();
  // minmaxscaler may only feed pca.
  g.restrict_edges(0, "minmaxscaler", {"pca"});
  // Full product loses minmax->(selectkbest, noop_select) x 3 models = 6.
  EXPECT_EQ(g.count_paths(), 30u);
  EXPECT_TRUE(g.edge_allowed(0, 0, 0));
  EXPECT_FALSE(g.edge_allowed(0, 0, 1));
}

TEST(TEGraph, RestrictedPathInstantiationRejected) {
  auto g = fig3_graph();
  g.restrict_edges(0, "minmaxscaler", {"pca"});
  TEGraph::Candidate bad;
  bad.path = {0, 1, 0};  // minmax -> selectkbest: forbidden
  EXPECT_THROW(g.instantiate(bad), InvalidArgument);
}

TEST(TEGraph, ConnectTags) {
  TEGraph g;
  std::vector<StageOption> first;
  first.push_back(make_option(std::make_unique<StandardScaler>(), {"a"}));
  first.push_back(make_option(std::make_unique<MinMaxScaler>(), {"b"}));
  g.add_stage("scale", std::move(first));
  std::vector<StageOption> second;
  second.push_back(
      make_option(std::make_unique<LinearRegression>(), {"a_sink"}));
  second.push_back(make_option(std::make_unique<Ridge>(), {"b_sink"}));
  g.add_stage("model", std::move(second));
  g.connect_tags(0, "a", "a_sink");
  g.connect_tags(0, "b", "b_sink");
  EXPECT_EQ(g.count_paths(), 2u);
}

TEST(TEGraph, GridsMultiplyCandidates) {
  TEGraph g;
  std::vector<StageOption> scalers;
  scalers.push_back(make_option(std::make_unique<NoOp>()));
  g.add_stage("scale", std::move(scalers));

  std::vector<StageOption> models;
  ParamGrid grid;
  grid.add("max_depth", {std::int64_t{2}, std::int64_t{4}, std::int64_t{6}});
  models.push_back(
      make_option(std::make_unique<DecisionTreeRegressor>(), std::move(grid)));
  models.push_back(make_option(std::make_unique<LinearRegression>()));
  g.add_stage("model", std::move(models));

  EXPECT_EQ(g.count_paths(), 2u);
  const auto candidates = g.enumerate_candidates();
  EXPECT_EQ(candidates.size(), 4u);  // 3 grid points + 1 gridless

  // Grid params are expressed in node__param form.
  std::size_t with_depth = 0;
  for (const auto& c : candidates) {
    if (c.params.contains("decisiontree__max_depth")) ++with_depth;
  }
  EXPECT_EQ(with_depth, 3u);
}

TEST(TEGraph, InstantiateAppliesGridParams) {
  TEGraph g;
  std::vector<StageOption> models;
  ParamGrid grid;
  grid.add("max_depth", {std::int64_t{2}});
  models.push_back(
      make_option(std::make_unique<DecisionTreeRegressor>(), std::move(grid)));
  g.add_stage("model", std::move(models));
  const auto candidates = g.enumerate_candidates();
  ASSERT_EQ(candidates.size(), 1u);
  Pipeline p = g.instantiate(candidates[0]);
  EXPECT_EQ(p.estimator().params().get_int("max_depth"), 2);
}

TEST(TEGraph, CandidateSpecsAreUnique) {
  const auto g = fig3_graph();
  std::set<std::string> specs;
  for (const auto& c : g.enumerate_candidates()) {
    specs.insert(g.candidate_spec(c));
  }
  EXPECT_EQ(specs.size(), 36u);
}

TEST(TEGraph, NonTerminalEstimatorRejected) {
  TEGraph g;
  std::vector<StageOption> first;
  first.push_back(make_option(std::make_unique<LinearRegression>()));
  g.add_stage("bad", std::move(first));
  std::vector<StageOption> second;
  second.push_back(make_option(std::make_unique<Ridge>()));
  g.add_stage("model", std::move(second));
  EXPECT_THROW(g.enumerate_paths(), InvalidArgument);
}

TEST(TEGraph, TerminalTransformerRejected) {
  TEGraph g;
  std::vector<StageOption> only;
  only.push_back(make_option(std::make_unique<StandardScaler>()));
  g.add_stage("scale", std::move(only));
  EXPECT_THROW(g.enumerate_paths(), InvalidArgument);
}

TEST(TEGraph, DotOutputContainsNodesAndEdges) {
  const auto g = fig3_graph();
  const std::string dot = g.to_dot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("\"pca\""), std::string::npos);
  EXPECT_NE(dot.find("\"robustscaler\" -> \"selectkbest\""),
            std::string::npos);
  EXPECT_NE(dot.find("input ->"), std::string::npos);
}

}  // namespace
}  // namespace coda
