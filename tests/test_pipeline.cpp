// Tests for the Pipeline (Fig 5 training/prediction semantics, node__param
// routing, deep copies).
#include <gtest/gtest.h>

#include "src/core/pipeline.h"
#include "src/data/dataset.h"
#include "src/ml/linear.h"
#include "src/ml/scalers.h"

namespace coda {
namespace {

// A transformer that records the order of fit/transform calls, to assert
// the Fig 5 dataflow (internal nodes fit&transform during training,
// transform-only during prediction).
class SpyTransformer final : public Transformer {
 public:
  explicit SpyTransformer(std::string name, std::vector<std::string>* log)
      : Transformer(std::move(name)), log_(log) {}

  void fit(const Matrix&, const std::vector<double>&) override {
    log_->push_back(name() + ".fit");
  }
  Matrix transform(const Matrix& X) const override {
    log_->push_back(name() + ".transform");
    return X;
  }
  std::unique_ptr<Component> clone() const override {
    return std::make_unique<SpyTransformer>(*this);
  }

 private:
  std::vector<std::string>* log_;
};

class SpyEstimator final : public Estimator {
 public:
  explicit SpyEstimator(std::vector<std::string>* log)
      : Estimator("spymodel"), log_(log) {}

  void fit(const Matrix&, const std::vector<double>&) override {
    log_->push_back("spymodel.fit");
  }
  std::vector<double> predict(const Matrix& X) const override {
    log_->push_back("spymodel.predict");
    return std::vector<double>(X.rows(), 0.0);
  }
  std::unique_ptr<Component> clone() const override {
    return std::make_unique<SpyEstimator>(*this);
  }

 private:
  std::vector<std::string>* log_;
};

Dataset linear_data() {
  Dataset d;
  d.X = Matrix(20, 1);
  d.y.resize(20);
  for (std::size_t i = 0; i < 20; ++i) {
    d.X(i, 0) = static_cast<double>(i);
    d.y[i] = 3.0 * static_cast<double>(i) + 1.0;
  }
  return d;
}

TEST(Pipeline, Fig5TrainingAndPredictionOrder) {
  std::vector<std::string> log;
  Pipeline p;
  p.add_transformer(std::make_unique<SpyTransformer>("t1", &log));
  p.add_transformer(std::make_unique<SpyTransformer>("t2", &log));
  p.set_estimator(std::make_unique<SpyEstimator>(&log));

  const auto d = linear_data();
  p.fit(d.X, d.y);
  EXPECT_EQ(log, (std::vector<std::string>{"t1.fit", "t1.transform",
                                           "t2.fit", "t2.transform",
                                           "spymodel.fit"}));
  log.clear();
  p.predict(d.X);
  EXPECT_EQ(log, (std::vector<std::string>{"t1.transform", "t2.transform",
                                           "spymodel.predict"}));
}

TEST(Pipeline, PredictBeforeFitThrows) {
  Pipeline p;
  p.set_estimator(std::make_unique<LinearRegression>());
  EXPECT_THROW(p.predict(Matrix(1, 1)), StateError);
}

TEST(Pipeline, FitWithoutEstimatorThrows) {
  Pipeline p;
  p.add_transformer(std::make_unique<StandardScaler>());
  const auto d = linear_data();
  EXPECT_THROW(p.fit(d.X, d.y), StateError);
}

TEST(Pipeline, EndToEndScaledRegression) {
  Pipeline p;
  p.add_transformer(std::make_unique<StandardScaler>());
  p.set_estimator(std::make_unique<LinearRegression>());
  const auto d = linear_data();
  p.fit(d.X, d.y);
  const auto pred = p.predict(d.X);
  for (std::size_t i = 0; i < d.y.size(); ++i) {
    EXPECT_NEAR(pred[i], d.y[i], 1e-6);
  }
}

TEST(Pipeline, NodeParamRouting) {
  Pipeline p;
  p.set_estimator(std::make_unique<Ridge>());
  ParamMap params;
  params.set("ridge__alpha", 2.5);
  p.set_params(params);
  EXPECT_DOUBLE_EQ(p.estimator().params().get_double("alpha"), 2.5);
}

TEST(Pipeline, NodeParamUnknownNodeThrows) {
  Pipeline p;
  p.set_estimator(std::make_unique<Ridge>());
  ParamMap params;
  params.set("nope__alpha", 1.0);
  EXPECT_THROW(p.set_params(params), NotFound);
}

TEST(Pipeline, NodeParamUnknownParamThrows) {
  Pipeline p;
  p.set_estimator(std::make_unique<Ridge>());
  ParamMap params;
  params.set("ridge__bogus", 1.0);
  EXPECT_THROW(p.set_params(params), NotFound);
}

TEST(Pipeline, NonPrefixedKeyRejected) {
  Pipeline p;
  p.set_estimator(std::make_unique<Ridge>());
  ParamMap params;
  params.set("alpha", 1.0);
  EXPECT_THROW(p.set_params(params), InvalidArgument);
}

TEST(Pipeline, DuplicateNodeNamesRejected) {
  Pipeline p;
  p.add_transformer(std::make_unique<StandardScaler>());
  EXPECT_THROW(p.add_transformer(std::make_unique<StandardScaler>()),
               InvalidArgument);
}

TEST(Pipeline, SpecString) {
  Pipeline p;
  p.add_transformer(std::make_unique<StandardScaler>());
  p.set_estimator(std::make_unique<Ridge>());
  EXPECT_EQ(p.spec(), "standardscaler -> ridge(alpha=1)");
}

TEST(Pipeline, CopyIsDeep) {
  Pipeline p;
  p.add_transformer(std::make_unique<StandardScaler>());
  p.set_estimator(std::make_unique<LinearRegression>());
  const auto d = linear_data();
  p.fit(d.X, d.y);

  Pipeline copy = p;
  EXPECT_TRUE(copy.is_fitted());
  // Both must predict; refitting the copy must not disturb the original.
  const auto before = p.predict(d.X);
  Dataset other = d;
  for (double& v : other.y) v *= -1.0;
  copy.fit(other.X, other.y);
  const auto after = p.predict(d.X);
  EXPECT_EQ(before, after);
}

TEST(Pipeline, NodeNames) {
  Pipeline p;
  p.add_transformer(std::make_unique<StandardScaler>());
  p.set_estimator(std::make_unique<Ridge>());
  EXPECT_EQ(p.node_names(),
            (std::vector<std::string>{"standardscaler", "ridge"}));
}

TEST(Pipeline, SetParamsInvalidatesFit) {
  Pipeline p;
  p.set_estimator(std::make_unique<Ridge>());
  const auto d = linear_data();
  p.fit(d.X, d.y);
  ParamMap params;
  params.set("ridge__alpha", 9.0);
  p.set_params(params);
  EXPECT_FALSE(p.is_fitted());
  EXPECT_THROW(p.predict(d.X), StateError);
}

TEST(Component, NoOpIsIdentity) {
  NoOp noop;
  const Matrix X{{1, 2}, {3, 4}};
  noop.fit(X, {});
  EXPECT_EQ(noop.transform(X), X);
}

TEST(Component, SpecWithAndWithoutParams) {
  NoOp noop;
  EXPECT_EQ(noop.spec(), "noop");
  Ridge ridge;
  EXPECT_EQ(ridge.spec(), "ridge(alpha=1)");
}

TEST(Component, SetUndeclaredParamThrows) {
  Ridge ridge;
  EXPECT_THROW(ridge.set_param("bogus", 1.0), NotFound);
}

}  // namespace
}  // namespace coda
