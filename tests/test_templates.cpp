// Tests for the §IV-E solution templates: Failure Prediction, Root Cause,
// Anomaly, and Cohort Analysis on synthetic industrial workloads.
#include <gtest/gtest.h>

#include "src/data/synthetic.h"
#include "src/templates/anomaly.h"
#include "src/templates/cohort.h"
#include "src/templates/failure_prediction.h"
#include "src/templates/root_cause.h"
#include "src/util/random.h"

namespace coda::templates {
namespace {

TEST(FailurePrediction, FindsRareFailures) {
  FailureWorkloadConfig cfg;
  cfg.n_samples = 500;
  cfg.failure_rate = 0.1;
  cfg.degradation_signal = 4.0;
  const auto data = make_failure_workload(cfg);

  FailurePredictionAnalysis::Config fpa_cfg;
  fpa_cfg.k_folds = 4;
  FailurePredictionAnalysis fpa(fpa_cfg);
  const auto result = fpa.run(data);

  EXPECT_GT(result.best_f1, 0.6);   // rare class still found
  EXPECT_GT(result.best_auc, 0.85);
  EXPECT_TRUE(result.best.is_fitted());
  // The degradation-carrying sensors (0 and 1) dominate the importances.
  ASSERT_GE(result.top_sensors.size(), 2u);
  std::set<std::string> top2{result.top_sensors[0].first,
                             result.top_sensors[1].first};
  EXPECT_TRUE(top2.count("sensor0") == 1 || top2.count("sensor1") == 1);
}

TEST(FailurePrediction, RejectsNonBinaryLabels) {
  Dataset d;
  d.X = Matrix(4, 2);
  d.y = {0, 1, 2, 1};
  FailurePredictionAnalysis fpa;
  EXPECT_THROW(fpa.run(d), InvalidArgument);
}

TEST(RootCause, RanksTrueFactorsFirst) {
  // outcome = 5*f0 - 3*f2 (+ noise); f1 and f3 are inert.
  Rng rng(51);
  Dataset d;
  d.X = Matrix(400, 4);
  d.y.resize(400);
  d.feature_names = {"temperature", "pressure", "vibration", "humidity"};
  for (std::size_t i = 0; i < 400; ++i) {
    for (std::size_t j = 0; j < 4; ++j) d.X(i, j) = rng.normal();
    d.y[i] = 5.0 * d.X(i, 0) - 3.0 * d.X(i, 2) + rng.normal(0.0, 0.2);
  }
  RootCauseAnalysis rca;
  const auto result = rca.run(d);
  EXPECT_GT(result.model_r2, 0.7);
  // Top two factors must be temperature and vibration (order may swap).
  std::set<std::string> top2{result.factor_importance[0].first,
                             result.factor_importance[1].first};
  EXPECT_EQ(top2.count("temperature"), 1u);
  EXPECT_EQ(top2.count("vibration"), 1u);
  // Sensitivity signs match the generating coefficients.
  for (const auto& [name, delta] : result.sensitivity) {
    if (name == "temperature") {
      EXPECT_GT(delta, 0.0);
    }
    if (name == "vibration") {
      EXPECT_LT(delta, 0.0);
    }
  }
}

TEST(RootCause, WhatIfShiftsPredictions) {
  Rng rng(52);
  Dataset d;
  d.X = Matrix(300, 2);
  d.y.resize(300);
  for (std::size_t i = 0; i < 300; ++i) {
    d.X(i, 0) = rng.normal();
    d.X(i, 1) = rng.normal();
    d.y[i] = 4.0 * d.X(i, 0) + rng.normal(0.0, 0.1);
  }
  RootCauseAnalysis rca;
  const auto shifted = rca.what_if(d, 0, 1.0);
  // Mean prediction should rise by roughly the coefficient (tree ensembles
  // flatten at the data boundary, so accept a generous band).
  RootCauseAnalysis probe_rca;
  const auto base = probe_rca.what_if(d, 0, 0.0);
  double mean_shift = 0.0;
  for (std::size_t i = 0; i < base.size(); ++i) {
    mean_shift += shifted[i] - base[i];
  }
  mean_shift /= static_cast<double>(base.size());
  EXPECT_GT(mean_shift, 1.0);
  EXPECT_THROW(rca.what_if(d, 9, 1.0), InvalidArgument);
}

TEST(Anomaly, FlagsInjectedAnomalies) {
  Rng rng(53);
  Matrix normal(300, 3);
  for (double& v : normal.data()) v = rng.normal(10.0, 1.0);
  AnomalyAnalysis detector;
  detector.fit(normal);

  Matrix probe(5, 3);
  for (double& v : probe.data()) v = rng.normal(10.0, 1.0);
  probe(2, 1) = 30.0;  // gross anomaly
  probe(4, 0) = -10.0;
  const auto result = detector.score(probe);
  EXPECT_EQ(result.anomalies, (std::vector<std::size_t>{2, 4}));
  EXPECT_GT(result.scores[2], result.threshold);
  EXPECT_LE(result.scores[0], result.threshold);
}

TEST(Anomaly, RobustToOutliersInTrainingData) {
  // Fitting stats are median/MAD, so a contaminated "normal" set still
  // yields a detector that flags the same gross anomalies.
  Rng rng(54);
  Matrix contaminated(300, 1);
  for (double& v : contaminated.data()) v = rng.normal(0.0, 1.0);
  for (std::size_t i = 0; i < 10; ++i) {
    contaminated(i, 0) = 500.0;  // 3% contamination
  }
  AnomalyAnalysis detector;
  detector.fit(contaminated);
  Matrix probe{{0.5}, {100.0}};
  const auto result = detector.score(probe);
  EXPECT_EQ(result.anomalies, (std::vector<std::size_t>{1}));
}

TEST(Anomaly, FitScoreConvenience) {
  Rng rng(55);
  Matrix X(100, 2);
  for (double& v : X.data()) v = rng.normal();
  X(7, 0) = 50.0;
  AnomalyAnalysis detector;
  const auto result = detector.fit_score(X);
  EXPECT_EQ(result.anomalies, (std::vector<std::size_t>{7}));
}

TEST(Anomaly, Validation) {
  AnomalyAnalysis detector;
  EXPECT_THROW(detector.score(Matrix(1, 1)), StateError);
  AnomalyAnalysis::Config cfg;
  cfg.z_threshold = 0.0;
  EXPECT_THROW(AnomalyAnalysis{cfg}, InvalidArgument);
}

TEST(Cohort, RecoversTrueCohortsWithFixedK) {
  CohortWorkloadConfig cfg;
  cfg.n_assets = 90;
  cfg.n_cohorts = 3;
  cfg.cohort_separation = 8.0;
  const auto d = make_cohort_workload(cfg);
  CohortAnalysis::Config ca_cfg;
  ca_cfg.k = 3;
  CohortAnalysis ca(ca_cfg);
  const auto result = ca.run(d.X);
  EXPECT_EQ(result.k, 3u);
  EXPECT_EQ(result.cohort_sizes.size(), 3u);
  for (const std::size_t size : result.cohort_sizes) {
    EXPECT_EQ(size, 30u);  // balanced, well-separated blobs
  }
}

TEST(Cohort, AutoSelectsKByElbow) {
  CohortWorkloadConfig cfg;
  cfg.n_assets = 120;
  cfg.n_cohorts = 4;
  cfg.cohort_separation = 10.0;
  const auto d = make_cohort_workload(cfg);
  CohortAnalysis ca;  // k = 0 -> auto
  const auto result = ca.run(d.X);
  EXPECT_FALSE(result.k_scan.empty());
  EXPECT_GE(result.k, 2u);
  EXPECT_LE(result.k, 8u);
  // The scan's inertia must be non-increasing in k.
  for (std::size_t i = 1; i < result.k_scan.size(); ++i) {
    EXPECT_LE(result.k_scan[i].second, result.k_scan[i - 1].second + 1e-9);
  }
}

TEST(Cohort, Validation) {
  CohortAnalysis ca;
  EXPECT_THROW(ca.run(Matrix(1, 2)), InvalidArgument);
}

}  // namespace
}  // namespace coda::templates
