// Tests for outlier clipping transformers and row-level detection.
#include <gtest/gtest.h>

#include "src/data/synthetic.h"
#include "src/ml/outliers.h"

namespace coda {
namespace {

TEST(ZScoreClipper, ClipsExtremeValues) {
  Matrix X(100, 1);
  for (std::size_t i = 0; i < 99; ++i) {
    X(i, 0) = static_cast<double>(i % 10);
  }
  X(99, 0) = 1000.0;
  ZScoreClipper clipper;
  clipper.fit(X, {});
  const auto out = clipper.transform(X);
  EXPECT_LT(out(99, 0), 1000.0);
  // Normal values pass through unchanged.
  EXPECT_DOUBLE_EQ(out(5, 0), X(5, 0));
}

TEST(ZScoreClipper, ClipsOnTrainBoundsForNewData) {
  Matrix train(50, 1);
  for (std::size_t i = 0; i < 50; ++i) {
    train(i, 0) = static_cast<double>(i % 5);
  }
  ZScoreClipper clipper;
  clipper.set_param("z_max", 2.0);
  clipper.fit(train, {});
  Matrix test{{100.0}, {-100.0}};
  const auto out = clipper.transform(test);
  EXPECT_LT(out(0, 0), 10.0);
  EXPECT_GT(out(1, 0), -10.0);
}

TEST(IqrClipper, TukeyFences) {
  Matrix X{{1}, {2}, {3}, {4}, {100}};
  IqrClipper clipper;
  clipper.fit(X, {});
  const auto out = clipper.transform(X);
  EXPECT_LT(out(4, 0), 100.0);
  EXPECT_DOUBLE_EQ(out(1, 0), 2.0);
}

TEST(Clippers, ParamValidation) {
  ZScoreClipper z;
  z.set_param("z_max", -1.0);
  EXPECT_THROW(z.fit(Matrix(2, 1), {}), InvalidArgument);
  IqrClipper iqr;
  iqr.set_param("factor", 0.0);
  EXPECT_THROW(iqr.fit(Matrix(2, 1), {}), InvalidArgument);
}

TEST(DetectOutlierRows, FindsInjectedOutliers) {
  RegressionConfig cfg;
  cfg.n_samples = 200;
  auto d = make_regression(cfg);
  const auto injected = inject_outliers(d, 0.03, 50.0, 21);
  ASSERT_FALSE(injected.empty());
  const auto detected = detect_outlier_rows(d.X, 4.0);
  // Every injected row should be flagged.
  for (const std::size_t r : injected) {
    EXPECT_NE(std::find(detected.begin(), detected.end(), r),
              detected.end())
        << "injected outlier row " << r << " not detected";
  }
}

TEST(RemoveOutlierRows, RemovesAndKeepsAlignment) {
  Dataset d;
  d.X = Matrix{{1}, {2}, {3}, {1000}};
  d.y = {10, 20, 30, 40};
  const auto cleaned = remove_outlier_rows(d, 1.5);
  EXPECT_EQ(cleaned.n_samples(), 3u);
  EXPECT_EQ(cleaned.y, (std::vector<double>{10, 20, 30}));
}

TEST(RemoveOutlierRows, AllRowsFlaggedThrows) {
  Dataset d;
  d.X = Matrix{{-10}, {10}};
  d.y = {0, 1};
  // With z_max tiny, both rows exceed it.
  EXPECT_THROW(remove_outlier_rows(d, 0.5), InvalidArgument);
}

}  // namespace
}  // namespace coda
