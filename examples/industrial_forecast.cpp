// Industrial time-series forecasting: the full Fig 11 pipeline graph.
//
// Generates a multivariate industrial sensor series (trend + daily cycle +
// AR noise + a regime shift), builds the standard Time Series Prediction
// graph (Data Scaling x Data Preprocessing x Modelling with compatibility
// edges), evaluates every legal path with the TimeSeriesSlidingSplit
// (Fig 12), and forecasts the next value with the winning pipeline.
#include <cstdio>

#include "src/data/synthetic.h"
#include "src/obs/obs.h"
#include "src/ts/forecast_graph.h"

using namespace coda;
using namespace coda::ts;

int main() {
  std::printf("=== coda industrial forecast: Fig 11 pipeline graph ===\n\n");

  IndustrialSeriesConfig series_cfg;
  series_cfg.n_variables = 3;
  series_cfg.length = 400;
  series_cfg.seasonal_period = 24;
  series_cfg.seasonal_amplitude = 2.0;
  series_cfg.noise_stddev = 0.2;
  const TimeSeries series = make_industrial_series(series_cfg);
  std::printf("series: %zu timestamps x %zu sensors\n", series.length(),
              series.n_variables());

  ForecastSpec spec;
  spec.history = 24;
  spec.horizon = 1;
  spec.target_var = 0;
  const ForecastGraph graph = ForecastGraph::standard(spec);
  std::printf("graph:  %zu scalers x %zu preprocessors x %zu models\n",
              graph.n_scalers(), graph.n_windowers(), graph.n_models());
  std::printf("paths:  %zu legal (full cartesian product would be %zu — "
              "compatibility edges prune the rest)\n\n",
              graph.enumerate().size(), graph.count_full_cartesian());

  EvalOptions config;
  config.metric = Metric::kRmse;
  ForecastGraphEvaluator evaluator(config);
  const TimeSeriesSlidingSplit cv(/*k=*/3, /*train=*/220, /*val=*/50,
                                  /*buffer=*/5);
  const EvaluationReport report = evaluator.evaluate(graph, series, cv);

  std::printf("%-78s %10s %8s\n", "path", "rmse", "+/-");
  std::printf("%.*s\n", 98,
              "--------------------------------------------------------------"
              "------------------------------------");
  for (const auto& r : report.results) {
    if (r.failed) {
      std::printf("%-78s %10s\n", r.spec.c_str(), "FAILED");
      continue;
    }
    std::printf("%-78s %10.4f %8.4f\n", r.spec.c_str(), r.mean_score,
                r.stddev);
  }

  // The Zero model is the paper's floor — show where it landed.
  double zero_best = 0.0;
  for (const auto& r : report.results) {
    if (!r.failed && r.spec.find("zeromodel") != std::string::npos) {
      zero_best = zero_best == 0.0 ? r.mean_score
                                   : std::min(zero_best, r.mean_score);
    }
  }
  std::printf("\nbest path:        %s\n", report.best().spec.c_str());
  std::printf("best CV RMSE:     %.4f\n", report.best().mean_score);
  std::printf("Zero-model floor: %.4f (the paper's baseline)\n", zero_best);

  ForecastPipeline best = evaluator.train_best(graph, series, cv);
  std::printf("\nnext-step forecast for sensor0: %.4f (last observed %.4f)\n",
              best.forecast_next(series),
              series.at(series.length() - 1, 0));
  coda::obs::dump_if_env();
  return 0;
}
