// Fleet telemetry dashboard (DESIGN.md §12): runs a cooperative graph
// search, then renders what the run's telemetry collector gathered — the
// per-node metric shards every client shipped over SimNet as snapshot
// deltas — as the `coda_telemetry` text view: fleet aggregates, tracked
// series with rates and top-k nodes, the fleet hot-path table, and the
// declarative SLO verdicts, followed by the process-local `coda_top`
// profiler view (hottest regions by call count).
//
// Set CODA_METRICS_DUMP=1 to also emit the JSON snapshot (the same data
// the --metrics-json bench flag exports); CODA_PROFILE_DUMP=1 emits the
// folded-stack profile.
#include <cstdio>

#include "src/darr/cooperative.h"
#include "src/data/synthetic.h"
#include "src/ml/decision_tree.h"
#include "src/ml/knn.h"
#include "src/ml/linear.h"
#include "src/ml/scalers.h"
#include "src/obs/obs.h"

using namespace coda;

namespace {

TEGraph search_graph() {
  TEGraph g;
  std::vector<std::unique_ptr<Transformer>> scalers;
  scalers.push_back(std::make_unique<StandardScaler>());
  scalers.push_back(std::make_unique<RobustScaler>());
  scalers.push_back(std::make_unique<NoOp>());
  g.add_feature_scalers(std::move(scalers));
  std::vector<std::unique_ptr<Estimator>> models;
  models.push_back(std::make_unique<LinearRegression>());
  models.push_back(std::make_unique<DecisionTreeRegressor>());
  models.push_back(std::make_unique<KnnRegressor>());
  g.add_regression_models(std::move(models));
  return g;  // 9 candidates
}

}  // namespace

int main() {
  std::printf("=== coda telemetry dashboard ===\n\n");
  obs::reset_all();

  RegressionConfig data_cfg;
  data_cfg.n_samples = 250;
  data_cfg.n_features = 6;
  const Dataset data = make_regression(data_cfg);

  std::printf("running a 4-client cooperative search to collect fleet "
              "telemetry...\n\n");
  const auto report = darr::run_cooperative_search(
      search_graph(), data, KFold(4), Metric::kRmse, /*n_clients=*/4);

  // Declarative SLOs, checked against the *collected* telemetry (which
  // rode the simulated network), not the process-wide registry. The
  // executor-health checks (pool.*) fall back to the process-wide
  // registry: pools are process-local, so their metrics never ride a
  // node shard, but the SLO evaluator probes the registry for any metric
  // absent from the fleet aggregate.
  auto& slos = obs::global_slos();
  slos.add("darr.repo.store count >= 9");
  slos.add("darr.client.hits value >= 1");
  slos.add("evaluator.claim.wait_seconds p99 < 30");
  slos.add("pool.queue_wait_seconds p99 < 1");
  slos.add("pool.utilization value <= 1");
  slos.bind_fleet(report.telemetry.get());

  std::printf("%s\n", obs::telemetry_dashboard(report.telemetry.get()).c_str());

  // coda_top: the process-local profiler view — hottest regions by call
  // count (deterministic for a fixed workload), with self/total time and
  // derived kernel throughput. The fleet-wide counterpart is the
  // "hot paths (fleet)" table in the dashboard above, reconstructed at
  // the collector from published prof.* counters.
  std::printf("%s\n", obs::prof::report().c_str());

  if (report.telemetry_divergence.empty()) {
    std::printf("fleet aggregate == global registry (every shipped family "
                "reconstructed bit-for-bit at the collector)\n");
  } else {
    std::printf("fleet aggregate DIVERGED from the global registry:\n%s\n",
                report.telemetry_divergence.c_str());
  }

  slos.bind_fleet(nullptr);
  coda::obs::dump_if_env();
  return 0;
}
