// Cooperative analytics across distributed clients (Fig 1 + Fig 2).
//
// Part 1 — data tier: a home data store serves a versioned dataset object
// to clients over a simulated WAN; updates propagate by delta encoding and
// lease-based push; an UpdateMonitor triggers recomputation when enough
// change accumulates (Section III).
//
// Part 2 — cooperative search: four clients share one DARR and search the
// same Transformer-Estimator Graph together, splitting the work via claims
// and reading each other's results.
#include <cstdio>

#include "src/darr/cooperative.h"
#include "src/data/synthetic.h"
#include "src/dist/client_cache.h"
#include "src/dist/update_monitor.h"
#include "src/ml/decision_tree.h"
#include "src/ml/knn.h"
#include "src/ml/linear.h"
#include "src/ml/random_forest.h"
#include "src/ml/scalers.h"
#include "src/obs/obs.h"
#include "src/util/string_util.h"

using namespace coda;
using namespace coda::dist;

namespace {

Bytes dataset_blob(std::size_t n, std::uint8_t seed) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = static_cast<std::uint8_t>((i * 131 + seed) & 0xFF);
  }
  return b;
}

void data_tier_demo() {
  std::printf("--- Part 1: versioned data tier with delta encoding ---\n");
  SimNet net;
  const NodeId store_node = net.add_node("home_store");
  const NodeId client_node = net.add_node("client_eu");
  HomeDataStore store(&net, store_node);
  ClientCache client(&net, client_node, &store);
  store.set_push_handler(
      [&client](NodeId, const PushMessage& msg) { client.on_push(msg); });

  // Recompute analytics once 3 updates have accumulated.
  std::size_t recomputes = 0;
  UpdateMonitor monitor(std::make_unique<CountThresholdPolicy>(3),
                        [&recomputes](const std::string& key) {
                          ++recomputes;
                          std::printf("  [monitor] recomputing analytics "
                                      "for '%s'\n",
                                      key.c_str());
                        });

  Bytes value = dataset_blob(64 * 1024, 1);
  store.put("sensor_archive", value);
  client.get("sensor_archive");
  std::printf("  initial fetch: %s over the wire\n",
              format_bytes(client.stats().bytes_received).c_str());

  // Subscribe with a delta-mode lease, then stream small updates.
  client.subscribe("sensor_archive", /*duration=*/3600.0, PushMode::kDelta);
  for (int update = 0; update < 6; ++update) {
    Bytes previous = value;
    for (int i = 0; i < 200; ++i) {  // ~0.3% of the object changes
      value[static_cast<std::size_t>(update * 300 + i)] ^= 0x5A;
    }
    store.put("sensor_archive", value);
    monitor.on_update("sensor_archive", &previous, value,
                      store.version("sensor_archive"), 200);
  }
  const auto stats = client.stats();
  std::printf("  after 6 updates: client at version %llu, staleness %llu\n",
              static_cast<unsigned long long>(
                  client.version("sensor_archive")),
              static_cast<unsigned long long>(
                  client.staleness("sensor_archive")));
  std::printf("  pushes: %zu full + %zu delta; bytes saved by deltas: %s\n",
              stats.pushes_full, stats.pushes_delta,
              format_bytes(stats.bytes_saved_by_delta).c_str());
  std::printf("  recomputations triggered: %zu (count-threshold policy)\n\n",
              recomputes);
}

void cooperative_search_demo() {
  std::printf("--- Part 2: cooperative graph search through the DARR ---\n");
  RegressionConfig data_cfg;
  data_cfg.n_samples = 300;
  data_cfg.n_features = 8;
  const Dataset data = make_regression(data_cfg);

  TEGraph graph;
  {
    std::vector<std::unique_ptr<Transformer>> scalers;
    scalers.push_back(std::make_unique<StandardScaler>());
    scalers.push_back(std::make_unique<RobustScaler>());
    scalers.push_back(std::make_unique<NoOp>());
    graph.add_feature_scalers(std::move(scalers));
    std::vector<std::unique_ptr<Estimator>> models;
    models.push_back(std::make_unique<LinearRegression>());
    models.push_back(std::make_unique<DecisionTreeRegressor>());
    models.push_back(std::make_unique<RandomForestRegressor>());
    models.push_back(std::make_unique<KnnRegressor>());
    graph.add_regression_models(std::move(models));
  }

  const auto report = darr::run_cooperative_search(
      graph, data, KFold(5), Metric::kRmse, /*n_clients=*/4);

  std::printf("  candidates: %zu, clients: %zu\n", report.total_candidates,
              report.clients.size());
  std::printf("  %-10s %18s %18s\n", "client", "evaluated locally",
              "read from DARR");
  for (const auto& client : report.clients) {
    std::printf("  %-10s %18zu %18zu\n", client.name.c_str(),
                client.evaluated_locally, client.served_from_cache);
  }
  std::printf("  total local evaluations: %zu (redundant: %zu)\n",
              report.total_local_evaluations, report.redundant_evaluations);
  std::printf("  repository: %zu stores, %zu claims denied (work another "
              "client skipped)\n",
              report.repository_counters.stores,
              report.repository_counters.claims_denied);
  std::printf("  everyone's best pipeline: %s (RMSE %.4f)\n",
              report.clients[0].report.best().spec.c_str(),
              report.clients[0].report.best().mean_score);
}

}  // namespace

int main() {
  std::printf("=== coda cooperative clients (Fig 1 + Fig 2) ===\n\n");
  data_tier_demo();
  cooperative_search_demo();
  coda::obs::dump_if_env();
  return 0;
}
