// Quickstart: the paper's Listing 1 + Listing 2 workflow in C++.
//
// Builds the Fig 3 Transformer-Estimator Graph for a regression task —
// feature scaling (MinMax / Standard / Robust / none) x feature selection
// (PCA / SelectKBest / none) x models (DecisionTree / MLP / RandomForest),
// 36 pipelines in total — evaluates every path with cross-validation, and
// reports the best pipeline.
#include <cstdio>

#include "src/core/evaluator.h"
#include "src/data/synthetic.h"
#include "src/ml/decision_tree.h"
#include "src/ml/feature_selection.h"
#include "src/ml/mlp.h"
#include "src/ml/pca.h"
#include "src/ml/random_forest.h"
#include "src/ml/scalers.h"
#include "src/obs/obs.h"

using namespace coda;

namespace {

// The prepare_graph() of Listing 1.
TEGraph prepare_graph() {
  TEGraph task;

  std::vector<std::unique_ptr<Transformer>> scalers;
  scalers.push_back(std::make_unique<MinMaxScaler>());
  scalers.push_back(std::make_unique<StandardScaler>());
  scalers.push_back(std::make_unique<RobustScaler>());
  scalers.push_back(std::make_unique<NoOp>());
  task.add_feature_scalers(std::move(scalers));

  std::vector<std::unique_ptr<Transformer>> selectors;
  auto pca = std::make_unique<PCA>();
  pca->set_param("n_components", std::int64_t{4});
  selectors.push_back(std::move(pca));
  auto select_k = std::make_unique<SelectKBest>();
  select_k->set_param("k", std::int64_t{6});
  selectors.push_back(std::move(select_k));
  auto noop = std::make_unique<NoOp>();
  noop->set_name("noop_select");
  selectors.push_back(std::move(noop));
  task.add_feature_selectors(std::move(selectors));

  std::vector<std::unique_ptr<Estimator>> models;
  models.push_back(std::make_unique<DecisionTreeRegressor>());
  models.push_back(std::make_unique<MlpRegressor>());
  models.push_back(std::make_unique<RandomForestRegressor>());
  task.add_regression_models(std::move(models));
  return task;
}

}  // namespace

int main() {
  std::printf("=== coda quickstart: Fig 3 regression graph ===\n\n");

  // A synthetic regression workload (see DESIGN.md: substitution for the
  // paper's proprietary customer data).
  RegressionConfig data_cfg;
  data_cfg.n_samples = 400;
  data_cfg.n_features = 12;
  data_cfg.n_informative = 6;
  const Dataset data = make_regression(data_cfg);
  std::printf("dataset: %zu samples x %zu features\n", data.n_samples(),
              data.n_features());

  const TEGraph graph = prepare_graph();
  std::printf("graph:   %zu stages, %zu pipelines\n\n", graph.n_stages(),
              graph.count_paths());

  // pipeline_evaluation() of Listing 2: 5-fold CV, RMSE scoring.
  EvalOptions config;
  config.metric = Metric::kRmse;
  GraphEvaluator evaluator(config);
  const KFold cv(5);
  const EvaluationReport report = evaluator.evaluate(graph, data, cv);

  std::printf("%-72s %10s %8s\n", "pipeline", "rmse", "+/-");
  std::printf("%.*s\n", 92,
              "--------------------------------------------------------------"
              "------------------------------");
  for (const auto& r : report.results) {
    if (r.failed) {
      std::printf("%-72s %10s (%s)\n", r.spec.c_str(), "FAILED",
                  r.failure_message.c_str());
      continue;
    }
    std::printf("%-72s %10.4f %8.4f\n", r.spec.c_str(), r.mean_score,
                r.stddev);
  }
  std::printf("\nbest pipeline: %s\n", report.best().spec.c_str());
  std::printf("best CV RMSE:  %.4f (evaluated %zu candidates in %.2fs)\n",
              report.best().mean_score, report.results.size(),
              report.total_seconds);

  // Refit the winner on all data and predict a few points.
  Pipeline best = evaluator.train_best(graph, data, cv);
  const auto predictions = best.predict(data.X);
  std::printf("\nsample predictions (truth -> predicted):\n");
  for (std::size_t i = 0; i < 5; ++i) {
    std::printf("  %8.3f -> %8.3f\n", data.y[i], predictions[i]);
  }

  // The "create_graph" visual output (Listing 1): Graphviz DOT.
  std::printf("\nGraphviz of the graph (render with `dot -Tpng`):\n%s\n",
              graph.to_dot("fig3").c_str());
  coda::obs::dump_if_env();
  return 0;
}
