// Solution templates for heavy industry (§IV-E): the four packaged
// analyses — Failure Prediction, Root Cause, Anomaly, Cohort — each run on
// a synthetic industrial workload with a few lines of code, which is the
// point: "consumable machine learning for non-expert users".
#include <cstdio>

#include "src/data/synthetic.h"
#include "src/obs/obs.h"
#include "src/templates/anomaly.h"
#include "src/templates/cohort.h"
#include "src/templates/failure_prediction.h"
#include "src/templates/root_cause.h"
#include "src/util/random.h"

using namespace coda;
using namespace coda::templates;

namespace {

void failure_prediction_demo() {
  std::printf("--- Failure Prediction Analysis (FPA) ---\n");
  FailureWorkloadConfig cfg;
  cfg.n_samples = 600;
  cfg.failure_rate = 0.08;
  const Dataset data = make_failure_workload(cfg);

  FailurePredictionAnalysis fpa;
  const auto result = fpa.run(data);
  std::printf("  best model: %s\n", result.search.best().spec.c_str());
  std::printf("  CV F1: %.3f | hold-out AUC: %.3f\n", result.best_f1,
              result.best_auc);
  std::printf("  sensors most predictive of failure:\n");
  for (std::size_t i = 0; i < 3 && i < result.top_sensors.size(); ++i) {
    std::printf("    %zu. %-10s importance %.3f\n", i + 1,
                result.top_sensors[i].first.c_str(),
                result.top_sensors[i].second);
  }
  std::printf("\n");
}

void root_cause_demo() {
  std::printf("--- Root Cause Analysis (RCA) ---\n");
  // Yield = f(temperature, pressure, ...) on a synthetic process line.
  Rng rng(99);
  Dataset d;
  d.X = Matrix(400, 4);
  d.y.resize(400);
  d.feature_names = {"temperature", "pressure", "vibration", "humidity"};
  for (std::size_t i = 0; i < 400; ++i) {
    for (std::size_t j = 0; j < 4; ++j) d.X(i, j) = rng.normal();
    d.y[i] = 6.0 * d.X(i, 0) - 2.5 * d.X(i, 2) + rng.normal(0.0, 0.3);
  }

  RootCauseAnalysis rca;
  const auto result = rca.run(d);
  std::printf("  probe model R^2: %.3f\n", result.model_r2);
  std::printf("  factor ranking (importance):\n");
  for (const auto& [name, importance] : result.factor_importance) {
    std::printf("    %-12s %.3f\n", name.c_str(), importance);
  }
  std::printf("  sensitivity (outcome shift per +1 sd):\n");
  for (const auto& [name, delta] : result.sensitivity) {
    std::printf("    %-12s %+.3f\n", name.c_str(), delta);
  }
  // Intervention / what-if (§II): raise temperature by one unit.
  const auto what_if = rca.what_if(d, 0, 1.0);
  double mean = 0.0;
  for (const double v : what_if) mean += v;
  std::printf("  what-if: +1.0 temperature -> mean predicted yield %.3f\n\n",
              mean / static_cast<double>(what_if.size()));
}

void anomaly_demo() {
  std::printf("--- Anomaly Analysis ---\n");
  Rng rng(7);
  Matrix readings(500, 4);
  for (double& v : readings.data()) v = rng.normal(20.0, 2.0);
  // Inject three anomalous operating points.
  readings(120, 1) = 60.0;
  readings(300, 3) = -15.0;
  readings(444, 0) = 55.0;

  AnomalyAnalysis detector;
  const auto result = detector.fit_score(readings);
  std::printf("  scored %zu readings; threshold %.1f\n",
              result.scores.size(), result.threshold);
  std::printf("  anomalous rows:");
  for (const std::size_t r : result.anomalies) std::printf(" %zu", r);
  std::printf("\n\n");
}

void cohort_demo() {
  std::printf("--- Cohort Analysis (CA) ---\n");
  CohortWorkloadConfig cfg;
  cfg.n_assets = 120;
  cfg.n_cohorts = 3;
  const Dataset assets = make_cohort_workload(cfg);

  CohortAnalysis ca;  // auto-selects k by the elbow criterion
  const auto result = ca.run(assets.X);
  std::printf("  %zu assets grouped into %zu cohorts (auto-selected k)\n",
              assets.n_samples(), result.k);
  for (std::size_t c = 0; c < result.cohort_sizes.size(); ++c) {
    std::printf("    cohort %zu: %zu assets\n", c, result.cohort_sizes[c]);
  }
  std::printf("  within-cohort inertia: %.1f\n", result.inertia);
}

}  // namespace

int main() {
  std::printf("=== coda solution templates (Section IV-E) ===\n\n");
  failure_prediction_demo();
  root_cause_demo();
  anomaly_demo();
  cohort_demo();
  coda::obs::dump_if_env();
  return 0;
}
