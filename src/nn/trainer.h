// Mini-batch training loop shared by every neural estimator.
#pragma once

#include <cstdint>
#include <vector>

#include "src/nn/loss.h"
#include "src/nn/optimizer.h"
#include "src/nn/sequential.h"

namespace coda::nn {

struct TrainConfig {
  std::size_t epochs = 30;
  std::size_t batch_size = 32;
  std::uint64_t shuffle_seed = 42;
};

/// Trains `net` on (X, targets) with mini-batch gradient descent. Returns
/// the mean training loss per epoch (useful for convergence tests).
std::vector<double> train(Sequential& net, const Matrix& X,
                          const Matrix& targets, const Loss& loss,
                          Optimizer& optimizer, const TrainConfig& config);

/// Wraps a target vector as an N x 1 matrix.
Matrix column_matrix(const std::vector<double>& values);

}  // namespace coda::nn
