// Weight initialization helpers.
#pragma once

#include <cmath>

#include "src/data/matrix.h"
#include "src/util/random.h"

namespace coda::nn {

/// Xavier/Glorot uniform initialization for a fan_in x fan_out weight.
inline void xavier_init(Matrix& w, std::size_t fan_in, std::size_t fan_out,
                        Rng& rng) {
  const double limit =
      std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  for (double& v : w.data()) v = rng.uniform(-limit, limit);
}

}  // namespace coda::nn
