// Training losses.
#pragma once

#include "src/data/matrix.h"

namespace coda::nn {

/// A differentiable loss over batched predictions and targets.
class Loss {
 public:
  virtual ~Loss() = default;

  /// Scalar loss value (mean over batch and outputs).
  virtual double value(const Matrix& pred, const Matrix& target) const = 0;

  /// dLoss/dPred, same shape as pred.
  virtual Matrix gradient(const Matrix& pred,
                          const Matrix& target) const = 0;
};

/// Mean squared error.
class MseLoss final : public Loss {
 public:
  double value(const Matrix& pred, const Matrix& target) const override;
  Matrix gradient(const Matrix& pred, const Matrix& target) const override;
};

/// Binary cross-entropy over probabilities in (0,1); values are clamped to
/// avoid log(0).
class BceLoss final : public Loss {
 public:
  double value(const Matrix& pred, const Matrix& target) const override;
  Matrix gradient(const Matrix& pred, const Matrix& target) const override;
};

}  // namespace coda::nn
