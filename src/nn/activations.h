// Elementwise activation layers: ReLU, Tanh, Sigmoid.
#pragma once

#include "src/nn/layer.h"

namespace coda::nn {

class ReLU final : public Layer {
 public:
  Matrix forward(const Matrix& input, bool training) override;
  Matrix backward(const Matrix& grad_output) override;
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<ReLU>(*this);
  }
  std::string name() const override { return "relu"; }

 private:
  Matrix cached_input_;
};

class Tanh final : public Layer {
 public:
  Matrix forward(const Matrix& input, bool training) override;
  Matrix backward(const Matrix& grad_output) override;
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Tanh>(*this);
  }
  std::string name() const override { return "tanh"; }

 private:
  Matrix cached_output_;
};

class Sigmoid final : public Layer {
 public:
  Matrix forward(const Matrix& input, bool training) override;
  Matrix backward(const Matrix& grad_output) override;
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Sigmoid>(*this);
  }
  std::string name() const override { return "sigmoid"; }

 private:
  Matrix cached_output_;
};

}  // namespace coda::nn
