#include "src/nn/conv1d.h"

#include <algorithm>

#include "src/core/kernels.h"
#include "src/nn/init.h"

namespace coda::nn {

Conv1D::Conv1D(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel, std::size_t dilation, bool causal,
               std::uint64_t seed)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      dilation_(dilation),
      causal_(causal),
      w_(kernel * in_channels, out_channels),
      b_(1, out_channels) {
  require(in_channels > 0 && out_channels > 0 && kernel > 0 && dilation > 0,
          "Conv1D: empty shape");
  Rng rng(seed);
  xavier_init(w_.value, kernel * in_channels, out_channels, rng);
}

std::size_t Conv1D::output_length(std::size_t input_length) const {
  if (causal_) return input_length;
  const std::size_t span = (kernel_ - 1) * dilation_;
  require(input_length > span, "Conv1D: sequence shorter than kernel span");
  return input_length - span;
}

Matrix Conv1D::forward(const Matrix& input, bool) {
  require(input.cols() % in_channels_ == 0,
          "Conv1D: input width not a multiple of in_channels");
  const std::size_t seq_len = input.cols() / in_channels_;
  const std::size_t out_len = output_length(seq_len);
  cached_input_ = input;
  cached_seq_len_ = seq_len;

  // im2col: gather each receptive field into a contiguous row, then the
  // whole convolution is one GEMM. Causal: tap k reads input position
  // t - (kernel-1-k)*dilation (zeros where that underflows). Valid: tap k
  // reads t + k*dilation. The row-major output block (N*out_len) x out_ch
  // is bytewise the same layout as the N x (out_len*out_ch) result, so the
  // GEMM writes it directly; rows are pre-seeded with the bias so the
  // accumulation order matches the old per-tap loops exactly.
  const std::size_t fields = kernel_ * in_channels_;
  im2col_.reshape(input.rows() * out_len, fields);
  for (std::size_t n = 0; n < input.rows(); ++n) {
    const double* in_row = input.row_ptr(n);
    for (std::size_t t = 0; t < out_len; ++t) {
      double* dst = im2col_.row_ptr(n * out_len + t);
      for (std::size_t k = 0; k < kernel_; ++k) {
        std::ptrdiff_t src;
        if (causal_) {
          src = static_cast<std::ptrdiff_t>(t) -
                static_cast<std::ptrdiff_t>((kernel_ - 1 - k) * dilation_);
        } else {
          src = static_cast<std::ptrdiff_t>(t + k * dilation_);
        }
        double* tap = dst + k * in_channels_;
        if (src < 0) {
          std::fill(tap, tap + in_channels_, 0.0);
        } else {
          const double* sp =
              in_row + static_cast<std::size_t>(src) * in_channels_;
          std::copy(sp, sp + in_channels_, tap);
        }
      }
    }
  }

  Matrix out(input.rows(), out_len * out_channels_);
  for (std::size_t r = 0; r < im2col_.rows(); ++r) {
    std::copy(b_.value.ptr(), b_.value.ptr() + out_channels_,
              out.ptr() + r * out_channels_);
  }
  kernels::gemm_nn(im2col_.rows(), out_channels_, fields, im2col_.ptr(),
                   fields, w_.value.ptr(), out_channels_, out.ptr(),
                   out_channels_);
  return out;
}

Matrix Conv1D::backward(const Matrix& grad_output) {
  require_state(cached_seq_len_ > 0, "Conv1D: backward without forward");
  const std::size_t seq_len = cached_seq_len_;
  const std::size_t out_len = output_length(seq_len);
  require(grad_output.rows() == cached_input_.rows() &&
              grad_output.cols() == out_len * out_channels_,
          "Conv1D: grad shape mismatch");

  // The grad block is bytewise a (N*out_len) x out_ch matrix. db is its
  // column sums; dW += im2colᵀ · g reuses the fields gathered in forward;
  // dX is g · Wᵀ per row, scattered back through the same tap mapping
  // (col2im) — the only part that has no GEMM shape.
  const std::size_t fields = kernel_ * in_channels_;
  const std::size_t gr = grad_output.rows() * out_len;
  kernels::col_sums_add(gr, out_channels_, grad_output.ptr(), out_channels_,
                        b_.grad.ptr());
  kernels::gemm_tn(fields, out_channels_, gr, im2col_.ptr(), fields,
                   grad_output.ptr(), out_channels_, w_.grad.ptr(),
                   out_channels_);
  dcol_.reshape(gr, fields);
  // Overwrite mode: bit-identical to the old zero-fill + accumulate
  // (0 + s == s) without the extra pass over dcol_.
  kernels::gemm_nt(gr, fields, out_channels_, grad_output.ptr(),
                   out_channels_, w_.value.ptr(), out_channels_,
                   dcol_.ptr(), fields, {}, /*accumulate=*/false);

  Matrix grad_input(cached_input_.rows(), cached_input_.cols());
  for (std::size_t n = 0; n < grad_output.rows(); ++n) {
    double* gi_row = grad_input.row_ptr(n);
    for (std::size_t t = 0; t < out_len; ++t) {
      const double* src_row = dcol_.row_ptr(n * out_len + t);
      for (std::size_t k = 0; k < kernel_; ++k) {
        std::ptrdiff_t src;
        if (causal_) {
          src = static_cast<std::ptrdiff_t>(t) -
                static_cast<std::ptrdiff_t>((kernel_ - 1 - k) * dilation_);
          if (src < 0) continue;
        } else {
          src = static_cast<std::ptrdiff_t>(t + k * dilation_);
        }
        double* dst = gi_row + static_cast<std::size_t>(src) * in_channels_;
        const double* tap = src_row + k * in_channels_;
        for (std::size_t ci = 0; ci < in_channels_; ++ci) dst[ci] += tap[ci];
      }
    }
  }
  return grad_input;
}

MaxPool1D::MaxPool1D(std::size_t channels, std::size_t pool)
    : channels_(channels), pool_(pool) {
  require(channels > 0 && pool > 0, "MaxPool1D: empty shape");
}

Matrix MaxPool1D::forward(const Matrix& input, bool) {
  require(input.cols() % channels_ == 0,
          "MaxPool1D: input width not a multiple of channels");
  const std::size_t seq_len = input.cols() / channels_;
  const std::size_t out_len = seq_len / pool_;
  require(out_len > 0, "MaxPool1D: sequence shorter than pool size");
  cached_rows_ = input.rows();
  cached_cols_ = input.cols();

  Matrix out(input.rows(), out_len * channels_);
  argmax_.assign(out.size(), 0);
  for (std::size_t n = 0; n < input.rows(); ++n) {
    for (std::size_t t = 0; t < out_len; ++t) {
      for (std::size_t c = 0; c < channels_; ++c) {
        double best = input(n, (t * pool_) * channels_ + c);
        std::size_t best_idx = (t * pool_) * channels_ + c;
        for (std::size_t p = 1; p < pool_; ++p) {
          const std::size_t idx = (t * pool_ + p) * channels_ + c;
          if (input(n, idx) > best) {
            best = input(n, idx);
            best_idx = idx;
          }
        }
        const std::size_t out_idx = t * channels_ + c;
        out(n, out_idx) = best;
        argmax_[n * out.cols() + out_idx] = best_idx;
      }
    }
  }
  return out;
}

Matrix MaxPool1D::backward(const Matrix& grad_output) {
  require_state(cached_rows_ == grad_output.rows(),
                "MaxPool1D: backward without matching forward");
  Matrix grad_input(cached_rows_, cached_cols_);
  for (std::size_t n = 0; n < grad_output.rows(); ++n) {
    for (std::size_t j = 0; j < grad_output.cols(); ++j) {
      grad_input(n, argmax_[n * grad_output.cols() + j]) +=
          grad_output(n, j);
    }
  }
  return grad_input;
}

}  // namespace coda::nn
