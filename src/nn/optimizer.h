// Gradient-descent optimizers: SGD with momentum, and Adam.
#pragma once

#include <vector>

#include "src/nn/layer.h"

namespace coda::nn {

/// Applies one update step to a fixed set of parameter tensors. State (e.g.
/// Adam moments) is keyed by position, so always pass the same parameter
/// list in the same order.
class Optimizer {
 public:
  virtual ~Optimizer() = default;
  virtual void step(const std::vector<ParamTensor*>& params) = 0;
};

/// SGD with classical momentum.
class Sgd final : public Optimizer {
 public:
  explicit Sgd(double learning_rate, double momentum = 0.0);

  void step(const std::vector<ParamTensor*>& params) override;

 private:
  double lr_;
  double momentum_;
  std::vector<Matrix> velocity_;
};

/// Adam (Kingma & Ba) with bias correction.
class Adam final : public Optimizer {
 public:
  explicit Adam(double learning_rate = 1e-3, double beta1 = 0.9,
                double beta2 = 0.999, double eps = 1e-8);

  void step(const std::vector<ParamTensor*>& params) override;

 private:
  double lr_;
  double beta1_;
  double beta2_;
  double eps_;
  std::size_t t_ = 0;
  std::vector<Matrix> m_;
  std::vector<Matrix> v_;
};

}  // namespace coda::nn
