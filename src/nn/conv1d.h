// 1-D convolution over flattened sequences (the CNN / WaveNet / SeriesNet
// estimators of Section IV-C2). Each input row is a timestep-major
// flattened sequence: [t0c0, t0c1, ..., t1c0, ...]. With causal padding the
// output keeps the sequence length and position t only sees inputs at
// t, t-dilation, t-2*dilation, ... (the WaveNet construction).
#pragma once

#include "src/nn/layer.h"
#include "src/util/random.h"

namespace coda::nn {

/// Dilated (optionally causal) 1-D convolution.
class Conv1D final : public Layer {
 public:
  /// kernel taps are spaced `dilation` steps apart. causal=true left-pads
  /// with zeros (output length == input length); causal=false is a "valid"
  /// convolution (output length = T - (kernel-1)*dilation).
  Conv1D(std::size_t in_channels, std::size_t out_channels,
         std::size_t kernel, std::size_t dilation = 1, bool causal = true,
         std::uint64_t seed = 42);

  Matrix forward(const Matrix& input, bool training) override;
  Matrix backward(const Matrix& grad_output) override;
  std::vector<ParamTensor*> parameters() override { return {&w_, &b_}; }
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Conv1D>(*this);
  }
  std::string name() const override { return "conv1d"; }

  std::size_t in_channels() const { return in_channels_; }
  std::size_t out_channels() const { return out_channels_; }
  std::size_t output_length(std::size_t input_length) const;

 private:
  std::size_t in_channels_;
  std::size_t out_channels_;
  std::size_t kernel_;
  std::size_t dilation_;
  bool causal_;
  ParamTensor w_;  // (kernel * in_channels) x out_channels
  ParamTensor b_;  // 1 x out_channels
  Matrix cached_input_;
  std::size_t cached_seq_len_ = 0;

  // im2col workspace: one row per (batch row, output position) holding the
  // kernel*in_channels receptive field (zeros where the causal padding
  // falls). Built in forward, reused by backward, buffer kept across calls.
  Matrix im2col_;
  Matrix dcol_;  // backward counterpart: per-row gradient w.r.t. the field
};

/// Non-overlapping max pooling over time. Input rows are timestep-major
/// flattened (T x C); output is (T/pool) x C flattened (remainder dropped).
class MaxPool1D final : public Layer {
 public:
  MaxPool1D(std::size_t channels, std::size_t pool);

  Matrix forward(const Matrix& input, bool training) override;
  Matrix backward(const Matrix& grad_output) override;
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<MaxPool1D>(*this);
  }
  std::string name() const override { return "maxpool1d"; }

  std::size_t output_length(std::size_t input_length) const {
    return input_length / pool_;
  }

 private:
  std::size_t channels_;
  std::size_t pool_;
  std::vector<std::size_t> argmax_;  // flat source index per output element
  std::size_t cached_rows_ = 0;
  std::size_t cached_cols_ = 0;
};

}  // namespace coda::nn
