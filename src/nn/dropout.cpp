#include "src/nn/dropout.h"

namespace coda::nn {

Dropout::Dropout(double rate, std::uint64_t seed) : rate_(rate), rng_(seed) {
  require(rate >= 0.0 && rate < 1.0, "Dropout: rate must be in [0,1)");
}

Matrix Dropout::forward(const Matrix& input, bool training) {
  last_was_training_ = training;
  if (!training || rate_ == 0.0) return input;
  const double keep_scale = 1.0 / (1.0 - rate_);
  mask_ = Matrix(input.rows(), input.cols());
  Matrix out = input;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const double m = rng_.bernoulli(rate_) ? 0.0 : keep_scale;
    mask_.data()[i] = m;
    out.data()[i] *= m;
  }
  return out;
}

Matrix Dropout::backward(const Matrix& grad_output) {
  if (!last_was_training_ || rate_ == 0.0) return grad_output;
  require_state(mask_.size() == grad_output.size(),
                "Dropout: backward without matching forward");
  Matrix out = grad_output;
  for (std::size_t i = 0; i < out.size(); ++i) {
    out.data()[i] *= mask_.data()[i];
  }
  return out;
}

}  // namespace coda::nn
