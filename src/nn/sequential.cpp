#include "src/nn/sequential.h"

namespace coda::nn {

Sequential::Sequential(const Sequential& other) {
  layers_.reserve(other.layers_.size());
  for (const auto& l : other.layers_) layers_.push_back(l->clone());
}

Sequential& Sequential::operator=(const Sequential& other) {
  if (this != &other) {
    Sequential copy(other);
    *this = std::move(copy);
  }
  return *this;
}

Sequential& Sequential::add(std::unique_ptr<Layer> layer) {
  require(layer != nullptr, "Sequential: null layer");
  layers_.push_back(std::move(layer));
  return *this;
}

Layer& Sequential::layer(std::size_t i) {
  require(i < layers_.size(), "Sequential: layer index out of range");
  return *layers_[i];
}

Matrix Sequential::forward(const Matrix& input, bool training) {
  require_state(!layers_.empty(), "Sequential: no layers");
  Matrix current = input;
  for (auto& l : layers_) current = l->forward(current, training);
  return current;
}

Matrix Sequential::backward(const Matrix& grad_output) {
  require_state(!layers_.empty(), "Sequential: no layers");
  Matrix grad = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    grad = (*it)->backward(grad);
  }
  return grad;
}

std::vector<ParamTensor*> Sequential::parameters() {
  std::vector<ParamTensor*> params;
  for (auto& l : layers_) {
    for (ParamTensor* p : l->parameters()) params.push_back(p);
  }
  return params;
}

void Sequential::zero_grad() {
  for (ParamTensor* p : parameters()) p->zero_grad();
}

std::size_t Sequential::parameter_count() {
  std::size_t n = 0;
  for (ParamTensor* p : parameters()) n += p->value.size();
  return n;
}

}  // namespace coda::nn
