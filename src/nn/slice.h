// Sequence slicing utility layers.
#pragma once

#include "src/nn/layer.h"

namespace coda::nn {

/// Keeps only the last timestep of a flattened (T x C) sequence row —
/// the read-out point of causal convolution stacks (WaveNet/SeriesNet).
class SliceLastTimestep final : public Layer {
 public:
  explicit SliceLastTimestep(std::size_t channels) : channels_(channels) {
    require(channels > 0, "SliceLastTimestep: channels must be > 0");
  }

  Matrix forward(const Matrix& input, bool) override {
    require(input.cols() % channels_ == 0 && input.cols() >= channels_,
            "SliceLastTimestep: input width not a multiple of channels");
    cached_cols_ = input.cols();
    Matrix out(input.rows(), channels_);
    const std::size_t offset = input.cols() - channels_;
    for (std::size_t r = 0; r < input.rows(); ++r) {
      for (std::size_t c = 0; c < channels_; ++c) {
        out(r, c) = input(r, offset + c);
      }
    }
    return out;
  }

  Matrix backward(const Matrix& grad_output) override {
    require_state(cached_cols_ > 0, "SliceLastTimestep: backward w/o forward");
    Matrix grad(grad_output.rows(), cached_cols_);
    const std::size_t offset = cached_cols_ - channels_;
    for (std::size_t r = 0; r < grad_output.rows(); ++r) {
      for (std::size_t c = 0; c < channels_; ++c) {
        grad(r, offset + c) = grad_output(r, c);
      }
    }
    return grad;
  }

  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<SliceLastTimestep>(*this);
  }
  std::string name() const override { return "slice_last"; }

 private:
  std::size_t channels_;
  std::size_t cached_cols_ = 0;
};

}  // namespace coda::nn
