// Fully connected layer.
#pragma once

#include "src/nn/layer.h"
#include "src/util/random.h"

namespace coda::nn {

/// y = x W + b with W: in x out, b: 1 x out.
class Dense final : public Layer {
 public:
  Dense(std::size_t in_features, std::size_t out_features,
        std::uint64_t seed = 42);

  Matrix forward(const Matrix& input, bool training) override;
  Matrix backward(const Matrix& grad_output) override;
  std::vector<ParamTensor*> parameters() override { return {&w_, &b_}; }
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Dense>(*this);
  }
  std::string name() const override { return "dense"; }

  std::size_t in_features() const { return w_.value.rows(); }
  std::size_t out_features() const { return w_.value.cols(); }

 private:
  ParamTensor w_;
  ParamTensor b_;
  Matrix cached_input_;
};

}  // namespace coda::nn
