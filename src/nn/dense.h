// Fully connected layer.
#pragma once

#include "src/core/kernels.h"
#include "src/nn/layer.h"
#include "src/util/random.h"

namespace coda::nn {

/// y = act(x W + b) with W: in x out, b: 1 x out. The activation defaults
/// to none; passing one fuses it into the GEMM epilogue (single write-back,
/// no separate activation layer or second pass over the output).
class Dense final : public Layer {
 public:
  Dense(std::size_t in_features, std::size_t out_features,
        std::uint64_t seed = 42,
        kernels::Activation act = kernels::Activation::kNone);

  Matrix forward(const Matrix& input, bool training) override;
  Matrix backward(const Matrix& grad_output) override;
  std::vector<ParamTensor*> parameters() override { return {&w_, &b_}; }
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Dense>(*this);
  }
  std::string name() const override { return "dense"; }

  std::size_t in_features() const { return w_.value.rows(); }
  std::size_t out_features() const { return w_.value.cols(); }
  kernels::Activation activation() const { return act_; }

 private:
  ParamTensor w_;
  ParamTensor b_;
  kernels::Activation act_;
  Matrix cached_input_;
  Matrix cached_output_;  // post-activation; only kept when act_ is fused
  Matrix dw_;             // workspace reused across backward calls
};

}  // namespace coda::nn
