#include "src/nn/lstm.h"

#include <algorithm>
#include <cmath>

#include "src/core/kernels.h"
#include "src/nn/init.h"

namespace coda::nn {
namespace {

double sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }

}  // namespace

Lstm::Lstm(std::size_t input_size, std::size_t hidden_size,
           bool return_sequences, std::uint64_t seed)
    : input_size_(input_size),
      hidden_(hidden_size),
      return_sequences_(return_sequences),
      wx_(input_size, 4 * hidden_size),
      wh_(hidden_size, 4 * hidden_size),
      b_(1, 4 * hidden_size) {
  require(input_size > 0 && hidden_size > 0, "Lstm: empty shape");
  Rng rng(seed);
  xavier_init(wx_.value, input_size, 4 * hidden_size, rng);
  xavier_init(wh_.value, hidden_size, 4 * hidden_size, rng);
  // Forget-gate bias starts at 1 — the standard trick that keeps early
  // training from zeroing the cell state.
  for (std::size_t h = 0; h < hidden_size; ++h) {
    b_.value(0, hidden_size + h) = 1.0;
  }
}

Matrix Lstm::forward(const Matrix& input, bool) {
  require(input.cols() % input_size_ == 0,
          "Lstm: input width not a multiple of input_size");
  const std::size_t seq_len = input.cols() / input_size_;
  require(seq_len > 0, "Lstm: empty sequence");
  const std::size_t n = input.rows();
  const std::size_t H = hidden_;
  cached_input_ = input;
  cached_seq_len_ = seq_len;
  if (steps_.size() != seq_len) steps_.resize(seq_len);
  z_.reshape(n, 4 * H);

  for (std::size_t t = 0; t < seq_len; ++t) {
    StepCache& s = steps_[t];
    s.i.reshape(n, H);
    s.f.reshape(n, H);
    s.g.reshape(n, H);
    s.o.reshape(n, H);
    s.c.reshape(n, H);
    s.tanh_c.reshape(n, H);
    s.h.reshape(n, H);

    // All four gate pre-activations in one 4H-wide fused pass:
    // z = b + x_t Wx + h_{t-1} Wh. The timestep slice x_t is a strided view
    // into the flattened batch (lda = input.cols()), no copy. At t = 0 the
    // previous hidden state is all zero, so its GEMM is skipped outright.
    for (std::size_t r = 0; r < n; ++r) {
      std::copy(b_.value.ptr(), b_.value.ptr() + 4 * H, z_.row_ptr(r));
    }
    kernels::gemm_nn(n, 4 * H, input_size_, input.ptr() + t * input_size_,
                     input.cols(), wx_.value.ptr(), 4 * H, z_.ptr(), 4 * H);
    if (t > 0) {
      kernels::gemm_nn(n, 4 * H, H, steps_[t - 1].h.ptr(), H,
                       wh_.value.ptr(), 4 * H, z_.ptr(), 4 * H);
    }

    const Matrix* c_prev = t > 0 ? &steps_[t - 1].c : nullptr;
    for (std::size_t r = 0; r < n; ++r) {
      const double* zr = z_.row_ptr(r);
      for (std::size_t hh = 0; hh < H; ++hh) {
        const double iv = sigmoid(zr[hh]);
        const double fv = sigmoid(zr[H + hh]);
        const double gv = std::tanh(zr[2 * H + hh]);
        const double ov = sigmoid(zr[3 * H + hh]);
        const double cv =
            fv * (t > 0 ? (*c_prev)(r, hh) : 0.0) + iv * gv;
        const double tc = std::tanh(cv);
        s.i(r, hh) = iv;
        s.f(r, hh) = fv;
        s.g(r, hh) = gv;
        s.o(r, hh) = ov;
        s.c(r, hh) = cv;
        s.tanh_c(r, hh) = tc;
        s.h(r, hh) = ov * tc;
      }
    }
  }

  if (!return_sequences_) return steps_.back().h;
  Matrix out(n, seq_len * hidden_);
  for (std::size_t t = 0; t < seq_len; ++t) {
    for (std::size_t r = 0; r < n; ++r) {
      std::copy(steps_[t].h.row_ptr(r), steps_[t].h.row_ptr(r) + hidden_,
                out.row_ptr(r) + t * hidden_);
    }
  }
  return out;
}

Matrix Lstm::backward(const Matrix& grad_output) {
  require_state(cached_seq_len_ > 0, "Lstm: backward without forward");
  const std::size_t seq_len = cached_seq_len_;
  const std::size_t n = cached_input_.rows();
  const std::size_t H = hidden_;
  if (return_sequences_) {
    require(grad_output.cols() == seq_len * hidden_,
            "Lstm: grad shape mismatch (sequences)");
  } else {
    require(grad_output.cols() == hidden_, "Lstm: grad shape mismatch");
  }
  require(grad_output.rows() == n, "Lstm: grad batch mismatch");

  Matrix grad_input(n, cached_input_.cols());
  dh_next_.reshape(n, H);
  dh_next_.fill(0.0);
  dc_next_.reshape(n, H);
  dc_next_.fill(0.0);
  dz_.reshape(n, 4 * H);
  dh_prev_.reshape(n, H);

  for (std::size_t t = seq_len; t-- > 0;) {
    const StepCache& s = steps_[t];
    const Matrix* c_prev_mat = t > 0 ? &steps_[t - 1].c : nullptr;

    // Elementwise gate backprop into the fused N x 4H buffer; dc carries in
    // place through dc_next_.
    for (std::size_t r = 0; r < n; ++r) {
      double* dzr = dz_.row_ptr(r);
      for (std::size_t hh = 0; hh < H; ++hh) {
        double dh = dh_next_(r, hh);
        if (return_sequences_) {
          dh += grad_output(r, t * hidden_ + hh);
        } else if (t + 1 == seq_len) {
          dh += grad_output(r, hh);
        }
        const double iv = s.i(r, hh);
        const double fv = s.f(r, hh);
        const double gv = s.g(r, hh);
        const double ov = s.o(r, hh);
        const double tc = s.tanh_c(r, hh);
        const double c_prev_v = t > 0 ? (*c_prev_mat)(r, hh) : 0.0;

        const double do_ = dh * tc;
        const double dc = dc_next_(r, hh) + dh * ov * (1.0 - tc * tc);
        const double di = dc * gv;
        const double dg = dc * iv;
        const double df = dc * c_prev_v;
        dc_next_(r, hh) = dc * fv;

        dzr[hh] = di * iv * (1.0 - iv);
        dzr[H + hh] = df * fv * (1.0 - fv);
        dzr[2 * H + hh] = dg * (1.0 - gv * gv);
        dzr[3 * H + hh] = do_ * ov * (1.0 - ov);
      }
    }

    // db += column sums of dz; dWx += x_tᵀ dz; dX_t += dz Wxᵀ — the input
    // slices are strided views into the flattened batch, no transposes or
    // copies materialized.
    kernels::col_sums_add(n, 4 * H, dz_.ptr(), 4 * H, b_.grad.ptr());
    kernels::gemm_tn(input_size_, 4 * H, n,
                     cached_input_.ptr() + t * input_size_,
                     cached_input_.cols(), dz_.ptr(), 4 * H,
                     wx_.grad.ptr(), 4 * H);
    kernels::gemm_nt(n, input_size_, 4 * H, dz_.ptr(), 4 * H,
                     wx_.value.ptr(), 4 * H,
                     grad_input.ptr() + t * input_size_, grad_input.cols());
    if (t > 0) {
      kernels::gemm_tn(H, 4 * H, n, steps_[t - 1].h.ptr(), H, dz_.ptr(),
                       4 * H, wh_.grad.ptr(), 4 * H);
      dh_prev_.fill(0.0);
      kernels::gemm_nt(n, H, 4 * H, dz_.ptr(), 4 * H, wh_.value.ptr(),
                       4 * H, dh_prev_.ptr(), H);
      std::swap(dh_next_, dh_prev_);
    }
  }
  return grad_input;
}

}  // namespace coda::nn
