#include "src/nn/lstm.h"

#include <cmath>

#include "src/nn/init.h"

namespace coda::nn {
namespace {

double sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }

}  // namespace

Lstm::Lstm(std::size_t input_size, std::size_t hidden_size,
           bool return_sequences, std::uint64_t seed)
    : input_size_(input_size),
      hidden_(hidden_size),
      return_sequences_(return_sequences),
      wx_(input_size, 4 * hidden_size),
      wh_(hidden_size, 4 * hidden_size),
      b_(1, 4 * hidden_size) {
  require(input_size > 0 && hidden_size > 0, "Lstm: empty shape");
  Rng rng(seed);
  xavier_init(wx_.value, input_size, 4 * hidden_size, rng);
  xavier_init(wh_.value, hidden_size, 4 * hidden_size, rng);
  // Forget-gate bias starts at 1 — the standard trick that keeps early
  // training from zeroing the cell state.
  for (std::size_t h = 0; h < hidden_size; ++h) {
    b_.value(0, hidden_size + h) = 1.0;
  }
}

Matrix Lstm::forward(const Matrix& input, bool) {
  require(input.cols() % input_size_ == 0,
          "Lstm: input width not a multiple of input_size");
  const std::size_t seq_len = input.cols() / input_size_;
  require(seq_len > 0, "Lstm: empty sequence");
  const std::size_t n = input.rows();
  cached_input_ = input;
  cached_seq_len_ = seq_len;
  steps_.assign(seq_len, StepCache{});

  Matrix h_prev(n, hidden_);
  Matrix c_prev(n, hidden_);
  for (std::size_t t = 0; t < seq_len; ++t) {
    StepCache& s = steps_[t];
    s.i = Matrix(n, hidden_);
    s.f = Matrix(n, hidden_);
    s.g = Matrix(n, hidden_);
    s.o = Matrix(n, hidden_);
    s.c = Matrix(n, hidden_);
    s.tanh_c = Matrix(n, hidden_);
    s.h = Matrix(n, hidden_);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t hh = 0; hh < hidden_; ++hh) {
        double zi = b_.value(0, hh);
        double zf = b_.value(0, hidden_ + hh);
        double zg = b_.value(0, 2 * hidden_ + hh);
        double zo = b_.value(0, 3 * hidden_ + hh);
        for (std::size_t x = 0; x < input_size_; ++x) {
          const double xv = input(r, t * input_size_ + x);
          zi += xv * wx_.value(x, hh);
          zf += xv * wx_.value(x, hidden_ + hh);
          zg += xv * wx_.value(x, 2 * hidden_ + hh);
          zo += xv * wx_.value(x, 3 * hidden_ + hh);
        }
        for (std::size_t p = 0; p < hidden_; ++p) {
          const double hv = h_prev(r, p);
          if (hv == 0.0) continue;
          zi += hv * wh_.value(p, hh);
          zf += hv * wh_.value(p, hidden_ + hh);
          zg += hv * wh_.value(p, 2 * hidden_ + hh);
          zo += hv * wh_.value(p, 3 * hidden_ + hh);
        }
        const double iv = sigmoid(zi);
        const double fv = sigmoid(zf);
        const double gv = std::tanh(zg);
        const double ov = sigmoid(zo);
        const double cv = fv * c_prev(r, hh) + iv * gv;
        const double tc = std::tanh(cv);
        s.i(r, hh) = iv;
        s.f(r, hh) = fv;
        s.g(r, hh) = gv;
        s.o(r, hh) = ov;
        s.c(r, hh) = cv;
        s.tanh_c(r, hh) = tc;
        s.h(r, hh) = ov * tc;
      }
    }
    h_prev = s.h;
    c_prev = s.c;
  }

  if (!return_sequences_) return steps_.back().h;
  Matrix out(n, seq_len * hidden_);
  for (std::size_t t = 0; t < seq_len; ++t) {
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t hh = 0; hh < hidden_; ++hh) {
        out(r, t * hidden_ + hh) = steps_[t].h(r, hh);
      }
    }
  }
  return out;
}

Matrix Lstm::backward(const Matrix& grad_output) {
  require_state(cached_seq_len_ > 0, "Lstm: backward without forward");
  const std::size_t seq_len = cached_seq_len_;
  const std::size_t n = cached_input_.rows();
  if (return_sequences_) {
    require(grad_output.cols() == seq_len * hidden_,
            "Lstm: grad shape mismatch (sequences)");
  } else {
    require(grad_output.cols() == hidden_, "Lstm: grad shape mismatch");
  }
  require(grad_output.rows() == n, "Lstm: grad batch mismatch");

  Matrix grad_input(n, cached_input_.cols());
  Matrix dh_next(n, hidden_);  // dLoss/dh_t flowing from step t+1
  Matrix dc_next(n, hidden_);

  for (std::size_t t = seq_len; t-- > 0;) {
    const StepCache& s = steps_[t];
    const Matrix* h_prev_mat = t > 0 ? &steps_[t - 1].h : nullptr;
    const Matrix* c_prev_mat = t > 0 ? &steps_[t - 1].c : nullptr;
    Matrix dh_prev(n, hidden_);  // dLoss/dh_{t-1}, built this step

    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t hh = 0; hh < hidden_; ++hh) {
        double dh = dh_next(r, hh);
        if (return_sequences_) {
          dh += grad_output(r, t * hidden_ + hh);
        } else if (t + 1 == seq_len) {
          dh += grad_output(r, hh);
        }
        const double iv = s.i(r, hh);
        const double fv = s.f(r, hh);
        const double gv = s.g(r, hh);
        const double ov = s.o(r, hh);
        const double tc = s.tanh_c(r, hh);
        const double c_prev_v = t > 0 ? (*c_prev_mat)(r, hh) : 0.0;

        const double do_ = dh * tc;
        double dc = dc_next(r, hh) + dh * ov * (1.0 - tc * tc);
        const double di = dc * gv;
        const double dg = dc * iv;
        const double df = dc * c_prev_v;
        dc_next(r, hh) = dc * fv;

        const double dzi = di * iv * (1.0 - iv);
        const double dzf = df * fv * (1.0 - fv);
        const double dzg = dg * (1.0 - gv * gv);
        const double dzo = do_ * ov * (1.0 - ov);

        b_.grad(0, hh) += dzi;
        b_.grad(0, hidden_ + hh) += dzf;
        b_.grad(0, 2 * hidden_ + hh) += dzg;
        b_.grad(0, 3 * hidden_ + hh) += dzo;

        for (std::size_t x = 0; x < input_size_; ++x) {
          const double xv = cached_input_(r, t * input_size_ + x);
          wx_.grad(x, hh) += dzi * xv;
          wx_.grad(x, hidden_ + hh) += dzf * xv;
          wx_.grad(x, 2 * hidden_ + hh) += dzg * xv;
          wx_.grad(x, 3 * hidden_ + hh) += dzo * xv;
          grad_input(r, t * input_size_ + x) +=
              dzi * wx_.value(x, hh) + dzf * wx_.value(x, hidden_ + hh) +
              dzg * wx_.value(x, 2 * hidden_ + hh) +
              dzo * wx_.value(x, 3 * hidden_ + hh);
        }
        if (t > 0) {
          for (std::size_t p = 0; p < hidden_; ++p) {
            const double hv = (*h_prev_mat)(r, p);
            wh_.grad(p, hh) += dzi * hv;
            wh_.grad(p, hidden_ + hh) += dzf * hv;
            wh_.grad(p, 2 * hidden_ + hh) += dzg * hv;
            wh_.grad(p, 3 * hidden_ + hh) += dzo * hv;
            dh_prev(r, p) +=
                dzi * wh_.value(p, hh) + dzf * wh_.value(p, hidden_ + hh) +
                dzg * wh_.value(p, 2 * hidden_ + hh) +
                dzo * wh_.value(p, 3 * hidden_ + hh);
          }
        }
      }
    }
    dh_next = std::move(dh_prev);
  }
  return grad_input;
}

}  // namespace coda::nn
