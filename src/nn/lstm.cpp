#include "src/nn/lstm.h"

#include <algorithm>
#include <cmath>

#include "src/core/kernels.h"
#include "src/nn/init.h"

namespace coda::nn {
namespace {

double sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }

}  // namespace

Lstm::Lstm(std::size_t input_size, std::size_t hidden_size,
           bool return_sequences, std::uint64_t seed)
    : input_size_(input_size),
      hidden_(hidden_size),
      return_sequences_(return_sequences),
      wx_(input_size, 4 * hidden_size),
      wh_(hidden_size, 4 * hidden_size),
      b_(1, 4 * hidden_size) {
  require(input_size > 0 && hidden_size > 0, "Lstm: empty shape");
  Rng rng(seed);
  xavier_init(wx_.value, input_size, 4 * hidden_size, rng);
  xavier_init(wh_.value, hidden_size, 4 * hidden_size, rng);
  // Forget-gate bias starts at 1 — the standard trick that keeps early
  // training from zeroing the cell state.
  for (std::size_t h = 0; h < hidden_size; ++h) {
    b_.value(0, hidden_size + h) = 1.0;
  }
}

Matrix Lstm::forward(const Matrix& input, bool) {
  require(input.cols() % input_size_ == 0,
          "Lstm: input width not a multiple of input_size");
  const std::size_t seq_len = input.cols() / input_size_;
  require(seq_len > 0, "Lstm: empty sequence");
  const std::size_t n = input.rows();
  const std::size_t H = hidden_;
  cached_input_ = input;
  cached_seq_len_ = seq_len;
  if (steps_.size() != seq_len) steps_.resize(seq_len);

  // Time-batched input projection: the flattened batch (N x T*input) is
  // bytewise an (N*T x input) matrix whose row r*T+t is x_t of sample r, and
  // z_ (N x T*4H) is likewise (N*T x 4H) — so z = b + x Wx for EVERY
  // timestep is one bias seed plus ONE GEMM instead of T strided ones.
  // Per element the op sequence (bias, then ascending-k dot) is exactly the
  // per-timestep loop's, so the result is bit-identical.
  z_.reshape(n, seq_len * 4 * H);
  for (std::size_t r = 0; r < n * seq_len; ++r) {
    std::copy(b_.value.ptr(), b_.value.ptr() + 4 * H, z_.ptr() + r * 4 * H);
  }
  kernels::gemm_nn(n * seq_len, 4 * H, input_size_, input.ptr(), input_size_,
                   wx_.value.ptr(), 4 * H, z_.ptr(), 4 * H);
  // The recurrent projection stays sequential (h_t depends on h_{t-1}), but
  // Wh is packed once here and reused by every timestep's GEMM.
  if (seq_len > 1) {
    kernels::pack_b_matrix(H, 4 * H, wh_.value.ptr(), 4 * H, wh_packed_);
  }

  for (std::size_t t = 0; t < seq_len; ++t) {
    StepCache& s = steps_[t];
    s.i.reshape(n, H);
    s.f.reshape(n, H);
    s.g.reshape(n, H);
    s.o.reshape(n, H);
    s.c.reshape(n, H);
    s.tanh_c.reshape(n, H);
    s.h.reshape(n, H);

    // z_t lives at the strided (ldc = T*4H) timestep slice of z_; the
    // recurrent contribution accumulates in place. At t = 0 the previous
    // hidden state is all zero, so its GEMM is skipped outright.
    if (t > 0) {
      kernels::gemm_nn_packed(n, steps_[t - 1].h.ptr(), H, wh_packed_,
                              z_.ptr() + t * 4 * H, seq_len * 4 * H);
    }

    const Matrix* c_prev = t > 0 ? &steps_[t - 1].c : nullptr;
    for (std::size_t r = 0; r < n; ++r) {
      const double* zr = z_.row_ptr(r) + t * 4 * H;
      for (std::size_t hh = 0; hh < H; ++hh) {
        const double iv = sigmoid(zr[hh]);
        const double fv = sigmoid(zr[H + hh]);
        const double gv = std::tanh(zr[2 * H + hh]);
        const double ov = sigmoid(zr[3 * H + hh]);
        const double cv =
            fv * (t > 0 ? (*c_prev)(r, hh) : 0.0) + iv * gv;
        const double tc = std::tanh(cv);
        s.i(r, hh) = iv;
        s.f(r, hh) = fv;
        s.g(r, hh) = gv;
        s.o(r, hh) = ov;
        s.c(r, hh) = cv;
        s.tanh_c(r, hh) = tc;
        s.h(r, hh) = ov * tc;
      }
    }
  }

  if (!return_sequences_) return steps_.back().h;
  Matrix out(n, seq_len * hidden_);
  for (std::size_t t = 0; t < seq_len; ++t) {
    for (std::size_t r = 0; r < n; ++r) {
      std::copy(steps_[t].h.row_ptr(r), steps_[t].h.row_ptr(r) + hidden_,
                out.row_ptr(r) + t * hidden_);
    }
  }
  return out;
}

Matrix Lstm::backward(const Matrix& grad_output) {
  require_state(cached_seq_len_ > 0, "Lstm: backward without forward");
  const std::size_t seq_len = cached_seq_len_;
  const std::size_t n = cached_input_.rows();
  const std::size_t H = hidden_;
  if (return_sequences_) {
    require(grad_output.cols() == seq_len * hidden_,
            "Lstm: grad shape mismatch (sequences)");
  } else {
    require(grad_output.cols() == hidden_, "Lstm: grad shape mismatch");
  }
  require(grad_output.rows() == n, "Lstm: grad batch mismatch");

  Matrix grad_input(n, cached_input_.cols());
  dh_next_.reshape(n, H);
  dh_next_.fill(0.0);
  dc_next_.reshape(n, H);
  dc_next_.fill(0.0);
  dz_.reshape(n, seq_len * 4 * H);
  dh_prev_.reshape(n, H);

  for (std::size_t t = seq_len; t-- > 0;) {
    const StepCache& s = steps_[t];
    const Matrix* c_prev_mat = t > 0 ? &steps_[t - 1].c : nullptr;

    // Elementwise gate backprop into this timestep's slice of the batched
    // N x T*4H buffer; dc carries in place through dc_next_.
    for (std::size_t r = 0; r < n; ++r) {
      double* dzr = dz_.row_ptr(r) + t * 4 * H;
      for (std::size_t hh = 0; hh < H; ++hh) {
        double dh = dh_next_(r, hh);
        if (return_sequences_) {
          dh += grad_output(r, t * hidden_ + hh);
        } else if (t + 1 == seq_len) {
          dh += grad_output(r, hh);
        }
        const double iv = s.i(r, hh);
        const double fv = s.f(r, hh);
        const double gv = s.g(r, hh);
        const double ov = s.o(r, hh);
        const double tc = s.tanh_c(r, hh);
        const double c_prev_v = t > 0 ? (*c_prev_mat)(r, hh) : 0.0;

        const double do_ = dh * tc;
        const double dc = dc_next_(r, hh) + dh * ov * (1.0 - tc * tc);
        const double di = dc * gv;
        const double dg = dc * iv;
        const double df = dc * c_prev_v;
        dc_next_(r, hh) = dc * fv;

        dzr[hh] = di * iv * (1.0 - iv);
        dzr[H + hh] = df * fv * (1.0 - fv);
        dzr[2 * H + hh] = dg * (1.0 - gv * gv);
        dzr[3 * H + hh] = do_ * ov * (1.0 - ov);
      }
    }

    // Only the recurrent carry dh_{t-1} = dz_t Whᵀ is inherently
    // sequential; every other GEMM of the old per-timestep loop is batched
    // over all timesteps after this loop. Overwrite mode replaces the old
    // zero-fill + accumulate (0 + s == s).
    if (t > 0) {
      kernels::gemm_nt(n, H, 4 * H, dz_.ptr() + t * 4 * H, seq_len * 4 * H,
                       wh_.value.ptr(), 4 * H, dh_prev_.ptr(), H, {},
                       /*accumulate=*/false);
      std::swap(dh_next_, dh_prev_);
    }
  }

  // dX = dz Wxᵀ for every timestep in one GEMM over the (N*T x 4H) /
  // (N*T x input) flattened views — each output element is one ascending-k
  // dot, independent per timestep, so batching cannot change it.
  kernels::gemm_nt(n * seq_len, input_size_, 4 * H, dz_.ptr(), 4 * H,
                   wx_.value.ptr(), 4 * H, grad_input.ptr(), input_size_);

  // The weight/bias gradients accumulate across timesteps, and the old loop
  // accumulated in (t descending, row ascending) order. Reordering x, dz
  // and the hidden-state history into that row order lets ONE gemm_tn /
  // col_sums pass replay the exact same per-element addend sequence
  // (ascending k inside the kernel == t desc, r asc here).
  x_rev_.reshape(seq_len * n, input_size_);
  dz_rev_.reshape(seq_len * n, 4 * H);
  if (seq_len > 1) h_rev_.reshape((seq_len - 1) * n, H);
  for (std::size_t t = seq_len; t-- > 0;) {
    const std::size_t tt = seq_len - 1 - t;
    for (std::size_t r = 0; r < n; ++r) {
      const double* xs = cached_input_.row_ptr(r) + t * input_size_;
      std::copy(xs, xs + input_size_, x_rev_.row_ptr(tt * n + r));
      const double* ds = dz_.row_ptr(r) + t * 4 * H;
      std::copy(ds, ds + 4 * H, dz_rev_.row_ptr(tt * n + r));
      if (t > 0) {
        const double* hs = steps_[t - 1].h.row_ptr(r);
        std::copy(hs, hs + H, h_rev_.row_ptr(tt * n + r));
      }
    }
  }
  kernels::col_sums_add(seq_len * n, 4 * H, dz_rev_.ptr(), 4 * H,
                        b_.grad.ptr());
  kernels::gemm_tn(input_size_, 4 * H, seq_len * n, x_rev_.ptr(),
                   input_size_, dz_rev_.ptr(), 4 * H, wx_.grad.ptr(), 4 * H);
  if (seq_len > 1) {
    // dWh sums over t = T-1 .. 1, whose dz rows are exactly the first
    // (T-1)*n rows of the reordered buffer.
    kernels::gemm_tn(H, 4 * H, (seq_len - 1) * n, h_rev_.ptr(), H,
                     dz_rev_.ptr(), 4 * H, wh_.grad.ptr(), 4 * H);
  }
  return grad_input;
}

}  // namespace coda::nn
