#include "src/nn/optimizer.h"

#include <cmath>

namespace coda::nn {

Sgd::Sgd(double learning_rate, double momentum)
    : lr_(learning_rate), momentum_(momentum) {
  require(learning_rate > 0.0, "Sgd: learning rate must be positive");
  require(momentum >= 0.0 && momentum < 1.0, "Sgd: momentum out of [0,1)");
}

void Sgd::step(const std::vector<ParamTensor*>& params) {
  if (velocity_.empty()) {
    for (const ParamTensor* p : params) {
      velocity_.emplace_back(p->value.rows(), p->value.cols());
    }
  }
  require(velocity_.size() == params.size(),
          "Sgd: parameter list changed between steps");
  for (std::size_t i = 0; i < params.size(); ++i) {
    ParamTensor& p = *params[i];
    Matrix& vel = velocity_[i];
    for (std::size_t j = 0; j < p.value.size(); ++j) {
      vel.data()[j] = momentum_ * vel.data()[j] - lr_ * p.grad.data()[j];
      p.value.data()[j] += vel.data()[j];
    }
  }
}

Adam::Adam(double learning_rate, double beta1, double beta2, double eps)
    : lr_(learning_rate), beta1_(beta1), beta2_(beta2), eps_(eps) {
  require(learning_rate > 0.0, "Adam: learning rate must be positive");
  require(beta1 >= 0.0 && beta1 < 1.0 && beta2 >= 0.0 && beta2 < 1.0,
          "Adam: betas out of [0,1)");
}

void Adam::step(const std::vector<ParamTensor*>& params) {
  if (m_.empty()) {
    for (const ParamTensor* p : params) {
      m_.emplace_back(p->value.rows(), p->value.cols());
      v_.emplace_back(p->value.rows(), p->value.cols());
    }
  }
  require(m_.size() == params.size(),
          "Adam: parameter list changed between steps");
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t i = 0; i < params.size(); ++i) {
    ParamTensor& p = *params[i];
    for (std::size_t j = 0; j < p.value.size(); ++j) {
      const double g = p.grad.data()[j];
      m_[i].data()[j] = beta1_ * m_[i].data()[j] + (1.0 - beta1_) * g;
      v_[i].data()[j] = beta2_ * v_[i].data()[j] + (1.0 - beta2_) * g * g;
      const double m_hat = m_[i].data()[j] / bc1;
      const double v_hat = v_[i].data()[j] / bc2;
      p.value.data()[j] -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
    }
  }
}

}  // namespace coda::nn
