#include "src/nn/trainer.h"

#include "src/obs/obs.h"
#include "src/util/random.h"
#include "src/util/stopwatch.h"

namespace coda::nn {

Matrix column_matrix(const std::vector<double>& values) {
  Matrix out(values.size(), 1);
  for (std::size_t i = 0; i < values.size(); ++i) out(i, 0) = values[i];
  return out;
}

std::vector<double> train(Sequential& net, const Matrix& X,
                          const Matrix& targets, const Loss& loss,
                          Optimizer& optimizer, const TrainConfig& config) {
  require(X.rows() == targets.rows(), "train: X/target batch mismatch");
  require(X.rows() > 0, "train: empty input");
  require(config.epochs > 0 && config.batch_size > 0,
          "train: bad configuration");

  static auto& epoch_loss_gauge = obs::gauge("nn.epoch.loss");
  static auto& step_seconds = obs::histogram("nn.step.seconds");
  const obs::ScopedSpan span("nn.train");

  Rng rng(config.shuffle_seed);
  const auto params = net.parameters();
  std::vector<double> epoch_losses;
  epoch_losses.reserve(config.epochs);

  // Batch workspaces, reused across all batches and epochs: reshape keeps
  // the heap buffers, gather_rows_into refills them in place, so the
  // steady-state loop does no per-batch allocation here.
  Matrix bx;
  Matrix bt;
  std::vector<std::size_t> batch_idx;
  batch_idx.reserve(config.batch_size);

  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    const auto order = rng.permutation(X.rows());
    double epoch_loss = 0.0;
    std::size_t batches = 0;
    for (std::size_t start = 0; start < order.size();
         start += config.batch_size) {
      Stopwatch step_timer;
      const std::size_t end =
          std::min(start + config.batch_size, order.size());
      batch_idx.assign(order.begin() + static_cast<std::ptrdiff_t>(start),
                       order.begin() + static_cast<std::ptrdiff_t>(end));
      bx.reshape(batch_idx.size(), X.cols());
      bt.reshape(batch_idx.size(), targets.cols());
      X.gather_rows_into(batch_idx, bx);
      targets.gather_rows_into(batch_idx, bt);

      net.zero_grad();
      const Matrix pred = net.forward(bx, /*training=*/true);
      epoch_loss += loss.value(pred, bt);
      net.backward(loss.gradient(pred, bt));
      optimizer.step(params);
      ++batches;
      step_seconds.observe(step_timer.elapsed_seconds());
    }
    epoch_losses.push_back(epoch_loss / static_cast<double>(batches));
    epoch_loss_gauge.set(epoch_losses.back());
  }
  return epoch_losses;
}

}  // namespace coda::nn
