// Neural-network layer interface (substrate for the paper's DNN/LSTM/CNN/
// WaveNet/SeriesNet estimators, Section IV-C). Layers implement manual
// forward/backward passes over batched row-major matrices; sequence layers
// interpret each row as a flattened (timestep-major) sequence.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/data/matrix.h"

namespace coda::nn {

/// A trainable tensor: value plus the gradient of the current batch loss.
struct ParamTensor {
  Matrix value;
  Matrix grad;

  explicit ParamTensor(std::size_t rows = 0, std::size_t cols = 0)
      : value(rows, cols), grad(rows, cols) {}

  void zero_grad() {
    std::fill(grad.data().begin(), grad.data().end(), 0.0);
  }
};

/// Base layer. forward() caches whatever backward() needs; backward()
/// consumes the cache of the most recent forward() and accumulates
/// parameter gradients.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Maps a batch (rows = samples) to the layer output. `training`
  /// activates stochastic behaviour (dropout).
  virtual Matrix forward(const Matrix& input, bool training) = 0;

  /// Given dLoss/dOutput, accumulates parameter grads and returns
  /// dLoss/dInput. Must follow a forward() on the same batch.
  virtual Matrix backward(const Matrix& grad_output) = 0;

  /// Trainable tensors (empty for stateless layers).
  virtual std::vector<ParamTensor*> parameters() { return {}; }

  virtual std::unique_ptr<Layer> clone() const = 0;

  virtual std::string name() const = 0;
};

}  // namespace coda::nn
