#include "src/nn/activations.h"

#include <cmath>

namespace coda::nn {

Matrix ReLU::forward(const Matrix& input, bool) {
  cached_input_ = input;
  Matrix out = input;
  for (double& v : out.data()) v = v > 0.0 ? v : 0.0;
  return out;
}

Matrix ReLU::backward(const Matrix& grad_output) {
  require_state(cached_input_.size() == grad_output.size(),
                "ReLU: backward without matching forward");
  Matrix out = grad_output;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (cached_input_.data()[i] <= 0.0) out.data()[i] = 0.0;
  }
  return out;
}

Matrix Tanh::forward(const Matrix& input, bool) {
  Matrix out = input;
  for (double& v : out.data()) v = std::tanh(v);
  cached_output_ = out;
  return out;
}

Matrix Tanh::backward(const Matrix& grad_output) {
  require_state(cached_output_.size() == grad_output.size(),
                "Tanh: backward without matching forward");
  Matrix out = grad_output;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const double y = cached_output_.data()[i];
    out.data()[i] *= 1.0 - y * y;
  }
  return out;
}

Matrix Sigmoid::forward(const Matrix& input, bool) {
  Matrix out = input;
  for (double& v : out.data()) v = 1.0 / (1.0 + std::exp(-v));
  cached_output_ = out;
  return out;
}

Matrix Sigmoid::backward(const Matrix& grad_output) {
  require_state(cached_output_.size() == grad_output.size(),
                "Sigmoid: backward without matching forward");
  Matrix out = grad_output;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const double y = cached_output_.data()[i];
    out.data()[i] *= y * (1.0 - y);
  }
  return out;
}

}  // namespace coda::nn
