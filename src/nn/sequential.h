// Sequential network container.
#pragma once

#include <memory>
#include <vector>

#include "src/nn/layer.h"

namespace coda::nn {

/// A stack of layers applied in order. Copyable (deep copy via clone()).
class Sequential {
 public:
  Sequential() = default;
  Sequential(const Sequential& other);
  Sequential& operator=(const Sequential& other);
  Sequential(Sequential&&) = default;
  Sequential& operator=(Sequential&&) = default;

  Sequential& add(std::unique_ptr<Layer> layer);

  /// Convenience: constructs the layer in place.
  template <typename L, typename... Args>
  Sequential& emplace(Args&&... args) {
    return add(std::make_unique<L>(std::forward<Args>(args)...));
  }

  std::size_t size() const { return layers_.size(); }
  Layer& layer(std::size_t i);

  Matrix forward(const Matrix& input, bool training);
  Matrix backward(const Matrix& grad_output);

  /// All trainable tensors across layers.
  std::vector<ParamTensor*> parameters();

  void zero_grad();

  /// Total number of trainable scalars.
  std::size_t parameter_count();

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace coda::nn
