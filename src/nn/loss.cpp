#include "src/nn/loss.h"

#include <algorithm>
#include <cmath>

namespace coda::nn {
namespace {

void check_shapes(const Matrix& pred, const Matrix& target) {
  require(pred.rows() == target.rows() && pred.cols() == target.cols(),
          "loss: prediction/target shape mismatch");
  require(pred.size() > 0, "loss: empty batch");
}

constexpr double kEps = 1e-12;

}  // namespace

double MseLoss::value(const Matrix& pred, const Matrix& target) const {
  check_shapes(pred, target);
  double s = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const double d = pred.data()[i] - target.data()[i];
    s += d * d;
  }
  return s / static_cast<double>(pred.size());
}

Matrix MseLoss::gradient(const Matrix& pred, const Matrix& target) const {
  check_shapes(pred, target);
  Matrix grad(pred.rows(), pred.cols());
  const double scale = 2.0 / static_cast<double>(pred.size());
  for (std::size_t i = 0; i < pred.size(); ++i) {
    grad.data()[i] = scale * (pred.data()[i] - target.data()[i]);
  }
  return grad;
}

double BceLoss::value(const Matrix& pred, const Matrix& target) const {
  check_shapes(pred, target);
  double s = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const double p = std::clamp(pred.data()[i], kEps, 1.0 - kEps);
    const double t = target.data()[i];
    s += -(t * std::log(p) + (1.0 - t) * std::log(1.0 - p));
  }
  return s / static_cast<double>(pred.size());
}

Matrix BceLoss::gradient(const Matrix& pred, const Matrix& target) const {
  check_shapes(pred, target);
  Matrix grad(pred.rows(), pred.cols());
  const double scale = 1.0 / static_cast<double>(pred.size());
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const double p = std::clamp(pred.data()[i], kEps, 1.0 - kEps);
    const double t = target.data()[i];
    grad.data()[i] = scale * (p - t) / (p * (1.0 - p));
  }
  return grad;
}

}  // namespace coda::nn
