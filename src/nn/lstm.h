// LSTM layer (Section IV-C2): recurrent units over flattened sequences with
// full backpropagation through time. Input rows are timestep-major
// flattened (T x input_size); the output is either the final hidden state
// (N x H) or the full hidden sequence (N x T*H) for stacking.
#pragma once

#include "src/core/kernels.h"
#include "src/nn/layer.h"
#include "src/util/random.h"

namespace coda::nn {

/// Single LSTM layer with gates ordered (input, forget, candidate, output).
class Lstm final : public Layer {
 public:
  Lstm(std::size_t input_size, std::size_t hidden_size,
       bool return_sequences = false, std::uint64_t seed = 42);

  Matrix forward(const Matrix& input, bool training) override;
  Matrix backward(const Matrix& grad_output) override;
  std::vector<ParamTensor*> parameters() override {
    return {&wx_, &wh_, &b_};
  }
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Lstm>(*this);
  }
  std::string name() const override { return "lstm"; }

  std::size_t hidden_size() const { return hidden_; }
  bool return_sequences() const { return return_sequences_; }

 private:
  std::size_t input_size_;
  std::size_t hidden_;
  bool return_sequences_;
  ParamTensor wx_;  // input_size x 4H
  ParamTensor wh_;  // H x 4H
  ParamTensor b_;   // 1 x 4H

  // Per-timestep caches of the last forward batch (each N x H). The
  // matrices are reshaped in place each forward, so steady-state training
  // reuses their buffers instead of reallocating per step.
  struct StepCache {
    Matrix i, f, g, o, c, tanh_c, h;
  };
  Matrix cached_input_;
  std::vector<StepCache> steps_;
  std::size_t cached_seq_len_ = 0;

  // Workspaces reused across forward/backward calls: the time-batched
  // N x T*4H gate pre-activations / gradients and the BPTT carry buffers.
  // The input projection of every timestep runs as ONE GEMM over the
  // flattened (N*T x input) view of the batch, and the weight-gradient
  // GEMMs of backward are batched over buffers reordered to (t descending,
  // row ascending) so the single reduction replays the per-timestep loop's
  // accumulation order exactly (see backward()).
  Matrix z_;
  Matrix dz_;
  Matrix dh_next_;
  Matrix dc_next_;
  Matrix dh_prev_;
  Matrix x_rev_;
  Matrix dz_rev_;
  Matrix h_rev_;
  kernels::PackedB wh_packed_;  ///< recurrent weights packed once per forward
};

}  // namespace coda::nn
