#include "src/nn/dense.h"

#include "src/nn/init.h"

namespace coda::nn {

Dense::Dense(std::size_t in_features, std::size_t out_features,
             std::uint64_t seed)
    : w_(in_features, out_features), b_(1, out_features) {
  require(in_features > 0 && out_features > 0, "Dense: empty shape");
  Rng rng(seed);
  xavier_init(w_.value, in_features, out_features, rng);
}

Matrix Dense::forward(const Matrix& input, bool) {
  require(input.cols() == w_.value.rows(),
          "Dense: input has " + std::to_string(input.cols()) +
              " features, layer expects " + std::to_string(w_.value.rows()));
  cached_input_ = input;
  Matrix out = input.multiply(w_.value);
  for (std::size_t r = 0; r < out.rows(); ++r) {
    for (std::size_t c = 0; c < out.cols(); ++c) out(r, c) += b_.value(0, c);
  }
  return out;
}

Matrix Dense::backward(const Matrix& grad_output) {
  require_state(cached_input_.rows() == grad_output.rows(),
                "Dense: backward without matching forward");
  // dW += x^T g ; db += column sums of g ; dInput = g W^T.
  const Matrix dw = cached_input_.transposed().multiply(grad_output);
  for (std::size_t i = 0; i < dw.size(); ++i) {
    w_.grad.data()[i] += dw.data()[i];
  }
  for (std::size_t r = 0; r < grad_output.rows(); ++r) {
    for (std::size_t c = 0; c < grad_output.cols(); ++c) {
      b_.grad(0, c) += grad_output(r, c);
    }
  }
  return grad_output.multiply(w_.value.transposed());
}

}  // namespace coda::nn
