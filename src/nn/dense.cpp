#include "src/nn/dense.h"

#include "src/nn/init.h"

namespace coda::nn {

Dense::Dense(std::size_t in_features, std::size_t out_features,
             std::uint64_t seed, kernels::Activation act)
    : w_(in_features, out_features), b_(1, out_features), act_(act) {
  require(in_features > 0 && out_features > 0, "Dense: empty shape");
  Rng rng(seed);
  xavier_init(w_.value, in_features, out_features, rng);
}

Matrix Dense::forward(const Matrix& input, bool) {
  require(input.cols() == w_.value.rows(),
          "Dense: input has " + std::to_string(input.cols()) +
              " features, layer expects " + std::to_string(w_.value.rows()));
  cached_input_ = input;
  Matrix out(input.rows(), w_.value.cols());
  // Bias broadcast (and the activation, when fused) happen in the GEMM
  // epilogue during the final write-back — no second pass over `out`.
  kernels::matmul_into(input, w_.value, out,
                       kernels::Epilogue{b_.value.ptr(), act_});
  if (act_ != kernels::Activation::kNone) cached_output_ = out;
  return out;
}

Matrix Dense::backward(const Matrix& grad_output) {
  require_state(cached_input_.rows() == grad_output.rows(),
                "Dense: backward without matching forward");
  // With a fused activation, first pull the gradient back through it using
  // the cached post-activation output y: relu' = [y > 0], sigmoid' = y(1-y),
  // tanh' = 1 - y^2.
  Matrix g_act;
  const Matrix* g = &grad_output;
  if (act_ != kernels::Activation::kNone) {
    g_act = grad_output;
    double* gd = g_act.ptr();
    const double* y = cached_output_.ptr();
    for (std::size_t i = 0; i < g_act.size(); ++i) {
      switch (act_) {
        case kernels::Activation::kRelu:
          gd[i] = y[i] > 0.0 ? gd[i] : 0.0;
          break;
        case kernels::Activation::kSigmoid:
          gd[i] *= y[i] * (1.0 - y[i]);
          break;
        case kernels::Activation::kTanh:
          gd[i] *= 1.0 - y[i] * y[i];
          break;
        case kernels::Activation::kNone:
          break;
      }
    }
    g = &g_act;
  }
  // dW += x^T g ; db += column sums of g ; dInput = g W^T — all without
  // materializing any transpose.
  dw_.reshape(w_.value.rows(), w_.value.cols());
  dw_.fill(0.0);
  kernels::matmul_tn_into(cached_input_, *g, dw_);
  kernels::axpy(dw_.size(), 1.0, dw_.ptr(), w_.grad.ptr());
  kernels::col_sums_add(g->rows(), g->cols(), g->ptr(), g->cols(),
                        b_.grad.ptr());
  Matrix dx(g->rows(), w_.value.rows());
  kernels::matmul_nt_into(*g, w_.value, dx);
  return dx;
}

}  // namespace coda::nn
