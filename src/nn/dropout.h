// Inverted dropout (the paper's LSTM/DNN architectures interleave dropout
// layers, Section IV-C2/3).
#pragma once

#include "src/nn/layer.h"
#include "src/util/random.h"

namespace coda::nn {

/// Drops activations with probability `rate` during training, scaling the
/// survivors by 1/(1-rate); identity at inference.
class Dropout final : public Layer {
 public:
  explicit Dropout(double rate, std::uint64_t seed = 42);

  Matrix forward(const Matrix& input, bool training) override;
  Matrix backward(const Matrix& grad_output) override;
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Dropout>(*this);
  }
  std::string name() const override { return "dropout"; }

  double rate() const { return rate_; }

 private:
  double rate_;
  Rng rng_;
  Matrix mask_;  // per-element keep scale of the last training forward
  bool last_was_training_ = false;
};

}  // namespace coda::nn
