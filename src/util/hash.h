// Stable non-cryptographic hashing (FNV-1a, 64-bit).
//
// Used for dataset fingerprints, DARR record keys, and the delta codec's
// rolling block signatures. Stability across runs/platforms matters (records
// are shared between simulated nodes), so we do not use std::hash.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace coda {

/// Incremental FNV-1a 64-bit hasher.
class Fnv1a {
 public:
  static constexpr std::uint64_t kOffset = 1469598103934665603ULL;
  static constexpr std::uint64_t kPrime = 1099511628211ULL;

  Fnv1a& update(const void* data, std::size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      state_ ^= bytes[i];
      state_ *= kPrime;
    }
    return *this;
  }

  Fnv1a& update(std::string_view s) { return update(s.data(), s.size()); }

  template <typename T>
  Fnv1a& update_value(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    return update(&value, sizeof(value));
  }

  std::uint64_t digest() const { return state_; }

 private:
  std::uint64_t state_ = kOffset;
};

/// One-shot hash of a byte range.
inline std::uint64_t fnv1a(const void* data, std::size_t size) {
  return Fnv1a().update(data, size).digest();
}

/// One-shot hash of a string.
inline std::uint64_t fnv1a(std::string_view s) {
  return Fnv1a().update(s).digest();
}

/// Hash of a vector of doubles (bit patterns, stable for identical data).
inline std::uint64_t fnv1a(const std::vector<double>& v) {
  return fnv1a(v.data(), v.size() * sizeof(double));
}

/// Renders a 64-bit hash as fixed-width hex, for use in record keys.
std::string hash_to_hex(std::uint64_t h);

}  // namespace coda
