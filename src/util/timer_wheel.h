// Deadline scheduler backing the evaluation engine's non-blocking claim
// continuations: instead of parking a worker thread in a sleep/poll loop
// while a peer holds a DARR claim, the engine re-queues the blocked
// candidate here and the workers keep scoring other candidates. One
// dedicated timer thread fires callbacks when their deadline is due
// (typically re-submitting a task to a ThreadPool).
//
// Executor observability (ISSUE 9): every wheel writes the process-wide
// timerwheel.* metric family —
//   timerwheel.scheduled         counter    entries scheduled
//   timerwheel.fired             counter    callbacks fired
//   timerwheel.outstanding       gauge      scheduled, not yet fired
//   timerwheel.fire_lag_seconds  histogram  fire time − deadline per entry
// The destructor subtracts entries it drops (never-due callbacks), so a
// cleanly drained process leaves timerwheel.outstanding at zero.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "src/obs/metrics.h"

namespace coda {

/// A minimal one-thread timer: schedule(delay, fn) runs fn on the timer
/// thread once the delay elapses. Entries with equal deadlines fire in
/// schedule order. Callbacks should be cheap (hand off to a pool); the
/// destructor drops entries that have not come due yet, so owners must
/// drain their work before destroying the wheel.
class TimerWheel {
 public:
  TimerWheel();
  ~TimerWheel();

  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;

  /// Schedules `fn` to run `delay` from now on the timer thread.
  void schedule(std::chrono::milliseconds delay, std::function<void()> fn);

  /// Entries scheduled but not yet fired.
  std::size_t pending() const;

 private:
  struct Entry {
    std::chrono::steady_clock::time_point due;
    std::uint64_t seq = 0;  ///< tie-break: equal deadlines fire in order
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.due != b.due) return a.due > b.due;
      return a.seq > b.seq;
    }
  };

  void loop();

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::priority_queue<Entry, std::vector<Entry>, Later> entries_;
  std::uint64_t next_seq_ = 0;
  bool stopping_ = false;
  obs::Counter* scheduled_metric_ = nullptr;
  obs::Counter* fired_metric_ = nullptr;
  obs::Gauge* outstanding_metric_ = nullptr;
  obs::Histogram* fire_lag_metric_ = nullptr;
  std::thread thread_;
};

}  // namespace coda
