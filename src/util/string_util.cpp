#include "src/util/string_util.h"

#include <cctype>
#include <cstdio>

namespace coda {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string join(const std::vector<std::string>& parts,
                 std::string_view delim) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(delim);
    out.append(parts[i]);
  }
  return out;
}

std::string trim(std::string_view s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return std::string(s.substr(begin, end - begin));
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string format_double(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string format_bytes(std::size_t bytes) {
  const char* units[] = {"B", "KiB", "MiB", "GiB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 3) {
    value /= 1024.0;
    ++unit;
  }
  char buf[64];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%zu B", bytes);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", value, units[unit]);
  }
  return buf;
}

}  // namespace coda
