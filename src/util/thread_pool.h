// Fixed-size worker pool used by the graph evaluator to score candidate
// pipelines in parallel (Section III: "Different predictive models can be run
// in parallel").
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace coda {

/// A minimal thread pool. Tasks are std::function<void()>; submit() returns a
/// future for the task's result. The destructor drains outstanding tasks.
class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Schedules `fn(args...)` and returns a future for its result.
  template <typename F, typename... Args>
  auto submit(F&& fn, Args&&... args)
      -> std::future<std::invoke_result_t<F, Args...>> {
    using R = std::invoke_result_t<F, Args...>;
    auto task = std::make_shared<std::packaged_task<R()>>(
        [f = std::forward<F>(fn),
         ... a = std::forward<Args>(args)]() mutable { return f(a...); });
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after stop");
      tasks_.push([task]() { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace coda
