// Fixed-size worker pool used by the graph evaluator to score candidate
// pipelines in parallel (Section III: "Different predictive models can be run
// in parallel").
//
// Executor observability (ISSUE 9): every pool writes the process-wide
// pool.* metric family —
//   pool.tasks               counter    tasks submitted
//   pool.queue_depth         gauge      tasks enqueued, not yet started
//   pool.queue_wait_seconds  histogram  submit → start latency per task
//   pool.task_seconds        histogram  task run time
//   pool.utilization         gauge      busy / (workers × lifetime),
//                                       finalized at pool destruction
// Per-pool busy time also feeds the utilization() accessor, readable
// while the pool is live.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "src/obs/metrics.h"

namespace coda {

/// A minimal thread pool. Tasks are std::function<void()>; submit() returns a
/// future for the task's result. The destructor drains outstanding tasks.
class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Schedules `fn(args...)` and returns a future for its result.
  template <typename F, typename... Args>
  auto submit(F&& fn, Args&&... args)
      -> std::future<std::invoke_result_t<F, Args...>> {
    using R = std::invoke_result_t<F, Args...>;
    auto task = std::make_shared<std::packaged_task<R()>>(
        [f = std::forward<F>(fn),
         ... a = std::forward<Args>(args)]() mutable { return f(a...); });
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after stop");
      tasks_.push(Task{[task]() { (*task)(); },
                       std::chrono::steady_clock::now()});
      // Under the queue lock so the matching worker-side decrement (which
      // requires popping under this lock first) can never run ahead of it.
      tasks_metric_->inc();
      queue_depth_metric_->add(1.0);
    }
    cv_.notify_one();
    return result;
  }

  std::size_t size() const { return workers_.size(); }

  /// Fraction of worker capacity spent running tasks so far: summed task
  /// run time / (workers × pool lifetime), clamped to [0, 1]. Approximate
  /// while tasks are in flight (their partial run time is not yet
  /// counted); exact once the pool has drained.
  double utilization() const;

 private:
  struct Task {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued;
  };

  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<Task> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;

  const std::chrono::steady_clock::time_point created_ =
      std::chrono::steady_clock::now();
  std::atomic<std::uint64_t> busy_ns_{0};
  obs::Counter* tasks_metric_ = nullptr;
  obs::Gauge* queue_depth_metric_ = nullptr;
  obs::Histogram* queue_wait_metric_ = nullptr;
  obs::Histogram* task_seconds_metric_ = nullptr;
};

}  // namespace coda
