// Small string helpers shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace coda {

/// Splits `s` on `delim`; empty fields are preserved.
std::vector<std::string> split(std::string_view s, char delim);

/// Joins `parts` with `delim`.
std::string join(const std::vector<std::string>& parts,
                 std::string_view delim);

/// Removes leading/trailing ASCII whitespace.
std::string trim(std::string_view s);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Formats a double with `precision` significant decimal digits.
std::string format_double(double value, int precision = 4);

/// Renders a byte count human-readably ("1.5 KiB", "3.2 MiB").
std::string format_bytes(std::size_t bytes);

}  // namespace coda
