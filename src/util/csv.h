// CSV reading/writing for examples and bench artifact dumps.
#pragma once

#include <string>
#include <vector>

namespace coda {

/// A parsed CSV table: header row (possibly empty) plus string cells.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
};

/// Parses CSV text. When `has_header` is true the first row becomes the
/// header. Quoted fields with embedded commas/quotes are supported.
CsvTable parse_csv(const std::string& text, bool has_header);

/// Renders a table back to CSV text, quoting fields where needed.
std::string to_csv(const CsvTable& table);

/// Reads and parses a CSV file; throws coda::Error on I/O failure.
CsvTable read_csv_file(const std::string& path, bool has_header);

/// Writes a table as a CSV file; throws coda::Error on I/O failure.
void write_csv_file(const std::string& path, const CsvTable& table);

}  // namespace coda
