// Deterministic random number generation.
//
// Every stochastic component in the library takes an explicit seed (or an
// Rng&) so experiments are reproducible run-to-run. The engine is a
// SplitMix64-seeded xoshiro-style generator wrapped behind std::mt19937_64
// compatible helpers.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace coda {

/// Deterministic pseudo-random generator with convenience draws.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 42) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double uniform() { return uniform(0.0, 1.0); }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    std::uniform_real_distribution<double> d(lo, hi);
    return d(engine_);
  }

  /// Standard normal draw.
  double normal() { return normal(0.0, 1.0); }

  /// Normal draw with the given mean and standard deviation.
  double normal(double mean, double stddev) {
    std::normal_distribution<double> d(mean, stddev);
    return d(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    std::uniform_int_distribution<std::int64_t> d(lo, hi);
    return d(engine_);
  }

  /// Bernoulli draw with success probability p.
  bool bernoulli(double p) {
    std::bernoulli_distribution d(p);
    return d(engine_);
  }

  /// Index in [0, n). n must be > 0.
  std::size_t index(std::size_t n) {
    return static_cast<std::size_t>(
        uniform_int(0, static_cast<std::int64_t>(n) - 1));
  }

  /// Fisher-Yates shuffle of `items`.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::swap(items[i - 1], items[index(i)]);
    }
  }

  /// A random permutation of [0, n).
  std::vector<std::size_t> permutation(std::size_t n) {
    std::vector<std::size_t> p(n);
    for (std::size_t i = 0; i < n; ++i) p[i] = i;
    shuffle(p);
    return p;
  }

  /// Derives an independent child generator; useful for giving each parallel
  /// task its own stream without sharing mutable state.
  Rng split() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace coda
