#include "src/util/thread_pool.h"

#include <algorithm>

namespace coda {

namespace {

double seconds_between(std::chrono::steady_clock::time_point a,
                       std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  // Process-wide families (shared by every pool in the process, like the
  // retry.* and net.fault.* families): registering here pins the metric
  // references for lock-free hot-path writes and makes the names appear
  // in exports even for runs where the pool stays idle.
  tasks_metric_ = &obs::counter("pool.tasks");
  queue_depth_metric_ = &obs::gauge("pool.queue_depth");
  queue_wait_metric_ = &obs::histogram("pool.queue_wait_seconds");
  task_seconds_metric_ = &obs::histogram("pool.task_seconds");
  obs::gauge("pool.utilization");
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
  // The workers have drained: the busy accounting is final. The gauge
  // carries the most recently destroyed pool's lifetime utilization.
  obs::gauge("pool.utilization").set(utilization());
}

double ThreadPool::utilization() const {
  const double lifetime =
      seconds_between(created_, std::chrono::steady_clock::now());
  if (lifetime <= 0.0 || workers_.empty()) return 0.0;
  const double busy =
      static_cast<double>(busy_ns_.load(std::memory_order_relaxed)) * 1e-9;
  return std::clamp(busy / (lifetime * static_cast<double>(workers_.size())),
                    0.0, 1.0);
}

void ThreadPool::worker_loop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ and drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    const auto start = std::chrono::steady_clock::now();
    queue_depth_metric_->add(-1.0);
    queue_wait_metric_->observe(seconds_between(task.enqueued, start));
    task.fn();
    const auto end = std::chrono::steady_clock::now();
    task_seconds_metric_->observe(seconds_between(start, end));
    busy_ns_.fetch_add(
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
                .count()),
        std::memory_order_relaxed);
  }
}

}  // namespace coda
