#include "src/util/thread_pool.h"

#include <algorithm>

namespace coda {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ and drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

}  // namespace coda
