#include "src/util/hash.h"

#include <array>

namespace coda {

std::string hash_to_hex(std::uint64_t h) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::array<char, 16> out{};
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[h & 0xF];
    h >>= 4;
  }
  return std::string(out.data(), out.size());
}

}  // namespace coda
