#include "src/util/timer_wheel.h"

namespace coda {

TimerWheel::TimerWheel() : thread_([this] { loop(); }) {}

TimerWheel::~TimerWheel() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

void TimerWheel::schedule(std::chrono::milliseconds delay,
                          std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.push(Entry{std::chrono::steady_clock::now() + delay, next_seq_++,
                        std::move(fn)});
  }
  cv_.notify_all();
}

std::size_t TimerWheel::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void TimerWheel::loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (stopping_) return;
    if (entries_.empty()) {
      cv_.wait(lock, [this] { return stopping_ || !entries_.empty(); });
      continue;
    }
    const auto due = entries_.top().due;
    if (std::chrono::steady_clock::now() < due) {
      // Woken early by a new (possibly earlier) entry or by shutdown; the
      // loop re-reads the top entry either way.
      cv_.wait_until(lock, due);
      continue;
    }
    // The const_cast is safe: the entry is popped immediately after the
    // move, so the queue never observes the moved-from state.
    auto fn = std::move(const_cast<Entry&>(entries_.top()).fn);
    entries_.pop();
    lock.unlock();
    fn();
    lock.lock();
  }
}

}  // namespace coda
