#include "src/util/timer_wheel.h"

namespace coda {

TimerWheel::TimerWheel()
    : scheduled_metric_(&obs::counter("timerwheel.scheduled")),
      fired_metric_(&obs::counter("timerwheel.fired")),
      outstanding_metric_(&obs::gauge("timerwheel.outstanding")),
      fire_lag_metric_(&obs::histogram("timerwheel.fire_lag_seconds")),
      thread_([this] { loop(); }) {}

TimerWheel::~TimerWheel() {
  std::size_t dropped = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    dropped = entries_.size();
  }
  cv_.notify_all();
  thread_.join();
  // Entries that never came due are dropped by contract (see the class
  // comment); keep the outstanding gauge consistent with that.
  if (dropped > 0) {
    outstanding_metric_->add(-static_cast<double>(dropped));
  }
}

void TimerWheel::schedule(std::chrono::milliseconds delay,
                          std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.push(Entry{std::chrono::steady_clock::now() + delay, next_seq_++,
                        std::move(fn)});
    // Under the queue lock so the fire-side decrement (which pops under
    // this lock first) can never run ahead of it.
    scheduled_metric_->inc();
    outstanding_metric_->add(1.0);
  }
  cv_.notify_all();
}

std::size_t TimerWheel::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void TimerWheel::loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (stopping_) return;
    if (entries_.empty()) {
      cv_.wait(lock, [this] { return stopping_ || !entries_.empty(); });
      continue;
    }
    const auto due = entries_.top().due;
    if (std::chrono::steady_clock::now() < due) {
      // Woken early by a new (possibly earlier) entry or by shutdown; the
      // loop re-reads the top entry either way.
      cv_.wait_until(lock, due);
      continue;
    }
    // The const_cast is safe: the entry is popped immediately after the
    // move, so the queue never observes the moved-from state.
    auto fn = std::move(const_cast<Entry&>(entries_.top()).fn);
    entries_.pop();
    fired_metric_->inc();
    outstanding_metric_->add(-1.0);
    fire_lag_metric_->observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - due)
            .count());
    lock.unlock();
    fn();
    lock.lock();
  }
}

}  // namespace coda
