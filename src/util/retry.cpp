#include "src/util/retry.h"

#include <algorithm>
#include <cmath>

namespace coda {

namespace {

// SplitMix64 finalizer: a stateless, platform-stable mix used for jitter
// draws (std::hash is not stable across runs; Rng would need shared state).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

// Uniform double in [0, 1) from a hash (53 mantissa bits).
double unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

void RetryPolicy::validate() const {
  require(max_attempts >= 1, "RetryPolicy: max_attempts must be >= 1");
  require(initial_backoff_seconds > 0.0,
          "RetryPolicy: initial backoff must be positive");
  require(multiplier >= 1.0, "RetryPolicy: multiplier must be >= 1");
  require(max_backoff_seconds >= initial_backoff_seconds,
          "RetryPolicy: max backoff below the initial backoff");
  require(jitter_fraction >= 0.0 && jitter_fraction <= multiplier - 1.0,
          "RetryPolicy: jitter_fraction must lie in [0, multiplier - 1] "
          "(keeps the backoff sequence monotone)");
  require(deadline_seconds > 0.0, "RetryPolicy: deadline must be positive");
}

double RetryPolicy::backoff_seconds(std::size_t retry_index) const {
  const double base =
      initial_backoff_seconds *
      std::pow(multiplier, static_cast<double>(retry_index));
  const double jitter =
      1.0 + jitter_fraction * unit(mix64(seed ^ (retry_index + 1)));
  return std::min(base * jitter, max_backoff_seconds);
}

BackoffSchedule::BackoffSchedule(const RetryPolicy& policy) : policy_(policy) {
  policy_.validate();
}

std::optional<double> BackoffSchedule::next() {
  if (retry_ + 1 >= policy_.max_attempts) return std::nullopt;
  const double wait = policy_.backoff_seconds(retry_);
  if (waited_ + wait > policy_.deadline_seconds) return std::nullopt;
  ++retry_;
  waited_ += wait;
  return wait;
}

}  // namespace coda
