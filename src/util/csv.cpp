#include "src/util/csv.h"

#include <fstream>
#include <sstream>

#include "src/util/error.h"

namespace coda {
namespace {

// Parses one CSV record starting at `pos`; advances past the trailing
// newline. Handles quoted fields per RFC 4180.
std::vector<std::string> parse_record(const std::string& text,
                                      std::size_t& pos) {
  std::vector<std::string> fields;
  std::string field;
  bool quoted = false;
  while (pos < text.size()) {
    const char c = text[pos];
    if (quoted) {
      if (c == '"') {
        if (pos + 1 < text.size() && text[pos + 1] == '"') {
          field.push_back('"');
          pos += 2;
        } else {
          quoted = false;
          ++pos;
        }
      } else {
        field.push_back(c);
        ++pos;
      }
    } else if (c == '"') {
      quoted = true;
      ++pos;
    } else if (c == ',') {
      fields.push_back(std::move(field));
      field.clear();
      ++pos;
    } else if (c == '\r') {
      ++pos;
    } else if (c == '\n') {
      ++pos;
      break;
    } else {
      field.push_back(c);
      ++pos;
    }
  }
  fields.push_back(std::move(field));
  return fields;
}

bool needs_quoting(const std::string& field) {
  return field.find_first_of(",\"\n\r") != std::string::npos;
}

void append_field(std::string& out, const std::string& field) {
  if (!needs_quoting(field)) {
    out += field;
    return;
  }
  out.push_back('"');
  for (const char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
}

}  // namespace

CsvTable parse_csv(const std::string& text, bool has_header) {
  CsvTable table;
  std::size_t pos = 0;
  bool first = true;
  while (pos < text.size()) {
    auto record = parse_record(text, pos);
    if (record.size() == 1 && record[0].empty()) continue;  // blank line
    if (first && has_header) {
      table.header = std::move(record);
    } else {
      table.rows.push_back(std::move(record));
    }
    first = false;
  }
  return table;
}

std::string to_csv(const CsvTable& table) {
  std::string out;
  auto emit_row = [&out](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out.push_back(',');
      append_field(out, row[i]);
    }
    out.push_back('\n');
  };
  if (!table.header.empty()) emit_row(table.header);
  for (const auto& row : table.rows) emit_row(row);
  return out;
}

CsvTable read_csv_file(const std::string& path, bool has_header) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("read_csv_file: cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_csv(ss.str(), has_header);
}

void write_csv_file(const std::string& path, const CsvTable& table) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw Error("write_csv_file: cannot open " + path);
  out << to_csv(table);
  if (!out) throw Error("write_csv_file: write failed for " + path);
}

}  // namespace coda
