// Minimal binary serialization for objects shipped across the simulated
// network (Section III): versioned data objects, deltas, DARR records.
//
// The format is little-endian, length-prefixed, and symmetric between
// ByteWriter and ByteReader. It is intentionally simple — the interesting
// behaviour (delta encoding, version negotiation) lives above it.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "src/util/error.h"

namespace coda {

using Bytes = std::vector<std::uint8_t>;

/// Appends primitive values, strings and blobs to a byte buffer.
class ByteWriter {
 public:
  void write_u8(std::uint8_t v) { buffer_.push_back(v); }

  void write_u32(std::uint32_t v) { write_raw(&v, sizeof(v)); }

  void write_u64(std::uint64_t v) { write_raw(&v, sizeof(v)); }

  void write_i64(std::int64_t v) { write_raw(&v, sizeof(v)); }

  void write_double(double v) { write_raw(&v, sizeof(v)); }

  void write_bool(bool v) { write_u8(v ? 1 : 0); }

  void write_string(const std::string& s) {
    write_u64(s.size());
    write_raw(s.data(), s.size());
  }

  void write_bytes(const Bytes& b) {
    write_u64(b.size());
    write_raw(b.data(), b.size());
  }

  void write_doubles(const std::vector<double>& v) {
    write_u64(v.size());
    write_raw(v.data(), v.size() * sizeof(double));
  }

  const Bytes& buffer() const { return buffer_; }
  Bytes take() { return std::move(buffer_); }

 private:
  void write_raw(const void* data, std::size_t size) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    buffer_.insert(buffer_.end(), p, p + size);
  }

  Bytes buffer_;
};

/// Reads values written by ByteWriter; throws DecodeError on truncation.
class ByteReader {
 public:
  explicit ByteReader(const Bytes& buffer) : buffer_(buffer) {}

  std::uint8_t read_u8() {
    check(1);
    return buffer_[pos_++];
  }

  std::uint32_t read_u32() { return read_raw<std::uint32_t>(); }
  std::uint64_t read_u64() { return read_raw<std::uint64_t>(); }
  std::int64_t read_i64() { return read_raw<std::int64_t>(); }
  double read_double() { return read_raw<double>(); }
  bool read_bool() { return read_u8() != 0; }

  std::string read_string() {
    const std::uint64_t n = read_u64();
    check(n);
    std::string s(reinterpret_cast<const char*>(buffer_.data() + pos_),
                  static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return s;
  }

  Bytes read_bytes() {
    const std::uint64_t n = read_u64();
    check(n);
    Bytes b(buffer_.begin() + static_cast<std::ptrdiff_t>(pos_),
            buffer_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += static_cast<std::size_t>(n);
    return b;
  }

  std::vector<double> read_doubles() {
    const std::uint64_t n = read_u64();
    // Guard the multiplication: an adversarial n would overflow n * 8 and
    // slip past check() into a huge allocation / out-of-bounds copy.
    if (n > remaining() / sizeof(double)) {
      throw DecodeError("ByteReader: truncated buffer");
    }
    std::vector<double> v(static_cast<std::size_t>(n));
    std::memcpy(v.data(), buffer_.data() + pos_,
                static_cast<std::size_t>(n) * sizeof(double));
    pos_ += static_cast<std::size_t>(n) * sizeof(double);
    return v;
  }

  bool exhausted() const { return pos_ == buffer_.size(); }
  std::size_t position() const { return pos_; }
  std::size_t remaining() const { return buffer_.size() - pos_; }

 private:
  template <typename T>
  T read_raw() {
    check(sizeof(T));
    T v;
    std::memcpy(&v, buffer_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  void check(std::uint64_t need) const {
    // Compare against the remaining span (pos_ + need could overflow for a
    // corrupted length prefix near UINT64_MAX).
    if (need > buffer_.size() - pos_) {
      throw DecodeError("ByteReader: truncated buffer");
    }
  }

  const Bytes& buffer_;
  std::size_t pos_ = 0;
};

}  // namespace coda
