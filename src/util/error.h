// Error types shared by the whole library.
//
// All recoverable failures surface as exceptions derived from coda::Error so
// callers can catch the library's failures without catching unrelated
// std::runtime_error instances.
#pragma once

#include <stdexcept>
#include <string>

namespace coda {

/// Base class for every error thrown by the coda library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller violated an API precondition (bad argument, wrong shape, ...).
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// An operation was invoked in the wrong state (e.g. predict before fit).
class StateError : public Error {
 public:
  explicit StateError(const std::string& what) : Error(what) {}
};

/// A lookup failed (unknown parameter, missing object, absent record, ...).
class NotFound : public Error {
 public:
  explicit NotFound(const std::string& what) : Error(what) {}
};

/// A serialized payload could not be decoded.
class DecodeError : public Error {
 public:
  explicit DecodeError(const std::string& what) : Error(what) {}
};

/// A network operation failed after exhausting its retry budget (the peer
/// is partitioned, crashed, or the link dropped every attempt). Callers
/// either propagate it (the operation's effect is unknown) or degrade to a
/// local fallback — see DESIGN.md §9 for the degradation matrix.
class NetworkError : public Error {
 public:
  explicit NetworkError(const std::string& what) : Error(what) {}
};

/// Throws InvalidArgument with `message` unless `condition` holds.
inline void require(bool condition, const std::string& message) {
  if (!condition) throw InvalidArgument(message);
}

/// Throws StateError with `message` unless `condition` holds.
inline void require_state(bool condition, const std::string& message) {
  if (!condition) throw StateError(message);
}

}  // namespace coda
