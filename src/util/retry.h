// Shared retry policy for every client of the distributed tier (DarrClient,
// ClientCache pulls, HomeDataStore pushes, RemoteModelService calls,
// ReplicatedStore sync): capped exponential backoff with deterministic
// jitter and a per-operation deadline. Backoff waits are expressed in
// *simulated* seconds — callers charge them to the SimNet logical clock
// (never a wall-clock sleep), so chaos runs are fast and reproducible.
#pragma once

#include <cstdint>
#include <optional>

#include "src/util/error.h"

namespace coda {

/// Retry tuning. The jitter draw for attempt k depends only on (seed, k),
/// so two policies with identical fields produce identical backoff
/// sequences — a property the chaos tests rely on for reproducibility.
struct RetryPolicy {
  /// Total attempts, including the first (1 = no retries).
  std::size_t max_attempts = 6;
  double initial_backoff_seconds = 0.05;
  /// Geometric growth factor between consecutive backoffs.
  double multiplier = 2.0;
  /// Ceiling applied after jitter; the backoff sequence is monotone
  /// non-decreasing and never exceeds this.
  double max_backoff_seconds = 1.0;
  /// Jitter stretches each backoff by a factor in [1, 1 + jitter_fraction].
  /// Must be <= multiplier - 1 so the sequence stays monotone.
  double jitter_fraction = 0.1;
  /// Budget for the *sum* of backoff waits of one operation (simulated
  /// seconds); a retry that would overshoot it is not taken.
  double deadline_seconds = 8.0;
  std::uint64_t seed = 42;

  /// Throws InvalidArgument on out-of-range fields.
  void validate() const;

  /// The (jittered, capped) backoff before retry `retry_index` (0-based).
  double backoff_seconds(std::size_t retry_index) const;
};

/// Iterator over one operation's backoff waits. next() yields the wait
/// before the following attempt, or nullopt when the attempt or deadline
/// budget is exhausted — at which point the caller gives up (and typically
/// throws NetworkError or degrades).
class BackoffSchedule {
 public:
  explicit BackoffSchedule(const RetryPolicy& policy);

  std::optional<double> next();

  /// Retries handed out so far (not counting the initial attempt).
  std::size_t retries() const { return retry_; }
  /// Total backoff handed out so far, in simulated seconds.
  double waited_seconds() const { return waited_; }

 private:
  RetryPolicy policy_;
  std::size_t retry_ = 0;
  double waited_ = 0.0;
};

}  // namespace coda
