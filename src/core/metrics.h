// Model scoring (Section III / IV-B): regression — MSE, RMSE, MAE, MAPE, R²,
// MSLE, RMSLE, median absolute error, median absolute log error;
// classification — accuracy, precision, recall, F1, AUC.
#pragma once

#include <string>
#include <vector>

namespace coda {

enum class Metric {
  // Regression (lower is better unless noted).
  kMse,
  kRmse,
  kMae,
  kMape,          ///< mean absolute percentage error
  kR2,            ///< coefficient of determination (higher is better)
  kMsle,          ///< mean squared log error
  kRmsle,         ///< root mean squared log error
  kMedianAe,      ///< median absolute error
  kMedianAle,     ///< median absolute log error
  // Binary classification on scores in [0,1] (higher is better).
  kAccuracy,
  kPrecision,
  kRecall,
  kF1,
  kAuc,
};

/// Metric display name ("rmse", "f1", ...). Stable; used in DARR keys.
std::string metric_name(Metric m);

/// Parses a metric name; throws NotFound for unknown names.
Metric metric_from_name(const std::string& name);

/// True for metrics where larger scores are better (R², classification).
bool higher_is_better(Metric m);

/// Scores predictions against ground truth. For classification metrics,
/// `y_pred` holds scores in [0,1]; labels are thresholded at 0.5 (AUC uses
/// the raw scores). Throws InvalidArgument on size mismatch or empty input.
double score(Metric m, const std::vector<double>& y_true,
             const std::vector<double>& y_pred);

// Individual metric functions (exposed for direct use and tests).
double mse(const std::vector<double>& y_true, const std::vector<double>& y_pred);
double rmse(const std::vector<double>& y_true, const std::vector<double>& y_pred);
double mae(const std::vector<double>& y_true, const std::vector<double>& y_pred);
double mape(const std::vector<double>& y_true, const std::vector<double>& y_pred);
double r2(const std::vector<double>& y_true, const std::vector<double>& y_pred);
double msle(const std::vector<double>& y_true, const std::vector<double>& y_pred);
double rmsle(const std::vector<double>& y_true, const std::vector<double>& y_pred);
double median_absolute_error(const std::vector<double>& y_true,
                             const std::vector<double>& y_pred);
double median_absolute_log_error(const std::vector<double>& y_true,
                                 const std::vector<double>& y_pred);
double accuracy(const std::vector<double>& y_true,
                const std::vector<double>& y_score);
double precision(const std::vector<double>& y_true,
                 const std::vector<double>& y_score);
double recall(const std::vector<double>& y_true,
              const std::vector<double>& y_score);
double f1_score(const std::vector<double>& y_true,
                const std::vector<double>& y_score);
double auc(const std::vector<double>& y_true,
           const std::vector<double>& y_score);

}  // namespace coda
