#include "src/core/param.h"

#include <sstream>

namespace coda {

std::string param_value_to_string(const ParamValue& v) {
  struct Visitor {
    std::string operator()(std::int64_t x) const { return std::to_string(x); }
    std::string operator()(double x) const {
      std::ostringstream ss;
      ss << x;
      return ss.str();
    }
    std::string operator()(bool x) const { return x ? "true" : "false"; }
    std::string operator()(const std::string& x) const { return x; }
  };
  return std::visit(Visitor{}, v);
}

const ParamValue& ParamMap::get(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) {
    throw NotFound("ParamMap: unknown parameter '" + key + "'");
  }
  return it->second;
}

std::int64_t ParamMap::get_int(const std::string& key) const {
  const auto& v = get(key);
  if (const auto* p = std::get_if<std::int64_t>(&v)) return *p;
  throw InvalidArgument("ParamMap: parameter '" + key + "' is not an int");
}

double ParamMap::get_double(const std::string& key) const {
  const auto& v = get(key);
  if (const auto* p = std::get_if<double>(&v)) return *p;
  if (const auto* p = std::get_if<std::int64_t>(&v)) {
    return static_cast<double>(*p);
  }
  throw InvalidArgument("ParamMap: parameter '" + key + "' is not a double");
}

bool ParamMap::get_bool(const std::string& key) const {
  const auto& v = get(key);
  if (const auto* p = std::get_if<bool>(&v)) return *p;
  throw InvalidArgument("ParamMap: parameter '" + key + "' is not a bool");
}

const std::string& ParamMap::get_string(const std::string& key) const {
  const auto& v = get(key);
  if (const auto* p = std::get_if<std::string>(&v)) return *p;
  throw InvalidArgument("ParamMap: parameter '" + key + "' is not a string");
}

std::optional<ParamValue> ParamMap::try_get(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

void ParamMap::merge(const ParamMap& other) {
  for (const auto& [k, v] : other) values_[k] = v;
}

std::string ParamMap::to_string() const {
  std::string out;
  for (const auto& [k, v] : values_) {
    if (!out.empty()) out += ",";
    out += k + "=" + param_value_to_string(v);
  }
  return out;
}

std::optional<std::pair<std::string, std::string>> split_node_param(
    const std::string& key) {
  const auto pos = key.find("__");
  if (pos == std::string::npos || pos == 0 || pos + 2 >= key.size()) {
    return std::nullopt;
  }
  return std::make_pair(key.substr(0, pos), key.substr(pos + 2));
}

ParamGrid& ParamGrid::add(const std::string& key,
                          std::vector<ParamValue> values) {
  require(!values.empty(), "ParamGrid: axis '" + key + "' has no values");
  axes_.emplace_back(key, std::move(values));
  return *this;
}

std::size_t ParamGrid::n_assignments() const {
  std::size_t n = 1;
  for (const auto& [key, values] : axes_) n *= values.size();
  return n;
}

std::vector<ParamMap> ParamGrid::expand() const {
  std::vector<ParamMap> out;
  out.emplace_back();
  for (const auto& [key, values] : axes_) {
    std::vector<ParamMap> next;
    next.reserve(out.size() * values.size());
    for (const auto& base : out) {
      for (const auto& value : values) {
        ParamMap m = base;
        m.set(key, value);
        next.push_back(std::move(m));
      }
    }
    out = std::move(next);
  }
  return out;
}

}  // namespace coda
