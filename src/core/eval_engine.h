// The unified evaluation engine behind GraphEvaluator and
// ts::ForecastGraphEvaluator.
//
// Three jobs, shared by every graph family:
//
//  1. Scheduling — each candidate x fold becomes one task on the shared
//     ThreadPool, so a slow candidate's folds spread across workers instead
//     of serializing at the tail of the run (Section III: "different
//     predictive models can be run in parallel").
//  2. Shared-prefix memoization — candidates that share a fitted
//     transformer prefix (same scaler/selector chain, or the same
//     scaler+windower pair for forecast paths) fit it once per fold; the
//     outputs live in a byte-budgeted LRU (PrefixCache) for the duration of
//     one run. SystemDS and MLCask report the same reuse as the dominant
//     win for enumerated-pipeline workloads.
//  3. Cooperation — the DARR lookup/claim/store protocol (Fig 2) runs
//     through one CooperativeFetch call site. A claim-blocked candidate is
//     re-queued on a TimerWheel instead of parking a worker in a
//     sleep/poll loop, so threads keep scoring other candidates while a
//     peer works.
//
// Metric families: eval.prefix_cache.{hit,miss,evicted,bytes},
// eval.claim.requeued, plus the pre-existing evaluator.candidate.* /
// darr.lookup.* / cv.fold.seconds families.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/core/evaluator.h"

namespace coda {

/// Byte-budgeted LRU memo for fitted-prefix outputs, shared by every task
/// of one EvalEngine::run. Values are type-erased shared_ptrs (each graph
/// family stores its own entry type); keys embed the fold index and the
/// canonical prefix spec, so identical prefixes collide on purpose and
/// different params/folds never do. A budget of 0 disables the cache.
///
/// Entries are only inserted after the prefix fit fully succeeded — a
/// candidate failing mid-fit can never poison the memo for its siblings.
class PrefixCache {
 public:
  explicit PrefixCache(std::size_t byte_budget);

  bool enabled() const { return budget_ > 0; }
  std::size_t budget() const { return budget_; }

  /// Returns the entry for `key` (marking it most-recently used), or null.
  /// Counts a hit or miss; disabled caches return null without counting.
  std::shared_ptr<const void> lookup(const std::string& key);

  /// Typed convenience wrapper over lookup().
  template <typename T>
  std::shared_ptr<const T> get(const std::string& key) {
    return std::static_pointer_cast<const T>(lookup(key));
  }

  /// Inserts `value` accounting `bytes` against the budget, evicting
  /// least-recently-used entries to make room. Entries larger than the
  /// whole budget (and all inserts on a disabled cache) are dropped.
  void insert(const std::string& key, std::shared_ptr<const void> value,
              std::size_t bytes);

  std::size_t bytes() const;
  std::size_t entries() const;
  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::uint64_t evictions() const;

 private:
  struct Entry {
    std::shared_ptr<const void> value;
    std::size_t bytes = 0;
    std::list<std::string>::iterator lru_it;
  };

  void evict_locked(std::size_t needed);

  const std::size_t budget_;
  mutable std::mutex mutex_;
  std::size_t bytes_ = 0;
  std::list<std::string> lru_;  ///< front = most recently used
  std::map<std::string, Entry> entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

/// The engine's single call site against ResultCache: every lookup, claim,
/// store and abandon the evaluators issue goes through here, so the
/// ResultCache contract documented in evaluator.h is exercised from exactly
/// one place (and instrumented once). All methods are no-ops / misses when
/// no cache is configured.
///
/// Degradation (DESIGN.md §9): a cache that throws NetworkError (its retry
/// budget is spent — the DARR node is partitioned or down) flips this fetch
/// into degraded mode for the rest of the run: sweeps and polls report
/// misses, claims are granted locally, publishes and abandons are dropped.
/// The search then completes as a purely local evaluation — never a wrong
/// result, never a hang — and each swallowed call counts in
/// `eval.darr_degraded`. Repository-side claims we still hold expire via
/// TTL, so peers reclaim the work.
class CooperativeFetch {
 public:
  explicit CooperativeFetch(ResultCache* cache);

  bool cooperative() const { return cache_ != nullptr; }

  /// True once a NetworkError has switched the run to local-only mode.
  bool degraded() const { return degraded_.load(std::memory_order_acquire); }

  /// Batched initial sweep over every candidate key (one fetch_many —
  /// a single round-trip on networked caches). Returns one slot per key.
  std::vector<std::optional<CachedResult>> fetch_many(
      const std::vector<std::string>& keys);

  /// Single-key re-poll while a peer holds the claim.
  std::optional<CachedResult> fetch(const std::string& key);

  /// Claims `key`; false = a peer holds a live claim.
  bool claim(const std::string& key);

  /// Publishes a locally computed result (releases the claim).
  void put(const std::string& key, const CachedResult& result);

  /// Releases the claim without publishing (local failure).
  void release(const std::string& key);

 private:
  /// Marks the run degraded and counts the swallowed call.
  void degrade(const char* op);
  bool usable() const { return cache_ != nullptr && !degraded(); }

  ResultCache* cache_;
  std::atomic<bool> degraded_{false};
};

/// The engine. One instance is cheap (it owns no threads); each run() spins
/// up its ThreadPool + TimerWheel and tears them down when the report is
/// complete.
class EvalEngine {
 public:
  explicit EvalEngine(EvalOptions options);

  /// One schedulable candidate, supplied by a graph-family evaluator.
  struct Candidate {
    /// Canonical pipeline spec (report + CachedResult explanation).
    std::string spec;
    /// Cooperative cache key; empty = no cooperation for this candidate.
    std::string key;
    /// Scores fold `fold` (0-based), using `prefixes` to reuse shared
    /// fitted-prefix outputs. Thrown exceptions mark the candidate failed
    /// without aborting the run.
    std::function<double(std::size_t fold, PrefixCache& prefixes)> score_fold;
  };

  /// Evaluates every candidate over `n_folds` folds and selects the best
  /// non-failed one. Throws StateError when every candidate failed.
  EvaluationReport run(std::vector<Candidate> candidates,
                       std::size_t n_folds) const;

  const EvalOptions& options() const { return options_; }

 private:
  EvalOptions options_;
};

}  // namespace coda
