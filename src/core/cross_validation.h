// Cross-validation strategies (Section IV-B / IV-D): K-fold (Fig 4),
// train/test split, Monte-Carlo, and TimeSeriesSlidingSplit (Fig 12) —
// sliding train/validation windows separated by a buffer so test data never
// leaks information into training.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace coda {

/// One train/test index split.
struct Split {
  std::vector<std::size_t> train;
  std::vector<std::size_t> test;
};

/// Produces train/test splits over n samples.
class CrossValidator {
 public:
  virtual ~CrossValidator() = default;

  /// All splits for a dataset of `n_samples`. Throws InvalidArgument when
  /// n_samples is too small for the strategy's configuration.
  virtual std::vector<Split> splits(std::size_t n_samples) const = 0;

  /// Stable description ("kfold(k=5,seed=42)") used in DARR record keys.
  virtual std::string spec() const = 0;

  virtual std::unique_ptr<CrossValidator> clone() const = 0;
};

/// K-fold CV (Fig 4): the data is randomly partitioned into K equal folds
/// without replacement; each fold is the test set once.
class KFold final : public CrossValidator {
 public:
  explicit KFold(std::size_t k, bool shuffle = true, std::uint64_t seed = 42);

  std::vector<Split> splits(std::size_t n_samples) const override;
  std::string spec() const override;
  std::unique_ptr<CrossValidator> clone() const override {
    return std::make_unique<KFold>(*this);
  }

  std::size_t k() const { return k_; }

 private:
  std::size_t k_;
  bool shuffle_;
  std::uint64_t seed_;
};

/// A single random train/test split ("Train-Test Split" alternative,
/// Section IV-B).
class HoldOut final : public CrossValidator {
 public:
  explicit HoldOut(double train_fraction = 0.75, std::uint64_t seed = 42);

  std::vector<Split> splits(std::size_t n_samples) const override;
  std::string spec() const override;
  std::unique_ptr<CrossValidator> clone() const override {
    return std::make_unique<HoldOut>(*this);
  }

 private:
  double train_fraction_;
  std::uint64_t seed_;
};

/// Monte-Carlo CV (Section IV-B): `iterations` independent random splits.
class MonteCarloCV final : public CrossValidator {
 public:
  MonteCarloCV(std::size_t iterations, double train_fraction = 0.75,
               std::uint64_t seed = 42);

  std::vector<Split> splits(std::size_t n_samples) const override;
  std::string spec() const override;
  std::unique_ptr<CrossValidator> clone() const override {
    return std::make_unique<MonteCarloCV>(*this);
  }

 private:
  std::size_t iterations_;
  double train_fraction_;
  std::uint64_t seed_;
};

/// TimeSeriesSlidingSplit (Fig 12): k windows sliding forward in time; each
/// split trains on [start, start+train_size) and validates on
/// [start+train_size+buffer, ...+val_size). Training indices never reach
/// past the buffer into validation, and both windows move forward together.
class TimeSeriesSlidingSplit final : public CrossValidator {
 public:
  TimeSeriesSlidingSplit(std::size_t k, std::size_t train_size,
                         std::size_t val_size, std::size_t buffer = 0);

  std::vector<Split> splits(std::size_t n_samples) const override;
  std::string spec() const override;
  std::unique_ptr<CrossValidator> clone() const override {
    return std::make_unique<TimeSeriesSlidingSplit>(*this);
  }

  std::size_t k() const { return k_; }
  std::size_t train_size() const { return train_size_; }
  std::size_t val_size() const { return val_size_; }
  std::size_t buffer() const { return buffer_; }

 private:
  std::size_t k_;
  std::size_t train_size_;
  std::size_t val_size_;
  std::size_t buffer_;
};

}  // namespace coda
