#include "src/core/eval_engine.h"

#include "src/core/search_scheduler.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <deque>
#include <utility>

#include "src/obs/obs.h"
#include "src/util/stopwatch.h"
#include "src/util/thread_pool.h"
#include "src/util/timer_wheel.h"

namespace coda {

namespace {

double seconds_between(std::chrono::steady_clock::time_point from,
                       std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

}  // namespace

// ---------------------------------------------------------------------------
// PrefixCache

PrefixCache::PrefixCache(std::size_t byte_budget) : budget_(byte_budget) {}

std::shared_ptr<const void> PrefixCache::lookup(const std::string& key) {
  if (!enabled()) return nullptr;
  // One region around the whole lookup (hit and miss paths alike): the
  // profiler's determinism contract forbids regions inside miss-gated
  // branches, whose interleaving is racy under a parallel pool.
  PROF_SCOPE("eval.prefix.lookup");
  static auto& hit = obs::counter("eval.prefix_cache.hit");
  static auto& miss = obs::counter("eval.prefix_cache.miss");
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    miss.inc();
    obs::prefix_event(/*hit=*/false);  // charged to the ambient candidate
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);  // move to front (MRU)
  ++hits_;
  hit.inc();
  obs::prefix_event(/*hit=*/true);
  return it->second.value;
}

void PrefixCache::insert(const std::string& key,
                         std::shared_ptr<const void> value, std::size_t bytes) {
  if (!enabled() || bytes > budget_) return;
  static auto& bytes_gauge = obs::gauge("eval.prefix_cache.bytes");
  std::lock_guard<std::mutex> lock(mutex_);
  if (entries_.count(key) != 0) return;  // a sibling task won the race
  evict_locked(bytes);
  lru_.push_front(key);
  entries_[key] = Entry{std::move(value), bytes, lru_.begin()};
  bytes_ += bytes;
  bytes_gauge.set(static_cast<double>(bytes_));
}

void PrefixCache::evict_locked(std::size_t needed) {
  static auto& evicted = obs::counter("eval.prefix_cache.evicted");
  while (bytes_ + needed > budget_ && !lru_.empty()) {
    auto it = entries_.find(lru_.back());
    bytes_ -= it->second.bytes;
    entries_.erase(it);
    lru_.pop_back();
    ++evictions_;
    evicted.inc();
  }
}

std::size_t PrefixCache::bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_;
}

std::size_t PrefixCache::entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::uint64_t PrefixCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t PrefixCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

std::uint64_t PrefixCache::evictions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evictions_;
}

// ---------------------------------------------------------------------------
// CooperativeFetch

CooperativeFetch::CooperativeFetch(ResultCache* cache) : cache_(cache) {}

void CooperativeFetch::degrade(const char* op) {
  static auto& darr_degraded = obs::counter("eval.darr_degraded");
  const bool first = !degraded_.exchange(true, std::memory_order_acq_rel);
  darr_degraded.inc();
  obs::counter(std::string("eval.darr_degraded.") + op).inc();
  obs::event(obs::Severity::kError, "eval.darr_degraded", {{"op", op}});
  if (first) {
    // Sticky local-only degradation is the most consequential silent state
    // change in the system — offer the flight-recorder tail when asked.
    obs::flight_dump_if_env(
        std::string("CooperativeFetch degraded to local-only (op: ") + op +
        ")");
  }
}

std::vector<std::optional<CachedResult>> CooperativeFetch::fetch_many(
    const std::vector<std::string>& keys) {
  if (!usable()) {
    return std::vector<std::optional<CachedResult>>(keys.size());
  }
  std::vector<std::optional<CachedResult>> results;
  try {
    results = cache_->fetch_many(keys);
  } catch (const NetworkError&) {
    degrade("fetch_many");
    return std::vector<std::optional<CachedResult>>(keys.size());
  }
  std::uint64_t found = 0;
  for (const auto& r : results) {
    if (r.has_value()) ++found;
  }
  if (found > 0) obs::count_scoped("darr.lookup.hit", found);
  if (found < results.size()) {
    obs::count_scoped("darr.lookup.miss", results.size() - found);
  }
  return results;
}

std::optional<CachedResult> CooperativeFetch::fetch(const std::string& key) {
  if (!usable()) return std::nullopt;
  std::optional<CachedResult> result;
  try {
    result = cache_->fetch(key);
  } catch (const NetworkError&) {
    degrade("fetch");
    return std::nullopt;
  }
  obs::count_scoped(result.has_value() ? "darr.lookup.hit"
                                       : "darr.lookup.miss");
  return result;
}

bool CooperativeFetch::claim(const std::string& key) {
  if (!usable()) return true;
  try {
    return cache_->claim(key);
  } catch (const NetworkError&) {
    // Claim unreachable -> claim it "locally": computing without the global
    // claim risks duplicated work across the partition, never wrong results.
    degrade("claim");
    return true;
  }
}

void CooperativeFetch::put(const std::string& key,
                           const CachedResult& result) {
  if (!usable()) return;
  try {
    cache_->put(key, result);
  } catch (const NetworkError&) {
    degrade("put");
  }
}

void CooperativeFetch::release(const std::string& key) {
  if (!usable()) return;
  try {
    cache_->release(key);
  } catch (const NetworkError&) {
    degrade("release");
  }
}

// ---------------------------------------------------------------------------
// EvalEngine

EvalEngine::EvalEngine(EvalOptions options) : options_(std::move(options)) {
  // Register every family the engine can emit, so exported snapshots (and
  // the --metrics-json smoke checks) list them even for runs that never
  // increment one — e.g. darr.* without a cache, prefix_cache.* when
  // memoization is disabled.
  obs::counter("darr.lookup.hit");
  obs::counter("darr.lookup.miss");
  obs::counter("evaluator.candidate.local");
  obs::counter("evaluator.candidate.cached");
  obs::counter("evaluator.candidate.failed");
  obs::counter("evaluator.candidate.deferred");
  obs::counter("eval.prefix_cache.hit");
  obs::counter("eval.prefix_cache.miss");
  obs::counter("eval.prefix_cache.evicted");
  obs::counter("eval.claim.requeued");
  obs::counter("eval.plan.compiled");
  obs::counter("eval.plan.fused_stages");
  obs::counter("eval.plan.fallback");
  obs::counter("eval.darr_degraded");
  obs::counter("eval.search.rungs");
  obs::counter("eval.search.pruned");
  obs::counter("eval.search.fold_evals_saved");
  obs::counter("eval.candidate.folds");
  obs::counter("eval.candidate.cached");
  obs::counter("obs.trace.recorded");
  obs::counter("obs.trace.dropped");
  obs::counter("prof.scopes");
  obs::counter("pool.tasks");
  obs::counter("timerwheel.scheduled");
  obs::counter("timerwheel.fired");
  obs::gauge("eval.prefix_cache.bytes");
  obs::gauge("pool.queue_depth");
  obs::gauge("pool.utilization");
  obs::gauge("timerwheel.outstanding");
  obs::histogram("evaluator.candidate.seconds");
  obs::histogram("evaluator.claim.wait_seconds");
  obs::histogram("cv.fold.seconds");
  obs::histogram("pool.queue_wait_seconds");
  obs::histogram("pool.task_seconds");
  obs::histogram("timerwheel.fire_lag_seconds");
}

EvaluationReport EvalEngine::run(std::vector<Candidate> candidates,
                                 std::size_t n_folds) const {
  require(!candidates.empty(), "EvalEngine: no candidates");
  require(n_folds > 0, "EvalEngine: need at least one fold");
  if (options_.search.strategy == SearchStrategy::kHalving) {
    return detail::run_halving_search(options_, candidates, n_folds);
  }
  obs::ScopedSpan span("evaluator.evaluate");
  PROF_SCOPE("eval.run");
  // Captured for pool/wheel tasks: thread-local parenting does not cross a
  // submit(), so every task re-installs the root context (and the node
  // attribution of the simulated client driving this run) via ContextScope.
  const obs::TraceContext root_ctx = span.context();
  const std::string root_node = obs::Tracer::current_node();
  Stopwatch total_timer;

  // Candidate-level events write through count_scoped()/observe_scoped():
  // the process-wide family plus (when this run is driven by a simulated
  // client under obs::NodeScope / ContextScope) that node's MetricScope,
  // so fleet telemetry can attribute work to individual clients. These
  // fire once per candidate/fold, not per row — the name lookup is cheap
  // relative to the work they account.

  const std::size_t n = candidates.size();
  EvaluationReport report;
  report.metric = options_.metric;
  report.fold_evaluations_planned = n * n_folds;
  report.results.resize(n);
  for (std::size_t i = 0; i < n; ++i) report.results[i].spec = candidates[i].spec;

  auto serve = [&](std::size_t i, const CachedResult& hit,
                   double eval_seconds) {
    CandidateResult& out = report.results[i];
    out.mean_score = hit.mean_score;
    out.stddev = hit.stddev;
    out.fold_scores = hit.fold_scores;
    out.from_cache = true;
    out.eval_seconds = eval_seconds;
    obs::count_scoped("evaluator.candidate.cached");
    obs::CandidateCosts::instance().record_cached(candidates[i].spec);
  };

  // Initial sweep: one batched lookup answers every already-shared
  // candidate before any scheduling machinery spins up.
  CooperativeFetch coop(options_.cache);
  std::vector<char> done(n, 0);
  std::size_t remaining = n;
  if (coop.cooperative()) {
    PROF_SCOPE("eval.sweep");
    std::vector<std::string> keys;
    keys.reserve(n);
    for (const auto& c : candidates) keys.push_back(c.key);
    Stopwatch sweep_timer;
    const auto hits = coop.fetch_many(keys);
    const double per_key = sweep_timer.elapsed_seconds() / static_cast<double>(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (!hits[i].has_value()) continue;
      serve(i, *hits[i], per_key);
      done[i] = 1;
      --remaining;
    }
  }

  std::atomic<std::size_t> local_fold_evals{0};
  if (remaining > 0) {
    PrefixCache prefixes(options_.prefix_cache_bytes);

    // Per-candidate scheduling state. Fields other than the atomics are
    // guarded by `mutex` except where a field is only touched by the
    // candidate's own attempt chain (attempts for one candidate never
    // overlap: each is scheduled by its predecessor's requeue).
    struct Slot {
      std::chrono::steady_clock::time_point start{};
      bool started = false;
      bool holds_token = false;   ///< occupies a slot of the claim window
      bool deferred = false;      ///< currently claim-blocked, on the wheel
      bool was_deferred = false;  ///< deferred at least once (counter guard)
      bool deadline_set = false;
      std::chrono::steady_clock::time_point block_start{};
      std::chrono::steady_clock::time_point deadline{};
      double claim_wait = 0.0;
      std::vector<double> fold_scores;
      std::atomic<std::size_t> folds_left{0};
      std::atomic<bool> failed{false};
      std::string failure_message;
    };
    std::vector<std::unique_ptr<Slot>> slots(n);
    for (std::size_t i = 0; i < n; ++i) slots[i] = std::make_unique<Slot>();

    std::mutex mutex;
    std::condition_variable done_cv;
    std::size_t pending = remaining;
    // Candidates that are unfinished and not claim-blocked — i.e. local work
    // still exists. A blocked candidate's local-compute deadline only starts
    // once this reaches zero: while peers make progress AND we still have
    // other candidates to score, waiting costs nothing (no worker parks).
    std::size_t unblocked = remaining;
    std::deque<std::size_t> next_queue;
    for (std::size_t i = 0; i < n; ++i) {
      if (!done[i]) next_queue.push_back(i);
    }

    // Declared before the pool/wheel (and assigned after) so they are
    // destroyed only once the pool has joined its workers — a worker is
    // always inside one of these callables while it runs engine work.
    std::function<void()> dispatch_locked;
    std::function<void(std::size_t)> complete;
    std::function<void(std::size_t)> attempt;
    std::function<void(std::size_t, std::size_t)> run_fold;
    std::function<void(std::size_t)> finalize;
    // Claim window: at most pool.size() candidates are claimed-but-
    // unfinished at once, so a client claims work just before it has the
    // capacity to score it — claiming the whole graph up front would
    // starve cooperating peers.
    std::size_t tokens = 0;

    ThreadPool pool(options_.threads);
    tokens = pool.size();
    TimerWheel wheel;

    // Pops queued candidates while window slots are free. Caller holds
    // `mutex`.
    dispatch_locked = [&] {
      while (tokens > 0 && !next_queue.empty()) {
        const std::size_t i = next_queue.front();
        next_queue.pop_front();
        --tokens;
        slots[i]->holds_token = true;
        pool.submit([&attempt, i, root_ctx, root_node] {
          obs::ContextScope trace_scope(root_ctx, root_node);
          attempt(i);
        });
      }
    };

    // Candidate finished (scored, served, or failed): release its window
    // slot, let queued work in, wake the driver when everything is done.
    complete = [&](std::size_t i) {
      Slot& s = *slots[i];
      std::lock_guard<std::mutex> lock(mutex);
      --pending;
      if (!s.deferred) --unblocked;  // deferred candidates already left
      if (s.holds_token) {
        s.holds_token = false;
        ++tokens;
      }
      dispatch_locked();
      done_cv.notify_all();
    };

    finalize = [&](std::size_t i) {
      Slot& s = *slots[i];
      CandidateResult& out = report.results[i];
      out.claim_wait_seconds = s.claim_wait;
      out.eval_seconds =
          seconds_between(s.start, std::chrono::steady_clock::now()) -
          s.claim_wait;
      if (out.eval_seconds < 0.0) out.eval_seconds = 0.0;
      if (s.failed.load(std::memory_order_acquire)) {
        out.failed = true;
        {
          std::lock_guard<std::mutex> lock(mutex);
          out.failure_message = s.failure_message;
        }
        obs::count_scoped("evaluator.candidate.failed");
        coop.release(candidates[i].key);
      } else {
        double sum = 0.0;
        for (const double sc : s.fold_scores) sum += sc;
        out.mean_score = sum / static_cast<double>(s.fold_scores.size());
        double var = 0.0;
        for (const double sc : s.fold_scores) {
          const double d = sc - out.mean_score;
          var += d * d;
        }
        out.stddev =
            std::sqrt(var / static_cast<double>(s.fold_scores.size()));
        out.fold_scores = s.fold_scores;
        obs::count_scoped("evaluator.candidate.local");
        obs::observe_scoped("evaluator.candidate.seconds", out.eval_seconds);
        if (coop.cooperative()) {
          coop.put(candidates[i].key,
                       CachedResult{out.mean_score, out.stddev,
                                    out.fold_scores, candidates[i].spec});
        }
      }
      complete(i);
    };

    run_fold = [&](std::size_t i, std::size_t fold) {
      Slot& s = *slots[i];
      // A sibling fold already failed the candidate: skip the work, just
      // balance the countdown.
      if (!s.failed.load(std::memory_order_acquire)) {
        PROF_SCOPE("eval.fold");
        obs::ScopedSpan fold_span("evaluator.fold");
        fold_span.tag("path", candidates[i].spec);
        fold_span.tag("fold", std::to_string(fold));
        // Ambient attribution: PrefixCache hits/misses inside score_fold
        // are charged to this candidate's cost row.
        obs::CandidateScope cost_scope(candidates[i].spec);
        try {
          Stopwatch fold_timer;
          const double sc = candidates[i].score_fold(fold, prefixes);
          s.fold_scores[fold] = sc;
          const double elapsed = fold_timer.elapsed_seconds();
          obs::observe_scoped("cv.fold.seconds", elapsed);
          obs::CandidateCosts::instance().record_fold(candidates[i].spec,
                                                      elapsed);
          local_fold_evals.fetch_add(1, std::memory_order_acq_rel);
        } catch (const std::exception& e) {
          bool expected = false;
          if (s.failed.compare_exchange_strong(expected, true,
                                               std::memory_order_acq_rel)) {
            std::lock_guard<std::mutex> lock(mutex);
            s.failure_message = e.what();
          }
        }
      }
      if (s.folds_left.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        finalize(i);
      }
    };

    attempt = [&](std::size_t i) {
      Slot& s = *slots[i];
      const auto now = std::chrono::steady_clock::now();
      bool retry;
      {
        std::lock_guard<std::mutex> lock(mutex);
        if (!s.started) {
          s.started = true;
          s.start = now;
        }
        retry = s.deferred;
      }
      // One span per scheduling attempt, parented under the run's root via
      // the ContextScope the submitting task installed. Cooperative calls
      // and fold tasks all descend from it.
      PROF_SCOPE("eval.candidate");
      obs::ScopedSpan attempt_span("evaluator.candidate");
      attempt_span.tag("path", candidates[i].spec);
      if (retry) attempt_span.tag("retry", "1");
      const std::string& key = candidates[i].key;
      if (coop.cooperative()) {
        if (retry) {
          // A peer held the claim when we last looked; its result may have
          // landed since.
          if (auto hit = coop.fetch(key)) {
            const double wait = seconds_between(
                s.block_start, std::chrono::steady_clock::now());
            {
              std::lock_guard<std::mutex> lock(mutex);
              s.claim_wait = wait;
            }
            obs::observe_scoped("evaluator.claim.wait_seconds", wait);
            obs::CandidateCosts::instance().record_claim_wait(
                candidates[i].spec, wait);
            report.results[i].claim_wait_seconds = wait;
            serve(i, *hit, /*eval_seconds=*/0.0);
            complete(i);
            return;
          }
        }
        if (!coop.claim(key)) {
          // Claim-blocked: park the candidate on the timer wheel and let the
          // workers keep scoring other candidates. No thread sleeps here.
          std::lock_guard<std::mutex> lock(mutex);
          const auto block_now = std::chrono::steady_clock::now();
          if (!s.deferred) {
            s.deferred = true;
            s.block_start = block_now;
            --unblocked;
            if (s.holds_token) {
              s.holds_token = false;
              ++tokens;
              dispatch_locked();
            }
            if (!s.was_deferred) {
              s.was_deferred = true;
              obs::count_scoped("evaluator.candidate.deferred");
            }
          }
          const bool expired = s.deadline_set && block_now >= s.deadline;
          if (!expired) {
            if (!s.deadline_set && unblocked == 0) {
              // No local work left to hide the wait behind — start the
              // local-compute deadline (peer-failure safety net).
              s.deadline_set = true;
              s.deadline = block_now + std::chrono::milliseconds(
                                           options_.claim_wait_ms);
            }
            obs::count_scoped("eval.claim.requeued");
            wheel.schedule(
                std::chrono::milliseconds(options_.claim_poll_ms),
                [&pool, &attempt, i, root_ctx, root_node] {
                  pool.submit([&attempt, i, root_ctx, root_node] {
                    obs::ContextScope trace_scope(root_ctx, root_node);
                    attempt(i);
                  });
                });
            return;
          }
          // Deadline expired without a stored result or a winnable claim:
          // the peer presumably died. Compute locally without the claim so
          // the search always completes.
        }
        {
          std::lock_guard<std::mutex> lock(mutex);
          if (s.deferred) {
            s.deferred = false;
            ++unblocked;
            s.claim_wait = seconds_between(s.block_start,
                                           std::chrono::steady_clock::now());
          }
        }
        if (s.claim_wait > 0.0) {
          obs::observe_scoped("evaluator.claim.wait_seconds", s.claim_wait);
          obs::CandidateCosts::instance().record_claim_wait(
              candidates[i].spec, s.claim_wait);
        }
      }
      // Fan out: one task per fold, so a slow candidate's folds spread over
      // the workers instead of serializing at the tail of the run. Fold
      // tasks parent under this attempt's span (which may close first —
      // parent links are ids, not lifetimes).
      const obs::TraceContext fold_ctx = attempt_span.context();
      s.fold_scores.assign(n_folds, 0.0);
      s.folds_left.store(n_folds, std::memory_order_release);
      for (std::size_t fold = 0; fold < n_folds; ++fold) {
        pool.submit([&run_fold, i, fold, fold_ctx, root_node] {
          obs::ContextScope trace_scope(fold_ctx, root_node);
          run_fold(i, fold);
        });
      }
    };

    {
      std::lock_guard<std::mutex> lock(mutex);
      dispatch_locked();
    }
    {
      std::unique_lock<std::mutex> lock(mutex);
      done_cv.wait(lock, [&] { return pending == 0; });
    }
    // `wheel` (destroyed first) can no longer re-submit into `pool`; with
    // pending == 0 neither holds engine work.
  }

  // Pick the best non-failed candidate (order-stable: earlier candidate
  // wins ties, exactly like the pre-engine evaluators).
  const bool maximize = higher_is_better(options_.metric);
  bool found = false;
  for (std::size_t i = 0; i < report.results.size(); ++i) {
    const auto& r = report.results[i];
    report.total_claim_wait_seconds += r.claim_wait_seconds;
    if (r.failed) continue;
    if (r.from_cache) {
      ++report.served_from_cache;
    } else {
      ++report.evaluated_locally;
    }
    if (!found) {
      report.best_index = i;
      found = true;
      continue;
    }
    const auto& best = report.results[report.best_index];
    const bool better = maximize ? r.mean_score > best.mean_score
                                 : r.mean_score < best.mean_score;
    if (better) report.best_index = i;
  }
  require_state(found, "EvalEngine: every candidate failed");
  report.fold_evaluations = local_fold_evals.load(std::memory_order_acquire);
  report.total_seconds = total_timer.elapsed_seconds();
  return report;
}

}  // namespace coda
