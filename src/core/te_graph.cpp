#include "src/core/te_graph.h"

#include <algorithm>

namespace coda {

StageOption make_option(std::unique_ptr<Component> prototype,
                        std::vector<std::string> tags) {
  return make_option(std::move(prototype), ParamGrid{}, std::move(tags));
}

StageOption make_option(std::unique_ptr<Component> prototype, ParamGrid grid,
                        std::vector<std::string> tags) {
  require(prototype != nullptr, "make_option: null prototype");
  StageOption o;
  o.prototype = std::move(prototype);
  o.grid = std::move(grid);
  o.tags = std::move(tags);
  return o;
}

TEGraph& TEGraph::add_stage(std::string stage_name,
                            std::vector<StageOption> options) {
  require(!options.empty(),
          "TEGraph: stage '" + stage_name + "' has no options");
  for (const auto& opt : options) {
    require(opt.prototype != nullptr, "TEGraph: null option prototype");
    const std::string& name = opt.prototype->name();
    for (const auto& stage : stages_) {
      for (const auto& existing : stage.options) {
        require(existing.prototype->name() != name,
                "TEGraph: duplicate node name '" + name +
                    "' (names must be unique so node__param addressing is "
                    "unambiguous)");
      }
    }
    // Also unique within the new stage itself.
    std::size_t count = 0;
    for (const auto& other : options) {
      if (other.prototype->name() == name) ++count;
    }
    require(count == 1, "TEGraph: duplicate node name '" + name +
                            "' within stage '" + stage_name + "'");
  }
  Stage s;
  s.name = std::move(stage_name);
  s.allowed_next.resize(options.size());
  s.options = std::move(options);
  stages_.push_back(std::move(s));
  return *this;
}

namespace {

std::vector<StageOption> wrap_components(
    std::vector<std::unique_ptr<Transformer>> ts) {
  std::vector<StageOption> options;
  options.reserve(ts.size());
  for (auto& t : ts) options.push_back(make_option(std::move(t)));
  return options;
}

std::vector<StageOption> wrap_estimators(
    std::vector<std::unique_ptr<Estimator>> es) {
  std::vector<StageOption> options;
  options.reserve(es.size());
  for (auto& e : es) options.push_back(make_option(std::move(e)));
  return options;
}

}  // namespace

TEGraph& TEGraph::add_feature_scalers(
    std::vector<std::unique_ptr<Transformer>> ts) {
  return add_stage("feature_scaling", wrap_components(std::move(ts)));
}

TEGraph& TEGraph::add_feature_selectors(
    std::vector<std::unique_ptr<Transformer>> ts) {
  return add_stage("feature_selection", wrap_components(std::move(ts)));
}

TEGraph& TEGraph::add_preprocessors(
    std::string stage_name, std::vector<std::unique_ptr<Transformer>> ts) {
  return add_stage(std::move(stage_name), wrap_components(std::move(ts)));
}

TEGraph& TEGraph::add_regression_models(
    std::vector<std::unique_ptr<Estimator>> es) {
  return add_stage("regression_model", wrap_estimators(std::move(es)));
}

TEGraph& TEGraph::add_classification_models(
    std::vector<std::unique_ptr<Estimator>> es) {
  return add_stage("classification_model", wrap_estimators(std::move(es)));
}

const std::string& TEGraph::stage_name(std::size_t i) const {
  require(i < stages_.size(), "TEGraph: stage index out of range");
  return stages_[i].name;
}

std::size_t TEGraph::n_options(std::size_t stage) const {
  require(stage < stages_.size(), "TEGraph: stage index out of range");
  return stages_[stage].options.size();
}

const StageOption& TEGraph::option(std::size_t stage,
                                   std::size_t index) const {
  require(stage < stages_.size(), "TEGraph: stage index out of range");
  require(index < stages_[stage].options.size(),
          "TEGraph: option index out of range");
  return stages_[stage].options[index];
}

std::pair<std::size_t, std::size_t> TEGraph::find_option(
    const std::string& node_name) const {
  for (std::size_t s = 0; s < stages_.size(); ++s) {
    for (std::size_t o = 0; o < stages_[s].options.size(); ++o) {
      if (stages_[s].options[o].prototype->name() == node_name) {
        return {s, o};
      }
    }
  }
  throw NotFound("TEGraph: no option named '" + node_name + "'");
}

TEGraph& TEGraph::restrict_edges(std::size_t from_stage,
                                 const std::string& from_option,
                                 const std::vector<std::string>& allowed_next) {
  require(from_stage + 1 < stages_.size(),
          "TEGraph::restrict_edges: stage has no successor");
  const auto [s, o] = find_option(from_option);
  require(s == from_stage, "TEGraph::restrict_edges: option '" + from_option +
                               "' is not in stage " +
                               std::to_string(from_stage));
  std::set<std::size_t> allowed;
  for (const auto& name : allowed_next) {
    const auto [ts, to] = find_option(name);
    require(ts == from_stage + 1,
            "TEGraph::restrict_edges: '" + name +
                "' is not in the successor stage");
    allowed.insert(to);
  }
  stages_[from_stage].allowed_next[o] = std::move(allowed);
  return *this;
}

TEGraph& TEGraph::connect_tags(std::size_t from_stage,
                               const std::string& from_tag,
                               const std::string& to_tag) {
  require(from_stage + 1 < stages_.size(),
          "TEGraph::connect_tags: stage has no successor");
  const auto& next = stages_[from_stage + 1];
  std::set<std::size_t> targets;
  for (std::size_t o = 0; o < next.options.size(); ++o) {
    const auto& tags = next.options[o].tags;
    if (std::find(tags.begin(), tags.end(), to_tag) != tags.end()) {
      targets.insert(o);
    }
  }
  require(!targets.empty(), "TEGraph::connect_tags: no successor option "
                            "tagged '" + to_tag + "'");
  bool any_source = false;
  auto& stage = stages_[from_stage];
  for (std::size_t o = 0; o < stage.options.size(); ++o) {
    const auto& tags = stage.options[o].tags;
    if (std::find(tags.begin(), tags.end(), from_tag) == tags.end()) continue;
    any_source = true;
    if (!stage.allowed_next[o]) {
      stage.allowed_next[o] = targets;
    } else {
      stage.allowed_next[o]->insert(targets.begin(), targets.end());
    }
  }
  require(any_source, "TEGraph::connect_tags: no option tagged '" + from_tag +
                          "' in stage " + std::to_string(from_stage));
  return *this;
}

bool TEGraph::edge_allowed(std::size_t stage, std::size_t a,
                           std::size_t b) const {
  require(stage + 1 < stages_.size(), "TEGraph::edge_allowed: no successor");
  require(a < stages_[stage].options.size() &&
              b < stages_[stage + 1].options.size(),
          "TEGraph::edge_allowed: option index out of range");
  const auto& allowed = stages_[stage].allowed_next[a];
  return !allowed || allowed->count(b) != 0;
}

void TEGraph::validate_shape() const {
  require(stages_.size() >= 1, "TEGraph: graph has no stages");
  for (std::size_t s = 0; s + 1 < stages_.size(); ++s) {
    for (const auto& opt : stages_[s].options) {
      require(dynamic_cast<const Transformer*>(opt.prototype.get()) != nullptr,
              "TEGraph: non-terminal option '" + opt.prototype->name() +
                  "' must be a Transformer");
    }
  }
  for (const auto& opt : stages_.back().options) {
    require(dynamic_cast<const Estimator*>(opt.prototype.get()) != nullptr,
            "TEGraph: terminal option '" + opt.prototype->name() +
                "' must be an Estimator");
  }
}

void TEGraph::enumerate_rec(std::size_t stage, Path& prefix,
                            std::vector<Path>& out) const {
  if (stage == stages_.size()) {
    out.push_back(prefix);
    return;
  }
  for (std::size_t o = 0; o < stages_[stage].options.size(); ++o) {
    if (stage > 0 && !edge_allowed(stage - 1, prefix.back(), o)) continue;
    prefix.push_back(o);
    enumerate_rec(stage + 1, prefix, out);
    prefix.pop_back();
  }
}

std::vector<TEGraph::Path> TEGraph::enumerate_paths() const {
  validate_shape();
  std::vector<Path> out;
  Path prefix;
  enumerate_rec(0, prefix, out);
  return out;
}

std::size_t TEGraph::count_paths() const { return enumerate_paths().size(); }

std::vector<TEGraph::Candidate> TEGraph::enumerate_candidates() const {
  std::vector<Candidate> out;
  for (const auto& path : enumerate_paths()) {
    // Cartesian product of the chosen options' parameter grids, with keys
    // prefixed into node__param form. Earlier stages vary slowest (the
    // per-stage expansion appends later stages' assignments innermost),
    // which — together with the stage-major path order — yields the
    // prefix-major candidate order documented in the header.
    std::vector<ParamMap> assignments;
    assignments.emplace_back();
    for (std::size_t s = 0; s < path.size(); ++s) {
      const auto& opt = stages_[s].options[path[s]];
      if (opt.grid.empty()) continue;
      const std::string prefix = opt.prototype->name() + "__";
      std::vector<ParamMap> next;
      for (const auto& base : assignments) {
        for (const auto& grid_assignment : opt.grid.expand()) {
          ParamMap merged = base;
          for (const auto& [k, v] : grid_assignment) {
            merged.set(prefix + k, v);
          }
          next.push_back(std::move(merged));
        }
      }
      assignments = std::move(next);
    }
    for (auto& params : assignments) {
      out.push_back(Candidate{path, std::move(params)});
    }
  }
  return out;
}

Pipeline TEGraph::instantiate(const Candidate& candidate) const {
  validate_shape();
  require(candidate.path.size() == stages_.size(),
          "TEGraph::instantiate: path length != stage count");
  Pipeline p;
  for (std::size_t s = 0; s < stages_.size(); ++s) {
    require(candidate.path[s] < stages_[s].options.size(),
            "TEGraph::instantiate: option index out of range");
    if (s > 0) {
      require(edge_allowed(s - 1, candidate.path[s - 1], candidate.path[s]),
              "TEGraph::instantiate: path uses a restricted edge");
    }
    const auto& proto = *stages_[s].options[candidate.path[s]].prototype;
    if (s + 1 < stages_.size()) {
      p.add_transformer(
          dynamic_cast<const Transformer&>(proto).clone_transformer());
    } else {
      p.set_estimator(
          dynamic_cast<const Estimator&>(proto).clone_estimator());
    }
  }
  p.set_params(candidate.params);
  return p;
}

std::string TEGraph::candidate_spec(const Candidate& candidate) const {
  return instantiate(candidate).spec();
}

std::string TEGraph::to_dot(const std::string& graph_name) const {
  std::string out = "digraph " + graph_name + " {\n  rankdir=LR;\n";
  out += "  input [shape=ellipse];\n";
  for (std::size_t s = 0; s < stages_.size(); ++s) {
    out += "  subgraph cluster_" + std::to_string(s) + " {\n";
    out += "    label=\"" + stages_[s].name + "\";\n";
    for (const auto& opt : stages_[s].options) {
      out += "    \"" + opt.prototype->name() + "\" [shape=box];\n";
    }
    out += "  }\n";
  }
  if (!stages_.empty()) {
    for (const auto& opt : stages_[0].options) {
      out += "  input -> \"" + opt.prototype->name() + "\";\n";
    }
  }
  for (std::size_t s = 0; s + 1 < stages_.size(); ++s) {
    for (std::size_t a = 0; a < stages_[s].options.size(); ++a) {
      for (std::size_t b = 0; b < stages_[s + 1].options.size(); ++b) {
        if (!edge_allowed(s, a, b)) continue;
        out += "  \"" + stages_[s].options[a].prototype->name() + "\" -> \"" +
               stages_[s + 1].options[b].prototype->name() + "\";\n";
      }
    }
  }
  out += "}\n";
  return out;
}

}  // namespace coda
