// Graph evaluation (Section IV-B): every candidate pipeline in a
// Transformer-Estimator Graph is scored with cross-validation and the best
// path is selected. Candidates run in parallel on a thread pool (Section
// III: "different predictive models can be run in parallel"), and an
// optional ResultCache (implemented by the DARR client) lets multiple
// clients share scores and avoid redundant computations.
//
// Both this evaluator and ts::ForecastGraphEvaluator delegate scheduling,
// shared-prefix memoization and the cooperative claim protocol to the
// unified EvalEngine (src/core/eval_engine.h).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/core/cross_validation.h"
#include "src/core/metrics.h"
#include "src/core/te_graph.h"
#include "src/data/dataset.h"

namespace coda {

/// A shared (cacheable) evaluation result.
struct CachedResult {
  double mean_score = 0.0;
  double stddev = 0.0;
  std::vector<double> fold_scores;
  std::string explanation;  ///< how the result was achieved (pipeline spec)
};

/// Cache/claim interface the evaluation engine uses to cooperate with other
/// clients (Section III, Fig 2). Implemented by darr::DarrClient (over any
/// darr::RecordStore topology — one repository node or a sharded cluster)
/// and by the process-local LocalResultCache.
///
/// This is THE claim/abandon contract (the engine's CooperativeFetch is
/// the single call site, so implementations only need to honour exactly
/// this sequence):
///
///  1. fetch(key) / fetch_many(keys) — read-only; returns a result once
///     ANY client has published one. Never blocks work: a miss simply
///     means the caller may try to claim.
///  2. claim(key) — `true` grants this client the right (and duty) to
///     compute the key and finish with exactly one put() or release().
///     `false` means a peer holds a live claim: the caller must NOT compute
///     but re-poll later (the engine re-queues the candidate on a timer
///     instead of blocking a worker). Implementations may also return
///     `true` when a result is already stored — "go look it up" — callers
///     tolerate recomputation in that unlikely race.
///  3. put(key, result) — publishes the result and releases this client's
///     claim. After a put, fetches hit forever.
///  4. release(key) — drops this client's claim WITHOUT publishing (local
///     failure); peers may then claim and compute. Releasing after a
///     failed computation is mandatory, otherwise peers wait out the claim
///     TTL before retrying.
///
/// Claims are leases, not locks: distributed implementations expire them
/// (DarrRepository's claim TTL) so a crashed claimant never wedges a key.
class ResultCache {
 public:
  virtual ~ResultCache() = default;

  /// Returns the stored result for `key`, if any client has computed it.
  virtual std::optional<CachedResult> fetch(const std::string& key) = 0;

  /// Batch fetch: element i answers keys[i]. The default implementation
  /// loops over fetch(); networked caches override it to answer the
  /// evaluator's initial sweep in one round-trip instead of N.
  virtual std::vector<std::optional<CachedResult>> fetch_many(
      const std::vector<std::string>& keys);

  /// Attempts to claim `key` for local computation. Returns false when
  /// another client holds a live claim (they are computing it right now).
  virtual bool claim(const std::string& key) = 0;

  /// Publishes a computed result (and releases this client's claim).
  virtual void put(const std::string& key, const CachedResult& result) = 0;

  /// Releases a claim without publishing (local failure); lets others
  /// retry.
  virtual void release(const std::string& key) = 0;
};

/// Trivial in-process ResultCache (single map, no sharing semantics beyond
/// the current process). Useful for tests and single-client speedups.
class LocalResultCache final : public ResultCache {
 public:
  std::optional<CachedResult> fetch(const std::string& key) override;
  bool claim(const std::string& key) override;
  void put(const std::string& key, const CachedResult& result) override;
  void release(const std::string& key) override;

 private:
  std::mutex mutex_;
  std::map<std::string, CachedResult> results_;
  std::set<std::string> claims_;
};

/// Per-candidate outcome in an evaluation report.
struct CandidateResult {
  std::string spec;
  double mean_score = 0.0;
  double stddev = 0.0;
  std::vector<double> fold_scores;
  /// Time spent obtaining this result (cross-validation for local
  /// evaluations, cache lookup/serve for cached ones) — claim waiting is
  /// accounted separately in claim_wait_seconds, never here.
  double eval_seconds = 0.0;
  /// Time a peer's claim deferred this candidate before its result arrived
  /// (or the engine computed it locally). The candidate does not occupy a
  /// worker thread during this time — it sits on the engine's timer wheel.
  double claim_wait_seconds = 0.0;
  bool from_cache = false;
  bool failed = false;          ///< candidate threw during fit/predict
  std::string failure_message;
  /// Successive-halving only: the rung at which this candidate was pruned
  /// (-1 = never pruned — it reached the final rung, was served whole from
  /// the cooperative cache, or the search was exhaustive). Pruned
  /// candidates carry the fold scores they actually ran (a prefix of the
  /// fold set) and a mean/stddev over exactly those folds. A failed
  /// entrant ranks strictly last and is cut like any other, so it too
  /// records the rung where the race dropped it.
  int pruned_at_rung = -1;
};

/// Result of evaluating a whole graph.
struct EvaluationReport {
  std::vector<CandidateResult> results;
  std::size_t best_index = 0;
  Metric metric = Metric::kRmse;
  std::size_t evaluated_locally = 0;
  std::size_t served_from_cache = 0;
  double total_seconds = 0.0;
  double total_claim_wait_seconds = 0.0;  ///< summed over all candidates
  /// Fold evaluations this client computed locally (cache-served folds and
  /// pruned-away folds excluded).
  std::size_t fold_evaluations = 0;
  /// Fold evaluations the search plan admits fleet-wide: candidates × folds
  /// for exhaustive search, the rung schedule's total for halving. The gap
  /// to candidates × folds is the halving saving.
  std::size_t fold_evaluations_planned = 0;
  std::size_t pruned_candidates = 0;  ///< halving only
  std::size_t rungs = 0;              ///< halving only (0 = exhaustive)

  const CandidateResult& best() const;
};

/// Candidate-racing strategy for a graph search (DESIGN.md §16).
enum class SearchStrategy {
  /// Score every candidate on every fold. Bit-deterministic reference.
  kExhaustive,
  /// Anytime successive halving: race all candidates on one fold, prune
  /// the losing fraction, promote survivors to the next fold, recurse; the
  /// final rung runs the remaining folds so survivors end with full-CV
  /// scores. Same best pipeline as exhaustive whenever the winner's
  /// partial scores keep it inside every rung's surviving fraction.
  kHalving,
};

/// Knobs for the successive-halving scheduler (ignored under kExhaustive).
struct SearchOptions {
  SearchStrategy strategy = SearchStrategy::kExhaustive;
  /// Pruning fraction: each rung keeps ceil(entrants / eta). Must be >= 2.
  std::size_t eta = 2;
  /// Seeds the tournament tie-break permutation. Candidates with equal
  /// partial scores are ranked by this seeded shuffle of their enumeration
  /// order (seed 0 = plain enumeration order), so prune decisions are a
  /// pure function of (scores, ordering, seed) — schedule-independent and
  /// identical on every cooperating client.
  std::uint64_t seed = 0;
};

/// Options shared by every evaluator that delegates to the EvalEngine
/// (GraphEvaluator and ts::ForecastGraphEvaluator).
struct EvalOptions {
  Metric metric = Metric::kRmse;
  std::size_t threads = 0;        ///< 0 = hardware concurrency
  ResultCache* cache = nullptr;   ///< optional cooperation hook
  int claim_poll_ms = 5;          ///< re-queue interval while a peer works
  int claim_wait_ms = 2000;       ///< max wait before computing locally
  /// Byte budget of the engine's shared-prefix memo (fitted transformer
  /// prefixes / windowed views reused across candidates within one run).
  /// 0 disables memoization.
  std::size_t prefix_cache_bytes = std::size_t{64} << 20;
  /// Compile root→leaf paths into fused execution plans (DESIGN.md §14)
  /// instead of interpreting them stage by stage. Bit-identical scores
  /// either way; off reverts to the interpreted executor (the differential
  /// harness runs both).
  bool compile_plans = true;
  /// Candidate-racing strategy. Exhaustive remains the default and the
  /// bit-deterministic reference; kHalving prunes provably-losing
  /// candidates after partial CV (src/core/search_scheduler.h).
  SearchOptions search;
};

/// Scores one pipeline with cross-validation (mean/stddev across folds).
CachedResult cross_validate(const Pipeline& pipeline, const Dataset& data,
                            const CrossValidator& cv, Metric metric);

/// Evaluates every candidate of a graph and selects the best path.
class GraphEvaluator {
 public:
  explicit GraphEvaluator(EvalOptions options = {});

  /// Evaluates all candidates of `graph` on `data` under `cv`.
  EvaluationReport evaluate(const TEGraph& graph, const Dataset& data,
                            const CrossValidator& cv) const;

  /// Returns the best candidate's pipeline, re-fitted on the full dataset.
  Pipeline train_best(const TEGraph& graph, const Dataset& data,
                      const CrossValidator& cv) const;

  /// The cache key for one candidate: dataset fingerprint + pipeline spec +
  /// CV spec + metric — identical inputs yield identical keys on every
  /// client, which is what makes the sharing sound.
  static std::string cache_key(const Dataset& data,
                               const std::string& candidate_spec,
                               const CrossValidator& cv, Metric metric);

 private:
  EvalOptions options_;
};

}  // namespace coda
