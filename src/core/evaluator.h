// Graph evaluation (Section IV-B): every candidate pipeline in a
// Transformer-Estimator Graph is scored with cross-validation and the best
// path is selected. Candidates run in parallel on a thread pool (Section
// III: "different predictive models can be run in parallel"), and an
// optional ResultCache (implemented by the DARR client) lets multiple
// clients share scores and avoid redundant computations.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/core/cross_validation.h"
#include "src/core/metrics.h"
#include "src/core/te_graph.h"
#include "src/data/dataset.h"

namespace coda {

/// A shared (cacheable) evaluation result.
struct CachedResult {
  double mean_score = 0.0;
  double stddev = 0.0;
  std::vector<double> fold_scores;
  std::string explanation;  ///< how the result was achieved (pipeline spec)
};

/// Cache/claim interface the evaluator uses to cooperate with other clients
/// (Section III, Fig 2). Implemented by darr::DarrResultCache; a process-
/// local implementation exists for tests.
class ResultCache {
 public:
  virtual ~ResultCache() = default;

  /// Returns the stored result for `key`, if any client has computed it.
  virtual std::optional<CachedResult> lookup(const std::string& key) = 0;

  /// Attempts to claim `key` for local computation. Returns false when
  /// another client holds a live claim (they are computing it right now).
  virtual bool try_claim(const std::string& key) = 0;

  /// Stores a computed result (and releases this client's claim).
  virtual void store(const std::string& key, const CachedResult& result) = 0;

  /// Releases a claim without storing (local failure); lets others retry.
  virtual void abandon(const std::string& key) = 0;
};

/// Trivial in-process ResultCache (single map, no sharing semantics beyond
/// the current process). Useful for tests and single-client speedups.
class LocalResultCache final : public ResultCache {
 public:
  std::optional<CachedResult> lookup(const std::string& key) override;
  bool try_claim(const std::string& key) override;
  void store(const std::string& key, const CachedResult& result) override;
  void abandon(const std::string& key) override;

 private:
  std::mutex mutex_;
  std::map<std::string, CachedResult> results_;
  std::set<std::string> claims_;
};

/// Per-candidate outcome in an evaluation report.
struct CandidateResult {
  std::string spec;
  double mean_score = 0.0;
  double stddev = 0.0;
  std::vector<double> fold_scores;
  /// Time spent obtaining this result (cross-validation for local
  /// evaluations, cache lookup/serve for cached ones) — claim waiting is
  /// accounted separately in claim_wait_seconds, never here.
  double eval_seconds = 0.0;
  /// Time spent polling for a peer's result while it held the claim.
  double claim_wait_seconds = 0.0;
  bool from_cache = false;
  bool failed = false;          ///< candidate threw during fit/predict
  std::string failure_message;
};

/// Result of evaluating a whole graph.
struct EvaluationReport {
  std::vector<CandidateResult> results;
  std::size_t best_index = 0;
  Metric metric = Metric::kRmse;
  std::size_t evaluated_locally = 0;
  std::size_t served_from_cache = 0;
  double total_seconds = 0.0;
  double total_claim_wait_seconds = 0.0;  ///< summed over all candidates

  const CandidateResult& best() const;
};

/// Evaluator configuration.
struct EvaluatorConfig {
  Metric metric = Metric::kRmse;
  std::size_t threads = 0;        ///< 0 = hardware concurrency
  ResultCache* cache = nullptr;   ///< optional cooperation hook
  int claim_poll_ms = 5;          ///< poll interval while waiting on peers
  int claim_wait_ms = 2000;       ///< max wait before computing locally
};

/// Scores one pipeline with cross-validation (mean/stddev across folds).
CachedResult cross_validate(const Pipeline& pipeline, const Dataset& data,
                            const CrossValidator& cv, Metric metric);

/// Evaluates every candidate of a graph and selects the best path.
class GraphEvaluator {
 public:
  explicit GraphEvaluator(EvaluatorConfig config = {});

  /// Evaluates all candidates of `graph` on `data` under `cv`.
  EvaluationReport evaluate(const TEGraph& graph, const Dataset& data,
                            const CrossValidator& cv) const;

  /// Returns the best candidate's pipeline, re-fitted on the full dataset.
  Pipeline train_best(const TEGraph& graph, const Dataset& data,
                      const CrossValidator& cv) const;

  /// The cache key for one candidate: dataset fingerprint + pipeline spec +
  /// CV spec + metric — identical inputs yield identical keys on every
  /// client, which is what makes the sharing sound.
  static std::string cache_key(const Dataset& data,
                               const std::string& candidate_spec,
                               const CrossValidator& cv, Metric metric);

 private:
  EvaluatorConfig config_;
};

}  // namespace coda
