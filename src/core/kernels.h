// Shared vectorized compute kernels (DESIGN.md §11). Every matmul in the
// training/evaluation hot path — Dense/Lstm/Conv1D forward+backward,
// ml/linalg normal equations, PCA covariance, Matrix::multiply — routes
// through this layer instead of per-call-site scalar triple loops.
//
// The GEMMs are cache-blocked and register-tiled (8x12 accumulator tiles,
// 384-deep k panels, A/B panels packed contiguous per block) and written as
// restrict-pointer loops with constant trip counts so the compiler
// auto-vectorizes them; src/CMakeLists.txt compiles kernels.cpp at -O3
// (and -march=native under -DCODA_NATIVE_ARCH).
// Large shapes are split row-wise across a lazily created util::ThreadPool.
//
// Equivalence guarantee: for each output element the reduction over k runs
// in ascending order, exactly like the naive loops these kernels replaced —
// k-panel blocking carries the accumulator tile through C between panels
// and row-wise threading partitions disjoint output rows, so results are
// independent of blocking factors and thread count. The numerical-
// equivalence suite (tests/test_kernels.cpp) pins this against the
// `reference` implementations below across ragged/non-tile-multiple shapes.
//
// Observability: `kernel.gemm.calls` / `kernel.gemm.flops` count every GEMM;
// `kernel.gemm.seconds` records wall time for large calls (small ones skip
// the clock so per-step overhead stays negligible).
#pragma once

#include <cstddef>
#include <vector>

#include "src/data/matrix.h"

namespace coda::kernels {

/// Elementwise activation fused into a GEMM write-back.
enum class Activation { kNone, kRelu, kSigmoid, kTanh };

/// Epilogue applied during the final write-back of a GEMM result tile:
/// C = act(C_in + A·B + bias), with `bias` an optional length-n row vector
/// broadcast over rows. Fusing it here avoids a second full pass over C.
struct Epilogue {
  const double* bias = nullptr;
  Activation act = Activation::kNone;

  bool active() const { return bias != nullptr || act != Activation::kNone; }
};

/// Scalar application of an activation (shared with the fused epilogue).
double activate(double v, Activation act);

// ---------------------------------------------------------------------------
// GEMM in the three orientations the layers need. All matrices are row-major
// with explicit leading dimensions, so strided submatrix views (e.g. one
// timestep slice of a flattened sequence batch) need no copies.
// ---------------------------------------------------------------------------

/// C (m x n, ldc) += A (m x k, lda) · B (k x n, ldb), then epilogue.
void gemm_nn(std::size_t m, std::size_t n, std::size_t k, const double* a,
             std::size_t lda, const double* b, std::size_t ldb, double* c,
             std::size_t ldc, const Epilogue& ep = {});

/// C (m x n, ldc) += Aᵀ · B where A is stored k x m (lda): the backward
/// weight-gradient shape dW += Xᵀ·G without materializing Xᵀ.
void gemm_tn(std::size_t m, std::size_t n, std::size_t k, const double* a,
             std::size_t lda, const double* b, std::size_t ldb, double* c,
             std::size_t ldc, const Epilogue& ep = {});

/// C (m x n, ldc) += A · Bᵀ where B is stored n x k (ldb): the backward
/// input-gradient shape dX += G·Wᵀ without materializing Wᵀ.
/// With `accumulate = false` the result overwrites C instead of adding to
/// it — bit-identical to zero-filling C first (0 + s == s), minus the fill
/// pass.
void gemm_nt(std::size_t m, std::size_t n, std::size_t k, const double* a,
             std::size_t lda, const double* b, std::size_t ldb, double* c,
             std::size_t ldc, const Epilogue& ep = {}, bool accumulate = true);

// ---------------------------------------------------------------------------
// Prepacked B operands. pack_b_matrix() lays B out in the exact panel/strip
// order gemm_nn's blocked driver consumes, so a weight matrix that several
// GEMM calls share (e.g. the LSTM recurrent Wh applied at every timestep, or
// a fused plan feeding one weight to many tiles) is packed once instead of
// per call. Packing is pure data movement: gemm_nn_packed reproduces
// gemm_nn's ascending-k reduction order bit for bit.
// ---------------------------------------------------------------------------

/// A B operand packed into kNr-wide strips, grouped per (jc, pc) panel —
/// or, for shapes that fit a single panel, packed as contiguous Bᵀ rows for
/// the dot-chain driver (which beats the strip path at the small operand
/// sizes the NN layers emit).
struct PackedB {
  std::size_t k = 0;
  std::size_t n = 0;
  bool transposed = false;
  std::vector<double> data;

  bool ready() const { return k > 0 && n > 0; }
};

/// Packs the k x n matrix `b` (leading dimension ldb) into `out`.
void pack_b_matrix(std::size_t k, std::size_t n, const double* b,
                   std::size_t ldb, PackedB& out);

/// C (m x n, ldc) += A (m x k, lda) · B, with B prepacked by
/// pack_b_matrix(). Bit-identical to gemm_nn on the unpacked operand.
void gemm_nn_packed(std::size_t m, const double* a, std::size_t lda,
                    const PackedB& b, double* c, std::size_t ldc,
                    const Epilogue& ep = {});

// Matrix-level conveniences (accumulate into `c`, which must be presized).
void matmul_into(const Matrix& a, const Matrix& b, Matrix& c,
                 const Epilogue& ep = {});
void matmul_tn_into(const Matrix& a, const Matrix& b, Matrix& c,
                    const Epilogue& ep = {});
void matmul_nt_into(const Matrix& a, const Matrix& b, Matrix& c,
                    const Epilogue& ep = {});

/// out = a · b (freshly allocated).
Matrix matmul(const Matrix& a, const Matrix& b, const Epilogue& ep = {});

// ---------------------------------------------------------------------------
// Vector primitives.
// ---------------------------------------------------------------------------

/// y[i] += alpha * x[i].
void axpy(std::size_t n, double alpha, const double* x, double* y);

/// x[i] *= alpha.
void scale(std::size_t n, double alpha, double* x);

/// Ascending-order dot product.
double dot(std::size_t n, const double* x, const double* y);

/// out[j] += sum_i a(i, j) for a row-major m x n matrix (bias gradients).
void col_sums_add(std::size_t m, std::size_t n, const double* a,
                  std::size_t lda, double* out);

// ---------------------------------------------------------------------------
// Naive reference implementations: the exact pre-kernel scalar loops, kept
// as the ground truth for the equivalence tests and the bench baseline.
// Inline so they compile at the *caller's* optimization level (the bench
// baseline measures them as the pre-PR code was compiled).
// ---------------------------------------------------------------------------
namespace reference {

inline void gemm_nn(std::size_t m, std::size_t n, std::size_t k,
                    const double* a, std::size_t lda, const double* b,
                    std::size_t ldb, double* c, std::size_t ldc) {
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t l = 0; l < k; ++l) {
      const double v = a[r * lda + l];
      if (v == 0.0) continue;  // the old Matrix::multiply zero-skip
      for (std::size_t j = 0; j < n; ++j) {
        c[r * ldc + j] += v * b[l * ldb + j];
      }
    }
  }
}

inline void gemm_tn(std::size_t m, std::size_t n, std::size_t k,
                    const double* a, std::size_t lda, const double* b,
                    std::size_t ldb, double* c, std::size_t ldc) {
  for (std::size_t l = 0; l < k; ++l) {
    for (std::size_t i = 0; i < m; ++i) {
      const double v = a[l * lda + i];
      for (std::size_t j = 0; j < n; ++j) {
        c[i * ldc + j] += v * b[l * ldb + j];
      }
    }
  }
}

inline void gemm_nt(std::size_t m, std::size_t n, std::size_t k,
                    const double* a, std::size_t lda, const double* b,
                    std::size_t ldb, double* c, std::size_t ldc) {
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (std::size_t l = 0; l < k; ++l) {
        s += a[i * lda + l] * b[j * ldb + l];
      }
      c[i * ldc + j] += s;
    }
  }
}

}  // namespace reference

}  // namespace coda::kernels
