#include "src/core/kernels.h"

#include <algorithm>
#include <cmath>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "src/obs/obs.h"
#include "src/util/stopwatch.h"
#include "src/util/thread_pool.h"

namespace coda::kernels {
namespace {

// Register-tile shape: kMr rows of C by kNr columns held in accumulators
// across a k panel (8x12 won an empirical sweep on the CI machine, with
// 6x12 a close second; several neighboring shapes — 4x16, 6x8, 6x16, 8x8 —
// fall off a vectorization cliff to well below the naive loops, so change
// with care and re-run bench_kernels).
constexpr std::size_t kMr = 8;
constexpr std::size_t kNr = 12;
// Panel sizes: each packed kKc x kNr strip of B (~36KB) stays L1-resident
// while the kMr-row tiles of A stream over it; the kKc x kNc panel (~720KB)
// fits L2.
constexpr std::size_t kKc = 384;
constexpr std::size_t kNc = 240;

// Below this many flops (2*m*n*k) a GEMM is not worth a clock read, let
// alone a thread handoff.
constexpr std::size_t kTimedFlops = 1u << 20;
constexpr std::size_t kParallelFlops = 4u << 20;

double apply_epilogue(double v, const double* bias_tile, std::size_t j,
                      Activation act) {
  if (bias_tile != nullptr) v += bias_tile[j];
  return activate(v, act);
}

// Full kMr x kNr micro-kernel over one packed k strip. The C tile is
// carried in `acc` for the whole panel (loaded from and stored back to
// memory at the panel boundary), so the per-element reduction order over k
// is exactly ascending — identical to the naive loops. `a_i`/`a_k` are the
// strides to the next row / next k element of A, which lets the same kernel
// serve both the NN (a_i=lda, a_k=1) and TN (a_i=1, a_k=lda) orientations.
// `bp` is a packed B strip: kNr contiguous doubles per k step.
void micro_full(const double* __restrict ap, const double* __restrict bp,
                double* __restrict c, std::size_t ldc, std::size_t kk,
                bool final_panel, const Epilogue& ep,
                const double* bias_tile) {
  double acc[kMr][kNr];
  for (std::size_t r = 0; r < kMr; ++r) {
    for (std::size_t v = 0; v < kNr; ++v) acc[r][v] = c[r * ldc + v];
  }
  for (std::size_t l = 0; l < kk; ++l) {
    const double* __restrict brow = bp + l * kNr;
    const double* __restrict arow = ap + l * kMr;
    for (std::size_t r = 0; r < kMr; ++r) {
      const double ar = arow[r];
      for (std::size_t v = 0; v < kNr; ++v) acc[r][v] += ar * brow[v];
    }
  }
  if (final_panel && ep.active()) {
    for (std::size_t r = 0; r < kMr; ++r) {
      for (std::size_t v = 0; v < kNr; ++v) {
        c[r * ldc + v] = apply_epilogue(acc[r][v], bias_tile, v, ep.act);
      }
    }
  } else {
    for (std::size_t r = 0; r < kMr; ++r) {
      for (std::size_t v = 0; v < kNr; ++v) c[r * ldc + v] = acc[r][v];
    }
  }
}

// Ragged-edge tile (mr < kMr and/or nr < kNr). The packed strip is
// zero-padded to kNr, so the compute loop keeps its constant trip count;
// only real columns are stored. Adding the 0.0 padding terms to dead
// accumulator lanes changes nothing. Same reduction order.
void micro_edge(const double* __restrict ap, const double* __restrict bp,
                double* __restrict c, std::size_t ldc, std::size_t mr,
                std::size_t nr, std::size_t kk, bool final_panel,
                const Epilogue& ep, const double* bias_tile) {
  double acc[kMr][kNr];
  for (std::size_t r = 0; r < mr; ++r) {
    for (std::size_t v = 0; v < nr; ++v) acc[r][v] = c[r * ldc + v];
  }
  for (std::size_t l = 0; l < kk; ++l) {
    const double* __restrict brow = bp + l * kNr;
    const double* __restrict arow = ap + l * kMr;
    for (std::size_t r = 0; r < mr; ++r) {
      const double ar = arow[r];
      for (std::size_t v = 0; v < kNr; ++v) acc[r][v] += ar * brow[v];
    }
  }
  for (std::size_t r = 0; r < mr; ++r) {
    for (std::size_t v = 0; v < nr; ++v) {
      const double out = acc[r][v];
      c[r * ldc + v] = final_panel && ep.active()
                           ? apply_epilogue(out, bias_tile, v, ep.act)
                           : out;
    }
  }
}

// Packs B[pc:pc+kc, jc:jc+nc] into kNr-wide strips: strip t holds the tile
// columns [jc + t*kNr, ...) as kc contiguous rows of kNr doubles,
// zero-padded on the ragged right edge. Pure data movement — it does not
// touch the reduction order.
void pack_b(const double* b, std::size_t ldb, std::size_t kc, std::size_t nc,
            double* __restrict packed) {
  const std::size_t tiles = (nc + kNr - 1) / kNr;
  for (std::size_t t = 0; t < tiles; ++t) {
    const std::size_t j0 = t * kNr;
    const std::size_t nr = std::min(kNr, nc - j0);
    double* __restrict dst = packed + t * kc * kNr;
    for (std::size_t l = 0; l < kc; ++l) {
      const double* __restrict src = b + l * ldb + j0;
      for (std::size_t v = 0; v < nr; ++v) dst[l * kNr + v] = src[v];
      for (std::size_t v = nr; v < kNr; ++v) dst[l * kNr + v] = 0.0;
    }
  }
}

// Packs the kMr x kc row tile of A starting at `a` into [l][r] interleaved
// order, so the micro-kernel reads kMr contiguous doubles per k step
// regardless of the source orientation. Rows past mr are left unwritten —
// micro_edge never reads them.
void pack_a(const double* a, std::size_t a_i, std::size_t a_k, std::size_t mr,
            std::size_t kc, double* __restrict packed) {
  for (std::size_t l = 0; l < kc; ++l) {
    for (std::size_t r = 0; r < mr; ++r) {
      packed[l * kMr + r] = a[r * a_i + l * a_k];
    }
  }
}

// Blocked driver for the NN/TN orientations over the row range [m0, m1).
void gemm_block(std::size_t m0, std::size_t m1, std::size_t n, std::size_t k,
                const double* a, std::size_t a_i, std::size_t a_k,
                const double* b, std::size_t ldb, double* c, std::size_t ldc,
                const Epilogue& ep) {
  thread_local std::vector<double> packed;
  packed.resize(kKc * (kNc + kNr) + kKc * kMr);
  double* const bpack = packed.data();
  double* const apack = packed.data() + kKc * (kNc + kNr);
  for (std::size_t jc = 0; jc < n; jc += kNc) {
    const std::size_t nc = std::min(kNc, n - jc);
    for (std::size_t pc = 0; pc < k; pc += kKc) {
      const std::size_t kc = std::min(kKc, k - pc);
      const bool final_panel = pc + kc == k;
      pack_b(b + pc * ldb + jc, ldb, kc, nc, bpack);
      for (std::size_t i0 = m0; i0 < m1; i0 += kMr) {
        const std::size_t mr = std::min(kMr, m1 - i0);
        pack_a(a + i0 * a_i + pc * a_k, a_i, a_k, mr, kc, apack);
        for (std::size_t j0 = 0; j0 < nc; j0 += kNr) {
          const std::size_t nr = std::min(kNr, nc - j0);
          const double* bp = bpack + (j0 / kNr) * kc * kNr;
          double* ct = c + i0 * ldc + jc + j0;
          const double* bias_tile = ep.bias ? ep.bias + jc + j0 : nullptr;
          if (mr == kMr && nr == kNr) {
            micro_full(apack, bp, ct, ldc, kc, final_panel, ep, bias_tile);
          } else {
            micro_edge(apack, bp, ct, ldc, mr, nr, kc, final_panel, ep,
                       bias_tile);
          }
        }
      }
    }
  }
}

// NT driver over the row range [m0, m1): C(i,j) += dot(A row i, B row j).
// Both rows are contiguous in k, so the kernel unrolls 4 independent dot
// chains per A row; each chain reduces in ascending k order.
void gemm_nt_block(std::size_t m0, std::size_t m1, std::size_t n,
                   std::size_t k, const double* a, std::size_t lda,
                   const double* b, std::size_t ldb, double* c,
                   std::size_t ldc, const Epilogue& ep) {
  for (std::size_t i = m0; i < m1; ++i) {
    const double* __restrict ar = a + i * lda;
    double* __restrict crow = c + i * ldc;
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const double* __restrict b0 = b + j * ldb;
      const double* __restrict b1 = b + (j + 1) * ldb;
      const double* __restrict b2 = b + (j + 2) * ldb;
      const double* __restrict b3 = b + (j + 3) * ldb;
      double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
      for (std::size_t l = 0; l < k; ++l) {
        const double av = ar[l];
        s0 += av * b0[l];
        s1 += av * b1[l];
        s2 += av * b2[l];
        s3 += av * b3[l];
      }
      if (ep.active()) {
        crow[j] = apply_epilogue(crow[j] + s0, ep.bias, j, ep.act);
        crow[j + 1] = apply_epilogue(crow[j + 1] + s1, ep.bias, j + 1, ep.act);
        crow[j + 2] = apply_epilogue(crow[j + 2] + s2, ep.bias, j + 2, ep.act);
        crow[j + 3] = apply_epilogue(crow[j + 3] + s3, ep.bias, j + 3, ep.act);
      } else {
        crow[j] += s0;
        crow[j + 1] += s1;
        crow[j + 2] += s2;
        crow[j + 3] += s3;
      }
    }
    for (; j < n; ++j) {
      const double* __restrict brow = b + j * ldb;
      double s = 0.0;
      for (std::size_t l = 0; l < k; ++l) s += ar[l] * brow[l];
      crow[j] = ep.active() ? apply_epilogue(crow[j] + s, ep.bias, j, ep.act)
                            : crow[j] + s;
    }
  }
}

// Lazily created pool for large shapes; null on single-core machines so
// small boxes never pay thread-handoff costs. Row-wise partitioning keeps
// results bit-identical to the single-threaded path (disjoint output rows,
// unchanged per-element reduction order).
ThreadPool* pool() {
  static const std::unique_ptr<ThreadPool> p = [] {
    const unsigned hc = std::thread::hardware_concurrency();
    return hc > 1 ? std::make_unique<ThreadPool>(hc) : nullptr;
  }();
  return p.get();
}

template <typename Fn>
void parallel_rows(std::size_t m, std::size_t flops, Fn&& fn) {
  ThreadPool* p = pool();
  if (p == nullptr || flops < kParallelFlops || m < 2 * kMr) {
    fn(std::size_t{0}, m);
    return;
  }
  const std::size_t chunks = std::min<std::size_t>(p->size(), m / kMr);
  // Round chunk sizes up to the register-tile height.
  const std::size_t chunk = ((m + chunks - 1) / chunks + kMr - 1) / kMr * kMr;
  std::vector<std::future<void>> futures;
  for (std::size_t r0 = 0; r0 < m; r0 += chunk) {
    const std::size_t r1 = std::min(m, r0 + chunk);
    futures.push_back(p->submit([&fn, r0, r1] { fn(r0, r1); }));
  }
  for (auto& f : futures) f.get();
}

struct GemmCounters {
  obs::Counter& calls = obs::counter("kernel.gemm.calls");
  obs::Counter& flops = obs::counter("kernel.gemm.flops");
  obs::Histogram& seconds = obs::histogram("kernel.gemm.seconds");
};

GemmCounters& counters() {
  static GemmCounters c;
  return c;
}

template <typename Run>
void instrumented(std::size_t m, std::size_t n, std::size_t k, Run&& run) {
  GemmCounters& c = counters();
  const std::size_t flops = 2 * m * n * k;
  c.calls.inc();
  c.flops.inc(flops);
  if (m == 0 || n == 0 || k == 0) return;
  if (flops >= kTimedFlops) {
    Stopwatch timer;
    run(flops);
    c.seconds.observe(timer.elapsed_seconds());
  } else {
    run(flops);
  }
}

void check_shapes(const Matrix& a, const Matrix& b, const Matrix& c,
                  std::size_t m, std::size_t n, std::size_t k,
                  const char* who) {
  require(a.rows() * a.cols() >= m * k && b.rows() * b.cols() >= k * n,
          std::string(who) + ": input shape mismatch");
  require(c.rows() == m && c.cols() == n,
          std::string(who) + ": output shape mismatch");
}

}  // namespace

double activate(double v, Activation act) {
  switch (act) {
    case Activation::kRelu:
      return v > 0.0 ? v : 0.0;
    case Activation::kSigmoid:
      return 1.0 / (1.0 + std::exp(-v));
    case Activation::kTanh:
      return std::tanh(v);
    case Activation::kNone:
      break;
  }
  return v;
}

void gemm_nn(std::size_t m, std::size_t n, std::size_t k, const double* a,
             std::size_t lda, const double* b, std::size_t ldb, double* c,
             std::size_t ldc, const Epilogue& ep) {
  instrumented(m, n, k, [&](std::size_t flops) {
    parallel_rows(m, flops, [&](std::size_t m0, std::size_t m1) {
      gemm_block(m0, m1, n, k, a, /*a_i=*/lda, /*a_k=*/1, b, ldb, c, ldc, ep);
    });
  });
}

void gemm_tn(std::size_t m, std::size_t n, std::size_t k, const double* a,
             std::size_t lda, const double* b, std::size_t ldb, double* c,
             std::size_t ldc, const Epilogue& ep) {
  instrumented(m, n, k, [&](std::size_t flops) {
    parallel_rows(m, flops, [&](std::size_t m0, std::size_t m1) {
      gemm_block(m0, m1, n, k, a, /*a_i=*/1, /*a_k=*/lda, b, ldb, c, ldc, ep);
    });
  });
}

void gemm_nt(std::size_t m, std::size_t n, std::size_t k, const double* a,
             std::size_t lda, const double* b, std::size_t ldb, double* c,
             std::size_t ldc, const Epilogue& ep) {
  instrumented(m, n, k, [&](std::size_t flops) {
    parallel_rows(m, flops, [&](std::size_t m0, std::size_t m1) {
      gemm_nt_block(m0, m1, n, k, a, lda, b, ldb, c, ldc, ep);
    });
  });
}

void matmul_into(const Matrix& a, const Matrix& b, Matrix& c,
                 const Epilogue& ep) {
  require(a.cols() == b.rows(), "matmul_into: inner dimension mismatch");
  check_shapes(a, b, c, a.rows(), b.cols(), a.cols(), "matmul_into");
  gemm_nn(a.rows(), b.cols(), a.cols(), a.data().data(), a.cols(),
          b.data().data(), b.cols(), c.data().data(), c.cols(), ep);
}

void matmul_tn_into(const Matrix& a, const Matrix& b, Matrix& c,
                    const Epilogue& ep) {
  require(a.rows() == b.rows(), "matmul_tn_into: inner dimension mismatch");
  check_shapes(a, b, c, a.cols(), b.cols(), a.rows(), "matmul_tn_into");
  gemm_tn(a.cols(), b.cols(), a.rows(), a.data().data(), a.cols(),
          b.data().data(), b.cols(), c.data().data(), c.cols(), ep);
}

void matmul_nt_into(const Matrix& a, const Matrix& b, Matrix& c,
                    const Epilogue& ep) {
  require(a.cols() == b.cols(), "matmul_nt_into: inner dimension mismatch");
  check_shapes(a, b, c, a.rows(), b.rows(), a.cols(), "matmul_nt_into");
  gemm_nt(a.rows(), b.rows(), a.cols(), a.data().data(), a.cols(),
          b.data().data(), b.cols(), c.data().data(), c.cols(), ep);
}

Matrix matmul(const Matrix& a, const Matrix& b, const Epilogue& ep) {
  Matrix c(a.rows(), b.cols());
  matmul_into(a, b, c, ep);
  return c;
}

void axpy(std::size_t n, double alpha, const double* __restrict x,
          double* __restrict y) {
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void scale(std::size_t n, double alpha, double* __restrict x) {
  for (std::size_t i = 0; i < n; ++i) x[i] *= alpha;
}

double dot(std::size_t n, const double* __restrict x,
           const double* __restrict y) {
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) s += x[i] * y[i];
  return s;
}

void col_sums_add(std::size_t m, std::size_t n, const double* a,
                  std::size_t lda, double* __restrict out) {
  for (std::size_t i = 0; i < m; ++i) {
    const double* __restrict row = a + i * lda;
    for (std::size_t j = 0; j < n; ++j) out[j] += row[j];
  }
}

}  // namespace coda::kernels
