#include "src/core/kernels.h"

#include <algorithm>
#include <cmath>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "src/obs/obs.h"
#include "src/util/stopwatch.h"
#include "src/util/thread_pool.h"

namespace coda::kernels {
namespace {

// Register-tile shape: kMr rows of C by kNr columns held in accumulators
// across a k panel (8x12 won an empirical sweep on the CI machine, with
// 6x12 a close second; several neighboring shapes — 4x16, 6x8, 6x16, 8x8 —
// fall off a vectorization cliff to well below the naive loops, so change
// with care and re-run bench_kernels).
constexpr std::size_t kMr = 8;
constexpr std::size_t kNr = 12;
// Panel sizes: each packed kKc x kNr strip of B (~36KB) stays L1-resident
// while the kMr-row tiles of A stream over it; the kKc x kNc panel (~720KB)
// fits L2.
constexpr std::size_t kKc = 384;
constexpr std::size_t kNc = 240;

// Below this many flops (2*m*n*k) a GEMM is not worth a clock read, let
// alone a thread handoff.
constexpr std::size_t kTimedFlops = 1u << 20;
constexpr std::size_t kParallelFlops = 4u << 20;

double apply_epilogue(double v, const double* bias_tile, std::size_t j,
                      Activation act) {
  if (bias_tile != nullptr) v += bias_tile[j];
  return activate(v, act);
}

// Full kMr x kNr micro-kernel over one packed k strip. The C tile is
// carried in `acc` for the whole panel (loaded from and stored back to
// memory at the panel boundary), so the per-element reduction order over k
// is exactly ascending — identical to the naive loops. `a_i`/`a_k` are the
// strides to the next row / next k element of A, which lets the same kernel
// serve both the NN (a_i=lda, a_k=1) and TN (a_i=1, a_k=lda) orientations.
// `bp` is a packed B strip: kNr contiguous doubles per k step.
void micro_full(const double* __restrict ap, const double* __restrict bp,
                double* __restrict c, std::size_t ldc, std::size_t kk,
                bool final_panel, const Epilogue& ep,
                const double* bias_tile) {
  double acc[kMr][kNr];
  for (std::size_t r = 0; r < kMr; ++r) {
    for (std::size_t v = 0; v < kNr; ++v) acc[r][v] = c[r * ldc + v];
  }
  for (std::size_t l = 0; l < kk; ++l) {
    const double* __restrict brow = bp + l * kNr;
    const double* __restrict arow = ap + l * kMr;
    for (std::size_t r = 0; r < kMr; ++r) {
      const double ar = arow[r];
      for (std::size_t v = 0; v < kNr; ++v) acc[r][v] += ar * brow[v];
    }
  }
  if (final_panel && ep.active()) {
    for (std::size_t r = 0; r < kMr; ++r) {
      for (std::size_t v = 0; v < kNr; ++v) {
        c[r * ldc + v] = apply_epilogue(acc[r][v], bias_tile, v, ep.act);
      }
    }
  } else {
    for (std::size_t r = 0; r < kMr; ++r) {
      for (std::size_t v = 0; v < kNr; ++v) c[r * ldc + v] = acc[r][v];
    }
  }
}

// Ragged-edge tile (mr < kMr and/or nr < kNr), compiled once per edge width
// NR so the inner loop keeps a constant trip count and computes exactly the
// live lanes — the old kNr-wide edge kernel burned up to 2/3 of its flops
// on zero-padded dead lanes at the narrow shapes the NN layers emit
// (out_channels = 16, 4H = 64, head width 1). Dead-lane removal cannot
// change stored values: accumulator lanes are independent and the reduction
// order per live element stays ascending k.
template <std::size_t NR>
void micro_edge_n(const double* __restrict ap, const double* __restrict bp,
                  double* __restrict c, std::size_t ldc, std::size_t mr,
                  std::size_t kk, bool final_panel, const Epilogue& ep,
                  const double* bias_tile) {
  double acc[kMr][NR];
  for (std::size_t r = 0; r < mr; ++r) {
    for (std::size_t v = 0; v < NR; ++v) acc[r][v] = c[r * ldc + v];
  }
  for (std::size_t l = 0; l < kk; ++l) {
    const double* __restrict brow = bp + l * kNr;
    const double* __restrict arow = ap + l * kMr;
    for (std::size_t r = 0; r < mr; ++r) {
      const double ar = arow[r];
      for (std::size_t v = 0; v < NR; ++v) acc[r][v] += ar * brow[v];
    }
  }
  for (std::size_t r = 0; r < mr; ++r) {
    for (std::size_t v = 0; v < NR; ++v) {
      const double out = acc[r][v];
      c[r * ldc + v] = final_panel && ep.active()
                           ? apply_epilogue(out, bias_tile, v, ep.act)
                           : out;
    }
  }
}

// Width dispatch for ragged tiles. nr <= kNr always holds.
void micro_edge(const double* ap, const double* bp, double* c,
                std::size_t ldc, std::size_t mr, std::size_t nr,
                std::size_t kk, bool final_panel, const Epilogue& ep,
                const double* bias_tile) {
  switch (nr) {
    case 1: micro_edge_n<1>(ap, bp, c, ldc, mr, kk, final_panel, ep, bias_tile); break;
    case 2: micro_edge_n<2>(ap, bp, c, ldc, mr, kk, final_panel, ep, bias_tile); break;
    case 3: micro_edge_n<3>(ap, bp, c, ldc, mr, kk, final_panel, ep, bias_tile); break;
    case 4: micro_edge_n<4>(ap, bp, c, ldc, mr, kk, final_panel, ep, bias_tile); break;
    case 5: micro_edge_n<5>(ap, bp, c, ldc, mr, kk, final_panel, ep, bias_tile); break;
    case 6: micro_edge_n<6>(ap, bp, c, ldc, mr, kk, final_panel, ep, bias_tile); break;
    case 7: micro_edge_n<7>(ap, bp, c, ldc, mr, kk, final_panel, ep, bias_tile); break;
    case 8: micro_edge_n<8>(ap, bp, c, ldc, mr, kk, final_panel, ep, bias_tile); break;
    case 9: micro_edge_n<9>(ap, bp, c, ldc, mr, kk, final_panel, ep, bias_tile); break;
    case 10: micro_edge_n<10>(ap, bp, c, ldc, mr, kk, final_panel, ep, bias_tile); break;
    case 11: micro_edge_n<11>(ap, bp, c, ldc, mr, kk, final_panel, ep, bias_tile); break;
    default: micro_edge_n<kNr>(ap, bp, c, ldc, mr, kk, final_panel, ep, bias_tile); break;
  }
}

// Packs B[pc:pc+kc, jc:jc+nc] into kNr-wide strips: strip t holds the tile
// columns [jc + t*kNr, ...) as kc contiguous rows of kNr doubles,
// zero-padded on the ragged right edge. Pure data movement — it does not
// touch the reduction order.
void pack_b(const double* b, std::size_t ldb, std::size_t kc, std::size_t nc,
            double* __restrict packed) {
  const std::size_t tiles = (nc + kNr - 1) / kNr;
  for (std::size_t t = 0; t < tiles; ++t) {
    const std::size_t j0 = t * kNr;
    const std::size_t nr = std::min(kNr, nc - j0);
    double* __restrict dst = packed + t * kc * kNr;
    for (std::size_t l = 0; l < kc; ++l) {
      const double* __restrict src = b + l * ldb + j0;
      for (std::size_t v = 0; v < nr; ++v) dst[l * kNr + v] = src[v];
      for (std::size_t v = nr; v < kNr; ++v) dst[l * kNr + v] = 0.0;
    }
  }
}

// Packs the kMr x kc row tile of A starting at `a` into [l][r] interleaved
// order, so the micro-kernel reads kMr contiguous doubles per k step
// regardless of the source orientation. Rows past mr are left unwritten —
// micro_edge never reads them.
void pack_a(const double* a, std::size_t a_i, std::size_t a_k, std::size_t mr,
            std::size_t kc, double* __restrict packed) {
  for (std::size_t l = 0; l < kc; ++l) {
    for (std::size_t r = 0; r < mr; ++r) {
      packed[l * kMr + r] = a[r * a_i + l * a_k];
    }
  }
}

// Blocked driver for the NN/TN orientations over the row range [m0, m1).
void gemm_block(std::size_t m0, std::size_t m1, std::size_t n, std::size_t k,
                const double* a, std::size_t a_i, std::size_t a_k,
                const double* b, std::size_t ldb, double* c, std::size_t ldc,
                const Epilogue& ep) {
  thread_local std::vector<double> packed;
  packed.resize(kKc * (kNc + kNr) + kKc * kMr);
  double* const bpack = packed.data();
  double* const apack = packed.data() + kKc * (kNc + kNr);
  for (std::size_t jc = 0; jc < n; jc += kNc) {
    const std::size_t nc = std::min(kNc, n - jc);
    for (std::size_t pc = 0; pc < k; pc += kKc) {
      const std::size_t kc = std::min(kKc, k - pc);
      const bool final_panel = pc + kc == k;
      pack_b(b + pc * ldb + jc, ldb, kc, nc, bpack);
      for (std::size_t i0 = m0; i0 < m1; i0 += kMr) {
        const std::size_t mr = std::min(kMr, m1 - i0);
        pack_a(a + i0 * a_i + pc * a_k, a_i, a_k, mr, kc, apack);
        for (std::size_t j0 = 0; j0 < nc; j0 += kNr) {
          const std::size_t nr = std::min(kNr, nc - j0);
          const double* bp = bpack + (j0 / kNr) * kc * kNr;
          double* ct = c + i0 * ldc + jc + j0;
          const double* bias_tile = ep.bias ? ep.bias + jc + j0 : nullptr;
          if (mr == kMr && nr == kNr) {
            micro_full(apack, bp, ct, ldc, kc, final_panel, ep, bias_tile);
          } else {
            micro_edge(apack, bp, ct, ldc, mr, nr, kc, final_panel, ep,
                       bias_tile);
          }
        }
      }
    }
  }
}

// Blocked driver identical to gemm_block, but consuming a B packed once by
// pack_b_matrix() instead of packing per call. The (jc, pc) panel walk and
// per-panel strip layout match pack_b_matrix exactly, so every micro-kernel
// sees the same packed bytes gemm_block would have produced.
void gemm_block_packed(std::size_t m0, std::size_t m1, const PackedB& b,
                       const double* a, std::size_t a_i, std::size_t a_k,
                       double* c, std::size_t ldc, const Epilogue& ep) {
  const std::size_t n = b.n;
  const std::size_t k = b.k;
  thread_local std::vector<double> apacked;
  apacked.resize(kKc * kMr);
  double* const apack = apacked.data();
  std::size_t col_base = 0;
  for (std::size_t jc = 0; jc < n; jc += kNc) {
    const std::size_t nc = std::min(kNc, n - jc);
    const std::size_t tiles = (nc + kNr - 1) / kNr;
    for (std::size_t pc = 0; pc < k; pc += kKc) {
      const std::size_t kc = std::min(kKc, k - pc);
      const bool final_panel = pc + kc == k;
      const double* bpack = b.data.data() + col_base + tiles * kNr * pc;
      for (std::size_t i0 = m0; i0 < m1; i0 += kMr) {
        const std::size_t mr = std::min(kMr, m1 - i0);
        pack_a(a + i0 * a_i + pc * a_k, a_i, a_k, mr, kc, apack);
        for (std::size_t j0 = 0; j0 < nc; j0 += kNr) {
          const std::size_t nr = std::min(kNr, nc - j0);
          const double* bp = bpack + (j0 / kNr) * kc * kNr;
          double* ct = c + i0 * ldc + jc + j0;
          const double* bias_tile = ep.bias ? ep.bias + jc + j0 : nullptr;
          if (mr == kMr && nr == kNr) {
            micro_full(apack, bp, ct, ldc, kc, final_panel, ep, bias_tile);
          } else {
            micro_edge(apack, bp, ct, ldc, mr, nr, kc, final_panel, ep,
                       bias_tile);
          }
        }
      }
    }
    col_base += tiles * kNr * k;
  }
}

// NN driver over Bᵀ packed contiguous (bt row j = column j of B), for
// shapes that fit a single (jc, pc) panel. Each output element seeds its
// accumulator from C and adds products in ascending k — the exact chain the
// blocked driver produces when k <= kKc, so the two are bit-identical
// there. With both operands read contiguously the 4-wide dot chains beat
// the pack-per-call strip path at the small operand sizes the NN layers
// emit (measured ~8 vs ~6 GFLOP/s portable).
void gemm_nn_bt_block(std::size_t m0, std::size_t m1, std::size_t n,
                      std::size_t k, const double* a, std::size_t lda,
                      const double* bt, double* c, std::size_t ldc,
                      const Epilogue& ep) {
  for (std::size_t i = m0; i < m1; ++i) {
    const double* __restrict ar = a + i * lda;
    double* __restrict crow = c + i * ldc;
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const double* __restrict b0 = bt + j * k;
      const double* __restrict b1 = bt + (j + 1) * k;
      const double* __restrict b2 = bt + (j + 2) * k;
      const double* __restrict b3 = bt + (j + 3) * k;
      double s0 = crow[j], s1 = crow[j + 1], s2 = crow[j + 2],
             s3 = crow[j + 3];
      for (std::size_t l = 0; l < k; ++l) {
        const double av = ar[l];
        s0 += av * b0[l];
        s1 += av * b1[l];
        s2 += av * b2[l];
        s3 += av * b3[l];
      }
      if (ep.active()) {
        crow[j] = apply_epilogue(s0, ep.bias, j, ep.act);
        crow[j + 1] = apply_epilogue(s1, ep.bias, j + 1, ep.act);
        crow[j + 2] = apply_epilogue(s2, ep.bias, j + 2, ep.act);
        crow[j + 3] = apply_epilogue(s3, ep.bias, j + 3, ep.act);
      } else {
        crow[j] = s0;
        crow[j + 1] = s1;
        crow[j + 2] = s2;
        crow[j + 3] = s3;
      }
    }
    for (; j < n; ++j) {
      const double* __restrict brow = bt + j * k;
      double s = crow[j];
      for (std::size_t l = 0; l < k; ++l) s += ar[l] * brow[l];
      crow[j] = ep.active() ? apply_epilogue(s, ep.bias, j, ep.act) : s;
    }
  }
}

// Transposes B (k x n, ldb) into contiguous Bᵀ rows for gemm_nn_bt_block.
void pack_bt(const double* b, std::size_t ldb, std::size_t k, std::size_t n,
             double* __restrict bt) {
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t l = 0; l < k; ++l) bt[j * k + l] = b[l * ldb + j];
  }
}

// The Bᵀ dot-chain path is bit-identical to the blocked driver only while
// the whole reduction is one k panel; one jc block keeps the transpose
// scratch bounded.
bool use_bt_path(std::size_t n, std::size_t k) {
  return k <= kKc && n <= kNc;
}

// NT driver over the row range [m0, m1): C(i,j) += dot(A row i, B row j).
// Both rows are contiguous in k, so the kernel unrolls 4 independent dot
// chains per A row; each chain reduces in ascending k order.
template <bool Accumulate>
void gemm_nt_block(std::size_t m0, std::size_t m1, std::size_t n,
                   std::size_t k, const double* a, std::size_t lda,
                   const double* b, std::size_t ldb, double* c,
                   std::size_t ldc, const Epilogue& ep) {
  for (std::size_t i = m0; i < m1; ++i) {
    const double* __restrict ar = a + i * lda;
    double* __restrict crow = c + i * ldc;
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const double* __restrict b0 = b + j * ldb;
      const double* __restrict b1 = b + (j + 1) * ldb;
      const double* __restrict b2 = b + (j + 2) * ldb;
      const double* __restrict b3 = b + (j + 3) * ldb;
      double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
      for (std::size_t l = 0; l < k; ++l) {
        const double av = ar[l];
        s0 += av * b0[l];
        s1 += av * b1[l];
        s2 += av * b2[l];
        s3 += av * b3[l];
      }
      const double c0 = Accumulate ? crow[j] : 0.0;
      const double c1 = Accumulate ? crow[j + 1] : 0.0;
      const double c2 = Accumulate ? crow[j + 2] : 0.0;
      const double c3 = Accumulate ? crow[j + 3] : 0.0;
      if (ep.active()) {
        crow[j] = apply_epilogue(c0 + s0, ep.bias, j, ep.act);
        crow[j + 1] = apply_epilogue(c1 + s1, ep.bias, j + 1, ep.act);
        crow[j + 2] = apply_epilogue(c2 + s2, ep.bias, j + 2, ep.act);
        crow[j + 3] = apply_epilogue(c3 + s3, ep.bias, j + 3, ep.act);
      } else {
        crow[j] = c0 + s0;
        crow[j + 1] = c1 + s1;
        crow[j + 2] = c2 + s2;
        crow[j + 3] = c3 + s3;
      }
    }
    for (; j < n; ++j) {
      const double* __restrict brow = b + j * ldb;
      double s = 0.0;
      for (std::size_t l = 0; l < k; ++l) s += ar[l] * brow[l];
      const double base = Accumulate ? crow[j] : 0.0;
      crow[j] = ep.active() ? apply_epilogue(base + s, ep.bias, j, ep.act)
                            : base + s;
    }
  }
}

// Lazily created pool for large shapes; null on single-core machines so
// small boxes never pay thread-handoff costs. Row-wise partitioning keeps
// results bit-identical to the single-threaded path (disjoint output rows,
// unchanged per-element reduction order).
ThreadPool* pool() {
  static const std::unique_ptr<ThreadPool> p = [] {
    const unsigned hc = std::thread::hardware_concurrency();
    return hc > 1 ? std::make_unique<ThreadPool>(hc) : nullptr;
  }();
  return p.get();
}

template <typename Fn>
void parallel_rows(std::size_t m, std::size_t flops, Fn&& fn) {
  ThreadPool* p = pool();
  if (p == nullptr || flops < kParallelFlops || m < 2 * kMr) {
    fn(std::size_t{0}, m);
    return;
  }
  const std::size_t chunks = std::min<std::size_t>(p->size(), m / kMr);
  // Round chunk sizes up to the register-tile height.
  const std::size_t chunk = ((m + chunks - 1) / chunks + kMr - 1) / kMr * kMr;
  std::vector<std::future<void>> futures;
  for (std::size_t r0 = 0; r0 < m; r0 += chunk) {
    const std::size_t r1 = std::min(m, r0 + chunk);
    futures.push_back(p->submit([&fn, r0, r1] { fn(r0, r1); }));
  }
  for (auto& f : futures) f.get();
}

struct GemmCounters {
  obs::Counter& calls = obs::counter("kernel.gemm.calls");
  obs::Counter& flops = obs::counter("kernel.gemm.flops");
  obs::Histogram& seconds = obs::histogram("kernel.gemm.seconds");
};

GemmCounters& counters() {
  static GemmCounters c;
  return c;
}

template <typename Run>
void instrumented(std::size_t m, std::size_t n, std::size_t k, Run&& run) {
  GemmCounters& c = counters();
  const std::size_t flops = 2 * m * n * k;
  c.calls.inc();
  c.flops.inc(flops);
  if (m == 0 || n == 0 || k == 0) return;
  if (flops >= kTimedFlops) {
    Stopwatch timer;
    run(flops);
    c.seconds.observe(timer.elapsed_seconds());
  } else {
    run(flops);
  }
}

void check_shapes(const Matrix& a, const Matrix& b, const Matrix& c,
                  std::size_t m, std::size_t n, std::size_t k,
                  const char* who) {
  require(a.rows() * a.cols() >= m * k && b.rows() * b.cols() >= k * n,
          std::string(who) + ": input shape mismatch");
  require(c.rows() == m && c.cols() == n,
          std::string(who) + ": output shape mismatch");
}

}  // namespace

double activate(double v, Activation act) {
  switch (act) {
    case Activation::kRelu:
      return v > 0.0 ? v : 0.0;
    case Activation::kSigmoid:
      return 1.0 / (1.0 + std::exp(-v));
    case Activation::kTanh:
      return std::tanh(v);
    case Activation::kNone:
      break;
  }
  return v;
}

void gemm_nn(std::size_t m, std::size_t n, std::size_t k, const double* a,
             std::size_t lda, const double* b, std::size_t ldb, double* c,
             std::size_t ldc, const Epilogue& ep) {
  instrumented(m, n, k, [&](std::size_t flops) {
    if (use_bt_path(n, k)) {
      thread_local std::vector<double> btv;
      btv.resize(n * k);
      pack_bt(b, ldb, k, n, btv.data());
      const double* bt = btv.data();
      parallel_rows(m, flops, [&, bt](std::size_t m0, std::size_t m1) {
        gemm_nn_bt_block(m0, m1, n, k, a, lda, bt, c, ldc, ep);
      });
      return;
    }
    parallel_rows(m, flops, [&](std::size_t m0, std::size_t m1) {
      gemm_block(m0, m1, n, k, a, /*a_i=*/lda, /*a_k=*/1, b, ldb, c, ldc, ep);
    });
  });
}

void gemm_tn(std::size_t m, std::size_t n, std::size_t k, const double* a,
             std::size_t lda, const double* b, std::size_t ldb, double* c,
             std::size_t ldc, const Epilogue& ep) {
  instrumented(m, n, k, [&](std::size_t flops) {
    if (use_bt_path(n, k)) {
      // Aᵀ rows (columns of the stored k x m operand) are packed contiguous
      // alongside Bᵀ; pack_bt's (j, l) walk produces exactly that layout.
      thread_local std::vector<double> atv;
      thread_local std::vector<double> btv;
      atv.resize(m * k);
      btv.resize(n * k);
      pack_bt(a, lda, k, m, atv.data());
      pack_bt(b, ldb, k, n, btv.data());
      const double* at = atv.data();
      const double* bt = btv.data();
      parallel_rows(m, flops, [&, at, bt](std::size_t m0, std::size_t m1) {
        gemm_nn_bt_block(m0, m1, n, k, at, k, bt, c, ldc, ep);
      });
      return;
    }
    parallel_rows(m, flops, [&](std::size_t m0, std::size_t m1) {
      gemm_block(m0, m1, n, k, a, /*a_i=*/1, /*a_k=*/lda, b, ldb, c, ldc, ep);
    });
  });
}

void gemm_nt(std::size_t m, std::size_t n, std::size_t k, const double* a,
             std::size_t lda, const double* b, std::size_t ldb, double* c,
             std::size_t ldc, const Epilogue& ep, bool accumulate) {
  instrumented(m, n, k, [&](std::size_t flops) {
    parallel_rows(m, flops, [&](std::size_t m0, std::size_t m1) {
      if (accumulate) {
        gemm_nt_block<true>(m0, m1, n, k, a, lda, b, ldb, c, ldc, ep);
      } else {
        gemm_nt_block<false>(m0, m1, n, k, a, lda, b, ldb, c, ldc, ep);
      }
    });
  });
}

void pack_b_matrix(std::size_t k, std::size_t n, const double* b,
                   std::size_t ldb, PackedB& out) {
  require(k > 0 && n > 0, "pack_b_matrix: empty operand");
  out.k = k;
  out.n = n;
  out.transposed = use_bt_path(n, k);
  if (out.transposed) {
    out.data.resize(n * k);
    pack_bt(b, ldb, k, n, out.data.data());
    return;
  }
  std::size_t total = 0;
  for (std::size_t jc = 0; jc < n; jc += kNc) {
    const std::size_t nc = std::min(kNc, n - jc);
    total += ((nc + kNr - 1) / kNr) * kNr * k;
  }
  out.data.resize(total);
  std::size_t col_base = 0;
  for (std::size_t jc = 0; jc < n; jc += kNc) {
    const std::size_t nc = std::min(kNc, n - jc);
    const std::size_t tiles = (nc + kNr - 1) / kNr;
    for (std::size_t pc = 0; pc < k; pc += kKc) {
      const std::size_t kc = std::min(kKc, k - pc);
      pack_b(b + pc * ldb + jc, ldb, kc, nc,
             out.data.data() + col_base + tiles * kNr * pc);
    }
    col_base += tiles * kNr * k;
  }
}

void gemm_nn_packed(std::size_t m, const double* a, std::size_t lda,
                    const PackedB& b, double* c, std::size_t ldc,
                    const Epilogue& ep) {
  require(b.ready(), "gemm_nn_packed: operand not packed");
  instrumented(m, b.n, b.k, [&](std::size_t flops) {
    parallel_rows(m, flops, [&](std::size_t m0, std::size_t m1) {
      if (b.transposed) {
        gemm_nn_bt_block(m0, m1, b.n, b.k, a, lda, b.data.data(), c, ldc, ep);
      } else {
        gemm_block_packed(m0, m1, b, a, /*a_i=*/lda, /*a_k=*/1, c, ldc, ep);
      }
    });
  });
}

void matmul_into(const Matrix& a, const Matrix& b, Matrix& c,
                 const Epilogue& ep) {
  require(a.cols() == b.rows(), "matmul_into: inner dimension mismatch");
  check_shapes(a, b, c, a.rows(), b.cols(), a.cols(), "matmul_into");
  gemm_nn(a.rows(), b.cols(), a.cols(), a.data().data(), a.cols(),
          b.data().data(), b.cols(), c.data().data(), c.cols(), ep);
}

void matmul_tn_into(const Matrix& a, const Matrix& b, Matrix& c,
                    const Epilogue& ep) {
  require(a.rows() == b.rows(), "matmul_tn_into: inner dimension mismatch");
  check_shapes(a, b, c, a.cols(), b.cols(), a.rows(), "matmul_tn_into");
  gemm_tn(a.cols(), b.cols(), a.rows(), a.data().data(), a.cols(),
          b.data().data(), b.cols(), c.data().data(), c.cols(), ep);
}

void matmul_nt_into(const Matrix& a, const Matrix& b, Matrix& c,
                    const Epilogue& ep) {
  require(a.cols() == b.cols(), "matmul_nt_into: inner dimension mismatch");
  check_shapes(a, b, c, a.rows(), b.rows(), a.cols(), "matmul_nt_into");
  gemm_nt(a.rows(), b.rows(), a.cols(), a.data().data(), a.cols(),
          b.data().data(), b.cols(), c.data().data(), c.cols(), ep);
}

Matrix matmul(const Matrix& a, const Matrix& b, const Epilogue& ep) {
  Matrix c(a.rows(), b.cols());
  matmul_into(a, b, c, ep);
  return c;
}

void axpy(std::size_t n, double alpha, const double* __restrict x,
          double* __restrict y) {
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void scale(std::size_t n, double alpha, double* __restrict x) {
  for (std::size_t i = 0; i < n; ++i) x[i] *= alpha;
}

double dot(std::size_t n, const double* __restrict x,
           const double* __restrict y) {
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) s += x[i] * y[i];
  return s;
}

void col_sums_add(std::size_t m, std::size_t n, const double* a,
                  std::size_t lda, double* __restrict out) {
  for (std::size_t i = 0; i < m; ++i) {
    const double* __restrict row = a + i * lda;
    for (std::size_t j = 0; j < n; ++j) out[j] += row[j];
  }
}

}  // namespace coda::kernels
