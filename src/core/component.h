// Component model: every graph vertex is a named AI/ML operation (Section
// IV: "v_i = (name_i, operation_i)"). Operations are of two kinds —
// Transform (_.transform) and Estimate (_.fit) — mirrored here as the
// Transformer and Estimator interfaces.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/core/param.h"
#include "src/data/matrix.h"

namespace coda {

/// Base of all graph-node operations. Concrete components declare their
/// tunable parameters (with defaults) in their constructor; users override
/// them via set_param / the node__param convention.
class Component {
 public:
  explicit Component(std::string name) : name_(std::move(name)) {}
  virtual ~Component() = default;

  /// The node name (unique within a graph; used as the param prefix).
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Current parameter values.
  const ParamMap& params() const { return params_; }

  /// Sets a declared parameter; throws NotFound for undeclared keys so
  /// typos in "node__param" addressing fail loudly rather than silently.
  void set_param(const std::string& key, const ParamValue& value) {
    if (!params_.contains(key)) {
      throw NotFound("Component '" + name_ + "': unknown parameter '" + key +
                     "'");
    }
    params_.set(key, value);
  }

  /// Applies every entry of `values` via set_param.
  void set_params(const ParamMap& values) {
    for (const auto& [k, v] : values) set_param(k, v);
  }

  /// Polymorphic deep copy.
  virtual std::unique_ptr<Component> clone() const = 0;

  /// Canonical "name(params)" rendering used in pipeline spec strings.
  std::string spec() const {
    const std::string p = params_.to_string();
    return p.empty() ? name_ : name_ + "(" + p + ")";
  }

 protected:
  Component(const Component&) = default;
  Component& operator=(const Component&) = default;

  /// Declares a tunable parameter with its default value.
  void declare_param(const std::string& key, ParamValue default_value) {
    params_.set(key, std::move(default_value));
  }

 private:
  std::string name_;
  ParamMap params_;
};

/// A Transform operation: fit() learns any state from training data,
/// transform() maps data items to new data items (Fig 5: internal pipeline
/// nodes run "fit & transform" during training and "transform" during
/// prediction).
class Transformer : public Component {
 public:
  using Component::Component;

  /// Learns transformer state. `y` is available for supervised transformers
  /// (e.g. SelectKBest) and ignored by unsupervised ones.
  virtual void fit(const Matrix& X, const std::vector<double>& y) = 0;

  /// Applies the learned transform; requires fit() first.
  virtual Matrix transform(const Matrix& X) const = 0;

  Matrix fit_transform(const Matrix& X, const std::vector<double>& y) {
    fit(X, y);
    return transform(X);
  }

  /// clone() with the static type preserved.
  std::unique_ptr<Transformer> clone_transformer() const {
    auto c = clone();
    auto* t = dynamic_cast<Transformer*>(c.get());
    require(t != nullptr, "clone() did not return a Transformer");
    c.release();
    return std::unique_ptr<Transformer>(t);
  }
};

/// An Estimate operation: fit() trains a model on a collection, predict()
/// scores new items (Fig 5: the last pipeline node runs "fit" during
/// training and "predict" during prediction).
class Estimator : public Component {
 public:
  using Component::Component;

  virtual void fit(const Matrix& X, const std::vector<double>& y) = 0;

  /// Predictions: real values for regression; for binary classification the
  /// convention is a score in [0,1] interpreted as P(label=1).
  virtual std::vector<double> predict(const Matrix& X) const = 0;

  /// clone() with the static type preserved.
  std::unique_ptr<Estimator> clone_estimator() const {
    auto c = clone();
    auto* e = dynamic_cast<Estimator*>(c.get());
    require(e != nullptr, "clone() did not return an Estimator");
    c.release();
    return std::unique_ptr<Estimator>(e);
  }
};

/// The NoOp transformer (Section IV-A): "allows users to skip the operation
/// in that stage" — the identity transform.
class NoOp final : public Transformer {
 public:
  NoOp() : Transformer("noop") {}

  void fit(const Matrix&, const std::vector<double>&) override {}

  Matrix transform(const Matrix& X) const override { return X; }

  std::unique_ptr<Component> clone() const override {
    return std::make_unique<NoOp>(*this);
  }
};

}  // namespace coda
