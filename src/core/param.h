// Component parameters and the "node__param" addressing convention.
//
// Section IV: each graph node has a unique name; users supply external
// parameters addressed as "<node>__<param>" (node name, two underscores,
// attribute name — the convention adopted from sklearn). ParamMap carries
// typed values; split_node_param() implements the addressing.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "src/util/error.h"

namespace coda {

/// A typed parameter value.
using ParamValue = std::variant<std::int64_t, double, bool, std::string>;

/// Renders a value for spec strings and DARR keys ("5", "0.3", "true", "x").
std::string param_value_to_string(const ParamValue& v);

/// An ordered name -> value map of component parameters.
class ParamMap {
 public:
  ParamMap() = default;
  ParamMap(std::initializer_list<std::pair<const std::string, ParamValue>> init)
      : values_(init) {}

  bool contains(const std::string& key) const {
    return values_.count(key) != 0;
  }
  bool empty() const { return values_.empty(); }
  std::size_t size() const { return values_.size(); }

  void set(const std::string& key, ParamValue value) {
    values_[key] = std::move(value);
  }

  const ParamValue& get(const std::string& key) const;

  std::int64_t get_int(const std::string& key) const;
  double get_double(const std::string& key) const;  ///< accepts int too
  bool get_bool(const std::string& key) const;
  const std::string& get_string(const std::string& key) const;

  std::optional<ParamValue> try_get(const std::string& key) const;

  /// Merges `other` into this map (other wins on conflicts).
  void merge(const ParamMap& other);

  /// Canonical "k1=v1,k2=v2" rendering (sorted by key) for spec strings.
  std::string to_string() const;

  auto begin() const { return values_.begin(); }
  auto end() const { return values_.end(); }

  bool operator==(const ParamMap& other) const {
    return values_ == other.values_;
  }

 private:
  std::map<std::string, ParamValue> values_;
};

/// Splits "pca__n_components" into {"pca", "n_components"}. Returns nullopt
/// when the key carries no node prefix.
std::optional<std::pair<std::string, std::string>> split_node_param(
    const std::string& key);

/// A grid of candidate values per parameter, expanded to the cartesian
/// product of assignments (Section II: "optimize parameters and
/// systematically test several algorithms").
class ParamGrid {
 public:
  ParamGrid() = default;

  ParamGrid& add(const std::string& key, std::vector<ParamValue> values);

  bool empty() const { return axes_.empty(); }

  /// Number of assignments in the cartesian product (1 when empty).
  std::size_t n_assignments() const;

  /// All assignments; an empty grid yields one empty ParamMap.
  std::vector<ParamMap> expand() const;

 private:
  std::vector<std::pair<std::string, std::vector<ParamValue>>> axes_;
};

}  // namespace coda
