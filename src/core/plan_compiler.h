// Fused TE-Graph plan compilation (DESIGN.md §14).
//
// The interpreted evaluators execute a root→leaf path stage by stage,
// materializing a full Matrix between every pair of stages. This lowering
// pass compiles a path into an ExecutionPlan that folds maximal runs of
// *lowerable* stages into one elementwise pass: every scaler in Table I is,
// post-fit, the per-column affine map x ↦ (x - shift[c]) / div[c], so a
// chain of them applies as one op sequence per element with no intermediate
// buffers. Components without a fused lowering (PCA, selectors, custom
// transformers) break the chain: the plan materializes once, runs the stage
// interpreted, and may resume fusing after it.
//
// Equivalence guarantee (pinned by tests/test_plan_compiler.cpp and the
// randomized-graph suite in tests/test_properties.cpp): fused execution is
// bit-identical to interpreted execution. Per element the fused chain
// applies exactly the op sequence the staged transforms would, and stage
// fits are computed from a *virtual* view of the chain output replicating
// the interpreted fit arithmetic operation for operation (same summation
// order, same zero-range guards, same quantile interpolation).
//
// Compiled plans are memoized in the engine's PrefixCache alongside fitted
// prefixes, keyed by the canonical stage specs — the same fingerprint that
// keys prefix reuse, so a parameter change invalidates both together.
//
// Metrics: `eval.plan.compiled` counts plan compilations;
// `eval.plan.fused_stages` / `eval.plan.fallback` count, per compilation,
// the stages that lowered into a fused chain vs. fell back to interpreted
// execution.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "src/core/eval_engine.h"
#include "src/core/metrics.h"
#include "src/core/pipeline.h"
#include "src/data/matrix.h"

namespace coda {

/// The fused form of one fitted scaler stage: per column c,
/// out = (x - shift[c]) / div[c]. `identity` marks a NoOp lowering (applied
/// as a true pass-through, matching NoOp::transform exactly).
struct FusedAffine {
  bool identity = false;
  std::vector<double> shift;
  std::vector<double> div;

  double apply(double v, std::size_t c) const {
    return identity ? v : (v - shift[c]) / div[c];
  }
  std::size_t bytes() const {
    return sizeof(FusedAffine) + (shift.size() + div.size()) * sizeof(double);
  }
};

/// An ordered run of fused stages applied as one elementwise op sequence.
struct FusedChain {
  std::vector<FusedAffine> stages;

  double apply(double v, std::size_t c) const {
    for (const FusedAffine& s : stages) v = s.apply(v, c);
    return v;
  }
  bool empty() const { return stages.empty(); }
};

/// Counts one plan compilation and its fused/fallback stage split in the
/// eval.plan.* metric family (shared by the tabular and forecast lowerers).
void record_plan_compiled(std::size_t n_fused, std::size_t n_fallback);

/// True when `t` has a fused lowering (the Table I scalers and NoOp). A
/// pure type probe — works on unfitted components, which is what plan
/// compilation sees.
bool lowerable_scaler(const Transformer& t);

/// Extracts the affine form of an already-fitted lowerable scaler.
/// Requires lowerable_scaler(t).
FusedAffine lower_scaler(const Transformer& t);

/// Computes the affine `t` *would* fit on the chain-transformed view of
/// `base`, without materializing that view: the fit statistics are computed
/// on the fly with the interpreted fit's exact arithmetic. Requires
/// lowerable_scaler(t); `t` itself is not mutated.
FusedAffine fit_affine_virtual(const Transformer& t, const Matrix& base,
                               const FusedChain& chain);

/// The compiled form of a tabular root→leaf path: which transformer stages
/// lower into fused chains and which execute interpreted. Estimators are
/// never part of the plan (the leaf IS the candidate).
struct CompiledTabularPlan {
  struct Stage {
    std::string spec;  ///< canonical component spec (plan-cache keying)
    bool fused = false;
  };
  std::vector<Stage> stages;
  std::size_t n_fused = 0;
  std::size_t n_fallback = 0;

  std::size_t bytes() const;
};

/// Lowers `pipeline`'s transformer chain. Counts `eval.plan.compiled` and
/// the per-stage `eval.plan.{fused_stages,fallback}` split.
std::shared_ptr<const CompiledTabularPlan> compile_tabular_plan(
    const Pipeline& pipeline);

/// Executes one candidate x fold through the compiled plan: fused segments
/// run as single elementwise passes over the fold matrices, fallback stages
/// run interpreted on a materialized boundary, and each segment boundary is
/// memoized in `prefixes` (keyed "tabplan|f<fold>|<specs...>") so sibling
/// candidates sharing the segment reuse it. Returns the fold score.
/// Bit-identical to the interpreted score path.
double execute_tabular_plan(const CompiledTabularPlan& plan,
                            Pipeline& pipeline, const Matrix& train_X,
                            const std::vector<double>& train_y,
                            const Matrix& test_X,
                            const std::vector<double>& test_y,
                            std::size_t fold, PrefixCache& prefixes,
                            Metric metric);

}  // namespace coda
