#include "src/core/nested_cv.h"

#include <cmath>

namespace coda {

NestedCvResult nested_cross_validate(const TEGraph& graph,
                                     const Dataset& data,
                                     const CrossValidator& outer_cv,
                                     const CrossValidator& inner_cv,
                                     const EvalOptions& config) {
  data.validate();
  const auto outer_splits = outer_cv.splits(data.n_samples());
  require(!outer_splits.empty(), "nested_cross_validate: no outer splits");

  GraphEvaluator evaluator(config);
  NestedCvResult result;
  result.outer_scores.reserve(outer_splits.size());

  for (const auto& split : outer_splits) {
    const Dataset train = data.select(split.train);
    const Dataset test = data.select(split.test);

    Pipeline winner = evaluator.train_best(graph, train, inner_cv);
    const auto inner_report = evaluator.evaluate(graph, train, inner_cv);
    result.mean_inner_score += inner_report.best().mean_score;
    result.selected_specs.push_back(inner_report.best().spec);

    const auto predictions = winner.predict(test.X);
    result.outer_scores.push_back(
        score(config.metric, test.y, predictions));
  }

  const double n = static_cast<double>(result.outer_scores.size());
  result.mean_inner_score /= n;
  for (const double s : result.outer_scores) result.mean_score += s;
  result.mean_score /= n;
  double var = 0.0;
  for (const double s : result.outer_scores) {
    const double d = s - result.mean_score;
    var += d * d;
  }
  result.stddev = std::sqrt(var / n);
  return result;
}

}  // namespace coda
