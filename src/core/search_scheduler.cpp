#include "src/core/search_scheduler.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <numeric>
#include <string>
#include <utility>

#include "src/obs/obs.h"
#include "src/util/error.h"
#include "src/util/stopwatch.h"
#include "src/util/thread_pool.h"
#include "src/util/timer_wheel.h"

namespace coda {

namespace {

double seconds_between(std::chrono::steady_clock::time_point from,
                       std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

/// SplitMix64 step — the same generator family Rng seeds with; inlined
/// here so the tournament permutation is a pure function of the seed with
/// no dependence on library distribution internals.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

std::size_t halving_survivors(std::size_t entrants, std::size_t eta) {
  require(eta >= 2, "halving_survivors: eta must be >= 2");
  if (entrants == 0) return 0;
  const std::size_t kept = (entrants + eta - 1) / eta;
  return kept == 0 ? 1 : kept;
}

std::vector<std::size_t> tournament_ranks(std::size_t n, std::uint64_t seed) {
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  if (seed != 0) {
    std::uint64_t state = seed;
    for (std::size_t i = n; i > 1; --i) {
      const std::size_t j =
          static_cast<std::size_t>(splitmix64(state) % static_cast<std::uint64_t>(i));
      std::swap(order[i - 1], order[j]);
    }
  }
  std::vector<std::size_t> rank(n);
  for (std::size_t pos = 0; pos < n; ++pos) rank[order[pos]] = pos;
  return rank;
}

HalvingPlan HalvingPlan::build(std::size_t n_candidates, std::size_t n_folds,
                               std::size_t eta) {
  require(n_candidates > 0, "HalvingPlan: no candidates");
  require(n_folds > 0, "HalvingPlan: need at least one fold");
  require(eta >= 2, "HalvingPlan: eta must be >= 2");
  HalvingPlan plan;
  plan.n_candidates = n_candidates;
  plan.n_folds = n_folds;
  plan.eta = eta;
  std::size_t fold = 0;
  std::size_t entrants = n_candidates;
  while (true) {
    if (entrants == 1 || n_folds - fold == 1) {
      // Final rung: the remaining entrants run every remaining fold, so
      // survivors end with full-CV scores (single-candidate early exit
      // lands here immediately — no racing against nobody).
      plan.rungs.push_back(RungSpec{fold, n_folds, entrants});
      break;
    }
    plan.rungs.push_back(RungSpec{fold, fold + 1, entrants});
    ++fold;
    entrants = halving_survivors(entrants, eta);
  }
  return plan;
}

std::size_t HalvingPlan::total_fold_evals() const {
  std::size_t total = 0;
  for (const RungSpec& r : rungs) total += r.entrants * r.folds();
  return total;
}

std::string rung_key(const std::string& base_key, const SearchOptions& search,
                     std::size_t rung) {
  if (base_key.empty()) return {};
  return base_key + "|shr|e" + std::to_string(search.eta) + "|s" +
         std::to_string(search.seed) + "|r" + std::to_string(rung);
}

namespace detail {

EvaluationReport run_halving_search(
    const EvalOptions& options,
    const std::vector<EvalEngine::Candidate>& candidates, std::size_t n_folds) {
  require(!candidates.empty(), "EvalEngine: no candidates");
  require(n_folds > 0, "EvalEngine: need at least one fold");
  obs::ScopedSpan span("evaluator.evaluate");
  PROF_SCOPE("eval.search.run");
  const obs::TraceContext root_ctx = span.context();
  const std::string root_node = obs::Tracer::current_node();
  Stopwatch total_timer;

  const std::size_t n = candidates.size();
  const HalvingPlan plan =
      HalvingPlan::build(n, n_folds, options.search.eta);
  const std::vector<std::size_t> tie_rank =
      tournament_ranks(n, options.search.seed);
  const bool maximize = higher_is_better(options.metric);

  // The saving is a property of the plan, not the schedule — count it once
  // up front so it is identical on every client and under every chaos
  // interleaving.
  obs::count_scoped("eval.search.fold_evals_saved",
                    plan.exhaustive_fold_evals() - plan.total_fold_evals());

  EvaluationReport report;
  report.metric = options.metric;
  report.results.resize(n);
  for (std::size_t i = 0; i < n; ++i) report.results[i].spec = candidates[i].spec;
  report.fold_evaluations_planned = plan.total_fold_evals();
  report.rungs = plan.rungs.size();

  // Racing state per candidate. Non-atomic fields are guarded by `mutex`
  // except those only touched by the candidate's own attempt chain
  // (attempts for one unit never overlap — each is scheduled by its
  // predecessor's requeue, and a candidate runs one rung at a time).
  struct Cand {
    std::vector<double> fold_scores;  ///< valid prefix [0, folds_known)
    std::size_t folds_known = 0;
    bool swept = false;         ///< full result served by the initial sweep
    bool computed_any = false;  ///< scored at least one fold locally
    int pruned_at = -1;
    double compute_seconds = 0.0;
    double claim_wait = 0.0;
    std::atomic<bool> failed{false};
    std::string failure_message;
    // Current-rung unit state.
    bool holds_token = false;
    bool deferred = false;      ///< claim-blocked, parked on the wheel
    bool was_deferred = false;  ///< counter guard (once per candidate)
    bool deadline_set = false;
    std::chrono::steady_clock::time_point block_start{};
    std::chrono::steady_clock::time_point deadline{};
    std::atomic<std::size_t> folds_left{0};
  };
  std::vector<std::unique_ptr<Cand>> cands(n);
  for (std::size_t i = 0; i < n; ++i) {
    cands[i] = std::make_unique<Cand>();
    cands[i]->fold_scores.assign(n_folds, 0.0);
  }

  // Initial sweep over the plain base keys: a candidate any client already
  // finished (exhaustive peer, earlier run, or a completed halving search)
  // skips racing entirely — it still ranks in every rung via its full fold
  // scores, which can only sharpen prune decisions.
  CooperativeFetch coop(options.cache);
  std::atomic<std::size_t> local_fold_evals{0};
  if (coop.cooperative()) {
    PROF_SCOPE("eval.sweep");
    std::vector<std::string> keys;
    keys.reserve(n);
    for (const auto& c : candidates) keys.push_back(c.key);
    Stopwatch sweep_timer;
    const auto hits = coop.fetch_many(keys);
    const double per_key = sweep_timer.elapsed_seconds() / static_cast<double>(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (!hits[i].has_value() || hits[i]->fold_scores.size() != n_folds) {
        continue;
      }
      Cand& c = *cands[i];
      c.swept = true;
      c.fold_scores = hits[i]->fold_scores;
      c.folds_known = n_folds;
      CandidateResult& out = report.results[i];
      out.mean_score = hits[i]->mean_score;
      out.stddev = hits[i]->stddev;
      out.fold_scores = hits[i]->fold_scores;
      out.from_cache = true;
      out.eval_seconds = per_key;
      obs::count_scoped("evaluator.candidate.cached");
      obs::CandidateCosts::instance().record_cached(candidates[i].spec);
    }
  }

  PrefixCache prefixes(options.prefix_cache_bytes);

  std::mutex mutex;
  std::condition_variable done_cv;
  bool all_done = false;
  std::size_t rung_index = 0;
  std::vector<std::size_t> entrants(n);
  std::iota(entrants.begin(), entrants.end(), std::size_t{0});
  std::size_t outstanding = 0;  ///< unresolved units in the current rung
  std::size_t unblocked = 0;    ///< unresolved units not claim-blocked
  std::deque<std::size_t> unit_queue;
  std::size_t tokens = 0;
  std::size_t pruned_total = 0;

  // Mean over the candidate's known fold prefix, truncated to `fold_end`.
  // Caller holds `mutex`.
  auto partial_mean = [&](std::size_t i, std::size_t fold_end) {
    const Cand& c = *cands[i];
    const std::size_t k = std::min(fold_end, c.folds_known);
    if (k == 0) return 0.0;
    double sum = 0.0;
    for (std::size_t f = 0; f < k; ++f) sum += c.fold_scores[f];
    return sum / static_cast<double>(k);
  };

  // Declared before the pool/wheel (and assigned after) so they are
  // destroyed only once the pool has joined its workers.
  std::function<void()> dispatch_locked;
  std::function<void(std::size_t)> attempt;
  std::function<void(std::size_t, std::size_t, std::size_t)> run_unit_fold;
  std::function<void(std::size_t, std::size_t)> finish_unit;
  std::function<void(std::size_t)> unit_done;
  std::function<void(std::size_t)> finalize_locked;
  std::function<void()> seal_locked;
  std::function<void()> start_rung_locked;

  ThreadPool pool(options.threads);
  tokens = pool.size();
  TimerWheel wheel;

  // Claim window, exactly as in the exhaustive engine: at most pool.size()
  // units claimed-but-unfinished at once. Caller holds `mutex`.
  dispatch_locked = [&] {
    while (tokens > 0 && !unit_queue.empty()) {
      const std::size_t i = unit_queue.front();
      unit_queue.pop_front();
      --tokens;
      cands[i]->holds_token = true;
      pool.submit([&attempt, i, root_ctx, root_node] {
        obs::ContextScope trace_scope(root_ctx, root_node);
        attempt(i);
      });
    }
  };

  // Copies the candidate's racing state into its report row. Caller holds
  // `mutex`. Swept candidates were finalized at the sweep and are skipped.
  finalize_locked = [&](std::size_t i) {
    Cand& c = *cands[i];
    if (c.swept) return;
    CandidateResult& out = report.results[i];
    out.claim_wait_seconds = c.claim_wait;
    out.pruned_at_rung = c.pruned_at;
    if (c.failed.load(std::memory_order_acquire)) {
      out.failed = true;
      out.failure_message = c.failure_message;
      obs::count_scoped("evaluator.candidate.failed");
      return;
    }
    const std::size_t k = c.folds_known;
    out.fold_scores.assign(c.fold_scores.begin(),
                           c.fold_scores.begin() + static_cast<std::ptrdiff_t>(k));
    double sum = 0.0;
    for (const double sc : out.fold_scores) sum += sc;
    out.mean_score = k > 0 ? sum / static_cast<double>(k) : 0.0;
    double var = 0.0;
    for (const double sc : out.fold_scores) {
      const double d = sc - out.mean_score;
      var += d * d;
    }
    out.stddev = k > 0 ? std::sqrt(var / static_cast<double>(k)) : 0.0;
    out.eval_seconds = c.compute_seconds;
    if (c.computed_any) {
      obs::count_scoped("evaluator.candidate.local");
      obs::observe_scoped("evaluator.candidate.seconds", out.eval_seconds);
    } else if (coop.cooperative()) {
      // Every rung segment arrived from peers.
      out.from_cache = true;
      obs::count_scoped("evaluator.candidate.cached");
      obs::CandidateCosts::instance().record_cached(candidates[i].spec);
    }
    // A candidate that completed the full fold set republishes under its
    // plain base key, so exhaustive peers and future runs hit the sweep
    // instead of re-racing (the repository's store is idempotent for the
    // bit-identical value every client assembles).
    if (k == n_folds && coop.cooperative() && !candidates[i].key.empty()) {
      coop.put(candidates[i].key,
               CachedResult{out.mean_score, out.stddev, out.fold_scores,
                            candidates[i].spec});
    }
  };

  // Rank-and-prune seal (DESIGN.md §16): runs exactly once per rung, when
  // its last unit resolves. Ranking is a pure function of fold scores,
  // enumeration order and the seeded tournament permutation — no schedule
  // state — so every cooperating client seals identically. Caller holds
  // `mutex`.
  seal_locked = [&] {
    PROF_SCOPE("eval.search.seal");
    obs::count_scoped("eval.search.rungs");
    const RungSpec& rung = plan.rungs[rung_index];
    const bool final_rung = rung_index + 1 == plan.rungs.size();
    if (final_rung) {
      for (const std::size_t i : entrants) finalize_locked(i);
      all_done = true;
      done_cv.notify_all();
      return;
    }
    std::vector<std::size_t> order = entrants;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      const bool fa = cands[a]->failed.load(std::memory_order_acquire);
      const bool fb = cands[b]->failed.load(std::memory_order_acquire);
      if (fa != fb) return !fa;  // failed candidates rank strictly last
      if (!fa) {
        const double sa = partial_mean(a, rung.fold_end);
        const double sb = partial_mean(b, rung.fold_end);
        if (sa != sb) return maximize ? sa > sb : sa < sb;
      }
      return tie_rank[a] < tie_rank[b];
    });
    const std::size_t keep = plan.rungs[rung_index + 1].entrants;
    for (std::size_t pos = keep; pos < order.size(); ++pos) {
      const std::size_t i = order[pos];
      Cand& c = *cands[i];
      // Every cut entrant is pruned at this rung — including failed ones
      // (ranked strictly last): the rung records where the race dropped
      // them. Swept candidates keep their full-CV row untouched.
      if (!c.swept) {
        c.pruned_at = static_cast<int>(rung_index);
        obs::count_scoped("eval.search.pruned");
        obs::CandidateCosts::instance().record_pruned(
            candidates[i].spec, static_cast<int>(rung_index));
        ++pruned_total;
      }
      finalize_locked(i);
    }
    // Promote in rank order: the current best candidates queue first
    // (GraphLab-style prioritized continuation).
    order.resize(keep);
    entrants = std::move(order);
    ++rung_index;
    start_rung_locked();
  };

  // Submits the current rung's unresolved units. Caller holds `mutex`.
  start_rung_locked = [&] {
    const RungSpec& rung = plan.rungs[rung_index];
    outstanding = 0;
    unit_queue.clear();
    for (const std::size_t i : entrants) {
      Cand& c = *cands[i];
      if (c.failed.load(std::memory_order_acquire) ||
          c.folds_known >= rung.fold_end) {
        continue;  // already resolved (failed earlier, swept, or cached)
      }
      c.deferred = false;
      c.deadline_set = false;
      ++outstanding;
      unit_queue.push_back(i);
    }
    unblocked = outstanding;
    if (outstanding == 0) {
      seal_locked();
      return;
    }
    dispatch_locked();
  };

  // A unit resolved (computed, adopted from a peer, or failed): release
  // its window slot and seal the rung when it was the last one out.
  unit_done = [&](std::size_t i) {
    std::lock_guard<std::mutex> lock(mutex);
    Cand& c = *cands[i];
    if (!c.deferred) --unblocked;
    c.deferred = false;
    if (c.holds_token) {
      c.holds_token = false;
      ++tokens;
    }
    --outstanding;
    dispatch_locked();
    if (outstanding == 0) seal_locked();
  };

  // All of the unit's folds are in (or it failed): publish/release the
  // rung-segment key, commit folds_known, resolve the unit.
  finish_unit = [&](std::size_t i, std::size_t r) {
    Cand& c = *cands[i];
    const RungSpec& rung = plan.rungs[r];
    const std::string key = rung_key(candidates[i].key, options.search, r);
    const bool failed = c.failed.load(std::memory_order_acquire);
    if (coop.cooperative() && !key.empty()) {
      if (failed) {
        coop.release(key);
      } else {
        CachedResult segment;
        segment.fold_scores.assign(
            c.fold_scores.begin() + static_cast<std::ptrdiff_t>(rung.fold_begin),
            c.fold_scores.begin() + static_cast<std::ptrdiff_t>(rung.fold_end));
        double sum = 0.0;
        for (const double sc : segment.fold_scores) sum += sc;
        segment.mean_score =
            sum / static_cast<double>(segment.fold_scores.size());
        double var = 0.0;
        for (const double sc : segment.fold_scores) {
          const double d = sc - segment.mean_score;
          var += d * d;
        }
        segment.stddev =
            std::sqrt(var / static_cast<double>(segment.fold_scores.size()));
        segment.explanation = candidates[i].spec;
        coop.put(key, segment);
      }
    }
    if (!failed) {
      std::lock_guard<std::mutex> lock(mutex);
      c.folds_known = rung.fold_end;
      c.computed_any = true;
    }
    unit_done(i);
  };

  run_unit_fold = [&](std::size_t i, std::size_t fold, std::size_t r) {
    Cand& c = *cands[i];
    if (!c.failed.load(std::memory_order_acquire)) {
      PROF_SCOPE("eval.fold");
      obs::ScopedSpan fold_span("evaluator.fold");
      fold_span.tag("path", candidates[i].spec);
      fold_span.tag("fold", std::to_string(fold));
      fold_span.tag("rung", std::to_string(r));
      obs::CandidateScope cost_scope(candidates[i].spec);
      try {
        Stopwatch fold_timer;
        const double sc = candidates[i].score_fold(fold, prefixes);
        c.fold_scores[fold] = sc;
        const double elapsed = fold_timer.elapsed_seconds();
        obs::observe_scoped("cv.fold.seconds", elapsed);
        obs::CandidateCosts::instance().record_fold(candidates[i].spec,
                                                    elapsed);
        local_fold_evals.fetch_add(1, std::memory_order_acq_rel);
        std::lock_guard<std::mutex> lock(mutex);
        c.compute_seconds += elapsed;
      } catch (const std::exception& e) {
        bool expected = false;
        if (c.failed.compare_exchange_strong(expected, true,
                                             std::memory_order_acq_rel)) {
          std::lock_guard<std::mutex> lock(mutex);
          c.failure_message = e.what();
        }
      }
    }
    if (c.folds_left.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      finish_unit(i, r);
    }
  };

  attempt = [&](std::size_t i) {
    Cand& c = *cands[i];
    std::size_t r;
    bool retry;
    {
      std::lock_guard<std::mutex> lock(mutex);
      r = rung_index;
      retry = c.deferred;
    }
    const RungSpec& rung = plan.rungs[r];
    PROF_SCOPE("eval.search.unit");
    obs::ScopedSpan attempt_span("evaluator.candidate");
    attempt_span.tag("path", candidates[i].spec);
    attempt_span.tag("rung", std::to_string(r));
    if (retry) attempt_span.tag("retry", "1");
    const std::string key = rung_key(candidates[i].key, options.search, r);
    if (coop.cooperative() && !key.empty()) {
      // Adopt a published segment if one exists: on a retry that is the
      // peer whose claim deferred us finishing; on a first attempt it is a
      // segment left by an earlier run — rung keys are invisible to the
      // base-key sweep, so they must be probed here before claiming.
      if (auto hit = coop.fetch(key)) {
        bool adopted = false;
        double wait = -1.0;
        {
          std::lock_guard<std::mutex> lock(mutex);
          const std::size_t want = rung.folds();
          // A malformed segment (foreign publisher) is ignored — the
          // claim cycle below falls through to local compute.
          if (hit->fold_scores.size() == want) {
            for (std::size_t f = 0; f < want; ++f) {
              c.fold_scores[rung.fold_begin + f] = hit->fold_scores[f];
            }
            c.folds_known = rung.fold_end;
            adopted = true;
            if (retry) {
              wait = seconds_between(c.block_start,
                                     std::chrono::steady_clock::now());
              c.claim_wait += wait;
            }
          }
        }
        if (adopted) {
          if (wait >= 0.0) {
            obs::observe_scoped("evaluator.claim.wait_seconds", wait);
            obs::CandidateCosts::instance().record_claim_wait(
                candidates[i].spec, wait);
          }
          unit_done(i);
          return;
        }
      }
      if (!coop.claim(key)) {
        // Claim-blocked: park the unit on the timer wheel; workers keep
        // racing other candidates. No thread sleeps here.
        std::lock_guard<std::mutex> lock(mutex);
        const auto block_now = std::chrono::steady_clock::now();
        if (!c.deferred) {
          c.deferred = true;
          c.block_start = block_now;
          --unblocked;
          if (c.holds_token) {
            c.holds_token = false;
            ++tokens;
            dispatch_locked();
          }
          if (!c.was_deferred) {
            c.was_deferred = true;
            obs::count_scoped("evaluator.candidate.deferred");
          }
        }
        const bool expired = c.deadline_set && block_now >= c.deadline;
        if (!expired) {
          if (!c.deadline_set && unblocked == 0) {
            // No local work left to hide the wait behind — start the
            // local-compute deadline (peer-failure safety net). With every
            // unit of the rung blocked, the seal cannot happen until
            // somebody's result lands or this deadline fires.
            c.deadline_set = true;
            c.deadline = block_now + std::chrono::milliseconds(
                                         options.claim_wait_ms);
          }
          obs::count_scoped("eval.claim.requeued");
          wheel.schedule(std::chrono::milliseconds(options.claim_poll_ms),
                         [&pool, &attempt, i, root_ctx, root_node] {
                           pool.submit([&attempt, i, root_ctx, root_node] {
                             obs::ContextScope trace_scope(root_ctx, root_node);
                             attempt(i);
                           });
                         });
          return;
        }
        // Deadline expired without a stored segment or a winnable claim:
        // the peer presumably died. Compute locally without the claim so
        // the rung always seals.
      }
      {
        std::lock_guard<std::mutex> lock(mutex);
        if (c.deferred) {
          c.deferred = false;
          ++unblocked;
          const double wait = seconds_between(
              c.block_start, std::chrono::steady_clock::now());
          c.claim_wait += wait;
          obs::observe_scoped("evaluator.claim.wait_seconds", wait);
          obs::CandidateCosts::instance().record_claim_wait(
              candidates[i].spec, wait);
        }
      }
    }
    // Fan out one task per fold of the segment (a single fold on racing
    // rungs, the full remainder on the final rung). Fold tasks parent
    // under this attempt's span.
    const obs::TraceContext fold_ctx = attempt_span.context();
    c.folds_left.store(rung.folds(), std::memory_order_release);
    for (std::size_t fold = rung.fold_begin; fold < rung.fold_end; ++fold) {
      pool.submit([&run_unit_fold, i, fold, r, fold_ctx, root_node] {
        obs::ContextScope trace_scope(fold_ctx, root_node);
        run_unit_fold(i, fold, r);
      });
    }
  };

  {
    std::lock_guard<std::mutex> lock(mutex);
    start_rung_locked();
  }
  {
    std::unique_lock<std::mutex> lock(mutex);
    done_cv.wait(lock, [&] { return all_done; });
  }
  // `wheel` (destroyed first) can no longer re-submit into `pool`; with
  // the final rung sealed neither holds engine work.

  report.fold_evaluations =
      local_fold_evals.load(std::memory_order_acquire);
  report.pruned_candidates = pruned_total;

  // Best = best full-CV, non-failed candidate (survivors of the final
  // rung plus anything served whole from the cooperative cache). Pruned
  // candidates carry partial scores and are not eligible. Order-stable:
  // earlier candidate wins ties, exactly like the exhaustive path.
  bool found = false;
  for (std::size_t i = 0; i < n; ++i) {
    const CandidateResult& res = report.results[i];
    report.total_claim_wait_seconds += res.claim_wait_seconds;
    if (res.failed) continue;
    if (res.from_cache) {
      ++report.served_from_cache;
    } else {
      ++report.evaluated_locally;
    }
    if (res.fold_scores.size() != n_folds) continue;  // pruned: partial CV
    if (!found) {
      report.best_index = i;
      found = true;
      continue;
    }
    const CandidateResult& best = report.results[report.best_index];
    const bool better = maximize ? res.mean_score > best.mean_score
                                 : res.mean_score < best.mean_score;
    if (better) report.best_index = i;
  }
  require_state(found, "EvalEngine: every candidate failed");
  report.total_seconds = total_timer.elapsed_seconds();
  return report;
}

}  // namespace detail

}  // namespace coda
