// Nested K-fold cross-validation (Section IV-B lists "Nested K-fold" among
// the validation strategies): an unbiased estimate of the *whole model-
// selection procedure*. The outer folds hold out test data the inner graph
// search never sees; per outer fold, the graph is searched on the training
// side with the inner CV, the winning pipeline is refit on that training
// side, and scored on the outer test fold.
#pragma once

#include <string>
#include <vector>

#include "src/core/evaluator.h"

namespace coda {

/// Result of a nested cross-validation of a graph search.
struct NestedCvResult {
  /// Outer-fold scores of the per-fold winners (the unbiased estimate of
  /// deployed-search performance).
  std::vector<double> outer_scores;
  double mean_score = 0.0;
  double stddev = 0.0;
  /// The pipeline each outer fold selected (winners can differ per fold —
  /// that variability is what plain CV hides).
  std::vector<std::string> selected_specs;
  /// Mean of the winners' *inner* CV scores — typically optimistic
  /// relative to mean_score; the gap is the selection bias.
  double mean_inner_score = 0.0;
};

/// Runs the nested procedure. `outer_cv` partitions the data; `inner_cv`
/// drives the per-fold graph search under `config`.
NestedCvResult nested_cross_validate(const TEGraph& graph,
                                     const Dataset& data,
                                     const CrossValidator& outer_cv,
                                     const CrossValidator& inner_cv,
                                     const EvalOptions& config);

}  // namespace coda
