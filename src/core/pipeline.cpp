#include "src/core/pipeline.h"

namespace coda {

Pipeline::Pipeline(const Pipeline& other) : fitted_(other.fitted_) {
  transformers_.reserve(other.transformers_.size());
  for (const auto& t : other.transformers_) {
    transformers_.push_back(t->clone_transformer());
  }
  if (other.estimator_) estimator_ = other.estimator_->clone_estimator();
}

Pipeline& Pipeline::operator=(const Pipeline& other) {
  if (this != &other) {
    Pipeline copy(other);
    *this = std::move(copy);
  }
  return *this;
}

void Pipeline::add_transformer(std::unique_ptr<Transformer> t) {
  require(t != nullptr, "Pipeline: null transformer");
  check_unique_name(t->name());
  transformers_.push_back(std::move(t));
  fitted_ = false;
}

void Pipeline::set_estimator(std::unique_ptr<Estimator> e) {
  require(e != nullptr, "Pipeline: null estimator");
  check_unique_name(e->name());
  estimator_ = std::move(e);
  fitted_ = false;
}

const Transformer& Pipeline::transformer(std::size_t i) const {
  require(i < transformers_.size(), "Pipeline: transformer index out of range");
  return *transformers_[i];
}

Transformer& Pipeline::transformer(std::size_t i) {
  require(i < transformers_.size(), "Pipeline: transformer index out of range");
  return *transformers_[i];
}

const Estimator& Pipeline::estimator() const {
  require_state(estimator_ != nullptr, "Pipeline: no estimator set");
  return *estimator_;
}

Estimator& Pipeline::estimator() {
  require_state(estimator_ != nullptr, "Pipeline: no estimator set");
  return *estimator_;
}

Component* Pipeline::find_node(const std::string& name) {
  for (auto& t : transformers_) {
    if (t->name() == name) return t.get();
  }
  if (estimator_ && estimator_->name() == name) return estimator_.get();
  return nullptr;
}

void Pipeline::check_unique_name(const std::string& name) const {
  for (const auto& t : transformers_) {
    require(t->name() != name,
            "Pipeline: duplicate node name '" + name + "'");
  }
  require(!estimator_ || estimator_->name() != name,
          "Pipeline: duplicate node name '" + name + "'");
}

void Pipeline::set_params(const ParamMap& params) {
  for (const auto& [key, value] : params) {
    const auto split = split_node_param(key);
    if (!split) {
      throw InvalidArgument(
          "Pipeline::set_params: key '" + key +
          "' is not in node__param form");
    }
    Component* node = find_node(split->first);
    if (node == nullptr) {
      throw NotFound("Pipeline::set_params: no node named '" + split->first +
                     "'");
    }
    node->set_param(split->second, value);
  }
  fitted_ = false;
}

void Pipeline::fit(const Matrix& X, const std::vector<double>& y) {
  require_state(estimator_ != nullptr, "Pipeline::fit: no estimator set");
  require(X.rows() == y.size(), "Pipeline::fit: X/y size mismatch");
  Matrix current = X;
  for (auto& t : transformers_) {
    current = t->fit_transform(current, y);
    require(current.rows() == y.size(),
            "Pipeline::fit: transformer '" + t->name() +
                "' changed the number of samples");
  }
  estimator_->fit(current, y);
  fitted_ = true;
}

std::vector<double> Pipeline::predict(const Matrix& X) const {
  require_state(fitted_, "Pipeline::predict: call fit() first");
  Matrix current = X;
  for (const auto& t : transformers_) {
    current = t->transform(current);
  }
  return estimator_->predict(current);
}

std::string Pipeline::spec() const {
  std::string out;
  for (const auto& t : transformers_) {
    if (!out.empty()) out += " -> ";
    out += t->spec();
  }
  if (estimator_) {
    if (!out.empty()) out += " -> ";
    out += estimator_->spec();
  }
  return out;
}

std::vector<std::string> Pipeline::node_names() const {
  std::vector<std::string> names;
  names.reserve(transformers_.size() + 1);
  for (const auto& t : transformers_) names.push_back(t->name());
  if (estimator_) names.push_back(estimator_->name());
  return names;
}

}  // namespace coda
