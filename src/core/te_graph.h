// Transformer-Estimator Graph (Section IV, Fig 3, Fig 11).
//
// A rooted DAG organized in stages. Each stage offers multiple options
// (transformers, or estimators in the terminal stage); every root->leaf path
// is a candidate pipeline. Consecutive stages are fully connected by
// default; edges can be restricted per option (Fig 11: "each AI function is
// selectively connected to the estimators in the next stage").
#pragma once

#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/core/component.h"
#include "src/core/pipeline.h"

namespace coda {

/// One selectable option within a stage: a prototype component (cloned per
/// instantiated pipeline) plus an optional hyper-parameter grid and tags
/// used for edge restrictions.
struct StageOption {
  std::unique_ptr<Component> prototype;
  ParamGrid grid;
  std::vector<std::string> tags;
};

/// Builds a StageOption without a grid.
StageOption make_option(std::unique_ptr<Component> prototype,
                        std::vector<std::string> tags = {});

/// Builds a StageOption with a hyper-parameter grid.
StageOption make_option(std::unique_ptr<Component> prototype, ParamGrid grid,
                        std::vector<std::string> tags = {});

/// The Transformer-Estimator Graph.
class TEGraph {
 public:
  /// A path chooses one option index per stage.
  using Path = std::vector<std::size_t>;

  /// A fully specified pipeline: a path plus one hyper-parameter assignment
  /// (keys in node__param form).
  struct Candidate {
    Path path;
    ParamMap params;
  };

  /// Appends a stage. All stages but the last must contain only
  /// Transformers; the last stage must contain only Estimators (validated
  /// at enumeration time). Option names must be unique across the graph so
  /// the node__param convention is unambiguous.
  TEGraph& add_stage(std::string stage_name,
                     std::vector<StageOption> options);

  // Convenience builders mirroring the paper's Listing 1 API.
  TEGraph& add_feature_scalers(std::vector<std::unique_ptr<Transformer>> ts);
  TEGraph& add_feature_selectors(std::vector<std::unique_ptr<Transformer>> ts);
  TEGraph& add_preprocessors(std::string stage_name,
                             std::vector<std::unique_ptr<Transformer>> ts);
  TEGraph& add_regression_models(std::vector<std::unique_ptr<Estimator>> es);
  TEGraph& add_classification_models(std::vector<std::unique_ptr<Estimator>> es);

  std::size_t n_stages() const { return stages_.size(); }
  const std::string& stage_name(std::size_t i) const;
  std::size_t n_options(std::size_t stage) const;
  const StageOption& option(std::size_t stage, std::size_t index) const;

  /// Finds (stage, option) by the option's node name; throws NotFound.
  std::pair<std::size_t, std::size_t> find_option(
      const std::string& node_name) const;

  /// Restricts the outgoing edges of `from_option` (by node name) in stage
  /// `from_stage` to the named options of stage from_stage+1. Unrestricted
  /// options remain fully connected.
  TEGraph& restrict_edges(std::size_t from_stage,
                          const std::string& from_option,
                          const std::vector<std::string>& allowed_next);

  /// Connects every option tagged `from_tag` in stage `from_stage` to
  /// exactly the options tagged `to_tag` in the next stage.
  TEGraph& connect_tags(std::size_t from_stage, const std::string& from_tag,
                        const std::string& to_tag);

  /// True when the edge from (stage, a) to (stage+1, b) is allowed.
  bool edge_allowed(std::size_t stage, std::size_t a, std::size_t b) const;

  /// Number of root->leaf paths honouring edge restrictions (36 for the
  /// Fig 3 example).
  std::size_t count_paths() const;

  /// All legal paths in stage-major order.
  std::vector<Path> enumerate_paths() const;

  /// All candidates: each path crossed with the cartesian product of its
  /// options' parameter grids.
  ///
  /// Ordering guarantee (the evaluation engine's prefix cache relies on
  /// it): candidates are emitted prefix-major — paths come out of the
  /// stage-major DFS (adjacent paths share the longest possible stage
  /// prefix) and, within a path, grid assignments vary later stages fastest
  /// — so candidates sharing a fitted transformer prefix are enumerated
  /// adjacently and the shared entry is hot (and not yet evicted) when its
  /// siblings are scored.
  std::vector<Candidate> enumerate_candidates() const;

  /// Builds a runnable Pipeline for a candidate (clones prototypes, applies
  /// the candidate's parameters).
  Pipeline instantiate(const Candidate& candidate) const;

  /// Canonical spec string of a candidate (stable; used as DARR key part).
  std::string candidate_spec(const Candidate& candidate) const;

  /// Graphviz DOT rendering — the "create_graph" visual output of Listing 1.
  std::string to_dot(const std::string& graph_name = "te_graph") const;

 private:
  struct Stage {
    std::string name;
    std::vector<StageOption> options;
    // allowed_next[i]: restricted successor set of option i (nullopt = all).
    std::vector<std::optional<std::set<std::size_t>>> allowed_next;
  };

  void validate_shape() const;
  void enumerate_rec(std::size_t stage, Path& prefix,
                     std::vector<Path>& out) const;

  std::vector<Stage> stages_;
};

}  // namespace coda
