// Pipeline (Section IV-A, Fig 5): a chain of named transformers ending in an
// estimator. Training runs "fit & transform" through the internal nodes and
// "fit" on the last node; prediction runs "transform" through the internal
// nodes and "predict" on the last node.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/core/component.h"

namespace coda {

/// A fit/predict pipeline: transformers then one estimator.
class Pipeline {
 public:
  Pipeline() = default;

  Pipeline(const Pipeline& other);
  Pipeline& operator=(const Pipeline& other);
  Pipeline(Pipeline&&) = default;
  Pipeline& operator=(Pipeline&&) = default;

  /// Appends an internal transform node. Node names must be unique.
  void add_transformer(std::unique_ptr<Transformer> t);

  /// Sets the terminal estimate node; required before fit().
  void set_estimator(std::unique_ptr<Estimator> e);

  std::size_t n_transformers() const { return transformers_.size(); }
  const Transformer& transformer(std::size_t i) const;
  Transformer& transformer(std::size_t i);
  bool has_estimator() const { return estimator_ != nullptr; }
  const Estimator& estimator() const;
  Estimator& estimator();

  /// Routes "node__param" keys to the named node (Section IV naming
  /// convention). Keys without a node prefix are rejected.
  void set_params(const ParamMap& params);

  /// Training operation (Fig 5): internal nodes fit & transform, final node
  /// fits. Throws StateError if no estimator is set.
  void fit(const Matrix& X, const std::vector<double>& y);

  /// Prediction operation (Fig 5): internal nodes transform, final node
  /// predicts. Requires fit() first.
  std::vector<double> predict(const Matrix& X) const;

  bool is_fitted() const { return fitted_; }

  /// Canonical spec string, e.g.
  /// "robustscaler -> selectkbest(k=5) -> decisiontree(max_depth=4)".
  std::string spec() const;

  /// Node names in order (transformers then estimator).
  std::vector<std::string> node_names() const;

 private:
  Component* find_node(const std::string& name);
  void check_unique_name(const std::string& name) const;

  std::vector<std::unique_ptr<Transformer>> transformers_;
  std::unique_ptr<Estimator> estimator_;
  bool fitted_ = false;
};

}  // namespace coda
