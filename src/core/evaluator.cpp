#include "src/core/evaluator.h"

#include <chrono>
#include <cmath>
#include <future>
#include <thread>

#include "src/data/fingerprint.h"
#include "src/obs/obs.h"
#include "src/util/hash.h"
#include "src/util/stopwatch.h"
#include "src/util/thread_pool.h"

namespace coda {

std::optional<CachedResult> LocalResultCache::lookup(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = results_.find(key);
  if (it == results_.end()) return std::nullopt;
  return it->second;
}

bool LocalResultCache::try_claim(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (results_.count(key) != 0) return true;  // already done; lookup will hit
  return claims_.insert(key).second;
}

void LocalResultCache::store(const std::string& key,
                             const CachedResult& result) {
  std::lock_guard<std::mutex> lock(mutex_);
  results_[key] = result;
  claims_.erase(key);
}

void LocalResultCache::abandon(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  claims_.erase(key);
}

const CandidateResult& EvaluationReport::best() const {
  require_state(!results.empty(), "EvaluationReport: empty report");
  return results[best_index];
}

CachedResult cross_validate(const Pipeline& pipeline, const Dataset& data,
                            const CrossValidator& cv, Metric metric) {
  data.validate();
  const auto splits = cv.splits(data.n_samples());
  require(!splits.empty(), "cross_validate: CV produced no splits");

  static auto& fold_seconds = obs::histogram("cv.fold.seconds");
  const obs::ScopedSpan cv_span("cv.cross_validate");

  CachedResult result;
  result.explanation = pipeline.spec();
  result.fold_scores.reserve(splits.size());
  for (const auto& split : splits) {
    Stopwatch fold_timer;
    Pipeline fold_pipeline = pipeline;  // deep copy: folds are independent
    const Dataset train = data.select(split.train);
    const Dataset test = data.select(split.test);
    fold_pipeline.fit(train.X, train.y);
    const auto predictions = fold_pipeline.predict(test.X);
    result.fold_scores.push_back(score(metric, test.y, predictions));
    fold_seconds.observe(fold_timer.elapsed_seconds());
  }

  double sum = 0.0;
  for (const double s : result.fold_scores) sum += s;
  result.mean_score = sum / static_cast<double>(result.fold_scores.size());
  double var = 0.0;
  for (const double s : result.fold_scores) {
    const double d = s - result.mean_score;
    var += d * d;
  }
  result.stddev =
      std::sqrt(var / static_cast<double>(result.fold_scores.size()));
  return result;
}

GraphEvaluator::GraphEvaluator(EvaluatorConfig config)
    : config_(std::move(config)) {}

std::string GraphEvaluator::cache_key(const Dataset& data,
                                      const std::string& candidate_spec,
                                      const CrossValidator& cv,
                                      Metric metric) {
  return hash_to_hex(fingerprint(data)) + "|" + candidate_spec + "|" +
         cv.spec() + "|" + metric_name(metric);
}

EvaluationReport GraphEvaluator::evaluate(const TEGraph& graph,
                                          const Dataset& data,
                                          const CrossValidator& cv) const {
  const obs::ScopedSpan span("evaluator.evaluate");
  Stopwatch total_timer;
  const auto candidates = graph.enumerate_candidates();
  require(!candidates.empty(), "GraphEvaluator: graph has no candidates");

  EvaluationReport report;
  report.metric = config_.metric;
  report.results.resize(candidates.size());

  // Evaluates candidate i, honouring the cache/claim protocol when a cache
  // is configured. Exceptions from a candidate (e.g. a selector asked for
  // more components than features) are recorded, not propagated: one bad
  // path must not abort the whole search.
  //
  // Cooperative flow: when a peer already holds the claim for a candidate,
  // the first pass *defers* it (returns true) and moves on to other work —
  // blocking here would serialize the whole fleet. The second pass revisits
  // deferred candidates: it polls for the peer's result and, if the claim
  // expires without one (peer failure), claims and computes locally so the
  // search always completes.
  auto evaluate_one = [&](std::size_t i, bool allow_defer) -> bool {
    static auto& lookup_hit = obs::counter("darr.lookup.hit");
    static auto& lookup_miss = obs::counter("darr.lookup.miss");
    static auto& candidate_local = obs::counter("evaluator.candidate.local");
    static auto& candidate_cached = obs::counter("evaluator.candidate.cached");
    static auto& candidate_failed = obs::counter("evaluator.candidate.failed");
    static auto& candidate_deferred =
        obs::counter("evaluator.candidate.deferred");
    static auto& candidate_seconds =
        obs::histogram("evaluator.candidate.seconds");
    static auto& claim_wait_seconds =
        obs::histogram("evaluator.claim.wait_seconds");

    CandidateResult& out = report.results[i];
    const obs::ScopedSpan span("evaluator.candidate");
    Stopwatch timer;
    out.claim_wait_seconds = 0.0;
    const std::string spec = graph.candidate_spec(candidates[i]);
    out.spec = spec;
    const std::string key =
        config_.cache == nullptr
            ? std::string()
            : cache_key(data, spec, cv, config_.metric);
    // Copies a peer's cached result into `out`, with timing attribution.
    auto serve_from_cache = [&](const CachedResult& hit) {
      out.mean_score = hit.mean_score;
      out.stddev = hit.stddev;
      out.fold_scores = hit.fold_scores;
      out.from_cache = true;
      out.eval_seconds = timer.elapsed_seconds() - out.claim_wait_seconds;
      candidate_cached.inc();
    };
    try {
      if (config_.cache != nullptr) {
        if (auto hit = config_.cache->lookup(key)) {
          lookup_hit.inc();
          serve_from_cache(*hit);
          return false;
        }
        lookup_miss.inc();
        if (!config_.cache->try_claim(key)) {
          if (allow_defer) {
            candidate_deferred.inc();
            return true;  // a peer is on it; come back later
          }
          Stopwatch wait_timer;
          const auto deadline =
              std::chrono::steady_clock::now() +
              std::chrono::milliseconds(config_.claim_wait_ms);
          for (;;) {
            if (auto hit = config_.cache->lookup(key)) {
              lookup_hit.inc();
              out.claim_wait_seconds = wait_timer.elapsed_seconds();
              claim_wait_seconds.observe(out.claim_wait_seconds);
              serve_from_cache(*hit);
              return false;
            }
            lookup_miss.inc();
            if (config_.cache->try_claim(key)) break;  // peer claim expired
            if (std::chrono::steady_clock::now() >= deadline) break;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(config_.claim_poll_ms));
          }
          out.claim_wait_seconds = wait_timer.elapsed_seconds();
          claim_wait_seconds.observe(out.claim_wait_seconds);
        }
      }
      const Pipeline pipeline = graph.instantiate(candidates[i]);
      const CachedResult cv_result =
          cross_validate(pipeline, data, cv, config_.metric);
      out.mean_score = cv_result.mean_score;
      out.stddev = cv_result.stddev;
      out.fold_scores = cv_result.fold_scores;
      out.eval_seconds = timer.elapsed_seconds() - out.claim_wait_seconds;
      candidate_local.inc();
      candidate_seconds.observe(out.eval_seconds);
      if (config_.cache != nullptr) config_.cache->store(key, cv_result);
    } catch (const std::exception& e) {
      out.failed = true;
      out.failure_message = e.what();
      out.eval_seconds = timer.elapsed_seconds() - out.claim_wait_seconds;
      candidate_failed.inc();
      if (config_.cache != nullptr && !key.empty()) {
        config_.cache->abandon(key);
      }
    }
    return false;
  };

  std::vector<std::size_t> deferred;
  if (config_.threads == 1) {
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (evaluate_one(i, /*allow_defer=*/true)) deferred.push_back(i);
    }
    for (const std::size_t i : deferred) {
      evaluate_one(i, /*allow_defer=*/false);
    }
  } else {
    ThreadPool pool(config_.threads);
    std::vector<std::future<bool>> futures;
    futures.reserve(candidates.size());
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      futures.push_back(pool.submit(evaluate_one, i, true));
    }
    for (std::size_t i = 0; i < futures.size(); ++i) {
      if (futures[i].get()) deferred.push_back(i);
    }
    std::vector<std::future<bool>> retry;
    retry.reserve(deferred.size());
    for (const std::size_t i : deferred) {
      retry.push_back(pool.submit(evaluate_one, i, false));
    }
    for (auto& f : retry) f.get();
  }

  // Pick the best non-failed candidate.
  const bool maximize = higher_is_better(config_.metric);
  bool found = false;
  for (std::size_t i = 0; i < report.results.size(); ++i) {
    const auto& r = report.results[i];
    report.total_claim_wait_seconds += r.claim_wait_seconds;
    if (r.failed) continue;
    if (r.from_cache) {
      ++report.served_from_cache;
    } else {
      ++report.evaluated_locally;
    }
    if (!found) {
      report.best_index = i;
      found = true;
      continue;
    }
    const auto& best = report.results[report.best_index];
    const bool better = maximize ? r.mean_score > best.mean_score
                                 : r.mean_score < best.mean_score;
    if (better) report.best_index = i;
  }
  require_state(found, "GraphEvaluator: every candidate failed");
  report.total_seconds = total_timer.elapsed_seconds();
  return report;
}

Pipeline GraphEvaluator::train_best(const TEGraph& graph, const Dataset& data,
                                    const CrossValidator& cv) const {
  const auto report = evaluate(graph, data, cv);
  // Re-derive the best candidate by matching spec (reports do not own the
  // candidate objects; specs are canonical and unique per candidate).
  const auto candidates = graph.enumerate_candidates();
  for (const auto& candidate : candidates) {
    if (graph.candidate_spec(candidate) == report.best().spec) {
      Pipeline p = graph.instantiate(candidate);
      p.fit(data.X, data.y);
      return p;
    }
  }
  throw StateError("GraphEvaluator::train_best: best candidate not found");
}

}  // namespace coda
