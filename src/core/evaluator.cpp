#include "src/core/evaluator.h"

#include <cmath>
#include <utility>

#include "src/core/eval_engine.h"
#include "src/core/plan_compiler.h"
#include "src/data/fingerprint.h"
#include "src/obs/obs.h"
#include "src/util/hash.h"
#include "src/util/stopwatch.h"

namespace coda {

std::vector<std::optional<CachedResult>> ResultCache::fetch_many(
    const std::vector<std::string>& keys) {
  std::vector<std::optional<CachedResult>> out;
  out.reserve(keys.size());
  for (const auto& key : keys) out.push_back(fetch(key));
  return out;
}

std::optional<CachedResult> LocalResultCache::fetch(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = results_.find(key);
  if (it == results_.end()) return std::nullopt;
  return it->second;
}

bool LocalResultCache::claim(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (results_.count(key) != 0) return true;  // already done; fetch will hit
  return claims_.insert(key).second;
}

void LocalResultCache::put(const std::string& key,
                           const CachedResult& result) {
  std::lock_guard<std::mutex> lock(mutex_);
  results_[key] = result;
  claims_.erase(key);
}

void LocalResultCache::release(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  claims_.erase(key);
}

const CandidateResult& EvaluationReport::best() const {
  require_state(!results.empty(), "EvaluationReport: empty report");
  return results[best_index];
}

CachedResult cross_validate(const Pipeline& pipeline, const Dataset& data,
                            const CrossValidator& cv, Metric metric) {
  data.validate();
  const auto splits = cv.splits(data.n_samples());
  require(!splits.empty(), "cross_validate: CV produced no splits");

  static auto& fold_seconds = obs::histogram("cv.fold.seconds");
  const obs::ScopedSpan cv_span("cv.cross_validate");

  CachedResult result;
  result.explanation = pipeline.spec();
  result.fold_scores.reserve(splits.size());
  for (const auto& split : splits) {
    Stopwatch fold_timer;
    Pipeline fold_pipeline = pipeline;  // deep copy: folds are independent
    const Dataset train = data.select(split.train);
    const Dataset test = data.select(split.test);
    fold_pipeline.fit(train.X, train.y);
    const auto predictions = fold_pipeline.predict(test.X);
    result.fold_scores.push_back(score(metric, test.y, predictions));
    fold_seconds.observe(fold_timer.elapsed_seconds());
  }

  double sum = 0.0;
  for (const double s : result.fold_scores) sum += s;
  result.mean_score = sum / static_cast<double>(result.fold_scores.size());
  double var = 0.0;
  for (const double s : result.fold_scores) {
    const double d = s - result.mean_score;
    var += d * d;
  }
  result.stddev =
      std::sqrt(var / static_cast<double>(result.fold_scores.size()));
  return result;
}

namespace {

/// One fold's materialized train/test split, shared by every candidate.
struct FoldData {
  Dataset train;
  Dataset test;
};

std::size_t matrix_bytes(const Matrix& m) {
  return m.size() * sizeof(double) + sizeof(Matrix);
}

/// Scores candidate x fold with transformer-prefix memoization.
///
/// The cached unit is the pair (transformed train X, transformed test X)
/// after each cumulative transformer prefix, keyed by fold + the prefix's
/// canonical specs. Transformers are deterministic, so the memoized
/// matrices are exactly what Pipeline::fit/predict would recompute —
/// scores are bit-identical with the cache on or off. The estimator stage
/// is never cached (it IS the candidate).
double score_tabular_fold(const TEGraph& graph,
                          const TEGraph::Candidate& candidate,
                          const FoldData& fold_data, std::size_t fold,
                          PrefixCache& prefixes, Metric metric,
                          bool compile_plans) {
  using Transformed = std::pair<Matrix, Matrix>;  // (train X, test X)
  Pipeline pipeline = graph.instantiate(candidate);
  if (compile_plans) {
    // The compiled plan depends only on the transformer chain, so sibling
    // candidates (and every fold) memoize one plan per chain; the key's
    // cumulative specs are the same fingerprint that keys prefix reuse.
    std::string plan_key = "plan|tab";
    for (std::size_t t = 0; t < pipeline.n_transformers(); ++t) {
      plan_key += "|" + pipeline.transformer(t).spec();
    }
    std::shared_ptr<const CompiledTabularPlan> plan =
        prefixes.get<CompiledTabularPlan>(plan_key);
    if (plan == nullptr) {
      plan = compile_tabular_plan(pipeline);
      prefixes.insert(plan_key, plan, plan->bytes());
    }
    return execute_tabular_plan(*plan, pipeline, fold_data.train.X,
                                fold_data.train.y, fold_data.test.X,
                                fold_data.test.y, fold, prefixes, metric);
  }
  const Matrix* train_X = &fold_data.train.X;
  const Matrix* test_X = &fold_data.test.X;
  std::shared_ptr<const Transformed> held;  // keeps *train_X/*test_X alive
  std::string prefix_key = "tab|f" + std::to_string(fold);
  {
    // Phase attribution (ISSUE 9): each phase is one region around the
    // whole lookup-or-compute block (hit and miss paths alike, per the
    // profiler determinism rules) plus a CandidateCosts charge.
    PROF_SCOPE("eval.fold.prepare");
    Stopwatch prepare_timer;
    for (std::size_t t = 0; t < pipeline.n_transformers(); ++t) {
      prefix_key += "|" + pipeline.transformer(t).spec();
      std::shared_ptr<const Transformed> stage =
          prefixes.get<Transformed>(prefix_key);
      if (stage == nullptr) {
        Transformer& tr = pipeline.transformer(t);
        tr.fit(*train_X, fold_data.train.y);
        auto computed = std::make_shared<Transformed>(tr.transform(*train_X),
                                                      tr.transform(*test_X));
        // Inserted only after the full stage fit+transform succeeded — a
        // throwing candidate leaves no partial entry behind.
        prefixes.insert(prefix_key, computed,
                        matrix_bytes(computed->first) +
                            matrix_bytes(computed->second));
        stage = std::move(computed);
      }
      held = std::move(stage);
      train_X = &held->first;
      test_X = &held->second;
    }
    obs::phase_event(obs::Phase::kPrepare, prepare_timer.elapsed_seconds());
  }
  Estimator& estimator = pipeline.estimator();
  {
    PROF_SCOPE("eval.fold.fit");
    Stopwatch fit_timer;
    estimator.fit(*train_X, fold_data.train.y);
    obs::phase_event(obs::Phase::kFit, fit_timer.elapsed_seconds());
  }
  PROF_SCOPE("eval.fold.score");
  Stopwatch score_timer;
  const double result =
      score(metric, fold_data.test.y, estimator.predict(*test_X));
  obs::phase_event(obs::Phase::kScore, score_timer.elapsed_seconds());
  return result;
}

}  // namespace

GraphEvaluator::GraphEvaluator(EvalOptions options)
    : options_(std::move(options)) {}

std::string GraphEvaluator::cache_key(const Dataset& data,
                                      const std::string& candidate_spec,
                                      const CrossValidator& cv,
                                      Metric metric) {
  return hash_to_hex(fingerprint(data)) + "|" + candidate_spec + "|" +
         cv.spec() + "|" + metric_name(metric);
}

EvaluationReport GraphEvaluator::evaluate(const TEGraph& graph,
                                          const Dataset& data,
                                          const CrossValidator& cv) const {
  const auto candidates = graph.enumerate_candidates();
  require(!candidates.empty(), "GraphEvaluator: graph has no candidates");
  data.validate();
  const auto splits = cv.splits(data.n_samples());
  require(!splits.empty(), "cross_validate: CV produced no splits");

  // Materialize each fold's train/test datasets once, up front — the old
  // per-candidate cross_validate re-selected them for every candidate.
  std::vector<FoldData> folds;
  folds.reserve(splits.size());
  for (const auto& split : splits) {
    folds.push_back(FoldData{data.select(split.train), data.select(split.test)});
  }

  const bool cooperative = options_.cache != nullptr;
  std::vector<EvalEngine::Candidate> engine_candidates;
  engine_candidates.reserve(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    EvalEngine::Candidate ec;
    ec.spec = graph.candidate_spec(candidates[i]);
    ec.key = cooperative ? cache_key(data, ec.spec, cv, options_.metric)
                         : std::string();
    ec.score_fold = [this, &graph, &candidates, &folds, i](
                        std::size_t fold, PrefixCache& prefixes) {
      return score_tabular_fold(graph, candidates[i], folds[fold], fold,
                                prefixes, options_.metric,
                                options_.compile_plans);
    };
    engine_candidates.push_back(std::move(ec));
  }

  EvalEngine engine(options_);
  return engine.run(std::move(engine_candidates), splits.size());
}

Pipeline GraphEvaluator::train_best(const TEGraph& graph, const Dataset& data,
                                    const CrossValidator& cv) const {
  const auto report = evaluate(graph, data, cv);
  // Re-derive the best candidate by matching spec (reports do not own the
  // candidate objects; specs are canonical and unique per candidate).
  const auto candidates = graph.enumerate_candidates();
  for (const auto& candidate : candidates) {
    if (graph.candidate_spec(candidate) == report.best().spec) {
      Pipeline p = graph.instantiate(candidate);
      p.fit(data.X, data.y);
      return p;
    }
  }
  throw StateError("GraphEvaluator::train_best: best candidate not found");
}

}  // namespace coda
