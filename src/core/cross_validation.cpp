#include "src/core/cross_validation.h"

#include <numeric>

#include "src/util/error.h"
#include "src/util/random.h"

namespace coda {
namespace {

std::vector<std::size_t> identity_or_permutation(std::size_t n, bool shuffle,
                                                 std::uint64_t seed) {
  if (shuffle) return Rng(seed).permutation(n);
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  return idx;
}

Split random_split(std::size_t n, double train_fraction, Rng& rng) {
  auto perm = rng.permutation(n);
  const auto n_train = static_cast<std::size_t>(
      static_cast<double>(n) * train_fraction);
  require(n_train > 0 && n_train < n,
          "cross-validation: split leaves an empty side");
  Split s;
  s.train.assign(perm.begin(),
                 perm.begin() + static_cast<std::ptrdiff_t>(n_train));
  s.test.assign(perm.begin() + static_cast<std::ptrdiff_t>(n_train),
                perm.end());
  return s;
}

}  // namespace

KFold::KFold(std::size_t k, bool shuffle, std::uint64_t seed)
    : k_(k), shuffle_(shuffle), seed_(seed) {
  require(k >= 2, "KFold: k must be >= 2");
}

std::vector<Split> KFold::splits(std::size_t n_samples) const {
  require(n_samples >= k_, "KFold: fewer samples than folds");
  const auto order = identity_or_permutation(n_samples, shuffle_, seed_);

  // Fold sizes differ by at most one (equally sized partition without
  // replacement, Fig 4).
  std::vector<std::size_t> fold_of(n_samples);
  const std::size_t base = n_samples / k_;
  const std::size_t extra = n_samples % k_;
  std::size_t pos = 0;
  for (std::size_t f = 0; f < k_; ++f) {
    const std::size_t size = base + (f < extra ? 1 : 0);
    for (std::size_t i = 0; i < size; ++i) fold_of[order[pos++]] = f;
  }

  std::vector<Split> out(k_);
  for (std::size_t i = 0; i < n_samples; ++i) {
    for (std::size_t f = 0; f < k_; ++f) {
      (fold_of[i] == f ? out[f].test : out[f].train).push_back(i);
    }
  }
  return out;
}

std::string KFold::spec() const {
  return "kfold(k=" + std::to_string(k_) +
         ",shuffle=" + (shuffle_ ? "true" : "false") +
         ",seed=" + std::to_string(seed_) + ")";
}

HoldOut::HoldOut(double train_fraction, std::uint64_t seed)
    : train_fraction_(train_fraction), seed_(seed) {
  require(train_fraction > 0.0 && train_fraction < 1.0,
          "HoldOut: fraction must be in (0,1)");
}

std::vector<Split> HoldOut::splits(std::size_t n_samples) const {
  require(n_samples >= 2, "HoldOut: need at least 2 samples");
  Rng rng(seed_);
  return {random_split(n_samples, train_fraction_, rng)};
}

std::string HoldOut::spec() const {
  return "holdout(frac=" + std::to_string(train_fraction_) +
         ",seed=" + std::to_string(seed_) + ")";
}

MonteCarloCV::MonteCarloCV(std::size_t iterations, double train_fraction,
                           std::uint64_t seed)
    : iterations_(iterations), train_fraction_(train_fraction), seed_(seed) {
  require(iterations >= 1, "MonteCarloCV: iterations must be >= 1");
  require(train_fraction > 0.0 && train_fraction < 1.0,
          "MonteCarloCV: fraction must be in (0,1)");
}

std::vector<Split> MonteCarloCV::splits(std::size_t n_samples) const {
  require(n_samples >= 2, "MonteCarloCV: need at least 2 samples");
  Rng rng(seed_);
  std::vector<Split> out;
  out.reserve(iterations_);
  for (std::size_t i = 0; i < iterations_; ++i) {
    out.push_back(random_split(n_samples, train_fraction_, rng));
  }
  return out;
}

std::string MonteCarloCV::spec() const {
  return "montecarlo(iters=" + std::to_string(iterations_) +
         ",frac=" + std::to_string(train_fraction_) +
         ",seed=" + std::to_string(seed_) + ")";
}

TimeSeriesSlidingSplit::TimeSeriesSlidingSplit(std::size_t k,
                                               std::size_t train_size,
                                               std::size_t val_size,
                                               std::size_t buffer)
    : k_(k), train_size_(train_size), val_size_(val_size), buffer_(buffer) {
  require(k >= 1, "TimeSeriesSlidingSplit: k must be >= 1");
  require(train_size >= 1 && val_size >= 1,
          "TimeSeriesSlidingSplit: window sizes must be >= 1");
}

std::vector<Split> TimeSeriesSlidingSplit::splits(
    std::size_t n_samples) const {
  const std::size_t window = train_size_ + buffer_ + val_size_;
  require(n_samples >= window,
          "TimeSeriesSlidingSplit: series shorter than one window (" +
              std::to_string(window) + ")");

  // The k windows are spread evenly over the available slide range; with
  // k == 1 the window sits at the end of the series (most recent data).
  const std::size_t slide_range = n_samples - window;
  std::vector<Split> out;
  out.reserve(k_);
  for (std::size_t i = 0; i < k_; ++i) {
    const std::size_t start =
        k_ == 1 ? slide_range : slide_range * i / (k_ - 1);
    Split s;
    s.train.reserve(train_size_);
    for (std::size_t t = start; t < start + train_size_; ++t) {
      s.train.push_back(t);
    }
    const std::size_t val_begin = start + train_size_ + buffer_;
    s.test.reserve(val_size_);
    for (std::size_t t = val_begin; t < val_begin + val_size_; ++t) {
      s.test.push_back(t);
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::string TimeSeriesSlidingSplit::spec() const {
  return "ts_sliding(k=" + std::to_string(k_) +
         ",train=" + std::to_string(train_size_) +
         ",val=" + std::to_string(val_size_) +
         ",buffer=" + std::to_string(buffer_) + ")";
}

}  // namespace coda
