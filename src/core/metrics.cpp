#include "src/core/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/util/error.h"

namespace coda {
namespace {

void check_inputs(const std::vector<double>& y_true,
                  const std::vector<double>& y_pred) {
  require(!y_true.empty(), "metric: empty input");
  require(y_true.size() == y_pred.size(), "metric: size mismatch");
}

double median_of(std::vector<double> v) {
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid),
                   v.end());
  double m = v[mid];
  if (v.size() % 2 == 0) {
    const double lower =
        *std::max_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid));
    m = (m + lower) / 2.0;
  }
  return m;
}

double safe_log1p(double x) {
  require(x > -1.0, "log-error metric: value <= -1 not representable");
  return std::log1p(x);
}

bool as_label(double score) { return score >= 0.5; }

struct Confusion {
  double tp = 0, fp = 0, tn = 0, fn = 0;
};

Confusion confusion(const std::vector<double>& y_true,
                    const std::vector<double>& y_score) {
  Confusion c;
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    const bool truth = y_true[i] >= 0.5;
    const bool pred = as_label(y_score[i]);
    if (truth && pred) c.tp += 1;
    else if (!truth && pred) c.fp += 1;
    else if (truth && !pred) c.fn += 1;
    else c.tn += 1;
  }
  return c;
}

}  // namespace

double mse(const std::vector<double>& y_true,
           const std::vector<double>& y_pred) {
  check_inputs(y_true, y_pred);
  double s = 0.0;
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    const double d = y_true[i] - y_pred[i];
    s += d * d;
  }
  return s / static_cast<double>(y_true.size());
}

double rmse(const std::vector<double>& y_true,
            const std::vector<double>& y_pred) {
  return std::sqrt(mse(y_true, y_pred));
}

double mae(const std::vector<double>& y_true,
           const std::vector<double>& y_pred) {
  check_inputs(y_true, y_pred);
  double s = 0.0;
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    s += std::abs(y_true[i] - y_pred[i]);
  }
  return s / static_cast<double>(y_true.size());
}

double mape(const std::vector<double>& y_true,
            const std::vector<double>& y_pred) {
  check_inputs(y_true, y_pred);
  double s = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    // Standard convention: skip zero-truth points (undefined percentage),
    // clamp nothing else.
    if (y_true[i] == 0.0) continue;
    s += std::abs((y_true[i] - y_pred[i]) / y_true[i]);
    ++n;
  }
  require(n > 0, "mape: all ground-truth values are zero");
  return 100.0 * s / static_cast<double>(n);
}

double r2(const std::vector<double>& y_true,
          const std::vector<double>& y_pred) {
  check_inputs(y_true, y_pred);
  const double mean =
      std::accumulate(y_true.begin(), y_true.end(), 0.0) /
      static_cast<double>(y_true.size());
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    const double r = y_true[i] - y_pred[i];
    const double t = y_true[i] - mean;
    ss_res += r * r;
    ss_tot += t * t;
  }
  if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

double msle(const std::vector<double>& y_true,
            const std::vector<double>& y_pred) {
  check_inputs(y_true, y_pred);
  double s = 0.0;
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    const double d = safe_log1p(y_true[i]) - safe_log1p(y_pred[i]);
    s += d * d;
  }
  return s / static_cast<double>(y_true.size());
}

double rmsle(const std::vector<double>& y_true,
             const std::vector<double>& y_pred) {
  return std::sqrt(msle(y_true, y_pred));
}

double median_absolute_error(const std::vector<double>& y_true,
                             const std::vector<double>& y_pred) {
  check_inputs(y_true, y_pred);
  std::vector<double> abs_errors(y_true.size());
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    abs_errors[i] = std::abs(y_true[i] - y_pred[i]);
  }
  return median_of(std::move(abs_errors));
}

double median_absolute_log_error(const std::vector<double>& y_true,
                                 const std::vector<double>& y_pred) {
  check_inputs(y_true, y_pred);
  std::vector<double> abs_errors(y_true.size());
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    abs_errors[i] = std::abs(safe_log1p(y_true[i]) - safe_log1p(y_pred[i]));
  }
  return median_of(std::move(abs_errors));
}

double accuracy(const std::vector<double>& y_true,
                const std::vector<double>& y_score) {
  check_inputs(y_true, y_score);
  const auto c = confusion(y_true, y_score);
  return (c.tp + c.tn) / static_cast<double>(y_true.size());
}

double precision(const std::vector<double>& y_true,
                 const std::vector<double>& y_score) {
  check_inputs(y_true, y_score);
  const auto c = confusion(y_true, y_score);
  return (c.tp + c.fp) == 0.0 ? 0.0 : c.tp / (c.tp + c.fp);
}

double recall(const std::vector<double>& y_true,
              const std::vector<double>& y_score) {
  check_inputs(y_true, y_score);
  const auto c = confusion(y_true, y_score);
  return (c.tp + c.fn) == 0.0 ? 0.0 : c.tp / (c.tp + c.fn);
}

double f1_score(const std::vector<double>& y_true,
                const std::vector<double>& y_score) {
  const double p = precision(y_true, y_score);
  const double r = recall(y_true, y_score);
  return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

double auc(const std::vector<double>& y_true,
           const std::vector<double>& y_score) {
  check_inputs(y_true, y_score);
  // Mann-Whitney U statistic with midrank tie handling.
  std::vector<std::size_t> order(y_true.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return y_score[a] < y_score[b];
  });
  std::vector<double> ranks(y_true.size());
  std::size_t i = 0;
  while (i < order.size()) {
    std::size_t j = i;
    while (j + 1 < order.size() &&
           y_score[order[j + 1]] == y_score[order[i]]) {
      ++j;
    }
    const double mid_rank = (static_cast<double>(i) +
                             static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = mid_rank;
    i = j + 1;
  }
  double n_pos = 0.0;
  double n_neg = 0.0;
  double rank_sum_pos = 0.0;
  for (std::size_t k = 0; k < y_true.size(); ++k) {
    if (y_true[k] >= 0.5) {
      n_pos += 1.0;
      rank_sum_pos += ranks[k];
    } else {
      n_neg += 1.0;
    }
  }
  require(n_pos > 0 && n_neg > 0, "auc: needs both classes present");
  return (rank_sum_pos - n_pos * (n_pos + 1.0) / 2.0) / (n_pos * n_neg);
}

std::string metric_name(Metric m) {
  switch (m) {
    case Metric::kMse: return "mse";
    case Metric::kRmse: return "rmse";
    case Metric::kMae: return "mae";
    case Metric::kMape: return "mape";
    case Metric::kR2: return "r2";
    case Metric::kMsle: return "msle";
    case Metric::kRmsle: return "rmsle";
    case Metric::kMedianAe: return "median_ae";
    case Metric::kMedianAle: return "median_ale";
    case Metric::kAccuracy: return "accuracy";
    case Metric::kPrecision: return "precision";
    case Metric::kRecall: return "recall";
    case Metric::kF1: return "f1";
    case Metric::kAuc: return "auc";
  }
  throw InvalidArgument("metric_name: unknown metric");
}

Metric metric_from_name(const std::string& name) {
  static const std::pair<const char*, Metric> kTable[] = {
      {"mse", Metric::kMse},           {"rmse", Metric::kRmse},
      {"mae", Metric::kMae},           {"mape", Metric::kMape},
      {"r2", Metric::kR2},             {"msle", Metric::kMsle},
      {"rmsle", Metric::kRmsle},       {"median_ae", Metric::kMedianAe},
      {"median_ale", Metric::kMedianAle},
      {"accuracy", Metric::kAccuracy}, {"precision", Metric::kPrecision},
      {"recall", Metric::kRecall},     {"f1", Metric::kF1},
      {"auc", Metric::kAuc},
  };
  for (const auto& [n, m] : kTable) {
    if (name == n) return m;
  }
  throw NotFound("metric_from_name: unknown metric '" + name + "'");
}

bool higher_is_better(Metric m) {
  switch (m) {
    case Metric::kR2:
    case Metric::kAccuracy:
    case Metric::kPrecision:
    case Metric::kRecall:
    case Metric::kF1:
    case Metric::kAuc:
      return true;
    default:
      return false;
  }
}

double score(Metric m, const std::vector<double>& y_true,
             const std::vector<double>& y_pred) {
  switch (m) {
    case Metric::kMse: return mse(y_true, y_pred);
    case Metric::kRmse: return rmse(y_true, y_pred);
    case Metric::kMae: return mae(y_true, y_pred);
    case Metric::kMape: return mape(y_true, y_pred);
    case Metric::kR2: return r2(y_true, y_pred);
    case Metric::kMsle: return msle(y_true, y_pred);
    case Metric::kRmsle: return rmsle(y_true, y_pred);
    case Metric::kMedianAe: return median_absolute_error(y_true, y_pred);
    case Metric::kMedianAle: return median_absolute_log_error(y_true, y_pred);
    case Metric::kAccuracy: return accuracy(y_true, y_pred);
    case Metric::kPrecision: return precision(y_true, y_pred);
    case Metric::kRecall: return recall(y_true, y_pred);
    case Metric::kF1: return f1_score(y_true, y_pred);
    case Metric::kAuc: return auc(y_true, y_pred);
  }
  throw InvalidArgument("score: unknown metric");
}

}  // namespace coda
