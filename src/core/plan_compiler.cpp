#include "src/core/plan_compiler.h"

#include <cmath>
#include <utility>

#include "src/ml/scalers.h"
#include "src/obs/obs.h"
#include "src/util/stopwatch.h"

namespace coda {
namespace {

struct PlanCounters {
  obs::Counter& compiled = obs::counter("eval.plan.compiled");
  obs::Counter& fused = obs::counter("eval.plan.fused_stages");
  obs::Counter& fallback = obs::counter("eval.plan.fallback");
};

PlanCounters& plan_counters() {
  static PlanCounters c;
  return c;
}

// Applies `chain` to every element of `base` in one pass.
Matrix apply_chain(const FusedChain& chain, const Matrix& base) {
  Matrix out(base.rows(), base.cols());
  for (std::size_t r = 0; r < base.rows(); ++r) {
    const double* src = base.row_ptr(r);
    double* dst = out.row_ptr(r);
    for (std::size_t c = 0; c < base.cols(); ++c) {
      dst[c] = chain.apply(src[c], c);
    }
  }
  return out;
}

std::size_t matrix_bytes(const Matrix& m) {
  return m.size() * sizeof(double) + sizeof(Matrix);
}

}  // namespace

void record_plan_compiled(std::size_t n_fused, std::size_t n_fallback) {
  PlanCounters& c = plan_counters();
  c.compiled.inc();
  if (n_fused > 0) c.fused.inc(n_fused);
  if (n_fallback > 0) c.fallback.inc(n_fallback);
}

bool lowerable_scaler(const Transformer& t) {
  return dynamic_cast<const StandardScaler*>(&t) != nullptr ||
         dynamic_cast<const MinMaxScaler*>(&t) != nullptr ||
         dynamic_cast<const RobustScaler*>(&t) != nullptr ||
         dynamic_cast<const NoOp*>(&t) != nullptr;
}

FusedAffine lower_scaler(const Transformer& t) {
  FusedAffine out;
  if (const auto* s = dynamic_cast<const StandardScaler*>(&t)) {
    require_state(!s->means().empty(), "lower_scaler: scaler not fitted");
    out.shift = s->means();
    out.div = s->scales();
    return out;
  }
  if (const auto* s = dynamic_cast<const MinMaxScaler*>(&t)) {
    require_state(!s->mins().empty(), "lower_scaler: scaler not fitted");
    out.shift = s->mins();
    out.div = s->ranges();
    return out;
  }
  if (const auto* s = dynamic_cast<const RobustScaler*>(&t)) {
    require_state(!s->medians().empty(), "lower_scaler: scaler not fitted");
    out.shift = s->medians();
    out.div = s->iqrs();
    return out;
  }
  require(dynamic_cast<const NoOp*>(&t) != nullptr,
          "lower_scaler: '" + t.name() + "' has no fused lowering");
  out.identity = true;
  return out;
}

FusedAffine fit_affine_virtual(const Transformer& t, const Matrix& base,
                               const FusedChain& chain) {
  require(base.rows() > 0, t.name() + ": empty input");
  const std::size_t rows = base.rows();
  const std::size_t cols = base.cols();
  FusedAffine out;

  if (dynamic_cast<const NoOp*>(&t) != nullptr) {
    out.identity = true;
    return out;
  }
  if (dynamic_cast<const StandardScaler*>(&t) != nullptr) {
    // Mirrors Matrix::col_means / col_stddevs on the virtual view: per
    // column, sum over ascending rows, divide once; then the squared
    // deviations in the same order against those exact means.
    std::vector<double> means(cols, 0.0);
    for (std::size_t r = 0; r < rows; ++r) {
      const double* src = base.row_ptr(r);
      for (std::size_t c = 0; c < cols; ++c) means[c] += chain.apply(src[c], c);
    }
    for (double& m : means) m /= static_cast<double>(rows);
    std::vector<double> sds(cols, 0.0);
    for (std::size_t r = 0; r < rows; ++r) {
      const double* src = base.row_ptr(r);
      for (std::size_t c = 0; c < cols; ++c) {
        const double d = chain.apply(src[c], c) - means[c];
        sds[c] += d * d;
      }
    }
    for (double& s : sds) {
      s = std::sqrt(s / static_cast<double>(rows));
      if (s == 0.0) s = 1.0;  // constant column: leave centred at zero
    }
    out.shift = std::move(means);
    out.div = std::move(sds);
    return out;
  }
  if (dynamic_cast<const MinMaxScaler*>(&t) != nullptr) {
    out.shift.assign(cols, 0.0);
    out.div.assign(cols, 1.0);
    for (std::size_t c = 0; c < cols; ++c) {
      double lo = chain.apply(base(0, c), c);
      double hi = lo;
      for (std::size_t r = 1; r < rows; ++r) {
        const double v = chain.apply(base(r, c), c);
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
      out.shift[c] = lo;
      out.div[c] = (hi - lo) == 0.0 ? 1.0 : hi - lo;
    }
    return out;
  }
  require(dynamic_cast<const RobustScaler*>(&t) != nullptr,
          "fit_affine_virtual: '" + t.name() + "' has no fused lowering");
  out.shift.assign(cols, 0.0);
  out.div.assign(cols, 1.0);
  for (std::size_t c = 0; c < cols; ++c) {
    std::vector<double> col(rows);
    for (std::size_t r = 0; r < rows; ++r) col[r] = chain.apply(base(r, c), c);
    out.shift[c] = quantile(col, 0.5);
    const double iqr = quantile(col, 0.75) - quantile(col, 0.25);
    out.div[c] = iqr == 0.0 ? 1.0 : iqr;
  }
  return out;
}

std::size_t CompiledTabularPlan::bytes() const {
  std::size_t total = sizeof(CompiledTabularPlan);
  for (const Stage& s : stages) total += sizeof(Stage) + s.spec.size();
  return total;
}

std::shared_ptr<const CompiledTabularPlan> compile_tabular_plan(
    const Pipeline& pipeline) {
  auto plan = std::make_shared<CompiledTabularPlan>();
  plan->stages.reserve(pipeline.n_transformers());
  for (std::size_t t = 0; t < pipeline.n_transformers(); ++t) {
    const Transformer& tr = pipeline.transformer(t);
    CompiledTabularPlan::Stage stage;
    stage.spec = tr.spec();
    stage.fused = lowerable_scaler(tr);
    if (stage.fused) {
      ++plan->n_fused;
    } else {
      ++plan->n_fallback;
    }
    plan->stages.push_back(std::move(stage));
  }
  record_plan_compiled(plan->n_fused, plan->n_fallback);
  return plan;
}

double execute_tabular_plan(const CompiledTabularPlan& plan,
                            Pipeline& pipeline, const Matrix& train_X,
                            const std::vector<double>& train_y,
                            const Matrix& test_X,
                            const std::vector<double>& test_y,
                            std::size_t fold, PrefixCache& prefixes,
                            Metric metric) {
  using Transformed = std::pair<Matrix, Matrix>;  // (train X, test X)
  require(plan.stages.size() == pipeline.n_transformers(),
          "execute_tabular_plan: plan does not match pipeline");
  const Matrix* cur_train = &train_X;
  const Matrix* cur_test = &test_X;
  std::shared_ptr<const Transformed> held;  // keeps boundary matrices alive
  std::string key = "tabplan|f" + std::to_string(fold);

  // Walk segments: a maximal run of fused stages, optionally terminated by
  // one interpreted stage. Each segment ends at a materialized boundary,
  // which is the memoized unit (interpreted execution memoizes per stage;
  // fused segments have no per-stage output to share).
  // Phase attribution (ISSUE 9): the whole segment walk is the "prepare"
  // phase — one region around lookups and computes alike, per the
  // profiler determinism rules.
  {
    PROF_SCOPE("eval.fold.prepare");
    Stopwatch prepare_timer;
    std::size_t t = 0;
    const std::size_t n = plan.stages.size();
    while (t < n) {
      std::size_t run_end = t;
      while (run_end < n && plan.stages[run_end].fused) ++run_end;
      const bool has_fallback = run_end < n;
      const std::size_t seg_end = has_fallback ? run_end + 1 : run_end;
      for (std::size_t u = t; u < seg_end; ++u) {
        key += "|" + plan.stages[u].spec;
      }
      std::shared_ptr<const Transformed> boundary =
          prefixes.get<Transformed>(key);
      if (boundary == nullptr) {
        FusedChain chain;
        chain.stages.reserve(run_end - t);
        for (std::size_t u = t; u < run_end; ++u) {
          chain.stages.push_back(
              fit_affine_virtual(pipeline.transformer(u), *cur_train, chain));
        }
        Matrix seg_train;
        Matrix seg_test;
        if (has_fallback) {
          Transformer& tr = pipeline.transformer(run_end);
          if (chain.empty()) {
            tr.fit(*cur_train, train_y);
            seg_train = tr.transform(*cur_train);
            seg_test = tr.transform(*cur_test);
          } else {
            const Matrix mat_train = apply_chain(chain, *cur_train);
            const Matrix mat_test = apply_chain(chain, *cur_test);
            tr.fit(mat_train, train_y);
            seg_train = tr.transform(mat_train);
            seg_test = tr.transform(mat_test);
          }
        } else {
          seg_train = apply_chain(chain, *cur_train);
          seg_test = apply_chain(chain, *cur_test);
        }
        auto computed = std::make_shared<Transformed>(std::move(seg_train),
                                                      std::move(seg_test));
        // Inserted only after the whole segment succeeded — a throwing stage
        // leaves no partial entry behind (same rule as the interpreted path).
        prefixes.insert(key, computed,
                        matrix_bytes(computed->first) +
                            matrix_bytes(computed->second));
        boundary = std::move(computed);
      }
      held = std::move(boundary);
      cur_train = &held->first;
      cur_test = &held->second;
      t = seg_end;
    }
    obs::phase_event(obs::Phase::kPrepare, prepare_timer.elapsed_seconds());
  }

  Estimator& estimator = pipeline.estimator();
  {
    PROF_SCOPE("eval.fold.fit");
    Stopwatch fit_timer;
    estimator.fit(*cur_train, train_y);
    obs::phase_event(obs::Phase::kFit, fit_timer.elapsed_seconds());
  }
  PROF_SCOPE("eval.fold.score");
  Stopwatch score_timer;
  const double result = score(metric, test_y, estimator.predict(*cur_test));
  obs::phase_event(obs::Phase::kScore, score_timer.elapsed_seconds());
  return result;
}

}  // namespace coda
