// Anytime successive-halving search scheduler (DESIGN.md §16): the
// candidate-racing layer between TE-Graph path enumeration and the eval
// engine. Instead of scoring every candidate on every CV fold (the
// exhaustive sweep), candidates race rung by rung: rung 0 scores all of
// them on fold 0, ranks them by partial CV score, prunes the losing
// fraction (1 - 1/eta), and promotes the survivors to the next fold; the
// final rung runs every remaining fold so survivors finish with full-CV
// scores. SystemDS (PAPERS.md) motivates exactly this resource-aware
// pruning over brute enumeration; the GraphLab-style twist here is that
// rungs are not bulk-synchronous barriers — a survivor's next-rung folds
// are submitted the moment its rung's prune decision seals, as
// asynchronous continuations on the engine's ThreadPool + TimerWheel.
//
// Determinism (the prune-seal rule): a rung's ranking is a pure function
// of the candidates' fold scores, their stable enumeration order, and the
// seeded tournament tie-break permutation. Fold scores are themselves
// bit-deterministic, so every cooperating client computes the *same*
// prune decisions regardless of thread interleaving, chaos schedule, or
// which peer served which rung segment — which is what lets a fleet split
// one halving search candidate-by-candidate and rung-by-rung with zero
// redundant fold evaluations.
//
// Cooperation: each (candidate, rung) unit claims a rung-qualified DARR
// key ("<base>|shr|e<eta>|s<seed>|r<rung>") and publishes its segment's
// fold scores, so a pruned candidate's partial results still reach the
// fleet; a candidate surviving the final rung additionally publishes the
// assembled full-CV result under its plain base key, interoperating with
// exhaustive peers and future runs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/core/eval_engine.h"

namespace coda {

/// One rung of a halving schedule: `entrants` candidates each score folds
/// [fold_begin, fold_end).
struct RungSpec {
  std::size_t fold_begin = 0;
  std::size_t fold_end = 0;
  std::size_t entrants = 0;

  std::size_t folds() const { return fold_end - fold_begin; }
};

/// Survivors of a rung with `entrants` candidates under pruning factor
/// `eta`: ceil(entrants / eta), never below 1.
std::size_t halving_survivors(std::size_t entrants, std::size_t eta);

/// Seeded tournament tie-break: returns rank[i] = position of candidate i
/// in a Fisher-Yates shuffle of the enumeration order. Seed 0 is the
/// identity permutation (plain enumeration order, matching the exhaustive
/// evaluator's order-stable tie rule).
std::vector<std::size_t> tournament_ranks(std::size_t n, std::uint64_t seed);

/// The complete rung schedule for (n_candidates, n_folds, eta). Built
/// identically on every client before any evaluation starts — the plan
/// depends only on the candidate count, never on scores.
struct HalvingPlan {
  std::size_t n_candidates = 0;
  std::size_t n_folds = 0;
  std::size_t eta = 2;
  std::vector<RungSpec> rungs;

  /// Rung 0 races all candidates on fold 0; each later rung adds one fold
  /// for the surviving ceil(prev / eta); once a single candidate remains
  /// (or a single fold), the final rung covers every remaining fold so
  /// survivors end with full-CV scores. One candidate or one fold total
  /// degenerates to a single full rung (no racing).
  static HalvingPlan build(std::size_t n_candidates, std::size_t n_folds,
                           std::size_t eta);

  /// Fold evaluations the schedule admits: sum of entrants × folds over
  /// the rungs. The fleet-wide computed total equals this exactly when
  /// cooperation splits the units without redundancy.
  std::size_t total_fold_evals() const;

  /// What the exhaustive sweep would run: n_candidates × n_folds.
  std::size_t exhaustive_fold_evals() const { return n_candidates * n_folds; }
};

/// Rung-qualified cooperative key for one (candidate, rung) unit; empty
/// when `base_key` is empty (non-cooperative candidate).
std::string rung_key(const std::string& base_key, const SearchOptions& search,
                     std::size_t rung);

namespace detail {

/// The halving executor, dispatched from EvalEngine::run when
/// options.search.strategy == SearchStrategy::kHalving. Same report
/// contract as the exhaustive path, plus pruned_at_rung / rung accounting.
EvaluationReport run_halving_search(
    const EvalOptions& options,
    const std::vector<EvalEngine::Candidate>& candidates, std::size_t n_folds);

}  // namespace detail

}  // namespace coda
