// Fused lowering of forecast paths (DESIGN.md §14).
//
// A root→leaf forecast path is scaler -> windower -> model. The interpreted
// executor materializes the scaled series (L x v), then copies it again
// into the windowed design matrix, then gathers train/validation rows with
// select_rows — three full passes over the data per (fold, scaler,
// windower). CompiledForecastPlan lowers the scaler to its per-column
// affine form and the windower to an index program, so one pass emits the
// fold's train/validation design matrices directly from the raw series:
// scaling folds into the tiled window reads, and no intermediate Matrix
// exists between the stages.
//
// Fusion boundary conditions:
//  - The scaler *fit* (training-slice statistics) always runs interpreted —
//    it is O(train length) and keying it is what the prefix cache already
//    does; only its transform is fused away.
//  - A windower without an index-program lowering forces the whole prepare
//    back to the interpreted build (the scaler must materialize its output
//    for WindowMaker::build), so both stages count as fallback.
//  - A scaler without an affine lowering materializes its transform once;
//    the windower still lowers and reads the materialized view (scaler
//    counts fallback, windower counts fused).
//  - The as-is feed reads raw target values, so the scaler transform is
//    dead there and fusing it is trivially exact.
//
// Bit-identity with the interpreted path is pinned by the differential
// suite (tests/test_plan_compiler.cpp): identical X/y values, identical row
// order, identical selection semantics.
#pragma once

#include <memory>
#include <string>

#include "src/core/plan_compiler.h"
#include "src/data/time_series.h"
#include "src/ts/forecast_pipeline.h"

namespace coda::ts {

/// How a windower lowers into the fused emitter.
enum class WindowLowering {
  kHistory,      ///< CascadedWindows / FlatWindowing (Figs 7-8)
  kIid,          ///< TsAsIid (Fig 9)
  kAsIs,         ///< TsAsIs (Fig 10) — raw target feed
  kInterpreted,  ///< no lowering: WindowMaker::build fallback
};

/// One fold's compiled output: the train/validation design matrices and
/// targets, emitted in the exact row order the interpreted path's
/// select_rows gather produces. Shared across every model consuming the
/// same (fold, scaler, windower) prefix.
struct PreparedFold {
  Matrix X_train;
  std::vector<double> y_train;
  Matrix X_val;
  std::vector<double> y_val;  ///< ground truth, original units

  std::size_t bytes() const {
    return X_train.size() * sizeof(double) + X_val.size() * sizeof(double) +
           (y_train.size() + y_val.size()) * sizeof(double) +
           sizeof(PreparedFold);
  }
};

/// The compiled form of one (scaler, windower) prefix. Stateless once
/// compiled — prepare() can be called for any fold/series, so one plan is
/// shared across folds through the PrefixCache (keyed without a fold
/// component).
class CompiledForecastPlan {
 public:
  /// Lowers `pipeline`'s scaler and windower. Counts `eval.plan.compiled`
  /// and the stage fused/fallback split (two stages per forecast path).
  static std::shared_ptr<const CompiledForecastPlan> compile(
      const ForecastPipeline& pipeline);

  /// Fits the scaler on [train_begin, train_end) and emits the fold's
  /// design matrices: train rows are the windows fully inside the training
  /// range, validation rows the windows whose target falls in
  /// [target_begin, target_end). Bit-identical to prepare_windows +
  /// fit_prepared's row selection + predict_range_prepared's gather.
  PreparedFold prepare(const TimeSeries& series, std::size_t train_begin,
                       std::size_t train_end, std::size_t target_begin,
                       std::size_t target_end) const;

  bool scaler_fused() const { return scaler_fused_; }
  WindowLowering lowering() const { return lowering_; }
  std::size_t bytes() const;

 private:
  CompiledForecastPlan(std::unique_ptr<Transformer> scaler,
                       std::unique_ptr<WindowMaker> windower,
                       ForecastSpec spec);

  std::unique_ptr<Transformer> scaler_proto_;
  std::unique_ptr<WindowMaker> windower_proto_;
  ForecastSpec spec_;
  WindowLowering lowering_ = WindowLowering::kInterpreted;
  bool scaler_fused_ = false;
};

}  // namespace coda::ts
