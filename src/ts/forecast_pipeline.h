// The time-series prediction pipeline (Section IV-D, Fig 11): data scaling
// -> data preprocessing (windowing) -> modelling, evaluated with the
// TimeSeriesSlidingSplit (Fig 12).
//
// Unlike the tabular core::Pipeline, the windowing stage changes the sample
// space (timestamps -> windows) and *derives* the supervision targets from
// the series, so the forecast pipeline has its own fit/evaluate flow:
// per split, the scaler is fit on the training timestamps only (no
// leakage), applied to the whole series, windows are built, and window rows
// are assigned to train/validation by their timestamp spans.
#pragma once

#include <memory>
#include <string>

#include "src/core/component.h"
#include "src/core/cross_validation.h"
#include "src/core/evaluator.h"
#include "src/core/metrics.h"
#include "src/data/time_series.h"
#include "src/ts/windowing.h"

namespace coda::ts {

/// One fully specified forecasting path: scaler -> windower -> estimator.
class ForecastPipeline {
 public:
  ForecastPipeline(std::unique_ptr<Transformer> scaler,
                   std::unique_ptr<WindowMaker> windower,
                   std::unique_ptr<Estimator> model, ForecastSpec spec);

  ForecastPipeline(const ForecastPipeline& other);
  ForecastPipeline& operator=(const ForecastPipeline& other);
  ForecastPipeline(ForecastPipeline&&) = default;
  ForecastPipeline& operator=(ForecastPipeline&&) = default;

  const Transformer& scaler() const { return *scaler_; }
  const WindowMaker& windower() const { return *windower_; }
  const Estimator& model() const { return *model_; }
  Estimator& model() { return *model_; }
  const ForecastSpec& spec() const { return spec_; }

  /// Canonical path description used in reports and DARR keys.
  std::string spec_string() const;

  /// Fits scaler + model on the timestamps [train_begin, train_end).
  void fit(const TimeSeries& series, std::size_t train_begin,
           std::size_t train_end);

  /// Fits on the entire series.
  void fit_full(const TimeSeries& series);

  /// The expensive, model-independent half of fit(): fits the scaler on the
  /// training timestamps and windows the whole series. The result depends
  /// only on (scaler spec, windower, forecast spec, training range) — the
  /// evaluation engine memoizes it across candidates sharing that prefix.
  WindowedData prepare_windows(const TimeSeries& series,
                               std::size_t train_begin,
                               std::size_t train_end);

  /// The model half of fit(): fits the scaler (cheap; keeps this pipeline
  /// self-consistent even when `windows` came from the engine's memo) and
  /// trains the model on the rows of `windows` that fall inside
  /// [train_begin, train_end). `windows` must describe this pipeline's
  /// scaler/windower applied to `series`.
  void fit_prepared(const TimeSeries& series, std::size_t train_begin,
                    std::size_t train_end, const WindowedData& windows);

  /// Predicts the target values whose timestamps fall in
  /// [target_begin, target_end), using history from the series. Requires
  /// fit. Returns (predictions, ground truth) aligned by timestamp.
  std::pair<std::vector<double>, std::vector<double>> predict_range(
      const TimeSeries& series, std::size_t target_begin,
      std::size_t target_end) const;

  /// predict_range against pre-built windows (skips the re-windowing that
  /// predict_range performs; the engine shares one WindowedData between a
  /// fold's fit and its validation predictions).
  std::pair<std::vector<double>, std::vector<double>> predict_range_prepared(
      const WindowedData& windows, std::size_t target_begin,
      std::size_t target_end) const;

  /// One-step-ahead forecast past the end of the series. Requires fit.
  double forecast_next(const TimeSeries& series) const;

 private:
  WindowedData build_windows(const TimeSeries& series) const;

  std::unique_ptr<Transformer> scaler_;
  std::unique_ptr<WindowMaker> windower_;
  std::unique_ptr<Estimator> model_;
  ForecastSpec spec_;
  bool fitted_ = false;
};

/// Scores a forecast pipeline across the sliding splits of `cv` with
/// `metric`. Each split fits a fresh copy (folds are independent); fold
/// scores are in original target units.
CachedResult evaluate_forecast(const ForecastPipeline& pipeline,
                               const TimeSeries& series,
                               const TimeSeriesSlidingSplit& cv,
                               Metric metric);

}  // namespace coda::ts
