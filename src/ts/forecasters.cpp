#include "src/ts/forecasters.h"

#include "src/ml/linalg.h"

namespace coda::ts {

void ZeroModel::fit(const Matrix& X, const std::vector<double>& y) {
  require(X.rows() == y.size(), "ZeroModel: X/y size mismatch");
  require(X.rows() > 0, "ZeroModel: empty input");
  const auto col = static_cast<std::size_t>(params().get_int("value_col"));
  require(col < X.cols(), "ZeroModel: value_col out of range");
  fitted_cols_ = X.cols();
}

std::vector<double> ZeroModel::predict(const Matrix& X) const {
  require_state(fitted_cols_ > 0, "ZeroModel: call fit() first");
  require(X.cols() == fitted_cols_, "ZeroModel: column count mismatch");
  const auto col = static_cast<std::size_t>(params().get_int("value_col"));
  std::vector<double> out(X.rows());
  for (std::size_t r = 0; r < X.rows(); ++r) out[r] = X(r, col);
  return out;
}

void ArModel::fit(const Matrix& X, const std::vector<double>& y) {
  require(X.rows() == y.size(), "ArModel: X/y size mismatch");
  require(X.rows() > 0, "ArModel: empty input");
  const double ridge = params().get_double("ridge");
  require(ridge >= 0.0, "ArModel: ridge must be >= 0");
  // Append intercept column and solve the regularized normal equations.
  Matrix design(X.rows(), X.cols() + 1);
  for (std::size_t r = 0; r < X.rows(); ++r) {
    for (std::size_t c = 0; c < X.cols(); ++c) design(r, c) = X(r, c);
    design(r, X.cols()) = 1.0;
  }
  weights_ = least_squares(design, y, ridge);
}

std::vector<double> ArModel::predict(const Matrix& X) const {
  require_state(!weights_.empty(), "ArModel: call fit() first");
  require(X.cols() + 1 == weights_.size(), "ArModel: column count mismatch");
  std::vector<double> out(X.rows());
  for (std::size_t r = 0; r < X.rows(); ++r) {
    double s = weights_.back();
    for (std::size_t c = 0; c < X.cols(); ++c) s += weights_[c] * X(r, c);
    out[r] = s;
  }
  return out;
}

}  // namespace coda::ts
