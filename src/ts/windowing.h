// Time-series data preprocessors (Section IV-C4, Figs 7-10).
//
// A WindowMaker turns a multivariate series into supervised (X, y) pairs
// for a given history window p, prediction horizon h and target variable.
// X is built from the (possibly scaled) feature view of the series; y is
// always read from the original series so every path's error is scored in
// original units.
//
//   CascadedWindows (Fig 7): X row i = flattened (p x v) history, time-major
//                            — consumed by the temporal models.
//   FlatWindowing   (Fig 8): the cascaded window flattened to 1 x pv — same
//                            values, but consumed by IID DNNs that ignore
//                            the temporal ordering.
//   TSasIID         (Fig 9): X row t = the v current values only; no
//                            history, every timestamp an IID point.
//   TSasIs         (Fig 10): X row t = the current target value only — the
//                            no-op feed for the Zero (persistence) model.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/data/matrix.h"

namespace coda::ts {

/// Forecasting task shape shared by every path of a forecast graph.
struct ForecastSpec {
  std::size_t history = 24;    ///< history window length p
  std::size_t horizon = 1;     ///< steps ahead to predict
  std::size_t target_var = 0;  ///< variable to predict
};

/// Supervised view of a series produced by a WindowMaker.
struct WindowedData {
  Matrix X;
  std::vector<double> y;
  /// Timestamp of each row's prediction target (same length as y).
  std::vector<std::size_t> target_times;
  /// First timestamp each row's features read (used for leakage checks).
  std::vector<std::size_t> span_starts;
};

/// Turns a series into supervised pairs. Stateless and deterministic.
class WindowMaker {
 public:
  virtual ~WindowMaker() = default;

  /// Builds (X, y). `features` supplies X (typically the scaled series);
  /// `target_source` supplies y (the original series). Both are L x v.
  virtual WindowedData build(const Matrix& features,
                             const Matrix& target_source,
                             const ForecastSpec& spec) const = 0;

  /// Stable node name ("cascadedwindows", ...).
  virtual std::string name() const = 0;

  /// Width of the produced X for a v-variable series.
  virtual std::size_t feature_width(std::size_t n_variables,
                                    const ForecastSpec& spec) const = 0;

  virtual std::unique_ptr<WindowMaker> clone() const = 0;
};

/// Fig 7 — temporal history, order preserved.
class CascadedWindows final : public WindowMaker {
 public:
  WindowedData build(const Matrix& features, const Matrix& target_source,
                     const ForecastSpec& spec) const override;
  std::string name() const override { return "cascadedwindows"; }
  std::size_t feature_width(std::size_t n_variables,
                            const ForecastSpec& spec) const override {
    return n_variables * spec.history;
  }
  std::unique_ptr<WindowMaker> clone() const override {
    return std::make_unique<CascadedWindows>(*this);
  }
};

/// Fig 8 — cascaded windows flattened to 1 x pv (temporal history kept,
/// ordering semantics dropped for IID consumers).
class FlatWindowing final : public WindowMaker {
 public:
  WindowedData build(const Matrix& features, const Matrix& target_source,
                     const ForecastSpec& spec) const override;
  std::string name() const override { return "flatwindowing"; }
  std::size_t feature_width(std::size_t n_variables,
                            const ForecastSpec& spec) const override {
    return n_variables * spec.history;
  }
  std::unique_ptr<WindowMaker> clone() const override {
    return std::make_unique<FlatWindowing>(*this);
  }
};

/// Fig 9 — each timestamp as an independent point (no history).
class TsAsIid final : public WindowMaker {
 public:
  WindowedData build(const Matrix& features, const Matrix& target_source,
                     const ForecastSpec& spec) const override;
  std::string name() const override { return "ts_as_iid"; }
  std::size_t feature_width(std::size_t n_variables,
                            const ForecastSpec&) const override {
    return n_variables;
  }
  std::unique_ptr<WindowMaker> clone() const override {
    return std::make_unique<TsAsIid>(*this);
  }
};

/// Fig 10 — no operation: the current target value only, for models that
/// need no transformation (Zero/persistence).
class TsAsIs final : public WindowMaker {
 public:
  WindowedData build(const Matrix& features, const Matrix& target_source,
                     const ForecastSpec& spec) const override;
  std::string name() const override { return "ts_as_is"; }
  std::size_t feature_width(std::size_t,
                            const ForecastSpec&) const override {
    return 1;
  }
  std::unique_ptr<WindowMaker> clone() const override {
    return std::make_unique<TsAsIs>(*this);
  }
};

}  // namespace coda::ts
