#include "src/ts/forecast_graph.h"

#include <chrono>
#include <future>
#include <thread>

#include "src/data/fingerprint.h"
#include "src/ml/scalers.h"
#include "src/obs/obs.h"
#include "src/ts/forecasters.h"
#include "src/ts/nn_forecasters.h"
#include "src/util/hash.h"
#include "src/util/stopwatch.h"
#include "src/util/thread_pool.h"

namespace coda::ts {
namespace {

// Clones a neural prototype, names it, and pins its architecture variant.
template <typename ModelT>
std::unique_ptr<Estimator> make_arch_variant(const std::string& node_name,
                                             const std::string& arch) {
  auto model = std::make_unique<ModelT>();
  model->set_name(node_name);
  model->set_param("arch", arch);
  return model;
}

}  // namespace

ForecastGraph ForecastGraph::standard(const ForecastSpec& spec,
                                      std::int64_t neural_epochs) {
  ForecastGraph g(spec);
  g.add_scaler(std::make_unique<StandardScaler>());
  g.add_scaler(std::make_unique<MinMaxScaler>());
  g.add_scaler(std::make_unique<RobustScaler>());
  g.add_scaler(std::make_unique<NoOp>());

  g.add_windower(std::make_unique<CascadedWindows>(), "cascaded");
  g.add_windower(std::make_unique<FlatWindowing>(), "flat");
  g.add_windower(std::make_unique<TsAsIid>(), "iid");
  g.add_windower(std::make_unique<TsAsIs>(), "asis");

  // Temporal models consume cascaded windows (Fig 11 wiring).
  g.add_model(make_arch_variant<LstmForecaster>("lstm_simple", "simple"),
              "cascaded");
  g.add_model(make_arch_variant<LstmForecaster>("lstm_deep", "deep"),
              "cascaded");
  g.add_model(make_arch_variant<CnnForecaster>("cnn_simple", "simple"),
              "cascaded");
  g.add_model(make_arch_variant<CnnForecaster>("cnn_deep", "deep"),
              "cascaded");
  g.add_model(std::make_unique<WaveNetForecaster>(), "cascaded");
  g.add_model(std::make_unique<SeriesNetForecaster>(), "cascaded");
  // The AR(p) regression also reads lagged values (VAR over the window).
  g.add_model(std::make_unique<ArModel>(), "cascaded");

  // IID DNNs consume flattened windows and per-timestamp points.
  g.add_model(make_arch_variant<DnnForecaster>("dnn_simple", "simple"),
              "flat");
  g.add_model(make_arch_variant<DnnForecaster>("dnn_deep", "deep"), "flat");
  g.add_model(make_arch_variant<DnnForecaster>("dnn_iid_simple", "simple"),
              "iid");
  g.add_model(make_arch_variant<DnnForecaster>("dnn_iid_deep", "deep"),
              "iid");

  // The persistence baseline consumes the raw (as-is) feed.
  g.add_model(std::make_unique<ZeroModel>(), "asis");

  if (neural_epochs > 0) {
    for (auto& option : g.models_) {
      if (option.model->params().contains("epochs")) {
        option.model->set_param("epochs", neural_epochs);
      }
    }
  }
  return g;
}

ForecastGraph& ForecastGraph::add_scaler(
    std::unique_ptr<Transformer> scaler) {
  require(scaler != nullptr, "ForecastGraph: null scaler");
  scalers_.push_back(std::move(scaler));
  return *this;
}

ForecastGraph& ForecastGraph::add_windower(
    std::unique_ptr<WindowMaker> windower, std::string tag) {
  require(windower != nullptr, "ForecastGraph: null windower");
  require(!tag.empty(), "ForecastGraph: windower tag must be non-empty");
  windowers_.push_back(WindowerOption{std::move(windower), std::move(tag)});
  return *this;
}

ForecastGraph& ForecastGraph::add_model(std::unique_ptr<Estimator> model,
                                        std::string consumes_tag) {
  require(model != nullptr, "ForecastGraph: null model");
  for (const auto& m : models_) {
    require(m.model->name() != model->name(),
            "ForecastGraph: duplicate model name '" + model->name() + "'");
  }
  models_.push_back(ModelOption{std::move(model), std::move(consumes_tag)});
  return *this;
}

std::vector<ForecastGraph::Candidate> ForecastGraph::enumerate() const {
  require(!scalers_.empty() && !windowers_.empty() && !models_.empty(),
          "ForecastGraph: all three stages need options");
  std::vector<Candidate> out;
  for (std::size_t s = 0; s < scalers_.size(); ++s) {
    for (std::size_t w = 0; w < windowers_.size(); ++w) {
      for (std::size_t m = 0; m < models_.size(); ++m) {
        if (models_[m].consumes_tag != windowers_[w].tag) continue;
        out.push_back(Candidate{s, w, m});
      }
    }
  }
  require(!out.empty(), "ForecastGraph: no legal path (check tags)");
  return out;
}

ForecastPipeline ForecastGraph::instantiate(const Candidate& candidate,
                                            std::size_t n_variables) const {
  require(candidate.scaler < scalers_.size() &&
              candidate.windower < windowers_.size() &&
              candidate.model < models_.size(),
          "ForecastGraph::instantiate: index out of range");
  require(models_[candidate.model].consumes_tag ==
              windowers_[candidate.windower].tag,
          "ForecastGraph::instantiate: incompatible windower/model pair");
  auto model = models_[candidate.model].model->clone_estimator();
  // Temporal models need the channel count to reshape flattened windows.
  if (model->params().contains("n_vars")) {
    model->set_param("n_vars", static_cast<std::int64_t>(n_variables));
  }
  return ForecastPipeline(
      scalers_[candidate.scaler]->clone_transformer(),
      windowers_[candidate.windower].windower->clone(), std::move(model),
      spec_);
}

std::string ForecastGraph::candidate_spec(const Candidate& candidate,
                                          std::size_t n_variables) const {
  return instantiate(candidate, n_variables).spec_string();
}

std::string ForecastGraph::to_dot() const {
  std::string out = "digraph ts_pipeline {\n  rankdir=LR;\n";
  out += "  input [shape=ellipse];\n";
  auto cluster = [&out](const std::string& name, std::size_t id,
                        const std::vector<std::string>& nodes) {
    out += "  subgraph cluster_" + std::to_string(id) + " {\n    label=\"" +
           name + "\";\n";
    for (const auto& n : nodes) out += "    \"" + n + "\" [shape=box];\n";
    out += "  }\n";
  };
  std::vector<std::string> scaler_names;
  for (const auto& s : scalers_) scaler_names.push_back(s->name());
  std::vector<std::string> windower_names;
  for (const auto& w : windowers_) windower_names.push_back(w.windower->name());
  std::vector<std::string> model_names;
  for (const auto& m : models_) model_names.push_back(m.model->name());
  cluster("Data Scaling", 0, scaler_names);
  cluster("Data Preprocessing", 1, windower_names);
  cluster("Modelling", 2, model_names);

  for (const auto& s : scaler_names) out += "  input -> \"" + s + "\";\n";
  for (const auto& s : scaler_names) {
    for (const auto& w : windower_names) {
      out += "  \"" + s + "\" -> \"" + w + "\";\n";
    }
  }
  for (const auto& w : windowers_) {
    for (const auto& m : models_) {
      if (m.consumes_tag != w.tag) continue;
      out += "  \"" + w.windower->name() + "\" -> \"" + m.model->name() +
             "\";\n";
    }
  }
  out += "}\n";
  return out;
}

ForecastGraphEvaluator::ForecastGraphEvaluator(EvaluatorConfig config)
    : config_(std::move(config)) {}

std::string ForecastGraphEvaluator::cache_key(
    const TimeSeries& series, const std::string& candidate_spec,
    const TimeSeriesSlidingSplit& cv, Metric metric) {
  return hash_to_hex(fingerprint(series)) + "|" + candidate_spec + "|" +
         cv.spec() + "|" + metric_name(metric);
}

EvaluationReport ForecastGraphEvaluator::evaluate(
    const ForecastGraph& graph, const TimeSeries& series,
    const TimeSeriesSlidingSplit& cv) const {
  const obs::ScopedSpan span("evaluator.evaluate");
  Stopwatch total_timer;
  const auto candidates = graph.enumerate();
  EvaluationReport report;
  report.metric = config_.metric;
  report.results.resize(candidates.size());
  const std::size_t v = series.n_variables();

  // Same cooperative protocol as the tabular GraphEvaluator: a candidate
  // whose claim a peer holds is deferred on the first pass (keep working
  // on unclaimed ones) and revisited on the second pass, where we wait for
  // the peer's result or steal the claim if it expires (peer failure).
  auto evaluate_one = [&](std::size_t i, bool allow_defer) -> bool {
    static auto& lookup_hit = obs::counter("darr.lookup.hit");
    static auto& lookup_miss = obs::counter("darr.lookup.miss");
    static auto& candidate_local = obs::counter("evaluator.candidate.local");
    static auto& candidate_cached = obs::counter("evaluator.candidate.cached");
    static auto& candidate_failed = obs::counter("evaluator.candidate.failed");
    static auto& candidate_deferred =
        obs::counter("evaluator.candidate.deferred");
    static auto& candidate_seconds =
        obs::histogram("evaluator.candidate.seconds");
    static auto& claim_wait_seconds =
        obs::histogram("evaluator.claim.wait_seconds");

    CandidateResult& out = report.results[i];
    const obs::ScopedSpan span("evaluator.candidate");
    Stopwatch timer;
    out.claim_wait_seconds = 0.0;
    const std::string spec = graph.candidate_spec(candidates[i], v);
    out.spec = spec;
    const std::string key =
        config_.cache == nullptr
            ? std::string()
            : cache_key(series, spec, cv, config_.metric);
    auto serve_from_cache = [&](const CachedResult& hit) {
      out.mean_score = hit.mean_score;
      out.stddev = hit.stddev;
      out.fold_scores = hit.fold_scores;
      out.from_cache = true;
      out.eval_seconds = timer.elapsed_seconds() - out.claim_wait_seconds;
      candidate_cached.inc();
    };
    try {
      if (config_.cache != nullptr) {
        if (auto hit = config_.cache->lookup(key)) {
          lookup_hit.inc();
          serve_from_cache(*hit);
          return false;
        }
        lookup_miss.inc();
        if (!config_.cache->try_claim(key)) {
          if (allow_defer) {
            candidate_deferred.inc();
            return true;
          }
          Stopwatch wait_timer;
          const auto deadline =
              std::chrono::steady_clock::now() +
              std::chrono::milliseconds(config_.claim_wait_ms);
          for (;;) {
            if (auto hit = config_.cache->lookup(key)) {
              lookup_hit.inc();
              out.claim_wait_seconds = wait_timer.elapsed_seconds();
              claim_wait_seconds.observe(out.claim_wait_seconds);
              serve_from_cache(*hit);
              return false;
            }
            lookup_miss.inc();
            if (config_.cache->try_claim(key)) break;
            if (std::chrono::steady_clock::now() >= deadline) break;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(config_.claim_poll_ms));
          }
          out.claim_wait_seconds = wait_timer.elapsed_seconds();
          claim_wait_seconds.observe(out.claim_wait_seconds);
        }
      }
      const ForecastPipeline pipeline = graph.instantiate(candidates[i], v);
      const CachedResult result =
          evaluate_forecast(pipeline, series, cv, config_.metric);
      out.mean_score = result.mean_score;
      out.stddev = result.stddev;
      out.fold_scores = result.fold_scores;
      out.eval_seconds = timer.elapsed_seconds() - out.claim_wait_seconds;
      candidate_local.inc();
      candidate_seconds.observe(out.eval_seconds);
      if (config_.cache != nullptr) config_.cache->store(key, result);
    } catch (const std::exception& e) {
      out.failed = true;
      out.failure_message = e.what();
      out.eval_seconds = timer.elapsed_seconds() - out.claim_wait_seconds;
      candidate_failed.inc();
      if (config_.cache != nullptr && !key.empty()) {
        config_.cache->abandon(key);
      }
    }
    return false;
  };

  std::vector<std::size_t> deferred;
  if (config_.threads == 1) {
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (evaluate_one(i, /*allow_defer=*/true)) deferred.push_back(i);
    }
    for (const std::size_t i : deferred) {
      evaluate_one(i, /*allow_defer=*/false);
    }
  } else {
    ThreadPool pool(config_.threads);
    std::vector<std::future<bool>> futures;
    futures.reserve(candidates.size());
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      futures.push_back(pool.submit(evaluate_one, i, true));
    }
    for (std::size_t i = 0; i < futures.size(); ++i) {
      if (futures[i].get()) deferred.push_back(i);
    }
    std::vector<std::future<bool>> retry;
    retry.reserve(deferred.size());
    for (const std::size_t i : deferred) {
      retry.push_back(pool.submit(evaluate_one, i, false));
    }
    for (auto& f : retry) f.get();
  }

  const bool maximize = higher_is_better(config_.metric);
  bool found = false;
  for (std::size_t i = 0; i < report.results.size(); ++i) {
    const auto& r = report.results[i];
    report.total_claim_wait_seconds += r.claim_wait_seconds;
    if (r.failed) continue;
    if (r.from_cache) {
      ++report.served_from_cache;
    } else {
      ++report.evaluated_locally;
    }
    if (!found) {
      report.best_index = i;
      found = true;
      continue;
    }
    const auto& best = report.results[report.best_index];
    if (maximize ? r.mean_score > best.mean_score
                 : r.mean_score < best.mean_score) {
      report.best_index = i;
    }
  }
  require_state(found, "ForecastGraphEvaluator: every candidate failed");
  report.total_seconds = total_timer.elapsed_seconds();
  return report;
}

ForecastPipeline ForecastGraphEvaluator::train_best(
    const ForecastGraph& graph, const TimeSeries& series,
    const TimeSeriesSlidingSplit& cv) const {
  const auto report = evaluate(graph, series, cv);
  const auto candidates = graph.enumerate();
  const std::size_t v = series.n_variables();
  for (const auto& candidate : candidates) {
    if (graph.candidate_spec(candidate, v) == report.best().spec) {
      ForecastPipeline p = graph.instantiate(candidate, v);
      p.fit_full(series);
      return p;
    }
  }
  throw StateError("ForecastGraphEvaluator: best candidate not found");
}

}  // namespace coda::ts
