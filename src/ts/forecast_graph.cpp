#include "src/ts/forecast_graph.h"

#include <utility>

#include "src/core/eval_engine.h"
#include "src/data/fingerprint.h"
#include "src/ml/scalers.h"
#include "src/obs/obs.h"
#include "src/ts/forecast_plan.h"
#include "src/ts/forecasters.h"
#include "src/ts/nn_forecasters.h"
#include "src/util/hash.h"
#include "src/util/stopwatch.h"

namespace coda::ts {
namespace {

// Clones a neural prototype, names it, and pins its architecture variant.
template <typename ModelT>
std::unique_ptr<Estimator> make_arch_variant(const std::string& node_name,
                                             const std::string& arch) {
  auto model = std::make_unique<ModelT>();
  model->set_name(node_name);
  model->set_param("arch", arch);
  return model;
}

}  // namespace

ForecastGraph ForecastGraph::standard(const ForecastSpec& spec,
                                      std::int64_t neural_epochs) {
  ForecastGraph g(spec);
  g.add_scaler(std::make_unique<StandardScaler>());
  g.add_scaler(std::make_unique<MinMaxScaler>());
  g.add_scaler(std::make_unique<RobustScaler>());
  g.add_scaler(std::make_unique<NoOp>());

  g.add_windower(std::make_unique<CascadedWindows>(), "cascaded");
  g.add_windower(std::make_unique<FlatWindowing>(), "flat");
  g.add_windower(std::make_unique<TsAsIid>(), "iid");
  g.add_windower(std::make_unique<TsAsIs>(), "asis");

  // Temporal models consume cascaded windows (Fig 11 wiring).
  g.add_model(make_arch_variant<LstmForecaster>("lstm_simple", "simple"),
              "cascaded");
  g.add_model(make_arch_variant<LstmForecaster>("lstm_deep", "deep"),
              "cascaded");
  g.add_model(make_arch_variant<CnnForecaster>("cnn_simple", "simple"),
              "cascaded");
  g.add_model(make_arch_variant<CnnForecaster>("cnn_deep", "deep"),
              "cascaded");
  g.add_model(std::make_unique<WaveNetForecaster>(), "cascaded");
  g.add_model(std::make_unique<SeriesNetForecaster>(), "cascaded");
  // The AR(p) regression also reads lagged values (VAR over the window).
  g.add_model(std::make_unique<ArModel>(), "cascaded");

  // IID DNNs consume flattened windows and per-timestamp points.
  g.add_model(make_arch_variant<DnnForecaster>("dnn_simple", "simple"),
              "flat");
  g.add_model(make_arch_variant<DnnForecaster>("dnn_deep", "deep"), "flat");
  g.add_model(make_arch_variant<DnnForecaster>("dnn_iid_simple", "simple"),
              "iid");
  g.add_model(make_arch_variant<DnnForecaster>("dnn_iid_deep", "deep"),
              "iid");

  // The persistence baseline consumes the raw (as-is) feed.
  g.add_model(std::make_unique<ZeroModel>(), "asis");

  if (neural_epochs > 0) {
    for (auto& option : g.models_) {
      if (option.model->params().contains("epochs")) {
        option.model->set_param("epochs", neural_epochs);
      }
    }
  }
  return g;
}

ForecastGraph& ForecastGraph::add_scaler(
    std::unique_ptr<Transformer> scaler) {
  require(scaler != nullptr, "ForecastGraph: null scaler");
  scalers_.push_back(std::move(scaler));
  return *this;
}

ForecastGraph& ForecastGraph::add_windower(
    std::unique_ptr<WindowMaker> windower, std::string tag) {
  require(windower != nullptr, "ForecastGraph: null windower");
  require(!tag.empty(), "ForecastGraph: windower tag must be non-empty");
  windowers_.push_back(WindowerOption{std::move(windower), std::move(tag)});
  return *this;
}

ForecastGraph& ForecastGraph::add_model(std::unique_ptr<Estimator> model,
                                        std::string consumes_tag) {
  require(model != nullptr, "ForecastGraph: null model");
  for (const auto& m : models_) {
    require(m.model->name() != model->name(),
            "ForecastGraph: duplicate model name '" + model->name() + "'");
  }
  models_.push_back(ModelOption{std::move(model), std::move(consumes_tag)});
  return *this;
}

std::vector<ForecastGraph::Candidate> ForecastGraph::enumerate() const {
  require(!scalers_.empty() && !windowers_.empty() && !models_.empty(),
          "ForecastGraph: all three stages need options");
  std::vector<Candidate> out;
  for (std::size_t s = 0; s < scalers_.size(); ++s) {
    for (std::size_t w = 0; w < windowers_.size(); ++w) {
      for (std::size_t m = 0; m < models_.size(); ++m) {
        if (models_[m].consumes_tag != windowers_[w].tag) continue;
        out.push_back(Candidate{s, w, m});
      }
    }
  }
  require(!out.empty(), "ForecastGraph: no legal path (check tags)");
  return out;
}

ForecastPipeline ForecastGraph::instantiate(const Candidate& candidate,
                                            std::size_t n_variables) const {
  require(candidate.scaler < scalers_.size() &&
              candidate.windower < windowers_.size() &&
              candidate.model < models_.size(),
          "ForecastGraph::instantiate: index out of range");
  require(models_[candidate.model].consumes_tag ==
              windowers_[candidate.windower].tag,
          "ForecastGraph::instantiate: incompatible windower/model pair");
  auto model = models_[candidate.model].model->clone_estimator();
  // Temporal models need the channel count to reshape flattened windows.
  if (model->params().contains("n_vars")) {
    model->set_param("n_vars", static_cast<std::int64_t>(n_variables));
  }
  return ForecastPipeline(
      scalers_[candidate.scaler]->clone_transformer(),
      windowers_[candidate.windower].windower->clone(), std::move(model),
      spec_);
}

std::string ForecastGraph::candidate_spec(const Candidate& candidate,
                                          std::size_t n_variables) const {
  return instantiate(candidate, n_variables).spec_string();
}

std::string ForecastGraph::to_dot() const {
  std::string out = "digraph ts_pipeline {\n  rankdir=LR;\n";
  out += "  input [shape=ellipse];\n";
  auto cluster = [&out](const std::string& name, std::size_t id,
                        const std::vector<std::string>& nodes) {
    out += "  subgraph cluster_" + std::to_string(id) + " {\n    label=\"" +
           name + "\";\n";
    for (const auto& n : nodes) out += "    \"" + n + "\" [shape=box];\n";
    out += "  }\n";
  };
  std::vector<std::string> scaler_names;
  for (const auto& s : scalers_) scaler_names.push_back(s->name());
  std::vector<std::string> windower_names;
  for (const auto& w : windowers_) windower_names.push_back(w.windower->name());
  std::vector<std::string> model_names;
  for (const auto& m : models_) model_names.push_back(m.model->name());
  cluster("Data Scaling", 0, scaler_names);
  cluster("Data Preprocessing", 1, windower_names);
  cluster("Modelling", 2, model_names);

  for (const auto& s : scaler_names) out += "  input -> \"" + s + "\";\n";
  for (const auto& s : scaler_names) {
    for (const auto& w : windower_names) {
      out += "  \"" + s + "\" -> \"" + w + "\";\n";
    }
  }
  for (const auto& w : windowers_) {
    for (const auto& m : models_) {
      if (m.consumes_tag != w.tag) continue;
      out += "  \"" + w.windower->name() + "\" -> \"" + m.model->name() +
             "\";\n";
    }
  }
  out += "}\n";
  return out;
}

namespace {

std::size_t windowed_bytes(const WindowedData& wd) {
  return wd.X.size() * sizeof(double) + wd.y.size() * sizeof(double) +
         wd.target_times.size() * sizeof(std::size_t) +
         wd.span_starts.size() * sizeof(std::size_t) + sizeof(WindowedData);
}

/// Scores candidate x fold with (scaler, windower) prefix memoization: the
/// WindowedData for one fold depends only on the scaler spec, the windower
/// and the training range — every model consuming that pair reuses it, and
/// one shared copy serves both the fold's fit and its validation
/// predictions (the old path windowed the series twice per fold).
/// Windowing is deterministic, so scores are bit-identical either way.
double score_forecast_fold(const ForecastGraph& graph,
                           const ForecastGraph::Candidate& candidate,
                           const TimeSeries& series, std::size_t n_variables,
                           const Split& split, std::size_t fold,
                           PrefixCache& prefixes, Metric metric,
                           bool compile_plans) {
  ForecastPipeline pipeline = graph.instantiate(candidate, n_variables);
  const std::size_t a = split.train.front();
  const std::size_t b = split.train.back() + 1;
  const std::size_t c = split.test.front();
  const std::size_t d = split.test.back() + 1;
  const std::string prefix = pipeline.scaler().spec() + "|" +
                             pipeline.windower().name();
  if (compile_plans) {
    // Compiled plans are fold-independent, so they memoize under a key
    // without a fold component — folds and sibling models all reuse one
    // plan per (scaler, windower) prefix. The key embeds the canonical
    // component specs, so a parameter change invalidates the plan exactly
    // like it invalidates the fitted prefix below.
    // Phase attribution (ISSUE 9): plan + fold memoization = prepare,
    // model fit = fit, predict + metric = score; each region wraps its
    // lookup-or-compute block whole (profiler determinism rules).
    std::shared_ptr<const PreparedFold> prepared;
    {
      PROF_SCOPE("eval.fold.prepare");
      Stopwatch prepare_timer;
      const std::string plan_key = "plan|ts|" + prefix;
      std::shared_ptr<const CompiledForecastPlan> plan =
          prefixes.get<CompiledForecastPlan>(plan_key);
      if (plan == nullptr) {
        plan = CompiledForecastPlan::compile(pipeline);
        prefixes.insert(plan_key, plan, plan->bytes());
      }
      const std::string fold_key = "tsplan|f" + std::to_string(fold) + "|" +
                                   prefix;
      prepared = prefixes.get<PreparedFold>(fold_key);
      if (prepared == nullptr) {
        auto computed =
            std::make_shared<PreparedFold>(plan->prepare(series, a, b, c, d));
        prefixes.insert(fold_key, computed, computed->bytes());
        prepared = std::move(computed);
      }
      obs::phase_event(obs::Phase::kPrepare, prepare_timer.elapsed_seconds());
    }
    {
      PROF_SCOPE("eval.fold.fit");
      Stopwatch fit_timer;
      pipeline.model().fit(prepared->X_train, prepared->y_train);
      obs::phase_event(obs::Phase::kFit, fit_timer.elapsed_seconds());
    }
    PROF_SCOPE("eval.fold.score");
    Stopwatch score_timer;
    const double result = score(metric, prepared->y_val,
                                pipeline.model().predict(prepared->X_val));
    obs::phase_event(obs::Phase::kScore, score_timer.elapsed_seconds());
    return result;
  }
  std::shared_ptr<const WindowedData> wd;
  {
    PROF_SCOPE("eval.fold.prepare");
    Stopwatch prepare_timer;
    const std::string prefix_key =
        "ts|f" + std::to_string(fold) + "|" + prefix;
    wd = prefixes.get<WindowedData>(prefix_key);
    if (wd == nullptr) {
      auto computed = std::make_shared<WindowedData>(
          pipeline.prepare_windows(series, a, b));
      prefixes.insert(prefix_key, computed, windowed_bytes(*computed));
      wd = std::move(computed);
    }
    obs::phase_event(obs::Phase::kPrepare, prepare_timer.elapsed_seconds());
  }
  {
    PROF_SCOPE("eval.fold.fit");
    Stopwatch fit_timer;
    pipeline.fit_prepared(series, a, b, *wd);
    obs::phase_event(obs::Phase::kFit, fit_timer.elapsed_seconds());
  }
  PROF_SCOPE("eval.fold.score");
  Stopwatch score_timer;
  const auto [pred, truth] = pipeline.predict_range_prepared(*wd, c, d);
  const double result = score(metric, truth, pred);
  obs::phase_event(obs::Phase::kScore, score_timer.elapsed_seconds());
  return result;
}

}  // namespace

ForecastGraphEvaluator::ForecastGraphEvaluator(EvalOptions options)
    : options_(std::move(options)) {}

std::string ForecastGraphEvaluator::cache_key(
    const TimeSeries& series, const std::string& candidate_spec,
    const TimeSeriesSlidingSplit& cv, Metric metric) {
  return hash_to_hex(fingerprint(series)) + "|" + candidate_spec + "|" +
         cv.spec() + "|" + metric_name(metric);
}

EvaluationReport ForecastGraphEvaluator::evaluate(
    const ForecastGraph& graph, const TimeSeries& series,
    const TimeSeriesSlidingSplit& cv) const {
  const auto candidates = graph.enumerate();
  const std::size_t v = series.n_variables();
  const auto splits = cv.splits(series.length());
  require(!splits.empty(),
          "ForecastGraphEvaluator: CV produced no splits");

  const bool cooperative = options_.cache != nullptr;
  std::vector<EvalEngine::Candidate> engine_candidates;
  engine_candidates.reserve(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    EvalEngine::Candidate ec;
    ec.spec = graph.candidate_spec(candidates[i], v);
    ec.key = cooperative ? cache_key(series, ec.spec, cv, options_.metric)
                         : std::string();
    ec.score_fold = [this, &graph, &candidates, &series, &splits, v, i](
                        std::size_t fold, PrefixCache& prefixes) {
      return score_forecast_fold(graph, candidates[i], series, v,
                                 splits[fold], fold, prefixes,
                                 options_.metric, options_.compile_plans);
    };
    engine_candidates.push_back(std::move(ec));
  }

  EvalEngine engine(options_);
  return engine.run(std::move(engine_candidates), splits.size());
}

ForecastPipeline ForecastGraphEvaluator::train_best(
    const ForecastGraph& graph, const TimeSeries& series,
    const TimeSeriesSlidingSplit& cv) const {
  const auto report = evaluate(graph, series, cv);
  const auto candidates = graph.enumerate();
  const std::size_t v = series.n_variables();
  for (const auto& candidate : candidates) {
    if (graph.candidate_spec(candidate, v) == report.best().spec) {
      ForecastPipeline p = graph.instantiate(candidate, v);
      p.fit_full(series);
      return p;
    }
  }
  throw StateError("ForecastGraphEvaluator: best candidate not found");
}

}  // namespace coda::ts
