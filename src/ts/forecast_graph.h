// The Transformer-Estimator Graph for time-series prediction (Fig 11):
// Data Scaling x Data Preprocessing x Modelling, with compatibility edges
// wiring each preprocessor only to the estimators that can consume it —
// CascadedWindows -> temporal models, FlatWindowing / TS-as-IID -> IID
// DNNs, TS-as-is -> statistical models.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/core/component.h"
#include "src/core/evaluator.h"
#include "src/ts/forecast_pipeline.h"
#include "src/ts/windowing.h"

namespace coda::ts {

/// Builds and enumerates forecast paths. Stage options are added with tags;
/// a model consumes exactly the windowers whose tag matches its input tag.
class ForecastGraph {
 public:
  explicit ForecastGraph(ForecastSpec spec) : spec_(spec) {}

  /// The standard Fig 11 graph: 4 scalers (standard, min-max, robust, none)
  /// x 4 preprocessors x 12 models (LSTM simple/deep, CNN simple/deep,
  /// WaveNet, SeriesNet, DNN simple/deep x2 feeds, Zero, AR) with the
  /// paper's edges. `neural_epochs` overrides every neural model's training
  /// epochs (0 keeps each model's default) — useful to trade search time
  /// against model quality.
  static ForecastGraph standard(const ForecastSpec& spec,
                                std::int64_t neural_epochs = 0);

  ForecastGraph& add_scaler(std::unique_ptr<Transformer> scaler);
  ForecastGraph& add_windower(std::unique_ptr<WindowMaker> windower,
                              std::string tag);
  /// `consumes_tag` names the windower tag this model is wired to.
  ForecastGraph& add_model(std::unique_ptr<Estimator> model,
                           std::string consumes_tag);

  const ForecastSpec& spec() const { return spec_; }
  std::size_t n_scalers() const { return scalers_.size(); }
  std::size_t n_windowers() const { return windowers_.size(); }
  std::size_t n_models() const { return models_.size(); }

  /// One legal path: indices into the three stages.
  struct Candidate {
    std::size_t scaler;
    std::size_t windower;
    std::size_t model;
  };

  /// All legal paths (honouring windower->model compatibility).
  std::vector<Candidate> enumerate() const;

  /// Size of the unrestricted cartesian product (for the pruning ablation).
  std::size_t count_full_cartesian() const {
    return scalers_.size() * windowers_.size() * models_.size();
  }

  /// Builds the runnable pipeline for a candidate. Temporal models get
  /// their `n_vars` parameter set to `n_variables` so they can reshape
  /// flattened cascaded windows.
  ForecastPipeline instantiate(const Candidate& candidate,
                               std::size_t n_variables) const;

  std::string candidate_spec(const Candidate& candidate,
                             std::size_t n_variables) const;

  /// Graphviz rendering of the staged graph with its compatibility edges.
  std::string to_dot() const;

 private:
  struct WindowerOption {
    std::unique_ptr<WindowMaker> windower;
    std::string tag;
  };
  struct ModelOption {
    std::unique_ptr<Estimator> model;
    std::string consumes_tag;
  };

  ForecastSpec spec_;
  std::vector<std::unique_ptr<Transformer>> scalers_;
  std::vector<WindowerOption> windowers_;
  std::vector<ModelOption> models_;
};

/// Evaluates every path of a forecast graph under a sliding split, in
/// parallel, optionally cooperating through a ResultCache (DARR).
/// Delegates scheduling, shared-prefix memoization (one WindowedData per
/// fold x scaler x windower) and the claim protocol to the EvalEngine.
class ForecastGraphEvaluator {
 public:
  explicit ForecastGraphEvaluator(EvalOptions options = {});

  EvaluationReport evaluate(const ForecastGraph& graph,
                            const TimeSeries& series,
                            const TimeSeriesSlidingSplit& cv) const;

  /// Best path's pipeline re-fitted on the whole series.
  ForecastPipeline train_best(const ForecastGraph& graph,
                              const TimeSeries& series,
                              const TimeSeriesSlidingSplit& cv) const;

  static std::string cache_key(const TimeSeries& series,
                               const std::string& candidate_spec,
                               const TimeSeriesSlidingSplit& cv,
                               Metric metric);

 private:
  EvalOptions options_;
};

}  // namespace coda::ts
