#include "src/ts/forecast_plan.h"

#include <utility>

#include "src/ts/windowing.h"

namespace coda::ts {
namespace {

WindowLowering probe_windower(const WindowMaker& w) {
  if (dynamic_cast<const CascadedWindows*>(&w) != nullptr ||
      dynamic_cast<const FlatWindowing*>(&w) != nullptr) {
    return WindowLowering::kHistory;
  }
  if (dynamic_cast<const TsAsIid*>(&w) != nullptr) {
    return WindowLowering::kIid;
  }
  if (dynamic_cast<const TsAsIs*>(&w) != nullptr) {
    return WindowLowering::kAsIs;
  }
  return WindowLowering::kInterpreted;
}

/// Row split of an interpreted WindowedData, reproducing fit_prepared's
/// train selection and predict_range_prepared's validation gather.
PreparedFold split_windowed(const WindowedData& wd, std::size_t a,
                            std::size_t b, std::size_t c, std::size_t d,
                            const std::string& windower_name) {
  std::vector<std::size_t> train_rows;
  std::vector<std::size_t> val_rows;
  for (std::size_t i = 0; i < wd.y.size(); ++i) {
    if (wd.span_starts[i] >= a && wd.target_times[i] < b) {
      train_rows.push_back(i);
    }
    if (wd.target_times[i] >= c && wd.target_times[i] < d) {
      val_rows.push_back(i);
    }
  }
  require(!train_rows.empty(),
          "CompiledForecastPlan: training range too short for " +
              windower_name);
  require(!val_rows.empty(),
          "CompiledForecastPlan: no windows target the range");
  PreparedFold out;
  out.X_train = wd.X.select_rows(train_rows);
  out.X_val = wd.X.select_rows(val_rows);
  out.y_train.reserve(train_rows.size());
  for (const std::size_t i : train_rows) out.y_train.push_back(wd.y[i]);
  out.y_val.reserve(val_rows.size());
  for (const std::size_t i : val_rows) out.y_val.push_back(wd.y[i]);
  return out;
}

}  // namespace

CompiledForecastPlan::CompiledForecastPlan(
    std::unique_ptr<Transformer> scaler, std::unique_ptr<WindowMaker> windower,
    ForecastSpec spec)
    : scaler_proto_(std::move(scaler)),
      windower_proto_(std::move(windower)),
      spec_(spec) {}

std::shared_ptr<const CompiledForecastPlan> CompiledForecastPlan::compile(
    const ForecastPipeline& pipeline) {
  std::shared_ptr<CompiledForecastPlan> plan(new CompiledForecastPlan(
      pipeline.scaler().clone_transformer(), pipeline.windower().clone(),
      pipeline.spec()));
  plan->lowering_ = probe_windower(*plan->windower_proto_);
  // The as-is feed never reads the scaled view, so the scaler stage fuses
  // (to nothing) regardless of its type; an interpreted windower drags the
  // scaler down with it because build() needs the materialized transform.
  switch (plan->lowering_) {
    case WindowLowering::kInterpreted:
      plan->scaler_fused_ = false;
      break;
    case WindowLowering::kAsIs:
      plan->scaler_fused_ = true;
      break;
    default:
      plan->scaler_fused_ = lowerable_scaler(*plan->scaler_proto_);
      break;
  }
  const std::size_t fused = (plan->scaler_fused_ ? 1u : 0u) +
                            (plan->lowering_ != WindowLowering::kInterpreted
                                 ? 1u
                                 : 0u);
  record_plan_compiled(fused, 2 - fused);
  return plan;
}

std::size_t CompiledForecastPlan::bytes() const {
  // Two cloned prototypes plus this object; prototype internals are small
  // (component name + params), so a flat estimate is fine for LRU budgeting.
  return sizeof(CompiledForecastPlan) + 256;
}

PreparedFold CompiledForecastPlan::prepare(const TimeSeries& series,
                                           std::size_t train_begin,
                                           std::size_t train_end,
                                           std::size_t target_begin,
                                           std::size_t target_end) const {
  require(train_begin < train_end && train_end <= series.length(),
          "CompiledForecastPlan::prepare: bad training range");
  require(target_begin < target_end,
          "CompiledForecastPlan::prepare: bad target range");
  // The scaler fit itself stays interpreted: training-slice statistics are
  // O(train length) and fold-specific, exactly what the fold key captures.
  auto scaler = scaler_proto_->clone_transformer();
  const TimeSeries train_slice = series.slice(train_begin, train_end);
  static const std::vector<double> kNoTargets;
  scaler->fit(train_slice.values(), kNoTargets);

  const Matrix& raw = series.values();
  if (lowering_ == WindowLowering::kInterpreted) {
    const Matrix scaled = scaler->transform(raw);
    const WindowedData wd = windower_proto_->build(scaled, raw, spec_);
    return split_windowed(wd, train_begin, train_end, target_begin,
                          target_end, windower_proto_->name());
  }

  const std::size_t L = raw.rows();
  const std::size_t v = raw.cols();
  const std::size_t h = spec_.horizon;
  require(L > 0, "CompiledForecastPlan: empty series");
  require(h >= 1, "CompiledForecastPlan: horizon must be >= 1");
  require(spec_.target_var < v,
          "CompiledForecastPlan: target_var out of range");

  // The scaled feature read: either the fused affine applied to the raw
  // element on the fly, or (unlowerable scaler, lowered windower) one
  // materialized transform the index program reads from. The as-is feed
  // reads raw target values only, so neither is needed there.
  FusedAffine affine;
  Matrix scaled_fallback;
  const bool need_features = lowering_ != WindowLowering::kAsIs;
  const bool fused_features = need_features && scaler_fused_;
  if (fused_features) {
    affine = lower_scaler(*scaler);
  } else if (need_features) {
    scaled_fallback = scaler->transform(raw);
  }
  const auto feat = [&](std::size_t r, std::size_t col) {
    return fused_features ? affine.apply(raw(r, col), col)
                          : scaled_fallback(r, col);
  };

  // The index program: per window row i, its feature span start, target
  // time, and width — mirroring the windower's build() formulas.
  std::size_t n_rows = 0;
  std::size_t width = 0;
  std::size_t p = 0;
  if (lowering_ == WindowLowering::kHistory) {
    p = spec_.history;
    require(p >= 1, "CompiledForecastPlan: history must be >= 1");
    require(L >= p + h,
            "CompiledForecastPlan: series shorter than history + horizon");
    n_rows = L - p - h + 1;
    width = p * v;
  } else {
    require(L > h, "CompiledForecastPlan: series shorter than horizon");
    n_rows = L - h;
    width = lowering_ == WindowLowering::kIid ? v : 1;
  }
  const auto row_target = [&](std::size_t i) {
    return lowering_ == WindowLowering::kHistory ? i + p + h - 1 : i + h;
  };

  std::size_t n_train = 0;
  std::size_t n_val = 0;
  for (std::size_t i = 0; i < n_rows; ++i) {
    const std::size_t target = row_target(i);
    if (i >= train_begin && target < train_end) ++n_train;
    if (target >= target_begin && target < target_end) ++n_val;
  }
  require(n_train > 0, "CompiledForecastPlan: training range too short for " +
                           windower_proto_->name());
  require(n_val > 0, "CompiledForecastPlan: no windows target the range");

  PreparedFold out;
  out.X_train = Matrix(n_train, width);
  out.X_val = Matrix(n_val, width);
  out.y_train.reserve(n_train);
  out.y_val.reserve(n_val);
  std::size_t rt = 0;
  std::size_t rv = 0;
  for (std::size_t i = 0; i < n_rows; ++i) {
    const std::size_t target = row_target(i);
    const bool in_train = i >= train_begin && target < train_end;
    const bool in_val = target >= target_begin && target < target_end;
    if (!in_train && !in_val) continue;
    const double y = raw(target, spec_.target_var);
    double* dst_train = in_train ? out.X_train.row_ptr(rt) : nullptr;
    double* dst_val = in_val ? out.X_val.row_ptr(rv) : nullptr;
    const auto emit = [&](std::size_t j, double value) {
      if (dst_train != nullptr) dst_train[j] = value;
      if (dst_val != nullptr) dst_val[j] = value;
    };
    switch (lowering_) {
      case WindowLowering::kHistory:
        for (std::size_t t = 0; t < p; ++t) {
          for (std::size_t col = 0; col < v; ++col) {
            emit(t * v + col, feat(i + t, col));
          }
        }
        break;
      case WindowLowering::kIid:
        for (std::size_t col = 0; col < v; ++col) emit(col, feat(i, col));
        break;
      default:  // kAsIs: the persistence feed is deliberately unscaled
        emit(0, raw(i, spec_.target_var));
        break;
    }
    if (in_train) {
      out.y_train.push_back(y);
      ++rt;
    }
    if (in_val) {
      out.y_val.push_back(y);
      ++rv;
    }
  }
  return out;
}

}  // namespace coda::ts
