// Neural time-series estimators (Sections IV-C2 / IV-C3): IID DNNs
// (simple/deep), temporal LSTMs (simple/deep), CNNs (simple/deep), and the
// WaveNet / SeriesNet dilated-causal-convolution models.
//
// All share the NeuralForecaster base: targets are standardized internally,
// training uses Adam + MSE mini-batches, and temporal models reinterpret
// each flattened cascaded-window row as a (history x n_vars) sequence via
// the `n_vars` parameter (set by the forecast-graph builder).
#pragma once

#include "src/core/component.h"
#include "src/nn/sequential.h"

namespace coda::ts {

/// Common scaffolding for every neural estimator in the forecast pipeline.
/// Subclasses implement build_network(); the base handles target scaling,
/// training and prediction. Common parameters: epochs (int, 40),
/// batch_size (int, 32), learning_rate (double, 1e-3), dropout (double,
/// 0.1), seed (int, 42).
class NeuralForecaster : public Estimator {
 public:
  void fit(const Matrix& X, const std::vector<double>& y) final;
  std::vector<double> predict(const Matrix& X) const final;

 protected:
  explicit NeuralForecaster(std::string name);

  /// Builds the untrained network for `in_features` inputs.
  virtual nn::Sequential build_network(std::size_t in_features) const = 0;

  double dropout_rate() const { return params().get_double("dropout"); }
  std::uint64_t seed() const {
    return static_cast<std::uint64_t>(params().get_int("seed"));
  }

 private:
  nn::Sequential net_;
  double y_mean_ = 0.0;
  double y_scale_ = 1.0;
  bool fitted_ = false;
};

/// IID DNN (Section IV-C3): "simple" = 2 hidden+dropout layers, "deep" = 4.
/// Extra parameters: arch (string, "simple"), hidden (int, 32).
class DnnForecaster final : public NeuralForecaster {
 public:
  DnnForecaster() : NeuralForecaster("dnn") {
    declare_param("arch", std::string("simple"));
    declare_param("hidden", std::int64_t{32});
  }
  std::unique_ptr<Component> clone() const override {
    return std::make_unique<DnnForecaster>(*this);
  }

 protected:
  nn::Sequential build_network(std::size_t in_features) const override;
};

/// Temporal LSTM (Section IV-C2): "simple" = one LSTM + dropout, "deep" =
/// four stacked LSTM+dropout blocks; both end in a linear read-out. Extra
/// parameters: arch (string, "simple"), hidden (int, 16), n_vars (int, 1).
class LstmForecaster final : public NeuralForecaster {
 public:
  LstmForecaster() : NeuralForecaster("lstm") {
    declare_param("arch", std::string("simple"));
    declare_param("hidden", std::int64_t{16});
    declare_param("n_vars", std::int64_t{1});
  }
  std::unique_ptr<Component> clone() const override {
    return std::make_unique<LstmForecaster>(*this);
  }

 protected:
  nn::Sequential build_network(std::size_t in_features) const override;
};

/// Temporal CNN (Section IV-C2): conv1d + ReLU + max-pool blocks (1 for
/// "simple", 2 for "deep"), then a nonlinear dense layer and a linear
/// read-out. Extra parameters: arch (string, "simple"), filters (int, 16),
/// kernel (int, 3), hidden (int, 32), n_vars (int, 1).
class CnnForecaster final : public NeuralForecaster {
 public:
  CnnForecaster() : NeuralForecaster("cnn") {
    declare_param("arch", std::string("simple"));
    declare_param("filters", std::int64_t{16});
    declare_param("kernel", std::int64_t{3});
    declare_param("hidden", std::int64_t{32});
    declare_param("n_vars", std::int64_t{1});
  }
  std::unique_ptr<Component> clone() const override {
    return std::make_unique<CnnForecaster>(*this);
  }

 protected:
  nn::Sequential build_network(std::size_t in_features) const override;
};

/// WaveNet-style model (Section IV-C2): a stack of dilated causal
/// convolutions (dilations 1, 2, 4, ... capped by the history length) with
/// ReLU activations, read out at the last timestep. Gated activation units
/// are simplified to ReLU (documented substitution, DESIGN.md §2). Extra
/// parameters: filters (int, 16), n_vars (int, 1).
class WaveNetForecaster final : public NeuralForecaster {
 public:
  WaveNetForecaster() : NeuralForecaster("wavenet") {
    declare_param("filters", std::int64_t{16});
    declare_param("n_vars", std::int64_t{1});
  }
  std::unique_ptr<Component> clone() const override {
    return std::make_unique<WaveNetForecaster>(*this);
  }

 protected:
  nn::Sequential build_network(std::size_t in_features) const override;
};

/// SeriesNet-style model (Section IV-C2): a deeper dilated causal stack
/// with tanh activations (the WaveNet variant tuned for time series; the
/// reference's per-block linear skip connections are folded into the
/// deeper stack — documented simplification). Extra parameters:
/// filters (int, 16), n_vars (int, 1).
class SeriesNetForecaster final : public NeuralForecaster {
 public:
  SeriesNetForecaster() : NeuralForecaster("seriesnet") {
    declare_param("filters", std::int64_t{16});
    declare_param("n_vars", std::int64_t{1});
  }
  std::unique_ptr<Component> clone() const override {
    return std::make_unique<SeriesNetForecaster>(*this);
  }

 protected:
  nn::Sequential build_network(std::size_t in_features) const override;
};

}  // namespace coda::ts
