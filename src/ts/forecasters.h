// Statistical time-series estimators (Section IV-C1).
#pragma once

#include "src/core/component.h"

namespace coda::ts {

/// The Zero (persistence) model — the paper's baseline: "outputs the
/// previous timestamp's ground truth as the next timestamp's prediction".
/// Expects the TS-as-is feed where column `value_col` holds the current
/// target value. Parameter: value_col (int, default 0).
class ZeroModel final : public Estimator {
 public:
  ZeroModel() : Estimator("zeromodel") {
    declare_param("value_col", std::int64_t{0});
  }

  void fit(const Matrix& X, const std::vector<double>& y) override;
  std::vector<double> predict(const Matrix& X) const override;
  std::unique_ptr<Component> clone() const override {
    return std::make_unique<ZeroModel>(*this);
  }

 private:
  std::size_t fitted_cols_ = 0;
};

/// Autoregressive model fit by least squares on lagged values. On cascaded
/// windows of a multivariate series this is a VAR(p) regression onto the
/// target. (The paper lists ARIMA but did not integrate it; this linear AR
/// is the closest statistical model that fits the pipeline contract —
/// see DESIGN.md §2.) Parameter: ridge (double, default 1e-6).
class ArModel final : public Estimator {
 public:
  ArModel() : Estimator("armodel") { declare_param("ridge", 1e-6); }

  void fit(const Matrix& X, const std::vector<double>& y) override;
  std::vector<double> predict(const Matrix& X) const override;
  std::unique_ptr<Component> clone() const override {
    return std::make_unique<ArModel>(*this);
  }

  const std::vector<double>& coefficients() const { return weights_; }

 private:
  std::vector<double> weights_;
};

}  // namespace coda::ts
