#include "src/ts/windowing.h"

#include <algorithm>

#include "src/util/error.h"

namespace coda::ts {
namespace {

void check_inputs(const Matrix& features, const Matrix& target_source,
                  const ForecastSpec& spec) {
  require(features.rows() == target_source.rows() &&
              features.cols() == target_source.cols(),
          "WindowMaker: feature/target series shape mismatch");
  require(features.rows() > 0, "WindowMaker: empty series");
  require(spec.horizon >= 1, "WindowMaker: horizon must be >= 1");
  require(spec.target_var < features.cols(),
          "WindowMaker: target_var out of range");
}

// Shared implementation of Figs 7 and 8: the cascaded window and its
// flattened form contain the same values in the same (time-major) order;
// the distinction is which estimators consume them (temporal vs IID).
WindowedData build_history_windows(const Matrix& features,
                                   const Matrix& target_source,
                                   const ForecastSpec& spec) {
  check_inputs(features, target_source, spec);
  require(spec.history >= 1, "WindowMaker: history must be >= 1");
  const std::size_t L = features.rows();
  const std::size_t v = features.cols();
  const std::size_t p = spec.history;
  require(L >= p + spec.horizon,
          "WindowMaker: series shorter than history + horizon");
  const std::size_t n = L - p - spec.horizon + 1;

  WindowedData out;
  out.X = Matrix(n, p * v);
  out.y.resize(n);
  out.target_times.resize(n);
  out.span_starts.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Each history step is one contiguous source row: copy it as a block
    // instead of element-by-element.
    double* dst = out.X.row_ptr(i);
    for (std::size_t t = 0; t < p; ++t) {
      const double* src = features.row_ptr(i + t);
      std::copy(src, src + v, dst + t * v);
    }
    const std::size_t target_time = i + p + spec.horizon - 1;
    out.y[i] = target_source(target_time, spec.target_var);
    out.target_times[i] = target_time;
    out.span_starts[i] = i;
  }
  return out;
}

}  // namespace

WindowedData CascadedWindows::build(const Matrix& features,
                                    const Matrix& target_source,
                                    const ForecastSpec& spec) const {
  return build_history_windows(features, target_source, spec);
}

WindowedData FlatWindowing::build(const Matrix& features,
                                  const Matrix& target_source,
                                  const ForecastSpec& spec) const {
  return build_history_windows(features, target_source, spec);
}

WindowedData TsAsIid::build(const Matrix& features,
                            const Matrix& target_source,
                            const ForecastSpec& spec) const {
  check_inputs(features, target_source, spec);
  const std::size_t L = features.rows();
  require(L > spec.horizon, "TsAsIid: series shorter than horizon");
  const std::size_t n = L - spec.horizon;

  WindowedData out;
  out.X = Matrix(n, features.cols());
  out.y.resize(n);
  out.target_times.resize(n);
  out.span_starts.resize(n);
  for (std::size_t t = 0; t < n; ++t) {
    const double* src = features.row_ptr(t);
    std::copy(src, src + features.cols(), out.X.row_ptr(t));
    out.y[t] = target_source(t + spec.horizon, spec.target_var);
    out.target_times[t] = t + spec.horizon;
    out.span_starts[t] = t;
  }
  return out;
}

WindowedData TsAsIs::build(const Matrix& features,
                           const Matrix& target_source,
                           const ForecastSpec& spec) const {
  check_inputs(features, target_source, spec);
  const std::size_t L = features.rows();
  require(L > spec.horizon, "TsAsIs: series shorter than horizon");
  const std::size_t n = L - spec.horizon;

  WindowedData out;
  out.X = Matrix(n, 1);
  out.y.resize(n);
  out.target_times.resize(n);
  out.span_starts.resize(n);
  for (std::size_t t = 0; t < n; ++t) {
    // The persistence feed is deliberately unscaled: the Zero model must
    // output the previous ground truth in original units.
    out.X(t, 0) = target_source(t, spec.target_var);
    out.y[t] = target_source(t + spec.horizon, spec.target_var);
    out.target_times[t] = t + spec.horizon;
    out.span_starts[t] = t;
  }
  return out;
}

}  // namespace coda::ts
