#include "src/ts/forecast_pipeline.h"

#include <cmath>

#include "src/obs/obs.h"
#include "src/util/stopwatch.h"

namespace coda::ts {

ForecastPipeline::ForecastPipeline(std::unique_ptr<Transformer> scaler,
                                   std::unique_ptr<WindowMaker> windower,
                                   std::unique_ptr<Estimator> model,
                                   ForecastSpec spec)
    : scaler_(std::move(scaler)),
      windower_(std::move(windower)),
      model_(std::move(model)),
      spec_(spec) {
  require(scaler_ != nullptr && windower_ != nullptr && model_ != nullptr,
          "ForecastPipeline: null stage");
  require(spec_.history >= 1 && spec_.horizon >= 1,
          "ForecastPipeline: bad spec");
}

ForecastPipeline::ForecastPipeline(const ForecastPipeline& other)
    : scaler_(other.scaler_->clone_transformer()),
      windower_(other.windower_->clone()),
      model_(other.model_->clone_estimator()),
      spec_(other.spec_),
      fitted_(other.fitted_) {}

ForecastPipeline& ForecastPipeline::operator=(const ForecastPipeline& other) {
  if (this != &other) {
    ForecastPipeline copy(other);
    *this = std::move(copy);
  }
  return *this;
}

std::string ForecastPipeline::spec_string() const {
  return scaler_->spec() + " -> " + windower_->name() + " -> " +
         model_->spec();
}

WindowedData ForecastPipeline::build_windows(const TimeSeries& series) const {
  const Matrix scaled = scaler_->transform(series.values());
  return windower_->build(scaled, series.values(), spec_);
}

WindowedData ForecastPipeline::prepare_windows(const TimeSeries& series,
                                               std::size_t train_begin,
                                               std::size_t train_end) {
  require(train_begin < train_end && train_end <= series.length(),
          "ForecastPipeline::prepare_windows: bad training range");
  // Fit the scaler on training timestamps only (no look-ahead leakage),
  // then apply it to the whole series.
  const TimeSeries train_slice = series.slice(train_begin, train_end);
  static const std::vector<double> kNoTargets;
  scaler_->fit(train_slice.values(), kNoTargets);
  return build_windows(series);
}

void ForecastPipeline::fit_prepared(const TimeSeries& series,
                                    std::size_t train_begin,
                                    std::size_t train_end,
                                    const WindowedData& windows) {
  require(train_begin < train_end && train_end <= series.length(),
          "ForecastPipeline::fit_prepared: bad training range");
  // Re-fitting the scaler is cheap and deterministic; it keeps this
  // pipeline usable for predict_range/forecast_next even when `windows`
  // was computed by a sibling pipeline (the engine's prefix memo).
  const TimeSeries train_slice = series.slice(train_begin, train_end);
  static const std::vector<double> kNoTargets;
  scaler_->fit(train_slice.values(), kNoTargets);

  std::vector<std::size_t> train_rows;
  for (std::size_t i = 0; i < windows.y.size(); ++i) {
    if (windows.span_starts[i] >= train_begin &&
        windows.target_times[i] < train_end) {
      train_rows.push_back(i);
    }
  }
  require(!train_rows.empty(),
          "ForecastPipeline::fit: training range too short for " +
              windower_->name());
  std::vector<double> train_y;
  train_y.reserve(train_rows.size());
  for (const std::size_t i : train_rows) train_y.push_back(windows.y[i]);
  model_->fit(windows.X.select_rows(train_rows), train_y);
  fitted_ = true;
}

void ForecastPipeline::fit(const TimeSeries& series, std::size_t train_begin,
                           std::size_t train_end) {
  require(train_begin < train_end && train_end <= series.length(),
          "ForecastPipeline::fit: bad training range");
  const WindowedData wd = prepare_windows(series, train_begin, train_end);
  fit_prepared(series, train_begin, train_end, wd);
}

void ForecastPipeline::fit_full(const TimeSeries& series) {
  fit(series, 0, series.length());
}

std::pair<std::vector<double>, std::vector<double>>
ForecastPipeline::predict_range(const TimeSeries& series,
                                std::size_t target_begin,
                                std::size_t target_end) const {
  require_state(fitted_, "ForecastPipeline::predict_range: call fit() first");
  require(target_begin < target_end && target_end <= series.length(),
          "ForecastPipeline::predict_range: bad target range");
  return predict_range_prepared(build_windows(series), target_begin,
                                target_end);
}

std::pair<std::vector<double>, std::vector<double>>
ForecastPipeline::predict_range_prepared(const WindowedData& windows,
                                         std::size_t target_begin,
                                         std::size_t target_end) const {
  require_state(fitted_,
                "ForecastPipeline::predict_range: call fit() first");
  require(target_begin < target_end,
          "ForecastPipeline::predict_range: bad target range");
  std::vector<std::size_t> rows;
  for (std::size_t i = 0; i < windows.y.size(); ++i) {
    if (windows.target_times[i] >= target_begin &&
        windows.target_times[i] < target_end) {
      rows.push_back(i);
    }
  }
  require(!rows.empty(),
          "ForecastPipeline::predict_range: no windows target the range");
  std::vector<double> truth;
  truth.reserve(rows.size());
  for (const std::size_t i : rows) truth.push_back(windows.y[i]);
  return {model_->predict(windows.X.select_rows(rows)), std::move(truth)};
}

double ForecastPipeline::forecast_next(const TimeSeries& series) const {
  require_state(fitted_, "ForecastPipeline::forecast_next: call fit() first");
  const std::size_t L = series.length();
  require(L >= 1, "ForecastPipeline::forecast_next: empty series");
  // Extend the series with `horizon` placeholder rows (copies of the last
  // observation). The final window's features only read real timestamps;
  // the placeholders exist solely so the windower emits a row whose target
  // is the first unobserved timestamp.
  Matrix extended(L + spec_.horizon, series.n_variables());
  for (std::size_t t = 0; t < L; ++t) {
    for (std::size_t c = 0; c < series.n_variables(); ++c) {
      extended(t, c) = series.values()(t, c);
    }
  }
  for (std::size_t t = L; t < extended.rows(); ++t) {
    for (std::size_t c = 0; c < series.n_variables(); ++c) {
      extended(t, c) = series.values()(L - 1, c);
    }
  }
  const Matrix scaled = scaler_->transform(extended);
  const WindowedData wd = windower_->build(scaled, extended, spec_);
  const std::size_t want_target = L + spec_.horizon - 1;
  for (std::size_t i = wd.y.size(); i-- > 0;) {
    if (wd.target_times[i] == want_target) {
      std::vector<std::size_t> row{i};
      return model_->predict(wd.X.select_rows(row)).front();
    }
  }
  throw StateError("ForecastPipeline::forecast_next: no window reaches past "
                   "the series end");
}

CachedResult evaluate_forecast(const ForecastPipeline& pipeline,
                               const TimeSeries& series,
                               const TimeSeriesSlidingSplit& cv,
                               Metric metric) {
  static auto& fold_seconds = obs::histogram("cv.fold.seconds");
  const obs::ScopedSpan cv_span("cv.evaluate_forecast");

  const auto splits = cv.splits(series.length());
  CachedResult result;
  result.explanation = pipeline.spec_string();
  result.fold_scores.reserve(splits.size());
  for (const auto& split : splits) {
    Stopwatch fold_timer;
    ForecastPipeline fold = pipeline;  // independent copy per fold
    const std::size_t a = split.train.front();
    const std::size_t b = split.train.back() + 1;
    const std::size_t c = split.test.front();
    const std::size_t d = split.test.back() + 1;
    fold.fit(series, a, b);
    const auto [pred, truth] = fold.predict_range(series, c, d);
    result.fold_scores.push_back(score(metric, truth, pred));
    fold_seconds.observe(fold_timer.elapsed_seconds());
  }
  double sum = 0.0;
  for (const double s : result.fold_scores) sum += s;
  result.mean_score = sum / static_cast<double>(result.fold_scores.size());
  double var = 0.0;
  for (const double s : result.fold_scores) {
    const double diff = s - result.mean_score;
    var += diff * diff;
  }
  result.stddev =
      std::sqrt(var / static_cast<double>(result.fold_scores.size()));
  return result;
}

}  // namespace coda::ts
